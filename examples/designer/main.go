// Designer: feed the TATP transactions (as SQL-ish text) through the
// demo's Part-3 tools — the flow-graph generator, a user edit that the
// data dependencies reject, and the physical-design advisor with its
// "prepend the partitioning column" index rule.
//
//	go run ./examples/designer
package main

import (
	"fmt"
	"log"

	"dora/internal/designer"
	"dora/internal/designer/sqlmini"
)

func main() {
	// 1. A transaction in SQL-ish text: InsertCallForwarding probes by
	//    sub_nbr, then inserts keyed by the discovered s_id.
	src := `TXN InsertCallForwarding(:sub_nbr, :sf, :start, :end, :numberx) {
	  SELECT s_id FROM subscriber WHERE sub_nbr = :sub_nbr;
	  SELECT sf_type FROM special_facility WHERE s_id = s_id;
	  INSERT INTO call_forwarding VALUES (s_id, :sf, :start, :end, :numberx);
	}`
	txn, err := sqlmini.ParseTxn(src)
	if err != nil {
		log.Fatal(err)
	}
	parts := map[string]string{
		"subscriber": "s_id", "special_facility": "s_id", "call_forwarding": "s_id",
	}
	fp := designer.Generate(txn, parts)
	fmt.Println("generated flow graph:")
	fmt.Println(fp.Render())

	// 2. User edits: forcing the facility probe before the insert is fine
	//    (e.g. when the insert aborts often); running the insert in
	//    parallel with the sub_nbr probe is rejected because the insert
	//    consumes the probe's s_id output.
	if err := fp.Serialize(1, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after serializing facility probe and insert:")
	fmt.Println(fp.Render())
	if err := fp.Parallelize(0, 2); err != nil {
		fmt.Printf("parallelize(probe, insert) rejected as expected: %v\n\n", err)
	}

	// 3. Physical design for the full TATP mix.
	mk := func(s string) *sqlmini.Txn {
		t, err := sqlmini.ParseTxn(s)
		if err != nil {
			log.Fatal(err)
		}
		return t
	}
	workload := []designer.WeightedTxn{
		{Txn: mk(`TXN GetSubscriberData(:s) { SELECT * FROM subscriber WHERE s_id = :s; }`), Freq: 35},
		{Txn: mk(`TXN GetAccessData(:s,:ai) { SELECT data1 FROM access_info WHERE s_id = :s AND ai_type = :ai; }`), Freq: 35},
		{Txn: mk(`TXN UpdateLocation(:nbr,:v) {
			SELECT s_id FROM subscriber WHERE sub_nbr = :nbr;
			UPDATE subscriber SET vlr_location = :v WHERE s_id = s_id; }`), Freq: 14},
		{Txn: txn, Freq: 2},
	}
	tables := map[string]designer.TableInfo{
		"subscriber": {KeyFields: []string{"s_id"}, Rows: 100000, Indexes: [][]string{{"sub_nbr"}}},
	}
	d := designer.Advise(workload, tables, 8)
	fmt.Println(d.Render())
	fmt.Println("graphviz version of the flow graph:")
	fmt.Println(fp.DOT())
}
