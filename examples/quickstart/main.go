// Quickstart: open a storage manager, create a table, run the same
// transfer transaction through the conventional engine and through DORA,
// and print what each engine did to get there.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dora/internal/catalog"
	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/engine/conventional"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/xct"
)

func main() {
	// 1. The storage manager is the Shore-MT-like substrate both engines
	//    share: buffer pool, B+trees, WAL, recovery.
	cs := &metrics.CriticalSectionStats{}
	s, err := sm.Open(sm.Options{Frames: 256, CS: cs})
	if err != nil {
		log.Fatal(err)
	}
	accounts, err := s.CreateTable(sm.TableSpec{
		Name: "accounts",
		Fields: []catalog.Field{
			{Name: "id", Type: tuple.TInt},
			{Name: "owner", Type: tuple.TString},
			{Name: "balance", Type: tuple.TInt},
		},
		KeyFields: []string{"id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Load a few rows (a plain storage-manager transaction).
	ses := s.Session(0)
	load := s.Begin()
	for i := int64(1); i <= 10; i++ {
		err := ses.Insert(load, accounts, tuple.Record{
			tuple.I(i), tuple.S(fmt.Sprintf("acct-%d", i)), tuple.I(100),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := s.Commit(load); err != nil {
		log.Fatal(err)
	}

	// 3. A transaction is a flow graph of actions; both engines run it.
	transfer := func(from, to, amount int64) *xct.Flow {
		move := func(id, delta int64) *xct.Action {
			return &xct.Action{
				Table: "accounts", KeyField: "id", Key: id, Mode: xct.Write,
				Run: func(env *xct.Env) error {
					return env.Ses.Mutate(env.Txn, accounts, id, func(r tuple.Record) tuple.Record {
						r[2] = tuple.I(r[2].Int + delta)
						return r
					})
				},
			}
		}
		// One phase, two actions: they have no data dependency, so DORA
		// runs them in parallel on the partitions owning each account.
		return xct.NewFlow("transfer").AddPhase(move(from, -amount), move(to, amount))
	}

	// 4. The conventional engine: this goroutine is the worker; every
	//    action takes hierarchical locks in the centralized lock manager.
	conv := conventional.New(s)
	before := cs.LockMgr.Load()
	if err := conv.Exec(0, transfer(1, 2, 30)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional: transfer committed, %d lock-manager critical sections\n",
		cs.LockMgr.Load()-before)

	// 5. DORA: partitions of the accounts table each get a micro-engine;
	//    the actions route to the data and no lock-manager call happens.
	de := dora.New(s, dora.Config{
		PartitionsPerTable: 2,
		Domains:            map[string][2]int64{"accounts": {1, 10}},
	})
	defer de.Close()
	before = cs.LockMgr.Load()
	if err := engine.Engine(de).Exec(0, transfer(3, 4, 30)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dora:         transfer committed, %d lock-manager critical sections\n",
		cs.LockMgr.Load()-before)

	// 6. Verify both transfers.
	check := s.Begin()
	for _, id := range []int64{1, 2, 3, 4} {
		rec, err := ses.Read(check, accounts, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("account %d (%s): balance %d\n", id, rec[1].Str, rec[2].Int)
	}
	for _, st := range de.PartitionStats() {
		fmt.Printf("dora micro-engine %d: executed %d actions over key width %d\n",
			st.Worker, st.Executed, st.Width)
	}
}
