// TATP head-to-head: load the telecom benchmark and race the two
// engines with the standard 7-transaction mix, printing throughput,
// latency and the critical-section breakdown that explains the gap.
//
//	go run ./examples/tatpbench -subscribers 10000 -clients 16 -duration 2s
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/engine/conventional"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/workload"
	"dora/internal/workload/tatp"
)

func main() {
	var (
		subs    = flag.Int64("subscribers", 10000, "TATP scale")
		clients = flag.Int("clients", 16, "concurrent clients")
		dur     = flag.Duration("duration", 2*time.Second, "measured run")
		parts   = flag.Int("partitions", 4, "DORA partitions per table")
	)
	flag.Parse()

	run := func(which string) {
		cs := &metrics.CriticalSectionStats{}
		s, err := sm.Open(sm.Options{Frames: 1 << 14, CS: cs})
		if err != nil {
			log.Fatal(err)
		}
		db, err := tatp.Load(s, *subs)
		if err != nil {
			log.Fatal(err)
		}
		var e engine.Engine
		if which == "dora" {
			e = dora.New(s, dora.Config{PartitionsPerTable: *parts, Domains: db.Domains()})
		} else {
			e = conventional.New(s)
		}
		defer e.Close()
		cs.Reset()
		res := (&workload.Driver{
			Engine: e, Mix: db.NewMix(tatp.MixOptions{}),
			Clients: *clients, Duration: *dur, Seed: 7,
		}).Run()
		snap := cs.Snapshot()
		perTxn := func(v int64) float64 {
			if res.Committed == 0 {
				return 0
			}
			return float64(v) / float64(res.Committed)
		}
		fmt.Printf("%-13s %9.0f tps   p95 %5dus   aborts %d\n",
			which, res.Throughput, res.P95US, res.Aborted)
		fmt.Printf("              lockmgr %.1f/txn  latch %.1f/txn  log %.1f/txn  contended %.2f/txn\n",
			perTxn(snap.LockMgr), perTxn(snap.Latch), perTxn(snap.Log), perTxn(snap.Contended))
		for name, n := range res.PerTxn {
			fmt.Printf("              %-22s %d\n", name, n)
		}
	}
	fmt.Printf("TATP, %d subscribers, %d clients, %s per engine\n\n", *subs, *clients, *dur)
	run("conventional")
	fmt.Println()
	run("dora")
}
