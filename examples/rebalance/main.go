// Rebalance: watch DORA's load balancer chase a moving hot spot (the
// demo's "slide it around to vary the locations of hot spots"). Every
// second the hot window jumps; the balancer splits the newly hot ranges
// and merges the abandoned ones, and the partition layout is printed as
// it evolves.
//
//	go run ./examples/rebalance
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"dora/internal/dora"
	"dora/internal/dora/balance"
	"dora/internal/sm"
	"dora/internal/workload"
	"dora/internal/workload/tatp"
)

func main() {
	const subscribers = 20000
	s, err := sm.Open(sm.Options{Frames: 1 << 14})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loading TATP...")
	db, err := tatp.Load(s, subscribers)
	if err != nil {
		log.Fatal(err)
	}
	e := dora.New(s, dora.Config{PartitionsPerTable: 2, Domains: db.Domains()})
	defer e.Close()

	bal := balance.NewBalancer(e, balance.Policy{
		Every: 50 * time.Millisecond, MinQueue: 4, MaxParts: 8, MinParts: 2,
	}, "subscriber")
	bal.Start()
	defer bal.Stop()

	hot := workload.NewHotspot(1, subscribers, 0.9, subscribers/20)
	hot.SetCenter(subscribers / 10)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		(&workload.Driver{
			Engine: e, Mix: db.NewMix(tatp.MixOptions{SIDGen: hot}),
			Clients: 32, Duration: 6 * time.Second, Seed: 1,
		}).Run()
	}()

	for i := 0; i < 6; i++ {
		time.Sleep(time.Second)
		hot.SetCenter((hot.Center() + subscribers/5) % subscribers)
		fmt.Printf("t=%ds  hot center -> %d   splits=%d merges=%d\n",
			i+1, hot.Center(), bal.Splits.Load(), bal.Merges.Load())
		fmt.Println(layout(e))
	}
	wg.Wait()
	fmt.Printf("final: %d subscriber partitions, %d splits, %d merges\n",
		e.NumPartitions("subscriber"), bal.Splits.Load(), bal.Merges.Load())
}

// layout draws the subscriber routing table as a bar per partition.
func layout(e *dora.Dora) string {
	rt := e.Router("subscriber")
	if rt == nil {
		return ""
	}
	var b strings.Builder
	for _, r := range rt.Ranges() {
		width := int((r.Hi - r.Lo + 1) / 500)
		if width < 1 {
			width = 1
		}
		fmt.Fprintf(&b, "  [%6d..%6d] w%-3d %s\n", r.Lo, r.Hi, r.Part, strings.Repeat("#", width))
	}
	return b.String()
}
