// Package repl is the replication layer: primary/backup log shipping
// built on the group-commit flush pipeline, read replicas, and failover
// promotion.
//
// The unit of shipping is the hardened group extent. Both log managers
// already harden the WAL in contiguous, LSN-ordered extents (the legacy
// log per Force batch, the consolidation-array log per flush-daemon
// batch); the primary's Shipper hangs off that flush path via
// wal.ExtentSink and streams each extent to every attached replica over a
// pluggable Link (in-process for tests, localhost TCP for a two-process
// pair). A replica appends the stream to its own log store — decoding
// first, so only whole records are ever persisted and a torn extent from
// a crashed primary can never be replayed — and replays each record
// through the storage manager's recovery redo path into a live engine
// (sm.Replayer), advancing its replayed-commit horizon as commit records
// arrive.
//
// Commit rules: with Rule.K == 0 replication is asynchronous — commits
// complete at local durability and the stream trails behind. With K > 0
// (semi-sync), the Shipper's commit gate (sm.CommitGate) holds each
// commit acknowledgement until K replicas have acked the commit record's
// LSN; the transaction's effects are then on at least K+1 logs before the
// client hears "committed". If live replicas drop below K the gate
// degrades to asynchronous completion (counted in Degraded) instead of
// wedging the commit pipeline — availability over durability, the usual
// semi-sync production stance.
//
// Read replicas serve read-only flows at the replica's hardened commit
// horizon. Because group commit ships a transaction's update records
// before its commit record, replay must not apply records as they
// arrive: delivered records queue, and only the transaction-consistent
// prefix — every queued transaction resolved by a delivered commit or
// end — is applied, in strict LSN order, exclusively against the read
// path. Reads therefore observe whole committed transactions only; a
// transaction that later aborts (its CLRs trail in the stream) is never
// visible. Replay advances sm's lastCommit when it applies a commit
// record, exactly as the primary's commit path does, and the storage
// manager's ELR read-only rule (wait until the log is durable past the
// horizon you may have observed) holds on the replica trivially because
// delivery hardens the stream before replay applies it. Staleness is
// bounded by shipping+replay lag, measured as primary commit horizon
// minus replica commit horizon.
//
// Replicas fail stop: an error after an extent hardened (replay into the
// live engine, or persisting the stream) would leave the replica's state
// permanently behind its own log — delivery dedupes against the hardened
// horizon, so those records would never be reapplied. Rather than serve
// (or promote) silently divergent state, the replica latches ErrFailed
// and refuses Deliver, ExecReadOnly, and Promote until rebuilt.
//
// Promote turns a replica into a primary at the end of its delivered
// stream: an appendable log manager is adopted over the same store,
// committed-but-unended transactions are closed, in-flight losers are
// rolled back with CLRs, and the engine comes up writable. A crashed
// ex-primary whose log runs past the promotion point must truncate that
// tail (wal.TruncateTail) before rejoining as a replica — those records
// were never acked and the new primary's history has diverged from them.
package repl

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/wal"
)

// Link is one replication connection from the primary to a replica.
// Implementations: LocalLink (in-process) and the TCP link from Dial.
type Link interface {
	// Expected returns the LSN from which the replica wants the stream
	// (the end of what it already holds).
	Expected() (uint64, error)
	// Send delivers one contiguous extent and returns the replica's new
	// acked LSN — the end of its hardened stream.
	Send(base uint64, data []byte) (uint64, error)
	// Close tears the connection down.
	Close() error
}

// Rule configures the commit rule.
type Rule struct {
	// K is the number of replica acknowledgements a commit waits for
	// before completing; 0 selects asynchronous replication.
	K int
}

// extent is one queued stream segment.
type extent struct {
	base uint64
	data []byte
}

// link is the shipper's per-replica state: an unbounded FIFO drained by a
// dedicated sender goroutine, so one slow replica never stalls the flush
// daemon or the other replicas.
type link struct {
	t    Link
	name string

	mu    sync.Mutex
	cond  *sync.Cond
	queue []extent
	dead  bool

	acked uint64 // guarded by the shipper's mu
}

func (ln *link) push(base uint64, data []byte) {
	ln.mu.Lock()
	if !ln.dead {
		ln.queue = append(ln.queue, extent{base, data})
		ln.cond.Signal()
	}
	ln.mu.Unlock()
}

// pop blocks for the next extent, merging queued contiguous segments
// into one send. ok=false means the link was torn down.
func (ln *link) pop() (extent, bool) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	for len(ln.queue) == 0 && !ln.dead {
		ln.cond.Wait()
	}
	if ln.dead {
		return extent{}, false
	}
	e := ln.queue[0]
	i := 1
	for ; i < len(ln.queue); i++ {
		if ln.queue[i].base != e.base+uint64(len(e.data)) {
			break
		}
		if i == 1 {
			// Extent buffers are shared across links; merge into a copy.
			e.data = append(append([]byte(nil), e.data...), ln.queue[i].data...)
		} else {
			e.data = append(e.data, ln.queue[i].data...)
		}
	}
	ln.queue = ln.queue[i:]
	return e, true
}

func (ln *link) kill() {
	ln.mu.Lock()
	ln.dead = true
	ln.cond.Broadcast()
	ln.mu.Unlock()
	_ = ln.t.Close()
}

// gateWaiter is a commit acknowledgement parked on the replication rule.
type gateWaiter struct {
	lsn  uint64
	done func(error)
}

// Shipper is the primary-side replication endpoint: it receives hardened
// extents from the log's flush path, streams them to every attached
// replica, tracks per-replica acked LSNs, and (for K > 0) gates commit
// completion on the K-ack quorum.
type Shipper struct {
	src   wal.ExtentSource
	store wal.Store // the primary's log store, for catch-up reads
	k     int

	mu      sync.Mutex
	shipped uint64 // end LSN of everything handed to links
	links   []*link
	waiters []gateWaiter
	closed  bool

	// Extents/Bytes count shipped traffic; Acks counts acknowledgements
	// processed; Degraded counts commits the gate released without their
	// quorum (live replicas < K); HealFails counts sink gap-heals that
	// could not read the store (the extent is held back and retried, or —
	// when the gap fell below the truncation horizon — the links are
	// dropped for full resync).
	Extents   metrics.Counter
	Bytes     metrics.Counter
	Acks      metrics.Counter
	Degraded  metrics.Counter
	HealFails metrics.Counter
}

// NewShipper attaches a shipper to a primary's log manager (which must
// support extent streaming — both provided managers do) and its backing
// store. Attach before write traffic starts so no extent predates the
// sink; extents that slip by are healed from the store on the next sink
// call.
func NewShipper(log wal.Manager, store wal.Store, rule Rule) (*Shipper, error) {
	src, ok := log.(wal.ExtentSource)
	if !ok {
		return nil, fmt.Errorf("repl: log manager %T cannot stream extents", log)
	}
	s := &Shipper{src: src, store: store, k: rule.K, shipped: log.Durable()}
	src.SetExtentSink(s.sink)
	return s, nil
}

// AttachPrimary wires replication into a primary storage manager: a
// shipper on its flush path and, for a semi-sync rule, the commit gate.
// store must be the log store the storage manager was opened over.
func AttachPrimary(s *sm.SM, store wal.Store, rule Rule) (*Shipper, error) {
	sh, err := NewShipper(s.Log, store, rule)
	if err != nil {
		return nil, err
	}
	if rule.K > 0 {
		s.SetCommitGate(sh.Gate())
	}
	return sh, nil
}

// sink receives one hardened extent from the flush path. It only copies
// pointers into per-link queues under a short mutex — the flush daemon
// never blocks on replica I/O.
func (s *Shipper) sink(base uint64, data []byte) {
	var killed []*link
	var fire []gateWaiter
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if base > s.shipped {
		// An extent hardened before the sink was installed: heal the gap
		// from the store so links never see a discontinuity.
		gap, err := s.readRange(s.shipped, base)
		switch {
		case err == nil:
			for _, ln := range s.links {
				ln.push(s.shipped, gap)
			}
			s.shipped = base
		case errors.Is(err, errBehindOrigin):
			// The unshipped gap was truncated away: no attached replica
			// can ever receive a contiguous stream from this store again
			// (their acked horizons all precede the gap). Drop them all
			// explicitly — each needs a full resync — and resume shipping
			// contiguously from this extent for future joiners.
			s.HealFails.Inc()
			killed = s.links
			s.links = nil
			s.shipped = base
			fire = s.takeReleasedLocked()
		default:
			// Transient store read failure. Hold this extent back: it is
			// hardened in the store, so the next sink call re-heals from
			// s.shipped and nothing is lost — pushing it now would feed
			// every link a stream gap and tear them all down at once.
			s.HealFails.Inc()
			s.mu.Unlock()
			return
		}
	}
	for _, ln := range s.links {
		ln.push(base, data)
	}
	if end := base + uint64(len(data)); end > s.shipped {
		s.shipped = end
	}
	s.Extents.Inc()
	s.Bytes.Add(int64(len(data)))
	s.mu.Unlock()
	for _, ln := range killed {
		ln.kill()
	}
	for _, w := range fire {
		w.done(nil)
	}
}

// errBehindOrigin reports a stream read below the store's truncation
// horizon — unhealable; the reader needs a full resync.
var errBehindOrigin = errors.New("repl: stream is behind the truncation horizon: full resync required")

// readRange returns stream bytes [from, to) from the primary's store.
func (s *Shipper) readRange(from, to uint64) ([]byte, error) {
	raw, err := s.store.Contents()
	if err != nil {
		return nil, err
	}
	origin, body, err := wal.StreamOrigin(raw)
	if err != nil {
		return nil, err
	}
	if from < origin {
		return nil, fmt.Errorf("%w (stream from %d, origin %d)", errBehindOrigin, from, origin)
	}
	if to > origin+uint64(len(body)) {
		return nil, fmt.Errorf("repl: stream to %d beyond store end %d", to, origin+uint64(len(body)))
	}
	return body[from-origin : to-origin], nil
}

// AddReplica attaches a replica over l. The replica's missing stream
// suffix is queued from the store first (catch-up), so it converges with
// the live extent flow with no gap; a replica whose expected LSN is below
// the truncation horizon cannot be caught up and must full-resync. A
// replica AHEAD of the primary holds divergent history (it is an
// un-truncated ex-primary) and is refused.
func (s *Shipper) AddReplica(name string, l Link) error {
	exp, err := l.Expected()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("repl: shipper closed")
	}
	if exp > s.shipped {
		return fmt.Errorf("repl: replica %s ahead of primary (%d > %d): divergent history, truncate its tail first", name, exp, s.shipped)
	}
	ln := &link{t: l, name: name, acked: exp}
	ln.cond = sync.NewCond(&ln.mu)
	if exp < s.shipped {
		data, err := s.readRange(exp, s.shipped)
		if err != nil {
			return err
		}
		ln.push(exp, data)
	}
	s.links = append(s.links, ln)
	go s.sender(ln)
	return nil
}

// sender drains one link's queue, sending extents and folding acks back
// into the quorum. A send error kills the link (the replica is gone or
// the stream diverged); the quorum recomputes without it.
func (s *Shipper) sender(ln *link) {
	for {
		e, ok := ln.pop()
		if !ok {
			return
		}
		ack, err := ln.t.Send(e.base, e.data)
		if err != nil {
			s.dropLink(ln)
			return
		}
		s.noteAck(ln, ack)
	}
}

// noteAck records a replica's new acked horizon and releases every gate
// waiter the new quorum covers.
func (s *Shipper) noteAck(ln *link, ack uint64) {
	s.Acks.Inc()
	s.mu.Lock()
	if ack > ln.acked {
		ln.acked = ack
	}
	fire := s.takeReleasedLocked()
	s.mu.Unlock()
	for _, w := range fire {
		w.done(nil)
	}
}

// dropLink removes a dead link; losing it can RELEASE waiters — either
// the quorum among the survivors already covers them, or the gate
// degrades to async because fewer than K replicas remain.
func (s *Shipper) dropLink(ln *link) {
	ln.kill()
	s.mu.Lock()
	for i, l := range s.links {
		if l == ln {
			s.links = append(s.links[:i], s.links[i+1:]...)
			break
		}
	}
	fire := s.takeReleasedLocked()
	s.mu.Unlock()
	for _, w := range fire {
		w.done(nil)
	}
}

// quorumLocked returns the K-th highest acked LSN among live links.
// degraded=true means fewer than K live replicas remain and the gate
// passes everything.
func (s *Shipper) quorumLocked() (uint64, bool) {
	if s.k <= 0 {
		return ^uint64(0), false
	}
	if len(s.links) < s.k {
		return 0, true
	}
	acks := make([]uint64, len(s.links))
	for i, ln := range s.links {
		acks[i] = ln.acked
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] > acks[j] })
	return acks[s.k-1], false
}

// takeReleasedLocked removes and returns every waiter the current quorum
// (or degraded mode) releases.
func (s *Shipper) takeReleasedLocked() []gateWaiter {
	if len(s.waiters) == 0 {
		return nil
	}
	q, degraded := s.quorumLocked()
	if degraded {
		fire := s.waiters
		s.waiters = nil
		s.Degraded.Add(int64(len(fire)))
		return fire
	}
	var fire []gateWaiter
	keep := s.waiters[:0]
	for _, w := range s.waiters {
		// acked > lsn covers the whole commit record: replicas only ack
		// whole-record prefixes, so any ack past the record's first byte
		// is an ack past its last.
		if q > w.lsn {
			fire = append(fire, w)
		} else {
			keep = append(keep, w)
		}
	}
	s.waiters = keep
	return fire
}

// Gate returns the commit gate enforcing the semi-sync rule: done runs
// once K replicas acked the commit LSN (immediately when the quorum
// already covers it, or when degradation waives it).
func (s *Shipper) Gate() sm.CommitGate {
	return func(lsn uint64, done func(error)) {
		if s.k <= 0 {
			done(nil)
			return
		}
		s.mu.Lock()
		q, degraded := s.quorumLocked()
		if degraded {
			s.Degraded.Inc()
			s.mu.Unlock()
			done(nil)
			return
		}
		if q > lsn {
			s.mu.Unlock()
			done(nil)
			return
		}
		s.waiters = append(s.waiters, gateWaiter{lsn, done})
		s.mu.Unlock()
	}
}

// AckHorizon returns the slowest live replica's acked LSN — log
// truncation's replication constraint (wal records below it have reached
// every replica). With no live replicas it returns MaxUint64: truncation
// is unconstrained, and a later joiner below the horizon full-resyncs.
func (s *Shipper) AckHorizon() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	min := ^uint64(0)
	for _, ln := range s.links {
		if ln.acked < min {
			min = ln.acked
		}
	}
	return min
}

// ShippedLSN returns the end LSN of everything handed to links.
func (s *Shipper) ShippedLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shipped
}

// Replicas returns each live replica's name and acked LSN.
func (s *Shipper) Replicas() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.links))
	for _, ln := range s.links {
		out[ln.name] = ln.acked
	}
	return out
}

// DropReplica detaches the named replica (tests: simulate replica death).
func (s *Shipper) DropReplica(name string) {
	s.mu.Lock()
	var target *link
	for _, ln := range s.links {
		if ln.name == name {
			target = ln
			break
		}
	}
	s.mu.Unlock()
	if target != nil {
		s.dropLink(target)
	}
}

// Close detaches the shipper from the flush path, tears down every link,
// and releases any parked commit waiters (their records are locally
// durable; the replication rule ends with the shipper).
func (s *Shipper) Close() error {
	s.src.SetExtentSink(nil)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	links := append([]*link(nil), s.links...)
	s.links = nil
	fire := s.waiters
	s.waiters = nil
	s.mu.Unlock()
	for _, ln := range links {
		ln.kill()
	}
	for _, w := range fire {
		w.done(nil)
	}
	return nil
}
