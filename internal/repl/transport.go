package repl

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// LocalLink ships extents to a replica in the same process — zero-copy
// apart from the replica's own persistence, used by tests and the
// single-process read-offload experiment (E16).
type LocalLink struct{ R *Replica }

// Expected implements Link.
func (l LocalLink) Expected() (uint64, error) { return l.R.Expected(), nil }

// Send implements Link.
func (l LocalLink) Send(base uint64, data []byte) (uint64, error) {
	return l.R.Deliver(base, data)
}

// Close implements Link.
func (l LocalLink) Close() error { return nil }

// The TCP wire protocol, for the two-process harness:
//
//	server → client:  u64 expected            (handshake)
//	client → server:  u64 base, u32 len, data (one frame per extent)
//	server → client:  u64 ack | u64 maxuint64 followed by u32 len + error text
//
// All integers are big-endian. The primary dials the replica.

// Serve accepts one primary connection at a time on ln and feeds frames
// into r. It returns when the listener closes; per-connection errors end
// that connection only.
func Serve(ln net.Listener, r *Replica) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		serveConn(conn, r)
	}
}

func serveConn(conn net.Conn, r *Replica) {
	defer conn.Close()
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], r.Expected())
	if _, err := conn.Write(u64[:]); err != nil {
		return
	}
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		base := binary.BigEndian.Uint64(hdr[:8])
		n := binary.BigEndian.Uint32(hdr[8:])
		data := make([]byte, n)
		if _, err := io.ReadFull(conn, data); err != nil {
			return
		}
		ack, err := r.Deliver(base, data)
		if err != nil {
			var rep [12]byte
			binary.BigEndian.PutUint64(rep[:8], ^uint64(0))
			msg := []byte(err.Error())
			binary.BigEndian.PutUint32(rep[8:], uint32(len(msg)))
			conn.Write(rep[:])
			conn.Write(msg)
			return
		}
		binary.BigEndian.PutUint64(u64[:], ack)
		if _, err := conn.Write(u64[:]); err != nil {
			return
		}
	}
}

// tcpLink is the primary-side Link over one TCP connection.
type tcpLink struct {
	mu       sync.Mutex
	conn     net.Conn
	expected uint64
}

// Dial connects to a replica served by Serve and completes the
// handshake, returning a Link ready for Shipper.AddReplica.
func Dial(addr string) (Link, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	var u64 [8]byte
	if _, err := io.ReadFull(conn, u64[:]); err != nil {
		conn.Close()
		return nil, err
	}
	return &tcpLink{conn: conn, expected: binary.BigEndian.Uint64(u64[:])}, nil
}

// Expected implements Link.
func (l *tcpLink) Expected() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.expected, nil
}

// Send implements Link.
func (l *tcpLink) Send(base uint64, data []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], base)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(data)))
	if _, err := l.conn.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := l.conn.Write(data); err != nil {
		return 0, err
	}
	var rep [8]byte
	if _, err := io.ReadFull(l.conn, rep[:]); err != nil {
		return 0, err
	}
	ack := binary.BigEndian.Uint64(rep[:])
	if ack == ^uint64(0) {
		var ln [4]byte
		if _, err := io.ReadFull(l.conn, ln[:]); err != nil {
			return 0, err
		}
		msg := make([]byte, binary.BigEndian.Uint32(ln[:]))
		if _, err := io.ReadFull(l.conn, msg); err != nil {
			return 0, err
		}
		return 0, fmt.Errorf("repl: replica refused extent: %s", msg)
	}
	return ack, nil
}

// Close implements Link.
func (l *tcpLink) Close() error { return l.conn.Close() }
