package repl

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dora/internal/buffer"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/trace"
	"dora/internal/wal"
	"dora/internal/wal/clog"
	"dora/internal/xct"
)

// ErrReadOnly reports a write action submitted to a replica.
var ErrReadOnly = errors.New("repl: replica is read-only")

// ErrPromoted reports stream delivery to a promoted replica.
var ErrPromoted = errors.New("repl: replica has been promoted")

// ErrFailed reports a replica that fail-stopped: an error after the
// delivered stream hardened (replay into the live engine, or persisting
// the stream itself) left its state behind its own log with no way to
// reconverge, so it refuses delivery, reads, and promotion rather than
// silently serving — or failing over to — divergent state.
var ErrFailed = errors.New("repl: replica failed")

// ErrWarming reports a read-only flow on a freshly bootstrapped replica
// whose heap still holds effects of transactions that were in flight at
// its truncation point. They resolve through the stream (the new
// primary's promotion ends or compensates each); reads are admitted once
// every such transaction has been resolved and applied.
var ErrWarming = errors.New("repl: replica warming up: bootstrapped state holds unresolved transactions")

// replicaLog is the wal.Manager of a live replica: a read-only view over
// the delivered stream. Appends are invalid by construction — a replica's
// only writer is the replay path, which appends raw delivered bytes
// directly to the store. Durable is the end of the hardened delivered
// stream, which the buffer pool's write-ahead rule and the ELR read-only
// wait both check; both are always already satisfied on a replica,
// because delivery hardens the stream before replay dirties any page or
// advances the commit horizon. (A plain log manager here would wedge:
// Force past its durable horizon waits for a flush daemon that has
// nothing to flush.)
type replicaLog struct {
	store wal.Store

	mu      sync.Mutex
	durable uint64
	waiters []replWaiter
}

type replWaiter struct {
	lsn uint64
	fn  func(error)
}

// Append panics: replicas never originate log records.
func (l *replicaLog) Append(*wal.Record) wal.LSN {
	panic("repl: append to a replica's log (replicas are read-only until promoted)")
}

// append persists one decoded-and-verified stream segment and advances
// the durable horizon.
func (l *replicaLog) append(data []byte) error {
	if err := l.store.Write(data); err != nil {
		return err
	}
	if err := l.store.Sync(); err != nil {
		return err
	}
	l.mu.Lock()
	l.durable += uint64(len(data))
	var fire []replWaiter
	keep := l.waiters[:0]
	for _, w := range l.waiters {
		if l.durable > w.lsn {
			fire = append(fire, w)
		} else {
			keep = append(keep, w)
		}
	}
	l.waiters = keep
	l.mu.Unlock()
	for _, w := range fire {
		w.fn(nil)
	}
	return nil
}

// Force implements wal.Manager: it waits until delivery covers lsn.
func (l *replicaLog) Force(lsn wal.LSN) error {
	ch := make(chan error, 1)
	l.ForceAsync(lsn, func(err error) { ch <- err })
	return <-ch
}

// ForceAsync implements wal.AsyncForcer.
func (l *replicaLog) ForceAsync(lsn wal.LSN, fn func(error)) {
	l.mu.Lock()
	if l.durable > lsn {
		l.mu.Unlock()
		fn(nil)
		return
	}
	l.waiters = append(l.waiters, replWaiter{lsn, fn})
	l.mu.Unlock()
}

// FlushAll implements wal.Manager: the delivered stream is always hard.
func (l *replicaLog) FlushAll() error { return nil }

// Durable implements wal.Manager.
func (l *replicaLog) Durable() wal.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Next implements wal.Manager: the next byte delivery will append.
func (l *replicaLog) Next() wal.LSN { return l.Durable() }

// Scan implements wal.Manager over the delivered stream.
func (l *replicaLog) Scan(fn func(*wal.Record) error) error {
	raw, err := l.store.Contents()
	if err != nil {
		return err
	}
	return wal.ScanBytes(raw, fn)
}

// Stats implements wal.Manager.
func (l *replicaLog) Stats() wal.Stats { return wal.Stats{} }

// Close implements wal.Manager.
func (l *replicaLog) Close() error { return nil }

// Options configures NewReplica.
type Options struct {
	// Frames is the replica's buffer-pool size (default 4096).
	Frames int
	// Disk backs the replica's pages. Nil means a fresh in-memory disk
	// (the replica builds its state purely from the stream). A rejoining
	// ex-primary passes its existing disk.
	Disk buffer.Disk
	// LogStore is the replica's own log store (default in-memory). A
	// rejoining ex-primary passes its tail-truncated store.
	LogStore wal.Store
	// DDL registers the schema (tables are code, not logged) — it must
	// create the same tables in the same order as the primary.
	DDL func(*sm.SM) error
	// Bootstrap replays the log store's existing content before going
	// live (rejoin after failover): analysis state stays open for the
	// incoming stream, and a disk page flushed beyond the retained log
	// is refused as divergent.
	Bootstrap bool
	// CS receives critical-section accounting (optional).
	CS *metrics.CriticalSectionStats
	// RedoWorkers sets the replica's parallel-redo applier count (see
	// sm.Options.RedoWorkers): 0 or 1 replays serially, >1 fans physical
	// records out to page-sharded appliers while delivery stays the
	// dispatcher. Each extent still becomes visible to readers atomically —
	// Deliver syncs the pool before releasing the state lock.
	RedoWorkers int
	// AdaptiveRedo lets the applier pool grow/shrink between extent
	// barriers from observed queue depth (sm.Options.AdaptiveRedo).
	AdaptiveRedo bool
	// Tracer, when non-nil, samples deliveries for the latency tracer's
	// repl_deliver (stream hardening) and repl_apply (redo + barrier)
	// stages.
	Tracer *trace.Tracer
}

// Replica is a live backup: it ingests the primary's log stream, replays
// it into its own storage manager, and serves read-only flows at its
// replayed commit horizon. Promote turns it into a primary.
type Replica struct {
	sm       *sm.SM
	store    wal.Store
	rlog     *replicaLog
	replayer *sm.Replayer
	cs       *metrics.CriticalSectionStats
	tracer   *trace.Tracer

	// roleMu guards the promotion flip (and the sm.Log swap inside it):
	// delivery and read-only execution hold it shared, Promote holds it
	// exclusively. deliverMu additionally serializes deliveries so
	// replay stays single-writer. stateMu orders replay application
	// against read-only execution: Deliver applies each extent's
	// transaction-consistent prefix under the write side, read-only flows
	// run under the read side, so a reader observes the replayed state
	// only at extent boundaries — never mid-transaction.
	roleMu    sync.RWMutex
	deliverMu sync.Mutex
	stateMu   sync.RWMutex
	promoted  bool
	promoteAt uint64 // delivered end at promotion (the divergence point)

	// failMu guards failErr, the sticky fail-stop reason.
	failMu  sync.Mutex
	failErr error

	// Extents/Bytes count ingested traffic; Reads counts read-only flows
	// served.
	Extents metrics.Counter
	Bytes   metrics.Counter
	Reads   metrics.Counter
}

// NewReplica opens a replica. With a fresh disk and empty log store it
// starts empty and is populated entirely by catch-up + live shipping;
// with Bootstrap it first replays whatever the store already holds.
func NewReplica(opt Options) (*Replica, error) {
	if opt.LogStore == nil {
		opt.LogStore = wal.NewMemStore()
	}
	next, err := wal.InitStore(opt.LogStore)
	if err != nil {
		return nil, err
	}
	rlog := &replicaLog{store: opt.LogStore, durable: next}
	s, err := sm.Open(sm.Options{
		Frames: opt.Frames, Disk: opt.Disk, Log: rlog, CS: opt.CS,
		RedoWorkers: opt.RedoWorkers, AdaptiveRedo: opt.AdaptiveRedo,
		Spans: opt.Tracer,
	})
	if err != nil {
		return nil, err
	}
	if opt.DDL != nil {
		if err := opt.DDL(s); err != nil {
			return nil, err
		}
	}
	r := &Replica{sm: s, store: opt.LogStore, rlog: rlog, cs: opt.CS, tracer: opt.Tracer}
	r.replayer = sm.NewReplayer(s)
	if opt.Bootstrap {
		if _, err := r.replayer.Bootstrap(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// SM exposes the replica's storage manager (read paths, monitoring).
func (r *Replica) SM() *sm.SM { return r.sm }

// Expected returns the LSN from which the replica wants the stream.
func (r *Replica) Expected() uint64 { return r.rlog.Durable() }

// AppliedLSN returns the end LSN of the last record applied — the
// transaction-consistent horizon reads observe. It can trail Expected by
// the records of transactions whose commit or end has not arrived yet.
func (r *Replica) AppliedLSN() uint64 { return r.replayer.AppliedLSN() }

// CommitHorizon returns the replayed-commit horizon: the highest commit
// LSN whose transaction's effects read-only sessions can observe.
func (r *Replica) CommitHorizon() uint64 { return r.sm.LastCommitLSN() }

// OpenTxns returns the number of in-flight transactions in the stream.
func (r *Replica) OpenTxns() int { return r.replayer.OpenTxns() }

// Promoted reports whether the replica has been promoted.
func (r *Replica) Promoted() bool {
	r.roleMu.RLock()
	defer r.roleMu.RUnlock()
	return r.promoted
}

// PromotionLSN returns the delivered end at promotion — the divergence
// point an ex-primary must tail-truncate its own log at before rejoining.
func (r *Replica) PromotionLSN() uint64 {
	r.roleMu.RLock()
	defer r.roleMu.RUnlock()
	return r.promoteAt
}

// Deliver ingests one stream extent at base. Only the decodable whole-
// record prefix is persisted and replayed — a torn extent (a primary
// that died mid-group) contributes nothing past its last complete
// record, so replay can never apply half a group. Duplicate and
// overlapping deliveries are truncated against the current horizon
// (retries after a reconnect are idempotent); a gap is an error. Returns
// the replica's new acked LSN: the end of its hardened stream.
//
// Any error after the extent hardens fail-stops the replica: its log is
// then ahead of its replayed state with no redelivery path (the stream
// dedupes against the hardened horizon), so continuing to serve reads or
// accept promotion would expose silently divergent state.
func (r *Replica) Deliver(base uint64, data []byte) (uint64, error) {
	r.deliverMu.Lock()
	defer r.deliverMu.Unlock()
	r.roleMu.RLock()
	defer r.roleMu.RUnlock()
	if r.promoted {
		return r.rlog.Durable(), ErrPromoted
	}
	if err := r.Failed(); err != nil {
		return r.rlog.Durable(), err
	}
	exp := r.rlog.Durable()
	if base > exp {
		return exp, fmt.Errorf("repl: stream gap: extent base %d, expected %d", base, exp)
	}
	if base < exp {
		if base+uint64(len(data)) <= exp {
			return exp, nil // pure duplicate
		}
		data = data[exp-base:]
		base = exp
	}
	var recs []*wal.Record
	consumed, err := wal.DecodeStream(base, data, func(rec *wal.Record) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return exp, err
	}
	if consumed == 0 {
		return exp, nil
	}
	// Sampled deliveries time the replica lag stages: hardening the
	// extent into our log (repl_deliver), then redo-applying it through
	// the barrier (repl_apply).
	var t0 time.Time
	traced := r.tracer.Enabled() && r.tracer.SampleHop()
	if traced {
		t0 = time.Now()
	}
	// Harden before applying: the commit horizon must never run ahead of
	// the replica's own durability.
	if err := r.rlog.append(data[:consumed]); err != nil {
		return exp, r.fail(err)
	}
	if traced {
		now := time.Now()
		r.tracer.RecordSpan(trace.StageReplDeliver, -1, now.Sub(t0))
		t0 = now
	}
	r.stateMu.Lock()
	for _, rec := range recs {
		if err := r.replayer.Apply(rec); err != nil {
			r.stateMu.Unlock()
			return r.rlog.Durable(), r.fail(err)
		}
	}
	// Extent barrier: with parallel redo, wait until every applier has
	// finished and the dispatcher has consumed the completion stream before
	// readers are readmitted — reads only ever observe extent-consistent
	// states. An applier error fail-stops the replica like any replay error.
	if err := r.replayer.Sync(); err != nil {
		r.stateMu.Unlock()
		return r.rlog.Durable(), r.fail(err)
	}
	r.stateMu.Unlock()
	if traced {
		r.tracer.RecordSpan(trace.StageReplApply, -1, time.Since(t0))
	}
	r.Extents.Inc()
	r.Bytes.Add(int64(consumed))
	return r.rlog.Durable(), nil
}

// fail records the replica's first fail-stop cause and returns the
// wrapped error subsequent operations will see.
func (r *Replica) fail(cause error) error {
	r.failMu.Lock()
	if r.failErr == nil {
		r.failErr = cause
	}
	r.failMu.Unlock()
	return r.Failed()
}

// Failed returns the sticky fail-stop error, or nil while the replica is
// healthy. A failed replica refuses delivery, read-only flows, and
// promotion; it must be rebuilt (full resync) to rejoin.
func (r *Replica) Failed() error {
	r.failMu.Lock()
	defer r.failMu.Unlock()
	if r.failErr == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrFailed, r.failErr)
}

// Warming returns the number of bootstrapped-but-unresolved transactions
// still gating read-only flows (see ErrWarming); zero on a healthy live
// replica.
func (r *Replica) Warming() int { return r.replayer.Warming() }

// ExecReadOnly runs a read-only flow against the replica's replayed
// state, serially within the calling worker: reads observe the commit
// horizon replay has reached (bounded staleness — the lag is primary
// commit horizon minus replica commit horizon). Replay applies only
// whole, resolved transactions (and does so exclusively against this
// path via stateMu), so a flow observes committed state only — a
// transaction whose commit record has not been replayed is entirely
// invisible, even if its update records already hardened here. Write
// actions are refused, as are flows while the replica is failed or
// warming after a bootstrap. The ELR read-only completion rule runs
// unchanged in the storage manager; on a replica it never waits, because
// delivery hardens the stream before replay makes it visible.
func (r *Replica) ExecReadOnly(worker int, flow *xct.Flow) error {
	r.roleMu.RLock()
	defer r.roleMu.RUnlock()
	if r.promoted {
		return ErrPromoted
	}
	if err := r.Failed(); err != nil {
		return err
	}
	r.stateMu.RLock()
	defer r.stateMu.RUnlock()
	if r.replayer.Warming() > 0 {
		return ErrWarming
	}
	t := r.sm.Begin()
	ses := r.sm.Session(worker)
	env := &xct.Env{Txn: t, Ses: ses}
	for pi := range flow.Phases {
		for _, a := range flow.Phases[pi].Actions {
			if a.Mode == xct.Write {
				_ = r.sm.Rollback(t)
				return ErrReadOnly
			}
			if a.Run == nil {
				continue
			}
			if err := a.Run(env); err != nil {
				_ = r.sm.Rollback(t)
				return err
			}
		}
	}
	r.Reads.Inc()
	return r.sm.Commit(t)
}

// Promote brings the replica up as a primary at the end of its delivered
// stream: an appendable group-commit log manager is adopted over the
// same store (appends continue at the delivered end), the replayer
// closes committed-but-unended transactions and rolls back in-flight
// losers with CLRs, and the storage manager returns writable. Unacked
// primary tail beyond what was delivered is implicitly discarded — it
// never reached this log, and a rejoining ex-primary must truncate it.
func (r *Replica) Promote() (*sm.SM, sm.PromoteStats, error) {
	r.roleMu.Lock()
	defer r.roleMu.Unlock()
	if r.promoted {
		return r.sm, sm.PromoteStats{}, fmt.Errorf("repl: already promoted")
	}
	if err := r.Failed(); err != nil {
		// A failed replica's state trails its own hardened log; promoting
		// it would surface that divergence as the new primary's history.
		return nil, sm.PromoteStats{}, err
	}
	r.promoteAt = r.rlog.Durable()
	lg, err := clog.New(r.store, r.cs)
	if err != nil {
		return nil, sm.PromoteStats{}, err
	}
	r.sm.AdoptLog(lg)
	st, err := r.replayer.Promote()
	if err != nil {
		return nil, st, r.fail(err)
	}
	r.promoted = true
	return r.sm, st, nil
}

// Redone returns the count of physical operations replayed.
func (r *Replica) Redone() int64 { return r.replayer.Redone() }

// RedoStats exposes the replayer's applier-pool monitoring view (zero
// workers when replaying serially or after promotion retired the pool).
func (r *Replica) RedoStats() sm.RedoStats { return r.replayer.RedoStats() }

// Close shuts the replica down: the applier pool drains and joins first,
// then the storage manager closes.
func (r *Replica) Close() error {
	r.replayer.Close()
	return r.sm.Close()
}

// ReadEngine adapts a replica to the engine.Engine interface so workload
// drivers can point read-only mixes at it.
type ReadEngine struct{ R *Replica }

// Name implements engine.Engine.
func (e ReadEngine) Name() string { return "replica-read" }

// Exec implements engine.Engine.
func (e ReadEngine) Exec(worker int, flow *xct.Flow) error {
	return e.R.ExecReadOnly(worker, flow)
}

// Close implements engine.Engine.
func (e ReadEngine) Close() error { return nil }

// assert interface satisfaction.
var (
	_ wal.Manager     = (*replicaLog)(nil)
	_ wal.AsyncForcer = (*replicaLog)(nil)
)
