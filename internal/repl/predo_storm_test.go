package repl

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"
	"testing"

	"dora/internal/buffer"
	"dora/internal/catalog"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/wal"
	"dora/internal/xct"
)

// ddlBoth registers two tables — accounts plus an orders table with its
// own secondary — so parallel replay exercises cross-table fan-out.
func ddlBoth(s *sm.SM) error {
	if err := ddl(s); err != nil {
		return err
	}
	_, err := s.CreateTable(sm.TableSpec{
		Name: "orders",
		Fields: []catalog.Field{
			{Name: "id", Type: tuple.TInt},
			{Name: "item", Type: tuple.TString},
			{Name: "qty", Type: tuple.TInt},
		},
		KeyFields: []string{"id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
		Secondaries: []sm.IndexSpec{{
			Name:   "by_qty",
			Fields: []string{"qty"},
			Key:    func(r tuple.Record) int64 { return r[2].Int },
		}},
	})
	return err
}

// heapDigest hashes every heap page of every table (catalog order,
// ascending page id) for byte-for-byte state comparison across engines.
func heapDigest(t *testing.T, s *sm.SM) string {
	t.Helper()
	h := sha256.New()
	for _, tbl := range s.Cat.Tables() {
		pids := tbl.Heap.Pages()
		sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
		for _, pid := range pids {
			f, err := s.Pool.Fetch(pid)
			if err != nil {
				t.Fatal(err)
			}
			f.Latch.RLock()
			h.Write(f.Page.Data[:])
			f.Latch.RUnlock()
			s.Pool.Unpin(f, false)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestParallelRedoStormRace is the -race workout for the partition-
// parallel redo pipeline: a K=2 primary ships a mixed insert/update/
// delete storm over two tables to a serial replica and a parallel one
// (4 appliers) while readers hammer the parallel side; the replicas must
// end byte-identical, crash recovery of the primary's log must end
// byte-identical at 1 and 4 appliers, and promoting the parallel replica
// mid-readers must surface every acked effect exactly once.
func TestParallelRedoStormRace(t *testing.T) {
	store := wal.NewMemStore()
	s, err := sm.Open(sm.Options{Frames: 256, LogStore: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := ddlBoth(s); err != nil {
		t.Fatal(err)
	}
	sh, err := AttachPrimary(s, store, Rule{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewReplica(Options{Frames: 256, DDL: ddlBoth})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewReplica(Options{Frames: 256, DDL: ddlBoth, RedoWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.AddReplica("serial", LocalLink{serial}); err != nil {
		t.Fatal(err)
	}
	if err := sh.AddReplica("parallel", LocalLink{par}); err != nil {
		t.Fatal(err)
	}

	const keys = 64
	tbl := s.Cat.Table("accounts")
	otbl := s.Cat.Table("orders")
	for i := int64(0); i < keys; i++ {
		commitRow(t, s, acct(i, "k", 0))
	}

	// Each writer owns a disjoint 16-key accounts slice and a disjoint
	// orders id range: increments on accounts, insert-then-delete churn on
	// orders (odd-n orders survive, even-n ones are deleted by the next op).
	const writers, perWriter = 4, 48
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ses := s.Session(w)
			for n := 0; n < perWriter; n++ {
				key := int64(w*16 + n%16)
				txn := s.Begin()
				if err := ses.Mutate(txn, tbl, key, func(r tuple.Record) tuple.Record {
					r[2] = tuple.I(r[2].Int + 1)
					return r
				}); err != nil {
					t.Error(err)
					_ = s.Rollback(txn)
					return
				}
				oid := int64(w*1000 + n)
				if err := ses.Insert(txn, otbl, tuple.Record{tuple.I(oid), tuple.S("o"), tuple.I(oid % 7)}); err != nil {
					t.Error(err)
					_ = s.Rollback(txn)
					return
				}
				if n%2 == 1 {
					if err := ses.Delete(txn, otbl, oid-1); err != nil {
						t.Error(err)
						_ = s.Rollback(txn)
						return
					}
				}
				if err := s.Commit(txn); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Readers hammer the parallel replica throughout, tolerating
	// ErrPromoted once failover hits.
	stopRead := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopRead:
					return
				default:
				}
				key := int64(i % keys)
				flow := xct.NewFlow("bal").AddPhase(&xct.Action{
					Table: "accounts", KeyField: "id", Key: key, Mode: xct.Read,
					Run: func(env *xct.Env) error {
						_, err := env.Ses.Read(env.Txn, env.Ses.SM().Cat.Table("accounts"), key)
						return err
					},
				})
				if err := par.ExecReadOnly(100+r, flow); err != nil && err != ErrPromoted {
					t.Errorf("replica read: %v", err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if err := s.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "serial replica catch-up", caughtUp(s, serial))
	waitFor(t, "parallel replica catch-up", caughtUp(s, par))

	// Serial and parallel replay of the same stream end byte-identical.
	if ds, dp := heapDigest(t, serial.SM()), heapDigest(t, par.SM()); ds != dp {
		t.Fatal("parallel replica heap diverges from serial replica")
	}

	// Crash recovery of the primary's log: serial and 4-applier redo end
	// byte-identical too (every writer committed, so no losers here).
	var wantRec string
	for _, workers := range []int{1, 4} {
		s2, err := sm.Open(sm.Options{Frames: 256, Disk: buffer.NewMemDisk(), LogStore: store.CrashCopy(), RedoWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := ddlBoth(s2); err != nil {
			t.Fatal(err)
		}
		if _, err := s2.Recover(); err != nil {
			t.Fatalf("recover workers=%d: %v", workers, err)
		}
		d := heapDigest(t, s2)
		if workers == 1 {
			wantRec = d
		} else if d != wantRec {
			t.Fatal("parallel recovery heap diverges from serial recovery")
		}
		_ = s2.Close()
	}

	// Kill the primary and promote the parallel replica while readers are
	// still running: the pool drains, retires, and every acked effect is
	// visible exactly once on the new primary.
	sh.Close()
	ns, _, err := par.Promote()
	if err != nil {
		t.Fatal(err)
	}
	close(stopRead)
	rg.Wait()
	ses := ns.Session(0)
	ntbl := ns.Cat.Table("accounts")
	var want [keys]int64
	for w := 0; w < writers; w++ {
		for n := 0; n < perWriter; n++ {
			want[w*16+n%16]++
		}
	}
	for key := int64(0); key < keys; key++ {
		rec, err := ses.Read(ns.Begin(), ntbl, key)
		if err != nil {
			t.Fatalf("key %d: %v", key, err)
		}
		if rec[2].Int != want[key] {
			t.Fatalf("key %d balance = %d, want %d", key, rec[2].Int, want[key])
		}
	}
	notbl := ns.Cat.Table("orders")
	for w := 0; w < writers; w++ {
		for n := 0; n < perWriter; n++ {
			oid := int64(w*1000 + n)
			rec, err := ses.Read(ns.Begin(), notbl, oid)
			if n%2 == 1 {
				// Odd-n orders survive; each even-n order was deleted by the
				// following op.
				if err != nil || rec[2].Int != oid%7 {
					t.Fatalf("order %d: %v %v", oid, rec, err)
				}
			} else if err == nil {
				t.Fatalf("deleted order %d still visible", oid)
			}
		}
	}
	_ = serial.Close()
	_ = ns.Close()
}
