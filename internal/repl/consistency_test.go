package repl

import (
	"errors"
	"sync/atomic"
	"testing"

	"dora/internal/buffer"
	"dora/internal/sm"
	"dora/internal/wal"
	"dora/internal/xct"
)

// readFlow builds a read-only flow probing accounts[key].
func readFlow(key int64) *xct.Flow {
	return xct.NewFlow("probe").AddPhase(&xct.Action{
		Table: "accounts", KeyField: "id", Key: key, Mode: xct.Read,
		Run: func(env *xct.Env) error {
			_, err := env.Ses.Read(env.Txn, env.Ses.SM().Cat.Table("accounts"), key)
			return err
		},
	})
}

// TestUncommittedInvisibleOnReplica: group commit ships a transaction's
// update records before its commit record — the replica must not expose
// them until the commit arrives, and must never expose them if the
// transaction aborts (its CLRs cancel the queued records before any of
// them reach the heap).
func TestUncommittedInvisibleOnReplica(t *testing.T) {
	s, _, sh := openPrimary(t, 0)
	defer s.Close()
	defer sh.Close()
	rep := openReplica(t)
	if err := sh.AddReplica("b", LocalLink{rep}); err != nil {
		t.Fatal(err)
	}
	commitRow(t, s, acct(1, "a", 1))
	waitFor(t, "catch-up", caughtUp(s, rep))
	tbl := s.Cat.Table("accounts")

	// In-flight transaction: its insert hardens and ships, no commit yet.
	txn := s.Begin()
	if err := s.Session(0).Insert(txn, tbl, acct(2, "dirty", 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "uncommitted records shipped", func() bool {
		return rep.Expected() >= s.Log.Durable()
	})
	if rep.OpenTxns() == 0 {
		t.Fatal("uncommitted txn not tracked on replica")
	}
	if _, err := replicaRead(t, rep, 2); err == nil {
		t.Fatal("uncommitted row visible on replica (dirty read)")
	}
	// Commit resolves it: the whole transaction becomes visible.
	if err := s.Commit(txn); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "commit replayed", caughtUp(s, rep))
	if rec, err := replicaRead(t, rep, 2); err != nil || rec[2].Int != 2 {
		t.Fatalf("committed row: %v %v", rec, err)
	}

	// An aborted transaction's records must never surface: insert ships,
	// then the rollback's CLR + end cancel it in the queue.
	txn2 := s.Begin()
	if err := s.Session(0).Insert(txn2, tbl, acct(3, "aborted", 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "loser records shipped", func() bool {
		return rep.Expected() >= s.Log.Durable()
	})
	if _, err := replicaRead(t, rep, 3); err == nil {
		t.Fatal("in-flight row visible on replica")
	}
	if err := s.Rollback(txn2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rollback replayed", func() bool {
		_ = s.Log.FlushAll()
		return rep.Expected() >= s.Log.Durable() && rep.OpenTxns() == 0
	})
	if _, err := replicaRead(t, rep, 3); err == nil {
		t.Fatal("aborted row visible on replica")
	}
	// The consistent horizon caught the delivery horizon once everything
	// resolved.
	if rep.AppliedLSN() != rep.Expected() {
		t.Fatalf("applied %d != delivered %d after quiesce", rep.AppliedLSN(), rep.Expected())
	}
}

// TestApplyErrorFailsReplica: an error while replaying a hardened extent
// must fail-stop the replica — its log is ahead of its state and
// delivery dedupes against the log, so serving reads or promoting would
// expose divergent state.
func TestApplyErrorFailsReplica(t *testing.T) {
	// Craft a hardened stream whose records reference a table the replica
	// does not have: analysis accepts it, application cannot.
	badStore := wal.NewMemStore()
	lg, err := wal.New(badStore, nil)
	if err != nil {
		t.Fatal(err)
	}
	lg.Append(&wal.Record{Kind: wal.KInsert, TxnID: 7, Table: 999, Redo: []byte{1, 2, 3}})
	lg.Append(&wal.Record{Kind: wal.KCommit, TxnID: 7, PrevLSN: wal.LSN(wal.HeaderSize)})
	if err := lg.FlushAll(); err != nil {
		t.Fatal(err)
	}
	origin, body := streamBody(t, badStore)

	rep := openReplica(t)
	if _, err := rep.Deliver(origin, body); !errors.Is(err, ErrFailed) {
		t.Fatalf("want ErrFailed from poisoned delivery, got %v", err)
	}
	if rep.Failed() == nil {
		t.Fatal("replica not marked failed")
	}
	if _, err := rep.Deliver(rep.Expected(), nil); !errors.Is(err, ErrFailed) {
		t.Fatalf("delivery after failure: want ErrFailed, got %v", err)
	}
	if err := rep.ExecReadOnly(0, readFlow(1)); !errors.Is(err, ErrFailed) {
		t.Fatalf("read on failed replica: want ErrFailed, got %v", err)
	}
	if _, _, err := rep.Promote(); !errors.Is(err, ErrFailed) {
		t.Fatalf("promote of failed replica: want ErrFailed, got %v", err)
	}
}

// flakyStore injects Contents failures, exercising the shipper's
// gap-heal error path.
type flakyStore struct {
	wal.Store
	fail atomic.Bool
}

func (f *flakyStore) Contents() ([]byte, error) {
	if f.fail.Load() {
		return nil, errors.New("injected store read failure")
	}
	return f.Store.Contents()
}

// TestSinkHealFailureHoldsExtent: when the sink cannot heal a stream gap
// from the store, it must hold the out-of-order extent back (it is
// hardened; the next sink call re-heals) instead of pushing it and
// tearing every link down on a stream-gap error.
func TestSinkHealFailureHoldsExtent(t *testing.T) {
	store := wal.NewMemStore()
	s, err := sm.Open(sm.Options{Frames: 256, LogStore: store})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := ddl(s); err != nil {
		t.Fatal(err)
	}
	fl := &flakyStore{Store: store}
	sh, err := AttachPrimary(s, fl, Rule{K: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	rep := openReplica(t)
	if err := sh.AddReplica("b", LocalLink{rep}); err != nil {
		t.Fatal(err)
	}
	commitRow(t, s, acct(1, "a", 1))
	waitFor(t, "catch-up", caughtUp(s, rep))

	// Open a gap: harden extents while the sink is detached.
	src := s.Log.(wal.ExtentSource)
	src.SetExtentSink(nil)
	commitRow(t, s, acct(2, "a", 2))
	commitRow(t, s, acct(3, "a", 3))
	if err := s.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	src.SetExtentSink(sh.sink)

	// The next extent needs a heal, and the store read fails: the extent
	// must be held back with the link intact.
	fl.fail.Store(true)
	commitRow(t, s, acct(4, "a", 4))
	waitFor(t, "heal failure observed", func() bool {
		_ = s.Log.FlushAll()
		return sh.HealFails.Load() > 0
	})
	if n := len(sh.Replicas()); n != 1 {
		t.Fatalf("live links after heal failure = %d, want 1 (link torn down)", n)
	}
	if _, err := replicaRead(t, rep, 2); err == nil {
		t.Fatal("replica received post-gap data out of order")
	}

	// Store reads recover: the next sink call heals the whole gap —
	// including the held-back extent — and the stream converges.
	fl.fail.Store(false)
	commitRow(t, s, acct(5, "a", 5))
	waitFor(t, "post-heal convergence", caughtUp(s, rep))
	for i := int64(1); i <= 5; i++ {
		if rec, err := replicaRead(t, rep, i); err != nil || rec[2].Int != i {
			t.Fatalf("row %d after heal: %v %v", i, rec, err)
		}
	}
	if n := len(sh.Replicas()); n != 1 {
		t.Fatalf("live links after recovery = %d, want 1", n)
	}
}

// TestBootstrapWarmingGatesReads: bootstrap redo replays every retained
// record — including those of transactions in flight at the truncation
// point — so until the stream resolves each of them, read-only flows
// must be refused rather than exposed to uncommitted ex-primary state.
func TestBootstrapWarmingGatesReads(t *testing.T) {
	storeA := wal.NewMemStore()
	diskA := buffer.NewMemDisk()
	a, err := sm.Open(sm.Options{Frames: 256, Disk: diskA, LogStore: storeA})
	if err != nil {
		t.Fatal(err)
	}
	if err := ddl(a); err != nil {
		t.Fatal(err)
	}
	shA, err := AttachPrimary(a, storeA, Rule{K: 0})
	if err != nil {
		t.Fatal(err)
	}
	b := openReplica(t)
	if err := shA.AddReplica("b", LocalLink{b}); err != nil {
		t.Fatal(err)
	}
	commitRow(t, a, acct(1, "a", 1))
	// A transaction is still in flight when the primary dies; its insert
	// hardened (and shipped), its resolution never did.
	loser := a.Begin()
	if err := a.Session(0).Insert(loser, a.Cat.Table("accounts"), acct(2, "loser", 2)); err != nil {
		t.Fatal(err)
	}
	if err := a.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream shipped", func() bool { return b.Expected() >= a.Log.Durable() })
	shA.Close()
	_ = a.Log.Close() // crash

	nb, _, err := b.Promote() // rolls the loser back with CLRs
	if err != nil {
		t.Fatal(err)
	}
	shB, err := AttachPrimary(nb, b.store, Rule{K: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer shB.Close()

	// The ex-primary rejoins: truncate at the promotion point (a no-op
	// here — nothing past it), bootstrap from its own log and disk.
	if err := wal.TruncateTail(storeA, b.PromotionLSN()); err != nil {
		t.Fatal(err)
	}
	a2, err := NewReplica(Options{Frames: 256, Disk: diskA, LogStore: storeA, DDL: ddl, Bootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	if a2.Warming() == 0 {
		t.Fatal("bootstrapped replica with an in-flight txn is not warming")
	}
	if err := a2.ExecReadOnly(0, readFlow(1)); !errors.Is(err, ErrWarming) {
		t.Fatalf("read while warming: want ErrWarming, got %v", err)
	}
	// Joining the new primary delivers the promotion's CLR + end for the
	// loser; warming clears and reads are admitted.
	if err := shB.AddReplica("a", LocalLink{a2}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "warming cleared", func() bool {
		_ = nb.Log.FlushAll()
		return a2.Warming() == 0
	})
	if err := a2.ExecReadOnly(0, readFlow(1)); err != nil {
		t.Fatalf("read after warming: %v", err)
	}
	if _, err := replicaRead(t, a2, 2); err == nil {
		t.Fatal("loser row survived on rejoined replica")
	}
}
