package repl

import (
	"strings"
	"sync"
	"testing"

	"dora/internal/buffer"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/wal"
	"dora/internal/xct"
)

// streamBody returns a store's stream origin and body bytes.
func streamBody(t *testing.T, store wal.Store) (uint64, []byte) {
	t.Helper()
	raw, err := store.Contents()
	if err != nil {
		t.Fatal(err)
	}
	origin, body, err := wal.StreamOrigin(raw)
	if err != nil {
		t.Fatal(err)
	}
	return origin, body
}

// TestTornExtentNotApplied delivers a group extent cut mid-record — the
// shape a primary crash leaves mid-ship — and checks the replica persists
// and replays only the whole-record prefix, then heals when the full
// extent is retried.
func TestTornExtentNotApplied(t *testing.T) {
	s, store, _ := func() (*sm.SM, wal.Store, *Shipper) {
		return openPrimary(t, 0)
	}()
	defer s.Close()
	for i := int64(1); i <= 10; i++ {
		commitRow(t, s, acct(i, "a", i))
	}
	if err := s.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	origin, body := streamBody(t, store)

	rep := openReplica(t)
	cut := len(body) - 3 // mid-record
	ack, err := rep.Deliver(origin, body[:cut])
	if err != nil {
		t.Fatalf("torn delivery: %v", err)
	}
	if ack >= origin+uint64(len(body)) {
		t.Fatalf("torn extent fully acked: %d", ack)
	}
	if ack > origin+uint64(cut) {
		t.Fatalf("acked past delivery: %d", ack)
	}
	// Retry with the full extent: the overlap is trimmed, the tail lands.
	ack2, err := rep.Deliver(origin, body)
	if err != nil {
		t.Fatal(err)
	}
	if want := origin + uint64(len(body)); ack2 != want {
		t.Fatalf("ack = %d, want %d", ack2, want)
	}
	for i := int64(1); i <= 10; i++ {
		if rec, err := replicaRead(t, rep, i); err != nil || rec[2].Int != i {
			t.Fatalf("row %d after heal: %v %v", i, rec, err)
		}
	}
	// Pure duplicate and gapped deliveries.
	if _, err := rep.Deliver(origin, body[:cut]); err != nil {
		t.Fatalf("duplicate delivery: %v", err)
	}
	if _, err := rep.Deliver(ack2+100, []byte{1, 2, 3}); err == nil {
		t.Fatal("gap accepted")
	}
}

// TestPromoteExactlyOnce: every commit acknowledged under the semi-sync
// rule survives failover exactly once; the unshipped tail does not.
func TestPromoteExactlyOnce(t *testing.T) {
	s, _, sh := openPrimary(t, 1)
	rep := openReplica(t)
	if err := sh.AddReplica("b", LocalLink{rep}); err != nil {
		t.Fatal(err)
	}
	const acked, tail = 120, 30
	for i := int64(1); i <= acked; i++ {
		commitRow(t, s, acct(i, "a", i)) // returned ⇒ replica acked it
	}
	// "Crash": shipping stops; the tail commits complete degraded and
	// never reach the replica — the divergent suffix of the dead primary.
	sh.Close()
	for i := int64(acked + 1); i <= acked+tail; i++ {
		commitRow(t, s, acct(i, "a", i))
	}

	ns, st, err := rep.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Promoted() {
		t.Fatal("not promoted")
	}
	ses := ns.Session(0)
	tbl := ns.Cat.Table("accounts")
	n := 0
	if err := ses.ScanRange(ns.Begin(), tbl, 1, acked+tail, func(key int64, rec tuple.Record) bool {
		if key > acked {
			t.Fatalf("unacked tail row %d survived failover", key)
		}
		if rec[2].Int != key {
			t.Fatalf("row %d corrupt: %v", key, rec)
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != acked {
		t.Fatalf("acked rows after promote = %d, want %d (exactly-once)", n, acked)
	}
	// The new primary is writable.
	txn := ns.Begin()
	if err := ses.Insert(txn, tbl, acct(1000, "post-failover", 1)); err != nil {
		t.Fatal(err)
	}
	if err := ns.Commit(txn); err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Read(ns.Begin(), tbl, 1000); err != nil {
		t.Fatal(err)
	}
	_ = st
	// Delivery after promotion is refused.
	if _, err := rep.Deliver(rep.Expected(), []byte{1}); err != ErrPromoted {
		t.Fatalf("want ErrPromoted, got %v", err)
	}
}

// TestPromoteRollsBackInFlight: a transaction open at the end of the
// stream never committed anywhere — promotion must roll it back with CLRs.
func TestPromoteRollsBackInFlight(t *testing.T) {
	s, _, sh := openPrimary(t, 0)
	defer s.Close()
	defer sh.Close()
	rep := openReplica(t)
	if err := sh.AddReplica("b", LocalLink{rep}); err != nil {
		t.Fatal(err)
	}
	commitRow(t, s, acct(1, "committed", 1))
	loser := s.Begin()
	for i := int64(10); i < 13; i++ {
		if err := s.Session(0).Insert(loser, s.Cat.Table("accounts"), acct(i, "loser", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Log.FlushAll(); err != nil { // harden + ship without committing
		t.Fatal(err)
	}
	waitFor(t, "loser records shipped", func() bool {
		return rep.Expected() >= s.Log.Durable()
	})
	if rep.OpenTxns() != 1 {
		t.Fatalf("open txns on replica = %d", rep.OpenTxns())
	}

	ns, st, err := rep.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if st.Losers != 1 || st.Undone != 3 {
		t.Fatalf("promote stats = %+v", st)
	}
	ses := ns.Session(0)
	tbl := ns.Cat.Table("accounts")
	if _, err := ses.Read(ns.Begin(), tbl, 1); err != nil {
		t.Fatalf("committed row lost: %v", err)
	}
	for i := int64(10); i < 13; i++ {
		if _, err := ses.Read(ns.Begin(), tbl, i); err == nil {
			t.Fatalf("loser row %d survived promotion", i)
		}
	}
}

// TestPromoteClosesWinners: a commit record without its end record (the
// primary died between hardening the commit and the end) is a winner —
// promotion closes it without undoing anything.
func TestPromoteClosesWinners(t *testing.T) {
	s, store, _ := func() (*sm.SM, wal.Store, *Shipper) {
		return openPrimary(t, 0)
	}()
	defer s.Close()
	commitRow(t, s, acct(1, "w", 1))
	if err := s.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	origin, body := streamBody(t, store)
	// Find the last KEnd and deliver the stream cut just before it.
	var endAt uint64
	if _, err := wal.DecodeStream(origin, body, func(r *wal.Record) error {
		if r.Kind == wal.KEnd {
			endAt = r.LSN
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if endAt == 0 {
		t.Fatal("no end record found")
	}
	rep := openReplica(t)
	if _, err := rep.Deliver(origin, body[:endAt-origin]); err != nil {
		t.Fatal(err)
	}
	if rep.OpenTxns() != 1 {
		t.Fatalf("open txns = %d", rep.OpenTxns())
	}
	ns, st, err := rep.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if st.Winners != 1 || st.Losers != 0 {
		t.Fatalf("promote stats = %+v", st)
	}
	if rec, err := ns.Session(0).Read(ns.Begin(), ns.Cat.Table("accounts"), 1); err != nil || rec[2].Int != 1 {
		t.Fatalf("winner's row: %v %v", rec, err)
	}
}

// TestRejoinAfterFailover: the dead primary comes back, truncates its
// divergent tail at the promotion point, bootstraps from its own log and
// disk, and rejoins the new primary as a replica.
func TestRejoinAfterFailover(t *testing.T) {
	storeA := wal.NewMemStore()
	diskA := buffer.NewMemDisk()
	a, err := sm.Open(sm.Options{Frames: 256, Disk: diskA, LogStore: storeA})
	if err != nil {
		t.Fatal(err)
	}
	if err := ddl(a); err != nil {
		t.Fatal(err)
	}
	shA, err := AttachPrimary(a, storeA, Rule{K: 0})
	if err != nil {
		t.Fatal(err)
	}
	b := openReplica(t)
	if err := shA.AddReplica("b", LocalLink{b}); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 50; i++ {
		commitRow(t, a, acct(i, "a", i))
	}
	waitFor(t, "b catch-up", caughtUp(a, b))
	// Partition: B stops receiving; A commits a divergent tail, then dies.
	shA.DropReplica("b")
	for i := int64(51); i <= 60; i++ {
		commitRow(t, a, acct(i, "a", i))
	}
	shA.Close()
	_ = a.Log.Close() // crash: stop the flush daemon; pages stay unflushed

	// Failover to B.
	nb, _, err := b.Promote()
	if err != nil {
		t.Fatal(err)
	}
	shB, err := AttachPrimary(nb, b.store, Rule{K: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer shB.Close()
	commitRow(t, nb, acct(100, "b-era", 100))

	// Rejoin A: truncate the unacked tail at the promotion point, then
	// bootstrap over the old log and disk.
	if err := wal.TruncateTail(storeA, b.PromotionLSN()); err != nil {
		t.Fatal(err)
	}
	a2, err := NewReplica(Options{Frames: 256, Disk: diskA, LogStore: storeA, DDL: ddl, Bootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a2.Expected(), b.PromotionLSN(); got != want {
		t.Fatalf("rejoined expected = %d, want %d", got, want)
	}
	if err := shB.AddReplica("a", LocalLink{a2}); err != nil {
		t.Fatal(err)
	}
	commitRow(t, nb, acct(101, "b-era", 101))
	waitFor(t, "a2 catch-up", caughtUp(nb, a2))
	// Pre-failover state survived, the divergent tail did not, and the
	// new primary's history arrived.
	for i := int64(1); i <= 50; i++ {
		if _, err := replicaRead(t, a2, i); err != nil {
			t.Fatalf("row %d lost on rejoin: %v", i, err)
		}
	}
	for i := int64(51); i <= 60; i++ {
		if _, err := replicaRead(t, a2, i); err == nil {
			t.Fatalf("divergent row %d survived tail truncation", i)
		}
	}
	for _, id := range []int64{100, 101} {
		if _, err := replicaRead(t, a2, id); err != nil {
			t.Fatalf("b-era row %d missing: %v", id, err)
		}
	}
}

// TestRejoinDivergentDiskRefused: an ex-primary that flushed pages under
// its divergent tail cannot rejoin by log truncation alone.
func TestRejoinDivergentDiskRefused(t *testing.T) {
	storeA := wal.NewMemStore()
	diskA := buffer.NewMemDisk()
	a, err := sm.Open(sm.Options{Frames: 256, Disk: diskA, LogStore: storeA})
	if err != nil {
		t.Fatal(err)
	}
	if err := ddl(a); err != nil {
		t.Fatal(err)
	}
	commitRow(t, a, acct(1, "a", 1))
	promoteAt := a.Log.Durable() // the stand-in promotion point
	commitRow(t, a, acct(2, "divergent", 2))
	if _, err := a.Checkpoint(); err != nil { // flushes pages at divergent LSNs
		t.Fatal(err)
	}
	_ = a.Log.Close()
	if err := wal.TruncateTail(storeA, promoteAt); err != nil {
		t.Fatal(err)
	}
	_, err = NewReplica(Options{Frames: 256, Disk: diskA, LogStore: storeA, DDL: ddl, Bootstrap: true})
	if err == nil || !strings.Contains(err.Error(), "resync") {
		t.Fatalf("want full-resync refusal, got %v", err)
	}
}

// TestReplicationStormRace is the -race workout: concurrent writers on
// the primary, read-only sessions on the replica, promotion mid-run.
func TestReplicationStormRace(t *testing.T) {
	s, _, sh := openPrimary(t, 1)
	rep := openReplica(t)
	if err := sh.AddReplica("b", LocalLink{rep}); err != nil {
		t.Fatal(err)
	}
	const keys = 64
	tbl := s.Cat.Table("accounts")
	for i := int64(0); i < keys; i++ {
		commitRow(t, s, acct(i, "k", 0))
	}

	// Each writer owns a disjoint 16-key slice (raw sessions have no lock
	// manager; the engines provide isolation in real deployments).
	const writers, perWriter = 4, 48
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ses := s.Session(w)
			for n := 0; n < perWriter; n++ {
				key := int64(w*16 + n%16)
				txn := s.Begin()
				if err := ses.Mutate(txn, tbl, key, func(r tuple.Record) tuple.Record {
					r[2] = tuple.I(r[2].Int + 1)
					return r
				}); err != nil {
					t.Error(err)
					_ = s.Rollback(txn)
					return
				}
				if err := s.Commit(txn); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Readers hammer the replica throughout, tolerating ErrPromoted once
	// failover hits.
	stopRead := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopRead:
					return
				default:
				}
				key := int64(i % keys)
				flow := xct.NewFlow("bal").AddPhase(&xct.Action{
					Table: "accounts", KeyField: "id", Key: key, Mode: xct.Read,
					Run: func(env *xct.Env) error {
						_, err := env.Ses.Read(env.Txn, env.Ses.SM().Cat.Table("accounts"), key)
						return err
					},
				})
				if err := rep.ExecReadOnly(100+r, flow); err != nil && err != ErrPromoted {
					t.Errorf("replica read: %v", err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	// Kill the primary and promote while readers are still running.
	sh.Close()
	ns, _, err := rep.Promote()
	if err != nil {
		t.Fatal(err)
	}
	close(stopRead)
	rg.Wait()
	// Every acked increment is visible exactly once: K=1 means each
	// Commit that returned was replayed on the replica first.
	ses := ns.Session(0)
	ntbl := ns.Cat.Table("accounts")
	var want [keys]int64
	for w := 0; w < writers; w++ {
		for n := 0; n < perWriter; n++ {
			want[w*16+n%16]++
		}
	}
	for key := int64(0); key < keys; key++ {
		rec, err := ses.Read(ns.Begin(), ntbl, key)
		if err != nil {
			t.Fatalf("key %d: %v", key, err)
		}
		if rec[2].Int != want[key] {
			t.Fatalf("key %d balance = %d, want %d", key, rec[2].Int, want[key])
		}
	}
}
