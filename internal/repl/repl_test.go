package repl

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"dora/internal/catalog"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/wal"
	"dora/internal/xct"
)

// ddl registers the test schema: (id, name, balance) keyed on id with a
// secondary index on balance — enough to exercise replay's incremental
// primary and secondary index maintenance.
func ddl(s *sm.SM) error {
	_, err := s.CreateTable(sm.TableSpec{
		Name: "accounts",
		Fields: []catalog.Field{
			{Name: "id", Type: tuple.TInt},
			{Name: "name", Type: tuple.TString},
			{Name: "balance", Type: tuple.TInt},
		},
		KeyFields: []string{"id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
		Secondaries: []sm.IndexSpec{{
			Name:   "by_balance",
			Fields: []string{"balance"},
			Key:    func(r tuple.Record) int64 { return r[2].Int },
		}},
	})
	return err
}

func acct(id int64, name string, bal int64) tuple.Record {
	return tuple.Record{tuple.I(id), tuple.S(name), tuple.I(bal)}
}

// openPrimary opens a primary with a shipper attached under rule K.
func openPrimary(t *testing.T, k int) (*sm.SM, wal.Store, *Shipper) {
	t.Helper()
	store := wal.NewMemStore()
	s, err := sm.Open(sm.Options{Frames: 256, LogStore: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := ddl(s); err != nil {
		t.Fatal(err)
	}
	sh, err := AttachPrimary(s, store, Rule{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return s, store, sh
}

func openReplica(t *testing.T) *Replica {
	t.Helper()
	r, err := NewReplica(Options{Frames: 256, DDL: ddl})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// caughtUp reports the replica's commit horizon reaching the primary's.
func caughtUp(s *sm.SM, r *Replica) func() bool {
	return func() bool { return r.CommitHorizon() >= s.LastCommitLSN() }
}

func commitRow(t *testing.T, s *sm.SM, rec tuple.Record) {
	t.Helper()
	tbl := s.Cat.Table("accounts")
	txn := s.Begin()
	if err := s.Session(0).Insert(txn, tbl, rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(txn); err != nil {
		t.Fatal(err)
	}
}

func replicaRead(t *testing.T, r *Replica, id int64) (tuple.Record, error) {
	t.Helper()
	s := r.SM()
	return s.Session(0).Read(s.Begin(), s.Cat.Table("accounts"), id)
}

func TestShipReplayRead(t *testing.T) {
	s, _, sh := openPrimary(t, 0)
	defer s.Close()
	defer sh.Close()
	rep := openReplica(t)
	if err := sh.AddReplica("b", LocalLink{rep}); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 50; i++ {
		commitRow(t, s, acct(i, "a", i*10))
	}
	// Update moves a secondary key; delete removes both index entries.
	tbl := s.Cat.Table("accounts")
	txn := s.Begin()
	if err := s.Session(0).Update(txn, tbl, 1, acct(1, "a", 99999)); err != nil {
		t.Fatal(err)
	}
	if err := s.Session(0).Delete(txn, tbl, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(txn); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replica catch-up", caughtUp(s, rep))

	rec, err := replicaRead(t, rep, 42)
	if err != nil || rec[2].Int != 420 {
		t.Fatalf("replica read 42: %v %v", rec, err)
	}
	if _, err := replicaRead(t, rep, 2); err == nil {
		t.Fatal("deleted row visible on replica")
	}
	rs := rep.SM()
	rec, err = rs.Session(0).ReadByIndex(rs.Begin(), rs.Cat.Table("accounts"), "by_balance", 99999)
	if err != nil || rec[0].Int != 1 {
		t.Fatalf("replica secondary probe: %v %v", rec, err)
	}
	// The last end record ships in a flush after its commit record; only
	// once the whole stream is over does the open-transaction set drain.
	if err := s.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "end records shipped", func() bool {
		return rep.Expected() >= s.Log.Durable() && rep.OpenTxns() == 0
	})
}

func TestCatchUpJoin(t *testing.T) {
	s, _, sh := openPrimary(t, 0)
	defer s.Close()
	defer sh.Close()
	for i := int64(1); i <= 30; i++ {
		commitRow(t, s, acct(i, "a", i))
	}
	// The replica joins late: its missing prefix is read back from the
	// primary's store and queued ahead of the live flow.
	rep := openReplica(t)
	if err := sh.AddReplica("late", LocalLink{rep}); err != nil {
		t.Fatal(err)
	}
	commitRow(t, s, acct(31, "a", 31))
	waitFor(t, "late replica catch-up", caughtUp(s, rep))
	for i := int64(1); i <= 31; i++ {
		if _, err := replicaRead(t, rep, i); err != nil {
			t.Fatalf("row %d missing after catch-up: %v", i, err)
		}
	}
}

func TestSemiSyncCommitVisibility(t *testing.T) {
	s, _, sh := openPrimary(t, 1)
	defer s.Close()
	defer sh.Close()
	rep := openReplica(t)
	if err := sh.AddReplica("b", LocalLink{rep}); err != nil {
		t.Fatal(err)
	}
	// Under K=1 a returned commit has been acked by the replica, and the
	// replica acks only after hardening and replaying — the row must be
	// there with no waiting.
	for i := int64(1); i <= 20; i++ {
		commitRow(t, s, acct(i, "a", i))
		if rec, err := replicaRead(t, rep, i); err != nil || rec[2].Int != i {
			t.Fatalf("semi-sync commit %d not visible on replica: %v %v", i, rec, err)
		}
	}
	if sh.Degraded.Load() != 0 {
		t.Fatalf("degraded = %d with a live replica", sh.Degraded.Load())
	}
}

func TestSemiSyncDegradesWithoutReplicas(t *testing.T) {
	s, _, sh := openPrimary(t, 1)
	defer s.Close()
	defer sh.Close()
	done := make(chan error, 1)
	go func() {
		tbl := s.Cat.Table("accounts")
		txn := s.Begin()
		if err := s.Session(0).Insert(txn, tbl, acct(1, "a", 1)); err != nil {
			done <- err
			return
		}
		done <- s.Commit(txn)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("semi-sync commit wedged with zero replicas")
	}
	if sh.Degraded.Load() == 0 {
		t.Fatal("expected a degraded commit")
	}
}

func TestSemiSyncReplicaDeathReleasesWaiters(t *testing.T) {
	s, _, sh := openPrimary(t, 1)
	defer s.Close()
	defer sh.Close()
	rep := openReplica(t)
	if err := sh.AddReplica("b", LocalLink{rep}); err != nil {
		t.Fatal(err)
	}
	commitRow(t, s, acct(1, "a", 1))
	// Stall the stream by promoting the replica out from under the
	// primary: Deliver starts failing, the sender drops the link, and the
	// parked commit must degrade instead of wedging.
	if _, _, err := rep.Promote(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		tbl := s.Cat.Table("accounts")
		txn := s.Begin()
		if err := s.Session(0).Insert(txn, tbl, acct(2, "a", 2)); err != nil {
			done <- err
			return
		}
		done <- s.Commit(txn)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("commit wedged after replica death")
	}
}

func TestReplicaRefusesWrites(t *testing.T) {
	s, _, sh := openPrimary(t, 0)
	defer s.Close()
	defer sh.Close()
	rep := openReplica(t)
	if err := sh.AddReplica("b", LocalLink{rep}); err != nil {
		t.Fatal(err)
	}
	commitRow(t, s, acct(1, "a", 1))
	waitFor(t, "replica catch-up", caughtUp(s, rep))

	read := xct.NewFlow("read").AddPhase(&xct.Action{
		Table: "accounts", KeyField: "id", Key: 1, Mode: xct.Read,
		Run: func(env *xct.Env) error {
			rec, err := env.Ses.Read(env.Txn, env.Ses.SM().Cat.Table("accounts"), 1)
			if err == nil && rec[2].Int != 1 {
				err = errors.New("wrong balance")
			}
			return err
		},
	})
	if err := rep.ExecReadOnly(0, read); err != nil {
		t.Fatalf("read-only flow: %v", err)
	}
	write := xct.NewFlow("write").AddPhase(&xct.Action{
		Table: "accounts", KeyField: "id", Key: 9, Mode: xct.Write,
		Run: func(env *xct.Env) error { return nil },
	})
	if err := rep.ExecReadOnly(0, write); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("want ErrReadOnly, got %v", err)
	}
	if rep.Reads.Load() != 1 {
		t.Fatalf("reads = %d", rep.Reads.Load())
	}
}

func TestTruncationBlocksStaleJoiner(t *testing.T) {
	s, _, sh := openPrimary(t, 0)
	defer s.Close()
	defer sh.Close()
	live := openReplica(t)
	if err := sh.AddReplica("live", LocalLink{live}); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 200; i++ {
		commitRow(t, s, acct(i, "a", i))
	}
	waitFor(t, "live replica catch-up", caughtUp(s, live))
	// Checkpoint + trim under the replication constraint: everything is
	// acked, so the store's origin moves up.
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	h, err := s.TrimLog(sh.AckHorizon())
	if err != nil || h == 0 {
		t.Fatalf("trim: h=%d err=%v", h, err)
	}
	// A fresh replica now expects the stream from its beginning, which is
	// gone: catch-up must refuse with full-resync.
	stale := openReplica(t)
	err = sh.AddReplica("stale", LocalLink{stale})
	if err == nil || !strings.Contains(err.Error(), "resync") {
		t.Fatalf("want full-resync refusal, got %v", err)
	}
	// The live replica keeps streaming across the truncation.
	commitRow(t, s, acct(500, "post-trim", 500))
	waitFor(t, "post-trim ship", caughtUp(s, live))
	if _, err := replicaRead(t, live, 500); err != nil {
		t.Fatalf("post-trim row: %v", err)
	}
}

func TestAheadReplicaRefused(t *testing.T) {
	s, _, sh := openPrimary(t, 0)
	defer s.Close()
	defer sh.Close()
	// A replica whose stream runs past the primary's holds divergent
	// history (un-truncated ex-primary) and must be refused.
	store2 := wal.NewMemStore()
	s2, err := sm.Open(sm.Options{Frames: 128, LogStore: store2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := ddl(s2); err != nil {
		t.Fatal(err)
	}
	commitRow(t, s2, acct(1, "divergent", 1))
	rep, err := NewReplica(Options{Frames: 128, DDL: ddl, LogStore: store2, Bootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	err = sh.AddReplica("ahead", LocalLink{rep})
	if err == nil || !strings.Contains(err.Error(), "divergent") {
		t.Fatalf("want divergence refusal, got %v", err)
	}
}

func TestTCPTransport(t *testing.T) {
	s, _, sh := openPrimary(t, 1)
	defer s.Close()
	defer sh.Close()
	rep := openReplica(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, rep)
	link, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.AddReplica("tcp", link); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 25; i++ {
		commitRow(t, s, acct(i, "a", i))
	}
	waitFor(t, "tcp replica catch-up", caughtUp(s, rep))
	for i := int64(1); i <= 25; i++ {
		if rec, err := replicaRead(t, rep, i); err != nil || rec[2].Int != i {
			t.Fatalf("row %d over tcp: %v %v", i, rec, err)
		}
	}
}
