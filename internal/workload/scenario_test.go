package workload

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"dora/internal/xct"
)

// shedEngine commits read-only flows instantly and sheds everything
// else with a typed overload error carrying a RetryAfter hint — the
// shape admission.ErrOverload has, without importing the package.
type shedEngine struct {
	sheds   atomic.Int64
	commits atomic.Int64
}

type tstOverload struct{ after time.Duration }

func (e tstOverload) Error() string           { return "overloaded" }
func (e tstOverload) Overload() time.Duration { return e.after }

func (e *shedEngine) ExecAsync(_ int, flow *xct.Flow, done func(error)) {
	if flowReadOnly(flow) {
		e.commits.Add(1)
		done(nil)
		return
	}
	e.sheds.Add(1)
	done(tstOverload{after: 10 * time.Millisecond})
}

func rwMix() Mix {
	return Mix{
		{Name: "r", Weight: 1, Build: func(*rand.Rand) *xct.Flow {
			return xct.NewFlow("r").AddPhase(&xct.Action{Table: "t", KeyField: "id", Key: 1, Mode: xct.Read})
		}},
		{Name: "w", Weight: 1, Build: func(*rand.Rand) *xct.Flow {
			return xct.NewFlow("w").AddPhase(&xct.Action{Table: "t", KeyField: "id", Key: 1, Mode: xct.Write})
		}},
	}
}

// TestFlashCrowdShape: base rate outside the spike window, peak inside.
func TestFlashCrowdShape(t *testing.T) {
	fn := FlashCrowd(100, 1000, time.Second, time.Second)
	for _, tc := range []struct {
		at   time.Duration
		want float64
	}{
		{0, 100}, {500 * time.Millisecond, 100},
		{1100 * time.Millisecond, 1000}, {1900 * time.Millisecond, 1000},
		{2100 * time.Millisecond, 100},
	} {
		if got := fn(tc.at); got != tc.want {
			t.Fatalf("FlashCrowd(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

// TestRampShape: linear interpolation lo -> hi over dur, clamped after.
func TestRampShape(t *testing.T) {
	fn := Ramp(100, 300, 2*time.Second)
	if got := fn(0); got != 100 {
		t.Fatalf("Ramp(0) = %v", got)
	}
	if got := fn(time.Second); got < 195 || got > 205 {
		t.Fatalf("Ramp(mid) = %v, want ~200", got)
	}
	if got := fn(3 * time.Second); got != 300 {
		t.Fatalf("Ramp(past end) = %v, want clamped 300", got)
	}
}

// TestOpenLoopShedClassification: typed overload errors land in Shed
// (with the RetryAfter hint averaged), not in Aborted, and the
// committed side splits into per-class latency summaries.
func TestOpenLoopShedClassification(t *testing.T) {
	eng := &shedEngine{}
	d := OpenLoop{
		Engine: eng, Mix: rwMix(),
		Rate: 2000, MaxInFlight: 64, Duration: 150 * time.Millisecond, Seed: 7,
	}
	res := d.Run()
	if res.Offered == 0 || res.Committed == 0 || res.Shed == 0 {
		t.Fatalf("offered=%d committed=%d shed=%d, want all > 0",
			res.Offered, res.Committed, res.Shed)
	}
	if got := res.Dropped + res.Shed + res.Committed + res.Aborted; got != res.Offered {
		t.Fatalf("accounting: %d+%d+%d+%d = %d, offered %d",
			res.Dropped, res.Shed, res.Committed, res.Aborted, got, res.Offered)
	}
	if res.Aborted != 0 {
		t.Fatalf("typed sheds misfiled as aborts: %d", res.Aborted)
	}
	if res.Shed != eng.sheds.Load() {
		t.Fatalf("driver shed count %d != engine sheds %d", res.Shed, eng.sheds.Load())
	}
	// All commits were reads; all sheds were writes.
	if res.ReadLat.Committed != res.Committed || res.WriteLat.Committed != 0 {
		t.Fatalf("class split read=%d write=%d of committed %d",
			res.ReadLat.Committed, res.WriteLat.Committed, res.Committed)
	}
	if res.RetryAfterMeanMS < 9 || res.RetryAfterMeanMS > 11 {
		t.Fatalf("RetryAfterMeanMS = %.2f, want ~10", res.RetryAfterMeanMS)
	}
}

// TestOpenLoopPerClassLatency: with both classes committing, the class
// summaries partition the total and carry their own quantiles.
func TestOpenLoopPerClassLatency(t *testing.T) {
	eng := &slowAsyncEngine{delay: time.Millisecond}
	d := OpenLoop{
		Engine: eng, Mix: rwMix(),
		Rate: 500, MaxInFlight: 64, Duration: 150 * time.Millisecond, Seed: 8,
	}
	res := d.Run()
	if res.ReadLat.Committed+res.WriteLat.Committed != res.Committed {
		t.Fatalf("class commits %d+%d != %d",
			res.ReadLat.Committed, res.WriteLat.Committed, res.Committed)
	}
	if res.ReadLat.Committed == 0 || res.WriteLat.Committed == 0 {
		t.Fatalf("one class empty: read=%d write=%d", res.ReadLat.Committed, res.WriteLat.Committed)
	}
	if res.ReadLat.P99US == 0 || res.WriteLat.P99US == 0 {
		t.Fatal("per-class quantiles missing")
	}
}

// TestRateFnDrivesArrivals: a RateOf returning zero stalls arrivals; a
// flash crowd produces more arrivals in the spike than outside it.
func TestRateFnDrivesArrivals(t *testing.T) {
	eng := &shedEngine{}
	d := OpenLoop{
		Engine: eng, Mix: rwMix(),
		RateOf:      FlashCrowd(100, 4000, 50*time.Millisecond, 50*time.Millisecond),
		MaxInFlight: 64, Duration: 150 * time.Millisecond, Seed: 9,
	}
	res := d.Run()
	// Mean offered ~ (100*2/3 + 4000*1/3) = ~1400/s over 150ms => ~200.
	// A constant 100/s would offer ~15. The spike must dominate.
	if res.Offered < 60 {
		t.Fatalf("offered %d arrivals: RateOf spike not applied", res.Offered)
	}
}

// TestScenarioDisturbanceFires: the disturbance fires once mid-run, at
// its scheduled fraction, and the run completes normally.
func TestScenarioDisturbanceFires(t *testing.T) {
	eng := &shedEngine{}
	var fired atomic.Int64
	sc := &Scenario{
		Name: "dist",
		Mix:  rwMix(),
		Rate: 1000,
		Disturb: []Disturbance{
			{At: 0.2, Do: func() { fired.Add(1) }},
			{At: 0.5, Do: func() { fired.Add(1) }},
		},
	}
	res := sc.Run(eng, 64, 200*time.Millisecond, 10)
	if res.Offered == 0 {
		t.Fatal("scenario offered nothing")
	}
	if got := fired.Load(); got != 2 {
		t.Fatalf("disturbances fired %d times, want 2", got)
	}
}
