package workload

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"dora/internal/metrics"
	"dora/internal/xct"
)

// AsyncEngine is the slice of an engine the open-loop driver needs: the
// non-blocking transaction entry (dora.Dora.ExecAsync satisfies it, as
// does admission.Controller wrapping it).
type AsyncEngine interface {
	ExecAsync(worker int, flow *xct.Flow, done func(error))
}

// RateFn is a time-varying arrival rate: offered transactions per
// second as a function of time since the run started. It lets the
// open-loop driver model adversarial arrival shapes (flash crowds)
// instead of a constant Poisson rate.
type RateFn func(elapsed time.Duration) float64

// OpenLoop is an arrival-rate (open-loop) workload driver: transactions
// arrive by a Poisson process at Rate per second regardless of how many
// are still in flight, bounded only by MaxInFlight — arrivals beyond the
// cap are DROPPED and counted, not queued. Unlike the closed-loop Driver
// (one in-flight transaction per client goroutine, which self-throttles
// at saturation and so can never show queueing delay), an open loop
// exposes latency under overload: when offered load exceeds capacity the
// in-flight population grows to the cap, latency reflects the queueing,
// and the drop rate measures the excess. This is the right instrument
// for "what happens past the knee" experiments (E15's overload row and
// successors).
type OpenLoop struct {
	Engine AsyncEngine
	Mix    Mix
	// Rate is the offered arrival rate in transactions per second.
	Rate float64
	// RateOf, when set, makes the arrival rate time-varying (flash
	// crowds); it overrides Rate except as the fallback for intervals
	// where RateOf returns a non-positive rate.
	RateOf RateFn
	// MaxInFlight caps concurrent transactions (default 1024).
	MaxInFlight int
	// Duration bounds the arrival window; the driver then waits for
	// in-flight transactions to finish.
	Duration time.Duration
	// Seed makes the arrival process and mix draws deterministic.
	Seed int64
}

// LatSummary summarizes the commit latency of one priority class.
type LatSummary struct {
	Committed int64
	MeanUS    float64
	P50US     int64
	P95US     int64
	P99US     int64
}

// OpenResult summarizes an open-loop run.
type OpenResult struct {
	// Offered counts Poisson arrivals. Dropped is the subset refused at
	// the driver's own in-flight cap (the client gave up before
	// submitting); Shed is the subset the engine's admission controller
	// refused with a typed overload error (the engine said "retry
	// later"). Committed/Aborted partition the remainder.
	Offered   int64
	Dropped   int64
	Shed      int64
	Committed int64
	Aborted   int64
	Elapsed   time.Duration
	// Throughput is committed transactions per second of the arrival
	// window; AchievedRate = (Offered-Dropped)/window.
	Throughput   float64
	AchievedRate float64
	// Latency of committed transactions, admission to completion.
	LatencyMeanUS float64
	P50US         int64
	P95US         int64
	P99US         int64
	// Per-class commit latency: a transaction whose every action is a
	// read is Read class, anything else Write (matching the admission
	// controller's shed-priority classes).
	ReadLat  LatSummary
	WriteLat LatSummary
	// RetryAfterMeanMS averages the backoff hints attached to sheds.
	RetryAfterMeanMS float64
}

// flowReadOnly reports whether every action in the flow is a read
// (the same classification admission.ClassOf applies).
func flowReadOnly(flow *xct.Flow) bool {
	for _, p := range flow.Phases {
		for _, a := range p.Actions {
			if a.Mode != xct.Read {
				return false
			}
		}
	}
	return true
}

// summarize folds a histogram into a LatSummary.
func summarize(h *metrics.Histogram) LatSummary {
	return LatSummary{
		Committed: h.Count(),
		MeanUS:    h.MeanMicros(),
		P50US:     h.Quantile(0.50),
		P95US:     h.Quantile(0.95),
		P99US:     h.Quantile(0.99),
	}
}

// Run executes the open-loop workload and blocks until the arrival
// window closes and every admitted transaction completed. A
// non-positive Rate with no RateOf offers nothing and returns an
// empty result immediately (there is no sensible default arrival
// rate).
func (d *OpenLoop) Run() OpenResult {
	if d.Rate <= 0 && d.RateOf == nil {
		return OpenResult{}
	}
	maxIn := d.MaxInFlight
	if maxIn <= 0 {
		maxIn = 1024
	}
	var (
		offered, dropped   metrics.Counter
		shed               metrics.Counter
		committed, aborted metrics.Counter
		retryNS            metrics.Counter
		lat                metrics.Histogram
		readLat, writeLat  metrics.Histogram
		inFlight           sync.WaitGroup
		inFlightN          metrics.Gauge
		rng                = rand.New(rand.NewSource(d.Seed))
		start              = time.Now()
		deadline           = start.Add(d.Duration)
		next               = start
	)
	for {
		now := time.Now()
		if !now.Before(deadline) {
			break
		}
		// Poisson arrivals: exponential interarrival times. When the
		// driver falls behind wall clock (a burst), arrivals fire
		// back-to-back until it catches up — open-loop pressure is the
		// point, so lag is never absorbed by stretching the schedule.
		if next.After(now) {
			time.Sleep(next.Sub(now))
		}
		rate := d.Rate
		if d.RateOf != nil {
			if r := d.RateOf(next.Sub(start)); r > 0 {
				rate = r
			}
		}
		if rate <= 0 {
			// No arrivals scheduled for this instant; re-evaluate the
			// rate a little later rather than dividing by zero.
			next = next.Add(time.Millisecond)
			continue
		}
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		offered.Inc()
		if inFlightN.Load() >= int64(maxIn) {
			dropped.Inc()
			continue
		}
		tt := d.Mix.Pick(rng)
		flow := tt.Build(rng)
		readOnly := flowReadOnly(flow)
		t0 := time.Now()
		inFlight.Add(1)
		inFlightN.Add(1)
		d.Engine.ExecAsync(0, flow, func(err error) {
			switch {
			case err == nil:
				committed.Inc()
				el := time.Since(t0)
				lat.Observe(el)
				if readOnly {
					readLat.Observe(el)
				} else {
					writeLat.Observe(el)
				}
			case isOverload(err, &retryNS):
				shed.Inc()
			default:
				aborted.Inc()
			}
			inFlightN.Add(-1)
			inFlight.Done()
		})
	}
	window := time.Since(start)
	inFlight.Wait()

	res := OpenResult{
		Offered:       offered.Load(),
		Dropped:       dropped.Load(),
		Shed:          shed.Load(),
		Committed:     committed.Load(),
		Aborted:       aborted.Load(),
		Elapsed:       time.Since(start),
		LatencyMeanUS: lat.MeanMicros(),
		P50US:         lat.Quantile(0.50),
		P95US:         lat.Quantile(0.95),
		P99US:         lat.Quantile(0.99),
		ReadLat:       summarize(&readLat),
		WriteLat:      summarize(&writeLat),
	}
	if s := window.Seconds(); s > 0 {
		res.Throughput = float64(res.Committed) / s
		res.AchievedRate = float64(res.Offered-res.Dropped) / s
	}
	if res.Shed > 0 {
		res.RetryAfterMeanMS = float64(retryNS.Load()) / float64(res.Shed) / 1e6
	}
	return res
}

// isOverload probes err for the admission controller's typed shed
// contract (an Overload() method carrying the RetryAfter hint) without
// importing the admission package; the hint is accumulated into
// retryNS for the run's mean-backoff summary.
func isOverload(err error, retryNS *metrics.Counter) bool {
	var oe interface{ Overload() time.Duration }
	if errors.As(err, &oe) {
		retryNS.Add(int64(oe.Overload()))
		return true
	}
	return false
}
