package workload

import (
	"math/rand"
	"sync"
	"time"

	"dora/internal/metrics"
	"dora/internal/xct"
)

// AsyncEngine is the slice of an engine the open-loop driver needs: the
// non-blocking transaction entry (dora.Dora.ExecAsync satisfies it).
type AsyncEngine interface {
	ExecAsync(worker int, flow *xct.Flow, done func(error))
}

// OpenLoop is an arrival-rate (open-loop) workload driver: transactions
// arrive by a Poisson process at Rate per second regardless of how many
// are still in flight, bounded only by MaxInFlight — arrivals beyond the
// cap are DROPPED and counted, not queued. Unlike the closed-loop Driver
// (one in-flight transaction per client goroutine, which self-throttles
// at saturation and so can never show queueing delay), an open loop
// exposes latency under overload: when offered load exceeds capacity the
// in-flight population grows to the cap, latency reflects the queueing,
// and the drop rate measures the excess. This is the right instrument
// for "what happens past the knee" experiments (E15's overload row and
// successors).
type OpenLoop struct {
	Engine AsyncEngine
	Mix    Mix
	// Rate is the offered arrival rate in transactions per second.
	Rate float64
	// MaxInFlight caps concurrent transactions (default 1024).
	MaxInFlight int
	// Duration bounds the arrival window; the driver then waits for
	// in-flight transactions to finish.
	Duration time.Duration
	// Seed makes the arrival process and mix draws deterministic.
	Seed int64
}

// OpenResult summarizes an open-loop run.
type OpenResult struct {
	// Offered counts Poisson arrivals; Dropped is the subset refused at
	// the in-flight cap; Committed/Aborted partition the admitted ones.
	Offered   int64
	Dropped   int64
	Committed int64
	Aborted   int64
	Elapsed   time.Duration
	// Throughput is committed transactions per second of the arrival
	// window; AchievedRate = (Offered-Dropped)/window.
	Throughput   float64
	AchievedRate float64
	// Latency of committed transactions, admission to completion.
	LatencyMeanUS float64
	P50US         int64
	P95US         int64
	P99US         int64
}

// Run executes the open-loop workload and blocks until the arrival
// window closes and every admitted transaction completed. A
// non-positive Rate offers nothing and returns an empty result
// immediately (there is no sensible default arrival rate).
func (d *OpenLoop) Run() OpenResult {
	if d.Rate <= 0 {
		return OpenResult{}
	}
	maxIn := d.MaxInFlight
	if maxIn <= 0 {
		maxIn = 1024
	}
	var (
		offered, dropped    metrics.Counter
		committed, aborted  metrics.Counter
		lat                 metrics.Histogram
		inFlight            sync.WaitGroup
		inFlightN           metrics.Gauge
		rng                 = rand.New(rand.NewSource(d.Seed))
		start               = time.Now()
		deadline            = start.Add(d.Duration)
		next                = start
		interarrivalSeconds = 1.0 / d.Rate
	)
	for {
		now := time.Now()
		if !now.Before(deadline) {
			break
		}
		// Poisson arrivals: exponential interarrival times. When the
		// driver falls behind wall clock (a burst), arrivals fire
		// back-to-back until it catches up — open-loop pressure is the
		// point, so lag is never absorbed by stretching the schedule.
		if next.After(now) {
			time.Sleep(next.Sub(now))
		}
		next = next.Add(time.Duration(rng.ExpFloat64() * interarrivalSeconds * float64(time.Second)))
		offered.Inc()
		if inFlightN.Load() >= int64(maxIn) {
			dropped.Inc()
			continue
		}
		tt := d.Mix.Pick(rng)
		flow := tt.Build(rng)
		t0 := time.Now()
		inFlight.Add(1)
		inFlightN.Add(1)
		d.Engine.ExecAsync(0, flow, func(err error) {
			if err == nil {
				committed.Inc()
				lat.Observe(time.Since(t0))
			} else {
				aborted.Inc()
			}
			inFlightN.Add(-1)
			inFlight.Done()
		})
	}
	window := time.Since(start)
	inFlight.Wait()

	res := OpenResult{
		Offered:       offered.Load(),
		Dropped:       dropped.Load(),
		Committed:     committed.Load(),
		Aborted:       aborted.Load(),
		Elapsed:       time.Since(start),
		LatencyMeanUS: lat.MeanMicros(),
		P50US:         lat.Quantile(0.50),
		P95US:         lat.Quantile(0.95),
		P99US:         lat.Quantile(0.99),
	}
	if s := window.Seconds(); s > 0 {
		res.Throughput = float64(res.Committed) / s
		res.AchievedRate = float64(res.Offered-res.Dropped) / s
	}
	return res
}
