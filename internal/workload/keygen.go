// Package workload provides the benchmark driver used by every
// experiment: configurable client counts, think times, transaction
// mixes, and skewed key generators (including the demo's movable
// hot spot), with throughput/latency/abort accounting and an optional
// throughput timeline for the re-balancing experiments.
package workload

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// KeyGen produces keys in a domain with some distribution. Implementations
// must be safe for use from one goroutine per Next call site (the driver
// gives each client its own rand.Rand).
type KeyGen interface {
	// Next draws a key using rng.
	Next(rng *rand.Rand) int64
	// Domain returns the inclusive key bounds.
	Domain() (lo, hi int64)
}

// Uniform draws uniformly from [Lo, Hi].
type Uniform struct {
	Lo, Hi int64
}

// Next implements KeyGen.
func (u Uniform) Next(rng *rand.Rand) int64 { return u.Lo + rng.Int63n(u.Hi-u.Lo+1) }

// Domain implements KeyGen.
func (u Uniform) Domain() (int64, int64) { return u.Lo, u.Hi }

// Zipf draws Zipf-distributed keys: rank r drawn with P(r) ∝ 1/(r+1)^S,
// then mapped onto [Lo, Hi] via a fixed pseudo-random permutation so the
// hot keys are scattered (as TATP prescribes) unless Sequential is set.
type Zipf struct {
	Lo, Hi     int64
	S          float64 // skew exponent, > 1
	Sequential bool    // hot keys at the start of the domain (for demos)

	zipfs sync.Map // *rand.Rand -> *rand.Zipf, lazily built per client rng
}

// NewZipf returns a Zipf generator with exponent s over [lo, hi].
func NewZipf(lo, hi int64, s float64) *Zipf {
	if s <= 1 {
		s = 1.001
	}
	return &Zipf{Lo: lo, Hi: hi, S: s}
}

// Next implements KeyGen.
func (z *Zipf) Next(rng *rand.Rand) int64 {
	var zf *rand.Zipf
	if v, ok := z.zipfs.Load(rng); ok {
		zf = v.(*rand.Zipf)
	} else {
		zf = rand.NewZipf(rng, z.S, 1, uint64(z.Hi-z.Lo))
		z.zipfs.Store(rng, zf)
	}
	rank := int64(zf.Uint64())
	if z.Sequential {
		return z.Lo + rank
	}
	// Scatter via a multiplicative hash permutation within the domain.
	n := z.Hi - z.Lo + 1
	return z.Lo + (rank*2654435761)%n
}

// Domain implements KeyGen.
func (z *Zipf) Domain() (int64, int64) { return z.Lo, z.Hi }

// Hotspot sends HotFrac of draws into a narrow window of the domain whose
// center can be moved at runtime — the demo's "slide it around to vary
// the locations of hot spots". The rest of the draws are uniform.
type Hotspot struct {
	Lo, Hi int64
	// HotFrac is the probability a draw lands in the hot window.
	HotFrac float64
	// HotWidth is the window width in keys.
	HotWidth int64

	center atomic.Int64
}

// NewHotspot builds a hotspot generator centered mid-domain.
func NewHotspot(lo, hi int64, hotFrac float64, width int64) *Hotspot {
	h := &Hotspot{Lo: lo, Hi: hi, HotFrac: hotFrac, HotWidth: width}
	h.center.Store((lo + hi) / 2)
	return h
}

// SetCenter moves the hot window.
func (h *Hotspot) SetCenter(c int64) {
	if c < h.Lo {
		c = h.Lo
	}
	if c > h.Hi {
		c = h.Hi
	}
	h.center.Store(c)
}

// Center returns the current hot-window center.
func (h *Hotspot) Center() int64 { return h.center.Load() }

// Next implements KeyGen.
func (h *Hotspot) Next(rng *rand.Rand) int64 {
	if rng.Float64() < h.HotFrac {
		c := h.center.Load()
		lo := c - h.HotWidth/2
		if lo < h.Lo {
			lo = h.Lo
		}
		hi := lo + h.HotWidth - 1
		if hi > h.Hi {
			hi = h.Hi
			lo = hi - h.HotWidth + 1
			if lo < h.Lo {
				lo = h.Lo
			}
		}
		return lo + rng.Int63n(hi-lo+1)
	}
	return h.Lo + rng.Int63n(h.Hi-h.Lo+1)
}

// Domain implements KeyGen.
func (h *Hotspot) Domain() (int64, int64) { return h.Lo, h.Hi }
