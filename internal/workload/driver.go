package workload

import (
	"math/rand"
	"sync"
	"time"

	"dora/internal/engine"
	"dora/internal/metrics"
	"dora/internal/xct"
)

// TxnType is one transaction in a mix.
type TxnType struct {
	// Name labels the transaction (statistics).
	Name string
	// Weight is the relative frequency in the mix.
	Weight int
	// Build constructs a fresh flow (a retry rebuilds it).
	Build func(rng *rand.Rand) *xct.Flow
}

// Mix is a weighted set of transaction types.
type Mix []TxnType

// Pick draws a transaction type by weight.
func (m Mix) Pick(rng *rand.Rand) *TxnType {
	total := 0
	for i := range m {
		total += m[i].Weight
	}
	n := rng.Intn(total)
	for i := range m {
		n -= m[i].Weight
		if n < 0 {
			return &m[i]
		}
	}
	return &m[len(m)-1]
}

// Driver runs a mix against an engine with a population of emulated
// clients (the demo's workload panel: "number of clients, the mix of
// transactions to execute, and the distribution of data accesses").
type Driver struct {
	Engine  engine.Engine
	Mix     Mix
	Clients int
	// Duration bounds the measured run.
	Duration time.Duration
	// ThinkTime is the idle pause between a client's transactions.
	ThinkTime time.Duration
	// MaxRetries bounds abort-retry loops per transaction (default 20).
	MaxRetries int
	// Seed randomizes clients deterministically (client c uses Seed+c).
	Seed int64
	// SampleEvery, when > 0, records a throughput timeline (E6).
	SampleEvery time.Duration
	// OnSample, when set, observes each timeline sample as it is taken.
	OnSample func(i int, tps float64)
}

// Result summarizes a run.
type Result struct {
	Committed int64
	Aborted   int64 // transactions that ultimately failed (retries exhausted)
	Retries   int64 // individual aborted attempts that were retried
	Elapsed   time.Duration
	// Throughput is committed transactions per second.
	Throughput float64
	// LatencyMeanUS / P95US / P99US describe committed-txn latency.
	LatencyMeanUS float64
	P50US         int64
	P95US         int64
	P99US         int64
	// PerTxn counts commits per transaction type.
	PerTxn map[string]int64
	// Timeline holds throughput samples (tx/s) when SampleEvery was set.
	Timeline []float64
}

// Run executes the workload and blocks until Duration elapses and all
// clients stop.
func (d *Driver) Run() Result {
	maxRetries := d.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 20
	}
	var (
		committed metrics.Counter
		aborted   metrics.Counter
		retries   metrics.Counter
		lat       metrics.Histogram
		perTxn    sync.Map
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)
	meter := metrics.NewMeter()

	start := time.Now()
	for c := 0; c < d.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(d.Seed + int64(c)*7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tt := d.Mix.Pick(rng)
				t0 := time.Now()
				var err error
				ok := false
				for attempt := 0; attempt <= maxRetries; attempt++ {
					flow := tt.Build(rng)
					err = d.Engine.Exec(c, flow)
					if err == nil {
						ok = true
						break
					}
					retries.Inc()
					select {
					case <-stop:
						return
					default:
					}
				}
				if ok {
					committed.Inc()
					meter.Mark(1)
					lat.Observe(time.Since(t0))
					v, _ := perTxn.LoadOrStore(tt.Name, new(metrics.Counter))
					v.(*metrics.Counter).Inc()
				} else {
					aborted.Inc()
				}
				if d.ThinkTime > 0 {
					select {
					case <-stop:
						return
					case <-time.After(d.ThinkTime):
					}
				}
			}
		}(c)
	}

	var timeline []float64
	if d.SampleEvery > 0 {
		ticker := time.NewTicker(d.SampleEvery)
		deadline := time.After(d.Duration)
		meter.Window() // reset window baseline
	sampling:
		for {
			select {
			case <-ticker.C:
				tps := meter.Window()
				if d.OnSample != nil {
					d.OnSample(len(timeline), tps)
				}
				timeline = append(timeline, tps)
			case <-deadline:
				break sampling
			}
		}
		ticker.Stop()
	} else {
		time.Sleep(d.Duration)
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		Committed:     committed.Load(),
		Aborted:       aborted.Load(),
		Retries:       retries.Load(),
		Elapsed:       elapsed,
		LatencyMeanUS: lat.MeanMicros(),
		P50US:         lat.Quantile(0.50),
		P95US:         lat.Quantile(0.95),
		P99US:         lat.Quantile(0.99),
		PerTxn:        map[string]int64{},
		Timeline:      timeline,
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Committed) / elapsed.Seconds()
	}
	perTxn.Range(func(k, v any) bool {
		res.PerTxn[k.(string)] = v.(*metrics.Counter).Load()
		return true
	})
	return res
}
