package workload

import (
	"time"
)

// Adversarial load scenarios for the overload suite (E20). A Scenario
// bundles the three dimensions an overload storm varies — key
// distribution (via the Mix's key generators), arrival shape over
// time (constant or RateFn), and mid-run disturbances (a skew shift,
// a forced repartition) — behind one Run entry so experiments and
// tests exercise a named catalog instead of ad-hoc wiring.

// FlashCrowd returns a time-varying arrival rate: base transactions
// per second with a spike to peak during [from, from+width). This is
// the canonical "everyone shows up at once" adversarial arrival
// process — the offered load steps far past capacity and then steps
// back, so a controller must both shed fast at the edge and recover
// promptly after.
func FlashCrowd(base, peak float64, from, width time.Duration) RateFn {
	return func(elapsed time.Duration) float64 {
		if elapsed >= from && elapsed < from+width {
			return peak
		}
		return base
	}
}

// Ramp returns an arrival rate that grows linearly from lo to hi over
// dur, then holds at hi — the classic knee-finding sweep shape.
func Ramp(lo, hi float64, dur time.Duration) RateFn {
	return func(elapsed time.Duration) float64 {
		if elapsed >= dur || dur <= 0 {
			return hi
		}
		return lo + (hi-lo)*float64(elapsed)/float64(dur)
	}
}

// Disturbance is a one-shot mid-run mutation of workload or system
// state: At is the fraction of the run duration at which Do fires
// (0.5 = halfway). Scenarios use it to shift a hot-key window or
// force a live repartition while the storm is in progress.
type Disturbance struct {
	At float64
	Do func()
}

// Scenario is one named adversarial load shape.
type Scenario struct {
	Name string
	Mix  Mix
	// Rate is the constant offered rate; RateOf (when set) makes it
	// time-varying and wins over Rate.
	Rate   float64
	RateOf RateFn
	// Disturb lists mid-run disturbances, fired once each by Run.
	Disturb []Disturbance
}

// Run drives the scenario through the open-loop driver against eng
// for dur, firing each disturbance at its scheduled fraction of the
// run from a timer goroutine (so the arrival loop never stalls).
func (s *Scenario) Run(eng AsyncEngine, maxInFlight int, dur time.Duration, seed int64) OpenResult {
	stop := make(chan struct{})
	defer close(stop)
	for _, d := range s.Disturb {
		if d.Do == nil {
			continue
		}
		delay := time.Duration(float64(dur) * d.At)
		go func(do func()) {
			t := time.NewTimer(delay)
			defer t.Stop()
			select {
			case <-t.C:
				do()
			case <-stop:
			}
		}(d.Do)
	}
	ol := &OpenLoop{
		Engine:      eng,
		Mix:         s.Mix,
		Rate:        s.Rate,
		RateOf:      s.RateOf,
		MaxInFlight: maxInFlight,
		Duration:    dur,
		Seed:        seed,
	}
	return ol.Run()
}
