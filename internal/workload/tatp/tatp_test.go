package tatp

import (
	"strings"
	"testing"
	"time"

	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/engine/conventional"
	"dora/internal/sm"
	"dora/internal/workload"
)

func loadDB(t *testing.T, n int64) *DB {
	t.Helper()
	s, err := sm.Open(sm.Options{Frames: 2048})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Load(s, n)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLoadShapes(t *testing.T) {
	db := loadDB(t, 200)
	if got := db.Subscriber.Primary.Tree.Len(); got != 200 {
		t.Fatalf("subscribers = %d", got)
	}
	ai := db.AccessInfo.Primary.Tree.Len()
	if ai < 200 || ai > 800 {
		t.Fatalf("access_info rows = %d, want within [200,800]", ai)
	}
	sf := db.SpecialFac.Primary.Tree.Len()
	if sf < 200 || sf > 800 {
		t.Fatalf("special_facility rows = %d", sf)
	}
	// sub_nbr bijection round-trips.
	for _, sid := range []int64{1, 77, 200} {
		if db.SIDFromNbr(db.SubNbr(sid)) != sid {
			t.Fatalf("sub_nbr bijection broken for %d", sid)
		}
	}
}

func TestKeyPacking(t *testing.T) {
	if AIKey(1, 1) == AIKey(1, 2) || AIKey(1, 4) >= AIKey(2, 1) {
		t.Fatal("AIKey ordering broken")
	}
	if CFKey(5, 2, 8) == CFKey(5, 2, 16) {
		t.Fatal("CFKey collision")
	}
	if CFKey(5, 4, 16) >= CFKey(6, 1, 0) {
		t.Fatal("CFKey crosses subscriber boundary")
	}
}

// runBoth executes the standard mix on both engines and sanity-checks
// outcome counts.
func runBoth(t *testing.T, db *DB, mix workload.Mix) map[string]workload.Result {
	t.Helper()
	out := map[string]workload.Result{}

	conv := conventional.New(db.SM)
	dr := workload.Driver{
		Engine: conv, Mix: mix, Clients: 8,
		Duration: 300 * time.Millisecond, Seed: 1,
	}
	out[conv.Name()] = dr.Run()

	de := dora.New(db.SM, dora.Config{PartitionsPerTable: 4, Domains: db.Domains()})
	defer de.Close()
	dr.Engine = de
	out[de.Name()] = dr.Run()
	return out
}

func TestMixOnBothEngines(t *testing.T) {
	db := loadDB(t, 500)
	mix := db.NewMix(MixOptions{})
	results := runBoth(t, db, mix)
	for name, res := range results {
		if res.Committed < 100 {
			t.Fatalf("%s committed only %d transactions", name, res.Committed)
		}
		// The three read transactions dominate the mix.
		reads := res.PerTxn["GetSubscriberData"] + res.PerTxn["GetAccessData"]
		if float64(reads) < 0.4*float64(res.Committed) {
			t.Fatalf("%s: mix skewed: %v", name, res.PerTxn)
		}
	}
}

func TestUpdateLocationRoundTrip(t *testing.T) {
	db := loadDB(t, 100)
	de := dora.New(db.SM, dora.Config{PartitionsPerTable: 2, Domains: db.Domains()})
	defer de.Close()
	var e engine.Engine = de
	nbr := db.SubNbr(42)
	if err := e.Exec(0, db.UpdateLocation(nbr, 9999)); err != nil {
		t.Fatal(err)
	}
	rec, err := db.SM.Session(0).Read(db.SM.Begin(), db.Subscriber, 42)
	if err != nil || rec[subVLRLoc].Int != 9999 {
		t.Fatalf("vlr_location = %v, %v", rec, err)
	}
	// It counted as a non-aligned dispatch.
	_, unaligned := de.AlignmentStats(false)
	if unaligned[db.Subscriber.ID]["sub_nbr"] == 0 {
		t.Fatal("UpdateLocation not counted as unaligned")
	}
}

func TestInsertDeleteCallForwarding(t *testing.T) {
	db := loadDB(t, 100)
	de := dora.New(db.SM, dora.Config{PartitionsPerTable: 2, Domains: db.Domains()})
	defer de.Close()
	nbr := db.SubNbr(7)
	// Ensure a clean slot: delete may fail if absent, so first insert
	// until success at a fixed (sf, st), tolerating a pre-loaded row.
	err := de.Exec(0, db.InsertCallForwarding(nbr, 2, 8, 20, 12345))
	if err != nil && !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("insert: %v", err)
	}
	// Now the row exists either way; delete must succeed.
	if err := de.Exec(0, db.DeleteCallForwarding(nbr, 2, 8)); err != nil {
		t.Fatalf("delete: %v", err)
	}
	// Second delete must abort (no row).
	if err := de.Exec(0, db.DeleteCallForwarding(nbr, 2, 8)); err == nil {
		t.Fatal("double delete should abort")
	}
	if de.Aborted.Load() == 0 {
		t.Fatal("abort not counted")
	}
}

func TestGetNewDestinationPhases(t *testing.T) {
	db := loadDB(t, 100)
	conv := conventional.New(db.SM)
	for sid := int64(1); sid <= 100; sid++ {
		if err := conv.Exec(0, db.GetNewDestination(sid, 1, 0, 8)); err != nil {
			t.Fatalf("sid %d: %v", sid, err)
		}
	}
}

func TestEnginesAgreeOnFinalState(t *testing.T) {
	// Run a deterministic write sequence through each engine on separate
	// DBs; the final subscriber states must match.
	finalVLR := func(t *testing.T, mk func(db *DB) engine.Engine) []int64 {
		db := loadDB(t, 50)
		e := mk(db)
		defer e.Close()
		for i := int64(1); i <= 50; i++ {
			if err := e.Exec(0, db.UpdateLocation(db.SubNbr(i), i*3)); err != nil {
				t.Fatal(err)
			}
		}
		out := make([]int64, 0, 50)
		ses := db.SM.Session(0)
		for i := int64(1); i <= 50; i++ {
			rec, err := ses.Read(db.SM.Begin(), db.Subscriber, i)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rec[subVLRLoc].Int)
		}
		return out
	}
	a := finalVLR(t, func(db *DB) engine.Engine { return conventional.New(db.SM) })
	b := finalVLR(t, func(db *DB) engine.Engine {
		return dora.New(db.SM, dora.Config{PartitionsPerTable: 3, Domains: db.Domains()})
	})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("engines disagree at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestYCSBMix: the two-transaction read/write mix the overload scenarios
// use — weights track the read fraction, degenerate fractions collapse
// to a single entry, and the built flows execute.
func TestYCSBMix(t *testing.T) {
	db := loadDB(t, 100)
	defer db.SM.Close()

	ro := db.YCSBMix(1.0, MixOptions{})
	if len(ro) != 1 || ro[0].Name != "GetSubscriberData" || ro[0].Weight != 100 {
		t.Fatalf("readFrac 1.0 mix: %+v", ro)
	}
	wo := db.YCSBMix(0, MixOptions{})
	if len(wo) != 1 || wo[0].Name != "UpdateSubscriberData" || wo[0].Weight != 100 {
		t.Fatalf("readFrac 0 mix: %+v", wo)
	}
	half := db.YCSBMix(0.5, MixOptions{})
	if len(half) != 2 || half[0].Weight != 50 || half[1].Weight != 50 {
		t.Fatalf("readFrac 0.5 mix: %+v", half)
	}
	// Out-of-range fractions clamp instead of panicking.
	if got := db.YCSBMix(1.7, MixOptions{}); len(got) != 1 {
		t.Fatalf("clamped mix: %+v", got)
	}

	// The skewed variant drives keys through the supplied generator and
	// its flows commit on a real engine.
	e := dora.New(db.SM, dora.Config{PartitionsPerTable: 2, Domains: db.Domains()})
	defer e.Close()
	dr := workload.Driver{
		Engine: e, Mix: db.YCSBMix(0.5, MixOptions{SIDGen: workload.NewZipf(1, db.N, 1.2)}),
		Clients: 2, Duration: 100 * time.Millisecond, Seed: 3,
	}
	res := dr.Run()
	if res.Committed == 0 {
		t.Fatal("YCSB mix committed nothing")
	}
}
