// Package tatp implements the TATP (Telecom Application Transaction
// Processing) benchmark the demo runs on both engines: the four-table
// telecom schema and the standard seven-transaction mix, expressed as
// transaction flow graphs both engines execute.
//
// Key packing: composite primary keys are bit-packed into int64s —
// access_info (s_id, ai_type) → s_id*4 + ai_type-1; special_facility
// (s_id, sf_type) → s_id*4 + sf_type-1; call_forwarding (s_id, sf_type,
// start_time) → (s_id*4 + sf_type-1)*4 + start_time/8. Every table's
// partitioning field is s_id, so all accesses keyed by s_id are
// partition-aligned; the by-sub_nbr transactions (UpdateLocation,
// Insert/DeleteCallForwarding) resolve sub_nbr → s_id through the
// subscriber secondary index, exactly the non-aligned accesses the
// alignment advisor (experiment E7) watches.
package tatp

import (
	"errors"
	"fmt"
	"math/rand"

	"dora/internal/catalog"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/workload"
	"dora/internal/xct"
)

// Subscriber field positions.
const (
	subSID = iota
	subNbr
	subBit1
	subMSCLoc
	subVLRLoc
)

// DB holds the loaded TATP tables.
type DB struct {
	SM          *sm.SM
	N           int64 // subscribers
	Subscriber  *catalog.Table
	AccessInfo  *catalog.Table
	SpecialFac  *catalog.Table
	CallForward *catalog.Table
}

// SubNbr maps s_id to its sub_nbr (a fixed bijection over [1, N]).
func (db *DB) SubNbr(sid int64) int64 { return db.N + 1 - sid }

// SIDFromNbr inverts SubNbr.
func (db *DB) SIDFromNbr(nbr int64) int64 { return db.N + 1 - nbr }

// AIKey packs the access_info primary key.
func AIKey(sid int64, aiType int64) int64 { return sid*4 + aiType - 1 }

// SFKey packs the special_facility primary key.
func SFKey(sid int64, sfType int64) int64 { return sid*4 + sfType - 1 }

// CFKey packs the call_forwarding primary key.
func CFKey(sid, sfType, startTime int64) int64 {
	return (sid*4+sfType-1)*4 + startTime/8
}

// Domains returns the DORA routing domains for all TATP tables.
func (db *DB) Domains() map[string][2]int64 {
	return map[string][2]int64{
		"subscriber":       {1, db.N},
		"access_info":      {1, db.N},
		"special_facility": {1, db.N},
		"call_forwarding":  {1, db.N},
	}
}

// Schema creates the TATP tables without populating them — the DDL a
// read replica runs before replaying the primary's log stream (schema is
// code, not logged, and must be declared in the same order as on the
// primary so table ids line up).
func Schema(s *sm.SM, n int64) (*DB, error) {
	db := &DB{SM: s, N: n}
	var err error
	db.Subscriber, err = s.CreateTable(sm.TableSpec{
		Name: "subscriber",
		Fields: []catalog.Field{
			{Name: "s_id", Type: tuple.TInt},
			{Name: "sub_nbr", Type: tuple.TInt},
			{Name: "bit_1", Type: tuple.TInt},
			{Name: "msc_location", Type: tuple.TInt},
			{Name: "vlr_location", Type: tuple.TInt},
		},
		KeyFields: []string{"s_id"},
		Key:       func(r tuple.Record) int64 { return r[subSID].Int },
		Secondaries: []sm.IndexSpec{{
			Name:   "sub_by_nbr",
			Fields: []string{"sub_nbr"},
			Key:    func(r tuple.Record) int64 { return r[subNbr].Int },
			// sub_nbr = N+1-s_id is an order-reversing bijection, so an
			// s_id interval maps to one contiguous sub_nbr interval and
			// the secondary partitions along with the primary: the worker
			// owning s_id in [lo, hi] owns sub_nbr in [N+1-hi, N+1-lo].
			RouteRange: func(lo, hi int64) (int64, int64) {
				return n + 1 - hi, n + 1 - lo
			},
		}},
		// The same bijection declared as field maps in both directions,
		// so a Repartition onto sub_nbr keeps BOTH indexes claimed: the
		// primary's s_id keys route through sub_nbr → s_id, and the
		// secondary composes sub_nbr → s_id → sub_nbr keys (the
		// round trip is the identity on its own key space).
		FieldMaps: []catalog.FieldMap{
			{From: "sub_nbr", To: "s_id",
				Map: func(lo, hi int64) (int64, int64) { return n + 1 - hi, n + 1 - lo }},
			{From: "s_id", To: "sub_nbr",
				Map: func(lo, hi int64) (int64, int64) { return n + 1 - hi, n + 1 - lo }},
		},
	})
	if err != nil {
		return nil, err
	}
	db.AccessInfo, err = s.CreateTable(sm.TableSpec{
		Name: "access_info",
		Fields: []catalog.Field{
			{Name: "s_id", Type: tuple.TInt},
			{Name: "ai_type", Type: tuple.TInt},
			{Name: "data1", Type: tuple.TInt},
			{Name: "data2", Type: tuple.TInt},
			{Name: "data3", Type: tuple.TString},
			{Name: "data4", Type: tuple.TString},
		},
		KeyFields:      []string{"s_id", "ai_type"},
		Key:            func(r tuple.Record) int64 { return AIKey(r[0].Int, r[1].Int) },
		PartitionField: "s_id",
		RouteRange: func(lo, hi int64) (int64, int64) {
			return AIKey(lo, 1), AIKey(hi, 4)
		},
	})
	if err != nil {
		return nil, err
	}
	db.SpecialFac, err = s.CreateTable(sm.TableSpec{
		Name: "special_facility",
		Fields: []catalog.Field{
			{Name: "s_id", Type: tuple.TInt},
			{Name: "sf_type", Type: tuple.TInt},
			{Name: "is_active", Type: tuple.TInt},
			{Name: "error_cntrl", Type: tuple.TInt},
			{Name: "data_a", Type: tuple.TInt},
			{Name: "data_b", Type: tuple.TString},
		},
		KeyFields:      []string{"s_id", "sf_type"},
		Key:            func(r tuple.Record) int64 { return SFKey(r[0].Int, r[1].Int) },
		PartitionField: "s_id",
		RouteRange: func(lo, hi int64) (int64, int64) {
			return SFKey(lo, 1), SFKey(hi, 4)
		},
	})
	if err != nil {
		return nil, err
	}
	db.CallForward, err = s.CreateTable(sm.TableSpec{
		Name: "call_forwarding",
		Fields: []catalog.Field{
			{Name: "s_id", Type: tuple.TInt},
			{Name: "sf_type", Type: tuple.TInt},
			{Name: "start_time", Type: tuple.TInt},
			{Name: "end_time", Type: tuple.TInt},
			{Name: "numberx", Type: tuple.TInt},
		},
		KeyFields:      []string{"s_id", "sf_type", "start_time"},
		Key:            func(r tuple.Record) int64 { return CFKey(r[0].Int, r[1].Int, r[2].Int) },
		PartitionField: "s_id",
		RouteRange: func(lo, hi int64) (int64, int64) {
			return CFKey(lo, 1, 0), CFKey(hi, 4, 23)
		},
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// Load creates and populates the TATP schema with n subscribers.
func Load(s *sm.SM, n int64) (*DB, error) {
	db, err := Schema(s, n)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(4242))
	ses := s.Session(0)
	const batch = 1000
	txn := s.Begin()
	inBatch := 0
	flush := func() error {
		if err := s.Commit(txn); err != nil {
			return err
		}
		txn = s.Begin()
		inBatch = 0
		return nil
	}
	for sid := int64(1); sid <= n; sid++ {
		err := ses.Insert(txn, db.Subscriber, tuple.Record{
			tuple.I(sid), tuple.I(db.SubNbr(sid)),
			tuple.I(rng.Int63n(2)), tuple.I(rng.Int63n(1 << 16)), tuple.I(rng.Int63n(1 << 16)),
		})
		if err != nil {
			return nil, err
		}
		// 1..4 access_info rows.
		nAI := 1 + rng.Intn(4)
		for ai := int64(1); ai <= int64(nAI); ai++ {
			err := ses.Insert(txn, db.AccessInfo, tuple.Record{
				tuple.I(sid), tuple.I(ai),
				tuple.I(rng.Int63n(256)), tuple.I(rng.Int63n(256)),
				tuple.S("AAA"), tuple.S("BBBBB"),
			})
			if err != nil {
				return nil, err
			}
		}
		// 1..4 special_facility rows; each active with P=0.85.
		nSF := 1 + rng.Intn(4)
		for sf := int64(1); sf <= int64(nSF); sf++ {
			active := int64(0)
			if rng.Float64() < 0.85 {
				active = 1
			}
			err := ses.Insert(txn, db.SpecialFac, tuple.Record{
				tuple.I(sid), tuple.I(sf), tuple.I(active),
				tuple.I(rng.Int63n(256)), tuple.I(rng.Int63n(256)), tuple.S("CCCCC"),
			})
			if err != nil {
				return nil, err
			}
			// 0..3 call_forwarding rows at start times 0, 8, 16.
			for _, st := range []int64{0, 8, 16} {
				if rng.Float64() < 0.25 {
					err := ses.Insert(txn, db.CallForward, tuple.Record{
						tuple.I(sid), tuple.I(sf), tuple.I(st),
						tuple.I(st + 1 + rng.Int63n(8)), tuple.I(rng.Int63n(1 << 30)),
					})
					if err != nil {
						return nil, err
					}
				}
			}
		}
		inBatch++
		if inBatch >= batch {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := s.Commit(txn); err != nil {
		return nil, err
	}
	return db, nil
}

// resolveBySID returns a Resolver for actions keyed by s_id: it reads the
// subscriber row by primary key and projects the requested field.
func (db *DB) resolveBySID(sid int64) xct.Resolver {
	return func(env *xct.Env, field string) (int64, error) {
		rec, err := env.Ses.Read(env.Txn, db.Subscriber, sid)
		if err != nil {
			return 0, err
		}
		i := db.Subscriber.FieldIndex(field)
		if i < 0 {
			return 0, fmt.Errorf("tatp: subscriber has no field %q", field)
		}
		return rec[i].Int, nil
	}
}

// resolveByNbr returns a Resolver for actions keyed by sub_nbr: it probes
// the sub_by_nbr secondary index.
func (db *DB) resolveByNbr(nbr int64) xct.Resolver {
	return func(env *xct.Env, field string) (int64, error) {
		rec, err := env.Ses.ReadByIndex(env.Txn, db.Subscriber, "sub_by_nbr", nbr)
		if err != nil {
			return 0, err
		}
		i := db.Subscriber.FieldIndex(field)
		if i < 0 {
			return 0, fmt.Errorf("tatp: subscriber has no field %q", field)
		}
		return rec[i].Int, nil
	}
}

// resolveBySIDAsync is resolveBySID in continuation-passing form: the
// subscriber read ships asynchronously and the dispatcher suspends
// instead of blocking on it.
func (db *DB) resolveBySIDAsync(sid int64) xct.AsyncResolver {
	return func(env *xct.Env, field string, k func(int64, error)) {
		env.Ses.ReadAsync(env.Txn, db.Subscriber, sid, nil, func(rec tuple.Record, err error) {
			if err != nil {
				k(0, err)
				return
			}
			i := db.Subscriber.FieldIndex(field)
			if i < 0 {
				k(0, fmt.Errorf("tatp: subscriber has no field %q", field))
				return
			}
			k(rec[i].Int, nil)
		})
	}
}

// resolveByNbrAsync is resolveByNbr in continuation-passing form.
func (db *DB) resolveByNbrAsync(nbr int64) xct.AsyncResolver {
	return func(env *xct.Env, field string, k func(int64, error)) {
		env.Ses.ReadByIndexAsync(env.Txn, db.Subscriber, "sub_by_nbr", nbr, nil, func(rec tuple.Record, err error) {
			if err != nil {
				k(0, err)
				return
			}
			i := db.Subscriber.FieldIndex(field)
			if i < 0 {
				k(0, fmt.Errorf("tatp: subscriber has no field %q", field))
				return
			}
			k(rec[i].Int, nil)
		})
	}
}

// GetSubscriberData returns the flow for TATP GET_SUBSCRIBER_DATA.
func (db *DB) GetSubscriberData(sid int64) *xct.Flow {
	return xct.NewFlow("GetSubscriberData").AddPhase(&xct.Action{
		Table: "subscriber", KeyField: "s_id", Key: sid, Mode: xct.Read,
		Resolve: db.resolveBySID(sid), ResolveAsync: db.resolveBySIDAsync(sid), Label: "read-sub",
		Run: func(env *xct.Env) error {
			_, err := env.Ses.Read(env.Txn, db.Subscriber, sid)
			return err
		},
	})
}

// GetNewDestination returns the flow for TATP GET_NEW_DESTINATION:
// phase 1 checks the special facility is active, phase 2 scans matching
// call forwardings.
func (db *DB) GetNewDestination(sid, sfType, startTime, endTime int64) *xct.Flow {
	active := new(bool)
	return xct.NewFlow("GetNewDestination").
		AddPhase(&xct.Action{
			Table: "special_facility", KeyField: "s_id", Key: sid, Mode: xct.Read,
			Label: "read-sf",
			Run: func(env *xct.Env) error {
				rec, err := env.Ses.Read(env.Txn, db.SpecialFac, SFKey(sid, sfType))
				if err != nil {
					if errors.Is(err, sm.ErrNotFound) {
						return nil // no such facility: valid empty result
					}
					return err
				}
				*active = rec[2].Int == 1
				return nil
			},
		}).
		AddPhase(&xct.Action{
			Table: "call_forwarding", KeyField: "s_id", Key: sid, Mode: xct.Read,
			Label: "scan-cf",
			Run: func(env *xct.Env) error {
				if !*active {
					return nil
				}
				lo := CFKey(sid, sfType, 0)
				hi := CFKey(sid, sfType, 16)
				return env.Ses.ScanRange(env.Txn, db.CallForward, lo, hi,
					func(k int64, rec tuple.Record) bool {
						// start_time <= startTime && endTime < end_time
						return !(rec[2].Int <= startTime && endTime < rec[3].Int)
					})
			},
		})
}

// GetAccessData returns the flow for TATP GET_ACCESS_DATA.
func (db *DB) GetAccessData(sid, aiType int64) *xct.Flow {
	return xct.NewFlow("GetAccessData").AddPhase(&xct.Action{
		Table: "access_info", KeyField: "s_id", Key: sid, Mode: xct.Read,
		Label: "read-ai",
		Run: func(env *xct.Env) error {
			_, err := env.Ses.Read(env.Txn, db.AccessInfo, AIKey(sid, aiType))
			if errors.Is(err, sm.ErrNotFound) {
				return nil // ~37% of probes are misses by design
			}
			return err
		},
	})
}

// BatchScanSubscribers returns a flow reading every subscriber with
// lo <= s_id <= hi under ONE ranged S lock instead of a lock per id:
// the hierarchical local lock table grants it as a handful of
// granule-level locks (or a single partition-level lock for wide
// spans), while the flat table expands it key by key — the ablation
// experiment E19 measures exactly that difference. The action routes to
// the partition owning lo; the lock protects the interval's
// intersection with that partition's ranges, so callers wanting full
// coverage keep [lo, hi] inside one partition (the scan itself ships
// foreign segments to their owners like any range scan).
func (db *DB) BatchScanSubscribers(lo, hi int64) *xct.Flow {
	return xct.NewFlow("BatchScanSubscribers").AddPhase(&xct.Action{
		Table: "subscriber", KeyField: "s_id", Key: lo, Mode: xct.Read,
		Ranged: true, RangeLo: lo, RangeHi: hi, Label: "scan-subs",
		Run: func(env *xct.Env) error {
			return env.Ses.ScanRange(env.Txn, db.Subscriber, lo, hi,
				func(int64, tuple.Record) bool { return true })
		},
	})
}

// UpdateSubscriberData returns the flow for TATP UPDATE_SUBSCRIBER_DATA:
// two parallel single-site writes.
func (db *DB) UpdateSubscriberData(sid, sfType, bit, dataA int64) *xct.Flow {
	return xct.NewFlow("UpdateSubscriberData").AddPhase(
		&xct.Action{
			Table: "subscriber", KeyField: "s_id", Key: sid, Mode: xct.Write,
			Resolve: db.resolveBySID(sid), ResolveAsync: db.resolveBySIDAsync(sid), Label: "upd-sub",
			Run: func(env *xct.Env) error {
				return env.Ses.Mutate(env.Txn, db.Subscriber, sid, func(r tuple.Record) tuple.Record {
					r[subBit1] = tuple.I(bit)
					return r
				})
			},
		},
		&xct.Action{
			Table: "special_facility", KeyField: "s_id", Key: sid, Mode: xct.Write,
			Label: "upd-sf",
			Run: func(env *xct.Env) error {
				err := env.Ses.Mutate(env.Txn, db.SpecialFac, SFKey(sid, sfType), func(r tuple.Record) tuple.Record {
					r[4] = tuple.I(dataA)
					return r
				})
				if errors.Is(err, sm.ErrNotFound) {
					return nil
				}
				return err
			},
		},
	)
}

// UpdateLocation returns the flow for TATP UPDATE_LOCATION — keyed by
// sub_nbr, the canonical non-partition-aligned access.
func (db *DB) UpdateLocation(nbr, vlr int64) *xct.Flow {
	return xct.NewFlow("UpdateLocation").AddPhase(&xct.Action{
		Table: "subscriber", KeyField: "sub_nbr", Key: nbr, Mode: xct.Write,
		Resolve: db.resolveByNbr(nbr), ResolveAsync: db.resolveByNbrAsync(nbr), Label: "upd-loc",
		Run: func(env *xct.Env) error {
			rec, err := env.Ses.ReadByIndex(env.Txn, db.Subscriber, "sub_by_nbr", nbr)
			if err != nil {
				return err
			}
			sid := rec[subSID].Int
			return env.Ses.Mutate(env.Txn, db.Subscriber, sid, func(r tuple.Record) tuple.Record {
				r[subVLRLoc] = tuple.I(vlr)
				return r
			})
		},
	})
}

// InsertCallForwarding returns the flow for TATP INSERT_CALL_FORWARDING.
// Phase 1 resolves the subscriber and checks the facility; phase 2
// inserts. A duplicate forwarding aborts the transaction (per spec).
func (db *DB) InsertCallForwarding(nbr, sfType, startTime, endTime, numberx int64) *xct.Flow {
	sid := new(int64)
	// Phase 2's routing key (the resolved s_id) is produced by phase 1:
	// the first action fills it in before the RVP dispatches the insert.
	ins := &xct.Action{
		Table: "call_forwarding", KeyField: "s_id", Mode: xct.Write,
		Label: "ins-cf", LateKey: true,
		Run: func(env *xct.Env) error {
			return env.Ses.Insert(env.Txn, db.CallForward, tuple.Record{
				tuple.I(*sid), tuple.I(sfType), tuple.I(startTime),
				tuple.I(endTime), tuple.I(numberx),
			})
		},
	}
	return xct.NewFlow("InsertCallForwarding").
		AddPhase(&xct.Action{
			Table: "subscriber", KeyField: "sub_nbr", Key: nbr, Mode: xct.Read,
			Resolve: db.resolveByNbr(nbr), ResolveAsync: db.resolveByNbrAsync(nbr), Label: "find-sub",
			Run: func(env *xct.Env) error {
				rec, err := env.Ses.ReadByIndex(env.Txn, db.Subscriber, "sub_by_nbr", nbr)
				if err != nil {
					return err
				}
				*sid = rec[subSID].Int
				ins.Key = *sid
				return nil
			},
		}).
		AddPhase(ins)
}

// DeleteCallForwarding returns the flow for TATP DELETE_CALL_FORWARDING.
// Deleting a non-existent forwarding aborts (per spec).
func (db *DB) DeleteCallForwarding(nbr, sfType, startTime int64) *xct.Flow {
	sid := new(int64)
	del := &xct.Action{
		Table: "call_forwarding", KeyField: "s_id", Mode: xct.Write,
		Label: "del-cf", LateKey: true,
		Run: func(env *xct.Env) error {
			return env.Ses.Delete(env.Txn, db.CallForward, CFKey(*sid, sfType, startTime))
		},
	}
	return xct.NewFlow("DeleteCallForwarding").
		AddPhase(&xct.Action{
			Table: "subscriber", KeyField: "sub_nbr", Key: nbr, Mode: xct.Read,
			Resolve: db.resolveByNbr(nbr), ResolveAsync: db.resolveByNbrAsync(nbr), Label: "find-sub",
			Run: func(env *xct.Env) error {
				rec, err := env.Ses.ReadByIndex(env.Txn, db.Subscriber, "sub_by_nbr", nbr)
				if err != nil {
					return err
				}
				*sid = rec[subSID].Int
				del.Key = *sid
				return nil
			},
		}).
		AddPhase(del)
}

// MixOptions parameterize NewMix.
type MixOptions struct {
	// SIDGen draws subscriber ids (default uniform over [1, N]).
	SIDGen workload.KeyGen
}

// NewMix returns the standard TATP mix (35/10/35/2/14/2/2).
func (db *DB) NewMix(opt MixOptions) workload.Mix {
	gen := opt.SIDGen
	if gen == nil {
		gen = workload.Uniform{Lo: 1, Hi: db.N}
	}
	sid := func(rng *rand.Rand) int64 { return gen.Next(rng) }
	return workload.Mix{
		{Name: "GetSubscriberData", Weight: 35, Build: func(rng *rand.Rand) *xct.Flow {
			return db.GetSubscriberData(sid(rng))
		}},
		{Name: "GetNewDestination", Weight: 10, Build: func(rng *rand.Rand) *xct.Flow {
			return db.GetNewDestination(sid(rng), 1+rng.Int63n(4), 8*rng.Int63n(3), 1+rng.Int63n(24))
		}},
		{Name: "GetAccessData", Weight: 35, Build: func(rng *rand.Rand) *xct.Flow {
			return db.GetAccessData(sid(rng), 1+rng.Int63n(4))
		}},
		{Name: "UpdateSubscriberData", Weight: 2, Build: func(rng *rand.Rand) *xct.Flow {
			return db.UpdateSubscriberData(sid(rng), 1+rng.Int63n(4), rng.Int63n(2), rng.Int63n(256))
		}},
		{Name: "UpdateLocation", Weight: 14, Build: func(rng *rand.Rand) *xct.Flow {
			return db.UpdateLocation(db.SubNbr(sid(rng)), rng.Int63n(1<<16))
		}},
		{Name: "InsertCallForwarding", Weight: 2, Build: func(rng *rand.Rand) *xct.Flow {
			return db.InsertCallForwarding(db.SubNbr(sid(rng)), 1+rng.Int63n(4), 8*rng.Int63n(3), 1+rng.Int63n(24), rng.Int63n(1<<30))
		}},
		{Name: "DeleteCallForwarding", Weight: 2, Build: func(rng *rand.Rand) *xct.Flow {
			return db.DeleteCallForwarding(db.SubNbr(sid(rng)), 1+rng.Int63n(4), 8*rng.Int63n(3))
		}},
	}
}

// ReadOnlyMix returns only the three read transactions (80% of standard
// TATP); useful for the intra-transaction-parallelism experiment.
func (db *DB) ReadOnlyMix(opt MixOptions) workload.Mix {
	m := db.NewMix(opt)
	return workload.Mix{m[0], m[1], m[2]}
}

// WriteMix returns a write-heavy TATP variant — the two update
// transactions at elevated weight over a thin read background — used by
// experiment E15 to stress the owner write path and the page cleaner.
func (db *DB) WriteMix(opt MixOptions) workload.Mix {
	m := db.NewMix(opt)
	return workload.Mix{
		{Name: m[3].Name, Weight: 40, Build: m[3].Build}, // UpdateSubscriberData
		{Name: m[4].Name, Weight: 40, Build: m[4].Build}, // UpdateLocation
		{Name: m[0].Name, Weight: 20, Build: m[0].Build}, // GetSubscriberData
	}
}

// YCSBMix returns a YCSB-style two-operation mix over the subscriber
// table: point reads (GetSubscriberData) against point updates
// (UpdateSubscriberData), with readFrac (clamped to [0,1]) of the
// traffic reading. Combined with a zipfian SIDGen this reproduces the
// standard YCSB A/B/C workload shapes on TATP's schema — the
// configurable read/write dial the overload scenarios sweep.
func (db *DB) YCSBMix(readFrac float64, opt MixOptions) workload.Mix {
	if readFrac < 0 {
		readFrac = 0
	}
	if readFrac > 1 {
		readFrac = 1
	}
	m := db.NewMix(opt)
	reads := int(readFrac*100 + 0.5)
	mix := workload.Mix{}
	if reads > 0 {
		mix = append(mix, workload.TxnType{Name: m[0].Name, Weight: reads, Build: m[0].Build})
	}
	if reads < 100 {
		mix = append(mix, workload.TxnType{Name: m[3].Name, Weight: 100 - reads, Build: m[3].Build})
	}
	return mix
}
