// Package tpcc implements a TPC-C benchmark (all five transactions —
// NewOrder, Payment, OrderStatus, Delivery, StockLevel) as transaction
// flow graphs runnable on both execution engines. The demo's second
// pre-defined workload (§2.2 "Access Patterns") is TPC-C.
//
// Composite keys are bit-packed: district (w,d) → w*16+d; customer
// (w,d,c) → (w*16+d)<<12|c; stock (w,i) → w<<17|i; orders/new_order
// (w,d,o) → (w*16+d)<<32|o; order_line adds <<4|ol. Every table's
// partitioning field is its warehouse id (item, a global read-mostly
// table, partitions by i_id), so a transaction decomposes into actions
// per warehouse plus one read action per item — the decomposition the
// DORA paper uses for TPC-C.
package tpcc

import (
	"math/rand"
	"sync/atomic"

	"dora/internal/catalog"
	"dora/internal/sm"
	"dora/internal/tuple"
)

// Scale parameterizes database size. The TPC-C spec values are large;
// tests use cut-down scales with identical shape.
type Scale struct {
	Warehouses        int64
	DistrictsPerW     int64 // spec: 10
	CustomersPerD     int64 // spec: 3000
	Items             int64 // spec: 100000
	InitialOrdersPerD int64 // spec: 3000 (orders 2101..3000 are new)
}

// DefaultScale returns a laptop-scale configuration preserving ratios.
func DefaultScale(warehouses int64) Scale {
	return Scale{
		Warehouses:        warehouses,
		DistrictsPerW:     10,
		CustomersPerD:     300,
		Items:             1000,
		InitialOrdersPerD: 30,
	}
}

// Key packing.

// DKey packs a district key.
func DKey(w, d int64) int64 { return w*16 + d }

// CKey packs a customer key.
func CKey(w, d, c int64) int64 { return DKey(w, d)<<12 | c }

// SKey packs a stock key.
func SKey(w, i int64) int64 { return w<<17 | i }

// OKey packs an order (and new_order) key.
func OKey(w, d, o int64) int64 { return DKey(w, d)<<32 | o }

// OLKey packs an order-line key.
func OLKey(w, d, o, ol int64) int64 { return OKey(w, d, o)<<4 | ol }

// Field positions (kept small but representative).
const (
	dNextOID = 3 // district: w_id, d_id, ytd, next_o_id
	cBalance = 3 // customer: w_id, d_id, c_id, balance, ytd_payment, payment_cnt, last
	oCID     = 3 // orders: w_id, d_id, o_id, c_id, carrier_id, ol_cnt
	oCarrier = 4
	oOlCnt   = 5
	olIID    = 4 // order_line: w_id, d_id, o_id, ol, i_id, qty, amount
	olAmount = 6
	sQty     = 2 // stock: w_id, i_id, quantity, ytd, order_cnt
)

// DB holds the loaded TPC-C tables.
type DB struct {
	SM    *sm.SM
	Scale Scale

	Warehouse *catalog.Table
	District  *catalog.Table
	Customer  *catalog.Table
	History   *catalog.Table
	NewOrder  *catalog.Table
	Orders    *catalog.Table
	OrderLine *catalog.Table
	Item      *catalog.Table
	Stock     *catalog.Table

	hseq atomic.Int64 // history sequence
}

// Domains returns DORA routing domains for all tables.
func (db *DB) Domains() map[string][2]int64 {
	w := db.Scale.Warehouses
	return map[string][2]int64{
		"warehouse":  {1, w},
		"district":   {1, w},
		"customer":   {1, w},
		"history":    {1, w},
		"new_order":  {1, w},
		"orders":     {1, w},
		"order_line": {1, w},
		"stock":      {1, w},
		"item":       {1, db.Scale.Items},
	}
}

// Load creates and populates the schema.
func Load(s *sm.SM, sc Scale) (*DB, error) {
	db := &DB{SM: s, Scale: sc}
	intf := func(names ...string) []catalog.Field {
		out := make([]catalog.Field, len(names))
		for i, n := range names {
			out[i] = catalog.Field{Name: n, Type: tuple.TInt}
		}
		return out
	}
	var err error
	db.Warehouse, err = s.CreateTable(sm.TableSpec{
		Name: "warehouse", Fields: intf("w_id", "ytd", "tax"),
		KeyFields: []string{"w_id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
	})
	if err != nil {
		return nil, err
	}
	db.District, err = s.CreateTable(sm.TableSpec{
		Name: "district", Fields: intf("w_id", "d_id", "ytd", "next_o_id"),
		KeyFields: []string{"w_id", "d_id"},
		Key:       func(r tuple.Record) int64 { return DKey(r[0].Int, r[1].Int) },

		RouteRange: func(lo, hi int64) (int64, int64) { return lo * 16, (hi+1)*16 - 1 },
	})
	if err != nil {
		return nil, err
	}
	db.Customer, err = s.CreateTable(sm.TableSpec{
		Name:      "customer",
		Fields:    intf("w_id", "d_id", "c_id", "balance", "ytd_payment", "payment_cnt", "last"),
		KeyFields: []string{"w_id", "d_id", "c_id"},
		Key:       func(r tuple.Record) int64 { return CKey(r[0].Int, r[1].Int, r[2].Int) },

		RouteRange: func(lo, hi int64) (int64, int64) { return lo << 16, (hi+1)<<16 - 1 },
	})
	if err != nil {
		return nil, err
	}
	db.History, err = s.CreateTable(sm.TableSpec{
		Name: "history", Fields: intf("w_id", "h_seq", "d_id", "c_id", "amount"),
		KeyFields: []string{"w_id", "h_seq"},
		Key:       func(r tuple.Record) int64 { return r[0].Int<<40 | r[1].Int },

		RouteRange: func(lo, hi int64) (int64, int64) { return lo << 40, (hi+1)<<40 - 1 },
	})
	if err != nil {
		return nil, err
	}
	db.NewOrder, err = s.CreateTable(sm.TableSpec{
		Name: "new_order", Fields: intf("w_id", "d_id", "o_id"),
		KeyFields: []string{"w_id", "d_id", "o_id"},
		Key:       func(r tuple.Record) int64 { return OKey(r[0].Int, r[1].Int, r[2].Int) },

		RouteRange: func(lo, hi int64) (int64, int64) { return lo << 36, (hi+1)<<36 - 1 },
	})
	if err != nil {
		return nil, err
	}
	db.Orders, err = s.CreateTable(sm.TableSpec{
		Name:      "orders",
		Fields:    intf("w_id", "d_id", "o_id", "c_id", "carrier_id", "ol_cnt"),
		KeyFields: []string{"w_id", "d_id", "o_id"},
		Key:       func(r tuple.Record) int64 { return OKey(r[0].Int, r[1].Int, r[2].Int) },

		RouteRange: func(lo, hi int64) (int64, int64) { return lo << 36, (hi+1)<<36 - 1 },
	})
	if err != nil {
		return nil, err
	}
	db.OrderLine, err = s.CreateTable(sm.TableSpec{
		Name:      "order_line",
		Fields:    intf("w_id", "d_id", "o_id", "ol", "i_id", "qty", "amount"),
		KeyFields: []string{"w_id", "d_id", "o_id", "ol"},
		Key:       func(r tuple.Record) int64 { return OLKey(r[0].Int, r[1].Int, r[2].Int, r[3].Int) },

		RouteRange: func(lo, hi int64) (int64, int64) { return lo << 40, (hi+1)<<40 - 1 },
	})
	if err != nil {
		return nil, err
	}
	db.Item, err = s.CreateTable(sm.TableSpec{
		Name: "item", Fields: intf("i_id", "price", "im_id"),
		KeyFields: []string{"i_id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
	})
	if err != nil {
		return nil, err
	}
	db.Stock, err = s.CreateTable(sm.TableSpec{
		Name: "stock", Fields: intf("w_id", "i_id", "quantity", "ytd", "order_cnt"),
		KeyFields: []string{"w_id", "i_id"},
		Key:       func(r tuple.Record) int64 { return SKey(r[0].Int, r[1].Int) },

		RouteRange: func(lo, hi int64) (int64, int64) { return lo << 17, (hi+1)<<17 - 1 },
	})
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(77))
	ses := s.Session(0)
	txn := s.Begin()
	count := 0
	step := func() error {
		count++
		if count%2000 == 0 {
			if err := s.Commit(txn); err != nil {
				return err
			}
			txn = s.Begin()
		}
		return nil
	}
	ins := func(t *catalog.Table, vals ...int64) error {
		rec := make(tuple.Record, len(vals))
		for i, v := range vals {
			rec[i] = tuple.I(v)
		}
		if err := ses.Insert(txn, t, rec); err != nil {
			return err
		}
		return step()
	}

	for i := int64(1); i <= sc.Items; i++ {
		if err := ins(db.Item, i, 100+rng.Int63n(9900), rng.Int63n(10000)); err != nil {
			return nil, err
		}
	}
	for w := int64(1); w <= sc.Warehouses; w++ {
		if err := ins(db.Warehouse, w, 300000, rng.Int63n(2000)); err != nil {
			return nil, err
		}
		for i := int64(1); i <= sc.Items; i++ {
			if err := ins(db.Stock, w, i, 10+rng.Int63n(91), 0, 0); err != nil {
				return nil, err
			}
		}
		for d := int64(1); d <= sc.DistrictsPerW; d++ {
			if err := ins(db.District, w, d, 30000, sc.InitialOrdersPerD+1); err != nil {
				return nil, err
			}
			for c := int64(1); c <= sc.CustomersPerD; c++ {
				if err := ins(db.Customer, w, d, c, -1000, 1000, 1, c%97); err != nil {
					return nil, err
				}
			}
			for o := int64(1); o <= sc.InitialOrdersPerD; o++ {
				cid := 1 + rng.Int63n(sc.CustomersPerD)
				olCnt := 5 + rng.Int63n(11)
				carrier := int64(0)
				isNew := o > sc.InitialOrdersPerD*2/3
				if !isNew {
					carrier = 1 + rng.Int63n(10)
				}
				if err := ins(db.Orders, w, d, o, cid, carrier, olCnt); err != nil {
					return nil, err
				}
				if isNew {
					if err := ins(db.NewOrder, w, d, o); err != nil {
						return nil, err
					}
				}
				for ol := int64(1); ol <= olCnt; ol++ {
					iid := 1 + rng.Int63n(sc.Items)
					if err := ins(db.OrderLine, w, d, o, ol, iid, 5, rng.Int63n(10000)); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if err := s.Commit(txn); err != nil {
		return nil, err
	}
	db.hseq.Store(1)
	return db, nil
}

// NextHSeq allocates a history row sequence number.
func (db *DB) NextHSeq() int64 { return db.hseq.Add(1) }
