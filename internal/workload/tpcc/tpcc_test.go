package tpcc

import (
	"testing"
	"time"

	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/engine/conventional"
	"dora/internal/sm"
	"dora/internal/workload"
)

func smallScale() Scale {
	return Scale{
		Warehouses: 2, DistrictsPerW: 4, CustomersPerD: 50,
		Items: 100, InitialOrdersPerD: 10,
	}
}

func loadDB(t *testing.T) *DB {
	t.Helper()
	s, err := sm.Open(sm.Options{Frames: 4096})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Load(s, smallScale())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func newDora(t *testing.T, db *DB) *dora.Dora {
	t.Helper()
	e := dora.New(db.SM, dora.Config{PartitionsPerTable: 2, Domains: db.Domains()})
	t.Cleanup(func() { _ = e.Close() })
	return e
}

func TestKeyPackingMonotone(t *testing.T) {
	if DKey(1, 4) >= DKey(2, 1) {
		t.Fatal("district keys cross warehouses")
	}
	if CKey(1, 4, 50) >= CKey(2, 1, 1) {
		t.Fatal("customer keys cross warehouses")
	}
	if OLKey(1, 2, 3, 15) >= OLKey(1, 2, 4, 0) {
		t.Fatal("orderline keys cross orders")
	}
	if OKey(1, 2, 3) == OKey(1, 3, 2) {
		t.Fatal("order key collision")
	}
}

func TestLoadCounts(t *testing.T) {
	db := loadDB(t)
	sc := db.Scale
	if got := db.Warehouse.Primary.Tree.Len(); int64(got) != sc.Warehouses {
		t.Fatalf("warehouses = %d", got)
	}
	if got := db.District.Primary.Tree.Len(); int64(got) != sc.Warehouses*sc.DistrictsPerW {
		t.Fatalf("districts = %d", got)
	}
	if got := db.Customer.Primary.Tree.Len(); int64(got) != sc.Warehouses*sc.DistrictsPerW*sc.CustomersPerD {
		t.Fatalf("customers = %d", got)
	}
	if got := db.Stock.Primary.Tree.Len(); int64(got) != sc.Warehouses*sc.Items {
		t.Fatalf("stocks = %d", got)
	}
	if got := db.Orders.Primary.Tree.Len(); int64(got) != sc.Warehouses*sc.DistrictsPerW*sc.InitialOrdersPerD {
		t.Fatalf("orders = %d", got)
	}
	if db.NewOrder.Primary.Tree.Len() == 0 {
		t.Fatal("no new_order rows loaded")
	}
}

// execBoth runs the same scenario against a conventional and a DORA
// engine, each over its own freshly loaded database.
func execBoth(t *testing.T, scenario func(t *testing.T, db *DB, e engine.Engine)) {
	t.Helper()
	for _, mk := range []func(db *DB) engine.Engine{
		func(db *DB) engine.Engine { return conventional.New(db.SM) },
		func(db *DB) engine.Engine {
			return dora.New(db.SM, dora.Config{PartitionsPerTable: 2, Domains: db.Domains()})
		},
	} {
		db := loadDB(t)
		e := mk(db)
		scenario(t, db, e)
		_ = e.Close()
	}
}

func TestNewOrderCommits(t *testing.T) {
	execBoth(t, func(t *testing.T, db *DB, e engine.Engine) {
		items := []OrderItem{{IID: 1, SupplyW: 1, Qty: 2}, {IID: 2, SupplyW: 1, Qty: 1}, {IID: 3, SupplyW: 2, Qty: 3}}
		if err := e.Exec(0, db.NewOrderTxn(1, 1, 1, items)); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		// next_o_id advanced and the order exists.
		ses := db.SM.Session(0)
		rec, err := ses.Read(db.SM.Begin(), db.District, DKey(1, 1))
		if err != nil {
			t.Fatal(err)
		}
		oid := rec[dNextOID].Int - 1
		if oid != db.Scale.InitialOrdersPerD+1 {
			t.Fatalf("allocated o_id = %d", oid)
		}
		if _, err := ses.Read(db.SM.Begin(), db.Orders, OKey(1, 1, oid)); err != nil {
			t.Fatalf("order row missing: %v", err)
		}
		if _, err := ses.Read(db.SM.Begin(), db.OrderLine, OLKey(1, 1, oid, 1)); err != nil {
			t.Fatalf("orderline missing: %v", err)
		}
	})
}

func TestNewOrderInvalidItemRollsBack(t *testing.T) {
	execBoth(t, func(t *testing.T, db *DB, e engine.Engine) {
		items := []OrderItem{{IID: 1, SupplyW: 1, Qty: 1}, {IID: 99999, SupplyW: 1, Qty: 1}}
		err := e.Exec(0, db.NewOrderTxn(1, 1, 1, items))
		if err == nil {
			t.Fatal("invalid item must abort")
		}
		// District next_o_id must be unchanged (rolled back).
		ses := db.SM.Session(0)
		rec, rerr := ses.Read(db.SM.Begin(), db.District, DKey(1, 1))
		if rerr != nil {
			t.Fatal(rerr)
		}
		if rec[dNextOID].Int != db.Scale.InitialOrdersPerD+1 {
			t.Fatalf("next_o_id leaked: %d", rec[dNextOID].Int)
		}
	})
}

func TestPaymentMovesMoney(t *testing.T) {
	execBoth(t, func(t *testing.T, db *DB, e engine.Engine) {
		if err := e.Exec(0, db.PaymentTxn(1, 1, 2, 2, 5, 1000)); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		ses := db.SM.Session(0)
		wrec, _ := ses.Read(db.SM.Begin(), db.Warehouse, 1)
		if wrec[1].Int != 301000 {
			t.Fatalf("warehouse ytd = %d", wrec[1].Int)
		}
		crec, _ := ses.Read(db.SM.Begin(), db.Customer, CKey(2, 2, 5))
		if crec[cBalance].Int != -2000 {
			t.Fatalf("customer balance = %d", crec[cBalance].Int)
		}
		// History row landed.
		if db.History.Primary.Tree.Len() != 1 {
			t.Fatalf("history rows = %d", db.History.Primary.Tree.Len())
		}
	})
}

func TestOrderStatusAndStockLevel(t *testing.T) {
	execBoth(t, func(t *testing.T, db *DB, e engine.Engine) {
		if err := e.Exec(0, db.OrderStatusTxn(1, 1, 1)); err != nil {
			t.Fatalf("%s order status: %v", e.Name(), err)
		}
		if err := e.Exec(0, db.StockLevelTxn(1, 1, 15)); err != nil {
			t.Fatalf("%s stock level: %v", e.Name(), err)
		}
	})
}

func TestDeliveryConsumesNewOrders(t *testing.T) {
	execBoth(t, func(t *testing.T, db *DB, e engine.Engine) {
		before := db.NewOrder.Primary.Tree.Len()
		if err := e.Exec(0, db.DeliveryTxn(1, 3)); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		after := db.NewOrder.Primary.Tree.Len()
		if after >= before {
			t.Fatalf("new_order count %d -> %d", before, after)
		}
	})
}

func TestMixOnBothEngines(t *testing.T) {
	db := loadDB(t)
	mix := db.NewMix(MixOptions{})

	conv := conventional.New(db.SM)
	res := (&workload.Driver{
		Engine: conv, Mix: mix, Clients: 4,
		Duration: 400 * time.Millisecond, Seed: 3,
	}).Run()
	if res.Committed < 20 {
		t.Fatalf("conventional committed %d", res.Committed)
	}

	de := newDora(t, db)
	res2 := (&workload.Driver{
		Engine: de, Mix: mix, Clients: 4,
		Duration: 400 * time.Millisecond, Seed: 4,
	}).Run()
	if res2.Committed < 20 {
		t.Fatalf("dora committed %d", res2.Committed)
	}
}

func TestDistrictOIDsNeverCollide(t *testing.T) {
	// Concurrent NewOrders to the same district must allocate unique o_ids.
	db := loadDB(t)
	de := newDora(t, db)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			items := []OrderItem{{IID: int64(i%10 + 1), SupplyW: 1, Qty: 1}}
			done <- de.Exec(i, db.NewOrderTxn(1, 1, int64(i+1), items))
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// All 16 orders present, contiguous o_ids.
	base := db.Scale.InitialOrdersPerD
	ses := db.SM.Session(0)
	for o := base + 1; o <= base+16; o++ {
		if _, err := ses.Read(db.SM.Begin(), db.Orders, OKey(1, 1, o)); err != nil {
			t.Fatalf("order %d missing: %v", o, err)
		}
	}
}
