package tpcc

import (
	"errors"
	"math/rand"

	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/workload"
	"dora/internal/xct"
)

// ErrInvalidItem is the TPC-C 1% NewOrder rollback (unused item id).
var ErrInvalidItem = errors.New("tpcc: invalid item")

// OrderItem is one NewOrder line request.
type OrderItem struct {
	IID     int64
	SupplyW int64
	Qty     int64
}

// NewOrderTxn builds the NEW-ORDER flow: phase 1 reads the warehouse and
// customer, allocates the order id from the district, reads the items
// (one action per item partition) and updates the stocks (one action per
// supply warehouse); phase 2 inserts the order, new-order and order
// lines. The o_id data dependency is what separates the phases.
func (db *DB) NewOrderTxn(w, d, c int64, items []OrderItem) *xct.Flow {
	oID := new(int64)
	amount := new(int64)
	prices := make([]int64, len(items)) // filled by the item read actions

	flow := xct.NewFlow("NewOrder")
	var phase1 []*xct.Action
	phase1 = append(phase1, &xct.Action{
		Table: "warehouse", KeyField: "w_id", Key: w, Mode: xct.Read, Label: "read-w",
		Run: func(env *xct.Env) error {
			_, err := env.Ses.Read(env.Txn, db.Warehouse, w)
			return err
		},
	})
	phase1 = append(phase1, &xct.Action{
		Table: "district", KeyField: "w_id", Key: w, Mode: xct.Write, Label: "alloc-oid",
		Run: func(env *xct.Env) error {
			return env.Ses.Mutate(env.Txn, db.District, DKey(w, d), func(r tuple.Record) tuple.Record {
				*oID = r[dNextOID].Int
				r[dNextOID] = tuple.I(*oID + 1)
				return r
			})
		},
	})
	phase1 = append(phase1, &xct.Action{
		Table: "customer", KeyField: "w_id", Key: w, Mode: xct.Read, Label: "read-c",
		Run: func(env *xct.Env) error {
			_, err := env.Ses.Read(env.Txn, db.Customer, CKey(w, d, c))
			return err
		},
	})
	// One read action per item (item is partitioned by i_id). Each action
	// writes only its own prices slot, so the phase's actions stay
	// data-independent; phase 2 reads the slots after the RVP.
	for n, it := range items {
		n, it := n, it
		phase1 = append(phase1, &xct.Action{
			Table: "item", KeyField: "i_id", Key: it.IID, Mode: xct.Read, Label: "read-item",
			Run: func(env *xct.Env) error {
				rec, err := env.Ses.Read(env.Txn, db.Item, it.IID)
				if err != nil {
					if errors.Is(err, sm.ErrNotFound) {
						return ErrInvalidItem // spec: 1% rollback
					}
					return err
				}
				prices[n] = rec[1].Int
				return nil
			},
		})
	}
	// One stock-update action per distinct supply warehouse.
	bySupply := map[int64][]OrderItem{}
	for _, it := range items {
		bySupply[it.SupplyW] = append(bySupply[it.SupplyW], it)
	}
	for sw, its := range bySupply {
		sw, its := sw, its
		phase1 = append(phase1, &xct.Action{
			Table: "stock", KeyField: "w_id", Key: sw, Mode: xct.Write, Label: "upd-stock",
			Run: func(env *xct.Env) error {
				for _, it := range its {
					err := env.Ses.Mutate(env.Txn, db.Stock, SKey(sw, it.IID), func(r tuple.Record) tuple.Record {
						q := r[sQty].Int - it.Qty
						if q < 10 {
							q += 91
						}
						r[sQty] = tuple.I(q)
						r[3] = tuple.I(r[3].Int + it.Qty)
						r[4] = tuple.I(r[4].Int + 1)
						return r
					})
					if err != nil {
						return err
					}
				}
				return nil
			},
		})
	}
	flow.AddPhase(phase1...)

	// Phase 2: inserts, one action per table (all routed by w).
	flow.AddPhase(
		&xct.Action{
			Table: "orders", KeyField: "w_id", Key: w, Mode: xct.Write, Label: "ins-order",
			Run: func(env *xct.Env) error {
				return env.Ses.Insert(env.Txn, db.Orders, tuple.Record{
					tuple.I(w), tuple.I(d), tuple.I(*oID), tuple.I(c),
					tuple.I(0), tuple.I(int64(len(items))),
				})
			},
		},
		&xct.Action{
			Table: "new_order", KeyField: "w_id", Key: w, Mode: xct.Write, Label: "ins-neworder",
			Run: func(env *xct.Env) error {
				return env.Ses.Insert(env.Txn, db.NewOrder, tuple.Record{
					tuple.I(w), tuple.I(d), tuple.I(*oID),
				})
			},
		},
		&xct.Action{
			Table: "order_line", KeyField: "w_id", Key: w, Mode: xct.Write, Label: "ins-ol",
			Run: func(env *xct.Env) error {
				var total int64
				for n, it := range items {
					amt := prices[n] * it.Qty
					total += amt
					err := env.Ses.Insert(env.Txn, db.OrderLine, tuple.Record{
						tuple.I(w), tuple.I(d), tuple.I(*oID), tuple.I(int64(n + 1)),
						tuple.I(it.IID), tuple.I(it.Qty), tuple.I(amt),
					})
					if err != nil {
						return err
					}
				}
				*amount = total
				return nil
			},
		},
	)
	return flow
}

// PaymentTxn builds the PAYMENT flow: warehouse/district/customer updates
// in parallel (the customer may live at a remote warehouse), then the
// history insert.
func (db *DB) PaymentTxn(w, d, cw, cd, c, amount int64) *xct.Flow {
	return xct.NewFlow("Payment").
		AddPhase(
			&xct.Action{
				Table: "warehouse", KeyField: "w_id", Key: w, Mode: xct.Write, Label: "upd-w",
				Run: func(env *xct.Env) error {
					return env.Ses.Mutate(env.Txn, db.Warehouse, w, func(r tuple.Record) tuple.Record {
						r[1] = tuple.I(r[1].Int + amount)
						return r
					})
				},
			},
			&xct.Action{
				Table: "district", KeyField: "w_id", Key: w, Mode: xct.Write, Label: "upd-d",
				Run: func(env *xct.Env) error {
					return env.Ses.Mutate(env.Txn, db.District, DKey(w, d), func(r tuple.Record) tuple.Record {
						r[2] = tuple.I(r[2].Int + amount)
						return r
					})
				},
			},
			&xct.Action{
				Table: "customer", KeyField: "w_id", Key: cw, Mode: xct.Write, Label: "upd-c",
				Run: func(env *xct.Env) error {
					return env.Ses.Mutate(env.Txn, db.Customer, CKey(cw, cd, c), func(r tuple.Record) tuple.Record {
						r[cBalance] = tuple.I(r[cBalance].Int - amount)
						r[4] = tuple.I(r[4].Int + amount)
						r[5] = tuple.I(r[5].Int + 1)
						return r
					})
				},
			},
		).
		AddPhase(&xct.Action{
			Table: "history", KeyField: "w_id", Key: w, Mode: xct.Write, Label: "ins-h",
			Run: func(env *xct.Env) error {
				return env.Ses.Insert(env.Txn, db.History, tuple.Record{
					tuple.I(w), tuple.I(db.NextHSeq()), tuple.I(d), tuple.I(c), tuple.I(amount),
				})
			},
		})
}

// OrderStatusTxn builds ORDER-STATUS: read the customer and find the
// district's latest order, then read it with its lines.
func (db *DB) OrderStatusTxn(w, d, c int64) *xct.Flow {
	lastO := new(int64)
	return xct.NewFlow("OrderStatus").
		AddPhase(
			&xct.Action{
				Table: "customer", KeyField: "w_id", Key: w, Mode: xct.Read, Label: "read-c",
				Run: func(env *xct.Env) error {
					_, err := env.Ses.Read(env.Txn, db.Customer, CKey(w, d, c))
					return err
				},
			},
			&xct.Action{
				Table: "district", KeyField: "w_id", Key: w, Mode: xct.Read, Label: "read-d",
				Run: func(env *xct.Env) error {
					rec, err := env.Ses.Read(env.Txn, db.District, DKey(w, d))
					if err != nil {
						return err
					}
					*lastO = rec[dNextOID].Int - 1
					return nil
				},
			},
		).
		AddPhase(&xct.Action{
			Table: "orders", KeyField: "w_id", Key: w, Mode: xct.Read, Label: "read-o",
			Run: func(env *xct.Env) error {
				if *lastO < 1 {
					return nil
				}
				if _, err := env.Ses.Read(env.Txn, db.Orders, OKey(w, d, *lastO)); err != nil {
					if errors.Is(err, sm.ErrNotFound) {
						return nil
					}
					return err
				}
				lo, hi := OLKey(w, d, *lastO, 0), OLKey(w, d, *lastO, 15)
				visit := func(k int64, r tuple.Record) bool { return true }
				// The order-line scan is this flow's one cross-partition
				// access (order_line is served by its own workers): with a
				// continuation engine the action suspends instead of
				// parking the orders worker for the round trip.
				if env.Async != nil {
					resume := env.Async.Suspend()
					env.Ses.ScanRangeAsync(env.Txn, db.OrderLine, lo, hi, env.Async.Home(), visit, resume)
					return nil
				}
				return env.Ses.ScanRange(env.Txn, db.OrderLine, lo, hi, visit)
			},
		})
}

// DeliveryTxn builds DELIVERY for one warehouse: per district, pop the
// oldest new-order, mark the order delivered, and credit the customer.
func (db *DB) DeliveryTxn(w, carrier int64) *xct.Flow {
	nd := db.Scale.DistrictsPerW
	oIDs := make([]int64, nd+1)
	cIDs := make([]int64, nd+1)
	amounts := make([]int64, nd+1)

	var popActions, updActions, custActions []*xct.Action
	for d := int64(1); d <= nd; d++ {
		d := d
		popActions = append(popActions, &xct.Action{
			Table: "new_order", KeyField: "w_id", Key: w, Mode: xct.Write, Label: "pop-no",
			Run: func(env *xct.Env) error {
				var oldest int64 = -1
				err := env.Ses.ScanRange(env.Txn, db.NewOrder,
					OKey(w, d, 0), OKey(w, d, 1<<31),
					func(k int64, r tuple.Record) bool {
						oldest = r[2].Int
						return false
					})
				if err != nil {
					return err
				}
				oIDs[d] = oldest
				if oldest < 0 {
					return nil // district fully delivered: skip
				}
				return env.Ses.Delete(env.Txn, db.NewOrder, OKey(w, d, oldest))
			},
		})
		updActions = append(updActions, &xct.Action{
			Table: "orders", KeyField: "w_id", Key: w, Mode: xct.Write, Label: "upd-o",
			Run: func(env *xct.Env) error {
				o := oIDs[d]
				if o < 0 {
					return nil
				}
				err := env.Ses.Mutate(env.Txn, db.Orders, OKey(w, d, o), func(r tuple.Record) tuple.Record {
					cIDs[d] = r[oCID].Int
					r[oCarrier] = tuple.I(carrier)
					return r
				})
				if err != nil {
					return err
				}
				var total int64
				lo, hi := OLKey(w, d, o, 0), OLKey(w, d, o, 15)
				sum := func(k int64, r tuple.Record) bool {
					total += r[olAmount].Int
					return true
				}
				// Cross-partition order-line scan: suspend on it under a
				// continuation engine (see OrderStatus); the total lands
				// in amounts[d] before the resume reports, so the next
				// phase reads it through the RVP ordering.
				if env.Async != nil {
					resume := env.Async.Suspend()
					env.Ses.ScanRangeAsync(env.Txn, db.OrderLine, lo, hi, env.Async.Home(), sum,
						func(err error) {
							amounts[d] = total
							resume(err)
						})
					return nil
				}
				err = env.Ses.ScanRange(env.Txn, db.OrderLine, lo, hi, sum)
				amounts[d] = total
				return err
			},
		})
		custActions = append(custActions, &xct.Action{
			Table: "customer", KeyField: "w_id", Key: w, Mode: xct.Write, Label: "credit-c",
			Run: func(env *xct.Env) error {
				if oIDs[d] < 0 {
					return nil
				}
				return env.Ses.Mutate(env.Txn, db.Customer, CKey(w, d, cIDs[d]), func(r tuple.Record) tuple.Record {
					r[cBalance] = tuple.I(r[cBalance].Int + amounts[d])
					return r
				})
			},
		})
	}
	return xct.NewFlow("Delivery").
		AddPhase(popActions...).
		AddPhase(updActions...).
		AddPhase(custActions...)
}

// StockLevelTxn builds STOCK-LEVEL: examine the district's last 20
// orders' lines and count stocks below the threshold.
func (db *DB) StockLevelTxn(w, d, threshold int64) *xct.Flow {
	nextO := new(int64)
	itemSet := new([]int64)
	return xct.NewFlow("StockLevel").
		AddPhase(&xct.Action{
			Table: "district", KeyField: "w_id", Key: w, Mode: xct.Read, Label: "read-d",
			Run: func(env *xct.Env) error {
				rec, err := env.Ses.Read(env.Txn, db.District, DKey(w, d))
				if err != nil {
					return err
				}
				*nextO = rec[dNextOID].Int
				return nil
			},
		}).
		AddPhase(&xct.Action{
			Table: "order_line", KeyField: "w_id", Key: w, Mode: xct.Read, Label: "scan-ol",
			Run: func(env *xct.Env) error {
				lo := *nextO - 20
				if lo < 1 {
					lo = 1
				}
				seen := map[int64]bool{}
				err := env.Ses.ScanRange(env.Txn, db.OrderLine,
					OLKey(w, d, lo, 0), OLKey(w, d, *nextO, 0),
					func(k int64, r tuple.Record) bool {
						seen[r[olIID].Int] = true
						return true
					})
				if err != nil {
					return err
				}
				for iid := range seen {
					*itemSet = append(*itemSet, iid)
				}
				return nil
			},
		}).
		AddPhase(&xct.Action{
			Table: "stock", KeyField: "w_id", Key: w, Mode: xct.Read, Label: "count-stock",
			Run: func(env *xct.Env) error {
				low := 0
				for _, iid := range *itemSet {
					rec, err := env.Ses.Read(env.Txn, db.Stock, SKey(w, iid))
					if err != nil {
						return err
					}
					if rec[sQty].Int < threshold {
						low++
					}
				}
				return nil
			},
		})
}

// MixOptions parameterize NewMix.
type MixOptions struct {
	// WGen draws the home warehouse (default uniform).
	WGen workload.KeyGen
	// RemotePct is the probability a Payment customer or NewOrder supply
	// warehouse is remote (default 0.15 and 0.01 resp. when zero and
	// Warehouses > 1).
	RemotePct float64
	// InvalidItemPct is the NewOrder rollback rate (default 0.01).
	InvalidItemPct float64
}

// NewMix returns the standard TPC-C mix (45/43/4/4/4).
func (db *DB) NewMix(opt MixOptions) workload.Mix {
	sc := db.Scale
	wgen := opt.WGen
	if wgen == nil {
		wgen = workload.Uniform{Lo: 1, Hi: sc.Warehouses}
	}
	remote := opt.RemotePct
	if remote == 0 && sc.Warehouses > 1 {
		remote = 0.15
	}
	invalid := opt.InvalidItemPct
	if invalid == 0 {
		invalid = 0.01
	}
	otherW := func(rng *rand.Rand, w int64) int64 {
		if sc.Warehouses == 1 {
			return w
		}
		for {
			o := 1 + rng.Int63n(sc.Warehouses)
			if o != w {
				return o
			}
		}
	}
	return workload.Mix{
		{Name: "NewOrder", Weight: 45, Build: func(rng *rand.Rand) *xct.Flow {
			w := wgen.Next(rng)
			d := 1 + rng.Int63n(sc.DistrictsPerW)
			c := 1 + rng.Int63n(sc.CustomersPerD)
			n := 5 + rng.Intn(11)
			items := make([]OrderItem, n)
			for i := range items {
				iid := 1 + rng.Int63n(sc.Items)
				if i == n-1 && rng.Float64() < invalid {
					iid = sc.Items + 1000 // unused item: 1% rollback
				}
				sw := w
				if rng.Float64() < 0.01 {
					sw = otherW(rng, w)
				}
				items[i] = OrderItem{IID: iid, SupplyW: sw, Qty: 1 + rng.Int63n(10)}
			}
			return db.NewOrderTxn(w, d, c, items)
		}},
		{Name: "Payment", Weight: 43, Build: func(rng *rand.Rand) *xct.Flow {
			w := wgen.Next(rng)
			d := 1 + rng.Int63n(sc.DistrictsPerW)
			cw, cd := w, d
			if rng.Float64() < remote {
				cw = otherW(rng, w)
				cd = 1 + rng.Int63n(sc.DistrictsPerW)
			}
			c := 1 + rng.Int63n(sc.CustomersPerD)
			return db.PaymentTxn(w, d, cw, cd, c, 1+rng.Int63n(5000))
		}},
		{Name: "OrderStatus", Weight: 4, Build: func(rng *rand.Rand) *xct.Flow {
			w := wgen.Next(rng)
			return db.OrderStatusTxn(w, 1+rng.Int63n(sc.DistrictsPerW), 1+rng.Int63n(sc.CustomersPerD))
		}},
		{Name: "Delivery", Weight: 4, Build: func(rng *rand.Rand) *xct.Flow {
			return db.DeliveryTxn(wgen.Next(rng), 1+rng.Int63n(10))
		}},
		{Name: "StockLevel", Weight: 4, Build: func(rng *rand.Rand) *xct.Flow {
			w := wgen.Next(rng)
			return db.StockLevelTxn(w, 1+rng.Int63n(sc.DistrictsPerW), 10+rng.Int63n(11))
		}},
	}
}
