package workload

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"dora/internal/xct"
)

func TestUniformDomain(t *testing.T) {
	g := Uniform{Lo: 10, Hi: 20}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		k := g.Next(rng)
		if k < 10 || k > 20 {
			t.Fatalf("key %d out of domain", k)
		}
	}
}

func TestZipfSkewAndDomain(t *testing.T) {
	g := NewZipf(1, 1000, 1.2)
	rng := rand.New(rand.NewSource(2))
	counts := map[int64]int{}
	for i := 0; i < 20000; i++ {
		k := g.Next(rng)
		if k < 1 || k > 1000 {
			t.Fatalf("key %d out of domain", k)
		}
		counts[k]++
	}
	// Skew: the most common key appears far above uniform expectation.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 200 { // uniform would be ~20
		t.Fatalf("zipf max count %d — not skewed", max)
	}
}

func TestHotspotMoves(t *testing.T) {
	g := NewHotspot(1, 1000, 1.0, 10) // all draws hot
	rng := rand.New(rand.NewSource(3))
	g.SetCenter(100)
	for i := 0; i < 100; i++ {
		k := g.Next(rng)
		if k < 90 || k > 110 {
			t.Fatalf("key %d outside hot window at 100", k)
		}
	}
	g.SetCenter(900)
	for i := 0; i < 100; i++ {
		k := g.Next(rng)
		if k < 890 || k > 910 {
			t.Fatalf("key %d outside hot window at 900", k)
		}
	}
	// Clamping at the edge.
	g.SetCenter(2)
	for i := 0; i < 100; i++ {
		if k := g.Next(rng); k < 1 || k > 1000 {
			t.Fatalf("key %d escaped domain", k)
		}
	}
}

func TestQuickHotspotInDomain(t *testing.T) {
	f := func(seed int64, center int64) bool {
		g := NewHotspot(1, 500, 0.7, 25)
		g.SetCenter(center % 600) // may be out of range: must clamp
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			k := g.Next(rng)
			if k < 1 || k > 500 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMixPickRespectsWeights(t *testing.T) {
	m := Mix{
		{Name: "a", Weight: 90},
		{Name: "b", Weight: 10},
	}
	rng := rand.New(rand.NewSource(4))
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[m.Pick(rng).Name]++
	}
	if counts["a"] < 8500 || counts["a"] > 9500 {
		t.Fatalf("weight-90 type picked %d/10000", counts["a"])
	}
}

// fakeEngine commits instantly, failing every k-th execution.
type fakeEngine struct {
	n     atomic.Int64
	every int64
}

func (f *fakeEngine) Name() string { return "fake" }
func (f *fakeEngine) Close() error { return nil }
func (f *fakeEngine) Exec(worker int, flow *xct.Flow) error {
	n := f.n.Add(1)
	if f.every > 0 && n%f.every == 0 {
		return errors.New("synthetic abort")
	}
	return nil
}

func TestDriverRunCountsAndTimeline(t *testing.T) {
	e := &fakeEngine{every: 10}
	mix := Mix{{Name: "noop", Weight: 1, Build: func(rng *rand.Rand) *xct.Flow {
		return xct.NewFlow("noop")
	}}}
	res := (&Driver{
		Engine: e, Mix: mix, Clients: 4,
		Duration: 150 * time.Millisecond, Seed: 9,
		SampleEvery: 25 * time.Millisecond,
	}).Run()
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if res.Retries == 0 {
		t.Fatal("synthetic aborts never retried")
	}
	if res.Aborted != 0 {
		t.Fatalf("aborted = %d (retries should have recovered)", res.Aborted)
	}
	if len(res.Timeline) < 3 {
		t.Fatalf("timeline samples = %d", len(res.Timeline))
	}
	if res.PerTxn["noop"] != res.Committed {
		t.Fatalf("per-txn accounting: %v vs %d", res.PerTxn, res.Committed)
	}
	if res.Throughput <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestDriverThinkTimeLimitsRate(t *testing.T) {
	e := &fakeEngine{}
	mix := Mix{{Name: "noop", Weight: 1, Build: func(rng *rand.Rand) *xct.Flow {
		return xct.NewFlow("noop")
	}}}
	res := (&Driver{
		Engine: e, Mix: mix, Clients: 2,
		Duration: 200 * time.Millisecond, ThinkTime: 50 * time.Millisecond, Seed: 9,
	}).Run()
	// 2 clients, 50ms think time, 200ms -> at most ~12 transactions.
	if res.Committed > 20 {
		t.Fatalf("think time ignored: %d committed", res.Committed)
	}
}

// slowAsyncEngine completes every transaction after a fixed service
// delay on a background goroutine (an engine with bounded capacity).
type slowAsyncEngine struct {
	delay    time.Duration
	inflight atomic.Int64
	maxSeen  atomic.Int64
}

func (e *slowAsyncEngine) ExecAsync(_ int, _ *xct.Flow, done func(error)) {
	n := e.inflight.Add(1)
	for {
		m := e.maxSeen.Load()
		if n <= m || e.maxSeen.CompareAndSwap(m, n) {
			break
		}
	}
	go func() {
		time.Sleep(e.delay)
		e.inflight.Add(-1)
		done(nil)
	}()
}

func openLoopMix() Mix {
	return Mix{{Name: "noop", Weight: 1, Build: func(*rand.Rand) *xct.Flow {
		return xct.NewFlow("noop")
	}}}
}

// TestOpenLoopAccounting: arrivals partition exactly into dropped +
// completed, and overload against a tiny in-flight cap produces drops.
func TestOpenLoopAccounting(t *testing.T) {
	eng := &slowAsyncEngine{delay: 5 * time.Millisecond}
	d := OpenLoop{
		Engine: eng, Mix: openLoopMix(),
		Rate: 5000, MaxInFlight: 4, Duration: 150 * time.Millisecond, Seed: 3,
	}
	res := d.Run()
	if res.Offered == 0 {
		t.Fatal("no arrivals offered")
	}
	if got := res.Dropped + res.Committed + res.Aborted; got != res.Offered {
		t.Fatalf("accounting: dropped(%d)+committed(%d)+aborted(%d) = %d, offered %d",
			res.Dropped, res.Committed, res.Aborted, got, res.Offered)
	}
	// 5000/s offered against a capacity of 4/5ms = 800/s: most arrivals
	// must be dropped at the cap.
	if res.Dropped == 0 {
		t.Fatal("overload produced no drops")
	}
	if res.Committed == 0 {
		t.Fatal("no transactions completed")
	}
	if eng.maxSeen.Load() > 4 {
		t.Fatalf("in-flight cap violated: %d > 4", eng.maxSeen.Load())
	}
	if res.P99US == 0 {
		t.Fatal("latency accounting missing")
	}
}

// TestOpenLoopUnderload: at an offered rate far below capacity nothing
// is dropped and throughput tracks the arrival rate.
func TestOpenLoopUnderload(t *testing.T) {
	eng := &slowAsyncEngine{delay: time.Millisecond}
	d := OpenLoop{
		Engine: eng, Mix: openLoopMix(),
		Rate: 200, MaxInFlight: 64, Duration: 150 * time.Millisecond, Seed: 4,
	}
	res := d.Run()
	if res.Dropped != 0 {
		t.Fatalf("underload dropped %d arrivals", res.Dropped)
	}
	if res.Committed != res.Offered {
		t.Fatalf("committed %d of %d offered", res.Committed, res.Offered)
	}
}
