package tpcb

import (
	"testing"
	"time"

	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/engine/conventional"
	"dora/internal/sm"
	"dora/internal/workload"
)

func loadDB(t *testing.T) *DB {
	t.Helper()
	s, err := sm.Open(sm.Options{Frames: 2048})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Load(s, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLoadCounts(t *testing.T) {
	db := loadDB(t)
	if got := db.Branch.Primary.Tree.Len(); got != 4 {
		t.Fatalf("branches = %d", got)
	}
	if got := db.Teller.Primary.Tree.Len(); got != 4*TellersPerBranch {
		t.Fatalf("tellers = %d", got)
	}
	if got := db.Account.Primary.Tree.Len(); got != 400 {
		t.Fatalf("accounts = %d", got)
	}
}

func TestAccountUpdateBothEngines(t *testing.T) {
	for _, mk := range []func(db *DB) engine.Engine{
		func(db *DB) engine.Engine { return conventional.New(db.SM) },
		func(db *DB) engine.Engine {
			return dora.New(db.SM, dora.Config{PartitionsPerTable: 2, Domains: db.Domains()})
		},
	} {
		db := loadDB(t)
		e := mk(db)
		if err := e.Exec(0, db.AccountUpdate(2, 3, 7, 500, 1)); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		ses := db.SM.Session(0)
		brec, _ := ses.Read(db.SM.Begin(), db.Branch, 2)
		if brec[1].Int != 500 {
			t.Fatalf("%s branch balance = %d", e.Name(), brec[1].Int)
		}
		arec, _ := ses.Read(db.SM.Begin(), db.Account, db.AKey(2, 7))
		if arec[2].Int != 500 {
			t.Fatalf("%s account balance = %d", e.Name(), arec[2].Int)
		}
		if db.History.Primary.Tree.Len() != 1 {
			t.Fatalf("%s history rows = %d", e.Name(), db.History.Primary.Tree.Len())
		}
		_ = e.Close()
	}
}

func TestBranchBalanceInvariant(t *testing.T) {
	// Branch balance must equal the sum of its tellers' balances and the
	// sum of history deltas for that branch (TPC-B consistency rule).
	db := loadDB(t)
	e := dora.New(db.SM, dora.Config{PartitionsPerTable: 2, Domains: db.Domains()})
	defer e.Close()
	res := (&workload.Driver{
		Engine: e, Mix: db.NewMix(nil), Clients: 8,
		Duration: 300 * time.Millisecond, Seed: 5,
	}).Run()
	if res.Committed < 50 {
		t.Fatalf("committed = %d", res.Committed)
	}
	ses := db.SM.Session(0)
	for b := int64(1); b <= db.Branches; b++ {
		brec, err := ses.Read(db.SM.Begin(), db.Branch, b)
		if err != nil {
			t.Fatal(err)
		}
		var tellers int64
		for tt := int64(1); tt <= TellersPerBranch; tt++ {
			trec, err := ses.Read(db.SM.Begin(), db.Teller, db.TKey(b, tt))
			if err != nil {
				t.Fatal(err)
			}
			tellers += trec[2].Int
		}
		if brec[1].Int != tellers {
			t.Fatalf("branch %d balance %d != teller sum %d", b, brec[1].Int, tellers)
		}
	}
}
