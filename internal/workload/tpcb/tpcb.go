// Package tpcb implements the TPC-B benchmark (the companion DORA paper's
// third workload): branches, tellers, accounts and a history table, with
// the single account-update transaction. Its interest here is the branch
// row hotspot: every transaction updates one of few branch rows, which
// stresses both the centralized lock manager (conventional) and a single
// partition queue (DORA).
package tpcb

import (
	"math/rand"

	"dora/internal/catalog"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/workload"
	"dora/internal/xct"
)

// Per spec ratios (scaled down by default).
const (
	// TellersPerBranch is the spec ratio.
	TellersPerBranch = 10
)

// DB holds the loaded TPC-B tables.
type DB struct {
	SM       *sm.SM
	Branches int64
	// AccountsPerBranch is configurable (spec: 100000).
	AccountsPerBranch int64

	Branch  *catalog.Table
	Teller  *catalog.Table
	Account *catalog.Table
	History *catalog.Table

	hseq int64
}

// TKey packs a teller key; AKey an account key.
func (db *DB) TKey(b, t int64) int64 { return b*TellersPerBranch + t }

// AKey packs an account key.
func (db *DB) AKey(b, a int64) int64 { return b*db.AccountsPerBranch + a }

// Domains returns DORA routing domains.
func (db *DB) Domains() map[string][2]int64 {
	return map[string][2]int64{
		"branch":       {1, db.Branches},
		"teller":       {1, db.Branches},
		"account":      {1, db.Branches},
		"history_tpcb": {1, db.Branches},
	}
}

// Load creates and fills the schema with b branches.
func Load(s *sm.SM, branches, accountsPerBranch int64) (*DB, error) {
	db := &DB{SM: s, Branches: branches, AccountsPerBranch: accountsPerBranch}
	intf := func(names ...string) []catalog.Field {
		out := make([]catalog.Field, len(names))
		for i, n := range names {
			out[i] = catalog.Field{Name: n, Type: tuple.TInt}
		}
		return out
	}
	var err error
	db.Branch, err = s.CreateTable(sm.TableSpec{
		Name: "branch", Fields: intf("b_id", "balance"),
		KeyFields: []string{"b_id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
	})
	if err != nil {
		return nil, err
	}
	db.Teller, err = s.CreateTable(sm.TableSpec{
		Name: "teller", Fields: intf("b_id", "t_id", "balance"),
		KeyFields: []string{"b_id", "t_id"},
		Key:       func(r tuple.Record) int64 { return db.TKey(r[0].Int, r[1].Int) },
		RouteRange: func(lo, hi int64) (int64, int64) {
			return db.TKey(lo, 1), db.TKey(hi, TellersPerBranch)
		},
	})
	if err != nil {
		return nil, err
	}
	db.Account, err = s.CreateTable(sm.TableSpec{
		Name: "account", Fields: intf("b_id", "a_id", "balance"),
		KeyFields: []string{"b_id", "a_id"},
		Key:       func(r tuple.Record) int64 { return db.AKey(r[0].Int, r[1].Int) },
		RouteRange: func(lo, hi int64) (int64, int64) {
			return db.AKey(lo, 1), db.AKey(hi, db.AccountsPerBranch)
		},
	})
	if err != nil {
		return nil, err
	}
	db.History, err = s.CreateTable(sm.TableSpec{
		Name: "history_tpcb", Fields: intf("b_id", "h_seq", "t_id", "a_id", "delta"),
		KeyFields: []string{"b_id", "h_seq"},
		Key:       func(r tuple.Record) int64 { return r[0].Int<<40 | r[1].Int },
		RouteRange: func(lo, hi int64) (int64, int64) {
			return lo << 40, (hi+1)<<40 - 1
		},
	})
	if err != nil {
		return nil, err
	}

	ses := s.Session(0)
	txn := s.Begin()
	count := 0
	ins := func(t *catalog.Table, vals ...int64) error {
		rec := make(tuple.Record, len(vals))
		for i, v := range vals {
			rec[i] = tuple.I(v)
		}
		if err := ses.Insert(txn, t, rec); err != nil {
			return err
		}
		count++
		if count%2000 == 0 {
			if err := s.Commit(txn); err != nil {
				return err
			}
			txn = s.Begin()
		}
		return nil
	}
	for b := int64(1); b <= branches; b++ {
		if err := ins(db.Branch, b, 0); err != nil {
			return nil, err
		}
		for t := int64(1); t <= TellersPerBranch; t++ {
			if err := ins(db.Teller, b, t, 0); err != nil {
				return nil, err
			}
		}
		for a := int64(1); a <= accountsPerBranch; a++ {
			if err := ins(db.Account, b, a, 0); err != nil {
				return nil, err
			}
		}
	}
	if err := s.Commit(txn); err != nil {
		return nil, err
	}
	return db, nil
}

// AccountUpdate builds the TPC-B transaction: update account, teller and
// branch balances by delta (three parallel single-site writes), then
// insert the history row.
func (db *DB) AccountUpdate(b, t, a, delta, hseq int64) *xct.Flow {
	return xct.NewFlow("AccountUpdate").
		AddPhase(
			&xct.Action{
				Table: "account", KeyField: "b_id", Key: b, Mode: xct.Write, Label: "upd-acct",
				Run: func(env *xct.Env) error {
					return env.Ses.Mutate(env.Txn, db.Account, db.AKey(b, a), func(r tuple.Record) tuple.Record {
						r[2] = tuple.I(r[2].Int + delta)
						return r
					})
				},
			},
			&xct.Action{
				Table: "teller", KeyField: "b_id", Key: b, Mode: xct.Write, Label: "upd-teller",
				Run: func(env *xct.Env) error {
					return env.Ses.Mutate(env.Txn, db.Teller, db.TKey(b, t), func(r tuple.Record) tuple.Record {
						r[2] = tuple.I(r[2].Int + delta)
						return r
					})
				},
			},
			&xct.Action{
				Table: "branch", KeyField: "b_id", Key: b, Mode: xct.Write, Label: "upd-branch",
				Run: func(env *xct.Env) error {
					return env.Ses.Mutate(env.Txn, db.Branch, b, func(r tuple.Record) tuple.Record {
						r[1] = tuple.I(r[1].Int + delta)
						return r
					})
				},
			},
		).
		AddPhase(&xct.Action{
			Table: "history_tpcb", KeyField: "b_id", Key: b, Mode: xct.Write, Label: "ins-h",
			Run: func(env *xct.Env) error {
				return env.Ses.Insert(env.Txn, db.History, tuple.Record{
					tuple.I(b), tuple.I(hseq), tuple.I(t), tuple.I(a), tuple.I(delta),
				})
			},
		})
}

// NewMix returns the single-transaction TPC-B mix. The history sequence
// is drawn from the client rng (collision-free per client via stride).
func (db *DB) NewMix(bgen workload.KeyGen) workload.Mix {
	if bgen == nil {
		bgen = workload.Uniform{Lo: 1, Hi: db.Branches}
	}
	return workload.Mix{
		{Name: "AccountUpdate", Weight: 100, Build: func(rng *rand.Rand) *xct.Flow {
			b := bgen.Next(rng)
			t := 1 + rng.Int63n(TellersPerBranch)
			a := 1 + rng.Int63n(db.AccountsPerBranch)
			hseq := rng.Int63n(1 << 39) // sparse: collisions abort & retry
			return db.AccountUpdate(b, t, a, rng.Int63n(2000)-1000, hseq)
		}},
	}
}
