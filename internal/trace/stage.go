package trace

// Stage identifies one segment of a transaction's end-to-end path. The
// txn-scoped stages (admission through ack-wait) are recorded against a
// sampled transaction's TxnTrace; the engine-scoped stages (log reserve /
// fill, ship hops, replica delivery/apply) are recorded by subsystems that
// don't know which transaction they serve, sampled independently at the
// same rate via Tracer.SampleHop.
type Stage uint8

const (
	// StageAdmission is ExecAsync's wait on the engine's execution gate
	// (drain/quiesce interlock) before the flow is dispatched.
	StageAdmission Stage = iota
	// StageQueueWait is the time an action message sat in its partition
	// inbox (plus local-lock wait) before its body ran.
	StageQueueWait
	// StageExec is action-body execution on the owning worker (for a
	// suspending action, the portion before the first suspend).
	StageExec
	// StageSuspend is a suspended action's wall time from Suspend to
	// resume: the full foreign round trip as the transaction sees it.
	StageSuspend
	// StageShip is a contMsg's flight time from enqueue to the foreign
	// worker picking it up (one outbound hop).
	StageShip
	// StageKont is a kontMsg's flight time back to the home worker.
	StageKont
	// StageCommitQueue is the wait in the engine's commit queue between
	// the last action reporting and a committer picking the flow up.
	StageCommitQueue
	// StageLogAppend is sm.CommitAsync's synchronous log append of the
	// commit record (reserve + fill, from the transaction's view).
	StageLogAppend
	// StageLogReserve is the clog consolidation-array reserve: from
	// Append entry to the group's base LSN being assigned.
	StageLogReserve
	// StageLogFill is the clog buffer copy: EncodeInto + finishCopy.
	StageLogFill
	// StageFlushWait is from ForceAsync to the flush daemon hardening
	// the commit LSN (group flush wait).
	StageFlushWait
	// StageLockRelease is the ELR broadcast releasing the transaction's
	// local locks after the commit record is in the log buffer.
	StageLockRelease
	// StageAckWait is the commit-gate wait (semi-sync K-replica ack).
	StageAckWait
	// StageReplDeliver is a replica hardening one delivered extent into
	// its own log.
	StageReplDeliver
	// StageReplApply is a replica redo-applying one delivered extent
	// (including the pool sync barrier).
	StageReplApply

	stageCount
)

var stageNames = [stageCount]string{
	StageAdmission:   "admission",
	StageQueueWait:   "queue_wait",
	StageExec:        "exec",
	StageSuspend:     "suspend",
	StageShip:        "ship",
	StageKont:        "kont",
	StageCommitQueue: "commit_queue",
	StageLogAppend:   "log_append",
	StageLogReserve:  "log_reserve",
	StageLogFill:     "log_fill",
	StageFlushWait:   "flush_wait",
	StageLockRelease: "lock_release",
	StageAckWait:     "ack_wait",
	StageReplDeliver: "repl_deliver",
	StageReplApply:   "repl_apply",
}

// String returns the stage's snake_case name (stable; used as the metric
// label in the monitor snapshot and the Prometheus exposition).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}
