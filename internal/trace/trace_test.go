package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"dora/internal/metrics"
)

type metricsHistogram = metrics.Histogram

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.SampleHop() || tr.Begin(1) != nil || tr.Snapshot() != nil {
		t.Fatal("nil tracer should be inert")
	}
	tr.RecordSpan(StageExec, 0, time.Millisecond)
	tr.Reset()
	tr.Close()
	var tt *TxnTrace
	tt.Span(StageExec, 0, time.Now(), time.Millisecond)
	tt.SetStart(time.Now())
	tt.Finish(nil) // must not panic
}

func TestSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	defer tr.Close()
	var sampled int
	for i := 0; i < 64; i++ {
		if tt := tr.Begin(uint64(i)); tt != nil {
			sampled++
			tt.Finish(nil)
		}
	}
	if sampled != 16 {
		t.Fatalf("sampled %d of 64 at 1/4", sampled)
	}
}

func TestSpanAggregation(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	defer tr.Close()
	start := time.Now().Add(-10 * time.Millisecond)
	tt := tr.Begin(7)
	if tt == nil {
		t.Fatal("1/1 sampling returned nil")
	}
	tt.SetStart(start)
	tt.Span(StageQueueWait, 0, start, 2*time.Millisecond)
	tt.Span(StageExec, 0, start.Add(2*time.Millisecond), 6*time.Millisecond)
	tt.Finish(nil)
	tr.RecordSpan(StageLogReserve, 1, 500*time.Microsecond)

	s := tr.Snapshot()
	if s.Sampled != 1 || s.Dropped != 0 {
		t.Fatalf("accounting = %+v", s)
	}
	byName := map[string]StageView{}
	for _, v := range s.Stages {
		byName[v.Stage] = v
	}
	if byName["queue_wait"].Count != 1 || byName["exec"].Count != 1 || byName["log_reserve"].Count != 1 {
		t.Fatalf("stage counts = %+v", byName)
	}
	if m := byName["exec"].MeanUS; m < 5000 || m > 7000 {
		t.Fatalf("exec mean = %f", m)
	}
	// 8ms of spans over a ~10ms transaction: coverage near 80%.
	if s.CoveragePct < 60 || s.CoveragePct > 100 {
		t.Fatalf("coverage = %f", s.CoveragePct)
	}
	if s.TotalP50US < 8000 {
		t.Fatalf("total p50 = %d", s.TotalP50US)
	}
}

func TestUnionOverlap(t *testing.T) {
	start := time.Now()
	spans := []ownSpan{
		{stage: StageExec, start: start, dur: 4 * time.Millisecond},
		{stage: StageExec, start: start.Add(2 * time.Millisecond), dur: 4 * time.Millisecond},
		{stage: StageSuspend, start: start.Add(20 * time.Millisecond), dur: 100 * time.Millisecond}, // clipped
	}
	got := unionNS(spans, start, 10*time.Millisecond)
	if want := int64(6 * time.Millisecond); got != want {
		t.Fatalf("union = %d, want %d", got, want)
	}
}

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{SampleEvery: 1, SlowThreshold: time.Microsecond, SlowWriter: &buf})
	defer tr.Close()
	tt := tr.Begin(42)
	tt.SetStart(time.Now().Add(-5 * time.Millisecond))
	tt.Span(StageExec, 3, time.Now().Add(-4*time.Millisecond), 3*time.Millisecond)
	tt.Finish(nil)
	line := strings.TrimSpace(buf.String())
	var got slowLine
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("slow line %q: %v", line, err)
	}
	if got.Txn != 42 || got.TotalUS < 4000 || len(got.Spans) != 1 || got.Spans[0].Stage != "exec" {
		t.Fatalf("slow line = %+v", got)
	}
	if s := tr.Snapshot(); s.Slow != 1 {
		t.Fatalf("slow count = %d", s.Slow)
	}
}

func TestRingFullDrops(t *testing.T) {
	r := newRing(2) // 4 slots
	for i := 0; i < 4; i++ {
		if !r.push(spanRec{txnID: uint64(i)}) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.push(spanRec{}) {
		t.Fatal("push succeeded on full ring")
	}
	var rec spanRec
	for i := 0; i < 4; i++ {
		if !r.pop(&rec) || rec.txnID != uint64(i) {
			t.Fatalf("pop %d = %+v", i, rec)
		}
	}
	if r.pop(&rec) {
		t.Fatal("pop succeeded on empty ring")
	}
	// Slots recycle.
	if !r.push(spanRec{txnID: 99}) || !r.pop(&rec) || rec.txnID != 99 {
		t.Fatal("ring does not recycle")
	}
}

// TestRingStorm races many concurrent span writers against the
// aggregator (run under -race in CI). Every record must be either
// aggregated or counted as dropped — none lost, none torn.
func TestRingStorm(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingBits: 8, Shards: 4, DrainEvery: time.Millisecond})
	const writers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.RecordSpan(Stage(i%int(stageCount)), w, time.Duration(i)*time.Microsecond)
				if i%64 == 0 {
					tt := tr.Begin(uint64(w*per + i))
					tt.Span(StageExec, w, time.Now(), time.Microsecond)
					tt.Finish(nil)
				}
			}
		}(w)
	}
	// Snapshot concurrently with the storm: forces drains that race the
	// producers.
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()
	tr.Close()

	s := tr.Snapshot()
	var agg int64
	tr.ForEachStage(func(_ string, h *metricsHistogram) { agg += h.Count() })
	// Each Begin produces 1 exec span + 1 total record; any of the
	// records (including totals) may be dropped when rings fill.
	want := int64(writers*per) + 2*s.Sampled
	if agg+s.Dropped != want {
		t.Fatalf("aggregated %d + dropped %d != produced %d", agg, s.Dropped, want)
	}
}
