package trace

import "sync/atomic"

// spanRec is the fixed-size record workers push into the rings. startNS is
// nanoseconds since the tracer epoch (not wall time) so records stay
// comparable across workers.
type spanRec struct {
	txnID   uint64
	startNS int64
	durNS   int64
	stage   Stage
	worker  int32
}

type pad struct{ _ [64]byte } //nolint:unused // padding only

// ring is a bounded multi-producer single-consumer span queue (the
// classic sequence-number bounded queue). Producers claim a slot by
// CASing head only when the slot's sequence says it is free, write the
// record, then publish by storing seq = pos+1; the consumer reads when
// seq == pos+1 and recycles the slot with seq = pos+capacity. A full ring
// drops the record (counted by the tracer) instead of blocking or lapping
// — a lapping writer could hand the consumer a torn record, a dropped
// span only costs a sample.
type ring struct {
	mask  uint64
	slots []ringSlot
	_     pad
	head  atomic.Uint64 // next producer position
	_     pad
	tail  atomic.Uint64 // next consumer position (single consumer)
	_     pad
}

type ringSlot struct {
	seq atomic.Uint64
	rec spanRec
}

// newRing returns a ring with 2^bits slots.
func newRing(bits int) *ring {
	n := 1 << bits
	r := &ring{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues rec; it returns false (record dropped) when the ring is
// full. Safe for concurrent producers.
func (r *ring) push(rec spanRec) bool {
	for {
		pos := r.head.Load()
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			if r.head.CompareAndSwap(pos, pos+1) {
				slot.rec = rec
				slot.seq.Store(pos + 1)
				return true
			}
		case diff < 0:
			return false // consumer hasn't freed this slot: full
		}
		// diff > 0: another producer claimed pos; reload head and retry.
	}
}

// pop dequeues into out, returning false when the ring is empty. Only one
// goroutine may pop at a time (the tracer serializes drains).
func (r *ring) pop(out *spanRec) bool {
	pos := r.tail.Load()
	slot := &r.slots[pos&r.mask]
	if int64(slot.seq.Load())-int64(pos+1) < 0 {
		return false // producer hasn't published this slot yet
	}
	*out = slot.rec
	slot.seq.Store(pos + r.mask + 1)
	r.tail.Store(pos + 1)
	return true
}
