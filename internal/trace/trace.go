// Package trace is the end-to-end transaction tracer: an always-on,
// sampled span recorder that follows one transaction from admission
// through partition-inbox queue wait, action execution, cross-partition
// ship hops, and the commit pipeline (log append, group-flush wait, ELR
// lock release, semi-sync ack wait) — and, on replicas, delivery and
// redo-apply lag. One in SampleEvery transactions is traced; spans land
// in bounded lock-free ring buffers (no shared mutex on the hot path) and
// a background aggregator folds them into per-stage metrics.Histograms.
// Traces whose end-to-end time exceeds SlowThreshold are additionally
// emitted as JSON span trees on SlowWriter. Snapshot exports the
// aggregate as a StageLatency view for the monitor, doramon, and the
// Prometheus endpoint.
package trace

import (
	"encoding/json"
	"io"
	"math/rand/v2"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dora/internal/metrics"
)

// stageTotal is the in-ring marker for a whole-transaction record.
const stageTotal = stageCount

// Config tunes a Tracer. The zero value gives 1/64 sampling, 4096-slot
// rings, one ring per logical CPU-ish shard, no slow log.
type Config struct {
	// SampleEvery traces 1 in N transactions (default 64; 1 traces all).
	SampleEvery int
	// RingBits is log2 of each ring's slot count (default 12).
	RingBits int
	// Shards is the ring count; workers hash into them (default 8).
	Shards int
	// SlowThreshold, when > 0, emits a JSON span tree for any traced
	// transaction whose end-to-end time meets or exceeds it.
	SlowThreshold time.Duration
	// SlowWriter receives slow-transaction JSON lines (default stderr).
	SlowWriter io.Writer
	// DrainEvery is the aggregator's drain period (default 10ms).
	DrainEvery time.Duration
}

// Tracer samples transactions and aggregates their spans. All methods are
// safe on a nil *Tracer (they no-op), so call sites need no guards.
type Tracer struct {
	cfg   Config
	epoch time.Time
	rings []*ring

	seq     atomic.Uint64 // admission counter for deterministic 1/N
	sampled atomic.Int64
	dropped atomic.Int64
	slow    atomic.Int64

	coveredNS atomic.Int64 // union of span intervals, summed over traces
	totalNS   atomic.Int64 // end-to-end time, summed over traces

	drainMu sync.Mutex // serializes ring consumption
	stages  [stageCount]metrics.Histogram
	total   metrics.Histogram

	slowMu sync.Mutex // serializes slow-log writes

	stop chan struct{}
	done chan struct{}
}

// New starts a tracer (including its aggregator goroutine). Close it when
// done. New(Config{}) gives the defaults; a nil *Tracer disables tracing
// with zero overhead beyond a nil check.
func New(cfg Config) *Tracer {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 64
	}
	if cfg.RingBits <= 0 {
		cfg.RingBits = 12
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.SlowWriter == nil {
		cfg.SlowWriter = os.Stderr
	}
	if cfg.DrainEvery <= 0 {
		cfg.DrainEvery = 10 * time.Millisecond
	}
	t := &Tracer{
		cfg:   cfg,
		epoch: time.Now(),
		rings: make([]*ring, cfg.Shards),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for i := range t.rings {
		t.rings[i] = newRing(cfg.RingBits)
	}
	go t.aggregate()
	return t
}

// Close stops the aggregator after a final drain.
func (t *Tracer) Close() {
	if t == nil {
		return
	}
	close(t.stop)
	<-t.done
}

// Enabled reports whether the tracer is live.
func (t *Tracer) Enabled() bool { return t != nil }

// Begin starts a trace for txnID if it falls in the sample; it returns
// nil (which every TxnTrace method tolerates) otherwise.
func (t *Tracer) Begin(txnID uint64) *TxnTrace {
	if t == nil {
		return nil
	}
	if t.seq.Add(1)%uint64(t.cfg.SampleEvery) != 0 {
		return nil
	}
	t.sampled.Add(1)
	return &TxnTrace{tr: t, txnID: txnID, start: time.Now()}
}

// SampleHop makes an independent 1/SampleEvery decision for subsystems
// that see work items, not transactions (clog groups, ship hops, replica
// extents). Cheap: one per-P random draw, no shared state.
func (t *Tracer) SampleHop() bool {
	if t == nil {
		return false
	}
	return rand.Uint64N(uint64(t.cfg.SampleEvery)) == 0
}

// RecordSpan records one engine-scoped span ending now.
func (t *Tracer) RecordSpan(stage Stage, worker int, d time.Duration) {
	if t == nil {
		return
	}
	t.pushRec(spanRec{
		startNS: time.Since(t.epoch).Nanoseconds() - d.Nanoseconds(),
		durNS:   d.Nanoseconds(),
		stage:   stage,
		worker:  int32(worker),
	})
}

func (t *Tracer) pushRec(rec spanRec) {
	var shard int
	if rec.worker >= 0 {
		shard = int(rec.worker) % len(t.rings)
	} else {
		shard = int(rand.Uint32()) % len(t.rings)
	}
	if !t.rings[shard].push(rec) {
		t.dropped.Add(1)
	}
}

// aggregate is the drain loop: it folds ring records into the per-stage
// histograms every DrainEvery until Close.
func (t *Tracer) aggregate() {
	defer close(t.done)
	tick := time.NewTicker(t.cfg.DrainEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			t.drain()
		case <-t.stop:
			t.drain()
			return
		}
	}
}

// drain consumes every ring into the histograms. Serialized by drainMu so
// the ticker loop and Snapshot-forced drains never race the single-
// consumer rings.
func (t *Tracer) drain() {
	t.drainMu.Lock()
	defer t.drainMu.Unlock()
	var rec spanRec
	for _, r := range t.rings {
		for r.pop(&rec) {
			d := time.Duration(rec.durNS)
			if rec.stage == stageTotal {
				t.total.Observe(d)
			} else if int(rec.stage) < len(t.stages) {
				t.stages[rec.stage].Observe(d)
			}
		}
	}
}

// Reset drains pending records and clears every aggregate (histograms,
// counters, coverage). Used between experiment rows.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.drain()
	t.drainMu.Lock()
	for i := range t.stages {
		t.stages[i].Reset()
	}
	t.total.Reset()
	t.drainMu.Unlock()
	t.sampled.Store(0)
	t.dropped.Store(0)
	t.slow.Store(0)
	t.coveredNS.Store(0)
	t.totalNS.Store(0)
}

// ForEachStage calls fn for every stage histogram with at least one
// observation, plus the end-to-end histogram under the name "total".
// Pending ring records are drained first.
func (t *Tracer) ForEachStage(fn func(name string, h *metrics.Histogram)) {
	if t == nil {
		return
	}
	t.drain()
	for i := range t.stages {
		if t.stages[i].Count() > 0 {
			fn(Stage(i).String(), &t.stages[i])
		}
	}
	if t.total.Count() > 0 {
		fn("total", &t.total)
	}
}

// StageView is one stage's aggregate in a StageLatency snapshot.
type StageView struct {
	Stage  string  `json:"stage"`
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  int64   `json:"p50_us"`
	P95US  int64   `json:"p95_us"`
	P99US  int64   `json:"p99_us"`
	MaxUS  int64   `json:"max_us"`
}

// StageLatency is the tracer's aggregate view: per-stage latency
// distributions plus trace accounting. CoveragePct is how much of the
// traced transactions' end-to-end time the recorded spans explain
// (interval union, so overlapping parallel actions don't double-count).
type StageLatency struct {
	Sampled     int64       `json:"sampled"`
	Dropped     int64       `json:"dropped"`
	Slow        int64       `json:"slow"`
	CoveragePct float64     `json:"coverage_pct"`
	TotalP50US  int64       `json:"total_p50_us"`
	TotalP99US  int64       `json:"total_p99_us"`
	Stages      []StageView `json:"stages"`
}

// Snapshot drains pending records and returns the aggregate view, or nil
// on a nil tracer.
func (t *Tracer) Snapshot() *StageLatency {
	if t == nil {
		return nil
	}
	t.drain()
	s := &StageLatency{
		Sampled:    t.sampled.Load(),
		Dropped:    t.dropped.Load(),
		Slow:       t.slow.Load(),
		TotalP50US: t.total.Quantile(0.5),
		TotalP99US: t.total.Quantile(0.99),
	}
	if tot := t.totalNS.Load(); tot > 0 {
		s.CoveragePct = 100 * float64(t.coveredNS.Load()) / float64(tot)
	}
	for i := range t.stages {
		h := &t.stages[i]
		n := h.Count()
		if n == 0 {
			continue
		}
		s.Stages = append(s.Stages, StageView{
			Stage:  Stage(i).String(),
			Count:  n,
			MeanUS: h.MeanMicros(),
			P50US:  h.Quantile(0.5),
			P95US:  h.Quantile(0.95),
			P99US:  h.Quantile(0.99),
			MaxUS:  h.MaxMicros(),
		})
	}
	return s
}

// StageMeanMicros returns the mean of one stage's histogram (0 if empty
// or nil), after draining. Convenience for experiment code.
func (t *Tracer) StageMeanMicros(s Stage) float64 {
	if t == nil {
		return 0
	}
	t.drain()
	return t.stages[s].MeanMicros()
}

// TxnTrace collects one sampled transaction's spans. Methods are safe on
// nil receivers, so untraced transactions cost a single nil check. Span
// may be called from any worker touched by the transaction; the small
// mutex only ever sees contention when two partitions finish the same
// sampled transaction's actions simultaneously.
type TxnTrace struct {
	tr    *Tracer
	txnID uint64
	start time.Time

	mu    sync.Mutex
	spans []ownSpan
}

type ownSpan struct {
	stage  Stage
	worker int32
	start  time.Time
	dur    time.Duration
}

// Span records one stage interval.
func (tt *TxnTrace) Span(stage Stage, worker int, start time.Time, d time.Duration) {
	if tt == nil {
		return
	}
	tt.mu.Lock()
	tt.spans = append(tt.spans, ownSpan{stage: stage, worker: int32(worker), start: start, dur: d})
	tt.mu.Unlock()
}

// SetStart rewinds the trace's epoch (admission wait starts before Begin
// can run, because the transaction ID doesn't exist yet).
func (tt *TxnTrace) SetStart(t0 time.Time) {
	if tt == nil {
		return
	}
	tt.start = t0
}

// Finish ends the trace: it computes the end-to-end time and the span
// union coverage, pushes every span plus the total into the rings, and
// emits the slow-transaction JSON line when past the threshold.
func (tt *TxnTrace) Finish(err error) {
	if tt == nil {
		return
	}
	total := time.Since(tt.start)
	tr := tt.tr
	tt.mu.Lock()
	spans := tt.spans
	tt.spans = nil
	tt.mu.Unlock()

	for _, s := range spans {
		tr.pushRec(spanRec{
			txnID:   tt.txnID,
			startNS: s.start.Sub(tr.epoch).Nanoseconds(),
			durNS:   s.dur.Nanoseconds(),
			stage:   s.stage,
			worker:  s.worker,
		})
	}
	tr.pushRec(spanRec{
		txnID:   tt.txnID,
		startNS: tt.start.Sub(tr.epoch).Nanoseconds(),
		durNS:   total.Nanoseconds(),
		stage:   stageTotal,
		worker:  -1,
	})
	tr.coveredNS.Add(unionNS(spans, tt.start, total))
	tr.totalNS.Add(total.Nanoseconds())

	if tr.cfg.SlowThreshold > 0 && total >= tr.cfg.SlowThreshold {
		tr.slow.Add(1)
		tr.emitSlow(tt, spans, total, err)
	}
}

// unionNS returns the length of the union of the span intervals clipped
// to [start, start+total] — overlapping parallel actions count once.
func unionNS(spans []ownSpan, start time.Time, total time.Duration) int64 {
	if len(spans) == 0 {
		return 0
	}
	type iv struct{ a, b int64 }
	ivs := make([]iv, 0, len(spans))
	hi := total.Nanoseconds()
	for _, s := range spans {
		a := s.start.Sub(start).Nanoseconds()
		b := a + s.dur.Nanoseconds()
		if a < 0 {
			a = 0
		}
		if b > hi {
			b = hi
		}
		if b > a {
			ivs = append(ivs, iv{a, b})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
	var sum, end int64
	for _, v := range ivs {
		if v.a > end {
			sum += v.b - v.a
			end = v.b
		} else if v.b > end {
			sum += v.b - end
			end = v.b
		}
	}
	return sum
}

// slowSpan is one span in the slow-transaction JSON line.
type slowSpan struct {
	Stage   string `json:"stage"`
	Worker  int32  `json:"worker"`
	StartUS int64  `json:"start_us"` // offset from the transaction's start
	DurUS   int64  `json:"dur_us"`
}

// slowLine is the slow-transaction log format: one JSON object per line.
type slowLine struct {
	Txn     uint64     `json:"txn"`
	TotalUS int64      `json:"total_us"`
	Err     string     `json:"err,omitempty"`
	Spans   []slowSpan `json:"spans"`
}

func (tr *Tracer) emitSlow(tt *TxnTrace, spans []ownSpan, total time.Duration, err error) {
	line := slowLine{Txn: tt.txnID, TotalUS: total.Microseconds()}
	if err != nil {
		line.Err = err.Error()
	}
	for _, s := range spans {
		line.Spans = append(line.Spans, slowSpan{
			Stage:   s.stage.String(),
			Worker:  s.worker,
			StartUS: s.start.Sub(tt.start).Microseconds(),
			DurUS:   s.dur.Microseconds(),
		})
	}
	sort.Slice(line.Spans, func(i, j int) bool { return line.Spans[i].StartUS < line.Spans[j].StartUS })
	b, jerr := json.Marshal(line)
	if jerr != nil {
		return
	}
	b = append(b, '\n')
	tr.slowMu.Lock()
	_, _ = tr.cfg.SlowWriter.Write(b)
	tr.slowMu.Unlock()
}
