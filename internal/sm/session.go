package sm

import (
	"errors"
	"fmt"

	"dora/internal/btree"
	"dora/internal/catalog"
	"dora/internal/metrics"
	"dora/internal/storage"
	"dora/internal/tuple"
	"dora/internal/tx"
	"dora/internal/wal"
)

// Session is a per-worker access handle. It exists so the access tracer
// (experiment E1) can attribute every record touch to the worker thread
// that performed it — the raw material of the demo's "Access Patterns"
// panel. Sessions add no synchronization and are not themselves
// goroutine-safe; each worker owns one.
//
// Every logical operation executes through the primary index's ExecAt:
// when the key's subtree is claimed by a partition worker, the WHOLE
// operation — index descents, heap access, log appends — runs on that
// worker's thread with its ownership token (shipping there when the
// caller is someone else). That is what lets owned heap pages drop
// their frame latches for reads: the owner's thread is provably the
// only mutator, and every foreign access serializes through its inbox.
type Session struct {
	sm     *SM
	worker int
	// owner is the access-path ownership token for partitioned index
	// subtrees. Only DORA partition workers carry one (via OwnedSession);
	// plain sessions pass nil and take the shared latched path (or ship
	// to the owner when a subtree is claimed).
	owner *btree.Owner
}

// Worker returns the worker id this session is tagged with.
func (ss *Session) Worker() int { return ss.worker }

// SM returns the underlying storage manager.
func (ss *Session) SM() *SM { return ss.sm }

// Owner returns the session's access-path ownership token (nil for
// shared sessions).
func (ss *Session) Owner() *btree.Owner { return ss.owner }

func (ss *Session) trace(tbl *catalog.Table, key int64, write bool) {
	tr := ss.sm.Tracer
	if tr == nil || !tr.Enabled() {
		return
	}
	tr.Record(metrics.Access{Worker: ss.worker, Table: int(tbl.ID), Key: key, Write: write})
}

// Read returns the record with the given primary key.
func (ss *Session) Read(t *tx.Txn, tbl *catalog.Table, key int64) (rec tuple.Record, err error) {
	ss.trace(tbl, key, false)
	tbl.Primary.Tree.ExecAt(ss.owner, key, func(tok *btree.Owner) {
		rec, err = ss.readAt(tok, tbl, key)
	})
	return rec, err
}

func (ss *Session) readAt(tok *btree.Owner, tbl *catalog.Table, key int64) (tuple.Record, error) {
	v, err := tbl.Primary.Tree.GetAs(tok, key)
	if err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return nil, fmt.Errorf("%w: %s[%d]", ErrNotFound, tbl.Name, key)
		}
		return nil, err
	}
	img, err := tbl.Heap.GetOwned(tok, storage.UnpackRID(v))
	if err != nil {
		return nil, err
	}
	return tuple.Decode(img)
}

// ReadByIndex returns the record whose secondary index entry equals key.
func (ss *Session) ReadByIndex(t *tx.Txn, tbl *catalog.Table, idx string, key int64) (tuple.Record, error) {
	ix := tbl.IndexByName(idx)
	if ix == nil {
		return nil, fmt.Errorf("sm: no index %q on %s", idx, tbl.Name)
	}
	var rec tuple.Record
	var err error
	ix.Tree.ExecAt(ss.owner, key, func(tok *btree.Owner) {
		var v uint64
		v, err = ix.Tree.GetAs(tok, key)
		if err != nil {
			if errors.Is(err, btree.ErrNotFound) {
				err = fmt.Errorf("%w: %s.%s[%d]", ErrNotFound, tbl.Name, idx, key)
			}
			return
		}
		// A routable secondary maps a routing range to the same worker
		// as the primary, so tok also matches the heap page stamps.
		var img []byte
		img, err = tbl.Heap.GetOwned(tok, storage.UnpackRID(v))
		if err != nil {
			return
		}
		rec, err = tuple.Decode(img)
	})
	if err != nil {
		return nil, err
	}
	ss.trace(tbl, tbl.Primary.Key(rec), false)
	return rec, nil
}

// scanHit is one index entry collected by a range scan before its heap
// fetch.
type scanHit struct {
	key int64
	rid storage.RID
}

// visitHits fetches and decodes each hit's record and applies fn,
// stopping early when fn returns false. A hit whose record vanished
// between index scan and heap fetch is skipped defensively (engines
// prevent this via their isolation protocol).
func (ss *Session) visitHits(tbl *catalog.Table, hits []scanHit, fn func(key int64, rec tuple.Record) bool) error {
	for _, h := range hits {
		ss.trace(tbl, h.key, false)
		img, err := tbl.Heap.GetOwned(ss.owner, h.rid)
		if err != nil {
			continue
		}
		rec, err := tuple.Decode(img)
		if err != nil {
			return err
		}
		if !fn(h.key, rec) {
			return nil
		}
	}
	return nil
}

// ScanRange visits records with lo <= primary key <= hi in key order.
func (ss *Session) ScanRange(t *tx.Txn, tbl *catalog.Table, lo, hi int64, fn func(key int64, rec tuple.Record) bool) error {
	var hits []scanHit
	tbl.Primary.Tree.AscendRangeAs(ss.owner, lo, hi, func(key int64, val uint64) bool {
		hits = append(hits, scanHit{key, storage.UnpackRID(val)})
		return true
	})
	return ss.visitHits(tbl, hits, fn)
}

// Insert stores rec under its primary key, maintaining all indexes and
// logging for redo/undo.
func (ss *Session) Insert(t *tx.Txn, tbl *catalog.Table, rec tuple.Record) (err error) {
	key := tbl.Primary.Key(rec)
	ss.trace(tbl, key, true)
	tbl.Primary.Tree.ExecAt(ss.owner, key, func(tok *btree.Owner) {
		err = ss.insertAt(tok, t, tbl, key, rec)
	})
	return err
}

func (ss *Session) insertAt(tok *btree.Owner, t *tx.Txn, tbl *catalog.Table, key int64, rec tuple.Record) error {
	if _, err := tbl.Primary.Tree.GetAs(tok, key); err == nil {
		return fmt.Errorf("%w: %s[%d]", ErrDuplicate, tbl.Name, key)
	}
	enc := tuple.Encode(rec)
	var prevLSN, opLSN uint64
	rid, err := tbl.Heap.InsertOwnedWith(tok, ss.worker, enc, func(rid storage.RID) uint64 {
		return t.Chain(func(prev uint64) uint64 {
			prevLSN = prev
			opLSN = ss.sm.Log.Append(&wal.Record{
				Kind: wal.KInsert, TxnID: t.ID, PrevLSN: prev,
				Table: tbl.ID, Page: rid.Page, Slot: rid.Slot, Key: key,
				Redo: enc,
			})
			return opLSN
		})
	})
	if err != nil {
		return err
	}
	if err := tbl.Primary.Tree.InsertAs(tok, key, rid.Pack()); err != nil {
		return fmt.Errorf("sm: primary index insert %s[%d]: %w", tbl.Name, key, err)
	}
	for _, ix := range tbl.Secondaries {
		if err := ix.Tree.PutAs(tok, ix.Key(rec), rid.Pack()); err != nil {
			return err
		}
	}
	t.AddUndo(tx.Undo{
		Kind: tx.UInsert, Table: tbl.ID, Key: key, RID: rid,
		LSN: opLSN, PrevLSN: prevLSN,
	})
	return nil
}

// Update replaces the record stored under key with rec (primary key must
// be unchanged).
func (ss *Session) Update(t *tx.Txn, tbl *catalog.Table, key int64, rec tuple.Record) (err error) {
	if nk := tbl.Primary.Key(rec); nk != key {
		return fmt.Errorf("sm: update changes primary key %d -> %d on %s", key, nk, tbl.Name)
	}
	ss.trace(tbl, key, true)
	tbl.Primary.Tree.ExecAt(ss.owner, key, func(tok *btree.Owner) {
		err = ss.updateAt(tok, t, tbl, key, rec)
	})
	return err
}

func (ss *Session) updateAt(tok *btree.Owner, t *tx.Txn, tbl *catalog.Table, key int64, rec tuple.Record) error {
	v, err := tbl.Primary.Tree.GetAs(tok, key)
	if err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return fmt.Errorf("%w: %s[%d]", ErrNotFound, tbl.Name, key)
		}
		return err
	}
	rid := storage.UnpackRID(v)
	enc := tuple.Encode(rec)
	var beforeCopy []byte
	var prevLSN, opLSN uint64
	err = tbl.Heap.UpdateOwnedWith(tok, rid, enc, func(before []byte) uint64 {
		beforeCopy = append([]byte(nil), before...)
		return t.Chain(func(prev uint64) uint64 {
			prevLSN = prev
			opLSN = ss.sm.Log.Append(&wal.Record{
				Kind: wal.KUpdate, TxnID: t.ID, PrevLSN: prev,
				Table: tbl.ID, Page: rid.Page, Slot: rid.Slot, Key: key,
				Redo: enc, Undo: beforeCopy,
			})
			return opLSN
		})
	})
	if err != nil {
		return err
	}
	old, err := tuple.Decode(beforeCopy)
	if err != nil {
		return err
	}
	return ss.finishUpdate(tok, t, tbl, key, rid, old, rec, beforeCopy, opLSN, prevLSN)
}

// finishUpdate is the shared tail of updateAt and mutateAt: re-point
// secondary index entries whose keys moved, then record the UUpdate
// undo entry.
func (ss *Session) finishUpdate(tok *btree.Owner, t *tx.Txn, tbl *catalog.Table, key int64, rid storage.RID, old, upd tuple.Record, beforeCopy []byte, opLSN, prevLSN uint64) error {
	for _, ix := range tbl.Secondaries {
		okey, nkey := ix.Key(old), ix.Key(upd)
		if okey != nkey {
			ix.Tree.DeleteAs(tok, okey)
			if err := ix.Tree.PutAs(tok, nkey, rid.Pack()); err != nil {
				return err
			}
		}
	}
	t.AddUndo(tx.Undo{
		Kind: tx.UUpdate, Table: tbl.ID, Key: key, RID: rid,
		Before: beforeCopy, LSN: opLSN, PrevLSN: prevLSN,
	})
	return nil
}

// Mutate reads the record under key, applies fn, and writes it back. The
// read-modify-write executes as ONE operation on the key's owning thread
// (a single ExecAt ship covers both halves, and on a stamped page the
// whole pass is latch-free through the heap's MutateOwnedWith), matching
// MutateAsync's single-ship semantics.
func (ss *Session) Mutate(t *tx.Txn, tbl *catalog.Table, key int64, fn func(tuple.Record) tuple.Record) (err error) {
	ss.trace(tbl, key, true)
	tbl.Primary.Tree.ExecAt(ss.owner, key, func(tok *btree.Owner) {
		err = ss.mutateAt(tok, t, tbl, key, fn)
	})
	return err
}

// mutateAt is the owner-thread body of Mutate.
func (ss *Session) mutateAt(tok *btree.Owner, t *tx.Txn, tbl *catalog.Table, key int64, fn func(tuple.Record) tuple.Record) error {
	v, err := tbl.Primary.Tree.GetAs(tok, key)
	if err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return fmt.Errorf("%w: %s[%d]", ErrNotFound, tbl.Name, key)
		}
		return err
	}
	rid := storage.UnpackRID(v)
	var beforeCopy, enc []byte
	var old, upd tuple.Record
	var prevLSN, opLSN uint64
	err = tbl.Heap.MutateOwnedWith(tok, rid, func(before []byte) ([]byte, error) {
		// before aliases the page; copy before anything mutates it.
		beforeCopy = append([]byte(nil), before...)
		var derr error
		old, derr = tuple.Decode(beforeCopy)
		if derr != nil {
			return nil, derr
		}
		upd = fn(old.Clone())
		if nk := tbl.Primary.Key(upd); nk != key {
			return nil, fmt.Errorf("sm: update changes primary key %d -> %d on %s", key, nk, tbl.Name)
		}
		enc = tuple.Encode(upd)
		return enc, nil
	}, func(_, _ []byte) uint64 {
		return t.Chain(func(prev uint64) uint64 {
			prevLSN = prev
			opLSN = ss.sm.Log.Append(&wal.Record{
				Kind: wal.KUpdate, TxnID: t.ID, PrevLSN: prev,
				Table: tbl.ID, Page: rid.Page, Slot: rid.Slot, Key: key,
				Redo: enc, Undo: beforeCopy,
			})
			return opLSN
		})
	})
	if err != nil {
		return err
	}
	return ss.finishUpdate(tok, t, tbl, key, rid, old, upd, beforeCopy, opLSN, prevLSN)
}

// Delete removes the record under key from the table and all indexes.
func (ss *Session) Delete(t *tx.Txn, tbl *catalog.Table, key int64) (err error) {
	ss.trace(tbl, key, true)
	tbl.Primary.Tree.ExecAt(ss.owner, key, func(tok *btree.Owner) {
		err = ss.deleteAt(tok, t, tbl, key)
	})
	return err
}

func (ss *Session) deleteAt(tok *btree.Owner, t *tx.Txn, tbl *catalog.Table, key int64) error {
	v, err := tbl.Primary.Tree.GetAs(tok, key)
	if err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return fmt.Errorf("%w: %s[%d]", ErrNotFound, tbl.Name, key)
		}
		return err
	}
	rid := storage.UnpackRID(v)
	// Remove index entries first so no reader can follow a dangling RID.
	tbl.Primary.Tree.DeleteAs(tok, key)
	var beforeCopy []byte
	var prevLSN, opLSN uint64
	err = tbl.Heap.DeleteOwnedWith(tok, rid, func(before []byte) uint64 {
		beforeCopy = append([]byte(nil), before...)
		return t.Chain(func(prev uint64) uint64 {
			prevLSN = prev
			opLSN = ss.sm.Log.Append(&wal.Record{
				Kind: wal.KDelete, TxnID: t.ID, PrevLSN: prev,
				Table: tbl.ID, Page: rid.Page, Slot: rid.Slot, Key: key,
				Undo: beforeCopy,
			})
			return opLSN
		})
	})
	if err != nil {
		// Restore the index entry we removed.
		_ = tbl.Primary.Tree.PutAs(tok, key, rid.Pack())
		return err
	}
	old, err := tuple.Decode(beforeCopy)
	if err != nil {
		return err
	}
	for _, ix := range tbl.Secondaries {
		ix.Tree.DeleteAs(tok, ix.Key(old))
	}
	t.AddUndo(tx.Undo{
		Kind: tx.UDelete, Table: tbl.ID, Key: key, RID: rid,
		Before: beforeCopy, LSN: opLSN, PrevLSN: prevLSN,
	})
	return nil
}
