package sm

import (
	"fmt"
	"sort"
	"sync"

	"dora/internal/storage"
	"dora/internal/tuple"
	"dora/internal/wal"
)

// Replayer applies a primary's log stream into a live storage manager —
// the replica side of log-shipping replication (internal/repl). It is
// recovery's redo path running continuously: every shipped record is
// replayed in LSN order into the heaps, indexes are maintained
// incrementally (recovery rebuilds them at the end; a live replica cannot),
// and the commit horizon advances as KCommit records arrive, so read-only
// sessions on the replica observe exactly the prefix of committed state
// the stream has delivered.
//
// Delivery and application are decoupled so read-only sessions never see
// uncommitted or torn state. A transaction's update records harden — and
// ship — before its commit record (group commit), so applying records as
// they arrive would expose effects of transactions that may yet abort.
// Instead, delivered records queue in arrival (= LSN) order and only the
// transaction-consistent prefix is applied: a record is applied once every
// transaction with a record at or before it in the stream has delivered
// its resolution (KCommit, or KEnd for a rollback). Application therefore
// still runs in strict LSN order — page-LSN monotonicity and slot-
// allocation determinism of the redo path are untouched — but the heap
// only ever holds committed state, and the commit horizon advances when a
// commit record is applied, never merely delivered.
//
// The replayer also keeps recovery's analysis state live: the records of
// every unended transaction stay resident so that Promote — which turns
// the replica into a primary at the end of the delivered stream — can
// close committed-but-unended winners and roll back in-flight losers with
// CLRs, exactly as restart undo would.
//
// With SM.Options.RedoWorkers > 1 the replayer splits into dispatcher
// and appliers (predo.go): Apply becomes the dispatcher — analysis,
// admission, page attachment, checkpoint handling stay here, in LSN
// order — while the heap redo of physical records fans out to applier
// workers sharded by page id. Appliers capture the pre-redo before image
// of each slot; the dispatcher consumes the completion stream strictly
// in dispatch (= LSN) order and performs everything order-sensitive
// there: incremental index maintenance (a key's index operations can
// span pages — an update relocation deletes on one page and reinserts on
// another — so they cannot ride the page shard), commit-horizon
// advancement, and applied-LSN accounting. Sync is the epoch barrier the
// delivery path places at every extent boundary, so readers admitted
// under the replica's stateMu only ever observe extent-consistent state.
//
// Lock ordering: rp.mu is the OUTER lock; the pool's internal mutexes
// are strictly inner and never held while acquiring rp.mu (appliers
// touch only the task, the heaps, and the catalog — never the maps
// below). Every accessor (AppliedLSN, Warming, OpenTxns, Redone,
// RedoStats) takes rp.mu exactly like Apply, Sync and Promote do; the
// analysis maps (txns, resolved, warm) are mutated by the dispatcher
// only, under rp.mu, so the parallel split never exposes them to an
// applier thread. The latency tracer (internal/trace) adds no edges to
// this order: replay-path spans are pushed onto per-worker lock-free
// rings, so instrumented code may record while holding rp.mu (or the
// replica's stateMu) and the trace aggregator goroutine never acquires
// rp.mu or the pool's inner mutexes.
type Replayer struct {
	sm *SM

	mu        sync.Mutex
	txns      map[uint64]*rtxn
	resolved  map[uint64]bool // txns whose KCommit/KEnd has been delivered
	pending   []*wal.Record   // delivered but unapplied records, LSN order
	warm      map[uint64]struct{}
	maxTxn    uint64
	delivered uint64 // end LSN of the last record delivered
	applied   uint64 // end LSN of the last record applied
	redone    int64  // physical operations replayed

	// pool is the partition-parallel applier pool; nil = serial replay.
	// Guarded by mu (created at construction, torn down by Promote/Close).
	pool *redoPool
}

// rtxn is the live analysis state of one unended transaction.
type rtxn struct {
	lastLSN   uint64
	committed bool
	recs      map[uint64]*wal.Record // the txn's records, for undo chains
}

// NewReplayer creates a replayer over s. Tables must already be
// registered (schema DDL is code, not logged), in the same order as on
// the primary, so table ids line up. When s was opened with RedoWorkers
// > 1 the replayer runs the partition-parallel pipeline; Close tears the
// pool down.
func NewReplayer(s *SM) *Replayer {
	rp := &Replayer{sm: s, txns: make(map[uint64]*rtxn), resolved: make(map[uint64]bool)}
	if s.redoWorkers > 1 {
		rp.pool = newRedoPool(s.redoWorkers, rp.applierApply)
		if s.adaptiveRedo {
			// Grow up to 4x the configured fan-out, shrink down to serial;
			// decisions only ever fire at the Sync barrier below.
			rp.pool.setAdaptive(1, 4*s.redoWorkers)
		}
	}
	return rp
}

// Close stops the applier pool (no-op for a serial replayer). The caller
// must not Apply afterwards.
func (rp *Replayer) Close() {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	rp.closePoolLocked()
}

func (rp *Replayer) closePoolLocked() {
	if rp.pool == nil {
		return
	}
	rp.pool.barrier(nil)
	rp.pool.close()
	rp.pool = nil
}

func (rp *Replayer) ensure(id uint64) *rtxn {
	ts := rp.txns[id]
	if ts == nil {
		ts = &rtxn{recs: make(map[uint64]*wal.Record)}
		rp.txns[id] = ts
	}
	return ts
}

// Apply ingests one delivered record: analysis state updates immediately,
// the record queues for application, and the transaction-consistent
// prefix the delivery unlocked is applied. Records must arrive in LSN
// order with no gaps (the delivery path guarantees it).
func (rp *Replayer) Apply(r *wal.Record) error {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if r.TxnID != 0 {
		if r.TxnID > rp.maxTxn {
			rp.maxTxn = r.TxnID
		}
		switch r.Kind {
		case wal.KEnd:
			delete(rp.txns, r.TxnID)
			rp.resolved[r.TxnID] = true
		case wal.KCommit:
			ts := rp.ensure(r.TxnID)
			ts.lastLSN = r.LSN
			ts.committed = true
			rp.resolved[r.TxnID] = true
		default:
			ts := rp.ensure(r.TxnID)
			ts.lastLSN = r.LSN
			ts.recs[r.LSN] = r
		}
	}
	rp.delivered = r.LSN + uint64(wal.EncodedSize(r))
	rp.pending = append(rp.pending, r)
	return rp.drainLocked()
}

// drainLocked applies the transaction-consistent prefix of the pending
// queue: it stops at the first record whose transaction has not delivered
// its commit or end yet, so nothing uncommitted — and no partial slice of
// a committed transaction — ever reaches the heap. In parallel mode the
// prefix is dispatched to the applier pool instead, and whatever
// completions are already in — in LSN order — are finished
// opportunistically (the extent-boundary Sync finishes the rest).
func (rp *Replayer) drainLocked() error {
	n := 0
	for ; n < len(rp.pending); n++ {
		r := rp.pending[n]
		if r.TxnID != 0 && !rp.resolved[r.TxnID] {
			break
		}
		var err error
		if rp.pool != nil {
			err = rp.dispatchOneLocked(r)
		} else {
			err = rp.applyOneLocked(r)
		}
		if err != nil {
			rp.pending = rp.pending[n:]
			return err
		}
	}
	if n == len(rp.pending) {
		rp.pending = nil
	} else {
		rp.pending = rp.pending[n:]
	}
	if rp.pool != nil {
		return rp.pool.drainReady(rp.finishOneLocked)
	}
	return nil
}

// Sync is the epoch barrier of parallel replay: it blocks until every
// dispatched record has been applied by its applier AND finished in LSN
// order by the dispatcher (index maintenance, commit horizon, applied
// accounting). The replica's delivery path calls it before releasing
// stateMu at the end of each extent, so read-only sessions only ever
// observe extent-consistent states; Promote calls it before undoing
// losers. Serial replayers return immediately.
func (rp *Replayer) Sync() error {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.syncLocked()
}

func (rp *Replayer) syncLocked() error {
	if rp.pool == nil {
		return nil
	}
	if err := rp.pool.barrier(rp.finishOneLocked); err != nil {
		return err
	}
	// The barrier left every applier queue empty, so the page→applier
	// remap a resize implies cannot reorder any page's records: adaptive
	// sizing decisions are only ever taken here.
	rp.pool.maybeResize()
	return nil
}

// dispatchOneLocked is the dispatcher half of applyOneLocked: checkpoint
// handling and page attachment run here in LSN order (attachment must
// precede the page's task, and the per-worker FIFO orders the task after
// anything already queued for its page), the heap work ships to the
// applier owning the record's page, and everything else rides the
// completion stream so finishOneLocked sees every record in order.
func (rp *Replayer) dispatchOneLocked(r *wal.Record) error {
	s := rp.sm
	if r.Kind == wal.KCheckpoint {
		if ck := uint64(r.Key); ck > s.lastCkptRedo.Load() {
			s.lastCkptRedo.Store(ck)
		}
		if err := s.applyAttachments(r.Redo); err != nil {
			return err
		}
	}
	if err := s.attachOne(r); err != nil {
		return err
	}
	t := &redoTask{rec: r}
	if _, ok := wal.PageKey(r); ok {
		rp.pool.dispatch(t)
	} else {
		rp.pool.dispatchLocal(t)
	}
	return nil
}

// applierApply runs on an applier worker's thread: heap-only redo of one
// physical record plus before/after-image capture for the dispatcher's
// in-order index maintenance. It touches nothing guarded by rp.mu.
func (rp *Replayer) applierApply(t *redoTask) {
	r := t.rec
	kind := physicalKind(r)
	if kind == 0 {
		return
	}
	s := rp.sm
	tbl := s.Cat.TableByID(r.Table)
	if tbl == nil {
		t.err = fmt.Errorf("sm: replay references unknown table %d", r.Table)
		return
	}
	rid := storage.RID{Page: r.Page, Slot: r.Slot}
	switch kind {
	case wal.KInsert:
		if err := tbl.Heap.RedoInsert(rid, r.Redo, r.LSN); err != nil {
			t.err = err
			return
		}
		t.newRec, t.err = tuple.Decode(r.Redo)
	case wal.KUpdate:
		// Pre-redo before image: per-page FIFO makes this exactly the
		// state the serial path would have read at this record's turn.
		// (Get and Decode both copy, so the captured record cannot alias
		// page bytes a later record on this page mutates.)
		if img, err := tbl.Heap.Get(rid); err == nil {
			t.oldRec, _ = tuple.Decode(img)
		}
		if err := tbl.Heap.RedoUpdate(rid, r.Redo, r.LSN); err != nil {
			t.err = err
			return
		}
		t.newRec, t.err = tuple.Decode(r.Redo)
	case wal.KDelete:
		if img, err := tbl.Heap.Get(rid); err == nil {
			t.oldRec, _ = tuple.Decode(img)
		}
		t.err = tbl.Heap.RedoDelete(rid, r.LSN)
	}
}

// finishOneLocked consumes one completed task in dispatch (= LSN) order
// on the dispatcher, under rp.mu: the order-sensitive remainder of
// applyOneLocked — index maintenance from the applier's captured images,
// commit-horizon advancement, resolution cleanup, applied accounting.
func (rp *Replayer) finishOneLocked(t *redoTask) error {
	r := t.rec
	s := rp.sm
	if kind := physicalKind(r); kind != 0 {
		tbl := s.Cat.TableByID(r.Table)
		if tbl == nil {
			return fmt.Errorf("sm: replay references unknown table %d", r.Table)
		}
		rid := storage.RID{Page: r.Page, Slot: r.Slot}
		switch kind {
		case wal.KInsert:
			_ = tbl.Primary.Tree.PutAs(nil, tbl.Primary.Key(t.newRec), rid.Pack())
			for _, ix := range tbl.Secondaries {
				_ = ix.Tree.PutAs(nil, ix.Key(t.newRec), rid.Pack())
			}
		case wal.KUpdate:
			if t.oldRec != nil {
				for _, ix := range tbl.Secondaries {
					if ok, nk := ix.Key(t.oldRec), ix.Key(t.newRec); ok != nk {
						ix.Tree.DeleteAs(nil, ok)
						_ = ix.Tree.PutAs(nil, nk, rid.Pack())
					}
				}
			}
		case wal.KDelete:
			if t.oldRec != nil {
				tbl.Primary.Tree.DeleteAs(nil, tbl.Primary.Key(t.oldRec))
				for _, ix := range tbl.Secondaries {
					ix.Tree.DeleteAs(nil, ix.Key(t.oldRec))
				}
			}
		}
		rp.redone++
	}
	switch r.Kind {
	case wal.KCommit:
		s.NoteCommitLSN(r.LSN)
	case wal.KEnd:
		delete(rp.resolved, r.TxnID)
		delete(rp.warm, r.TxnID)
	}
	rp.applied = r.LSN + uint64(wal.EncodedSize(r))
	return nil
}

// applyOneLocked redoes one record into the live engine, in strict LSN
// order across calls.
func (rp *Replayer) applyOneLocked(r *wal.Record) error {
	s := rp.sm
	if r.Kind == wal.KCheckpoint {
		// The primary's checkpoint raises the replica's truncation floor
		// too (a promoted replica trims from where the primary left off)
		// and re-declares page attachment for streams joined past the
		// records that created the pages.
		if ck := uint64(r.Key); ck > s.lastCkptRedo.Load() {
			s.lastCkptRedo.Store(ck)
		}
		if err := s.applyAttachments(r.Redo); err != nil {
			return err
		}
	}
	if err := s.attachOne(r); err != nil {
		return err
	}
	if err := rp.applyPhysical(r); err != nil {
		return err
	}
	switch r.Kind {
	case wal.KCommit:
		s.NoteCommitLSN(r.LSN)
	case wal.KEnd:
		// Final record of its transaction: the resolution marker is done.
		delete(rp.resolved, r.TxnID)
		delete(rp.warm, r.TxnID)
	}
	rp.applied = r.LSN + uint64(wal.EncodedSize(r))
	return nil
}

// applyPhysical redoes one physical record and maintains the indexes
// incrementally: before images are read from the heap (pre-redo) so
// moved or removed index keys can be fixed, mirroring what the live
// write path does on the primary.
func (rp *Replayer) applyPhysical(r *wal.Record) error {
	kind := physicalKind(r)
	if kind == 0 {
		return nil
	}
	s := rp.sm
	tbl := s.Cat.TableByID(r.Table)
	if tbl == nil {
		return fmt.Errorf("sm: replay references unknown table %d", r.Table)
	}
	rid := storage.RID{Page: r.Page, Slot: r.Slot}
	switch kind {
	case wal.KInsert:
		if err := tbl.Heap.RedoInsert(rid, r.Redo, r.LSN); err != nil {
			return err
		}
		rec, err := tuple.Decode(r.Redo)
		if err != nil {
			return err
		}
		_ = tbl.Primary.Tree.PutAs(nil, tbl.Primary.Key(rec), rid.Pack())
		for _, ix := range tbl.Secondaries {
			_ = ix.Tree.PutAs(nil, ix.Key(rec), rid.Pack())
		}
		rp.redone++

	case wal.KUpdate:
		var old tuple.Record
		if img, err := tbl.Heap.Get(rid); err == nil {
			old, _ = tuple.Decode(img)
		}
		if err := tbl.Heap.RedoUpdate(rid, r.Redo, r.LSN); err != nil {
			return err
		}
		rec, err := tuple.Decode(r.Redo)
		if err != nil {
			return err
		}
		if old != nil {
			for _, ix := range tbl.Secondaries {
				if ok, nk := ix.Key(old), ix.Key(rec); ok != nk {
					ix.Tree.DeleteAs(nil, ok)
					_ = ix.Tree.PutAs(nil, nk, rid.Pack())
				}
			}
		}
		rp.redone++

	case wal.KDelete:
		var old tuple.Record
		if img, err := tbl.Heap.Get(rid); err == nil {
			old, _ = tuple.Decode(img)
		}
		if err := tbl.Heap.RedoDelete(rid, r.LSN); err != nil {
			return err
		}
		if old != nil {
			tbl.Primary.Tree.DeleteAs(nil, tbl.Primary.Key(old))
			for _, ix := range tbl.Secondaries {
				ix.Tree.DeleteAs(nil, ix.Key(old))
			}
		}
		rp.redone++
	}
	return nil
}

// AppliedLSN returns the end LSN of the last record applied — the
// transaction-consistent replayed horizon read-only sessions observe
// (staleness accounting against the primary's shipped horizon). It can
// trail DeliveredLSN by the records of still-unresolved transactions.
func (rp *Replayer) AppliedLSN() uint64 {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.applied
}

// DeliveredLSN returns the end LSN of the last record delivered to the
// replayer (analysis horizon).
func (rp *Replayer) DeliveredLSN() uint64 {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.delivered
}

// Warming returns the number of transactions whose uncommitted effects
// Bootstrap replayed into the heap and whose resolution has not yet been
// applied from the stream. While it is non-zero the heap can hold
// uncommitted ex-primary state, so read-only sessions must be refused.
func (rp *Replayer) Warming() int {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return len(rp.warm)
}

// OpenTxns returns the number of transactions in flight in the stream.
func (rp *Replayer) OpenTxns() int {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return len(rp.txns)
}

// Redone returns the count of physical operations replayed.
func (rp *Replayer) Redone() int64 {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.redone
}

// RedoStats returns the applier pool's monitoring view. A serial replayer
// (or one whose pool Promote retired) reports zero workers.
func (rp *Replayer) RedoStats() RedoStats {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.pool == nil {
		return RedoStats{}
	}
	return rp.pool.stats()
}

// PromoteStats summarizes a completed Promote.
type PromoteStats struct {
	Open    int // transactions open at the end of the stream
	Winners int // committed-but-unended: closed with an end record
	Losers  int // in-flight: rolled back with CLRs
	Undone  int // undo operations applied for losers
	Rebuilt int // index entries rebuilt post-undo
}

// Promote finishes the delivered stream as a restart would, turning the
// replica's state into a primary's: committed-but-unended transactions
// get their end records, in-flight losers are rolled back with CLRs
// (their commit never hardened on the old primary's acked prefix, so
// their effects must not survive the failover), the transaction-id floor
// rises past every replayed id, and the indexes are rebuilt (loser undo
// writes heaps directly, like recovery's). The storage manager must
// already have an appendable log manager adopted (AdoptLog): the
// promotion's end records and CLRs are the first records the new primary
// writes.
func (rp *Replayer) Promote() (PromoteStats, error) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	s := rp.sm
	var st PromoteStats
	// Drain the applier pool first: every dispatched record finishes and is
	// consumed in order before the stream's tail is applied, and the pool
	// retires — promotion's loser undo and everything the new primary does
	// afterwards run single-threaded on this side, like restart undo.
	if err := rp.syncLocked(); err != nil {
		return st, err
	}
	rp.closePoolLocked()
	// Delivery ends here: apply everything still queued — including the
	// records of unresolved transactions held back from readers — so the
	// heap reflects the full delivered stream before winners are closed
	// and losers undone (undo walks before-images that must be present).
	for _, r := range rp.pending {
		if err := rp.applyOneLocked(r); err != nil {
			return st, err
		}
	}
	rp.pending = nil
	rp.warm = nil
	st.Open = len(rp.txns)
	// Descending-id order, like recovery's loser undo: deterministic, so a
	// serial and a parallel replica promoted from the same stream append
	// identical KEnd/CLR sequences and leave byte-identical pages.
	ids := make([]uint64, 0, len(rp.txns))
	for id := range rp.txns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] })
	for _, id := range ids {
		ts := rp.txns[id]
		if ts.committed {
			s.Log.Append(&wal.Record{Kind: wal.KEnd, TxnID: id, PrevLSN: ts.lastLSN})
			st.Winners++
			delete(rp.txns, id)
			continue
		}
		n, err := s.undoLoser(id, ts.lastLSN, ts.recs)
		if err != nil {
			return st, fmt.Errorf("sm: promote undo txn %d: %w", id, err)
		}
		st.Losers++
		st.Undone += n
		delete(rp.txns, id)
	}
	s.SetTxnIDFloor(rp.maxTxn + 1)
	n, err := s.rebuildIndexes()
	if err != nil {
		return st, err
	}
	st.Rebuilt = n
	if err := s.Log.FlushAll(); err != nil {
		return st, err
	}
	return st, nil
}

// Bootstrap replays the storage manager's existing log content — restart
// recovery minus undo. A rejoining ex-primary runs it after truncating
// its log tail at the promotion point: analysis state lands in the
// replayer (in-flight transactions stay OPEN — the new primary's
// promotion already wrote their end records or CLRs, and those arrive
// through the stream and must find the transactions live), redo honours
// checkpoints with page-LSN idempotence, and the indexes are rebuilt.
//
// The divergence guard: a heap page whose LSN lies at or beyond the
// retained log's end was flushed under discarded (divergent) records.
// Replaying the new primary's stream over such a page would be unsound,
// so Bootstrap refuses — that disk needs a full resync instead.
func (rp *Replayer) Bootstrap() (RecoveryStats, error) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	s := rp.sm
	var st RecoveryStats
	var recs []*wal.Record
	if err := s.Log.Scan(func(r *wal.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		return st, err
	}
	st.Records = len(recs)
	redoPoint := uint64(0)
	for _, r := range recs {
		if r.Kind == wal.KCheckpoint && uint64(r.Key) > redoPoint {
			redoPoint = uint64(r.Key)
		}
	}
	s.lastCkptRedo.Store(redoPoint)
	for _, r := range recs {
		if r.TxnID != 0 {
			if r.TxnID > rp.maxTxn {
				rp.maxTxn = r.TxnID
			}
			switch r.Kind {
			case wal.KEnd:
				delete(rp.txns, r.TxnID)
			case wal.KCommit:
				ts := rp.ensure(r.TxnID)
				ts.lastLSN = r.LSN
				ts.committed = true
				s.NoteCommitLSN(r.LSN)
			default:
				ts := rp.ensure(r.TxnID)
				ts.lastLSN = r.LSN
				ts.recs[r.LSN] = r
			}
		}
		if err := s.attachOne(r); err != nil {
			return st, fmt.Errorf("sm: attach lsn %d: %w", r.LSN, err)
		}
		if r.Kind == wal.KCheckpoint {
			if err := s.applyAttachments(r.Redo); err != nil {
				return st, err
			}
		}
		rp.applied = r.LSN + uint64(wal.EncodedSize(r))
		rp.delivered = rp.applied
		if r.LSN < redoPoint {
			continue
		}
		if err := s.redoOne(r); err != nil {
			return st, fmt.Errorf("sm: redo lsn %d: %w", r.LSN, err)
		}
		switch r.Kind {
		case wal.KInsert, wal.KUpdate, wal.KDelete, wal.KCLR:
			st.Redone++
			rp.redone++
		}
	}
	s.SetTxnIDFloor(rp.maxTxn + 1)
	// Unlike live delivery, bootstrap redo applies every retained record,
	// so effects of transactions still in flight at the truncation point
	// are in the heap now. They resolve through the stream (the new
	// primary's promotion wrote their end records or CLRs); until each
	// uncommitted one has, the replica is warming and must refuse reads.
	for id, ts := range rp.txns {
		if !ts.committed {
			if rp.warm == nil {
				rp.warm = make(map[uint64]struct{})
			}
			rp.warm[id] = struct{}{}
		}
	}
	if err := rp.checkDivergence(); err != nil {
		return st, err
	}
	n, err := s.rebuildIndexes()
	if err != nil {
		return st, err
	}
	st.Rebuilt = n
	return st, nil
}

// checkDivergence refuses a bootstrap whose disk holds pages flushed
// under log records the retained stream no longer contains.
func (rp *Replayer) checkDivergence() error {
	s := rp.sm
	end := s.Log.Next()
	for _, tbl := range s.Cat.Tables() {
		for _, pid := range tbl.Heap.Pages() {
			f, err := s.Pool.Fetch(pid)
			if err != nil {
				return err
			}
			f.Latch.RLock()
			lsn := f.Page.LSN()
			f.Latch.RUnlock()
			s.Pool.Unpin(f, false)
			if lsn >= end {
				return fmt.Errorf("sm: page %d flushed at LSN %d beyond retained log end %d: divergent disk, full resync required", pid, lsn, end)
			}
		}
	}
	return nil
}
