package sm

import (
	"errors"

	"dora/internal/btree"
	"dora/internal/catalog"
	"dora/internal/storage"
	"dora/internal/tuple"
	"dora/internal/tx"
	"dora/internal/wal"
)

// MigrateRecord is the record-movement half of background physical
// maintenance: it relocates the record under key from whatever shared
// page it lives on into a page owned by the session's token, so the
// owner's aligned reads of it stop taking the frame latch. The move is
// logically a no-op and physically a logged delete + re-insert under
// the caller's (maintenance) transaction: if that transaction loses at
// a crash, recovery compensates the insert and the delete in reverse
// and exactly one image of the record survives — the same guarantee
// in-memory rollback gives through the two undo entries.
//
// It MUST run on the thread owning key's primary subtree (the
// maintenance daemon reaches it through dora's owner-thread executor),
// which is what makes the delete→insert→re-point window invisible:
// every aligned access and every shipped foreign access to the key —
// blocking applyMsgs and continuation-passing contMsgs alike —
// serializes behind it in the owner's inbox, so the maintenance txn
// composes with the asynchronous ship path unchanged.
//
// Returns false without error when there is nothing to do: the key
// vanished (deleted by a foreground transaction), the session carries
// no token, or the record already lives on a page stamped to it.
func (ss *Session) MigrateRecord(t *tx.Txn, tbl *catalog.Table, key int64) (bool, error) {
	tok := ss.owner
	if tok == nil {
		return false, nil
	}
	v, err := tbl.Primary.Tree.GetAs(tok, key)
	if err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return false, nil
		}
		return false, err
	}
	rid := storage.UnpackRID(v)
	if tbl.Heap.StampOwner(rid.Page) == tok {
		return false, nil
	}
	img, err := tbl.Heap.GetOwned(tok, rid)
	if err != nil {
		return false, err
	}
	rec, err := tuple.Decode(img)
	if err != nil {
		return false, err
	}
	// Delete the original first: rollback applies undos in reverse, so
	// the copy's UInsert compensates before the original's UDelete
	// restores — ending, like recovery's backward chain walk, with
	// exactly one image under the key.
	var dPrev, dLSN uint64
	err = tbl.Heap.DeleteOwnedWith(tok, rid, func(before []byte) uint64 {
		return t.Chain(func(prev uint64) uint64 {
			dPrev = prev
			dLSN = ss.sm.Log.Append(&wal.Record{
				Kind: wal.KDelete, TxnID: t.ID, PrevLSN: prev,
				Table: tbl.ID, Page: rid.Page, Slot: rid.Slot, Key: key,
				Undo: img,
			})
			return dLSN
		})
	})
	if err != nil {
		return false, err
	}
	t.AddUndo(tx.Undo{
		Kind: tx.UDelete, Table: tbl.ID, Key: key, RID: rid,
		Before: img, LSN: dLSN, PrevLSN: dPrev,
	})
	var iPrev, iLSN uint64
	nrid, err := tbl.Heap.InsertOwnedWith(tok, ss.worker, img, func(nrid storage.RID) uint64 {
		return t.Chain(func(prev uint64) uint64 {
			iPrev = prev
			iLSN = ss.sm.Log.Append(&wal.Record{
				Kind: wal.KInsert, TxnID: t.ID, PrevLSN: prev,
				Table: tbl.ID, Page: nrid.Page, Slot: nrid.Slot, Key: key,
				Redo: img,
			})
			return iLSN
		})
	})
	if err != nil {
		return false, err
	}
	t.AddUndo(tx.Undo{
		Kind: tx.UInsert, Table: tbl.ID, Key: key, RID: nrid,
		LSN: iLSN, PrevLSN: iPrev,
	})
	// Re-point every index at the copy. PutAs overwrites in place; the
	// primary entry exists throughout, so no reader sees a missing key.
	if err := tbl.Primary.Tree.PutAs(tok, key, nrid.Pack()); err != nil {
		return false, err
	}
	for _, ix := range tbl.Secondaries {
		if err := ix.Tree.PutAs(tok, ix.Key(rec), nrid.Pack()); err != nil {
			return false, err
		}
	}
	return true, nil
}
