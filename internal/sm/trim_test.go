package sm

import (
	"testing"
	"time"

	"dora/internal/wal"
)

// TestTrimAndRecover truncates the log below the checkpoint redo point
// and verifies a crash-restart over the shortened stream still recovers
// every committed row (the checkpoint's attachment map stands in for the
// dropped records' page attachments).
func TestTrimAndRecover(t *testing.T) {
	rig := newRig()
	s := rig.open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	for i := int64(1); i <= 300; i++ {
		txn := s.Begin()
		if err := ses.Insert(txn, tbl, acct(i, "acct", i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
	before := len(mustContents(t, rig.store))
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	h, err := s.TrimLog()
	if err != nil {
		t.Fatal(err)
	}
	if h == 0 {
		t.Fatal("nothing trimmed after a checkpoint")
	}
	if after := len(mustContents(t, rig.store)); after >= before {
		t.Fatalf("store did not shrink: %d -> %d", before, after)
	}
	// More traffic after the trim, then crash.
	for i := int64(301); i <= 320; i++ {
		txn := s.Begin()
		if err := ses.Insert(txn, tbl, acct(i, "acct", i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}

	s2 := rig.crash(t)
	tbl2 := testTable(t, s2)
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	ses2 := s2.Session(0)
	for i := int64(1); i <= 320; i++ {
		rec, err := ses2.Read(s2.Begin(), tbl2, i)
		if err != nil || rec[2].Int != i {
			t.Fatalf("row %d after truncated-log recovery: %v %v", i, rec, err)
		}
	}
}

// TestTruncationHorizonRespectsActiveTxns: an in-flight transaction pins
// the log at its first record — rollback needs the chain.
func TestTruncationHorizonRespectsActiveTxns(t *testing.T) {
	s := open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	old := s.Begin()
	if err := ses.Insert(old, tbl, acct(1, "pin", 1)); err != nil {
		t.Fatal(err)
	}
	pin := old.FirstLSN()
	for i := int64(2); i <= 50; i++ {
		txn := s.Begin()
		if err := ses.Insert(txn, tbl, acct(i, "a", i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if h := s.TruncationHorizon(); h > pin {
		t.Fatalf("horizon %d passes active txn's first LSN %d", h, pin)
	}
	if err := s.Commit(old); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if h := s.TruncationHorizon(); h <= pin {
		t.Fatalf("horizon %d still pinned after commit", h)
	}
	// An extra constraint (replication's slowest ack) caps the horizon.
	if h := s.TruncationHorizon(pin - 1); h != pin-1 {
		t.Fatalf("extra constraint ignored: %d", h)
	}
}

// TestTrimmerDaemon drives the background trimmer over sustained writes
// and checks the retained log stays bounded.
func TestTrimmerDaemon(t *testing.T) {
	rig := newRig()
	s := rig.open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	tr := &Trimmer{SM: s, Interval: time.Millisecond, Threshold: 16 << 10}
	tr.Start()
	defer tr.Stop()
	for i := int64(1); i <= 2000; i++ {
		txn := s.Begin()
		if err := ses.Insert(txn, tbl, acct(i, "sustained-write-traffic", i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.Trims.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tr.Trims.Load() == 0 {
		t.Fatal("trimmer never truncated")
	}
	if tr.Origin() <= uint64(wal.HeaderSize) {
		t.Fatalf("origin never advanced: %d", tr.Origin())
	}
	// The engine keeps working over the truncated stream.
	txn := s.Begin()
	if err := ses.Insert(txn, tbl, acct(9999, "post", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(txn); err != nil {
		t.Fatal(err)
	}
}

func mustContents(t *testing.T, store wal.Store) []byte {
	t.Helper()
	raw, err := store.Contents()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
