package sm

import (
	"sync/atomic"
	"time"

	"dora/internal/metrics"
	"dora/internal/wal"
)

// TruncationHorizon computes the highest LSN below which no log record is
// still needed: the minimum of the last hardened checkpoint's redo point
// (redo never reaches below it), the oldest active transaction's first
// LSN (its rollback walks the chain from there), and any caller-supplied
// constraints — replication passes the slowest replica's acked LSN, so a
// lagging replica can still be caught up from the retained log. Returns 0
// when no checkpoint has hardened yet (the whole log is still needed).
func (s *SM) TruncationHorizon(extras ...uint64) uint64 {
	h := s.lastCkptRedo.Load()
	if h == 0 {
		return 0
	}
	if oldest := s.OldestActiveLSN(); oldest != 0 && oldest < h {
		h = oldest
	}
	for _, e := range extras {
		if e < h {
			h = e
		}
	}
	return h
}

// TrimLog truncates the log's backing store below the current truncation
// horizon (see TruncationHorizon), returning the horizon applied — 0 when
// nothing could be dropped or the log manager cannot truncate.
func (s *SM) TrimLog(extras ...uint64) (uint64, error) {
	tr, ok := s.Log.(wal.Truncator)
	if !ok {
		return 0, nil
	}
	h := s.TruncationHorizon(extras...)
	if h == 0 {
		return 0, nil
	}
	return h, tr.Truncate(h)
}

// Trimmer is the cleaning-aware log-truncation daemon: once the retained
// log grows past Threshold bytes it takes a checkpoint (flushing dirty
// pages, so the redo floor rises past the oldest unhardened page LSN) and
// truncates the store at min(checkpoint redo point, oldest active
// transaction, slowest replica ack). Log growth stays bounded under
// sustained writes without ever dropping a record recovery, rollback, or
// a replica still needs.
type Trimmer struct {
	SM *SM
	// Interval between size checks (default 50ms).
	Interval time.Duration
	// Threshold is the retained-log size in bytes that triggers a
	// checkpoint + truncate cycle (default 4 MiB).
	Threshold uint64
	// AckHorizon, when non-nil, returns replication's truncation
	// constraint — the slowest live replica's acked LSN (MaxUint64 when
	// unconstrained). internal/repl.Shipper.AckHorizon fits here.
	AckHorizon func() uint64

	// Checkpoints and Trims count cycles triggered and truncations that
	// actually advanced the origin.
	Checkpoints metrics.Counter
	Trims       metrics.Counter

	origin atomic.Uint64 // first retained LSN (monitor: retained size)
	stop   chan struct{}
	done   chan struct{}
}

// Start launches the daemon. The trimmer learns the current stream origin
// lazily: it only ever raises its estimate to horizons it applied itself.
func (t *Trimmer) Start() {
	if t.Interval <= 0 {
		t.Interval = 50 * time.Millisecond
	}
	if t.Threshold == 0 {
		t.Threshold = 4 << 20
	}
	if t.origin.Load() == 0 {
		t.origin.Store(uint64(wal.HeaderSize))
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	go func() {
		defer close(t.done)
		tick := time.NewTicker(t.Interval)
		defer tick.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tick.C:
				t.runOnce()
			}
		}
	}()
}

// Stop halts the daemon.
func (t *Trimmer) Stop() {
	if t.stop == nil {
		return
	}
	close(t.stop)
	<-t.done
	t.stop = nil
}

// Origin returns the first retained LSN as far as the trimmer knows.
func (t *Trimmer) Origin() uint64 { return t.origin.Load() }

// Retained returns the approximate retained log size in bytes.
func (t *Trimmer) Retained() uint64 {
	next := t.SM.Log.Next()
	if o := t.origin.Load(); next > o {
		return next - o
	}
	return 0
}

func (t *Trimmer) runOnce() {
	if t.Retained() < t.Threshold {
		return
	}
	if _, err := t.SM.Checkpoint(); err != nil {
		return // a wedged flush retries next tick; never trim past it
	}
	t.Checkpoints.Inc()
	var extras []uint64
	if t.AckHorizon != nil {
		extras = append(extras, t.AckHorizon())
	}
	h, err := t.SM.TrimLog(extras...)
	if err != nil || h == 0 {
		return
	}
	for {
		cur := t.origin.Load()
		if cur >= h || t.origin.CompareAndSwap(cur, h) {
			break
		}
	}
	t.Trims.Inc()
}
