package sm

import (
	"errors"
	"math/rand"
	"testing"

	"dora/internal/buffer"
	"dora/internal/wal"
)

// crashRig runs a workload against an SM, then "crashes": it reopens a
// new SM over the same durable disk and the synced prefix of the log.
type crashRig struct {
	disk  *buffer.MemDisk
	store *wal.MemStore
}

func newRig() *crashRig {
	return &crashRig{disk: buffer.NewMemDisk(), store: wal.NewMemStore()}
}

func (r *crashRig) open(t *testing.T) *SM {
	t.Helper()
	s, err := Open(Options{Frames: 64, Disk: r.disk, LogStore: r.store})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// crash reopens over the synced log prefix (unsynced appends are lost).
func (r *crashRig) crash(t *testing.T) *SM {
	t.Helper()
	r.store = r.store.CrashCopy()
	return r.open(t)
}

// TestRecoverAcrossLogManagers runs the workload under the legacy
// single-mutex log, crashes, and recovers under the consolidation-array
// log (and vice versa): the two managers share one on-disk format, so
// recovery must be oblivious to which one produced the stream.
func TestRecoverAcrossLogManagers(t *testing.T) {
	for _, dir := range []struct {
		name              string
		writer, recoverer bool // LegacyLog flags
	}{
		{"legacy-to-clog", true, false},
		{"clog-to-legacy", false, true},
	} {
		t.Run(dir.name, func(t *testing.T) {
			disk := buffer.NewMemDisk()
			store := wal.NewMemStore()
			s, err := Open(Options{Frames: 64, Disk: disk, LogStore: store, LegacyLog: dir.writer})
			if err != nil {
				t.Fatal(err)
			}
			tbl := testTable(t, s)
			ses := s.Session(0)
			winner := s.Begin()
			for i := int64(1); i <= 10; i++ {
				if err := ses.Insert(winner, tbl, acct(i, "w", i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Commit(winner); err != nil {
				t.Fatal(err)
			}
			loser := s.Begin()
			_ = ses.Insert(loser, tbl, acct(99, "loser", 0))
			_ = ses.Update(loser, tbl, 1, acct(1, "w", 777))
			if err := s.Log.FlushAll(); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(Options{Frames: 64, Disk: disk, LogStore: store.CrashCopy(), LegacyLog: dir.recoverer})
			if err != nil {
				t.Fatal(err)
			}
			tbl2 := testTable(t, s2)
			st, err := s2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if st.Losers != 1 {
				t.Fatalf("losers = %d, want 1", st.Losers)
			}
			ses2 := s2.Session(0)
			for i := int64(1); i <= 10; i++ {
				rec, err := ses2.Read(s2.Begin(), tbl2, i)
				if err != nil || rec[2].Int != i {
					t.Fatalf("winner key %d: %v %v", i, rec, err)
				}
			}
			if _, err := ses2.Read(s2.Begin(), tbl2, 99); !errors.Is(err, ErrNotFound) {
				t.Fatalf("loser insert visible after recovery: %v", err)
			}
		})
	}
}

func TestRecoverCommittedSurvive(t *testing.T) {
	rig := newRig()
	s := rig.open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	txn := s.Begin()
	for i := int64(1); i <= 50; i++ {
		if err := ses.Insert(txn, tbl, acct(i, "durable", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(txn); err != nil {
		t.Fatal(err)
	}
	// Crash without flushing any data page.
	s2 := rig.crash(t)
	tbl2 := testTable(t, s2)
	st, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Redone == 0 || st.Rebuilt != 50 {
		t.Fatalf("stats: %+v", st)
	}
	ses2 := s2.Session(0)
	for i := int64(1); i <= 50; i++ {
		rec, err := ses2.Read(s2.Begin(), tbl2, i)
		if err != nil || rec[2].Int != i {
			t.Fatalf("key %d after recovery: %v %v", i, rec, err)
		}
	}
}

func TestRecoverUncommittedRolledBack(t *testing.T) {
	rig := newRig()
	s := rig.open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)

	committed := s.Begin()
	_ = ses.Insert(committed, tbl, acct(1, "committed", 100))
	if err := s.Commit(committed); err != nil {
		t.Fatal(err)
	}

	// In-flight at crash: insert + update + delete, all must vanish.
	loser := s.Begin()
	_ = ses.Insert(loser, tbl, acct(2, "loser-insert", 0))
	_ = ses.Update(loser, tbl, 1, acct(1, "committed", 777))
	// Force the log so the loser's records are durable (worst case).
	if err := s.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}

	s2 := rig.crash(t)
	tbl2 := testTable(t, s2)
	st, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Losers != 1 {
		t.Fatalf("losers = %d, want 1", st.Losers)
	}
	ses2 := s2.Session(0)
	rec, err := ses2.Read(s2.Begin(), tbl2, 1)
	if err != nil || rec[2].Int != 100 {
		t.Fatalf("loser update survived: %v %v", rec, err)
	}
	if _, err := ses2.Read(s2.Begin(), tbl2, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("loser insert survived: %v", err)
	}
}

func TestRecoverAfterFlushedDirtyPages(t *testing.T) {
	// Dirty pages of an uncommitted txn reach disk (steal policy); undo
	// must reverse them from the durable log.
	rig := newRig()
	s := rig.open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	base := s.Begin()
	_ = ses.Insert(base, tbl, acct(1, "base", 10))
	if err := s.Commit(base); err != nil {
		t.Fatal(err)
	}
	loser := s.Begin()
	_ = ses.Update(loser, tbl, 1, acct(1, "base", 666))
	// Flush everything: log then pages (write-ahead respected by pool).
	if err := s.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := s.Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	s2 := rig.crash(t)
	tbl2 := testTable(t, s2)
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	rec, err := s2.Session(0).Read(s2.Begin(), tbl2, 1)
	if err != nil || rec[2].Int != 10 {
		t.Fatalf("stolen dirty page not undone: %v %v", rec, err)
	}
}

func TestRecoverRolledBackTxnStaysRolledBack(t *testing.T) {
	rig := newRig()
	s := rig.open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	base := s.Begin()
	_ = ses.Insert(base, tbl, acct(1, "v", 1))
	_ = s.Commit(base)

	ab := s.Begin()
	_ = ses.Update(ab, tbl, 1, acct(1, "v", 999))
	if err := s.Rollback(ab); err != nil {
		t.Fatal(err)
	}
	if err := s.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}

	s2 := rig.crash(t)
	tbl2 := testTable(t, s2)
	st, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Losers != 0 {
		t.Fatalf("fully rolled-back txn counted as loser: %+v", st)
	}
	rec, err := s2.Session(0).Read(s2.Begin(), tbl2, 1)
	if err != nil || rec[2].Int != 1 {
		t.Fatalf("state after recovering aborted txn: %v %v", rec, err)
	}
}

func TestRecoverCrashDuringRollback(t *testing.T) {
	// A loser with CLRs for part of its undo: recovery must resume from
	// UndoNext, not re-undo compensated work.
	rig := newRig()
	s := rig.open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	base := s.Begin()
	_ = ses.Insert(base, tbl, acct(1, "a", 1))
	_ = ses.Insert(base, tbl, acct(2, "b", 2))
	_ = s.Commit(base)

	loser := s.Begin()
	_ = ses.Update(loser, tbl, 1, acct(1, "a", 100))
	_ = ses.Update(loser, tbl, 2, acct(2, "b", 200))
	// Manually undo only the *second* update with a CLR (simulating a
	// crash half-way through rollback).
	undos := loser.TakeUndos() // reverse order: [update2, update1]
	if err := s.ApplyUndo(loser, undos[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}

	s2 := rig.crash(t)
	tbl2 := testTable(t, s2)
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	ses2 := s2.Session(0)
	r1, _ := ses2.Read(s2.Begin(), tbl2, 1)
	r2, _ := ses2.Read(s2.Begin(), tbl2, 2)
	if r1 == nil || r1[2].Int != 1 {
		t.Fatalf("key 1 = %v, want balance 1", r1)
	}
	if r2 == nil || r2[2].Int != 2 {
		t.Fatalf("key 2 = %v, want balance 2", r2)
	}
}

func TestRecoverIdempotentDoubleRecovery(t *testing.T) {
	rig := newRig()
	s := rig.open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	txn := s.Begin()
	_ = ses.Insert(txn, tbl, acct(1, "x", 9))
	_ = s.Commit(txn)

	s2 := rig.crash(t)
	_ = testTable(t, s2)
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	// Crash again immediately and recover a second time.
	s3 := rig.crash(t)
	tbl3 := testTable(t, s3)
	if _, err := s3.Recover(); err != nil {
		t.Fatal(err)
	}
	rec, err := s3.Session(0).Read(s3.Begin(), tbl3, 1)
	if err != nil || rec[2].Int != 9 {
		t.Fatalf("after double recovery: %v %v", rec, err)
	}
}

// TestRecoverRandomized runs random committed/aborted/in-flight work,
// crashes at a random point, recovers, and compares against a model of
// only the committed effects.
func TestRecoverRandomized(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			rig := newRig()
			s := rig.open(t)
			tbl := testTable(t, s)
			ses := s.Session(0)
			model := map[int64]int64{} // committed key -> balance

			for round := 0; round < 40; round++ {
				txn := s.Begin()
				local := map[int64]*int64{} // staged changes, nil = delete
				for op := 0; op < 1+rng.Intn(4); op++ {
					k := int64(rng.Intn(20))
					_, inModel := model[k]
					if staged, ok := local[k]; ok {
						inModel = staged != nil
					}
					if !inModel {
						bal := rng.Int63n(1000)
						if err := ses.Insert(txn, tbl, acct(k, "r", bal)); err != nil {
							t.Fatal(err)
						}
						local[k] = &bal
					} else if rng.Intn(3) == 0 {
						if err := ses.Delete(txn, tbl, k); err != nil {
							t.Fatal(err)
						}
						local[k] = nil
					} else {
						bal := rng.Int63n(1000)
						if err := ses.Update(txn, tbl, k, acct(k, "r", bal)); err != nil {
							t.Fatal(err)
						}
						local[k] = &bal
					}
				}
				switch rng.Intn(3) {
				case 0: // commit
					if err := s.Commit(txn); err != nil {
						t.Fatal(err)
					}
					for k, v := range local {
						if v == nil {
							delete(model, k)
						} else {
							model[k] = *v
						}
					}
				case 1: // rollback
					if err := s.Rollback(txn); err != nil {
						t.Fatal(err)
					}
				case 2: // leave in flight (loser at crash)
					if rng.Intn(2) == 0 {
						_ = s.Log.FlushAll()
					}
					// Occasionally flush dirty pages too (steal).
					if rng.Intn(3) == 0 {
						_ = s.Log.FlushAll()
						_ = s.Pool.FlushAll()
					}
					// Abandon txn: do not commit or roll back, and start
					// fresh state for the next round.
					goto crash
				}
			}
		crash:
			s2 := rig.crash(t)
			tbl2 := testTable(t, s2)
			if _, err := s2.Recover(); err != nil {
				t.Fatal(err)
			}
			ses2 := s2.Session(0)
			for k, want := range model {
				rec, err := ses2.Read(s2.Begin(), tbl2, k)
				if err != nil || rec[2].Int != want {
					t.Fatalf("seed %d key %d: got %v %v, want %d", seed, k, rec, err, want)
				}
			}
			for k := int64(0); k < 20; k++ {
				if _, committed := model[k]; committed {
					continue
				}
				if _, err := ses2.Read(s2.Begin(), tbl2, k); err == nil {
					t.Fatalf("seed %d: uncommitted key %d visible after recovery", seed, k)
				}
			}
		})
	}
}

func TestRecoverLoserWithInsertAndDelete(t *testing.T) {
	rig := newRig()
	s := rig.open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	base := s.Begin()
	_ = ses.Insert(base, tbl, acct(5, "keep", 55))
	_ = s.Commit(base)

	loser := s.Begin()
	_ = ses.Insert(loser, tbl, acct(6, "phantom", 66))
	_ = ses.Delete(loser, tbl, 5)
	_ = s.Log.FlushAll()

	s2 := rig.crash(t)
	tbl2 := testTable(t, s2)
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	ses2 := s2.Session(0)
	rec, err := ses2.Read(s2.Begin(), tbl2, 5)
	if err != nil || rec[2].Int != 55 {
		t.Fatalf("deleted-by-loser record not restored: %v %v", rec, err)
	}
	if _, err := ses2.Read(s2.Begin(), tbl2, 6); !errors.Is(err, ErrNotFound) {
		t.Fatalf("loser insert visible: %v", err)
	}
}
