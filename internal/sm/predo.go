package sm

import (
	"sync"
	"sync/atomic"

	"dora/internal/tuple"
	"dora/internal/wal"
)

// Partition-parallel redo: the paper's thread-to-data principle applied
// to the backward paths. Crash-recovery redo and replica streaming apply
// both replay physical log records whose only ordering requirement is
// PER PAGE — page-LSN idempotence and RedoInsert's slot-allocation
// determinism are per-page invariants, and two records touching distinct
// pages commute. So a single dispatcher scans the log in LSN order and
// fans physical records (KInsert/KUpdate/KDelete/KCLR) out to a pool of
// applier workers sharded by page id (wal.PageKey): each worker drains
// its own FIFO queue, which preserves LSN order within every page while
// distinct pages redo concurrently — each applier exclusively "owns" the
// slice of pages that hash to it, exactly the ownership discipline the
// forward path uses.
//
// Everything with global ordering requirements stays on the dispatcher:
// transaction-resolution records (commit-horizon advancement must not
// outrun a commit's effects), checkpoint attachment maps, page
// attachment (before the page's first task is enqueued), loser undo, and
// — on a live replica — incremental index maintenance, because one key's
// index operations can span pages (an update that relocates a record
// deletes on one page and reinserts on another), so they cannot ride the
// page shard. The dispatcher therefore consumes a COMPLETION stream in
// dispatch (= LSN) order: appliers do the heap work and capture pre-redo
// before-images; the dispatcher finishes each task — index fixes, commit
// horizon, applied-LSN advancement — strictly in order, like a
// reorder buffer.
//
// Failure is fail-stop for the whole pool: the first applier error
// latches, subsequent tasks complete without applying, and the barrier
// reports the first error — callers (recovery, the replica's delivery
// path) treat it exactly like a serial redo error.

// redoTask is one log record in flight through the pool.
type redoTask struct {
	rec *wal.Record
	// oldRec/newRec are decoded on the applier: the pre-redo before image
	// (updates and deletes; nil when the slot was empty or undecodable,
	// matching the serial path's tolerance) and the after image. The
	// dispatcher's in-order completion uses them for index maintenance.
	oldRec tuple.Record
	newRec tuple.Record
	err    error
	// done is guarded by the pool mutex.
	done bool
}

// end returns the end LSN of the task's record.
func (t *redoTask) end() uint64 { return t.rec.LSN + uint64(wal.EncodedSize(t.rec)) }

// redoWorker is one applier: a FIFO queue of tasks for the pages that
// hash to it, drained by a dedicated goroutine.
type redoWorker struct {
	pool *redoPool

	mu     sync.Mutex
	cond   *sync.Cond
	q      []*redoTask
	closed bool

	// depth mirrors len(q) for lock-free monitoring; applied is the end
	// LSN of the last record this applier finished (monitoring only — the
	// authoritative applied horizon is the dispatcher's in-order one).
	depth   atomic.Int64
	applied atomic.Uint64
}

func (w *redoWorker) push(t *redoTask) int {
	w.mu.Lock()
	w.q = append(w.q, t)
	d := len(w.q)
	w.cond.Signal()
	w.mu.Unlock()
	w.depth.Store(int64(d))
	return d
}

func (w *redoWorker) run() {
	defer w.pool.wg.Done()
	for {
		w.mu.Lock()
		for len(w.q) == 0 && !w.closed {
			w.cond.Wait()
		}
		if len(w.q) == 0 {
			w.mu.Unlock()
			return
		}
		t := w.q[0]
		w.q = w.q[1:]
		w.mu.Unlock()
		w.depth.Add(-1)
		p := w.pool
		// Fail-stop: once any applier errored, the rest of the stream is
		// marked done without applying — the pool is poisoned and the
		// barrier surfaces the first error.
		if !p.failed.Load() {
			p.apply(t)
		}
		p.mu.Lock()
		t.done = true
		if t.err != nil && p.err == nil {
			p.err = t.err
			p.failed.Store(true)
		}
		p.cond.Broadcast()
		p.mu.Unlock()
		if t.err == nil {
			w.applied.Store(t.end())
		}
	}
}

// redoPool is the dispatcher-side handle: sharded applier queues plus the
// in-order completion stream. The dispatcher is single-threaded (callers
// serialize on the recovery pass or the replayer's mutex); only the
// completion bookkeeping is shared with appliers, under mu.
type redoPool struct {
	apply   func(*redoTask) // applier-side work; must only touch the record's page
	workers []*redoWorker
	wg      sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond // signaled as tasks complete
	inflight []*redoTask
	head     int // consumed prefix of inflight
	err      error
	failed   atomic.Bool

	maxDepth int64 // high-water applier queue depth (monitoring)

	// Adaptive sizing (setAdaptive): the pool grows or shrinks between
	// barriers from observed queue depth. The window counters are mutated
	// only by the dispatcher thread (dispatch/maybeResize run under the
	// caller's dispatcher lock), so they need no synchronization of their
	// own; resizes is atomic because stats() may race a resize in
	// recovery-style callers.
	adaptive      bool
	minWorkers    int
	maxWorkers    int
	winDispatches int64 // physical tasks dispatched since the last resize decision
	winDepthSum   int64 // sum of post-push queue depths over the window
	resizes       atomic.Int64
}

func newRedoPool(n int, apply func(*redoTask)) *redoPool {
	p := &redoPool{apply: apply}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < n; i++ {
		p.spawnWorker()
	}
	return p
}

func (p *redoPool) spawnWorker() {
	w := &redoWorker{pool: p}
	w.cond = sync.NewCond(&w.mu)
	p.workers = append(p.workers, w)
	p.wg.Add(1)
	go w.run()
}

// setAdaptive arms barrier-point resizing: between [min, max] appliers,
// driven by the queue depth dispatch observes. Call before the first
// dispatch, from the dispatcher thread.
func (p *redoPool) setAdaptive(min, max int) {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	p.adaptive, p.minWorkers, p.maxWorkers = true, min, max
}

// Resize thresholds: average post-push queue depth above depthGrow means
// appliers are the bottleneck (the dispatcher outruns them) — double the
// pool; at or below depthShrink the appliers keep pace with dispatch
// (post-push depth is never below 1: it counts the task just pushed), so
// the fan-out is idle overhead — halve it. The window must hold enough
// samples for the average to mean anything.
const (
	redoDepthGrow    = 8
	redoDepthShrink  = 1
	redoResizeWindow = 64
)

// maybeResize applies the sizing policy. It must only run at a barrier
// point — every dispatched task consumed, all applier queues empty —
// because changing len(workers) remaps pages to appliers, and the
// per-page FIFO guarantee only survives a remap across an empty pool.
// Dispatcher thread only.
func (p *redoPool) maybeResize() {
	if !p.adaptive || p.winDispatches < redoResizeWindow || p.failed.Load() {
		return
	}
	avg := p.winDepthSum / p.winDispatches
	p.winDispatches, p.winDepthSum = 0, 0
	n := len(p.workers)
	switch {
	case avg > redoDepthGrow && n < p.maxWorkers:
		n *= 2
		if n > p.maxWorkers {
			n = p.maxWorkers
		}
	case avg <= redoDepthShrink && n > p.minWorkers:
		n /= 2
		if n < p.minWorkers {
			n = p.minWorkers
		}
	default:
		return
	}
	p.resize(n)
}

// resize grows or shrinks the applier set to n. Caller guarantees the
// pool is drained (see maybeResize); excess workers have empty queues,
// so closing them lets run() return at once (wg tracks the exit — close
// still joins whatever set is live then).
func (p *redoPool) resize(n int) {
	for len(p.workers) > n {
		w := p.workers[len(p.workers)-1]
		p.workers = p.workers[:len(p.workers)-1]
		w.mu.Lock()
		w.closed = true
		w.cond.Broadcast()
		w.mu.Unlock()
	}
	for len(p.workers) < n {
		p.spawnWorker()
	}
	p.resizes.Add(1)
}

// dispatch hands a physical record's task to the applier owning its page.
// Tasks for one page always land on the same worker queue, so per-page
// LSN order is preserved by FIFO; the task also joins the in-order
// completion stream.
func (p *redoPool) dispatch(t *redoTask) {
	w := p.workers[int(uint64(t.rec.Page))%len(p.workers)]
	p.mu.Lock()
	p.inflight = append(p.inflight, t)
	p.mu.Unlock()
	d := int64(w.push(t))
	if d > atomic.LoadInt64(&p.maxDepth) {
		atomic.StoreInt64(&p.maxDepth, d)
	}
	if p.adaptive {
		p.winDispatches++
		p.winDepthSum += d
	}
}

// dispatchLocal appends a task that needs no applier work (transaction
// resolution, checkpoints) to the completion stream, already done — it
// exists so the dispatcher's in-order consumption sees EVERY record in
// LSN order, physical or not.
func (p *redoPool) dispatchLocal(t *redoTask) {
	p.mu.Lock()
	t.done = true
	p.inflight = append(p.inflight, t)
	p.mu.Unlock()
}

// takeReadyLocked pops the completed prefix of the stream (mu held).
func (p *redoPool) takeReadyLocked() []*redoTask {
	lo := p.head
	for p.head < len(p.inflight) && p.inflight[p.head].done {
		p.head++
	}
	batch := p.inflight[lo:p.head]
	if p.head == len(p.inflight) {
		p.inflight = p.inflight[:0]
		p.head = 0
	}
	return batch
}

// drainReady consumes completed head tasks in dispatch (= LSN) order
// without blocking. consume runs with no pool locks held, so it may take
// whatever caller locks it needs (the replayer calls it under rp.mu).
func (p *redoPool) drainReady(consume func(*redoTask) error) error {
	p.mu.Lock()
	batch := p.takeReadyLocked()
	p.mu.Unlock()
	return p.consumeBatch(batch, consume)
}

// barrier blocks until every dispatched task has completed and been
// consumed in order — the epoch boundary recovery places at the end of
// redo and the replica places at the end of every extent (before
// releasing stateMu to readers). Returns the pool's first error.
func (p *redoPool) barrier(consume func(*redoTask) error) error {
	for {
		p.mu.Lock()
		for p.head < len(p.inflight) && !p.inflight[p.head].done {
			p.cond.Wait()
		}
		batch := p.takeReadyLocked()
		empty := p.head == len(p.inflight)
		p.mu.Unlock()
		if err := p.consumeBatch(batch, consume); err != nil {
			return err
		}
		if empty {
			return p.Err()
		}
	}
}

func (p *redoPool) consumeBatch(batch []*redoTask, consume func(*redoTask) error) error {
	for _, t := range batch {
		if t.err != nil {
			return p.Err()
		}
		if consume != nil {
			if err := consume(t); err != nil {
				p.mu.Lock()
				if p.err == nil {
					p.err = err
					p.failed.Store(true)
				}
				p.mu.Unlock()
				return err
			}
		}
	}
	return nil
}

// Err returns the pool's sticky first error (fail-stop latch).
func (p *redoPool) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// close drains and joins the appliers. Callers barrier first; close only
// tears the goroutines down.
func (p *redoPool) close() {
	for _, w := range p.workers {
		w.mu.Lock()
		w.closed = true
		w.cond.Broadcast()
		w.mu.Unlock()
	}
	p.wg.Wait()
}

// RedoApplierStat is one applier's monitoring sample.
type RedoApplierStat struct {
	// AppliedLSN is the end LSN of the last record this applier finished
	// (per-page progress; the transaction-consistent horizon is the
	// dispatcher's).
	AppliedLSN uint64 `json:"applied_lsn"`
	// QueueDepth is the applier's current inbox depth.
	QueueDepth int `json:"queue_depth"`
}

// RedoStats is the redo pool's monitoring view.
type RedoStats struct {
	Workers       int               `json:"workers"`
	MaxQueueDepth int64             `json:"max_queue_depth"`
	Resizes       int64             `json:"resizes,omitempty"` // adaptive grow/shrink events
	Appliers      []RedoApplierStat `json:"appliers,omitempty"`
}

func (p *redoPool) stats() RedoStats {
	st := RedoStats{
		Workers:       len(p.workers),
		MaxQueueDepth: atomic.LoadInt64(&p.maxDepth),
		Resizes:       p.resizes.Load(),
	}
	for _, w := range p.workers {
		st.Appliers = append(st.Appliers, RedoApplierStat{
			AppliedLSN: w.applied.Load(),
			QueueDepth: int(w.depth.Load()),
		})
	}
	return st
}
