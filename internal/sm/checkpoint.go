package sm

import (
	"encoding/binary"
	"fmt"

	"dora/internal/page"
	"dora/internal/wal"
)

// Checkpoint bounds recovery's redo work: it captures a redo point,
// flushes every dirty page, and logs a KCheckpoint record carrying the
// redo point. On restart, redo can skip all records below the last
// checkpoint's redo point — any update logged before it reached disk
// with its page during the flush (the flush waits out in-flight page
// latches on unstamped pages and hardens owner-stamped pages through
// the copy-on-write snapshot ship — a consistent image at a known LSN
// either way — and page LSNs make late redo idempotent anyway).
//
// The checkpoint is fuzzy: transactions keep running while it executes.
// Analysis and undo still scan the whole log, so in-flight transactions
// spanning the checkpoint roll back correctly.
//
// The record's Redo payload carries each table's heap page set at flush
// time. Restart and replica bootstrap normally learn page attachment from
// the physical records themselves, but once the log is truncated those
// records are gone — the checkpoint's attachment map is what lets a
// truncated log still reconstruct which pages belong to which heap.
func (s *SM) Checkpoint() (wal.LSN, error) {
	redoPoint := s.Log.Next()
	if err := s.Pool.FlushAll(); err != nil {
		return 0, err
	}
	lsn := s.Log.Append(&wal.Record{
		Kind: wal.KCheckpoint,
		Key:  int64(redoPoint),
		Redo: s.encodeAttachments(),
	})
	if err := s.Log.Force(lsn); err != nil {
		return 0, err
	}
	// Only a hardened checkpoint may raise the truncation floor.
	for {
		cur := s.lastCkptRedo.Load()
		if cur >= redoPoint || s.lastCkptRedo.CompareAndSwap(cur, redoPoint) {
			break
		}
	}
	return lsn, nil
}

// LastCheckpointRedo returns the redo point of the latest hardened
// checkpoint, or 0 if none has been taken.
func (s *SM) LastCheckpointRedo() uint64 { return s.lastCkptRedo.Load() }

// encodeAttachments serializes every table's heap page set: per table a
// u32 table id, u32 page count, and the u32 page ids.
func (s *SM) encodeAttachments() []byte {
	var out []byte
	for _, tbl := range s.Cat.Tables() {
		pages := tbl.Heap.Pages()
		out = binary.LittleEndian.AppendUint32(out, tbl.ID)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(pages)))
		for _, pid := range pages {
			out = binary.LittleEndian.AppendUint32(out, uint32(pid))
		}
	}
	return out
}

// applyAttachments re-attaches a checkpoint record's page map: every page
// is allocated on the disk view (if needed) and attached to its heap.
func (s *SM) applyAttachments(payload []byte) error {
	for len(payload) > 0 {
		if len(payload) < 8 {
			return fmt.Errorf("sm: short checkpoint attachment map")
		}
		tid := binary.LittleEndian.Uint32(payload)
		n := int(binary.LittleEndian.Uint32(payload[4:]))
		payload = payload[8:]
		if len(payload) < 4*n {
			return fmt.Errorf("sm: short checkpoint attachment map")
		}
		tbl := s.Cat.TableByID(tid)
		if tbl == nil {
			return fmt.Errorf("sm: checkpoint references unknown table %d", tid)
		}
		for i := 0; i < n; i++ {
			pid := page.ID(binary.LittleEndian.Uint32(payload[4*i:]))
			for int(pid) >= s.Disk.NumPages() {
				if _, err := s.Disk.Allocate(); err != nil {
					return err
				}
			}
			tbl.Heap.AttachPage(pid)
		}
		payload = payload[4*n:]
	}
	return nil
}
