package sm

import "dora/internal/wal"

// Checkpoint bounds recovery's redo work: it captures a redo point,
// flushes every dirty page, and logs a KCheckpoint record carrying the
// redo point. On restart, redo can skip all records below the last
// checkpoint's redo point — any update logged before it reached disk
// with its page during the flush (the flush waits out in-flight page
// latches on unstamped pages and hardens owner-stamped pages through
// the copy-on-write snapshot ship — a consistent image at a known LSN
// either way — and page LSNs make late redo idempotent anyway).
//
// The checkpoint is fuzzy: transactions keep running while it executes.
// Analysis and undo still scan the whole log, so in-flight transactions
// spanning the checkpoint roll back correctly.
func (s *SM) Checkpoint() (wal.LSN, error) {
	redoPoint := s.Log.Next()
	if err := s.Pool.FlushAll(); err != nil {
		return 0, err
	}
	lsn := s.Log.Append(&wal.Record{
		Kind: wal.KCheckpoint,
		Key:  int64(redoPoint),
	})
	if err := s.Log.Force(lsn); err != nil {
		return 0, err
	}
	return lsn, nil
}
