package sm

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"dora/internal/buffer"
	"dora/internal/page"
	"dora/internal/tuple"
	"dora/internal/wal"
)

// pageDigest hashes every heap page of every table — catalog order,
// ascending page id, full page bytes — for byte-for-byte end-state
// comparison between recoveries.
func pageDigest(t *testing.T, s *SM) string {
	t.Helper()
	h := sha256.New()
	for _, tbl := range s.Cat.Tables() {
		pids := tbl.Heap.Pages()
		sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
		for _, pid := range pids {
			f, err := s.Pool.Fetch(pid)
			if err != nil {
				t.Fatal(err)
			}
			f.Latch.RLock()
			h.Write(f.Page.Data[:])
			f.Latch.RUnlock()
			s.Pool.Unpin(f, false)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestParallelRecoveryEquivalence crashes a mixed workload (winners,
// losers, inserts/updates/deletes across many pages) and recovers it at
// several applier counts: every recovery must leave byte-identical heap
// pages AND append a byte-identical undo tail (CLRs + end records) to its
// log — serial/parallel end-state equivalence.
func TestParallelRecoveryEquivalence(t *testing.T) {
	store := wal.NewMemStore()
	s, err := Open(Options{Frames: 256, LogStore: store})
	if err != nil {
		t.Fatal(err)
	}
	tbl := testTable(t, s)
	ses := s.Session(0)
	// Winners: enough rows to spread across pages, with updates and
	// deletes so redo exercises every physical kind.
	for g := 0; g < 10; g++ {
		txn := s.Begin()
		for i := int64(0); i < 30; i++ {
			id := int64(g)*30 + i + 1
			if err := ses.Insert(txn, tbl, acct(id, "w", id)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
	mod := s.Begin()
	for id := int64(1); id <= 100; id += 3 {
		if err := ses.Update(mod, tbl, id, acct(id, "u", id*10)); err != nil {
			t.Fatal(err)
		}
	}
	for id := int64(2); id <= 100; id += 7 {
		if err := ses.Delete(mod, tbl, id); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(mod); err != nil {
		t.Fatal(err)
	}
	// Two in-flight losers so undo has work — their CLR order must come
	// out identical across recoveries.
	l1, l2 := s.Begin(), s.Begin()
	_ = ses.Insert(l1, tbl, acct(900, "loser", 0))
	_ = ses.Update(l1, tbl, 10, acct(10, "loser", -1))
	_ = ses.Insert(l2, tbl, acct(901, "loser", 0))
	_ = ses.Delete(l2, tbl, 13)
	if err := s.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}

	var wantPages, wantLog string
	for _, workers := range []int{1, 2, 4, 8} {
		crashed := store.CrashCopy()
		s2, err := Open(Options{Frames: 256, Disk: buffer.NewMemDisk(), LogStore: crashed, RedoWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		tbl2 := testTable(t, s2)
		st, err := s2.Recover()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.Losers != 2 {
			t.Fatalf("workers=%d: losers = %d, want 2", workers, st.Losers)
		}
		pg := pageDigest(t, s2)
		raw, err := crashed.Contents()
		if err != nil {
			t.Fatal(err)
		}
		lg := fmt.Sprintf("%x", sha256.Sum256(raw))
		if workers == 1 {
			wantPages, wantLog = pg, lg
		} else {
			if pg != wantPages {
				t.Fatalf("workers=%d: heap pages diverge from serial recovery", workers)
			}
			if lg != wantLog {
				t.Fatalf("workers=%d: undo log tail diverges from serial recovery", workers)
			}
		}
		// Spot-check semantics on top of the byte equality.
		ses2 := s2.Session(0)
		if rec, err := ses2.Read(s2.Begin(), tbl2, 4); err != nil || rec[2].Int != 40 {
			t.Fatalf("workers=%d: updated key 4: %v %v", workers, rec, err)
		}
		if _, err := ses2.Read(s2.Begin(), tbl2, 900); !errors.Is(err, ErrNotFound) {
			t.Fatalf("workers=%d: loser insert visible: %v", workers, err)
		}
		if rec, err := ses2.Read(s2.Begin(), tbl2, 13); err != nil || rec[1].Str != "u" {
			t.Fatalf("workers=%d: loser delete not undone: %v %v", workers, rec, err)
		}
	}
}

// TestParallelReplayFailStop poisons the applier pool with a physically
// impossible record (update of a slot that does not exist): the first
// applier error must latch, surface at the extent barrier, and stay
// sticky for every later barrier — fail-stop for the whole pool.
func TestParallelReplayFailStop(t *testing.T) {
	s, err := Open(Options{Frames: 64, RedoWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tbl := testTable(t, s)
	rp := NewReplayer(s)
	defer rp.Close()

	img := tuple.Encode(acct(1, "a", 1))
	feed := []*wal.Record{
		{LSN: 0, TxnID: 1, Kind: wal.KInsert, Table: tbl.ID, Page: 0, Slot: 0, Key: 1, Redo: img},
		{LSN: 100, TxnID: 1, Kind: wal.KCommit},
		// Slot 99 was never inserted: the applier's RedoUpdate must error.
		{LSN: 200, TxnID: 2, Kind: wal.KUpdate, Table: tbl.ID, Page: 0, Slot: 99, Key: 1, Redo: img},
		{LSN: 300, TxnID: 2, Kind: wal.KCommit},
	}
	var applyErr error
	for _, r := range feed {
		if applyErr = rp.Apply(r); applyErr != nil {
			break
		}
	}
	if applyErr == nil {
		applyErr = rp.Sync()
	}
	if applyErr == nil {
		t.Fatal("poisoned stream applied without error")
	}
	if err := rp.Sync(); err == nil {
		t.Fatal("pool error not sticky across barriers")
	}
}

// redoRec fabricates a physical record for pool-level tests; only Page
// (sharding) and a well-formed encoding (end-LSN accounting) matter.
func redoRec(i int) *redoTask {
	return &redoTask{rec: &wal.Record{LSN: wal.LSN(1000 + i*100), TxnID: 1, Kind: wal.KInsert, Page: page.ID(i)}}
}

// TestAdaptiveRedoGrowShrink drives the pool-level sizing policy through
// a full cycle: a backlogged window doubles the applier set (up to the
// cap), an idle window halves it (down to the floor), and a window with
// too few samples decides nothing.
func TestAdaptiveRedoGrowShrink(t *testing.T) {
	gate := make(chan struct{})
	p := newRedoPool(2, func(t *redoTask) { <-gate })
	p.setAdaptive(1, 8)
	defer p.close()

	// Backlogged: appliers parked on the gate, so post-push depth climbs
	// far past the grow threshold across the window.
	for i := 0; i < 2*redoResizeWindow; i++ {
		p.dispatch(redoRec(i))
	}
	close(gate)
	if err := p.barrier(nil); err != nil {
		t.Fatal(err)
	}
	p.maybeResize()
	if got := len(p.workers); got != 4 {
		t.Fatalf("after backlogged window: %d workers, want 4", got)
	}

	// Idle: a barrier between dispatches keeps every queue empty, so each
	// post-push depth is exactly 1 — at the shrink threshold.
	idleWindow := func() {
		t.Helper()
		for i := 0; i < redoResizeWindow; i++ {
			p.dispatch(redoRec(i))
			if err := p.barrier(nil); err != nil {
				t.Fatal(err)
			}
		}
		p.maybeResize()
	}
	idleWindow()
	if got := len(p.workers); got != 2 {
		t.Fatalf("after idle window: %d workers, want 2", got)
	}
	idleWindow()
	if got := len(p.workers); got != 1 {
		t.Fatalf("after second idle window: %d workers, want 1", got)
	}
	idleWindow() // at the floor: no further shrink
	if got := len(p.workers); got != 1 {
		t.Fatalf("below floor: %d workers, want 1", got)
	}
	if got := p.stats().Resizes; got != 3 {
		t.Fatalf("resizes = %d, want 3", got)
	}

	// Too few samples: an undersized window must not decide.
	for i := 0; i < redoResizeWindow/2; i++ {
		p.dispatch(redoRec(i))
	}
	if err := p.barrier(nil); err != nil {
		t.Fatal(err)
	}
	p.maybeResize()
	if got := len(p.workers); got != 1 {
		t.Fatalf("undersized window resized: %d workers, want 1", got)
	}
}

// TestAdaptiveRedoCap verifies growth saturates at the configured cap.
func TestAdaptiveRedoCap(t *testing.T) {
	p := newRedoPool(2, func(t *redoTask) {})
	p.setAdaptive(1, 3)
	defer p.close()
	// Force a grow decision regardless of scheduling: feed the window
	// counters directly (they are dispatcher-state, and this test is the
	// dispatcher).
	p.winDispatches = redoResizeWindow
	p.winDepthSum = redoResizeWindow * (redoDepthGrow + 1)
	p.maybeResize()
	if got := len(p.workers); got != 3 {
		t.Fatalf("growth past cap: %d workers, want 3", got)
	}
}

// TestAdaptiveRedoCorrectAcrossResize replays the same stream through an
// adaptively resizing pool and a serial replayer; the resize barrier
// discipline must keep per-page order, so both must apply identically.
func TestAdaptiveRedoCorrectAcrossResize(t *testing.T) {
	gate := make(chan struct{})
	var applied []uint64
	var mu sync.Mutex
	p := newRedoPool(2, func(t *redoTask) {
		<-gate
		mu.Lock()
		applied = append(applied, uint64(t.rec.LSN))
		mu.Unlock()
	})
	p.setAdaptive(1, 8)
	defer p.close()

	// Phase 1: backlog on few pages so per-worker FIFOs hold multiple
	// records per page, then grow.
	n := 0
	for i := 0; i < 2*redoResizeWindow; i++ {
		task := redoRec(i % 4) // 4 pages → contended queues
		task.rec.LSN = wal.LSN(1000 + n*100)
		n++
		p.dispatch(task)
	}
	close(gate)
	var order []uint64
	consume := func(t *redoTask) error {
		order = append(order, uint64(t.rec.LSN))
		return nil
	}
	if err := p.barrier(consume); err != nil {
		t.Fatal(err)
	}
	p.maybeResize()
	if len(p.workers) <= 2 {
		t.Fatalf("expected growth, still %d workers", len(p.workers))
	}
	// Phase 2: same pages land on remapped appliers after the resize.
	for i := 0; i < redoResizeWindow; i++ {
		task := redoRec(i % 4)
		task.rec.LSN = wal.LSN(1000 + n*100)
		n++
		p.dispatch(task)
	}
	if err := p.barrier(consume); err != nil {
		t.Fatal(err)
	}
	// The completion stream must be in dispatch order, gap-free.
	if len(order) != n {
		t.Fatalf("consumed %d tasks, want %d", len(order), n)
	}
	for i, lsn := range order {
		if lsn != uint64(1000+i*100) {
			t.Fatalf("completion %d out of order: lsn %d", i, lsn)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(applied) != n {
		t.Fatalf("applied %d tasks, want %d", len(applied), n)
	}
}
