// Package sm is the storage-manager facade — the role Shore-MT plays for
// the paper's prototype. It wires the buffer pool, heaps, B+tree access
// methods, write-ahead log and crash recovery into a single substrate
// that both execution engines run on.
//
// The storage manager is deliberately lock-free at this layer: it
// provides atomic, latched, logged *operations* (read / insert / update /
// delete by key), while *isolation* between transactions is the engine's
// job — hierarchical locks in the conventional engine, partition
// ownership plus local lock tables in DORA. This split mirrors the paper:
// DORA "bypasses the centralized lock manager" but reuses everything else
// in the storage manager unchanged.
package sm

import (
	"errors"
	"fmt"

	"dora/internal/btree"
	"dora/internal/buffer"
	"dora/internal/catalog"
	"dora/internal/metrics"
	"dora/internal/storage"
	"dora/internal/tuple"
	"dora/internal/tx"
	"dora/internal/wal"
)

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("sm: key not found")

// ErrDuplicate reports a primary-key violation.
var ErrDuplicate = errors.New("sm: duplicate key")

// Options configures Open.
type Options struct {
	// Frames is the buffer-pool size in pages (default 4096).
	Frames int
	// Disk backs the pages (default: in-memory).
	Disk buffer.Disk
	// LogStore backs the WAL (default: in-memory).
	LogStore wal.Store
	// CS receives critical-section accounting (optional).
	CS *metrics.CriticalSectionStats
	// Tracer receives record-access events (optional, experiment E1).
	Tracer *metrics.AccessTracer
}

// SM is an open storage manager instance.
type SM struct {
	Disk   buffer.Disk
	Pool   *buffer.Pool
	Log    *wal.Log
	Cat    *catalog.Catalog
	CS     *metrics.CriticalSectionStats
	Tracer *metrics.AccessTracer

	ids tx.IDGen

	// Commits and Aborts count finished transactions.
	Commits metrics.Counter
	Aborts  metrics.Counter
}

// Open creates a storage manager over the given (or default in-memory)
// disk and log store. Call Recover afterwards when reopening after a
// crash.
func Open(opt Options) (*SM, error) {
	if opt.Frames <= 0 {
		opt.Frames = 4096
	}
	if opt.Disk == nil {
		opt.Disk = buffer.NewMemDisk()
	}
	if opt.LogStore == nil {
		opt.LogStore = wal.NewMemStore()
	}
	log, err := wal.New(opt.LogStore, opt.CS)
	if err != nil {
		return nil, err
	}
	pool := buffer.NewPool(opt.Frames, opt.Disk, log)
	if opt.CS != nil {
		pool.SetStats(opt.CS)
	}
	return &SM{
		Disk:   opt.Disk,
		Pool:   pool,
		Log:    log,
		Cat:    catalog.New(),
		CS:     opt.CS,
		Tracer: opt.Tracer,
	}, nil
}

// IndexSpec declares a secondary index in a TableSpec.
type IndexSpec struct {
	Name   string
	Fields []string
	Key    catalog.KeyFunc
}

// TableSpec declares a table for CreateTable.
type TableSpec struct {
	Name   string
	Fields []catalog.Field
	// KeyFields names the primary-key columns (metadata for the designer).
	KeyFields []string
	// Key extracts the packed primary key from a record.
	Key catalog.KeyFunc
	// PartitionField is the column DORA initially routes on (defaults to
	// the first key field).
	PartitionField string
	Secondaries    []IndexSpec
}

// CreateTable registers a new table with its heap and indexes.
func (s *SM) CreateTable(spec TableSpec) (*catalog.Table, error) {
	if spec.Key == nil {
		return nil, fmt.Errorf("sm: table %q needs a primary key function", spec.Name)
	}
	pf := spec.PartitionField
	if pf == "" && len(spec.KeyFields) > 0 {
		pf = spec.KeyFields[0]
	}
	t := &catalog.Table{
		Name:   spec.Name,
		Fields: spec.Fields,
		Heap:   storage.NewHeap(s.Pool),
		Primary: &catalog.Index{
			Name:   spec.Name + "_pk",
			Fields: spec.KeyFields,
			Key:    spec.Key,
			Tree:   btree.New(s.CS),
		},
	}
	t.SetPartitionField(pf)
	for _, is := range spec.Secondaries {
		t.Secondaries = append(t.Secondaries, &catalog.Index{
			Name:   is.Name,
			Fields: is.Fields,
			Key:    is.Key,
			Tree:   btree.New(s.CS),
		})
	}
	return s.Cat.AddTable(t)
}

// Begin starts a transaction.
func (s *SM) Begin() *tx.Txn { return s.ids.NewTxn() }

// Session returns an access handle tagged with a worker id for the
// access tracer; engines create one per worker thread.
func (s *SM) Session(worker int) *Session { return &Session{sm: s, worker: worker} }

// Commit makes t durable: a commit record is appended and the log forced
// (group commit batches concurrent forcers), then an end record written.
func (s *SM) Commit(t *tx.Txn) error {
	if t.LastLSN() == 0 {
		// Read-only: nothing to force.
		t.SetStatus(tx.Committed)
		s.Commits.Inc()
		return nil
	}
	lsn := t.Chain(func(prev uint64) uint64 {
		return s.Log.Append(&wal.Record{Kind: wal.KCommit, TxnID: t.ID, PrevLSN: prev})
	})
	if err := s.Log.Force(lsn); err != nil {
		return err
	}
	t.Chain(func(prev uint64) uint64 {
		return s.Log.Append(&wal.Record{Kind: wal.KEnd, TxnID: t.ID, PrevLSN: prev})
	})
	t.SetStatus(tx.Committed)
	s.Commits.Inc()
	return nil
}

// Rollback undoes every operation of t (in reverse), logging CLRs, and
// marks it aborted. The conventional engine calls this directly; DORA
// routes the per-entry ApplyUndo calls through the owning partitions and
// then calls FinishRollback.
func (s *SM) Rollback(t *tx.Txn) error {
	if t.LastLSN() != 0 {
		t.Chain(func(prev uint64) uint64 {
			return s.Log.Append(&wal.Record{Kind: wal.KAbort, TxnID: t.ID, PrevLSN: prev})
		})
	}
	for _, u := range t.TakeUndos() {
		if err := s.ApplyUndo(t, u); err != nil {
			return fmt.Errorf("sm: rollback txn %d: %w", t.ID, err)
		}
	}
	return s.FinishRollback(t)
}

// FinishRollback logs the end record after all undo entries have been
// applied (by Rollback, or by DORA's partition-routed compensation).
func (s *SM) FinishRollback(t *tx.Txn) error {
	if t.LastLSN() != 0 {
		t.Chain(func(prev uint64) uint64 {
			return s.Log.Append(&wal.Record{Kind: wal.KEnd, TxnID: t.ID, PrevLSN: prev})
		})
	}
	t.SetStatus(tx.Aborted)
	s.Aborts.Inc()
	return nil
}

// ApplyUndo compensates one logical undo entry, logging a CLR. Exposed so
// the DORA engine can execute compensation on the partition that owns the
// data (thread-to-data is preserved under rollback).
func (s *SM) ApplyUndo(t *tx.Txn, u tx.Undo) error {
	tbl := s.Cat.TableByID(u.Table)
	if tbl == nil {
		return fmt.Errorf("sm: undo references unknown table %d", u.Table)
	}
	switch u.Kind {
	case tx.UInsert:
		// Compensate an insert: remove the record and its index entries.
		img, err := tbl.Heap.Get(u.RID)
		if err != nil {
			return err
		}
		rec, err := tuple.Decode(img)
		if err != nil {
			return err
		}
		err = tbl.Heap.DeleteWith(u.RID, func(before []byte) uint64 {
			return t.Chain(func(prev uint64) uint64 {
				return s.Log.Append(&wal.Record{
					Kind: wal.KCLR, Sub: wal.KDelete, TxnID: t.ID, PrevLSN: prev,
					UndoNext: u.PrevLSN, Table: u.Table,
					Page: u.RID.Page, Slot: u.RID.Slot, Key: u.Key,
				})
			})
		})
		if err != nil {
			return err
		}
		tbl.Primary.Tree.Delete(u.Key)
		for _, ix := range tbl.Secondaries {
			ix.Tree.Delete(ix.Key(rec))
		}
		return nil

	case tx.UUpdate:
		// Restore the before image; fix secondary entries if keys moved.
		curImg, err := tbl.Heap.Get(u.RID)
		if err != nil {
			return err
		}
		cur, err := tuple.Decode(curImg)
		if err != nil {
			return err
		}
		old, err := tuple.Decode(u.Before)
		if err != nil {
			return err
		}
		err = tbl.Heap.UpdateWith(u.RID, u.Before, func(before []byte) uint64 {
			return t.Chain(func(prev uint64) uint64 {
				return s.Log.Append(&wal.Record{
					Kind: wal.KCLR, Sub: wal.KUpdate, TxnID: t.ID, PrevLSN: prev,
					UndoNext: u.PrevLSN, Table: u.Table,
					Page: u.RID.Page, Slot: u.RID.Slot, Key: u.Key,
					Redo: u.Before,
				})
			})
		})
		if err != nil {
			return err
		}
		for _, ix := range tbl.Secondaries {
			ok, nk := ix.Key(cur), ix.Key(old)
			if ok != nk {
				ix.Tree.Delete(ok)
				_ = ix.Tree.Put(nk, u.RID.Pack())
			}
		}
		return nil

	case tx.UDelete:
		// Re-insert the deleted record (possibly at a new RID).
		old, err := tuple.Decode(u.Before)
		if err != nil {
			return err
		}
		rid, err := tbl.Heap.InsertWith(u.Before, func(rid storage.RID) uint64 {
			return t.Chain(func(prev uint64) uint64 {
				return s.Log.Append(&wal.Record{
					Kind: wal.KCLR, Sub: wal.KInsert, TxnID: t.ID, PrevLSN: prev,
					UndoNext: u.PrevLSN, Table: u.Table,
					Page: rid.Page, Slot: rid.Slot, Key: u.Key,
					Redo: u.Before,
				})
			})
		})
		if err != nil {
			return err
		}
		if err := tbl.Primary.Tree.Put(u.Key, rid.Pack()); err != nil {
			return err
		}
		for _, ix := range tbl.Secondaries {
			_ = ix.Tree.Put(ix.Key(old), rid.Pack())
		}
		return nil
	}
	return fmt.Errorf("sm: unknown undo kind %d", u.Kind)
}

// SetTxnIDFloor ensures future transaction ids exceed floor (recovery).
func (s *SM) SetTxnIDFloor(floor uint64) { s.ids.EnsureAtLeast(floor) }

// Close flushes dirty pages and the log.
func (s *SM) Close() error {
	if err := s.Log.FlushAll(); err != nil {
		return err
	}
	return s.Pool.FlushAll()
}
