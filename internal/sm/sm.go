// Package sm is the storage-manager facade — the role Shore-MT plays for
// the paper's prototype. It wires the buffer pool, heaps, B+tree access
// methods, write-ahead log and crash recovery into a single substrate
// that both execution engines run on.
//
// The storage manager is deliberately lock-free at this layer: it
// provides atomic, latched, logged *operations* (read / insert / update /
// delete by key), while *isolation* between transactions is the engine's
// job — hierarchical locks in the conventional engine, partition
// ownership plus local lock tables in DORA. This split mirrors the paper:
// DORA "bypasses the centralized lock manager" but reuses everything else
// in the storage manager unchanged.
package sm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dora/internal/btree"
	"dora/internal/buffer"
	"dora/internal/catalog"
	"dora/internal/metrics"
	"dora/internal/storage"
	"dora/internal/trace"
	"dora/internal/tuple"
	"dora/internal/tx"
	"dora/internal/wal"
	"dora/internal/wal/clog"
)

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("sm: key not found")

// ErrDuplicate reports a primary-key violation.
var ErrDuplicate = errors.New("sm: duplicate key")

// Options configures Open.
type Options struct {
	// Frames is the buffer-pool size in pages (default 4096).
	Frames int
	// Disk backs the pages (default: in-memory).
	Disk buffer.Disk
	// LogStore backs the WAL (default: in-memory).
	LogStore wal.Store
	// LegacyLog selects the original single-mutex log manager instead of
	// the consolidation-array one (comparison experiments, E11).
	LegacyLog bool
	// Log, when non-nil, is used as the log manager directly and LogStore
	// / LegacyLog are ignored. Replication injects a replica's read-only
	// delivered-stream manager this way (internal/repl).
	Log wal.Manager
	// CS receives critical-section accounting (optional).
	CS *metrics.CriticalSectionStats
	// Tracer receives record-access events (optional, experiment E1).
	Tracer *metrics.AccessTracer
	// RedoWorkers selects partition-parallel redo for the backward paths:
	// restart recovery (Recover) and replica streaming apply (Replayer)
	// fan physical records out to this many applier workers sharded by
	// page id. 0 or 1 keeps the classic serial redo.
	RedoWorkers int
	// AdaptiveRedo lets the parallel-redo pool grow and shrink between
	// extent barriers from observed per-applier queue depth (RedoWorkers
	// becomes the starting size).
	AdaptiveRedo bool
	// Spans, when non-nil, is the end-to-end latency tracer: the commit
	// pipeline (log append, flush wait, ack wait) records spans for
	// sampled transactions, and the clog log manager records its
	// reserve/fill stages at the same sampling rate.
	Spans *trace.Tracer
}

// SM is an open storage manager instance.
type SM struct {
	Disk   buffer.Disk
	Pool   *buffer.Pool
	Log    wal.Manager
	Cat    *catalog.Catalog
	CS     *metrics.CriticalSectionStats
	Tracer *metrics.AccessTracer

	ids tx.IDGen

	// lastCommit is the highest commit-record LSN assigned so far. Under
	// early lock release a read-only transaction may have observed writes
	// whose commit record is not yet durable; acknowledging it must wait
	// for this horizon (the ELR read-only caveat). On a replica it is
	// advanced by replay (NoteCommitLSN) — the replayed-commit horizon.
	lastCommit atomic.Uint64

	// commitGate, when installed, interposes between a commit record's
	// local durability and the transaction's completion: semi-sync
	// replication holds the acknowledgement here until enough replicas
	// acked the commit LSN (internal/repl.Shipper.Gate).
	commitGate atomic.Pointer[CommitGate]

	// activeMu/active track in-flight transactions so the log-truncation
	// horizon can retain the oldest active transaction's chain.
	activeMu sync.Mutex
	active   map[*tx.Txn]struct{}

	// lastCkptRedo is the redo point of the latest hardened checkpoint —
	// the analysis/redo floor a truncated log must preserve.
	lastCkptRedo atomic.Uint64

	// redoWorkers is Options.RedoWorkers: the applier fan-out of the
	// partition-parallel redo pipeline (0/1 = serial); adaptiveRedo
	// enables queue-depth-driven pool resizing between extent barriers.
	redoWorkers  int
	adaptiveRedo bool

	// spans is Options.Spans: the end-to-end latency tracer (nil = off).
	spans *trace.Tracer

	// Commits and Aborts count finished transactions.
	Commits metrics.Counter
	Aborts  metrics.Counter
}

// CommitGate delays a commit acknowledgement past local durability: it is
// called with the hardened commit-record LSN and must invoke done exactly
// once when the configured replication rule is satisfied (immediately,
// for async replication).
type CommitGate func(lsn uint64, done func(error))

// SetCommitGate installs (or, with nil, removes) the commit gate. Commits
// in flight keep whichever gate they loaded.
func (s *SM) SetCommitGate(g CommitGate) {
	if g == nil {
		s.commitGate.Store(nil)
		return
	}
	s.commitGate.Store(&g)
}

// Open creates a storage manager over the given (or default in-memory)
// disk and log store. Call Recover afterwards when reopening after a
// crash.
func Open(opt Options) (*SM, error) {
	if opt.Frames <= 0 {
		opt.Frames = 4096
	}
	if opt.Disk == nil {
		opt.Disk = buffer.NewMemDisk()
	}
	if opt.LogStore == nil {
		opt.LogStore = wal.NewMemStore()
	}
	var log wal.Manager
	var err error
	switch {
	case opt.Log != nil:
		log = opt.Log
	case opt.LegacyLog:
		log, err = wal.New(opt.LogStore, opt.CS)
	default:
		log, err = clog.New(opt.LogStore, opt.CS)
	}
	if err != nil {
		return nil, err
	}
	pool := buffer.NewPool(opt.Frames, opt.Disk, log)
	if opt.CS != nil {
		pool.SetStats(opt.CS)
	}
	if cl, ok := log.(*clog.Log); ok && opt.Spans != nil {
		cl.SetTracer(opt.Spans)
	}
	return &SM{
		Disk:         opt.Disk,
		Pool:         pool,
		Log:          log,
		Cat:          catalog.New(),
		CS:           opt.CS,
		Tracer:       opt.Tracer,
		active:       make(map[*tx.Txn]struct{}),
		redoWorkers:  opt.RedoWorkers,
		adaptiveRedo: opt.AdaptiveRedo,
		spans:        opt.Spans,
	}, nil
}

// RedoWorkers returns the configured applier fan-out of the partition-
// parallel redo pipeline (0/1 = serial).
func (s *SM) RedoWorkers() int { return s.redoWorkers }

// AdoptLog swaps the storage manager's log manager and rewires the buffer
// pool's write-ahead rule to it. The caller must quiesce appenders first;
// replication uses it to flip a replica between its read-only delivered-
// stream manager and an appendable one at promotion.
func (s *SM) AdoptLog(m wal.Manager) {
	s.Log = m
	s.Pool.SetLogForcer(m)
}

// LastCommitLSN returns the highest commit-record LSN assigned so far —
// on a replica, the replayed-commit horizon (staleness accounting).
func (s *SM) LastCommitLSN() uint64 { return s.lastCommit.Load() }

// NoteCommitLSN advances the commit horizon to lsn if it is higher;
// replication's replay path calls it for every replayed commit record.
func (s *SM) NoteCommitLSN(lsn uint64) {
	for {
		cur := s.lastCommit.Load()
		if cur >= lsn || s.lastCommit.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// register adds t to the active-transaction registry.
func (s *SM) register(t *tx.Txn) {
	s.activeMu.Lock()
	s.active[t] = struct{}{}
	s.activeMu.Unlock()
}

// deregister removes t from the active-transaction registry; called once
// the transaction can no longer pin the truncation horizon.
func (s *SM) deregister(t *tx.Txn) {
	s.activeMu.Lock()
	delete(s.active, t)
	s.activeMu.Unlock()
}

// OldestActiveLSN returns the lowest first-record LSN among in-flight
// transactions, or 0 when none has logged anything.
func (s *SM) OldestActiveLSN() uint64 {
	s.activeMu.Lock()
	defer s.activeMu.Unlock()
	oldest := uint64(0)
	for t := range s.active {
		if f := t.FirstLSN(); f != 0 && (oldest == 0 || f < oldest) {
			oldest = f
		}
	}
	return oldest
}

// IndexSpec declares a secondary index in a TableSpec.
type IndexSpec struct {
	Name   string
	Fields []string
	Key    catalog.KeyFunc
	// RouteRange, when non-nil, maps an interval of the table's
	// partitioning-field values to the inclusive interval of this index's
	// keys — the declaration that makes the index physiologically
	// partitionable (it gets a per-partition subtree tree that DORA
	// claims per worker; see internal/btree's PartitionedTree).
	RouteRange func(routeLo, routeHi int64) (keyLo, keyHi int64)
}

// TableSpec declares a table for CreateTable.
type TableSpec struct {
	Name   string
	Fields []catalog.Field
	// KeyFields names the primary-key columns (metadata for the designer).
	KeyFields []string
	// Key extracts the packed primary key from a record.
	Key catalog.KeyFunc
	// PartitionField is the column DORA initially routes on (defaults to
	// the first key field).
	PartitionField string
	// RouteRange maps partitioning-field intervals to primary-key
	// intervals (see IndexSpec.RouteRange). When nil and the primary key
	// is exactly the partitioning field, the identity mapping is assumed
	// and the primary index is provisioned partitioned automatically.
	RouteRange  func(routeLo, routeHi int64) (keyLo, keyHi int64)
	Secondaries []IndexSpec
	// FieldMaps declares interval bijections between routable fields, so
	// indexes stay claimable after re-partitioning onto a field their
	// RouteRange was not declared for (see catalog.Table.RouteFor).
	FieldMaps []catalog.FieldMap
}

// newIndexTree provisions an index structure: partitioned when the index
// is declared routable on the partitioning field, shared latched
// otherwise. Also used by recovery to rebuild indexes with their original
// shape.
func newIndexTree(cs *metrics.CriticalSectionStats, partitioned bool) btree.AccessMethod {
	if partitioned {
		return btree.NewPartitioned(cs)
	}
	return btree.New(cs)
}

// CreateTable registers a new table with its heap and indexes.
func (s *SM) CreateTable(spec TableSpec) (*catalog.Table, error) {
	if spec.Key == nil {
		return nil, fmt.Errorf("sm: table %q needs a primary key function", spec.Name)
	}
	pf := spec.PartitionField
	if pf == "" && len(spec.KeyFields) > 0 {
		pf = spec.KeyFields[0]
	}
	// A primary key that IS the partitioning field partitions trivially.
	if spec.RouteRange == nil && pf != "" && len(spec.KeyFields) == 1 && spec.KeyFields[0] == pf {
		spec.RouteRange = func(lo, hi int64) (int64, int64) { return lo, hi }
	}
	t := &catalog.Table{
		Name:      spec.Name,
		Fields:    spec.Fields,
		FieldMaps: spec.FieldMaps,
		Heap:      storage.NewHeap(s.Pool),
		Primary: &catalog.Index{
			Name:       spec.Name + "_pk",
			Fields:     spec.KeyFields,
			Key:        spec.Key,
			Tree:       newIndexTree(s.CS, spec.RouteRange != nil),
			RouteRange: spec.RouteRange,
			RouteField: pf,
		},
	}
	t.SetPartitionField(pf)
	for _, is := range spec.Secondaries {
		t.Secondaries = append(t.Secondaries, &catalog.Index{
			Name:       is.Name,
			Fields:     is.Fields,
			Key:        is.Key,
			Tree:       newIndexTree(s.CS, is.RouteRange != nil),
			RouteRange: is.RouteRange,
			RouteField: pf,
		})
	}
	return s.Cat.AddTable(t)
}

// Begin starts a transaction.
func (s *SM) Begin() *tx.Txn {
	t := s.ids.NewTxn()
	s.register(t)
	return t
}

// Session returns an access handle tagged with a worker id for the
// access tracer; engines create one per worker thread.
func (s *SM) Session(worker int) *Session { return &Session{sm: s, worker: worker} }

// OwnedSession returns a session additionally carrying an access-path
// ownership token: index operations it performs take the latch-free path
// through partitioned-subtree ranges claimed for that token. Only DORA
// partition workers create these — the token, not the worker id, is what
// the partitioned trees trust.
func (s *SM) OwnedSession(worker int, owner *btree.Owner) *Session {
	return &Session{sm: s, worker: worker, owner: owner}
}

// Commit makes t durable: a commit record is appended and the log forced
// (group commit batches concurrent forcers), then an end record written.
func (s *SM) Commit(t *tx.Txn) error {
	ch := make(chan error, 1)
	s.CommitAsync(t, func(err error) { ch <- err })
	return <-ch
}

// CommitAsync appends t's commit record and schedules the rest of commit
// — end record, status flip, durability notification — for when the log
// hardens it. done is invoked exactly once: inline if the log manager only
// supports synchronous forces (or t is read-only), otherwise from the
// flush daemon (flush pipelining: the worker never blocks on the sync).
//
// When CommitAsync returns, t's commit LSN is assigned, and engines may
// release t's locks immediately (early lock release). That is safe
// because the log hardens in LSN order: any transaction that read t's
// writes logs its own commit record after t's, so it cannot become
// durable — and its client cannot be acknowledged — before t is.
func (s *SM) CommitAsync(t *tx.Txn, done func(error)) {
	if t.LastLSN() == 0 {
		s.commitReadOnly(t, done)
		return
	}
	tt := t.Trace
	var appendAt time.Time
	if tt != nil {
		appendAt = time.Now()
	}
	lsn := t.Chain(func(prev uint64) uint64 {
		return s.Log.Append(&wal.Record{Kind: wal.KCommit, TxnID: t.ID, PrevLSN: prev})
	})
	if tt != nil {
		tt.Span(trace.StageLogAppend, -1, appendAt, time.Since(appendAt))
	}
	for {
		cur := s.lastCommit.Load()
		if cur >= lsn || s.lastCommit.CompareAndSwap(cur, lsn) {
			break
		}
	}
	finish := func(err error) {
		s.deregister(t)
		if err != nil {
			done(err)
			return
		}
		t.Chain(func(prev uint64) uint64 {
			return s.Log.Append(&wal.Record{Kind: wal.KEnd, TxnID: t.ID, PrevLSN: prev})
		})
		t.SetStatus(tx.Committed)
		s.Commits.Inc()
		done(nil)
	}
	complete := finish
	if gp := s.commitGate.Load(); gp != nil {
		gate := *gp
		// The gate runs between local durability and completion: the
		// commit record hardened here, but the acknowledgement (and the
		// end record) wait for the replication rule.
		complete = func(err error) {
			if err != nil {
				finish(err)
				return
			}
			if tt == nil {
				gate(lsn, finish)
				return
			}
			gateAt := time.Now()
			gate(lsn, func(err error) {
				tt.Span(trace.StageAckWait, -1, gateAt, time.Since(gateAt))
				finish(err)
			})
		}
	}
	if af, ok := s.Log.(wal.AsyncForcer); ok {
		if tt != nil {
			// The flush-wait span runs from the force request to the
			// flush daemon hardening the commit LSN; the ack-wait span
			// (inside complete) starts only after it ends.
			flushAt := time.Now()
			inner := complete
			complete = func(err error) {
				tt.Span(trace.StageFlushWait, -1, flushAt, time.Since(flushAt))
				inner(err)
			}
		}
		af.ForceAsync(lsn, complete)
		return
	}
	complete(s.Log.Force(lsn))
}

// commitReadOnly completes a transaction that wrote nothing. With a
// synchronous log manager the locks of every transaction it read from
// were released only after durability, so it completes immediately. With
// an asynchronous one, early lock release means it may have observed
// writes whose commit records are still in flight — it must not be
// acknowledged before the highest assigned commit LSN hardens, or a
// crash could erase state a client was told it read.
func (s *SM) commitReadOnly(t *tx.Txn, done func(error)) {
	finish := func(err error) {
		s.deregister(t)
		if err == nil {
			t.SetStatus(tx.Committed)
			s.Commits.Inc()
		}
		done(err)
	}
	if af, ok := s.Log.(wal.AsyncForcer); ok {
		if target := s.lastCommit.Load(); target != 0 && s.Log.Durable() <= target {
			af.ForceAsync(target, finish)
			return
		}
	}
	finish(nil)
}

// Rollback undoes every operation of t (in reverse), logging CLRs, and
// marks it aborted. The conventional engine calls this directly; DORA
// routes the per-entry ApplyUndo calls through the owning partitions and
// then calls FinishRollback.
func (s *SM) Rollback(t *tx.Txn) error { return s.RollbackAs(nil, t) }

// RollbackAs is Rollback for a caller already executing ON an owning
// worker's thread (background maintenance): compensation for keys that
// token owns runs inline instead of shipping — a ship from the owner's
// own thread to its own inbox would wait on itself forever.
func (s *SM) RollbackAs(caller *btree.Owner, t *tx.Txn) error {
	if t.LastLSN() != 0 {
		t.Chain(func(prev uint64) uint64 {
			return s.Log.Append(&wal.Record{Kind: wal.KAbort, TxnID: t.ID, PrevLSN: prev})
		})
	}
	for _, u := range t.TakeUndos() {
		if err := s.ApplyUndoAs(caller, t, u); err != nil {
			return fmt.Errorf("sm: rollback txn %d: %w", t.ID, err)
		}
	}
	return s.FinishRollback(t)
}

// FinishRollback logs the end record after all undo entries have been
// applied (by Rollback, or by DORA's partition-routed compensation).
func (s *SM) FinishRollback(t *tx.Txn) error {
	if t.LastLSN() != 0 {
		t.Chain(func(prev uint64) uint64 {
			return s.Log.Append(&wal.Record{Kind: wal.KEnd, TxnID: t.ID, PrevLSN: prev})
		})
	}
	t.SetStatus(tx.Aborted)
	s.deregister(t)
	s.Aborts.Inc()
	return nil
}

// ApplyUndo compensates one logical undo entry, logging a CLR. Exposed so
// the DORA engine can execute compensation on the partition that owns the
// data (thread-to-data is preserved under rollback): the whole entry —
// heap access included, which matters once heap pages carry owner stamps
// — ships to the owning worker's thread through the primary index's
// ExecAt, instead of only the individual index operations.
func (s *SM) ApplyUndo(t *tx.Txn, u tx.Undo) error { return s.ApplyUndoAs(nil, t, u) }

// ApplyUndoAs is ApplyUndo with the caller's ownership token: when the
// caller already is the owning worker, the compensation runs inline on
// its thread (see RollbackAs).
func (s *SM) ApplyUndoAs(caller *btree.Owner, t *tx.Txn, u tx.Undo) (err error) {
	tbl := s.Cat.TableByID(u.Table)
	if tbl == nil {
		return fmt.Errorf("sm: undo references unknown table %d", u.Table)
	}
	tbl.Primary.Tree.ExecAt(caller, u.Key, func(tok *btree.Owner) {
		err = s.applyUndoAt(tok, t, tbl, u)
	})
	return err
}

func (s *SM) applyUndoAt(tok *btree.Owner, t *tx.Txn, tbl *catalog.Table, u tx.Undo) error {
	switch u.Kind {
	case tx.UInsert:
		// Compensate an insert: remove the record and its index entries.
		img, err := tbl.Heap.GetOwned(tok, u.RID)
		if err != nil {
			return err
		}
		rec, err := tuple.Decode(img)
		if err != nil {
			return err
		}
		err = tbl.Heap.DeleteOwnedWith(tok, u.RID, func(before []byte) uint64 {
			return t.Chain(func(prev uint64) uint64 {
				return s.Log.Append(&wal.Record{
					Kind: wal.KCLR, Sub: wal.KDelete, TxnID: t.ID, PrevLSN: prev,
					UndoNext: u.PrevLSN, Table: u.Table,
					Page: u.RID.Page, Slot: u.RID.Slot, Key: u.Key,
				})
			})
		})
		if err != nil {
			return err
		}
		tbl.Primary.Tree.DeleteAs(tok, u.Key)
		for _, ix := range tbl.Secondaries {
			ix.Tree.DeleteAs(tok, ix.Key(rec))
		}
		return nil

	case tx.UUpdate:
		// Restore the before image; fix secondary entries if keys moved.
		curImg, err := tbl.Heap.GetOwned(tok, u.RID)
		if err != nil {
			return err
		}
		cur, err := tuple.Decode(curImg)
		if err != nil {
			return err
		}
		old, err := tuple.Decode(u.Before)
		if err != nil {
			return err
		}
		err = tbl.Heap.UpdateOwnedWith(tok, u.RID, u.Before, func(before []byte) uint64 {
			return t.Chain(func(prev uint64) uint64 {
				return s.Log.Append(&wal.Record{
					Kind: wal.KCLR, Sub: wal.KUpdate, TxnID: t.ID, PrevLSN: prev,
					UndoNext: u.PrevLSN, Table: u.Table,
					Page: u.RID.Page, Slot: u.RID.Slot, Key: u.Key,
					Redo: u.Before,
				})
			})
		})
		if err != nil {
			return err
		}
		for _, ix := range tbl.Secondaries {
			ok, nk := ix.Key(cur), ix.Key(old)
			if ok != nk {
				ix.Tree.DeleteAs(tok, ok)
				_ = ix.Tree.PutAs(tok, nk, u.RID.Pack())
			}
		}
		return nil

	case tx.UDelete:
		// Re-insert the deleted record (possibly at a new RID).
		old, err := tuple.Decode(u.Before)
		if err != nil {
			return err
		}
		rid, err := tbl.Heap.InsertOwnedWith(tok, 0, u.Before, func(rid storage.RID) uint64 {
			return t.Chain(func(prev uint64) uint64 {
				return s.Log.Append(&wal.Record{
					Kind: wal.KCLR, Sub: wal.KInsert, TxnID: t.ID, PrevLSN: prev,
					UndoNext: u.PrevLSN, Table: u.Table,
					Page: rid.Page, Slot: rid.Slot, Key: u.Key,
					Redo: u.Before,
				})
			})
		})
		if err != nil {
			return err
		}
		if err := tbl.Primary.Tree.PutAs(tok, u.Key, rid.Pack()); err != nil {
			return err
		}
		for _, ix := range tbl.Secondaries {
			_ = ix.Tree.PutAs(tok, ix.Key(old), rid.Pack())
		}
		return nil
	}
	return fmt.Errorf("sm: unknown undo kind %d", u.Kind)
}

// SetTxnIDFloor ensures future transaction ids exceed floor (recovery).
func (s *SM) SetTxnIDFloor(floor uint64) { s.ids.EnsureAtLeast(floor) }

// Close flushes dirty pages and the log, then stops the log manager's
// background worker (if any).
func (s *SM) Close() error {
	if err := s.Log.FlushAll(); err != nil {
		return err
	}
	if err := s.Pool.FlushAll(); err != nil {
		return err
	}
	return s.Log.Close()
}
