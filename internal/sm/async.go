package sm

import (
	"errors"
	"fmt"

	"dora/internal/btree"
	"dora/internal/catalog"
	"dora/internal/storage"
	"dora/internal/tuple"
	"dora/internal/tx"
	"dora/internal/wal"
)

// Asynchronous (continuation-passing) variants of the Session's logical
// operations and of rollback.
//
// Each *Async operation has the same semantics as its synchronous
// counterpart, but instead of parking the calling thread while the
// operation ships to a foreign partition worker, it returns as soon as
// the ship is enqueued and invokes its completion continuation exactly
// once when the operation finished — delivered through home (the
// caller's inbox; see btree.ContExec) so a suspended action resumes on
// its own worker thread. When the key's subtree is local (unowned, or
// owned by the calling session's token) the operation and its
// continuation run inline before the call returns: the aligned fast path
// costs no message and no suspension.
//
// The continuation runs on the home thread (or inline, see above), so it
// may freely issue further session operations; memory written by the
// operation body on the owner's thread is visible to the continuation
// through the inbox hand-off.

// ContExec re-exports the btree continuation executor: callbacks are
// delivered through it to the thread an async operation originated from.
// nil means "no home thread" — continuations then run inline on whichever
// thread completed the operation (acceptable for callers that are not
// partition workers, e.g. the commit service's rollback chain).
type ContExec = btree.ContExec

// ReadAsync is Read in continuation-passing style.
func (ss *Session) ReadAsync(t *tx.Txn, tbl *catalog.Table, key int64, home ContExec, k func(tuple.Record, error)) {
	ss.trace(tbl, key, false)
	var rec tuple.Record
	var err error
	tbl.Primary.Tree.ExecAtAsync(ss.owner, key, home, func(tok *btree.Owner) {
		rec, err = ss.readAt(tok, tbl, key)
	}, func() { k(rec, err) })
}

// InsertAsync is Insert in continuation-passing style.
func (ss *Session) InsertAsync(t *tx.Txn, tbl *catalog.Table, rec tuple.Record, home ContExec, k func(error)) {
	key := tbl.Primary.Key(rec)
	ss.trace(tbl, key, true)
	var err error
	tbl.Primary.Tree.ExecAtAsync(ss.owner, key, home, func(tok *btree.Owner) {
		err = ss.insertAt(tok, t, tbl, key, rec)
	}, func() { k(err) })
}

// UpdateAsync is Update in continuation-passing style.
func (ss *Session) UpdateAsync(t *tx.Txn, tbl *catalog.Table, key int64, rec tuple.Record, home ContExec, k func(error)) {
	if nk := tbl.Primary.Key(rec); nk != key {
		k(fmt.Errorf("sm: update changes primary key %d -> %d on %s", key, nk, tbl.Name))
		return
	}
	ss.trace(tbl, key, true)
	var err error
	tbl.Primary.Tree.ExecAtAsync(ss.owner, key, home, func(tok *btree.Owner) {
		err = ss.updateAt(tok, t, tbl, key, rec)
	}, func() { k(err) })
}

// MutateAsync is Mutate in continuation-passing style: like the
// synchronous Mutate, the read-modify-write runs as ONE operation on the
// owning thread — a single ship covers both halves, and on a stamped
// page the heap pass is latch-free (MutateOwnedWith).
func (ss *Session) MutateAsync(t *tx.Txn, tbl *catalog.Table, key int64, fn func(tuple.Record) tuple.Record, home ContExec, k func(error)) {
	ss.trace(tbl, key, true)
	var err error
	tbl.Primary.Tree.ExecAtAsync(ss.owner, key, home, func(tok *btree.Owner) {
		err = ss.mutateAt(tok, t, tbl, key, fn)
	}, func() { k(err) })
}

// DeleteAsync is Delete in continuation-passing style.
func (ss *Session) DeleteAsync(t *tx.Txn, tbl *catalog.Table, key int64, home ContExec, k func(error)) {
	ss.trace(tbl, key, true)
	var err error
	tbl.Primary.Tree.ExecAtAsync(ss.owner, key, home, func(tok *btree.Owner) {
		err = ss.deleteAt(tok, t, tbl, key)
	}, func() { k(err) })
}

// ScanRangeAsync is ScanRange in continuation-passing style: the index
// walk ships owned foreign segments to their owners one at a time (the
// sender's thread is free in between), then the heap images are fetched
// and fn applied on the home thread. Like the synchronous scan, the walk
// is fuzzy; point consistency comes from the engine's lock protocol.
func (ss *Session) ScanRangeAsync(t *tx.Txn, tbl *catalog.Table, lo, hi int64, home ContExec, fn func(key int64, rec tuple.Record) bool, k func(error)) {
	// Appended from whichever thread scans each segment — sequentially,
	// with inbox hand-offs ordering the writes before the continuation.
	var hits []scanHit
	tbl.Primary.Tree.AscendRangeAsync(ss.owner, lo, hi, home, func(key int64, val uint64) bool {
		hits = append(hits, scanHit{key, storage.UnpackRID(val)})
		return true
	}, func() {
		k(ss.visitHits(tbl, hits, fn))
	})
}

// ReadByIndexAsync is ReadByIndex in continuation-passing style.
func (ss *Session) ReadByIndexAsync(t *tx.Txn, tbl *catalog.Table, idx string, key int64, home ContExec, k func(tuple.Record, error)) {
	ix := tbl.IndexByName(idx)
	if ix == nil {
		k(nil, fmt.Errorf("sm: no index %q on %s", idx, tbl.Name))
		return
	}
	var rec tuple.Record
	var err error
	ix.Tree.ExecAtAsync(ss.owner, key, home, func(tok *btree.Owner) {
		var v uint64
		v, err = ix.Tree.GetAs(tok, key)
		if err != nil {
			if errors.Is(err, btree.ErrNotFound) {
				err = fmt.Errorf("%w: %s.%s[%d]", ErrNotFound, tbl.Name, idx, key)
			}
			return
		}
		var img []byte
		img, err = tbl.Heap.GetOwned(tok, storage.UnpackRID(v))
		if err != nil {
			return
		}
		rec, err = tuple.Decode(img)
	}, func() {
		if err != nil {
			k(nil, err)
			return
		}
		ss.trace(tbl, tbl.Primary.Key(rec), false)
		k(rec, nil)
	})
}

// RollbackAsync is Rollback in continuation-passing style: the undo
// entries are compensated strictly in reverse order, each riding the
// async ship path to its owning partition, and done(err) fires exactly
// once after the end record was logged (or the first compensation
// failure). The caller's thread is never parked on a partition worker —
// DORA's commit service uses this so an abort's compensation chain does
// not idle a committer on every cross-partition round trip.
func (s *SM) RollbackAsync(caller *btree.Owner, t *tx.Txn, home ContExec, done func(error)) {
	if t.LastLSN() != 0 {
		t.Chain(func(prev uint64) uint64 {
			return s.Log.Append(&wal.Record{Kind: wal.KAbort, TxnID: t.ID, PrevLSN: prev})
		})
	}
	undos := t.TakeUndos()
	var step func(i int)
	step = func(i int) {
		if i >= len(undos) {
			done(s.FinishRollback(t))
			return
		}
		s.ApplyUndoAsync(caller, t, undos[i], home, func(err error) {
			if err != nil {
				done(fmt.Errorf("sm: rollback txn %d: %w", t.ID, err))
				return
			}
			step(i + 1)
		})
	}
	step(0)
}

// ApplyUndoAsync is ApplyUndoAs in continuation-passing style.
func (s *SM) ApplyUndoAsync(caller *btree.Owner, t *tx.Txn, u tx.Undo, home ContExec, k func(error)) {
	tbl := s.Cat.TableByID(u.Table)
	if tbl == nil {
		k(fmt.Errorf("sm: undo references unknown table %d", u.Table))
		return
	}
	var err error
	tbl.Primary.Tree.ExecAtAsync(caller, u.Key, home, func(tok *btree.Owner) {
		err = s.applyUndoAt(tok, t, tbl, u)
	}, func() { k(err) })
}
