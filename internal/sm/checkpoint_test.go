package sm

import (
	"testing"

	"dora/internal/wal"
)

func TestCheckpointBoundsRedo(t *testing.T) {
	rig := newRig()
	s := rig.open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)

	// Phase 1: committed work, then a checkpoint.
	t1 := s.Begin()
	for i := int64(1); i <= 30; i++ {
		if err := ses.Insert(t1, tbl, acct(i, "pre", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: more committed work after the checkpoint.
	t2 := s.Begin()
	for i := int64(31); i <= 40; i++ {
		if err := ses.Insert(t2, tbl, acct(i, "post", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(t2); err != nil {
		t.Fatal(err)
	}

	s2 := rig.crash(t)
	tbl2 := testTable(t, s2)
	st, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// Redo is bounded: only post-checkpoint records replay (10 inserts +
	// bookkeeping), not the 30 pre-checkpoint ones.
	if st.Redone > 15 {
		t.Fatalf("redone %d records; checkpoint should have bounded it to ~10", st.Redone)
	}
	ses2 := s2.Session(0)
	for i := int64(1); i <= 40; i++ {
		rec, err := ses2.Read(s2.Begin(), tbl2, i)
		if err != nil || rec[2].Int != i {
			t.Fatalf("key %d after checkpointed recovery: %v %v", i, rec, err)
		}
	}
	if st.Rebuilt != 40 {
		t.Fatalf("rebuilt %d index entries, want 40", st.Rebuilt)
	}
}

func TestCheckpointWithInFlightLoser(t *testing.T) {
	// A transaction spanning the checkpoint and still active at the
	// crash must roll back across the checkpoint boundary.
	rig := newRig()
	s := rig.open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)

	base := s.Begin()
	_ = ses.Insert(base, tbl, acct(1, "v", 10))
	if err := s.Commit(base); err != nil {
		t.Fatal(err)
	}

	loser := s.Begin()
	_ = ses.Update(loser, tbl, 1, acct(1, "v", 111)) // before checkpoint
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_ = ses.Insert(loser, tbl, acct(2, "phantom", 222)) // after checkpoint
	if err := s.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}

	s2 := rig.crash(t)
	tbl2 := testTable(t, s2)
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	ses2 := s2.Session(0)
	rec, err := ses2.Read(s2.Begin(), tbl2, 1)
	if err != nil || rec[2].Int != 10 {
		t.Fatalf("pre-checkpoint loser update survived: %v %v", rec, err)
	}
	if _, err := ses2.Read(s2.Begin(), tbl2, 2); err == nil {
		t.Fatal("post-checkpoint loser insert survived")
	}
}

func TestCheckpointRecordInLog(t *testing.T) {
	s := open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	txn := s.Begin()
	_ = ses.Insert(txn, tbl, acct(1, "x", 1))
	_ = s.Commit(txn)
	lsn, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var found *wal.Record
	_ = s.Log.Scan(func(r *wal.Record) error {
		if r.Kind == wal.KCheckpoint {
			found = r
		}
		return nil
	})
	if found == nil || found.LSN != lsn {
		t.Fatalf("checkpoint record: %+v (want lsn %d)", found, lsn)
	}
	if uint64(found.Key) == 0 || uint64(found.Key) > lsn {
		t.Fatalf("redo point %d out of range", found.Key)
	}
}
