package sm

import (
	"fmt"
	"sort"

	"dora/internal/storage"
	"dora/internal/tuple"
	"dora/internal/wal"
)

// RecoveryStats summarizes a completed Recover pass.
type RecoveryStats struct {
	Records int // log records scanned
	Redone  int // physical operations replayed (or skipped via page LSN)
	Losers  int // in-flight transactions rolled back
	Undone  int // undo operations applied for losers
	Rebuilt int // index entries rebuilt from heap scans
}

// Recover performs ARIES-style restart on a reopened storage manager:
//
//  1. Analysis: scan the log, classifying each transaction as a winner
//     (KCommit seen) or a loser (records but no commit).
//  2. Redo: replay every physical record (KInsert/KUpdate/KDelete/KCLR)
//     in log order, skipping pages whose LSN already covers the record.
//  3. Undo: roll back losers by walking each PrevLSN chain backwards,
//     honouring CLR UndoNext pointers, logging fresh CLRs, and closing
//     each with KEnd.
//  4. Rebuild: the B+tree indexes are volatile, so they are reconstructed
//     by scanning each table's heap.
//
// Tables must already be registered (schema DDL is code, not logged) in
// the same order as the original run, so table ids line up.
func (s *SM) Recover() (RecoveryStats, error) {
	var st RecoveryStats
	var recs []*wal.Record
	byLSN := map[uint64]*wal.Record{}
	if err := s.Log.Scan(func(r *wal.Record) error {
		recs = append(recs, r)
		byLSN[r.LSN] = r
		return nil
	}); err != nil {
		return st, err
	}
	st.Records = len(recs)

	// --- Analysis ---
	type txState struct {
		lastLSN   uint64
		committed bool
		ended     bool
	}
	states := map[uint64]*txState{}
	var maxTxn uint64
	var redoPoint uint64
	for _, r := range recs {
		if r.Kind == wal.KCheckpoint && uint64(r.Key) > redoPoint {
			redoPoint = uint64(r.Key)
		}
	}
	s.lastCkptRedo.Store(redoPoint)
	for _, r := range recs {
		if r.TxnID == 0 {
			continue
		}
		if r.TxnID > maxTxn {
			maxTxn = r.TxnID
		}
		ts := states[r.TxnID]
		if ts == nil {
			ts = &txState{}
			states[r.TxnID] = ts
		}
		ts.lastLSN = r.LSN
		switch r.Kind {
		case wal.KCommit:
			ts.committed = true
		case wal.KEnd:
			ts.ended = true
		}
	}
	s.SetTxnIDFloor(maxTxn + 1)

	// --- Redo (repeat history, winners and losers alike). Records below
	// the last checkpoint's redo point reached disk with their pages when
	// the checkpoint flushed, so their physical apply is skipped — but
	// their pages must still be attached to the owning heaps so the
	// index rebuild scan sees them.
	//
	// With Options.RedoWorkers > 1 the physical applies fan out to the
	// partition-parallel pool (predo.go): the dispatcher loop below keeps
	// attachment and checkpoint handling in LSN order and ships each
	// physical record to the applier owning its page; per-page FIFO
	// preserves the idempotence invariant while distinct pages redo
	// concurrently. Recovery rebuilds indexes at the end, so — unlike
	// replica replay — no in-order completion work is needed: a single
	// barrier before undo is the only synchronization. ---
	var pool *redoPool
	if s.redoWorkers > 1 {
		pool = newRedoPool(s.redoWorkers, func(t *redoTask) { t.err = s.redoOne(t.rec) })
	}
	for _, r := range recs {
		if err := s.attachOne(r); err != nil {
			if pool != nil {
				pool.barrier(nil)
				pool.close()
			}
			return st, fmt.Errorf("sm: attach lsn %d: %w", r.LSN, err)
		}
		if r.Kind == wal.KCheckpoint {
			// A truncated log no longer holds the physical records that
			// would attach pages below the redo point; the checkpoint's
			// attachment map restores them.
			if err := s.applyAttachments(r.Redo); err != nil {
				if pool != nil {
					pool.barrier(nil)
					pool.close()
				}
				return st, err
			}
		}
		if r.LSN < redoPoint {
			continue
		}
		if pool != nil {
			if _, ok := wal.PageKey(r); ok {
				pool.dispatch(&redoTask{rec: r})
				st.Redone++
			}
			continue
		}
		if err := s.redoOne(r); err != nil {
			return st, fmt.Errorf("sm: redo lsn %d: %w", r.LSN, err)
		}
		switch r.Kind {
		case wal.KInsert, wal.KUpdate, wal.KDelete, wal.KCLR:
			st.Redone++
		}
	}
	if pool != nil {
		err := pool.barrier(nil)
		pool.close()
		if err != nil {
			return st, fmt.Errorf("sm: parallel redo: %w", err)
		}
	}

	// --- Undo losers, in descending-id order. The order is deterministic
	// so two recoveries of the same crash image — serial or parallel —
	// append identical CLR/KEnd sequences and leave byte-identical pages
	// (the end-state equivalence E17 asserts). ---
	var losers []uint64
	for id, ts := range states {
		if ts.committed || ts.ended {
			continue
		}
		losers = append(losers, id)
	}
	sort.Slice(losers, func(i, j int) bool { return losers[i] > losers[j] })
	for _, id := range losers {
		st.Losers++
		n, err := s.undoLoser(id, states[id].lastLSN, byLSN)
		if err != nil {
			return st, fmt.Errorf("sm: undo txn %d: %w", id, err)
		}
		st.Undone += n
	}

	// --- Rebuild indexes from heaps ---
	n, err := s.rebuildIndexes()
	if err != nil {
		return st, err
	}
	st.Rebuilt = n

	if err := s.Log.FlushAll(); err != nil {
		return st, err
	}
	return st, nil
}

// rebuildIndexes reconstructs every table's volatile B+tree indexes from
// its heap, returning the number of entries rebuilt. Shared by restart
// recovery, replica bootstrap, and promotion (whose loser undo bypasses
// live index maintenance).
func (s *SM) rebuildIndexes() (int, error) {
	rebuilt := 0
	for _, tbl := range s.Cat.Tables() {
		// Rebuild each index with its original shape (partitioned trees
		// come back unowned: a restarted DORA engine re-claims them).
		tbl.Primary.Tree = newIndexTree(s.CS, tbl.Primary.RouteRange != nil)
		for _, ix := range tbl.Secondaries {
			ix.Tree = newIndexTree(s.CS, ix.RouteRange != nil)
		}
		err := tbl.Heap.Scan(func(rid storage.RID, img []byte) bool {
			rec, err := tuple.Decode(img)
			if err != nil {
				return true // skip undecodable garbage defensively
			}
			_ = tbl.Primary.Tree.PutAs(nil, tbl.Primary.Key(rec), rid.Pack())
			for _, ix := range tbl.Secondaries {
				_ = ix.Tree.PutAs(nil, ix.Key(rec), rid.Pack())
			}
			rebuilt++
			return true
		})
		if err != nil {
			return rebuilt, err
		}
	}
	return rebuilt, nil
}

func physicalKind(r *wal.Record) wal.Kind { return wal.PhysicalKind(r) }

// attachOne ensures the record's page exists on the rebuilt disk view
// and is owned by its table's heap.
func (s *SM) attachOne(r *wal.Record) error {
	if physicalKind(r) == 0 {
		return nil
	}
	tbl := s.Cat.TableByID(r.Table)
	if tbl == nil {
		return fmt.Errorf("unknown table %d", r.Table)
	}
	for int(r.Page) >= s.Disk.NumPages() {
		if _, err := s.Disk.Allocate(); err != nil {
			return err
		}
	}
	tbl.Heap.AttachPage(r.Page)
	return nil
}

// redoOne replays one physical log record idempotently.
func (s *SM) redoOne(r *wal.Record) error {
	kind := physicalKind(r)
	if kind == 0 {
		return nil
	}
	tbl := s.Cat.TableByID(r.Table)
	rid := storage.RID{Page: r.Page, Slot: r.Slot}
	switch kind {
	case wal.KInsert:
		return tbl.Heap.RedoInsert(rid, r.Redo, r.LSN)
	case wal.KUpdate:
		return tbl.Heap.RedoUpdate(rid, r.Redo, r.LSN)
	case wal.KDelete:
		return tbl.Heap.RedoDelete(rid, r.LSN)
	}
	return nil
}

// undoLoser rolls back one in-flight transaction by walking its log
// chain backwards, compensating each data record with a CLR.
func (s *SM) undoLoser(txnID, lastLSN uint64, byLSN map[uint64]*wal.Record) (int, error) {
	// Fresh chain context so CLRs link after the loser's existing tail.
	t := &loserTxn{id: txnID, last: lastLSN}
	cur := lastLSN
	n := 0
	for cur != 0 {
		r, ok := byLSN[cur]
		if !ok {
			return n, fmt.Errorf("broken chain at lsn %d", cur)
		}
		switch r.Kind {
		case wal.KCLR:
			cur = r.UndoNext
		case wal.KInsert:
			if err := s.compensateInsert(t, r); err != nil {
				return n, err
			}
			n++
			cur = r.PrevLSN
		case wal.KUpdate:
			if err := s.compensateUpdate(t, r); err != nil {
				return n, err
			}
			n++
			cur = r.PrevLSN
		case wal.KDelete:
			if err := s.compensateDelete(t, r); err != nil {
				return n, err
			}
			n++
			cur = r.PrevLSN
		default:
			cur = r.PrevLSN
		}
	}
	s.Log.Append(&wal.Record{Kind: wal.KEnd, TxnID: txnID, PrevLSN: t.last})
	return n, nil
}

// loserTxn is a minimal chain holder for recovery-time CLRs.
type loserTxn struct {
	id   uint64
	last uint64
}

func (s *SM) compensateInsert(t *loserTxn, r *wal.Record) error {
	tbl := s.Cat.TableByID(r.Table)
	rid := storage.RID{Page: r.Page, Slot: r.Slot}
	return tbl.Heap.DeleteWith(rid, func(before []byte) uint64 {
		lsn := s.Log.Append(&wal.Record{
			Kind: wal.KCLR, Sub: wal.KDelete, TxnID: t.id, PrevLSN: t.last,
			UndoNext: r.PrevLSN, Table: r.Table, Page: r.Page, Slot: r.Slot, Key: r.Key,
		})
		t.last = lsn
		return lsn
	})
}

func (s *SM) compensateUpdate(t *loserTxn, r *wal.Record) error {
	tbl := s.Cat.TableByID(r.Table)
	rid := storage.RID{Page: r.Page, Slot: r.Slot}
	return tbl.Heap.UpdateWith(rid, r.Undo, func(before []byte) uint64 {
		lsn := s.Log.Append(&wal.Record{
			Kind: wal.KCLR, Sub: wal.KUpdate, TxnID: t.id, PrevLSN: t.last,
			UndoNext: r.PrevLSN, Table: r.Table, Page: r.Page, Slot: r.Slot, Key: r.Key,
			Redo: r.Undo,
		})
		t.last = lsn
		return lsn
	})
}

func (s *SM) compensateDelete(t *loserTxn, r *wal.Record) error {
	tbl := s.Cat.TableByID(r.Table)
	_, err := tbl.Heap.InsertWith(0, r.Undo, func(rid storage.RID) uint64 {
		lsn := s.Log.Append(&wal.Record{
			Kind: wal.KCLR, Sub: wal.KInsert, TxnID: t.id, PrevLSN: t.last,
			UndoNext: r.PrevLSN, Table: r.Table, Page: rid.Page, Slot: rid.Slot, Key: r.Key,
			Redo: r.Undo,
		})
		t.last = lsn
		return lsn
	})
	return err
}
