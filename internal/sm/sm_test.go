package sm

import (
	"errors"
	"testing"

	"dora/internal/catalog"
	"dora/internal/tuple"
	"dora/internal/wal"
)

// testTable creates a simple (id, name, balance) table.
func testTable(t *testing.T, s *SM) *catalog.Table {
	t.Helper()
	tbl, err := s.CreateTable(TableSpec{
		Name: "accounts",
		Fields: []catalog.Field{
			{Name: "id", Type: tuple.TInt},
			{Name: "name", Type: tuple.TString},
			{Name: "balance", Type: tuple.TInt},
		},
		KeyFields: []string{"id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func acct(id int64, name string, bal int64) tuple.Record {
	return tuple.Record{tuple.I(id), tuple.S(name), tuple.I(bal)}
}

func open(t *testing.T) *SM {
	t.Helper()
	s, err := Open(Options{Frames: 128})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInsertReadCommit(t *testing.T) {
	s := open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	txn := s.Begin()
	for i := int64(1); i <= 100; i++ {
		if err := ses.Insert(txn, tbl, acct(i, "acct", i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(txn); err != nil {
		t.Fatal(err)
	}
	txn2 := s.Begin()
	rec, err := ses.Read(txn2, tbl, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rec[2].Int != 420 {
		t.Fatalf("balance = %d", rec[2].Int)
	}
	if s.Commits.Load() != 1 {
		t.Fatalf("commits = %d", s.Commits.Load())
	}
}

func TestDuplicateInsert(t *testing.T) {
	s := open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	txn := s.Begin()
	if err := ses.Insert(txn, tbl, acct(1, "a", 0)); err != nil {
		t.Fatal(err)
	}
	err := ses.Insert(txn, tbl, acct(1, "b", 0))
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
	_ = s.Commit(txn)
}

func TestUpdateAndMutate(t *testing.T) {
	s := open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	txn := s.Begin()
	_ = ses.Insert(txn, tbl, acct(1, "a", 100))
	if err := ses.Mutate(txn, tbl, 1, func(r tuple.Record) tuple.Record {
		r[2] = tuple.I(r[2].Int + 50)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	_ = s.Commit(txn)
	rec, _ := ses.Read(s.Begin(), tbl, 1)
	if rec[2].Int != 150 {
		t.Fatalf("balance = %d", rec[2].Int)
	}
	// Primary key change must be rejected.
	txn2 := s.Begin()
	if err := ses.Update(txn2, tbl, 1, acct(2, "a", 0)); err == nil {
		t.Fatal("update changing PK must fail")
	}
}

func TestDeleteAndNotFound(t *testing.T) {
	s := open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	txn := s.Begin()
	_ = ses.Insert(txn, tbl, acct(1, "a", 0))
	if err := ses.Delete(txn, tbl, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Read(txn, tbl, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := ses.Delete(txn, tbl, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	_ = s.Commit(txn)
}

func TestRollbackRestoresState(t *testing.T) {
	s := open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	// Committed baseline.
	setup := s.Begin()
	_ = ses.Insert(setup, tbl, acct(1, "keep", 100))
	_ = ses.Insert(setup, tbl, acct(2, "victim", 200))
	if err := s.Commit(setup); err != nil {
		t.Fatal(err)
	}

	// A transaction that inserts, updates, deletes — then rolls back.
	txn := s.Begin()
	_ = ses.Insert(txn, tbl, acct(3, "phantom", 300))
	_ = ses.Update(txn, tbl, 1, acct(1, "keep", 999))
	_ = ses.Delete(txn, tbl, 2)
	if err := s.Rollback(txn); err != nil {
		t.Fatal(err)
	}

	check := s.Begin()
	if _, err := ses.Read(check, tbl, 3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rolled-back insert visible: %v", err)
	}
	rec, err := ses.Read(check, tbl, 1)
	if err != nil || rec[2].Int != 100 {
		t.Fatalf("rolled-back update persists: %v %v", rec, err)
	}
	rec, err = ses.Read(check, tbl, 2)
	if err != nil || rec[1].Str != "victim" {
		t.Fatalf("rolled-back delete persists: %v %v", rec, err)
	}
	if s.Aborts.Load() != 1 {
		t.Fatalf("aborts = %d", s.Aborts.Load())
	}
}

func TestScanRange(t *testing.T) {
	s := open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	txn := s.Begin()
	for i := int64(1); i <= 20; i++ {
		_ = ses.Insert(txn, tbl, acct(i, "x", i))
	}
	_ = s.Commit(txn)
	var keys []int64
	err := ses.ScanRange(s.Begin(), tbl, 5, 10, func(k int64, r tuple.Record) bool {
		keys = append(keys, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 6 || keys[0] != 5 || keys[5] != 10 {
		t.Fatalf("scan keys: %v", keys)
	}
}

func TestSecondaryIndexMaintained(t *testing.T) {
	s := open(t)
	tbl, err := s.CreateTable(TableSpec{
		Name: "subscriber",
		Fields: []catalog.Field{
			{Name: "s_id", Type: tuple.TInt},
			{Name: "sub_nbr", Type: tuple.TInt},
		},
		KeyFields: []string{"s_id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
		Secondaries: []IndexSpec{{
			Name:   "sub_by_nbr",
			Fields: []string{"sub_nbr"},
			Key:    func(r tuple.Record) int64 { return r[1].Int },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ses := s.Session(0)
	txn := s.Begin()
	_ = ses.Insert(txn, tbl, tuple.Record{tuple.I(1), tuple.I(5001)})
	_ = s.Commit(txn)

	rec, err := ses.ReadByIndex(s.Begin(), tbl, "sub_by_nbr", 5001)
	if err != nil || rec[0].Int != 1 {
		t.Fatalf("secondary lookup: %v %v", rec, err)
	}

	// Update that moves the secondary key.
	txn2 := s.Begin()
	_ = ses.Update(txn2, tbl, 1, tuple.Record{tuple.I(1), tuple.I(6001)})
	_ = s.Commit(txn2)
	if _, err := ses.ReadByIndex(s.Begin(), tbl, "sub_by_nbr", 5001); err == nil {
		t.Fatal("stale secondary entry")
	}
	rec, err = ses.ReadByIndex(s.Begin(), tbl, "sub_by_nbr", 6001)
	if err != nil || rec[0].Int != 1 {
		t.Fatalf("moved secondary entry: %v %v", rec, err)
	}

	// Delete removes the secondary entry; rollback restores it.
	txn3 := s.Begin()
	_ = ses.Delete(txn3, tbl, 1)
	if err := s.Rollback(txn3); err != nil {
		t.Fatal(err)
	}
	rec, err = ses.ReadByIndex(s.Begin(), tbl, "sub_by_nbr", 6001)
	if err != nil || rec[0].Int != 1 {
		t.Fatalf("secondary after rollback: %v %v", rec, err)
	}
}

func TestReadOnlyCommitSkipsForce(t *testing.T) {
	s := open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	setup := s.Begin()
	_ = ses.Insert(setup, tbl, acct(1, "a", 0))
	_ = s.Commit(setup)
	forces := s.Log.Stats().Forces
	ro := s.Begin()
	_, _ = ses.Read(ro, tbl, 1)
	_ = s.Commit(ro)
	if s.Log.Stats().Forces != forces {
		t.Fatal("read-only commit forced the log")
	}
}

func TestLogChainPerTxn(t *testing.T) {
	s := open(t)
	tbl := testTable(t, s)
	ses := s.Session(0)
	txn := s.Begin()
	_ = ses.Insert(txn, tbl, acct(1, "a", 0))
	_ = ses.Update(txn, tbl, 1, acct(1, "a", 5))
	_ = s.Commit(txn)
	// Walk the chain backwards from the last record.
	var recs []*wal.Record
	_ = s.Log.Scan(func(r *wal.Record) error {
		if r.TxnID == txn.ID {
			recs = append(recs, r)
		}
		return nil
	})
	if len(recs) != 4 { // insert, update, commit, end
		t.Fatalf("logged %d records, want 4", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].PrevLSN != recs[i-1].LSN {
			t.Fatalf("chain broken at %d: prev=%d, want %d", i, recs[i].PrevLSN, recs[i-1].LSN)
		}
	}
}
