package latch

import (
	"sync"
	"testing"

	"dora/internal/metrics"
)

func TestExclusiveMutualExclusion(t *testing.T) {
	var l Latch
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d (lost updates)", counter)
	}
}

func TestSharedReaders(t *testing.T) {
	var l Latch
	l.RLock()
	l.RLock() // second reader must not block
	l.RUnlock()
	l.RUnlock()
}

func TestTryLock(t *testing.T) {
	var l Latch
	if !l.TryLock() {
		t.Fatal("TryLock on free latch failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held latch succeeded")
	}
	l.Unlock()
}

func TestStatsCounting(t *testing.T) {
	cs := &metrics.CriticalSectionStats{}
	l := Latch{Stats: cs}
	l.Lock()
	l.Unlock()
	l.RLock()
	l.RUnlock()
	if cs.Latch.Load() != 2 {
		t.Fatalf("latch count = %d", cs.Latch.Load())
	}
	if cs.Contended.Load() != 0 {
		t.Fatalf("contended = %d on uncontended latch", cs.Contended.Load())
	}
	// Force contention.
	l.Lock()
	done := make(chan struct{})
	go func() {
		l.Lock()
		l.Unlock()
		close(done)
	}()
	for cs.Contended.Load() == 0 {
	}
	l.Unlock()
	<-done
	if cs.Contended.Load() == 0 {
		t.Fatal("contention not counted")
	}
}
