// Package latch implements reader-writer latches with contention
// accounting. Latches protect physical structures (pages, B+tree nodes,
// buffer-pool frames) for the duration of one operation; they are held
// briefly, unlike logical locks, which are held to transaction end.
//
// DORA eliminates *lock-manager* critical sections but keeps latching, so
// both engines in this repo share this package; the per-subsystem counters
// let experiment E4 show exactly which class of serialization disappears.
package latch

import (
	"sync"

	"dora/internal/metrics"
)

// Latch is a reader-writer latch. The zero value is unlatched and usable.
// If Stats is non-nil, every acquisition increments Stats.Latch and
// acquisitions that blocked increment Stats.Contended.
type Latch struct {
	mu    sync.RWMutex
	Stats *metrics.CriticalSectionStats
}

// Lock acquires the latch in exclusive mode.
func (l *Latch) Lock() {
	if l.Stats != nil {
		l.Stats.Latch.Inc()
		if !l.mu.TryLock() {
			l.Stats.Contended.Inc()
			l.mu.Lock()
		}
		return
	}
	l.mu.Lock()
}

// Unlock releases an exclusive hold.
func (l *Latch) Unlock() { l.mu.Unlock() }

// RLock acquires the latch in shared mode.
func (l *Latch) RLock() {
	if l.Stats != nil {
		l.Stats.Latch.Inc()
		if !l.mu.TryRLock() {
			l.Stats.Contended.Inc()
			l.mu.RLock()
		}
		return
	}
	l.mu.RLock()
}

// RUnlock releases a shared hold.
func (l *Latch) RUnlock() { l.mu.RUnlock() }

// TryLock attempts an exclusive acquisition without blocking.
func (l *Latch) TryLock() bool {
	ok := l.mu.TryLock()
	if ok && l.Stats != nil {
		l.Stats.Latch.Inc()
	}
	return ok
}
