package page

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInitEmpty(t *testing.T) {
	var p Page
	p.Init(7)
	if p.ID() != 7 {
		t.Fatalf("ID = %d, want 7", p.ID())
	}
	if p.NumSlots() != 0 {
		t.Fatalf("NumSlots = %d, want 0", p.NumSlots())
	}
	if p.LSN() != 0 {
		t.Fatalf("LSN = %d, want 0", p.LSN())
	}
	if p.FreeSpace() < Size-HeaderSize-2*slotEntrySize {
		t.Fatalf("FreeSpace = %d too small", p.FreeSpace())
	}
}

func TestInsertGet(t *testing.T) {
	var p Page
	p.Init(1)
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	var slots []int
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Get(s)
		if err != nil {
			t.Fatalf("Get(%d): %v", s, err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Fatalf("Get(%d) = %q, want %q", s, got, recs[i])
		}
	}
}

func TestSlotNumbersSequential(t *testing.T) {
	var p Page
	p.Init(1)
	for i := 0; i < 10; i++ {
		s, err := p.Insert([]byte{byte(i)})
		if err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		if s != i {
			t.Fatalf("slot = %d, want %d", s, i)
		}
	}
}

func TestDeleteAndTombstoneReuse(t *testing.T) {
	var p Page
	p.Init(1)
	s0, _ := p.Insert([]byte("one"))
	s1, _ := p.Insert([]byte("two"))
	if err := p.Delete(s0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if !p.Deleted(s0) {
		t.Fatal("slot 0 should be deleted")
	}
	if p.Deleted(s1) {
		t.Fatal("slot 1 should be live")
	}
	if _, err := p.Get(s0); err == nil {
		t.Fatal("Get of deleted slot should fail")
	}
	if err := p.Delete(s0); err == nil {
		t.Fatal("double Delete should fail")
	}
	// Reinsert reuses the tombstoned slot number.
	s2, err := p.Insert([]byte("three"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if s2 != s0 {
		t.Fatalf("reused slot = %d, want %d", s2, s0)
	}
}

func TestUpdateInPlaceAndGrow(t *testing.T) {
	var p Page
	p.Init(1)
	s, _ := p.Insert([]byte("hello world"))
	if err := p.Update(s, []byte("hi")); err != nil {
		t.Fatalf("shrink update: %v", err)
	}
	got, _ := p.Get(s)
	if string(got) != "hi" {
		t.Fatalf("got %q", got)
	}
	// Grow: relocates within the page.
	long := bytes.Repeat([]byte("x"), 100)
	if err := p.Update(s, long); err != nil {
		t.Fatalf("grow update: %v", err)
	}
	got, _ = p.Get(s)
	if !bytes.Equal(got, long) {
		t.Fatal("grown record mismatch")
	}
}

func TestCanUpdate(t *testing.T) {
	var p Page
	p.Init(1)
	s, _ := p.Insert(make([]byte, 64))
	if !p.CanUpdate(s, 64) {
		t.Fatal("same-size update must be possible")
	}
	if !p.CanUpdate(s, 10) {
		t.Fatal("shrink must be possible")
	}
	if p.CanUpdate(s, Size) {
		t.Fatal("page-sized growth must be impossible")
	}
	if p.CanUpdate(99, 10) {
		t.Fatal("bad slot must not be updatable")
	}
}

func TestPageFull(t *testing.T) {
	var p Page
	p.Init(1)
	rec := make([]byte, 512)
	n := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			break
		}
		n++
	}
	if n < 10 || n > 16 {
		t.Fatalf("fit %d 512-byte records in 8KB page, expected ~15", n)
	}
}

func TestCompactReclaims(t *testing.T) {
	var p Page
	p.Init(1)
	var slots []int
	rec := make([]byte, 256)
	for i := 0; i < 8; i++ {
		s, err := p.Insert(rec)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		slots = append(slots, s)
	}
	for i := 0; i < 8; i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	before := p.FreeSpace()
	// Fill survivor slots with recognizable content first.
	for i := 1; i < 8; i += 2 {
		if err := p.Update(slots[i], []byte{byte(i)}); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	p.Compact()
	if p.FreeSpace() <= before {
		t.Fatalf("Compact did not reclaim: before=%d after=%d", before, p.FreeSpace())
	}
	for i := 1; i < 8; i += 2 {
		got, err := p.Get(slots[i])
		if err != nil || len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("survivor %d corrupted after Compact: %v %v", i, got, err)
		}
	}
}

func TestLSNRoundTrip(t *testing.T) {
	var p Page
	p.Init(3)
	p.SetLSN(0xDEADBEEF)
	if p.LSN() != 0xDEADBEEF {
		t.Fatalf("LSN = %x", p.LSN())
	}
}

// TestQuickInsertGetDelete drives random operations against a map model.
func TestQuickInsertGetDelete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var p Page
		p.Init(1)
		model := map[int][]byte{}
		for op := 0; op < 300; op++ {
			switch rng.Intn(3) {
			case 0: // insert
				rec := make([]byte, 1+rng.Intn(64))
				rng.Read(rec)
				s, err := p.Insert(rec)
				if err != nil {
					continue // full
				}
				if _, exists := model[s]; exists {
					return false // reused a live slot
				}
				model[s] = rec
			case 1: // delete random live slot
				for s := range model {
					if p.Delete(s) != nil {
						return false
					}
					delete(model, s)
					break
				}
			case 2: // update random live slot
				for s := range model {
					rec := make([]byte, 1+rng.Intn(64))
					rng.Read(rec)
					if err := p.Update(s, rec); err == nil {
						model[s] = rec
					}
					break
				}
			}
		}
		for s, want := range model {
			got, err := p.Get(s)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
