// Package page defines the on-disk page format used by the storage
// manager: fixed-size slotted pages with a header carrying the page LSN
// (for ARIES-style recovery) and a slot directory growing from the tail.
//
// Layout of a page (Size bytes):
//
//	offset 0  : uint64 page LSN
//	offset 8  : uint32 page id
//	offset 12 : uint16 slot count
//	offset 14 : uint16 free-space pointer (offset of first free byte)
//	offset 16 : record data, growing up
//	...        free space ...
//	tail      : slot directory, growing down; slot i occupies the 4 bytes
//	            at Size-4*(i+1): uint16 offset, uint16 length
//
// A slot with offset 0xFFFF is a tombstone (deleted record); tombstoned
// slots keep their slot number so RIDs of other records stay stable.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Size is the page size in bytes.
const Size = 8192

// HeaderSize is the number of bytes reserved for the page header.
const HeaderSize = 16

const (
	slotEntrySize = 4
	tombstone     = 0xFFFF
)

// ErrPageFull reports that a record does not fit in the page.
var ErrPageFull = errors.New("page: full")

// ErrBadSlot reports an out-of-range or deleted slot.
var ErrBadSlot = errors.New("page: bad slot")

// ID identifies a page within a store.
type ID uint32

// InvalidID is never a valid page id.
const InvalidID = ID(0xFFFFFFFF)

// Page is a fixed-size byte buffer with slotted-page accessors. It carries
// no synchronization; callers latch the owning buffer frame.
type Page struct {
	Data [Size]byte
}

// Init formats p as an empty slotted page with the given id.
func (p *Page) Init(id ID) {
	for i := range p.Data[:HeaderSize] {
		p.Data[i] = 0
	}
	binary.LittleEndian.PutUint32(p.Data[8:], uint32(id))
	binary.LittleEndian.PutUint16(p.Data[12:], 0)
	binary.LittleEndian.PutUint16(p.Data[14:], HeaderSize)
}

// LSN returns the page LSN.
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.Data[0:]) }

// SetLSN stores the page LSN.
func (p *Page) SetLSN(l uint64) { binary.LittleEndian.PutUint64(p.Data[0:], l) }

// ID returns the page id stored in the header.
func (p *Page) ID() ID { return ID(binary.LittleEndian.Uint32(p.Data[8:])) }

// NumSlots returns the slot count, including tombstones.
func (p *Page) NumSlots() int { return int(binary.LittleEndian.Uint16(p.Data[12:])) }

func (p *Page) setNumSlots(n int) { binary.LittleEndian.PutUint16(p.Data[12:], uint16(n)) }

func (p *Page) freePtr() int { return int(binary.LittleEndian.Uint16(p.Data[14:])) }

func (p *Page) setFreePtr(o int) { binary.LittleEndian.PutUint16(p.Data[14:], uint16(o)) }

func (p *Page) slotPos(i int) int { return Size - slotEntrySize*(i+1) }

func (p *Page) slot(i int) (off, ln int) {
	pos := p.slotPos(i)
	return int(binary.LittleEndian.Uint16(p.Data[pos:])),
		int(binary.LittleEndian.Uint16(p.Data[pos+2:]))
}

func (p *Page) setSlot(i, off, ln int) {
	pos := p.slotPos(i)
	binary.LittleEndian.PutUint16(p.Data[pos:], uint16(off))
	binary.LittleEndian.PutUint16(p.Data[pos+2:], uint16(ln))
}

// FreeSpace returns the number of bytes available for a new record,
// accounting for the slot-directory entry the insert would add.
func (p *Page) FreeSpace() int {
	fs := p.slotPos(p.NumSlots()) - p.freePtr() - slotEntrySize
	if fs < 0 {
		return 0
	}
	return fs
}

// Insert stores rec in the page and returns its slot number. Tombstoned
// slots are reused when the record fits in contiguous free space.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) > p.FreeSpace() && !p.canReuseSlot(len(rec)) {
		return 0, ErrPageFull
	}
	// Prefer reusing a tombstoned slot number (keeps directory small).
	n := p.NumSlots()
	slotNo := -1
	for i := 0; i < n; i++ {
		if off, _ := p.slot(i); off == tombstone {
			slotNo = i
			break
		}
	}
	need := len(rec)
	if slotNo == -1 {
		// New slot entry also consumes directory space.
		if p.slotPos(n)-slotEntrySize-p.freePtr() < need {
			return 0, ErrPageFull
		}
		slotNo = n
		p.setNumSlots(n + 1)
	} else if p.slotPos(n)-p.freePtr() < need {
		return 0, ErrPageFull
	}
	off := p.freePtr()
	copy(p.Data[off:off+need], rec)
	p.setFreePtr(off + need)
	p.setSlot(slotNo, off, need)
	return slotNo, nil
}

func (p *Page) canReuseSlot(need int) bool {
	n := p.NumSlots()
	for i := 0; i < n; i++ {
		if off, _ := p.slot(i); off == tombstone {
			return p.slotPos(n)-p.freePtr() >= need
		}
	}
	return false
}

// Get returns the record bytes stored at slot i. The returned slice
// aliases the page buffer; callers must copy before unlatching.
func (p *Page) Get(i int) ([]byte, error) {
	if i < 0 || i >= p.NumSlots() {
		return nil, fmt.Errorf("%w: slot %d of %d", ErrBadSlot, i, p.NumSlots())
	}
	off, ln := p.slot(i)
	if off == tombstone {
		return nil, fmt.Errorf("%w: slot %d deleted", ErrBadSlot, i)
	}
	return p.Data[off : off+ln], nil
}

// Update replaces the record at slot i. Records that shrink or keep their
// size are updated in place; growth is honoured if the tail has room,
// otherwise ErrPageFull is returned (the caller relocates the record).
func (p *Page) Update(i int, rec []byte) error {
	if i < 0 || i >= p.NumSlots() {
		return fmt.Errorf("%w: slot %d", ErrBadSlot, i)
	}
	off, ln := p.slot(i)
	if off == tombstone {
		return fmt.Errorf("%w: slot %d deleted", ErrBadSlot, i)
	}
	if len(rec) <= ln {
		copy(p.Data[off:off+len(rec)], rec)
		p.setSlot(i, off, len(rec))
		return nil
	}
	need := len(rec)
	if p.slotPos(p.NumSlots())-p.freePtr() < need {
		return ErrPageFull
	}
	noff := p.freePtr()
	copy(p.Data[noff:noff+need], rec)
	p.setFreePtr(noff + need)
	p.setSlot(i, noff, need)
	return nil
}

// CanUpdate reports whether a record of n bytes can replace slot i
// without failing (in place, or relocated to the free tail).
func (p *Page) CanUpdate(i, n int) bool {
	if i < 0 || i >= p.NumSlots() {
		return false
	}
	off, ln := p.slot(i)
	if off == tombstone {
		return false
	}
	if n <= ln {
		return true
	}
	return p.slotPos(p.NumSlots())-p.freePtr() >= n
}

// Delete tombstones slot i. The space is reclaimed by Compact.
func (p *Page) Delete(i int) error {
	if i < 0 || i >= p.NumSlots() {
		return fmt.Errorf("%w: slot %d", ErrBadSlot, i)
	}
	if off, _ := p.slot(i); off == tombstone {
		return fmt.Errorf("%w: slot %d already deleted", ErrBadSlot, i)
	}
	p.setSlot(i, tombstone, 0)
	return nil
}

// Deleted reports whether slot i is a tombstone.
func (p *Page) Deleted(i int) bool {
	if i < 0 || i >= p.NumSlots() {
		return true
	}
	off, _ := p.slot(i)
	return off == tombstone
}

// Compact rewrites live records contiguously, reclaiming space freed by
// deletions and in-page relocations. Slot numbers are preserved.
func (p *Page) Compact() {
	var scratch [Size]byte
	w := HeaderSize
	n := p.NumSlots()
	type ent struct{ off, ln int }
	ents := make([]ent, n)
	for i := 0; i < n; i++ {
		off, ln := p.slot(i)
		if off == tombstone {
			ents[i] = ent{tombstone, 0}
			continue
		}
		copy(scratch[w:w+ln], p.Data[off:off+ln])
		ents[i] = ent{w, ln}
		w += ln
	}
	copy(p.Data[HeaderSize:w], scratch[HeaderSize:w])
	for i, e := range ents {
		p.setSlot(i, e.off, e.ln)
	}
	p.setFreePtr(w)
}
