package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"dora/internal/admission"
	"dora/internal/catalog"
	"dora/internal/dora"
	"dora/internal/engine/conventional"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/trace"
	"dora/internal/tuple"
	"dora/internal/xct"
)

func rig(t *testing.T) (*sm.SM, *catalog.Table, *dora.Dora, *conventional.Engine) {
	t.Helper()
	cs := &metrics.CriticalSectionStats{}
	s, err := sm.Open(sm.Options{Frames: 128, CS: cs})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.CreateTable(sm.TableSpec{
		Name:      "kv",
		Fields:    []catalog.Field{{Name: "k", Type: tuple.TInt}, {Name: "v", Type: tuple.TInt}},
		KeyFields: []string{"k"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
	})
	if err != nil {
		t.Fatal(err)
	}
	ses := s.Session(0)
	load := s.Begin()
	for i := int64(1); i <= 100; i++ {
		_ = ses.Insert(load, tbl, tuple.Record{tuple.I(i), tuple.I(0)})
	}
	_ = s.Commit(load)
	de := dora.New(s, dora.Config{PartitionsPerTable: 2, Domains: map[string][2]int64{"kv": {1, 100}}})
	t.Cleanup(func() { _ = de.Close() })
	return s, tbl, de, conventional.New(s)
}

func TestSampleFields(t *testing.T) {
	s, tbl, de, conv := rig(t)
	src := &Source{
		SM:   s,
		Dora: de,
		Engines: []CommitCounter{
			CounterAdapter{EngineName: "conventional", Committed: &conv.Committed, Aborted: &conv.Aborted},
			CounterAdapter{EngineName: "dora", Committed: &de.Committed, Aborted: &de.Aborted},
		},
	}
	flow := func(k int64) *xct.Flow {
		return xct.NewFlow("w").AddPhase(&xct.Action{
			Table: "kv", KeyField: "k", Key: k, Mode: xct.Write,
			Run: func(env *xct.Env) error {
				return env.Ses.Mutate(env.Txn, tbl, k, func(r tuple.Record) tuple.Record {
					r[1] = tuple.I(r[1].Int + 1)
					return r
				})
			},
		})
	}
	for i := int64(1); i <= 10; i++ {
		if err := conv.Exec(0, flow(i)); err != nil {
			t.Fatal(err)
		}
		if err := de.Exec(0, flow(i)); err != nil {
			t.Fatal(err)
		}
	}
	prev := src.Sample(nil, 0)
	snap := src.Sample(prev, time.Second)
	if len(snap.Engines) != 2 {
		t.Fatalf("engines = %d", len(snap.Engines))
	}
	if snap.Engines[0].Committed != 10 || snap.Engines[1].Committed != 10 {
		t.Fatalf("commit counts: %+v", snap.Engines)
	}
	if len(snap.Partitions) != 2 {
		t.Fatalf("partitions = %d", len(snap.Partitions))
	}
	if len(snap.Routing["kv"]) != 2 {
		t.Fatalf("routing = %v", snap.Routing)
	}
	if snap.CS.Total() == 0 {
		t.Fatal("critical sections not sampled")
	}
	if snap.LogAppends == 0 {
		t.Fatal("log appends not sampled")
	}
}

func TestServerStreams(t *testing.T) {
	s, _, de, conv := rig(t)
	src := &Source{
		SM: s, Dora: de,
		Engines: []CommitCounter{
			CounterAdapter{EngineName: "conventional", Committed: &conv.Committed, Aborted: &conv.Aborted},
		},
	}
	sv := NewServer(src, 20*time.Millisecond)
	addr, err := sv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	snaps, err := ReadSnapshots(addr, 3, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	if snaps[0].At.IsZero() {
		t.Fatal("zero timestamp")
	}
	if len(snaps[0].Partitions) == 0 {
		t.Fatal("no partition stats over the wire")
	}
}

// TestSnapshotJSONRoundTrip marshals a snapshot with the observability
// views populated — stage-latency decomposition and both replication
// roles — and checks the wire format reproduces every field. This is the
// contract the demo GUI and doramon parse.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	want := &Snapshot{
		At:      time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Engines: []EngineView{{Name: "dora", Committed: 42, Aborted: 1, Throughput: 42.5}},
		StageLatency: &StageLatencyView{
			Sampled: 10, Dropped: 2, Slow: 1,
			CoveragePct: 93.5, TotalP50US: 128, TotalP99US: 4096,
			Stages: []trace.StageView{
				{Stage: "exec", Count: 10, MeanUS: 80.25, P50US: 64, P95US: 256, P99US: 512, MaxUS: 700},
				{Stage: "flush_wait", Count: 10, MeanUS: 40, P50US: 32, P95US: 64, P99US: 128, MaxUS: 130},
			},
		},
		Replication: []ReplicationView{
			{
				Role: "primary", ShippedLSN: 9000, AckHorizon: 8000, LagBytes: 1000,
				Replicas: map[string]uint64{"r1": 8000}, DegradedCommits: 3,
				RetainedLog: 512, LogTrims: 2,
			},
			{
				Role: "replica", DeliveredLSN: 8000, AppliedLSN: 7500, CommitHorizon: 7000,
				StalenessBytes: 2000, ReplicaReads: 17, OpenTxns: 2, Warming: 1,
				Failed: "boom", ApplyLagBytes: 500, LagTrendBps: -128,
				Redo: &sm.RedoStats{
					Workers: 4, MaxQueueDepth: 9, Resizes: 2,
					Appliers: []sm.RedoApplierStat{{AppliedLSN: 7400, QueueDepth: 3}},
				},
			},
		},
	}
	b, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", &got, want)
	}
	// Spot-check the field names the clients grep for.
	for _, key := range []string{`"stage_latency"`, `"coverage_pct"`, `"total_p50_us"`, `"resizes"`, `"apply_lag_bytes"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("wire format missing %s in %s", key, b)
		}
	}
}

// TestHTTPEndpoints drives the pull-style surface end to end: a live
// tracer feeds /metrics (Prometheus text with cumulative stage buckets),
// /snapshot serves the JSON view, and the pprof index answers.
func TestHTTPEndpoints(t *testing.T) {
	s, _, de, conv := rig(t)
	tr := trace.New(trace.Config{SampleEvery: 1})
	defer tr.Close()
	// One traced transaction with two spans so the stage histograms and
	// the coverage accounting have content.
	tt := tr.Begin(7)
	start := time.Now().Add(-time.Millisecond)
	tt.SetStart(start)
	tt.Span(trace.StageExec, 0, start, 600*time.Microsecond)
	tt.Span(trace.StageFlushWait, -1, start.Add(600*time.Microsecond), 300*time.Microsecond)
	tt.Finish(nil)

	src := &Source{
		SM: s, Dora: de, Trace: tr,
		Engines: []CommitCounter{
			CounterAdapter{EngineName: "conventional", Committed: &conv.Committed, Aborted: &conv.Aborted},
		},
	}
	ts := httptest.NewServer(Handler(src))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`dora_engine_committed_total{engine="conventional"}`,
		"dora_trace_sampled_total 1",
		`dora_stage_latency_microseconds_bucket{stage="exec",le="1024"} 1`,
		`dora_stage_latency_microseconds_bucket{stage="exec",le="+Inf"} 1`,
		`dora_stage_latency_microseconds_count{stage="total"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get("/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.StageLatency == nil || snap.StageLatency.Sampled != 1 {
		t.Fatalf("/snapshot stage latency: %+v", snap.StageLatency)
	}

	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

// TestAdmissionOnTheWire wires a live admission controller into the
// Source and checks both surfaces doramon and Prometheus scrape: the
// JSON snapshot carries the autopilot view, and /metrics exposes the
// cap/shedding/per-class series.
func TestAdmissionOnTheWire(t *testing.T) {
	s, tbl, de, _ := rig(t)
	ctrl := admission.New(de, admission.Config{
		SLO:      50 * time.Millisecond,
		Interval: time.Hour, // no autonomous ticks: the test drives traffic only
	})
	defer ctrl.Stop()

	flow := func(k int64) *xct.Flow {
		return xct.NewFlow("r").AddPhase(&xct.Action{
			Table: "kv", KeyField: "k", Key: k, Mode: xct.Read,
			Run: func(env *xct.Env) error {
				_, err := env.Ses.Read(env.Txn, tbl, k)
				return err
			},
		})
	}
	for i := int64(1); i <= 5; i++ {
		done := make(chan error, 1)
		ctrl.ExecAsync(0, flow(i), func(err error) { done <- err })
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	src := &Source{SM: s, Dora: de, Admission: ctrl}
	snap := src.Sample(nil, 0)
	if snap.Admission == nil {
		t.Fatal("snapshot missing admission view")
	}
	if snap.Admission.AdmittedRead != 5 {
		t.Fatalf("admitted reads = %d, want 5", snap.Admission.AdmittedRead)
	}
	if snap.Admission.Cap == 0 || snap.Admission.SLOMS != 50 {
		t.Fatalf("admission view: %+v", snap.Admission)
	}
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"admission"`, `"slo_ms"`, `"admitted_read"`, `"shed_read"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("wire format missing %s", key)
		}
	}

	ts := httptest.NewServer(Handler(src))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"dora_admission_cap ",
		"dora_admission_shedding 0",
		`dora_admission_admitted_total{class="read"} 5`,
		"dora_admission_slo_ms 50",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}
