package monitor

import (
	"testing"
	"time"

	"dora/internal/catalog"
	"dora/internal/dora"
	"dora/internal/engine/conventional"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/xct"
)

func rig(t *testing.T) (*sm.SM, *catalog.Table, *dora.Dora, *conventional.Engine) {
	t.Helper()
	cs := &metrics.CriticalSectionStats{}
	s, err := sm.Open(sm.Options{Frames: 128, CS: cs})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.CreateTable(sm.TableSpec{
		Name:      "kv",
		Fields:    []catalog.Field{{Name: "k", Type: tuple.TInt}, {Name: "v", Type: tuple.TInt}},
		KeyFields: []string{"k"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
	})
	if err != nil {
		t.Fatal(err)
	}
	ses := s.Session(0)
	load := s.Begin()
	for i := int64(1); i <= 100; i++ {
		_ = ses.Insert(load, tbl, tuple.Record{tuple.I(i), tuple.I(0)})
	}
	_ = s.Commit(load)
	de := dora.New(s, dora.Config{PartitionsPerTable: 2, Domains: map[string][2]int64{"kv": {1, 100}}})
	t.Cleanup(func() { _ = de.Close() })
	return s, tbl, de, conventional.New(s)
}

func TestSampleFields(t *testing.T) {
	s, tbl, de, conv := rig(t)
	src := &Source{
		SM:   s,
		Dora: de,
		Engines: []CommitCounter{
			CounterAdapter{EngineName: "conventional", Committed: &conv.Committed, Aborted: &conv.Aborted},
			CounterAdapter{EngineName: "dora", Committed: &de.Committed, Aborted: &de.Aborted},
		},
	}
	flow := func(k int64) *xct.Flow {
		return xct.NewFlow("w").AddPhase(&xct.Action{
			Table: "kv", KeyField: "k", Key: k, Mode: xct.Write,
			Run: func(env *xct.Env) error {
				return env.Ses.Mutate(env.Txn, tbl, k, func(r tuple.Record) tuple.Record {
					r[1] = tuple.I(r[1].Int + 1)
					return r
				})
			},
		})
	}
	for i := int64(1); i <= 10; i++ {
		if err := conv.Exec(0, flow(i)); err != nil {
			t.Fatal(err)
		}
		if err := de.Exec(0, flow(i)); err != nil {
			t.Fatal(err)
		}
	}
	prev := src.Sample(nil, 0)
	snap := src.Sample(prev, time.Second)
	if len(snap.Engines) != 2 {
		t.Fatalf("engines = %d", len(snap.Engines))
	}
	if snap.Engines[0].Committed != 10 || snap.Engines[1].Committed != 10 {
		t.Fatalf("commit counts: %+v", snap.Engines)
	}
	if len(snap.Partitions) != 2 {
		t.Fatalf("partitions = %d", len(snap.Partitions))
	}
	if len(snap.Routing["kv"]) != 2 {
		t.Fatalf("routing = %v", snap.Routing)
	}
	if snap.CS.Total() == 0 {
		t.Fatal("critical sections not sampled")
	}
	if snap.LogAppends == 0 {
		t.Fatal("log appends not sampled")
	}
}

func TestServerStreams(t *testing.T) {
	s, _, de, conv := rig(t)
	src := &Source{
		SM: s, Dora: de,
		Engines: []CommitCounter{
			CounterAdapter{EngineName: "conventional", Committed: &conv.Committed, Aborted: &conv.Aborted},
		},
	}
	sv := NewServer(src, 20*time.Millisecond)
	addr, err := sv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	snaps, err := ReadSnapshots(addr, 3, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	if snaps[0].At.IsZero() {
		t.Fatal("zero timestamp")
	}
	if len(snaps[0].Partitions) == 0 {
		t.Fatal("no partition stats over the wire")
	}
}
