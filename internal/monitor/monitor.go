// Package monitor implements the live-systems interface of the demo
// (§2.2): a TCP server that streams JSON snapshots of both engines'
// real-time statistics — throughput, per-micro-engine utilization and
// queue lengths, partitioning information as it changes under the load
// balancer, lock-manager critical-section counts, and alignment
// counters. The demo GUI (its Figure 1) is a client of exactly this
// interface; cmd/doramon ships a terminal client.
package monitor

import (
	"bufio"
	"encoding/json"
	"net"
	"sync"
	"time"

	"dora/internal/admission"
	"dora/internal/dora"
	"dora/internal/maint"
	"dora/internal/metrics"
	"dora/internal/repl"
	"dora/internal/sm"
	"dora/internal/trace"
)

// EngineView is the per-engine slice of a snapshot.
type EngineView struct {
	Name       string  `json:"name"`
	Committed  int64   `json:"committed"`
	Aborted    int64   `json:"aborted"`
	Throughput float64 `json:"throughput"` // txn/s since previous snapshot
}

// Snapshot is one monitoring sample.
type Snapshot struct {
	At         time.Time            `json:"at"`
	Engines    []EngineView         `json:"engines"`
	Partitions []dora.PartitionStat `json:"partitions,omitempty"`
	// Routing lists, per table, the current ranges (partitioning info
	// "which dynamically changes, as DORA adjusts").
	Routing map[string][]RangeView `json:"routing,omitempty"`
	// CS is the critical-section accounting of the shared storage manager.
	CS metrics.SnapshotCS `json:"critical_sections"`
	// Unaligned is per-table, per-field non-aligned dispatch counts.
	Unaligned map[string]map[string]int64 `json:"unaligned,omitempty"`
	// BufferHitRate is the buffer pool hit rate.
	BufferHitRate float64 `json:"buffer_hit_rate"`
	// LogAppends / LogForces / GroupCommits describe the WAL.
	LogAppends   int64 `json:"log_appends"`
	LogForces    int64 `json:"log_forces"`
	GroupCommits int64 `json:"group_commits"`
	// Heaps reports, per table, the owner-thread read/write counters and
	// the stamped-page count — the physical-layout convergence signal the
	// maintenance daemon works on and the latch-free write path depends
	// on.
	Heaps map[string]HeapView `json:"heaps,omitempty"`
	// PageCleaning is the buffer pool's copy-on-write cleaning
	// accounting: snapshot requests shipped to owner threads, hardened
	// copies that retired a dirty bit, and forced stamped evictions.
	PageCleaning *PageCleaningView `json:"page_cleaning,omitempty"`
	// Maint is the maintenance daemon's progress (nil when none runs).
	Maint *maint.Stats `json:"maint,omitempty"`
	// Ships is the DORA engine's cross-partition ship accounting:
	// blocking vs continuation ships, continuations delivered, actions
	// currently suspended on in-flight foreign operations, the inbox
	// depth continuation traffic contributes, and any diagnosed ship
	// cycles (nil without a DORA engine).
	Ships *dora.ShipStats `json:"ships,omitempty"`
	// Locks is the DORA engine's local-lock-table accounting: grant
	// operations, coarse range locks, escalations/de-escalations, and
	// maintenance busy-gate probes (nil without a DORA engine).
	Locks *dora.LockStats `json:"locks,omitempty"`
	// Replication carries one view per replication role this process
	// plays (a primary shipping its log, a replica replaying one, or
	// both when a read replica runs in-process).
	Replication []ReplicationView `json:"replication,omitempty"`
	// StageLatency is the transaction tracer's per-stage latency
	// decomposition (nil when no tracer is wired into the Source).
	StageLatency *StageLatencyView `json:"stage_latency,omitempty"`
	// Admission is the overload autopilot's state: the adaptive
	// in-flight cap, windowed p99 against the SLO target, and per-class
	// admit/shed totals (nil when no controller runs).
	Admission *AdmissionView `json:"admission,omitempty"`
}

// AdmissionView is the admission controller's snapshot as it appears
// on the monitoring wire.
type AdmissionView = admission.Stats

// StageLatencyView is the tracer's aggregate snapshot as it appears on
// the monitoring wire: sample accounting, end-to-end quantiles, span
// coverage, and one StageView per stage with observations.
type StageLatencyView = trace.StageLatency

// ReplicationView is the replication slice of a snapshot: the shipping
// and acknowledgement horizons on a primary, the delivery/replay/commit
// horizons and bounded-staleness lag on a replica.
type ReplicationView struct {
	Role string `json:"role"` // "primary" or "replica"
	// Primary side: the end LSN handed to links, each replica's acked
	// LSN, the slowest ack (the log-truncation constraint), the byte lag
	// of the slowest replica, and commits completed without their quorum.
	ShippedLSN      uint64            `json:"shipped_lsn,omitempty"`
	Replicas        map[string]uint64 `json:"replicas,omitempty"`
	AckHorizon      uint64            `json:"ack_horizon,omitempty"`
	LagBytes        uint64            `json:"lag_bytes,omitempty"`
	DegradedCommits int64             `json:"degraded_commits,omitempty"`
	// RetainedLog / LogTrims report the cleaning-aware truncation daemon.
	RetainedLog uint64 `json:"retained_log,omitempty"`
	LogTrims    int64  `json:"log_trims,omitempty"`
	// Replica side: the hardened delivery horizon, the replayed horizon,
	// the commit horizon read-only sessions observe, the staleness in
	// bytes behind the primary's commit horizon (when the primary is in
	// reach), read-only flows served, and transactions open in the stream.
	DeliveredLSN   uint64 `json:"delivered_lsn,omitempty"`
	AppliedLSN     uint64 `json:"applied_lsn,omitempty"`
	CommitHorizon  uint64 `json:"commit_horizon,omitempty"`
	StalenessBytes uint64 `json:"staleness_bytes,omitempty"`
	ReplicaReads   int64  `json:"replica_reads,omitempty"`
	OpenTxns       int    `json:"open_txns,omitempty"`
	// Warming counts bootstrapped transactions whose resolution has not
	// replayed yet (reads refused meanwhile); Failed carries the replica's
	// fail-stop reason, empty while healthy.
	Warming int    `json:"warming,omitempty"`
	Failed  string `json:"failed,omitempty"`
	// ApplyLagBytes is the delivered-but-unapplied backlog (DeliveredLSN
	// minus AppliedLSN): what the replay pipeline still owes readers.
	ApplyLagBytes uint64 `json:"apply_lag_bytes,omitempty"`
	// LagTrendBps is the staleness rate of change in bytes/second since
	// the previous snapshot — negative while the replica catches up,
	// positive while it falls behind (zero with no previous sample).
	LagTrendBps int64 `json:"lag_trend_bps,omitempty"`
	// Redo is the parallel-redo applier pool's view (nil when replaying
	// serially): worker count, high-water queue depth, and each applier's
	// last-applied LSN and current queue depth.
	Redo *sm.RedoStats `json:"redo,omitempty"`
}

// ReplSource bundles the replication endpoints the monitor samples. Any
// field may be nil; Primary is the staleness reference for Replica.
type ReplSource struct {
	Shipper *repl.Shipper
	Trimmer *sm.Trimmer
	Replica *repl.Replica
	Primary *sm.SM
}

func (r *ReplSource) views() []ReplicationView {
	var out []ReplicationView
	if r.Shipper != nil {
		v := ReplicationView{
			Role:            "primary",
			ShippedLSN:      r.Shipper.ShippedLSN(),
			Replicas:        r.Shipper.Replicas(),
			DegradedCommits: r.Shipper.Degraded.Load(),
		}
		if ack := r.Shipper.AckHorizon(); ack != ^uint64(0) {
			v.AckHorizon = ack
			if v.ShippedLSN > ack {
				v.LagBytes = v.ShippedLSN - ack
			}
		}
		if r.Trimmer != nil {
			v.RetainedLog = r.Trimmer.Retained()
			v.LogTrims = r.Trimmer.Trims.Load()
		}
		out = append(out, v)
	}
	if r.Replica != nil {
		v := ReplicationView{
			Role:          "replica",
			DeliveredLSN:  r.Replica.Expected(),
			AppliedLSN:    r.Replica.AppliedLSN(),
			CommitHorizon: r.Replica.CommitHorizon(),
			ReplicaReads:  r.Replica.Reads.Load(),
			OpenTxns:      r.Replica.OpenTxns(),
			Warming:       r.Replica.Warming(),
		}
		if err := r.Replica.Failed(); err != nil {
			v.Failed = err.Error()
		}
		if v.DeliveredLSN > v.AppliedLSN {
			v.ApplyLagBytes = v.DeliveredLSN - v.AppliedLSN
		}
		if rs := r.Replica.RedoStats(); rs.Workers > 0 {
			v.Redo = &rs
		}
		if r.Primary != nil {
			if pc := r.Primary.LastCommitLSN(); pc > v.CommitHorizon {
				v.StalenessBytes = pc - v.CommitHorizon
			}
		}
		out = append(out, v)
	}
	return out
}

// HeapView is one table's heap-ownership statistics.
type HeapView struct {
	OwnedReads         int64 `json:"owned_reads"`
	OwnedReadsLatched  int64 `json:"owned_reads_latched"`
	OwnedWrites        int64 `json:"owned_writes"`
	OwnedWritesLatched int64 `json:"owned_writes_latched"`
	StampedPages       int   `json:"stamped_pages"`
}

// PageCleaningView is the pool's copy-on-write cleaning accounting.
type PageCleaningView struct {
	SnapshotShips    int64 `json:"snapshot_ships"`
	SnapshotCleans   int64 `json:"snapshot_cleans"`
	StampedEvictions int64 `json:"stamped_evictions"`
	DirtyWrites      int64 `json:"dirty_writes"`
}

// RangeView is one routing range.
type RangeView struct {
	Lo   int64 `json:"lo"`
	Hi   int64 `json:"hi"`
	Part int   `json:"part"`
}

// CommitCounter exposes an engine's outcome counters (both engines'
// Committed/Aborted metrics satisfy it via adapters below).
type CommitCounter interface {
	Name() string
	CommittedCount() int64
	AbortedCount() int64
}

// Source bundles what the monitor samples.
type Source struct {
	SM        *sm.SM
	Dora      *dora.Dora            // optional
	Maint     *maint.Daemon         // optional
	Repl      *ReplSource           // optional replication endpoints
	Trace     *trace.Tracer         // optional latency tracer
	Admission *admission.Controller // optional overload autopilot
	Engines   []CommitCounter       // any number of engines
}

// Sample builds one snapshot; prev (may be nil) supplies deltas for
// throughput computation.
func (s *Source) Sample(prev *Snapshot, dt time.Duration) *Snapshot {
	snap := &Snapshot{At: time.Now(), Routing: map[string][]RangeView{}}
	for i, e := range s.Engines {
		v := EngineView{Name: e.Name(), Committed: e.CommittedCount(), Aborted: e.AbortedCount()}
		if prev != nil && i < len(prev.Engines) && dt > 0 {
			v.Throughput = float64(v.Committed-prev.Engines[i].Committed) / dt.Seconds()
		}
		snap.Engines = append(snap.Engines, v)
	}
	if s.SM != nil {
		if s.SM.CS != nil {
			snap.CS = s.SM.CS.Snapshot()
		}
		snap.BufferHitRate = s.SM.Pool.HitRate()
		ls := s.SM.Log.Stats()
		snap.LogAppends = ls.Appends
		snap.LogForces = ls.Forces
		snap.GroupCommits = ls.GroupedCommits
		for _, tbl := range s.SM.Cat.Tables() {
			hv := HeapView{
				OwnedReads:         tbl.Heap.OwnedReads.Load(),
				OwnedReadsLatched:  tbl.Heap.OwnedReadsLatched.Load(),
				OwnedWrites:        tbl.Heap.OwnedWrites.Load(),
				OwnedWritesLatched: tbl.Heap.OwnedWritesLatched.Load(),
				StampedPages:       tbl.Heap.StampedPages(),
			}
			if hv.OwnedReads == 0 && hv.OwnedWrites == 0 && hv.StampedPages == 0 {
				continue
			}
			if snap.Heaps == nil {
				snap.Heaps = map[string]HeapView{}
			}
			snap.Heaps[tbl.Name] = hv
		}
		pc := PageCleaningView{
			SnapshotShips:    s.SM.Pool.SnapshotShips.Load(),
			SnapshotCleans:   s.SM.Pool.SnapshotCleans.Load(),
			StampedEvictions: s.SM.Pool.StampedEvictions.Load(),
			DirtyWrites:      s.SM.Pool.DirtyWrites.Load(),
		}
		// Present only when the CoW protocol itself ran: plain dirty
		// write-backs alone (conventional engine) are not page cleaning.
		if pc.SnapshotShips+pc.SnapshotCleans+pc.StampedEvictions > 0 {
			snap.PageCleaning = &pc
		}
	}
	if s.Maint != nil {
		st := s.Maint.Snapshot()
		snap.Maint = &st
	}
	if s.Repl != nil {
		snap.Replication = s.Repl.views()
		// Staleness trend: rate of change of the replica's lag against the
		// matching view of the previous snapshot.
		if prev != nil && dt > 0 {
			for i := range snap.Replication {
				v := &snap.Replication[i]
				if v.Role != "replica" {
					continue
				}
				for _, pv := range prev.Replication {
					if pv.Role == "replica" {
						d := int64(v.StalenessBytes) - int64(pv.StalenessBytes)
						v.LagTrendBps = int64(float64(d) / dt.Seconds())
						break
					}
				}
			}
		}
	}
	if sl := s.Trace.Snapshot(); sl != nil && sl.Sampled > 0 {
		snap.StageLatency = sl
	}
	if s.Admission != nil {
		st := s.Admission.Snapshot()
		snap.Admission = &st
	}
	if s.Dora != nil {
		snap.Partitions = s.Dora.PartitionStats()
		ships := s.Dora.ShipSnapshot()
		snap.Ships = &ships
		locks := s.Dora.LockSnapshot()
		snap.Locks = &locks
		for _, tbl := range s.SM.Cat.Tables() {
			rt := s.Dora.Router(tbl.Name)
			if rt == nil {
				continue
			}
			for _, r := range rt.Ranges() {
				snap.Routing[tbl.Name] = append(snap.Routing[tbl.Name],
					RangeView{Lo: r.Lo, Hi: r.Hi, Part: r.Part})
			}
		}
		_, unaligned := s.Dora.AlignmentStats(false)
		if len(unaligned) > 0 {
			snap.Unaligned = map[string]map[string]int64{}
			for id, m := range unaligned {
				if tbl := s.SM.Cat.TableByID(id); tbl != nil {
					snap.Unaligned[tbl.Name] = m
				}
			}
		}
	}
	return snap
}

// Server streams snapshots to TCP clients, one JSON object per line.
type Server struct {
	src    *Source
	every  time.Duration
	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	stop   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// NewServer builds a monitor server sampling at the given period.
func NewServer(src *Source, every time.Duration) *Server {
	if every <= 0 {
		every = time.Second
	}
	return &Server{src: src, every: every, conns: map[net.Conn]struct{}{}, stop: make(chan struct{})}
}

// Listen binds addr (e.g. "127.0.0.1:7070") and starts streaming.
// It returns the bound address (useful with ":0").
func (sv *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	sv.ln = ln
	sv.wg.Add(2)
	go sv.acceptLoop()
	go sv.broadcastLoop()
	return ln.Addr().String(), nil
}

func (sv *Server) acceptLoop() {
	defer sv.wg.Done()
	for {
		c, err := sv.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sv.mu.Lock()
		if sv.closed {
			sv.mu.Unlock()
			c.Close()
			return
		}
		sv.conns[c] = struct{}{}
		sv.mu.Unlock()
	}
}

func (sv *Server) broadcastLoop() {
	defer sv.wg.Done()
	t := time.NewTicker(sv.every)
	defer t.Stop()
	var prev *Snapshot
	last := time.Now()
	for {
		select {
		case <-sv.stop:
			return
		case now := <-t.C:
			snap := sv.src.Sample(prev, now.Sub(last))
			prev, last = snap, now
			line, err := json.Marshal(snap)
			if err != nil {
				continue
			}
			line = append(line, '\n')
			sv.mu.Lock()
			for c := range sv.conns {
				c.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
				if _, err := c.Write(line); err != nil {
					c.Close()
					delete(sv.conns, c)
				}
			}
			sv.mu.Unlock()
		}
	}
}

// Close stops the server and disconnects clients.
func (sv *Server) Close() error {
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		return nil
	}
	sv.closed = true
	for c := range sv.conns {
		c.Close()
		delete(sv.conns, c)
	}
	sv.mu.Unlock()
	close(sv.stop)
	err := sv.ln.Close()
	sv.wg.Wait()
	return err
}

// ReadSnapshots connects to a monitor server and delivers n snapshots
// (client helper for tools and tests).
func ReadSnapshots(addr string, n int, timeout time.Duration) ([]*Snapshot, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(timeout))
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []*Snapshot
	for len(out) < n && sc.Scan() {
		var s Snapshot
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return out, err
		}
		out = append(out, &s)
	}
	return out, sc.Err()
}

// CounterAdapter adapts any engine with metrics counters to CommitCounter.
type CounterAdapter struct {
	EngineName string
	Committed  *metrics.Counter
	Aborted    *metrics.Counter
}

// Name implements CommitCounter.
func (a CounterAdapter) Name() string { return a.EngineName }

// CommittedCount implements CommitCounter.
func (a CounterAdapter) CommittedCount() int64 { return a.Committed.Load() }

// AbortedCount implements CommitCounter.
func (a CounterAdapter) AbortedCount() int64 {
	if a.Aborted == nil {
		return 0
	}
	return a.Aborted.Load()
}
