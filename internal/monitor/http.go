package monitor

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"dora/internal/metrics"
)

// HTTP observability surface: the same Source the TCP streamer samples,
// exposed pull-style for standard tooling.
//
//	/metrics          Prometheus text exposition (counters, gauges, and
//	                  the tracer's per-stage latency histograms)
//	/snapshot         one monitor Snapshot as JSON (the TCP line format,
//	                  on demand)
//	/debug/pprof/...  the runtime profiles (CPU, heap, goroutine, block,
//	                  mutex, execution trace)
//
// The exposition is hand-rolled — no client library dependency — but
// follows the text format: HELP/TYPE headers, cumulative `le` bucket
// counts ending in +Inf, _sum and _count series per histogram. Bucket
// bounds are the power-of-two microsecond uppers of metrics.Histogram
// (trailing empty buckets are collapsed into +Inf to keep scrapes
// small).

// httpState carries the previous snapshot so /snapshot reports
// throughput deltas across successive scrapes, like the TCP stream does
// across ticks.
type httpState struct {
	mu   sync.Mutex
	prev *Snapshot
	last time.Time
}

func (st *httpState) sample(src *Source) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := time.Now()
	var dt time.Duration
	if st.prev != nil {
		dt = now.Sub(st.last)
	}
	snap := src.Sample(st.prev, dt)
	st.prev, st.last = snap, now
	return snap
}

// Handler builds the observability mux over src. pprof is wired
// explicitly (not via the DefaultServeMux side effect of importing
// net/http/pprof) so callers compose it with their own muxes safely.
func Handler(src *Source) http.Handler {
	st := &httpState{}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeProm(w, src, st.sample(src))
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st.sample(src))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenHTTP binds addr (e.g. "127.0.0.1:8080", or ":0" for an ephemeral
// port), serves the Handler mux on it, and returns the bound address and
// a closer.
func ListenHTTP(src *Source, addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(src)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

func writeProm(w http.ResponseWriter, src *Source, snap *Snapshot) {
	fmt.Fprintf(w, "# HELP dora_engine_committed_total Transactions committed per engine.\n")
	fmt.Fprintf(w, "# TYPE dora_engine_committed_total counter\n")
	for _, e := range snap.Engines {
		fmt.Fprintf(w, "dora_engine_committed_total{engine=%q} %d\n", e.Name, e.Committed)
	}
	fmt.Fprintf(w, "# HELP dora_engine_aborted_total Transactions aborted per engine.\n")
	fmt.Fprintf(w, "# TYPE dora_engine_aborted_total counter\n")
	for _, e := range snap.Engines {
		fmt.Fprintf(w, "dora_engine_aborted_total{engine=%q} %d\n", e.Name, e.Aborted)
	}
	fmt.Fprintf(w, "# HELP dora_log_appends_total WAL records appended.\n# TYPE dora_log_appends_total counter\ndora_log_appends_total %d\n", snap.LogAppends)
	fmt.Fprintf(w, "# HELP dora_log_forces_total WAL device forces.\n# TYPE dora_log_forces_total counter\ndora_log_forces_total %d\n", snap.LogForces)
	fmt.Fprintf(w, "# HELP dora_group_commits_total Commits hardened by another transaction's force.\n# TYPE dora_group_commits_total counter\ndora_group_commits_total %d\n", snap.GroupCommits)
	fmt.Fprintf(w, "# HELP dora_buffer_hit_rate Buffer pool hit rate.\n# TYPE dora_buffer_hit_rate gauge\ndora_buffer_hit_rate %g\n", snap.BufferHitRate)
	if sl := snap.StageLatency; sl != nil {
		fmt.Fprintf(w, "# HELP dora_trace_sampled_total Transactions the latency tracer sampled.\n# TYPE dora_trace_sampled_total counter\ndora_trace_sampled_total %d\n", sl.Sampled)
		fmt.Fprintf(w, "# HELP dora_trace_dropped_total Span records dropped on full rings.\n# TYPE dora_trace_dropped_total counter\ndora_trace_dropped_total %d\n", sl.Dropped)
		fmt.Fprintf(w, "# HELP dora_trace_slow_total Traced transactions past the slow threshold.\n# TYPE dora_trace_slow_total counter\ndora_trace_slow_total %d\n", sl.Slow)
		fmt.Fprintf(w, "# HELP dora_trace_coverage_pct Share of traced end-to-end time the spans explain.\n# TYPE dora_trace_coverage_pct gauge\ndora_trace_coverage_pct %g\n", sl.CoveragePct)
	}
	if src.Trace.Enabled() {
		fmt.Fprintf(w, "# HELP dora_stage_latency_microseconds Per-stage transaction latency.\n")
		fmt.Fprintf(w, "# TYPE dora_stage_latency_microseconds histogram\n")
		src.Trace.ForEachStage(func(name string, h *metrics.Histogram) {
			writePromHist(w, name, h)
		})
	}
	if ad := snap.Admission; ad != nil {
		fmt.Fprintf(w, "# HELP dora_admission_cap Adaptive in-flight admission cap.\n# TYPE dora_admission_cap gauge\ndora_admission_cap %d\n", ad.Cap)
		fmt.Fprintf(w, "# HELP dora_admission_in_flight Admitted flows in flight.\n# TYPE dora_admission_in_flight gauge\ndora_admission_in_flight %d\n", ad.InFlight)
		fmt.Fprintf(w, "# HELP dora_admission_shedding Whether the controller is currently shedding (1) or not (0).\n# TYPE dora_admission_shedding gauge\ndora_admission_shedding %d\n", boolGauge(ad.Shedding))
		fmt.Fprintf(w, "# HELP dora_admission_window_p99_ms Windowed p99 latency seen by the control loop.\n# TYPE dora_admission_window_p99_ms gauge\ndora_admission_window_p99_ms %g\n", ad.WindowP99MS)
		fmt.Fprintf(w, "# HELP dora_admission_slo_ms Configured p99 SLO target.\n# TYPE dora_admission_slo_ms gauge\ndora_admission_slo_ms %g\n", ad.SLOMS)
		fmt.Fprintf(w, "# HELP dora_admission_slo_attained_pct Share of control ticks within the SLO.\n# TYPE dora_admission_slo_attained_pct gauge\ndora_admission_slo_attained_pct %g\n", ad.SLOAttainedPct())
		fmt.Fprintf(w, "# HELP dora_admission_admitted_total Flows admitted, by class.\n# TYPE dora_admission_admitted_total counter\n")
		fmt.Fprintf(w, "dora_admission_admitted_total{class=\"read\"} %d\n", ad.AdmittedRead)
		fmt.Fprintf(w, "dora_admission_admitted_total{class=\"write\"} %d\n", ad.AdmittedWrite)
		fmt.Fprintf(w, "dora_admission_admitted_total{class=\"maintenance\"} %d\n", ad.AdmittedMaint)
		fmt.Fprintf(w, "# HELP dora_admission_shed_total Flows shed with ErrOverload, by class.\n# TYPE dora_admission_shed_total counter\n")
		fmt.Fprintf(w, "dora_admission_shed_total{class=\"read\"} %d\n", ad.ShedRead)
		fmt.Fprintf(w, "dora_admission_shed_total{class=\"write\"} %d\n", ad.ShedWrite)
		fmt.Fprintf(w, "dora_admission_shed_total{class=\"maintenance\"} %d\n", ad.ShedMaint)
		fmt.Fprintf(w, "# HELP dora_admission_offloaded_reads_total Read flows diverted to the replica offload engine.\n# TYPE dora_admission_offloaded_reads_total counter\ndora_admission_offloaded_reads_total %d\n", ad.OffloadedReads)
	}
}

// boolGauge renders a bool as a 0/1 Prometheus gauge value.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// writePromHist emits one stage histogram in the text format: cumulative
// bucket counts keyed by their upper bound in microseconds, trailing
// empty buckets folded into +Inf.
func writePromHist(w http.ResponseWriter, stage string, h *metrics.Histogram) {
	buckets := h.Buckets()
	hi := -1
	for i, n := range buckets {
		if n > 0 {
			hi = i
		}
	}
	cum := int64(0)
	for i := 0; i <= hi; i++ {
		cum += buckets[i]
		fmt.Fprintf(w, "dora_stage_latency_microseconds_bucket{stage=%q,le=%q} %d\n",
			stage, fmt.Sprint(metrics.BucketUpperMicros(i)), cum)
	}
	fmt.Fprintf(w, "dora_stage_latency_microseconds_bucket{stage=%q,le=\"+Inf\"} %d\n", stage, h.Count())
	fmt.Fprintf(w, "dora_stage_latency_microseconds_sum{stage=%q} %d\n", stage, h.SumMicros())
	fmt.Fprintf(w, "dora_stage_latency_microseconds_count{stage=%q} %d\n", stage, h.Count())
}
