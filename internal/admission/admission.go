// Package admission implements an SLO-targeted admission controller
// that sits in front of an asynchronous execution engine (dora.Dora's
// ExecAsync). The controller adapts a global in-flight cap with an
// AIMD loop driven by live windowed p99 and queue-wait latency
// signals: while the observed p99 sits under the SLO target the cap
// grows additively, and every control interval that observes the p99
// over the target cuts the cap multiplicatively. Arrivals beyond the
// cap are shed with a typed, client-visible ErrOverload carrying a
// RetryAfter hint — overload degrades goodput by refusing work early
// instead of letting queueing delay collapse the latency of the work
// that is admitted.
//
// Shedding is priority-ordered. Read-only flows are shed last (and,
// when a read offload engine such as repl.ReadEngine is wired, they
// are diverted to it instead of shed); update flows shed next; and
// maintenance-class flows shed first. The controller also exports a
// Shedding() gate so background actuators — the maint.Daemon's
// migration batches and the balancer's repartitions — can yield to
// foreground SLO instead of competing with it while the system is
// over the target.
package admission

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dora/internal/metrics"
	"dora/internal/xct"
)

// Class is the priority class of a flow for shedding decisions. Lower
// classes shed first.
type Class uint8

const (
	// ClassMaintenance is background/batch work: shed first.
	ClassMaintenance Class = iota
	// ClassWrite is foreground update work: shed after maintenance.
	ClassWrite
	// ClassRead is foreground read-only work: shed last (offloaded to a
	// read replica instead, when one is wired).
	ClassRead
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassMaintenance:
		return "maintenance"
	case ClassWrite:
		return "write"
	case ClassRead:
		return "read"
	}
	return "unknown"
}

// ClassOf derives a flow's priority class from its action modes: a
// flow whose every action is a read is ClassRead, anything touching a
// write is ClassWrite. Maintenance flows are never derived — callers
// submitting background batches tag them via ExecClassAsync.
func ClassOf(flow *xct.Flow) Class {
	if flow == nil {
		return ClassWrite // conservative: unknown shape sheds with writes
	}
	for _, p := range flow.Phases {
		for _, a := range p.Actions {
			if a.Mode != xct.Read {
				return ClassWrite
			}
		}
	}
	return ClassRead
}

// ErrOverload is the typed refusal returned (through the done
// callback or Exec) for a shed flow. RetryAfter is the controller's
// hint for how long the client should back off before retrying; it
// grows with consecutive over-SLO control intervals.
type ErrOverload struct {
	Class      Class
	RetryAfter time.Duration
}

// Error implements error.
func (e ErrOverload) Error() string {
	return fmt.Sprintf("overload: %s flow shed, retry after %v", e.Class, e.RetryAfter)
}

// Overload marks the error as a shed and returns the backoff hint;
// callers that must not import this package can probe for the method.
func (e ErrOverload) Overload() time.Duration { return e.RetryAfter }

// IsOverload reports whether err is (or wraps) a shed refusal, and
// returns its RetryAfter hint.
func IsOverload(err error) (time.Duration, bool) {
	var oe interface{ Overload() time.Duration }
	if errors.As(err, &oe) {
		return oe.Overload(), true
	}
	return 0, false
}

// AsyncEngine is the slice of an engine the controller fronts
// (dora.Dora.ExecAsync satisfies it; so does workload.AsyncEngine).
type AsyncEngine interface {
	ExecAsync(worker int, flow *xct.Flow, done func(error))
}

// SyncEngine is a synchronous engine usable as a read-offload target
// (repl.ReadEngine and any engine.Engine satisfy it).
type SyncEngine interface {
	Exec(worker int, flow *xct.Flow) error
}

// Config parameterizes the controller. The zero value of every field
// except SLO gets a sensible default.
type Config struct {
	// SLO is the end-to-end p99 latency target (required; the knob).
	SLO time.Duration
	// MinCap / MaxCap bound the adaptive in-flight cap (8 / 4096).
	MinCap int
	MaxCap int
	// InitialCap seeds the cap (default MaxCap/8, at least MinCap):
	// start conservative, grow additively while under the SLO.
	InitialCap int
	// Interval is the control-loop period (default 50ms). Each tick
	// reads the windowed p99 observed since the previous tick.
	Interval time.Duration
	// Decrease is the multiplicative-decrease factor applied to the cap
	// on an over-SLO tick (default 0.7).
	Decrease float64
	// IncreaseFrac is the additive-increase step as a fraction of the
	// current cap, at least one slot per tick (default 1/8).
	IncreaseFrac float64
	// LowWater is the fraction of the SLO below which the cap grows
	// (default 0.85); between LowWater*SLO and SLO the cap holds.
	LowWater float64
	// QueueWaitFrac sheds early: a windowed queue-wait p99 above
	// QueueWaitFrac*SLO counts as an over tick even before the
	// end-to-end p99 crosses the target (default 0.5; <0 disables).
	QueueWaitFrac float64
	// MinSamples is the number of windowed observations below which a
	// tick holds the cap rather than acting on noise (default 16).
	MinSamples int64
	// Signal, when set, supplies an external windowed (p99, queue-wait
	// p99, sample count) — see TraceSignal, which derives both from the
	// tracer histograms the monitor already publishes. The controller
	// always also observes its own admitted-completion latencies; the
	// effective p99 is the worse of the two signals.
	Signal func() (p99, queueWait time.Duration, samples int64)
	// Offload, when set, receives read-only flows that would otherwise
	// be shed (replica read offload). Offloaded reads do not consume
	// the primary's in-flight cap; they are bounded by OffloadCap.
	Offload SyncEngine
	// OffloadCap bounds concurrently offloaded reads (default MaxCap).
	OffloadCap int
}

func (c *Config) fill() {
	if c.MinCap <= 0 {
		c.MinCap = 8
	}
	if c.MaxCap <= 0 {
		c.MaxCap = 4096
	}
	if c.MaxCap < c.MinCap {
		c.MaxCap = c.MinCap
	}
	if c.InitialCap <= 0 {
		c.InitialCap = c.MaxCap / 8
	}
	if c.InitialCap < c.MinCap {
		c.InitialCap = c.MinCap
	}
	if c.InitialCap > c.MaxCap {
		c.InitialCap = c.MaxCap
	}
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.Decrease <= 0 || c.Decrease >= 1 {
		c.Decrease = 0.7
	}
	if c.IncreaseFrac <= 0 {
		c.IncreaseFrac = 1.0 / 8
	}
	if c.LowWater <= 0 || c.LowWater > 1 {
		c.LowWater = 0.85
	}
	if c.QueueWaitFrac == 0 {
		c.QueueWaitFrac = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	if c.OffloadCap <= 0 {
		c.OffloadCap = c.MaxCap
	}
}

// calmTicks is how many consecutive under-SLO ticks with no sheds it
// takes for Shedding() to clear, so the pacing gates don't flap.
const calmTicks = 2

// Controller fronts an AsyncEngine with SLO-driven admission control.
// Create with New; it satisfies engine.Engine (Exec blocks) as well as
// the async shape workload.OpenLoop drives.
type Controller struct {
	cfg Config
	eng AsyncEngine

	cap      atomic.Int64 // current adaptive in-flight cap
	inFlight atomic.Int64
	offloadN atomic.Int64
	shedding atomic.Bool
	retryNS  atomic.Int64 // current RetryAfter hint

	// winLat collects admitted-completion latencies for the current
	// control window; each tick reads its p99 and resets it.
	winLat    metrics.Histogram
	winSheds  metrics.Counter
	lastP99US atomic.Int64
	lastQWUS  atomic.Int64

	admitted  [3]metrics.Counter
	shed      [3]metrics.Counter
	offloaded metrics.Counter
	capIncs   metrics.Counter
	capDecs   metrics.Counter
	ticksOver metrics.Counter
	ticks     metrics.Counter

	overTicks int // consecutive over-SLO ticks (loop goroutine only)
	calm      int // consecutive calm ticks while shedding

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// New returns a running controller fronting eng. Close (or Stop)
// stops the control loop; the underlying engine is never closed.
func New(eng AsyncEngine, cfg Config) *Controller {
	cfg.fill()
	c := &Controller{
		cfg:  cfg,
		eng:  eng,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	c.cap.Store(int64(cfg.InitialCap))
	c.retryNS.Store(int64(cfg.Interval))
	go c.loop()
	return c
}

// SLO returns the configured p99 target.
func (c *Controller) SLO() time.Duration { return c.cfg.SLO }

// Name implements engine.Engine.
func (c *Controller) Name() string {
	if n, ok := c.eng.(interface{ Name() string }); ok {
		return "admission+" + n.Name()
	}
	return "admission"
}

// Stop halts the control loop (idempotent). The cap freezes at its
// current value; admission checks keep working.
func (c *Controller) Stop() {
	c.closeOnce.Do(func() {
		close(c.stop)
		<-c.done
	})
}

// Close implements engine.Engine; it stops the control loop and does
// NOT close the underlying engine (the controller does not own it).
func (c *Controller) Close() error {
	c.Stop()
	return nil
}

// Shedding reports whether the controller is currently over the SLO
// or actively refusing arrivals. Background actuators (maintenance
// migration batches, balancer repartitions) use it as a pacing gate:
// while true, convergence work should yield to foreground load.
func (c *Controller) Shedding() bool { return c.shedding.Load() }

// Cap returns the current adaptive in-flight cap.
func (c *Controller) Cap() int64 { return c.cap.Load() }

// InFlight returns the number of admitted, uncompleted flows.
func (c *Controller) InFlight() int64 { return c.inFlight.Load() }

// classLimit is the in-flight threshold for a class against the
// current cap: reads use the whole cap, writes leave a 1/8 headroom
// reserve for reads, and maintenance batches only half the cap — so
// as in-flight rises toward the cap, maintenance sheds first, then
// writes, then reads.
func classLimit(cap int64, class Class) int64 {
	switch class {
	case ClassRead:
		return cap
	case ClassWrite:
		return cap - cap/8
	default:
		return cap / 2
	}
}

// ExecAsync admits or sheds flow and, when admitted, hands it to the
// underlying engine. The priority class is derived from the flow's
// action modes (ClassOf); done receives ErrOverload on a shed.
func (c *Controller) ExecAsync(worker int, flow *xct.Flow, done func(error)) {
	c.ExecClassAsync(worker, ClassOf(flow), flow, done)
}

// ExecClassAsync is ExecAsync with an explicit priority class (for
// maintenance-class batch submitters; foreground callers normally let
// ExecAsync derive read/write from the flow).
func (c *Controller) ExecClassAsync(worker int, class Class, flow *xct.Flow, done func(error)) {
	if int(class) > int(ClassRead) {
		class = ClassWrite
	}
	limit := classLimit(c.cap.Load(), class)
	if n := c.inFlight.Add(1); n > limit {
		c.inFlight.Add(-1)
		if class == ClassRead && c.cfg.Offload != nil &&
			c.offloadN.Add(1) <= int64(c.cfg.OffloadCap) {
			c.offloaded.Inc()
			go func() {
				err := c.cfg.Offload.Exec(worker, flow)
				c.offloadN.Add(-1)
				done(err)
			}()
			return
		} else if class == ClassRead && c.cfg.Offload != nil {
			c.offloadN.Add(-1)
		}
		c.shed[class].Inc()
		c.winSheds.Inc()
		c.shedding.Store(true)
		done(ErrOverload{Class: class, RetryAfter: c.RetryAfter()})
		return
	}
	c.admitted[class].Inc()
	t0 := time.Now()
	c.eng.ExecAsync(worker, flow, func(err error) {
		c.winLat.Observe(time.Since(t0))
		c.inFlight.Add(-1)
		done(err)
	})
}

// Exec is the blocking form of ExecAsync (engine.Engine's shape): it
// returns ErrOverload when the flow is shed.
func (c *Controller) Exec(worker int, flow *xct.Flow) error {
	ch := make(chan error, 1)
	c.ExecAsync(worker, flow, func(err error) { ch <- err })
	return <-ch
}

// RetryAfter returns the current backoff hint attached to sheds: the
// control interval, doubled for every consecutive over-SLO tick (so
// clients back off harder the longer the overload lasts), capped at
// one second.
func (c *Controller) RetryAfter() time.Duration {
	return time.Duration(c.retryNS.Load())
}

func (c *Controller) loop() {
	defer close(c.done)
	tick := time.NewTicker(c.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			p99, qw, n := c.windowSignals()
			c.step(p99, qw, n)
		}
	}
}

// windowSignals merges the controller's own windowed completion p99
// with the external (tracer) signal, taking the worse of the two.
func (c *Controller) windowSignals() (p99, queueWait time.Duration, samples int64) {
	samples = c.winLat.Count()
	p99 = time.Duration(c.winLat.Quantile(0.99)) * time.Microsecond
	c.winLat.Reset()
	if c.cfg.Signal != nil {
		sp99, sqw, sn := c.cfg.Signal()
		if sp99 > p99 {
			p99 = sp99
		}
		queueWait = sqw
		samples += sn
	}
	return p99, queueWait, samples
}

// step runs one AIMD control decision against the windowed signals.
// Exported behavior is tested directly (no timers) in the unit tests.
func (c *Controller) step(p99, queueWait time.Duration, samples int64) {
	c.ticks.Inc()
	c.lastP99US.Store(p99.Microseconds())
	c.lastQWUS.Store(queueWait.Microseconds())
	sheds := c.winSheds.Reset()
	cap := c.cap.Load()
	over := false
	if samples >= c.cfg.MinSamples {
		over = p99 > c.cfg.SLO
		if !over && c.cfg.QueueWaitFrac > 0 && queueWait > 0 {
			over = float64(queueWait) > c.cfg.QueueWaitFrac*float64(c.cfg.SLO)
		}
	} else if inflight := c.inFlight.Load(); inflight > 0 && inflight >= cap/2 {
		// Stall detection: a window in which almost nothing completed
		// while the pipe was at least half full is the worst latency
		// signal there is — a convoy (hot-owner serialization, a lock
		// chain) has everything admitted and nothing finishing, so the
		// completion-based p99 goes silent exactly when it matters.
		// Treat the silence itself as an over-SLO tick.
		over = true
	}
	switch {
	case over:
		c.ticksOver.Inc()
		c.overTicks++
		c.calm = 0
		next := int64(float64(cap) * c.cfg.Decrease)
		if next < int64(c.cfg.MinCap) {
			next = int64(c.cfg.MinCap)
		}
		if next < cap {
			c.cap.Store(next)
			c.capDecs.Inc()
		}
		c.shedding.Store(true)
	case samples >= c.cfg.MinSamples && float64(p99) <= c.cfg.LowWater*float64(c.cfg.SLO):
		c.overTicks = 0
		step := int64(float64(cap) * c.cfg.IncreaseFrac)
		if step < 1 {
			step = 1
		}
		next := cap + step
		if next > int64(c.cfg.MaxCap) {
			next = int64(c.cfg.MaxCap)
		}
		if next > cap {
			c.cap.Store(next)
			c.capIncs.Inc()
		}
	default:
		// Deadband (or too few samples): hold the cap.
		c.overTicks = 0
	}
	if !over {
		if sheds == 0 {
			c.calm++
			if c.calm >= calmTicks {
				c.shedding.Store(false)
			}
		} else {
			c.calm = 0
		}
	}
	// Backoff hint: interval doubled per consecutive over tick, ≤ 1s.
	shift := c.overTicks
	if shift > 4 {
		shift = 4
	}
	ra := c.cfg.Interval << uint(shift)
	if ra > time.Second {
		ra = time.Second
	}
	c.retryNS.Store(int64(ra))
}

// Stats is a point-in-time snapshot of the controller, serialized by
// the monitor into its snapshot stream.
type Stats struct {
	SLOMS      float64 `json:"slo_ms"`
	Cap        int64   `json:"cap"`
	InFlight   int64   `json:"in_flight"`
	OffloadNow int64   `json:"offload_now,omitempty"`
	Shedding   bool    `json:"shedding"`
	// Windowed signals as of the last control tick.
	WindowP99MS       float64 `json:"window_p99_ms"`
	WindowQueueWaitMS float64 `json:"window_queue_wait_ms,omitempty"`
	// Cumulative admission outcomes by class.
	AdmittedRead   int64 `json:"admitted_read"`
	AdmittedWrite  int64 `json:"admitted_write"`
	AdmittedMaint  int64 `json:"admitted_maint,omitempty"`
	ShedRead       int64 `json:"shed_read"`
	ShedWrite      int64 `json:"shed_write"`
	ShedMaint      int64 `json:"shed_maint,omitempty"`
	OffloadedReads int64 `json:"offloaded_reads,omitempty"`
	// Control-loop activity.
	CapIncreases int64 `json:"cap_increases"`
	CapDecreases int64 `json:"cap_decreases"`
	TicksOver    int64 `json:"ticks_over"`
	Ticks        int64 `json:"ticks"`
}

// SLOAttainedPct is the fraction of control ticks that observed the
// windowed p99 within the SLO, as a percentage (100 when no tick has
// fired yet).
func (s Stats) SLOAttainedPct() float64 {
	if s.Ticks == 0 {
		return 100
	}
	return 100 * float64(s.Ticks-s.TicksOver) / float64(s.Ticks)
}

// ShedTotal sums sheds across classes.
func (s Stats) ShedTotal() int64 { return s.ShedRead + s.ShedWrite + s.ShedMaint }

// AdmittedTotal sums admissions across classes.
func (s Stats) AdmittedTotal() int64 {
	return s.AdmittedRead + s.AdmittedWrite + s.AdmittedMaint
}

// Snapshot returns current controller statistics.
func (c *Controller) Snapshot() Stats {
	return Stats{
		SLOMS:             float64(c.cfg.SLO.Microseconds()) / 1e3,
		Cap:               c.cap.Load(),
		InFlight:          c.inFlight.Load(),
		OffloadNow:        c.offloadN.Load(),
		Shedding:          c.shedding.Load(),
		WindowP99MS:       float64(c.lastP99US.Load()) / 1e3,
		WindowQueueWaitMS: float64(c.lastQWUS.Load()) / 1e3,
		AdmittedRead:      c.admitted[ClassRead].Load(),
		AdmittedWrite:     c.admitted[ClassWrite].Load(),
		AdmittedMaint:     c.admitted[ClassMaintenance].Load(),
		ShedRead:          c.shed[ClassRead].Load(),
		ShedWrite:         c.shed[ClassWrite].Load(),
		ShedMaint:         c.shed[ClassMaintenance].Load(),
		OffloadedReads:    c.offloaded.Load(),
		CapIncreases:      c.capIncs.Load(),
		CapDecreases:      c.capDecs.Load(),
		TicksOver:         c.ticksOver.Load(),
		Ticks:             c.ticks.Load(),
	}
}
