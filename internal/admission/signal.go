package admission

import (
	"sync"
	"time"

	"dora/internal/metrics"
	"dora/internal/trace"
)

// TraceSignal adapts a trace.Tracer into the controller's Signal
// shape. The tracer publishes cumulative per-stage histograms (the
// same ones the monitor's StageLatency view serializes); TraceSignal
// turns them into per-window signals by differencing the bucket
// counts between successive calls, yielding the p99 of the "total"
// (end-to-end) histogram and of the queue_wait stage over just the
// last control interval. Windowing matters: a cumulative p99 reacts
// to an overload spike only after the spike dominates the whole run,
// far too slowly to drive a control loop.
type TraceSignal struct {
	T *trace.Tracer

	mu        sync.Mutex
	prevTotal [metrics.HistogramBuckets]int64
	prevQW    [metrics.HistogramBuckets]int64
}

// Window returns the p99 of end-to-end latency and of queue wait over
// the observations recorded since the previous call, plus the number
// of new end-to-end samples. Safe on a nil receiver or nil tracer
// (returns zeros).
func (s *TraceSignal) Window() (p99, queueWait time.Duration, samples int64) {
	if s == nil || s.T == nil {
		return 0, 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	qwName := trace.StageQueueWait.String()
	s.T.ForEachStage(func(name string, h *metrics.Histogram) {
		switch name {
		case "total":
			var us int64
			us, samples = deltaQuantile(&s.prevTotal, h.Buckets(), 0.99)
			p99 = time.Duration(us) * time.Microsecond
		case qwName:
			us, _ := deltaQuantile(&s.prevQW, h.Buckets(), 0.99)
			queueWait = time.Duration(us) * time.Microsecond
		}
	})
	return p99, queueWait, samples
}

// deltaQuantile computes the quantile upper bound (µs) of the bucket
// deltas cur-prev and stores cur into prev. A tracer Reset between
// calls makes some delta negative; the window then falls back to the
// post-reset counts alone.
func deltaQuantile(prev *[metrics.HistogramBuckets]int64, cur [metrics.HistogramBuckets]int64, q float64) (us, count int64) {
	var delta [metrics.HistogramBuckets]int64
	reset := false
	for i := range cur {
		delta[i] = cur[i] - prev[i]
		if delta[i] < 0 {
			reset = true
		}
	}
	if reset {
		delta = cur
	}
	*prev = cur
	for _, d := range delta {
		count += d
	}
	if count == 0 {
		return 0, 0
	}
	target := int64(q * float64(count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, d := range delta {
		seen += d
		if seen >= target {
			return metrics.BucketUpperMicros(i), count
		}
	}
	return metrics.BucketUpperMicros(metrics.HistogramBuckets - 1), count
}
