package admission

import (
	"math/rand"
	"testing"
	"time"

	"dora/internal/catalog"
	"dora/internal/dora"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/workload"
	"dora/internal/xct"
)

// stormRig builds an sm + one table of n rows (value column seeded 100)
// + a DORA engine over it.
func stormRig(t *testing.T, n int64, parts int) (*sm.SM, *catalog.Table, *dora.Dora) {
	t.Helper()
	s, err := sm.Open(sm.Options{Frames: 512})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.CreateTable(sm.TableSpec{
		Name: "accounts",
		Fields: []catalog.Field{
			{Name: "id", Type: tuple.TInt},
			{Name: "v", Type: tuple.TInt},
		},
		KeyFields: []string{"id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
	})
	if err != nil {
		t.Fatal(err)
	}
	ses := s.Session(0)
	load := s.Begin()
	for i := int64(1); i <= n; i++ {
		if err := ses.Insert(load, tbl, tuple.Record{tuple.I(i), tuple.I(100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(load); err != nil {
		t.Fatal(err)
	}
	e := dora.New(s, dora.Config{
		PartitionsPerTable: parts,
		Domains:            map[string][2]int64{"accounts": {1, n}},
	})
	t.Cleanup(func() { _ = e.Close(); _ = s.Close() })
	return s, tbl, e
}

func stormSum(t *testing.T, s *sm.SM, tbl *catalog.Table, n int64) int64 {
	t.Helper()
	ses := s.Session(99)
	txn := s.Begin()
	var total int64
	for i := int64(1); i <= n; i++ {
		rec, err := ses.Read(txn, tbl, i)
		if err != nil {
			t.Fatalf("read accounts[%d]: %v", i, err)
		}
		total += rec[1].Int
	}
	return total
}

// TestShedStormRace is the adversarial composition under -race: a flash
// crowd spiking far past capacity, a live split/merge storm
// re-partitioning the table mid-flight, and the autopilot shedding in
// front of it all. Afterwards the ground truth must hold exactly-once
// semantics: the table's value sum equals the initial load plus one per
// COMMITTED transaction — shed flows (typed ErrOverload) left zero
// effects, and no committed effect was lost or doubled through the
// repartitions.
func TestShedStormRace(t *testing.T) {
	const n = 200
	s, tbl, de := stormRig(t, n, 2)

	bump := func(r tuple.Record) tuple.Record {
		r[1] = tuple.I(r[1].Int + 1)
		return r
	}
	mix := workload.Mix{
		{Name: "bump", Weight: 70, Build: func(rng *rand.Rand) *xct.Flow {
			k := 1 + rng.Int63n(n)
			return xct.NewFlow("bump").AddPhase(&xct.Action{
				Table: "accounts", KeyField: "id", Key: k, Mode: xct.Write,
				Run: func(env *xct.Env) error {
					return env.Ses.Mutate(env.Txn, tbl, k, bump)
				},
			})
		}},
		{Name: "peek", Weight: 30, Build: func(rng *rand.Rand) *xct.Flow {
			k := 1 + rng.Int63n(n)
			return xct.NewFlow("peek").AddPhase(&xct.Action{
				Table: "accounts", KeyField: "id", Key: k, Mode: xct.Read,
				Run: func(env *xct.Env) error {
					_, err := env.Ses.Read(env.Txn, tbl, k)
					return err
				},
			})
		}},
	}

	ctrl := New(de, Config{
		SLO:        5 * time.Millisecond,
		Interval:   5 * time.Millisecond,
		MinCap:     8,
		MaxCap:     32,
		InitialCap: 32,
	})
	defer ctrl.Stop()

	dur := 600 * time.Millisecond
	if testing.Short() {
		dur = 200 * time.Millisecond
	}

	// The live repartition storm: split mid-range, fold straight back,
	// for the whole run.
	stop := make(chan struct{})
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		for cycle := 0; ; cycle++ {
			select {
			case <-stop:
				return
			default:
			}
			rt := de.Router("accounts")
			ranges := rt.Ranges()
			r := ranges[cycle%len(ranges)]
			if r.Hi-r.Lo >= 2 {
				if nw, err := de.SplitPartition("accounts", r.Part, r.Lo+(r.Hi-r.Lo)/2); err == nil {
					time.Sleep(time.Millisecond)
					_ = de.MergePartition("accounts", nw, r.Part)
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	sc := &workload.Scenario{
		Name:   "shed storm",
		Mix:    mix,
		RateOf: workload.FlashCrowd(2000, 30000, dur/4, dur/2),
	}
	res := sc.Run(ctrl, 512, dur, 42)
	close(stop)
	<-stormDone

	if res.Committed == 0 {
		t.Fatal("no transactions committed through the storm")
	}
	if res.Shed == 0 {
		t.Fatal("flash crowd at 30k/s past a 32-cap never shed")
	}
	st := ctrl.Snapshot()
	if st.ShedTotal() != res.Shed {
		t.Fatalf("controller sheds %d != driver-observed sheds %d", st.ShedTotal(), res.Shed)
	}
	if res.RetryAfterMeanMS <= 0 {
		t.Fatalf("sheds carried no RetryAfter hint (mean %.1fms)", res.RetryAfterMeanMS)
	}
	// Exactly-once ground truth: every commit bumped exactly one row by
	// one; sheds and aborts left nothing behind.
	var committedBumps int64
	committedBumps = res.Committed - readCommits(t, res)
	got := stormSum(t, s, tbl, n)
	want := n*100 + committedBumps
	if got != want {
		t.Fatalf("value sum = %d, want %d (init %d + %d committed bumps): shed or aborted flows leaked effects, or commits were lost/doubled",
			got, want, n*100, committedBumps)
	}
	if ss := de.ShipSnapshot(); ss.SuspendedNow != 0 {
		t.Fatalf("suspended actions leaked: %d", ss.SuspendedNow)
	}
}

// readCommits extracts how many committed transactions were read-only
// (their bump count is zero) from the per-class latency summaries.
func readCommits(t *testing.T, res workload.OpenResult) int64 {
	t.Helper()
	if res.ReadLat.Committed+res.WriteLat.Committed != res.Committed {
		t.Fatalf("class commit split %d+%d != %d",
			res.ReadLat.Committed, res.WriteLat.Committed, res.Committed)
	}
	return res.ReadLat.Committed
}
