package admission

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dora/internal/xct"
)

// fakeEngine is an AsyncEngine whose completion the test controls:
// with block set, flows park until Release.
type fakeEngine struct {
	mu     sync.Mutex
	block  bool
	parked []func(error)
	execs  int
}

func (f *fakeEngine) Name() string { return "fake" }

func (f *fakeEngine) ExecAsync(worker int, flow *xct.Flow, done func(error)) {
	f.mu.Lock()
	f.execs++
	if f.block {
		f.parked = append(f.parked, done)
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	done(nil)
}

func (f *fakeEngine) Release() {
	f.mu.Lock()
	parked := f.parked
	f.parked = nil
	f.mu.Unlock()
	for _, done := range parked {
		done(nil)
	}
}

// fakeSync is a SyncEngine counting offloaded executions.
type fakeSync struct {
	mu    sync.Mutex
	execs int
}

func (f *fakeSync) Exec(worker int, flow *xct.Flow) error {
	f.mu.Lock()
	f.execs++
	f.mu.Unlock()
	return nil
}

func readFlow() *xct.Flow {
	return xct.NewFlow("r").AddPhase(&xct.Action{
		Table: "t", KeyField: "id", Key: 1, Mode: xct.Read,
	})
}

func writeFlow() *xct.Flow {
	return xct.NewFlow("w").AddPhase(&xct.Action{
		Table: "t", KeyField: "id", Key: 1, Mode: xct.Read,
	}).AddPhase(&xct.Action{
		Table: "t", KeyField: "id", Key: 2, Mode: xct.Write,
	})
}

// idleCfg keeps the control loop from ever ticking, so tests drive
// step() deterministically.
func idleCfg(cfg Config) Config {
	cfg.Interval = time.Hour
	return cfg
}

func TestClassOf(t *testing.T) {
	if got := ClassOf(readFlow()); got != ClassRead {
		t.Fatalf("all-read flow classed %v", got)
	}
	if got := ClassOf(writeFlow()); got != ClassWrite {
		t.Fatalf("mixed flow classed %v", got)
	}
	if got := ClassOf(nil); got != ClassWrite {
		t.Fatalf("nil flow classed %v, want conservative write", got)
	}
}

func TestOverloadError(t *testing.T) {
	err := ErrOverload{Class: ClassWrite, RetryAfter: 5 * time.Millisecond}
	ra, ok := IsOverload(err)
	if !ok || ra != 5*time.Millisecond {
		t.Fatalf("IsOverload = (%v, %v)", ra, ok)
	}
	// Wrapped errors still answer through errors.As.
	if _, ok := IsOverload(fmt.Errorf("submit: %w", err)); !ok {
		t.Fatal("wrapped overload not detected")
	}
	if _, ok := IsOverload(errors.New("other")); ok {
		t.Fatal("non-overload detected as overload")
	}
}

// TestClassLimits: the shed order is maintenance first, then writes,
// then reads — encoded as strictly rising in-flight thresholds.
func TestClassLimits(t *testing.T) {
	const cap = 64
	m, w, r := classLimit(cap, ClassMaintenance), classLimit(cap, ClassWrite), classLimit(cap, ClassRead)
	if !(m < w && w < r) {
		t.Fatalf("limits maint=%d write=%d read=%d, want maint < write < read", m, w, r)
	}
	if r != cap {
		t.Fatalf("read limit %d, want full cap %d", r, cap)
	}
}

// TestShedPriorityOrdering fills the controller to each class threshold
// with parked flows and verifies who sheds at that level.
func TestShedPriorityOrdering(t *testing.T) {
	eng := &fakeEngine{block: true}
	c := New(eng, idleCfg(Config{SLO: 10 * time.Millisecond, MinCap: 8, MaxCap: 64, InitialCap: 64}))
	defer c.Stop()
	defer eng.Release()

	admit := func(class Class) error {
		ch := make(chan error, 1)
		c.ExecClassAsync(0, class, readFlow(), func(err error) { ch <- err })
		select {
		case err := <-ch:
			return err
		default:
			return nil // parked = admitted
		}
	}
	// Fill to the maintenance threshold (cap/2 = 32).
	for i := int64(0); i < classLimit(64, ClassMaintenance); i++ {
		if err := admit(ClassRead); err != nil {
			t.Fatalf("fill admit %d: %v", i, err)
		}
	}
	if err := admit(ClassMaintenance); err == nil {
		t.Fatal("maintenance admitted at cap/2")
	} else if _, ok := IsOverload(err); !ok {
		t.Fatalf("maintenance shed with %v, want ErrOverload", err)
	}
	if err := admit(ClassWrite); err != nil {
		t.Fatalf("write shed at cap/2: %v", err)
	}
	// Fill to the write threshold (cap - cap/8 = 56): note one write
	// slot is already used by the admit above.
	for c.InFlight() < classLimit(64, ClassWrite) {
		if err := admit(ClassRead); err != nil {
			t.Fatalf("fill to write limit: %v", err)
		}
	}
	if err := admit(ClassWrite); err == nil {
		t.Fatal("write admitted at write threshold")
	}
	if err := admit(ClassRead); err != nil {
		t.Fatalf("read shed below full cap: %v", err)
	}
	// Fill to the full cap: now even reads shed.
	for c.InFlight() < 64 {
		if err := admit(ClassRead); err != nil {
			t.Fatalf("fill to cap: %v", err)
		}
	}
	if err := admit(ClassRead); err == nil {
		t.Fatal("read admitted past the cap")
	}
	if !c.Shedding() {
		t.Fatal("Shedding() false after sheds")
	}
	st := c.Snapshot()
	if st.ShedMaint == 0 || st.ShedWrite == 0 || st.ShedRead == 0 {
		t.Fatalf("shed counters %d/%d/%d, want all > 0", st.ShedRead, st.ShedWrite, st.ShedMaint)
	}
	eng.Release()
	if got := c.InFlight(); got != 0 {
		t.Fatalf("in-flight %d after release, want 0", got)
	}
}

// TestAIMDConvergence drives step() against a queueing model where p99
// is proportional to the cap (latency = in-flight work / service rate):
// the cap must settle around the knee implied by the SLO, using both
// increase and decrease actions, instead of pinning to a bound.
func TestAIMDConvergence(t *testing.T) {
	eng := &fakeEngine{}
	c := New(eng, idleCfg(Config{SLO: 10 * time.Millisecond, MinCap: 8, MaxCap: 4096, InitialCap: 512}))
	defer c.Stop()
	// Model: p99 = cap * 100us, so the SLO knee is cap = 100.
	perUnit := 100 * time.Microsecond
	for i := 0; i < 100; i++ {
		p99 := time.Duration(c.Cap()) * perUnit
		c.step(p99, 0, 1000)
	}
	st := c.Snapshot()
	if st.Cap < 50 || st.Cap > 160 {
		t.Fatalf("cap = %d after convergence, want near knee 100", st.Cap)
	}
	if st.CapIncreases == 0 || st.CapDecreases == 0 {
		t.Fatalf("incs=%d decs=%d, want both active (AIMD oscillation)", st.CapIncreases, st.CapDecreases)
	}
	if st.TicksOver == 0 || st.TicksOver >= st.Ticks {
		t.Fatalf("ticksOver=%d of %d, want some but not all", st.TicksOver, st.Ticks)
	}
}

// TestAIMDQueueWaitSignal: a queue-wait p99 past QueueWaitFrac*SLO is an
// over tick even while the end-to-end p99 still looks healthy.
func TestAIMDQueueWaitSignal(t *testing.T) {
	c := New(&fakeEngine{}, idleCfg(Config{SLO: 100 * time.Millisecond, InitialCap: 512}))
	defer c.Stop()
	before := c.Cap()
	c.step(10*time.Millisecond, 60*time.Millisecond, 1000)
	if got := c.Cap(); got >= before {
		t.Fatalf("cap %d -> %d, want decrease on queue-wait signal", before, got)
	}
	if !c.Shedding() {
		t.Fatal("not shedding after queue-wait over tick")
	}
}

// TestStallDetection: a window with (almost) no completions while the
// pipe is at least half full must count as over — a convoy's silence is
// the worst latency signal there is.
func TestStallDetection(t *testing.T) {
	eng := &fakeEngine{block: true}
	c := New(eng, idleCfg(Config{SLO: 10 * time.Millisecond, MinCap: 8, MaxCap: 64, InitialCap: 64}))
	defer c.Stop()
	defer eng.Release()
	for i := 0; i < 40; i++ { // fill past cap/2 with parked flows
		c.ExecClassAsync(0, ClassRead, readFlow(), func(error) {})
	}
	before := c.Cap()
	c.step(0, 0, 0) // silent window
	if got := c.Cap(); got >= before {
		t.Fatalf("cap %d -> %d, want decrease on stalled window", before, got)
	}
	if !c.Shedding() {
		t.Fatal("not shedding during stall")
	}
	// An idle window (nothing in flight) is NOT a stall.
	eng.Release()
	c2 := New(&fakeEngine{}, idleCfg(Config{SLO: 10 * time.Millisecond, InitialCap: 64}))
	defer c2.Stop()
	before = c2.Cap()
	c2.step(0, 0, 0)
	if got := c2.Cap(); got != before {
		t.Fatalf("idle window moved cap %d -> %d", before, got)
	}
}

// TestSheddingClearsAfterCalm: shed state latches until calmTicks
// consecutive healthy, shed-free windows pass.
func TestSheddingClearsAfterCalm(t *testing.T) {
	c := New(&fakeEngine{}, idleCfg(Config{SLO: 10 * time.Millisecond, InitialCap: 64}))
	defer c.Stop()
	c.step(50*time.Millisecond, 0, 1000) // over: sheds begin
	if !c.Shedding() {
		t.Fatal("not shedding after over tick")
	}
	for i := 0; i < calmTicks; i++ {
		if !c.Shedding() {
			t.Fatalf("shedding cleared after only %d calm ticks", i)
		}
		c.step(time.Millisecond, 0, 1000)
	}
	if c.Shedding() {
		t.Fatal("shedding still set after calm ticks")
	}
}

// TestRetryAfterBackoff: the hint doubles per consecutive over tick and
// is capped.
func TestRetryAfterBackoff(t *testing.T) {
	iv := 50 * time.Millisecond
	c := New(&fakeEngine{}, idleCfg(Config{SLO: 10 * time.Millisecond, InitialCap: 64}))
	c.Stop()            // park the autonomous loop; the test drives step() itself
	c.cfg.Interval = iv // restore a real interval for the hint math
	c.step(time.Second, 0, 1000)
	if got := c.RetryAfter(); got != 2*iv {
		t.Fatalf("retry after 1 over tick = %v, want %v", got, 2*iv)
	}
	for i := 0; i < 10; i++ {
		c.step(time.Second, 0, 1000)
	}
	if got := c.RetryAfter(); got != 16*iv {
		t.Fatalf("retry after many over ticks = %v, want capped %v", got, 16*iv)
	}
	c.step(time.Millisecond, 0, 1000) // healthy: backoff resets
	if got := c.RetryAfter(); got != iv {
		t.Fatalf("retry after recovery = %v, want %v", got, iv)
	}
}

// TestOffloadReads: a read that would shed goes to the offload engine
// instead and does not consume the primary cap.
func TestOffloadReads(t *testing.T) {
	eng := &fakeEngine{block: true}
	off := &fakeSync{}
	c := New(eng, idleCfg(Config{SLO: 10 * time.Millisecond, MinCap: 8, MaxCap: 16, InitialCap: 16, Offload: off}))
	defer c.Stop()
	defer eng.Release()
	for i := 0; i < 16; i++ {
		c.ExecClassAsync(0, ClassRead, readFlow(), func(error) {})
	}
	ch := make(chan error, 1)
	c.ExecAsync(0, readFlow(), func(err error) { ch <- err })
	select {
	case err := <-ch:
		if err != nil {
			t.Fatalf("offloaded read failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("offloaded read never completed")
	}
	off.mu.Lock()
	execs := off.execs
	off.mu.Unlock()
	if execs != 1 {
		t.Fatalf("offload execs = %d, want 1", execs)
	}
	st := c.Snapshot()
	if st.OffloadedReads != 1 || st.ShedRead != 0 {
		t.Fatalf("offloaded=%d shedRead=%d, want 1/0", st.OffloadedReads, st.ShedRead)
	}
	// Writes never offload: they shed.
	c.ExecAsync(0, writeFlow(), func(err error) { ch <- err })
	if err := <-ch; err == nil {
		t.Fatal("write admitted past cap with offload set")
	} else if _, ok := IsOverload(err); !ok {
		t.Fatalf("write shed with %v", err)
	}
}

// TestExecSyncShape: the blocking form returns the shed error directly.
func TestExecSyncShape(t *testing.T) {
	c := New(&fakeEngine{}, idleCfg(Config{SLO: 10 * time.Millisecond, InitialCap: 16}))
	defer c.Stop()
	if err := c.Exec(0, readFlow()); err != nil {
		t.Fatalf("uncontended exec: %v", err)
	}
	st := c.Snapshot()
	if st.AdmittedRead != 1 {
		t.Fatalf("admitted read = %d", st.AdmittedRead)
	}
	if c.Name() != "admission+fake" {
		t.Fatalf("Name() = %q", c.Name())
	}
}

// TestSnapshotAttainment: SLO attainment is the share of ticks not over.
func TestSnapshotAttainment(t *testing.T) {
	c := New(&fakeEngine{}, idleCfg(Config{SLO: 10 * time.Millisecond, InitialCap: 64}))
	defer c.Stop()
	for i := 0; i < 3; i++ {
		c.step(time.Second, 0, 1000) // over
	}
	c.step(time.Millisecond, 0, 1000) // healthy
	st := c.Snapshot()
	if st.Ticks != 4 || st.TicksOver != 3 {
		t.Fatalf("ticks=%d over=%d", st.Ticks, st.TicksOver)
	}
	if got := st.SLOAttainedPct(); got != 25 {
		t.Fatalf("attained = %.1f, want 25", got)
	}
	if st.SLOMS != 10 {
		t.Fatalf("slo ms = %v", st.SLOMS)
	}
}

// TestTraceSignalNil: a signal over a nil tracer reports silence, not a
// panic.
func TestTraceSignalNil(t *testing.T) {
	var s TraceSignal
	p99, qw, n := s.Window()
	if p99 != 0 || qw != 0 || n != 0 {
		t.Fatalf("nil tracer window = %v %v %d", p99, qw, n)
	}
}
