package storage

import (
	"bytes"
	"testing"

	"dora/internal/buffer"
)

func newHeap(t *testing.T) *Heap {
	t.Helper()
	return NewHeap(buffer.NewPool(64, buffer.NewMemDisk(), nil))
}

func TestRIDPack(t *testing.T) {
	r := RID{Page: 123456, Slot: 789}
	if got := UnpackRID(r.Pack()); got != r {
		t.Fatalf("round trip %v -> %v", r, got)
	}
}

func TestInsertGetUpdateDelete(t *testing.T) {
	h := newHeap(t)
	rid, err := h.Insert([]byte("record one"), 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Get(rid)
	if err != nil || string(b) != "record one" {
		t.Fatalf("Get: %q %v", b, err)
	}
	if err := h.Update(rid, []byte("record 1!!"), 20); err != nil {
		t.Fatal(err)
	}
	b, _ = h.Get(rid)
	if string(b) != "record 1!!" {
		t.Fatalf("after update: %q", b)
	}
	if err := h.Delete(rid, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); err == nil {
		t.Fatal("Get after Delete should fail")
	}
}

func TestInsertSpillsToNewPages(t *testing.T) {
	h := newHeap(t)
	rec := make([]byte, 1024)
	rids := map[RID]bool{}
	for i := 0; i < 100; i++ {
		rec[0] = byte(i)
		rid, err := h.Insert(rec, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if rids[rid] {
			t.Fatalf("duplicate RID %v", rid)
		}
		rids[rid] = true
	}
	if len(h.Pages()) < 10 {
		t.Fatalf("expected >=10 pages for 100KB of records, got %d", len(h.Pages()))
	}
}

func TestScan(t *testing.T) {
	h := newHeap(t)
	want := map[byte]bool{}
	for i := 0; i < 50; i++ {
		if _, err := h.Insert([]byte{byte(i)}, 1); err != nil {
			t.Fatal(err)
		}
		want[byte(i)] = true
	}
	got := map[byte]bool{}
	err := h.Scan(func(rid RID, rec []byte) bool {
		got[rec[0]] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
}

func TestInsertWithLSNOrdering(t *testing.T) {
	h := newHeap(t)
	var sawRID RID
	rid, err := h.InsertWith(0, []byte("x"), func(r RID) uint64 {
		sawRID = r
		return 42
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawRID != rid {
		t.Fatalf("callback saw %v, returned %v", sawRID, rid)
	}
}

func TestUpdateWithBeforeImage(t *testing.T) {
	h := newHeap(t)
	rid, _ := h.Insert([]byte("before"), 1)
	var seen []byte
	err := h.UpdateWith(rid, []byte("after!"), func(before []byte) uint64 {
		seen = append([]byte(nil), before...)
		return 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(seen) != "before" {
		t.Fatalf("before image %q", seen)
	}
	b, _ := h.Get(rid)
	if string(b) != "after!" {
		t.Fatalf("after image %q", b)
	}
}

func TestDeleteWithBeforeImage(t *testing.T) {
	h := newHeap(t)
	rid, _ := h.Insert([]byte("doomed"), 1)
	var seen []byte
	err := h.DeleteWith(rid, func(before []byte) uint64 {
		seen = append([]byte(nil), before...)
		return 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(seen) != "doomed" {
		t.Fatalf("before image %q", seen)
	}
}

func TestRedoIdempotent(t *testing.T) {
	pool := buffer.NewPool(16, buffer.NewMemDisk(), nil)
	h := NewHeap(pool)
	rid, err := h.Insert([]byte("v1"), 100)
	if err != nil {
		t.Fatal(err)
	}
	// Redo with LSN <= page LSN must be a no-op.
	if err := h.RedoUpdate(rid, []byte("v2"), 100); err != nil {
		t.Fatal(err)
	}
	b, _ := h.Get(rid)
	if string(b) != "v1" {
		t.Fatalf("stale redo applied: %q", b)
	}
	// Redo with newer LSN applies.
	if err := h.RedoUpdate(rid, []byte("v2"), 200); err != nil {
		t.Fatal(err)
	}
	b, _ = h.Get(rid)
	if string(b) != "v2" {
		t.Fatalf("fresh redo not applied: %q", b)
	}
}

func TestRecordTooLarge(t *testing.T) {
	h := newHeap(t)
	if _, err := h.Insert(make([]byte, 9000), 1); err != ErrRecordTooLarge {
		t.Fatalf("want ErrRecordTooLarge, got %v", err)
	}
}

func TestTombstoneSlotReuseKeepsOtherRecords(t *testing.T) {
	h := newHeap(t)
	a, _ := h.Insert([]byte("aaa"), 1)
	b, _ := h.Insert([]byte("bbb"), 1)
	if err := h.Delete(a, 2); err != nil {
		t.Fatal(err)
	}
	c, _ := h.Insert([]byte("ccc"), 3)
	got, err := h.Get(b)
	if err != nil || !bytes.Equal(got, []byte("bbb")) {
		t.Fatalf("record b damaged: %q %v", got, err)
	}
	got, err = h.Get(c)
	if err != nil || !bytes.Equal(got, []byte("ccc")) {
		t.Fatalf("record c: %q %v", got, err)
	}
}
