package storage

import (
	"dora/internal/btree"
	"dora/internal/buffer"
	"dora/internal/page"
)

// Latch-free owner mutations. A page stamped to a partition worker's
// token is mutated ONLY on that worker's thread (session operations reach
// it through the partitioned tree's ExecAt ship), and — since the
// copy-on-write cleaning protocol — is never latched by the buffer pool's
// write-back either: flushing it means asking this same thread for a
// snapshot copy. Under those two facts the exclusive frame latch guards
// nothing on the owner's write path, so these operations elide it:
//
//   - the per-frame write-sequence counter (Frame.BumpWriteSeq, bumped
//     with release semantics immediately before bytes change) replaces
//     the latch for conflict detection between mutations and a hardening
//     snapshot's dirty-bit clear;
//   - the WAL-before-data rule is unchanged: mkLSN appends the log record
//     before the bytes change, and the snapshot harden forces the log to
//     the copy's page LSN before the image reaches disk;
//   - the Loading flag (a concurrent latched reader's miss mid-disk-read)
//     falls back to the latched path, exactly like GetOwned.
//
// With a nil token, an unstamped page, or the latched baseline forced
// (SetLatchedOwnerWrites), the operations take the classic exclusive
// latch and count OwnedWritesLatched — the decay signal experiment E15
// watches converge to ~0.

// UpdateOwnedWith is UpdateWith carrying the calling worker's ownership
// token: when rid's page is stamped to tok the rewrite happens without
// the frame latch. mkLSN receives the before image (aliasing the page; it
// must copy) and returns the LSN to stamp.
func (h *Heap) UpdateOwnedWith(tok *btree.Owner, rid RID, rec []byte, mkLSN func(before []byte) uint64) error {
	if tok == nil || h.latchedWrites.Load() || h.StampOwner(rid.Page) != tok {
		if tok != nil {
			h.OwnedWrites.Inc()
			h.OwnedWritesLatched.Inc()
		}
		return h.UpdateWith(rid, rec, mkLSN)
	}
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	if f.Loading() {
		h.OwnedWrites.Inc()
		h.OwnedWritesLatched.Inc()
		h.pool.Unpin(f, false)
		return h.UpdateWith(rid, rec, mkLSN)
	}
	old, err := f.Page.Get(int(rid.Slot))
	if err != nil {
		h.pool.Unpin(f, false)
		return err
	}
	// The log record must not be written unless the update applies.
	if !f.Page.CanUpdate(int(rid.Slot), len(rec)) {
		h.pool.Unpin(f, false)
		return page.ErrPageFull
	}
	h.OwnedWrites.Inc()
	lsn := mkLSN(old)
	f.BumpWriteSeq()
	if err := f.Page.Update(int(rid.Slot), rec); err != nil {
		h.pool.Unpin(f, false)
		return err
	}
	f.Page.SetLSN(lsn)
	f.MarkDirty()
	h.pool.Unpin(f, true)
	return nil
}

// DeleteOwnedWith is DeleteWith carrying the calling worker's ownership
// token (see UpdateOwnedWith).
func (h *Heap) DeleteOwnedWith(tok *btree.Owner, rid RID, mkLSN func(before []byte) uint64) error {
	if tok == nil || h.latchedWrites.Load() || h.StampOwner(rid.Page) != tok {
		if tok != nil {
			h.OwnedWrites.Inc()
			h.OwnedWritesLatched.Inc()
		}
		return h.DeleteWith(rid, mkLSN)
	}
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	if f.Loading() {
		h.OwnedWrites.Inc()
		h.OwnedWritesLatched.Inc()
		h.pool.Unpin(f, false)
		return h.DeleteWith(rid, mkLSN)
	}
	old, err := f.Page.Get(int(rid.Slot))
	if err != nil {
		h.pool.Unpin(f, false)
		return err
	}
	h.OwnedWrites.Inc()
	lsn := mkLSN(old)
	f.BumpWriteSeq()
	if err := f.Page.Delete(int(rid.Slot)); err != nil {
		h.pool.Unpin(f, false)
		return err
	}
	f.Page.SetLSN(lsn)
	f.MarkDirty()
	h.pool.Unpin(f, true)
	return nil
}

// MutateOwnedWith reads the record at rid, applies mutate to produce the
// after image, and rewrites in place — one page access for the whole
// read-modify-write, so an aligned Mutate costs a single latch-free pass
// instead of a read round and a write round. mutate's argument aliases
// the page image (copy before retaining); mkLSN receives both images
// (before aliases the page too) and appends the log record before the
// bytes change. A nil-token / unstamped / forced-latched call decomposes
// into the latched Get + UpdateWith pair.
func (h *Heap) MutateOwnedWith(tok *btree.Owner, rid RID, mutate func(before []byte) ([]byte, error), mkLSN func(before, after []byte) uint64) error {
	fastPath := tok != nil && !h.latchedWrites.Load() && h.StampOwner(rid.Page) == tok
	if fastPath {
		f, err := h.pool.Fetch(rid.Page)
		if err != nil {
			return err
		}
		if f.Loading() {
			h.pool.Unpin(f, false)
		} else {
			old, err := f.Page.Get(int(rid.Slot))
			if err != nil {
				h.pool.Unpin(f, false)
				return err
			}
			h.OwnedReads.Inc()
			rec, err := mutate(old)
			if err != nil {
				h.pool.Unpin(f, false)
				return err
			}
			if !f.Page.CanUpdate(int(rid.Slot), len(rec)) {
				h.pool.Unpin(f, false)
				return page.ErrPageFull
			}
			h.OwnedWrites.Inc()
			lsn := mkLSN(old, rec)
			f.BumpWriteSeq()
			if err := f.Page.Update(int(rid.Slot), rec); err != nil {
				h.pool.Unpin(f, false)
				return err
			}
			f.Page.SetLSN(lsn)
			f.MarkDirty()
			h.pool.Unpin(f, true)
			return nil
		}
	}
	// Latched decomposition (also the conventional engine's path, and the
	// mid-load fallback).
	img, err := h.GetOwned(tok, rid)
	if err != nil {
		return err
	}
	rec, err := mutate(img)
	if err != nil {
		return err
	}
	if tok != nil {
		h.OwnedWrites.Inc()
		h.OwnedWritesLatched.Inc()
	}
	return h.UpdateWith(rid, rec, func(before []byte) uint64 { return mkLSN(before, rec) })
}

// SnapshotOwnedPage produces the copy-on-write image the cleaning
// protocol hardens: a consistent copy of pid at a known LSN, taken at a
// quiescent point. MUST run on the thread owning tok — that is the whole
// point: no mutation of the page can be in flight while this thread is
// here, so the copy needs no latch and cannot tear. Returns false when
// the page is not (or no longer) stamped to tok — the stamp moved with a
// split/evacuate between the ship and its execution — or cannot be
// pinned; the requester re-resolves.
//
// The returned snapshot carries the frame PINNED; buffer.Pool's
// hardenSnapshot releases the pin after the conditional dirty-clear.
func (h *Heap) SnapshotOwnedPage(tok *btree.Owner, pid page.ID) (buffer.PageSnapshot, bool) {
	if tok == nil || h.StampOwner(pid) != tok {
		return buffer.PageSnapshot{}, false
	}
	f, err := h.pool.Fetch(pid)
	if err != nil {
		return buffer.PageSnapshot{}, false
	}
	img := new(page.Page)
	if f.Loading() {
		// Some latched reader's miss is mid-disk-read; wait it out.
		f.Latch.RLock()
		*img = f.Page
		f.Latch.RUnlock()
	} else {
		*img = f.Page
	}
	return buffer.PageSnapshot{Frame: f, Img: img, Seq: f.WriteSeq()}, true
}
