package storage

import (
	"fmt"
	"testing"

	"dora/internal/btree"
	"dora/internal/buffer"
	"dora/internal/metrics"
	"dora/internal/page"
)

func TestOwnedInsertStampsAndElidesLatch(t *testing.T) {
	cs := &metrics.CriticalSectionStats{}
	pool := buffer.NewPool(64, buffer.NewMemDisk(), nil)
	pool.SetStats(cs)
	h := NewHeap(pool)
	tok := btree.NewOwner()

	rid, err := h.InsertOwnedWith(tok, 3, []byte("owned record"), func(RID) uint64 { return 5 })
	if err != nil {
		t.Fatal(err)
	}
	if got := h.StampOwner(rid.Page); got != tok {
		t.Fatalf("fresh owned page stamp = %v, want the token", got)
	}
	if h.StampedPages() != 1 {
		t.Fatalf("stamped pages = %d, want 1", h.StampedPages())
	}

	cs.Reset()
	b, err := h.GetOwned(tok, rid)
	if err != nil || string(b) != "owned record" {
		t.Fatalf("owned read: %q %v", b, err)
	}
	if cs.FrameLatch.Load() != 0 || cs.Latch.Load() != 0 {
		t.Fatalf("owned read took latches: frame=%d latch=%d", cs.FrameLatch.Load(), cs.Latch.Load())
	}
	if h.OwnedReads.Load() != 1 || h.OwnedReadsLatched.Load() != 0 {
		t.Fatalf("counters: owned=%d latched=%d", h.OwnedReads.Load(), h.OwnedReadsLatched.Load())
	}

	// A foreign (nil-token) read of the same page latches.
	cs.Reset()
	if _, err := h.GetOwned(nil, rid); err != nil {
		t.Fatal(err)
	}
	if cs.FrameLatch.Load() != 1 {
		t.Fatalf("foreign read frame latches = %d, want 1", cs.FrameLatch.Load())
	}
	// An owner read of an UNSTAMPED page latches and counts as such.
	srid, err := h.Insert([]byte("shared record"), 6)
	if err != nil {
		t.Fatal(err)
	}
	h.OwnedReads.Reset()
	h.OwnedReadsLatched.Reset()
	if _, err := h.GetOwned(tok, srid); err != nil {
		t.Fatal(err)
	}
	if h.OwnedReads.Load() != 1 || h.OwnedReadsLatched.Load() != 1 {
		t.Fatalf("unstamped owner read counters: owned=%d latched=%d",
			h.OwnedReads.Load(), h.OwnedReadsLatched.Load())
	}
}

func TestTryStampMovesPageOutOfSharedStripes(t *testing.T) {
	h := newHeap(t)
	tok := btree.NewOwner()
	rid, err := h.Insert([]byte("rec a"), 1)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := h.TryStamp(rid.Page, tok, func([]byte) bool { return true })
	if err != nil || !ok {
		t.Fatalf("TryStamp: %v %v", ok, err)
	}
	if h.StampOwner(rid.Page) != tok {
		t.Fatal("stamp not installed")
	}
	// The stamped page must reject shared fill-hint inserts: a stream of
	// shared inserts never lands on it.
	for i := 0; i < 50; i++ {
		nrid, err := h.InsertWith(0, []byte(fmt.Sprintf("shared %d", i)), func(RID) uint64 { return 0 })
		if err != nil {
			t.Fatal(err)
		}
		if nrid.Page == rid.Page {
			t.Fatalf("shared insert %d landed on the stamped page", i)
		}
	}
	// Pages() still sees the stamped page exactly once (scan support).
	count := 0
	for _, pid := range h.Pages() {
		if pid == rid.Page {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("stamped page appears %d times in Pages(), want 1", count)
	}
}

func TestTryStampRejectsForeignRecords(t *testing.T) {
	h := newHeap(t)
	tok := btree.NewOwner()
	// Two records on one page; only the first is "mine".
	rid1, _ := h.Insert([]byte("mine"), 1)
	rid2, _ := h.Insert([]byte("theirs"), 2)
	if rid1.Page != rid2.Page {
		t.Skip("records did not share a page")
	}
	ok, err := h.TryStamp(rid1.Page, tok, func(rec []byte) bool { return string(rec) == "mine" })
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("TryStamp stamped a mixed page")
	}
	if h.StampOwner(rid1.Page) != nil {
		t.Fatal("stamp left behind after failed verify")
	}
	// The page returned to the shared path: it remains scannable.
	found := false
	for _, pid := range h.Pages() {
		if pid == rid1.Page {
			found = true
		}
	}
	if !found {
		t.Fatal("page lost from the shared path after failed TryStamp")
	}
}

func TestUnstampReassignRelease(t *testing.T) {
	h := newHeap(t)
	a, b := btree.NewOwner(), btree.NewOwner()
	rid, err := h.InsertOwnedWith(a, 0, []byte("x"), func(RID) uint64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	// Reassign (merge): stamp moves to b wholesale.
	h.ReassignStamps(a, b)
	if h.StampOwner(rid.Page) != b {
		t.Fatal("ReassignStamps did not repoint the stamp")
	}
	// Unstamp (split): page returns to the shared stripes.
	h.UnstampPages(b, []page.ID{rid.Page})
	if h.StampOwner(rid.Page) != nil {
		t.Fatal("UnstampPages left the stamp")
	}
	if h.StampedPages() != 0 {
		t.Fatalf("stamped pages = %d, want 0", h.StampedPages())
	}
	// Release: a fresh owned insert then a global release.
	rid2, _ := h.InsertOwnedWith(a, 0, []byte("y"), func(RID) uint64 { return 0 })
	h.ReleaseStamps()
	if h.StampOwner(rid2.Page) != nil || h.StampedPages() != 0 {
		t.Fatal("ReleaseStamps left stamps behind")
	}
	// Both pages stay scannable through the shared path.
	seen := map[RID]bool{}
	if err := h.Scan(func(r RID, rec []byte) bool { seen[r] = true; return true }); err != nil {
		t.Fatal(err)
	}
	if !seen[rid] || !seen[rid2] {
		t.Fatalf("released pages missing from scan: %v", seen)
	}
}
