package storage

import (
	"bytes"
	"testing"

	"dora/internal/btree"
	"dora/internal/buffer"
	"dora/internal/metrics"
	"dora/internal/page"
)

// ownedRig builds a pool+heap with one record on a page stamped to tok.
func ownedRig(t *testing.T) (*metrics.CriticalSectionStats, *buffer.Pool, *Heap, *btree.Owner, RID) {
	t.Helper()
	cs := &metrics.CriticalSectionStats{}
	pool := buffer.NewPool(64, buffer.NewMemDisk(), nil)
	pool.SetStats(cs)
	h := NewHeap(pool)
	tok := btree.NewOwner()
	rid, err := h.InsertOwnedWith(tok, 0, []byte("v1"), func(RID) uint64 { return 5 })
	if err != nil {
		t.Fatal(err)
	}
	return cs, pool, h, tok, rid
}

// TestOwnedUpdateElidesLatch: an owner update of a stamped page takes no
// frame latch, counts OwnedWrites, and bumps the frame write seq.
func TestOwnedUpdateElidesLatch(t *testing.T) {
	cs, pool, h, tok, rid := ownedRig(t)
	cs.Reset()
	f, err := pool.Fetch(rid.Page)
	if err != nil {
		t.Fatal(err)
	}
	seq0 := f.WriteSeq()
	pool.Unpin(f, false)

	var before []byte
	err = h.UpdateOwnedWith(tok, rid, []byte("v2"), func(b []byte) uint64 {
		before = append([]byte(nil), b...)
		return 6
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, []byte("v1")) {
		t.Fatalf("before image = %q", before)
	}
	if cs.FrameLatch.Load() != 0 || cs.FrameLatchWrite.Load() != 0 || cs.Latch.Load() != 0 {
		t.Fatalf("owned update latched: frame=%d write=%d latch=%d",
			cs.FrameLatch.Load(), cs.FrameLatchWrite.Load(), cs.Latch.Load())
	}
	if h.OwnedWrites.Load() != 2 || h.OwnedWritesLatched.Load() != 1 {
		// 1 latched from the fresh-page insert at rig setup, +1 latch-free.
		t.Fatalf("counters: owned=%d latched=%d", h.OwnedWrites.Load(), h.OwnedWritesLatched.Load())
	}
	if b, err := h.GetOwned(tok, rid); err != nil || string(b) != "v2" {
		t.Fatalf("read back: %q %v", b, err)
	}
	g, err := pool.Fetch(rid.Page)
	if err != nil {
		t.Fatal(err)
	}
	if g.WriteSeq() == seq0 {
		t.Fatal("owner update did not bump the frame write seq")
	}
	if g.Page.LSN() != 6 {
		t.Fatalf("page LSN = %d, want 6", g.Page.LSN())
	}
	pool.Unpin(g, false)
}

// TestOwnedDeleteAndForeignFallback: owner deletes are latch-free on
// stamped pages; nil-token and foreign-token calls fall back latched and
// are counted in the FrameLatchWrite view.
func TestOwnedDeleteAndForeignFallback(t *testing.T) {
	cs, _, h, tok, rid := ownedRig(t)
	// Second record on a SHARED page (nil token): the delete latches.
	srid, err := h.Insert([]byte("shared"), 6)
	if err != nil {
		t.Fatal(err)
	}
	cs.Reset()
	if err := h.DeleteOwnedWith(nil, srid, func([]byte) uint64 { return 7 }); err != nil {
		t.Fatal(err)
	}
	if cs.FrameLatchWrite.Load() != 1 {
		t.Fatalf("shared delete frame write latches = %d, want 1", cs.FrameLatchWrite.Load())
	}
	// Owner delete on the stamped page: latch-free.
	cs.Reset()
	h.OwnedWrites.Reset()
	h.OwnedWritesLatched.Reset()
	if err := h.DeleteOwnedWith(tok, rid, func([]byte) uint64 { return 8 }); err != nil {
		t.Fatal(err)
	}
	if cs.FrameLatchWrite.Load() != 0 {
		t.Fatalf("owned delete latched: %d", cs.FrameLatchWrite.Load())
	}
	if h.OwnedWrites.Load() != 1 || h.OwnedWritesLatched.Load() != 0 {
		t.Fatalf("counters: owned=%d latched=%d", h.OwnedWrites.Load(), h.OwnedWritesLatched.Load())
	}
	// A FOREIGN token on the stamped page goes latched (the decay case).
	rid2, err := h.InsertOwnedWith(tok, 0, []byte("x"), func(RID) uint64 { return 9 })
	if err != nil {
		t.Fatal(err)
	}
	other := btree.NewOwner()
	cs.Reset()
	h.OwnedWritesLatched.Reset()
	if err := h.UpdateOwnedWith(other, rid2, []byte("y"), func([]byte) uint64 { return 10 }); err != nil {
		t.Fatal(err)
	}
	if cs.FrameLatchWrite.Load() != 1 || h.OwnedWritesLatched.Load() != 1 {
		t.Fatalf("foreign-token write: frameWrite=%d ownedLatched=%d, want 1/1",
			cs.FrameLatchWrite.Load(), h.OwnedWritesLatched.Load())
	}
}

// TestMutateOwnedSinglePass: the read-modify-write applies in one
// latch-free pass and surfaces both images to the caller.
func TestMutateOwnedSinglePass(t *testing.T) {
	cs, _, h, tok, rid := ownedRig(t)
	cs.Reset()
	var gotBefore, gotAfterArg []byte
	err := h.MutateOwnedWith(tok, rid, func(before []byte) ([]byte, error) {
		gotBefore = append([]byte(nil), before...)
		return []byte("v1+"), nil
	}, func(before, after []byte) uint64 {
		gotAfterArg = append([]byte(nil), after...)
		return 11
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBefore) != "v1" || string(gotAfterArg) != "v1+" {
		t.Fatalf("images: before=%q after=%q", gotBefore, gotAfterArg)
	}
	if cs.FrameLatch.Load() != 0 || cs.Latch.Load() != 0 {
		t.Fatalf("mutate latched: frame=%d latch=%d", cs.FrameLatch.Load(), cs.Latch.Load())
	}
	if b, err := h.GetOwned(tok, rid); err != nil || string(b) != "v1+" {
		t.Fatalf("read back: %q %v", b, err)
	}
}

// TestLatchedOwnerWritesBaseline: the config baseline forces the old
// exclusive-latch protocol and counts every owner write as latched.
func TestLatchedOwnerWritesBaseline(t *testing.T) {
	cs, _, h, tok, rid := ownedRig(t)
	h.SetLatchedOwnerWrites(true)
	cs.Reset()
	h.OwnedWrites.Reset()
	h.OwnedWritesLatched.Reset()
	if err := h.UpdateOwnedWith(tok, rid, []byte("vx"), func([]byte) uint64 { return 12 }); err != nil {
		t.Fatal(err)
	}
	if cs.FrameLatchWrite.Load() != 1 {
		t.Fatalf("baseline update frame write latches = %d, want 1", cs.FrameLatchWrite.Load())
	}
	if h.OwnedWrites.Load() != 1 || h.OwnedWritesLatched.Load() != 1 {
		t.Fatalf("counters: owned=%d latched=%d, want 1/1", h.OwnedWrites.Load(), h.OwnedWritesLatched.Load())
	}
}

// TestSnapshotOwnedPage: the owner-side copy is consistent, pins the
// frame, and reports the stamp honestly.
func TestSnapshotOwnedPage(t *testing.T) {
	_, pool, h, tok, rid := ownedRig(t)
	snap, ok := h.SnapshotOwnedPage(tok, rid.Page)
	if !ok {
		t.Fatal("snapshot refused for the stamping owner")
	}
	rec, err := snap.Img.Get(int(rid.Slot))
	if err != nil || string(rec) != "v1" {
		t.Fatalf("snapshot image: %q %v", rec, err)
	}
	// The copy is private: mutating the live page does not change it.
	if err := h.UpdateOwnedWith(tok, rid, []byte("v2"), func([]byte) uint64 { return 13 }); err != nil {
		t.Fatal(err)
	}
	rec, _ = snap.Img.Get(int(rid.Slot))
	if string(rec) != "v1" {
		t.Fatalf("snapshot image mutated under the owner: %q", rec)
	}
	pool.Unpin(snap.Frame, false) // the test plays the harden role

	if _, ok := h.SnapshotOwnedPage(btree.NewOwner(), rid.Page); ok {
		t.Fatal("snapshot granted to a foreign token")
	}
	if _, ok := h.SnapshotOwnedPage(tok, page.ID(9999)); ok {
		t.Fatal("snapshot granted for an unstamped page")
	}
}
