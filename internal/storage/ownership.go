package storage

import (
	"sync"

	"dora/internal/btree"
	"dora/internal/page"
)

// Heap-page ownership. A page can be STAMPED with a partition worker's
// ownership token (the same opaque *btree.Owner the partitioned B+tree
// trusts). The stamp is a promise maintained by the layers above:
//
//   - every live record on a stamped page belongs to the stamping
//     worker's key ranges, and
//   - every mutation of a stamped page executes on that worker's thread
//     (session operations reach it through the partitioned tree's
//     ExecAt ship; inserts land there only through the owner's private
//     fill list — tryInsertWith refuses stamped pages).
//
// Under that promise the owner's RECORD READS need no frame latch, and —
// since the copy-on-write page-cleaning protocol (ownedwrite.go) — its
// MUTATIONS need none either: the buffer pool's write-back no longer
// latches a stamped frame, it ships a snapshot request to the owning
// worker and hardens the copy the owner took at a quiescent point of its
// own thread, while a per-frame write-sequence counter (bumped before
// every byte mutation) replaces the latch for dirty-bit conflict
// detection. The frame-latch class is thereby retired for BOTH aligned
// reads (PR 3) and aligned writes on stamped pages, once the maintenance
// daemon (internal/maint) has migrated or re-stamped the pages that
// repartitioning orphaned.
//
// Stamps are volatile: recovery rebuilds the heap with no stamps and the
// daemon re-derives them, so no stamp ever needs logging.

// ownedPages is one token's private page list: its insert fill target
// and the scan-support registry for pages outside the shared stripes.
// The owning worker's thread is the only mutator in the steady state;
// the mutex exists for Pages()/statistics readers and the quiesced
// release paths.
type ownedPages struct {
	mu    sync.Mutex
	pages []page.ID
	fill  int // index of the page inserts try first
}

// setStamp publishes a stamp in the heap's registry AND the buffer
// pool's mirror (the pool's eviction policy and write-back consult the
// mirror with one lock-free load per frame). Both stores happen before
// any content verify takes the frame latch — writeBackLatched's
// decisive stamp re-check depends on that order.
func (h *Heap) setStamp(pid page.ID, tok *btree.Owner) {
	h.stamps.Store(pid, tok)
	h.pool.MarkStamped(pid)
}

// clearStamp drops a stamp from both registries.
func (h *Heap) clearStamp(pid page.ID) {
	h.stamps.Delete(pid)
	h.pool.UnmarkStamped(pid)
}

func (h *Heap) ownedList(tok *btree.Owner) *ownedPages {
	if v, ok := h.owned.Load(tok); ok {
		return v.(*ownedPages)
	}
	v, _ := h.owned.LoadOrStore(tok, &ownedPages{})
	return v.(*ownedPages)
}

// StampOwner returns the token a page is stamped with, or nil.
func (h *Heap) StampOwner(pid page.ID) *btree.Owner {
	if v, ok := h.stamps.Load(pid); ok {
		return v.(*btree.Owner)
	}
	return nil
}

// StampedPages reports how many pages currently carry an owner stamp.
func (h *Heap) StampedPages() int {
	n := 0
	h.owned.Range(func(_, v any) bool {
		op := v.(*ownedPages)
		op.mu.Lock()
		n += len(op.pages)
		op.mu.Unlock()
		return true
	})
	return n
}

// GetOwned returns a copy of the record at rid. tok identifies the
// calling partition worker (nil for shared sessions): when the record's
// page is stamped to tok the read is latch-free — the caller IS the one
// thread allowed to mutate that page, so pinning suffices. All other
// reads take the shared frame latch as before.
func (h *Heap) GetOwned(tok *btree.Owner, rid RID) ([]byte, error) {
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	if tok != nil {
		h.OwnedReads.Inc()
		// Loading: the frame is mid-disk-read (some latched reader's
		// miss); fall back to the latched path, which waits for it.
		if h.StampOwner(rid.Page) == tok && !f.Loading() {
			b, err := f.Page.Get(int(rid.Slot))
			var out []byte
			if err == nil {
				out = append([]byte(nil), b...)
			}
			h.pool.Unpin(f, false)
			return out, err
		}
		h.OwnedReadsLatched.Inc()
	}
	if cs := h.pool.Stats(); cs != nil {
		cs.FrameLatch.Inc()
	}
	f.Latch.RLock()
	b, err := f.Page.Get(int(rid.Slot))
	var out []byte
	if err == nil {
		out = append([]byte(nil), b...)
	}
	f.Latch.RUnlock()
	h.pool.Unpin(f, false)
	return out, err
}

// InsertOwnedWith is InsertWith targeting the token's private page list:
// the record lands on a page stamped to tok (stamping a fresh page when
// the fill target is exhausted), so the owner's later reads of it are
// latch-free from the start. With a nil token it falls back to the
// shared striped path. Must be called on the owning worker's thread.
func (h *Heap) InsertOwnedWith(tok *btree.Owner, worker int, rec []byte, mkLSN func(RID) uint64) (RID, error) {
	if tok == nil {
		return h.InsertWith(worker, rec, mkLSN)
	}
	if len(rec) > page.Size-page.HeaderSize-8 {
		return RID{}, ErrRecordTooLarge
	}
	op := h.ownedList(tok)
	op.mu.Lock()
	var hint page.ID
	hasHint := len(op.pages) > 0
	if hasHint {
		hint = op.pages[op.fill]
	}
	op.mu.Unlock()
	if hasHint {
		rid, ok, err := h.tryInsertWith(hint, tok, rec, mkLSN)
		if err != nil {
			return RID{}, err
		}
		if ok {
			return rid, nil
		}
	}
	f, err := h.pool.NewPage()
	if err != nil {
		return RID{}, err
	}
	// Fresh page: one latched insert per page lifetime (amortized to ~0
	// per write), counted like any other latched owner mutation.
	h.OwnedWrites.Inc()
	h.OwnedWritesLatched.Inc()
	h.noteLatchedWrite()
	f.Latch.Lock()
	f.BumpWriteSeq()
	slot, err := f.Page.Insert(rec)
	if err != nil {
		f.Latch.Unlock()
		h.pool.Unpin(f, false)
		return RID{}, err
	}
	rid := RID{Page: f.ID(), Slot: uint16(slot)}
	if lsn := mkLSN(rid); lsn != 0 {
		f.Page.SetLSN(lsn)
	}
	f.MarkDirty()
	// Stamp before the page becomes discoverable (the caller publishes
	// the RID through an index only after we return); the fresh page
	// never enters the shared stripes, so no foreign insert can target it.
	h.setStamp(rid.Page, tok)
	f.Latch.Unlock()
	h.pool.Unpin(f, true)

	op.mu.Lock()
	op.pages = append(op.pages, rid.Page)
	op.fill = len(op.pages) - 1
	op.mu.Unlock()
	return rid, nil
}

// TryStamp re-stamps an existing shared page to tok without moving any
// data, when every live record on it satisfies mine (the caller's
// "belongs to my claimed ranges" predicate over raw record images). The
// protocol closes the race with in-flight fill-hint inserts:
//
//  1. pull the page out of the shared stripes — no new fill hint can
//     select it;
//  2. publish the stamp — tryInsertWith re-checks it under the frame
//     latch, so any insert that latches after this point backs off;
//  3. verify the contents under the frame latch — the latch is the
//     barrier for inserts that slipped in before step 2; a foreign
//     record fails the verify and the stamp is rolled back.
//
// The verify takes the latch EXCLUSIVELY, although it only reads: a
// latched write-back (flush of a then-unstamped page) that re-checks the
// stamp under its shared hold must be able to conclude that "unstamped
// under my latch" means no latch-free owner mutation can start until it
// releases — which holds exactly because the freshly published stamp
// cannot clear this verify while any latch is held.
//
// Must be called on the owning worker's thread. Returns false when the
// page holds foreign records (the caller migrates its records off it
// instead) or is already stamped to another owner.
func (h *Heap) TryStamp(pid page.ID, tok *btree.Owner, mine func(rec []byte) bool) (bool, error) {
	if cur := h.StampOwner(pid); cur != nil {
		return cur == tok, nil
	}
	h.unstripe(pid)
	h.setStamp(pid, tok)
	f, err := h.pool.Fetch(pid)
	if err != nil {
		h.clearStamp(pid)
		h.AttachPage(pid)
		return false, err
	}
	f.Latch.Lock()
	ok := true
	for s := 0; s < f.Page.NumSlots(); s++ {
		if f.Page.Deleted(s) {
			continue
		}
		b, err := f.Page.Get(s)
		if err != nil || !mine(b) {
			ok = false
			break
		}
	}
	f.Latch.Unlock()
	h.pool.Unpin(f, false)
	if !ok {
		h.clearStamp(pid)
		h.AttachPage(pid)
		return false, nil
	}
	op := h.ownedList(tok)
	op.mu.Lock()
	op.pages = append(op.pages, pid)
	op.mu.Unlock()
	return true, nil
}

// UnstampPages strips tok's stamp from the given pages and returns them
// to the shared striped path (partition split: records in the moved
// interval may live on them, so tok's exclusivity promise no longer
// holds). Must be called on the owning worker's thread, so none of its
// latch-free reads are in flight.
func (h *Heap) UnstampPages(tok *btree.Owner, pids []page.ID) {
	if len(pids) == 0 {
		return
	}
	drop := make(map[page.ID]bool, len(pids))
	for _, pid := range pids {
		if h.StampOwner(pid) == tok {
			drop[pid] = true
		}
	}
	if len(drop) == 0 {
		return
	}
	op := h.ownedList(tok)
	op.mu.Lock()
	kept := op.pages[:0]
	for _, p := range op.pages {
		if drop[p] {
			continue
		}
		kept = append(kept, p)
	}
	op.pages = kept
	if op.fill >= len(op.pages) {
		op.fill = 0
	}
	op.mu.Unlock()
	for pid := range drop {
		h.clearStamp(pid)
		h.AttachPage(pid)
	}
}

// ReassignStamps re-points every page stamped to from at to (partition
// merge: the adopting worker takes the retiring worker's ranges — and
// therefore its exclusivity promise — wholesale). Must be called on the
// retiring worker's thread.
func (h *Heap) ReassignStamps(from, to *btree.Owner) {
	src := h.ownedList(from)
	src.mu.Lock()
	moved := src.pages
	src.pages = nil
	src.fill = 0
	src.mu.Unlock()
	if len(moved) == 0 {
		return
	}
	for _, pid := range moved {
		h.stamps.Store(pid, to)
	}
	dst := h.ownedList(to)
	dst.mu.Lock()
	dst.pages = append(dst.pages, moved...)
	if dst.fill >= len(dst.pages) {
		dst.fill = 0
	}
	dst.mu.Unlock()
}

// ReleaseStamps drops every stamp and returns all owned pages to the
// shared striped path (engine shutdown; re-partitioning on a new field).
// Requires a quiesced heap: no owner-thread reads in flight.
func (h *Heap) ReleaseStamps() {
	h.owned.Range(func(k, v any) bool {
		op := v.(*ownedPages)
		op.mu.Lock()
		pages := op.pages
		op.pages = nil
		op.fill = 0
		op.mu.Unlock()
		for _, pid := range pages {
			h.clearStamp(pid)
			h.AttachPage(pid)
		}
		h.owned.Delete(k)
		return true
	})
}

// unstripe removes pid from whichever shared stripe holds it, so no
// fill hint can select it anymore.
func (h *Heap) unstripe(pid page.ID) {
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.Lock()
		for j, p := range st.pages {
			if p == pid {
				st.pages = append(st.pages[:j], st.pages[j+1:]...)
				if st.fillHint >= len(st.pages) {
					st.fillHint = 0
				}
				st.mu.Unlock()
				return
			}
		}
		st.mu.Unlock()
	}
}
