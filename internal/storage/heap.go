// Package storage implements heap files on top of the buffer pool:
// collections of slotted pages addressed by record ids (RIDs). The
// storage-manager facade (internal/sm) combines heaps with B+tree
// indexes, the WAL and a lock manager into the full substrate.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dora/internal/btree"
	"dora/internal/buffer"
	"dora/internal/metrics"
	"dora/internal/page"
)

// RID identifies a record: a page and a slot within it.
type RID struct {
	Page page.ID
	Slot uint16
}

// Pack encodes the RID into a uint64 for storage in B+tree values.
func (r RID) Pack() uint64 { return uint64(r.Page)<<16 | uint64(r.Slot) }

// UnpackRID decodes a packed RID.
func UnpackRID(v uint64) RID {
	return RID{Page: page.ID(v >> 16), Slot: uint16(v & 0xFFFF)}
}

// String implements fmt.Stringer.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// ErrRecordTooLarge reports a record that cannot fit in any page.
var ErrRecordTooLarge = errors.New("storage: record larger than page")

// heapStripes is the number of free-space stripes per heap. Each DORA
// partition worker (and each conventional client thread) hashes to one
// stripe, so concurrent inserters keep private fill hints and page lists
// instead of fighting over a single heap mutex.
const heapStripes = 8

// heapStripe is one independently-latched slice of the heap's page set.
type heapStripe struct {
	mu    sync.Mutex
	pages []page.ID
	// fillHint is the index in pages of the page most recently found to
	// have free space; inserts try it first.
	fillHint int
}

// Heap is a heap file: an unordered collection of records in slotted
// pages. Heap methods latch pages internally; callers provide isolation
// through the lock protocol (conventional engine) or partition ownership
// (DORA). The free-space bookkeeping is striped per inserting worker.
//
// Pages can additionally be STAMPED with a partition worker's ownership
// token (ownership.go): stamped pages leave the shared stripes, accept
// mutations only on the owner's thread, and serve that thread's record
// reads without the frame latch.
type Heap struct {
	pool    *buffer.Pool
	stripes [heapStripes]heapStripe

	// stamps maps page.ID -> *btree.Owner for owner-stamped pages;
	// owned maps *btree.Owner -> *ownedPages (the token's page list).
	stamps sync.Map
	owned  sync.Map

	// OwnedReads counts record reads performed with an ownership token
	// (aligned reads on the owner's thread); OwnedReadsLatched is the
	// subset that still took the frame latch because the page is not
	// (yet) stamped to the reader. Their ratio is the decay signal the
	// maintenance daemon watches and experiment E13's convergence
	// criterion: it falls to ~0 as migration drains.
	OwnedReads        metrics.Counter
	OwnedReadsLatched metrics.Counter
	// OwnedWrites / OwnedWritesLatched are the mutation-side twins
	// (experiment E15): owner-thread record mutations, and the subset
	// that still took the exclusive frame latch — because the page is
	// not stamped to the writer, the frame is mid-load, or the latched
	// baseline is forced via SetLatchedOwnerWrites.
	OwnedWrites        metrics.Counter
	OwnedWritesLatched metrics.Counter

	// latchedWrites forces every owner mutation onto the exclusive-latch
	// path (the pre-copy-on-write protocol) — the measurement baseline
	// for experiment E15. Snapshot-based cleaning still works (the seq
	// counter is bumped on latched paths too); only the owner's write
	// path changes.
	latchedWrites atomic.Bool
}

// SetLatchedOwnerWrites toggles the latched owner-write baseline (E15).
func (h *Heap) SetLatchedOwnerWrites(on bool) { h.latchedWrites.Store(on) }

// noteLatchedWrite classifies a frame-latch acquisition taken to MUTATE a
// heap record (the CriticalSectionStats FrameLatch/FrameLatchWrite view —
// the residual class the latch-free owner write path retires).
func (h *Heap) noteLatchedWrite() {
	if cs := h.pool.Stats(); cs != nil {
		cs.FrameLatch.Inc()
		cs.FrameLatchWrite.Inc()
	}
}

// NewHeap returns an empty heap over pool.
func NewHeap(pool *buffer.Pool) *Heap { return &Heap{pool: pool} }

func stripeFor(worker int) int {
	return ((worker % heapStripes) + heapStripes) % heapStripes
}

// Pages returns a snapshot of the heap's page ids (scan support),
// covering both the shared stripes and every token's owned pages.
func (h *Heap) Pages() []page.ID {
	var out []page.ID
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.Lock()
		out = append(out, st.pages...)
		st.mu.Unlock()
	}
	h.owned.Range(func(_, v any) bool {
		op := v.(*ownedPages)
		op.mu.Lock()
		out = append(out, op.pages...)
		op.mu.Unlock()
		return true
	})
	return out
}

// Insert stores rec and stamps the page with lsn, returning the new RID.
func (h *Heap) Insert(rec []byte, lsn uint64) (RID, error) {
	return h.InsertWith(0, rec, func(RID) uint64 { return lsn })
}

// InsertWith stores rec, invoking mkLSN with the chosen RID while the
// page latch is held and stamping the page with the returned LSN. This
// lets the storage manager append the log record *before* the modified
// page can reach disk (write-ahead rule) without exposing a half-placed
// record. worker selects the free-space stripe; inserts by the same
// worker chase the same fill hint. On a hint miss the insert goes
// straight to a fresh page — one stripe-mutex round to read the hint, one
// to register the new page, never a rescan of old pages in between.
func (h *Heap) InsertWith(worker int, rec []byte, mkLSN func(RID) uint64) (RID, error) {
	if len(rec) > page.Size-page.HeaderSize-8 {
		return RID{}, ErrRecordTooLarge
	}
	st := &h.stripes[stripeFor(worker)]
	st.mu.Lock()
	var hint page.ID
	hasHint := len(st.pages) > 0
	if hasHint {
		hint = st.pages[st.fillHint]
	}
	st.mu.Unlock()

	if hasHint {
		rid, ok, err := h.tryInsertWith(hint, nil, rec, mkLSN)
		if err != nil {
			return RID{}, err
		}
		if ok {
			return rid, nil
		}
	}
	f, err := h.pool.NewPage()
	if err != nil {
		return RID{}, err
	}
	h.noteLatchedWrite()
	f.Latch.Lock()
	f.BumpWriteSeq()
	slot, err := f.Page.Insert(rec)
	if err != nil {
		f.Latch.Unlock()
		h.pool.Unpin(f, false)
		return RID{}, err
	}
	rid := RID{Page: f.ID(), Slot: uint16(slot)}
	if lsn := mkLSN(rid); lsn != 0 {
		f.Page.SetLSN(lsn)
	}
	f.MarkDirty()
	f.Latch.Unlock()
	h.pool.Unpin(f, true)

	st.mu.Lock()
	st.pages = append(st.pages, rid.Page)
	st.fillHint = len(st.pages) - 1
	st.mu.Unlock()
	return rid, nil
}

// tryInsertWith attempts an insert into pid. expect is the page stamp
// the caller assumes (nil for the shared striped path); it is re-checked
// under the frame latch, so an insert racing a concurrent TryStamp of
// its fill-hint page backs off instead of landing a foreign record on a
// freshly owner-stamped page.
//
// When expect is the CALLER'S own token (owner-thread insert onto its
// stamped fill page) the exclusive latch is elided: the stamp cannot
// change under us — only the owner's own thread unstamps, and that is
// this thread — and every other mutator of a stamped page either is this
// thread too or backs off under the latch without touching bytes.
func (h *Heap) tryInsertWith(pid page.ID, expect *btree.Owner, rec []byte, mkLSN func(RID) uint64) (RID, bool, error) {
	f, err := h.pool.Fetch(pid)
	if err != nil {
		return RID{}, false, err
	}
	if expect != nil && !h.latchedWrites.Load() && h.StampOwner(pid) == expect && !f.Loading() {
		f.BumpWriteSeq()
		slot, err := f.Page.Insert(rec)
		if err != nil {
			h.pool.Unpin(f, false)
			if errors.Is(err, page.ErrPageFull) {
				return RID{}, false, nil
			}
			return RID{}, false, err
		}
		h.OwnedWrites.Inc()
		rid := RID{Page: pid, Slot: uint16(slot)}
		if lsn := mkLSN(rid); lsn != 0 {
			f.Page.SetLSN(lsn)
		}
		f.MarkDirty()
		h.pool.Unpin(f, true)
		return rid, true, nil
	}
	h.noteLatchedWrite()
	f.Latch.Lock()
	if h.StampOwner(pid) != expect {
		f.Latch.Unlock()
		h.pool.Unpin(f, false)
		return RID{}, false, nil
	}
	f.BumpWriteSeq()
	slot, err := f.Page.Insert(rec)
	if err == nil {
		if expect != nil {
			h.OwnedWrites.Inc()
			h.OwnedWritesLatched.Inc()
		}
		rid := RID{Page: pid, Slot: uint16(slot)}
		// An unlogged insert (mkLSN == 0) must not regress the page LSN
		// below updates that were logged — recovery's redo-skip and the
		// WAL-before-data force both compare against it.
		if lsn := mkLSN(rid); lsn != 0 {
			f.Page.SetLSN(lsn)
		}
		f.MarkDirty()
		f.Latch.Unlock()
		h.pool.Unpin(f, true)
		return rid, true, nil
	}
	f.Latch.Unlock()
	h.pool.Unpin(f, false)
	if errors.Is(err, page.ErrPageFull) {
		return RID{}, false, nil
	}
	return RID{}, false, err
}

// UpdateWith rewrites the record at rid in place; mkLSN receives the
// before image (aliasing the page; it must copy) while the latch is held
// and returns the LSN to stamp.
func (h *Heap) UpdateWith(rid RID, rec []byte, mkLSN func(before []byte) uint64) error {
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	h.noteLatchedWrite()
	f.Latch.Lock()
	old, err := f.Page.Get(int(rid.Slot))
	if err != nil {
		f.Latch.Unlock()
		h.pool.Unpin(f, false)
		return err
	}
	// The log record must not be written unless the update will apply.
	if !f.Page.CanUpdate(int(rid.Slot), len(rec)) {
		f.Latch.Unlock()
		h.pool.Unpin(f, false)
		return page.ErrPageFull
	}
	lsn := mkLSN(old)
	f.BumpWriteSeq()
	if err = f.Page.Update(int(rid.Slot), rec); err != nil {
		f.Latch.Unlock()
		h.pool.Unpin(f, false)
		return err
	}
	f.Page.SetLSN(lsn)
	f.MarkDirty()
	f.Latch.Unlock()
	h.pool.Unpin(f, true)
	return nil
}

// DeleteWith tombstones the record at rid; mkLSN receives the before
// image (aliasing the page; it must copy) and returns the LSN to stamp.
func (h *Heap) DeleteWith(rid RID, mkLSN func(before []byte) uint64) error {
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	h.noteLatchedWrite()
	f.Latch.Lock()
	old, err := f.Page.Get(int(rid.Slot))
	if err != nil {
		f.Latch.Unlock()
		h.pool.Unpin(f, false)
		return err
	}
	lsn := mkLSN(old)
	f.BumpWriteSeq()
	if err = f.Page.Delete(int(rid.Slot)); err != nil {
		f.Latch.Unlock()
		h.pool.Unpin(f, false)
		return err
	}
	f.Page.SetLSN(lsn)
	f.MarkDirty()
	f.Latch.Unlock()
	h.pool.Unpin(f, true)
	return nil
}

// RedoInsert replays an insert on a specific page during recovery,
// verifying that the record lands in the slot the log recorded.
func (h *Heap) RedoInsert(rid RID, rec []byte, lsn uint64) error {
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.Unpin(f, true)
	f.Latch.Lock()
	defer f.Latch.Unlock()
	if f.Page.LSN() >= lsn {
		return nil // already applied
	}
	slot, err := f.Page.Insert(rec)
	if err != nil {
		return fmt.Errorf("storage: redo insert on page %d: %w", rid.Page, err)
	}
	if uint16(slot) != rid.Slot {
		return fmt.Errorf("storage: redo insert landed in slot %d, log says %d", slot, rid.Slot)
	}
	f.Page.SetLSN(lsn)
	f.MarkDirty()
	return nil
}

// Get returns a copy of the record at rid (the shared latched path;
// owner threads use GetOwned).
func (h *Heap) Get(rid RID) ([]byte, error) { return h.GetOwned(nil, rid) }

// Update rewrites the record at rid in place and stamps lsn. If the new
// image no longer fits the page, ErrPageFull is returned and the caller
// must relocate (delete + insert).
func (h *Heap) Update(rid RID, rec []byte, lsn uint64) error {
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	h.noteLatchedWrite()
	f.Latch.Lock()
	f.BumpWriteSeq()
	err = f.Page.Update(int(rid.Slot), rec)
	if err == nil {
		if lsn != 0 {
			f.Page.SetLSN(lsn)
		}
		f.MarkDirty()
	}
	f.Latch.Unlock()
	h.pool.Unpin(f, err == nil)
	return err
}

// RedoUpdate replays an update during recovery (idempotent via page LSN).
func (h *Heap) RedoUpdate(rid RID, rec []byte, lsn uint64) error {
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.Unpin(f, true)
	f.Latch.Lock()
	defer f.Latch.Unlock()
	if f.Page.LSN() >= lsn {
		return nil
	}
	if err := f.Page.Update(int(rid.Slot), rec); err != nil {
		return fmt.Errorf("storage: redo update: %w", err)
	}
	f.Page.SetLSN(lsn)
	f.MarkDirty()
	return nil
}

// Delete tombstones the record at rid.
func (h *Heap) Delete(rid RID, lsn uint64) error {
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	h.noteLatchedWrite()
	f.Latch.Lock()
	f.BumpWriteSeq()
	err = f.Page.Delete(int(rid.Slot))
	if err == nil {
		if lsn != 0 {
			f.Page.SetLSN(lsn)
		}
		f.MarkDirty()
	}
	f.Latch.Unlock()
	h.pool.Unpin(f, err == nil)
	return err
}

// RedoDelete replays a delete during recovery (idempotent via page LSN).
func (h *Heap) RedoDelete(rid RID, lsn uint64) error {
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.Unpin(f, true)
	f.Latch.Lock()
	defer f.Latch.Unlock()
	if f.Page.LSN() >= lsn {
		return nil
	}
	if err := f.Page.Delete(int(rid.Slot)); err != nil {
		return fmt.Errorf("storage: redo delete: %w", err)
	}
	f.Page.SetLSN(lsn)
	f.MarkDirty()
	return nil
}

// AttachPage registers an existing page id with the heap (recovery: the
// heap page set is rebuilt from the log). Attached pages stripe by page
// id — deterministic, so the dedup check only needs one stripe.
func (h *Heap) AttachPage(pid page.ID) {
	st := &h.stripes[int(uint64(pid))%heapStripes]
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, p := range st.pages {
		if p == pid {
			return
		}
	}
	st.pages = append(st.pages, pid)
}

// Scan invokes fn with a copy of every live record and its RID, until fn
// returns false. Scan reads under the shared frame latch, which no longer
// orders it against OWNER mutations of stamped pages (those are
// latch-free): callers must not scan while owner mutators are running.
// Its callers — recovery, integrity checks, quiesced tooling — satisfy
// this; live traffic reads records through sessions, whose operations
// ship to the owning threads instead.
func (h *Heap) Scan(fn func(rid RID, rec []byte) bool) error {
	for _, pid := range h.Pages() {
		f, err := h.pool.Fetch(pid)
		if err != nil {
			return err
		}
		f.Latch.RLock()
		n := f.Page.NumSlots()
		type item struct {
			rid RID
			rec []byte
		}
		items := make([]item, 0, n)
		for s := 0; s < n; s++ {
			if f.Page.Deleted(s) {
				continue
			}
			b, err := f.Page.Get(s)
			if err != nil {
				continue
			}
			items = append(items, item{RID{pid, uint16(s)}, append([]byte(nil), b...)})
		}
		f.Latch.RUnlock()
		h.pool.Unpin(f, false)
		for _, it := range items {
			if !fn(it.rid, it.rec) {
				return nil
			}
		}
	}
	return nil
}
