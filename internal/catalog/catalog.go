// Package catalog holds the schema layer: table definitions (fields and
// types), their heap files, and their B+tree indexes, including the key
// extraction functions that bit-pack composite workload keys into int64s.
//
// The catalog also records each table's current partitioning field, which
// the DORA router and the aligned-access monitor (experiment E7) consult.
package catalog

import (
	"fmt"
	"sync"

	"dora/internal/btree"
	"dora/internal/storage"
	"dora/internal/tuple"
)

// Field describes one column.
type Field struct {
	Name string
	Type tuple.Type
}

// KeyFunc extracts an int64 index key from a record.
type KeyFunc func(tuple.Record) int64

// Index is a secondary (or primary) index over a table.
type Index struct {
	// Name identifies the index.
	Name string
	// Fields lists the indexed column names, in order. The designer's
	// physical advisor reasons over these.
	Fields []string
	// Key extracts the (unique) index key from a record.
	Key KeyFunc
	// Tree is the index structure: a shared latched B+tree, or a
	// partitioned tree whose subtrees DORA claims per partition worker.
	Tree btree.AccessMethod
	// RouteRange maps an interval of routing-field values (the field
	// named by RouteField) to the inclusive interval of index keys those
	// values pack into. Non-nil only when the index's leading key
	// component is the routing field, which is what makes the index
	// physiologically partitionable: the worker that owns the logical
	// range owns exactly one contiguous key interval.
	RouteRange func(routeLo, routeHi int64) (keyLo, keyHi int64)
	// RouteField names the partitioning field RouteRange is defined for.
	// DORA claims the index only while the table is partitioned on it.
	RouteField string
}

// Partitioned returns the index tree as a PartitionedTree, or nil when
// the index uses a shared latched tree.
func (ix *Index) Partitioned() *btree.PartitionedTree {
	pt, _ := ix.Tree.(*btree.PartitionedTree)
	return pt
}

// FieldMap declares an order-preserving interval bijection between two
// routable fields of a table (e.g. TATP's sub_nbr = N+1-s_id). Map
// takes an inclusive interval of From-field values and returns the
// inclusive interval of To-field values it corresponds to. With a map
// from the table's current partitioning field to an index's RouteField,
// the index stays claimable after re-partitioning even though its
// RouteRange was declared for the original field (see Table.RouteFor).
type FieldMap struct {
	From, To string
	Map      func(lo, hi int64) (int64, int64)
}

// Table is a table: schema, heap, primary index and secondaries.
type Table struct {
	// ID is the stable numeric id used in log records and lock names.
	ID uint32
	// Name is the table name.
	Name string
	// Fields is the ordered column list.
	Fields []Field
	// Heap stores the records.
	Heap *storage.Heap
	// Primary is the primary-key index (always present).
	Primary *Index
	// Secondaries are additional unique indexes.
	Secondaries []*Index
	// FieldMaps are the declared interval bijections between routable
	// fields, consulted by RouteFor when the partitioning field is not
	// the one an index's RouteRange was declared for.
	FieldMaps []FieldMap

	// PartitionField names the column DORA currently routes on. It is
	// mutable: the alignment advisor (E7) can re-partition on a new field.
	partMu         sync.RWMutex
	partitionField string
}

// FieldIndex returns the position of the named column, or -1.
func (t *Table) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// PartitionField returns the column DORA routes on.
func (t *Table) PartitionField() string {
	t.partMu.RLock()
	defer t.partMu.RUnlock()
	return t.partitionField
}

// SetPartitionField changes the routing column (logical re-partitioning).
func (t *Table) SetPartitionField(f string) {
	t.partMu.Lock()
	t.partitionField = f
	t.partMu.Unlock()
}

// RouteFor returns a function mapping inclusive intervals of the named
// field's values to ix's key intervals, or nil when the index is not
// routable on that field. The identity case returns ix.RouteRange
// directly; otherwise a declared FieldMap composing field →
// ix.RouteField → keys makes the index claimable under a partitioning
// field its RouteRange was not declared for (re-claim beyond identity
// on Repartition).
func (t *Table) RouteFor(ix *Index, field string) func(lo, hi int64) (int64, int64) {
	if ix.RouteRange == nil {
		return nil
	}
	if ix.RouteField == field {
		return ix.RouteRange
	}
	for _, fm := range t.FieldMaps {
		if fm.From == field && fm.To == ix.RouteField {
			m, rr := fm.Map, ix.RouteRange
			return func(lo, hi int64) (int64, int64) { return rr(m(lo, hi)) }
		}
	}
	return nil
}

// Indexes returns the primary index followed by all secondaries.
func (t *Table) Indexes() []*Index {
	out := make([]*Index, 0, 1+len(t.Secondaries))
	if t.Primary != nil {
		out = append(out, t.Primary)
	}
	return append(out, t.Secondaries...)
}

// IndexByName returns the index (primary or secondary) with that name.
func (t *Table) IndexByName(name string) *Index {
	if t.Primary != nil && t.Primary.Name == name {
		return t.Primary
	}
	for _, ix := range t.Secondaries {
		if ix.Name == name {
			return ix
		}
	}
	return nil
}

// Catalog is the set of tables.
type Catalog struct {
	mu     sync.RWMutex
	byName map[string]*Table
	byID   map[uint32]*Table
	nextID uint32
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		byName: make(map[string]*Table),
		byID:   make(map[uint32]*Table),
		nextID: 1,
	}
}

// AddTable registers a table built by the storage manager. The table is
// assigned the next id; its primary index must already be set.
func (c *Catalog) AddTable(t *Table) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byName[t.Name]; dup {
		return nil, fmt.Errorf("catalog: table %q exists", t.Name)
	}
	t.ID = c.nextID
	c.nextID++
	c.byName[t.Name] = t
	c.byID[t.ID] = t
	return t, nil
}

// Table returns the table with the given name, or nil.
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.byName[name]
}

// TableByID returns the table with the given id, or nil.
func (c *Catalog) TableByID(id uint32) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.byID[id]
}

// Tables returns all tables in registration order.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.byID))
	for id := uint32(1); id < c.nextID; id++ {
		if t := c.byID[id]; t != nil {
			out = append(out, t)
		}
	}
	return out
}
