package catalog

import (
	"testing"

	"dora/internal/tuple"
)

func mkTable(name string) *Table {
	t := &Table{
		Name: name,
		Fields: []Field{
			{Name: "id", Type: tuple.TInt},
			{Name: "alt", Type: tuple.TInt},
		},
		Primary: &Index{
			Name:   name + "_pk",
			Fields: []string{"id"},
			Key:    func(r tuple.Record) int64 { return r[0].Int },
		},
	}
	t.SetPartitionField("id")
	return t
}

func TestAddAndLookup(t *testing.T) {
	c := New()
	a, err := c.AddTable(mkTable("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.AddTable(mkTable("b"))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID || a.ID == 0 {
		t.Fatalf("ids: %d, %d", a.ID, b.ID)
	}
	if c.Table("a") != a || c.TableByID(b.ID) != b {
		t.Fatal("lookup broken")
	}
	if c.Table("zzz") != nil || c.TableByID(99) != nil {
		t.Fatal("missing lookups must return nil")
	}
	if got := c.Tables(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("Tables() = %v", got)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	c := New()
	if _, err := c.AddTable(mkTable("dup")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddTable(mkTable("dup")); err == nil {
		t.Fatal("duplicate table name accepted")
	}
}

func TestFieldIndexAndPartitionField(t *testing.T) {
	tbl := mkTable("t")
	if tbl.FieldIndex("alt") != 1 || tbl.FieldIndex("nope") != -1 {
		t.Fatal("FieldIndex broken")
	}
	if tbl.PartitionField() != "id" {
		t.Fatalf("partition field = %q", tbl.PartitionField())
	}
	tbl.SetPartitionField("alt")
	if tbl.PartitionField() != "alt" {
		t.Fatal("SetPartitionField had no effect")
	}
}

func TestIndexByName(t *testing.T) {
	tbl := mkTable("t")
	tbl.Secondaries = append(tbl.Secondaries, &Index{Name: "t_by_alt", Fields: []string{"alt"}})
	if tbl.IndexByName("t_pk") != tbl.Primary {
		t.Fatal("primary lookup")
	}
	if tbl.IndexByName("t_by_alt") == nil || tbl.IndexByName("zzz") != nil {
		t.Fatal("secondary lookup")
	}
}
