package xct

import "testing"

func TestFlowBuilder(t *testing.T) {
	a1 := &Action{Table: "t", KeyField: "k", Key: 1, Mode: Read}
	a2 := &Action{Table: "t", KeyField: "k", Key: 2, Mode: Write}
	a3 := &Action{Table: "u", KeyField: "k", Key: 3, Mode: Write}
	f := NewFlow("demo").AddPhase(a1, a2).AddPhase(a3)
	if f.Name != "demo" {
		t.Fatalf("name = %q", f.Name)
	}
	if len(f.Phases) != 2 {
		t.Fatalf("phases = %d", len(f.Phases))
	}
	if f.NumActions() != 3 {
		t.Fatalf("actions = %d", f.NumActions())
	}
	if len(f.Phases[0].Actions) != 2 || f.Phases[0].Actions[1] != a2 {
		t.Fatal("phase 0 contents wrong")
	}
}

func TestModeString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("mode strings")
	}
}
