// Package xct defines the engine-neutral transaction representation: a
// transaction flow graph — phases of actions separated by rendezvous
// points (RVPs) exactly as in the paper's Section 1.1 and its designer
// tool (Section 2.3, "the graph of actions and RVPs constitute the flow
// graph of the transaction").
//
// Both engines execute the same flow graphs. The conventional engine
// walks them serially in one worker thread, taking hierarchical locks
// per action (thread-to-transaction). The DORA engine dispatches each
// phase's actions to the partitions that own their data and lets the
// RVP's last finisher trigger the next phase or the commit decision
// (thread-to-data). Workloads therefore define each transaction once.
//
// In both engines the commit decided by the final RVP is pipelined:
// locks (global or partition-local) are released as soon as the commit
// record has its LSN, and the log manager's flush daemon completes the
// transaction — and unblocks its client — once that record hardens.
// LSN-ordered flushing makes the early release safe: a transaction that
// read the released writes cannot become durable first.
package xct

import (
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/tx"
)

// Mode declares the kind of access an action performs on its key.
type Mode uint8

const (
	// Read actions only read rows under their routing key.
	Read Mode = iota
	// Write actions may insert, update or delete rows under their key.
	Write
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Write {
		return "W"
	}
	return "R"
}

// LockMode is a multigranularity lock mode in DORA's hierarchical local
// lock tables (partition → key-range granule → key). Point accesses take
// S/X at the key level with IS/IX intents on the path above; range scans
// and partition-wide operations take S/X directly at the granule or
// partition level; SIX is the standard "read the whole subtree, write
// some of it" combination a transaction reaches by upgrading a coarse S
// with write intents.
type LockMode uint8

// Lock modes, ordered so that numeric comparison means nothing — use
// LockCovers/LockLub for lattice queries and LockCompatible for the
// conflict matrix.
const (
	LockNone LockMode = iota
	LockIS
	LockIX
	LockS
	LockSIX
	LockX
)

// String implements fmt.Stringer.
func (m LockMode) String() string {
	switch m {
	case LockIS:
		return "IS"
	case LockIX:
		return "IX"
	case LockS:
		return "S"
	case LockSIX:
		return "SIX"
	case LockX:
		return "X"
	}
	return "-"
}

// lockCompat is the standard multigranularity compatibility matrix
// (Gray et al.): rows/columns IS, IX, S, SIX, X.
var lockCompat = [6][6]bool{
	LockNone: {LockNone: true, LockIS: true, LockIX: true, LockS: true, LockSIX: true, LockX: true},
	LockIS:   {LockNone: true, LockIS: true, LockIX: true, LockS: true, LockSIX: true},
	LockIX:   {LockNone: true, LockIS: true, LockIX: true},
	LockS:    {LockNone: true, LockIS: true, LockS: true},
	LockSIX:  {LockNone: true, LockIS: true},
	LockX:    {LockNone: true},
}

// LockCompatible reports whether two holds by DIFFERENT transactions can
// coexist on one node.
func LockCompatible(a, b LockMode) bool { return lockCompat[a][b] }

// LockCovers reports whether holding `held` makes a request for `want`
// on the same node by the same transaction redundant. The lattice:
// X covers everything; SIX covers S, IX, IS; S covers IS; IX covers IS.
func LockCovers(held, want LockMode) bool {
	if held == want || want == LockNone {
		return true
	}
	switch held {
	case LockX:
		return true
	case LockSIX:
		return want == LockS || want == LockIX || want == LockIS
	case LockS, LockIX:
		return want == LockIS
	}
	return false
}

// LockLub returns the least upper bound of two modes — the weakest
// single mode covering both (S ∨ IX = SIX; anything ∨ X = X).
func LockLub(a, b LockMode) LockMode {
	if LockCovers(a, b) {
		return a
	}
	if LockCovers(b, a) {
		return b
	}
	// The only incomparable pairs below X are {S, IX} and {S/IX, SIX}
	// variants; all of them join at SIX.
	if a == LockX || b == LockX {
		return LockX
	}
	return LockSIX
}

// LockFor maps an action's access mode to the key-level lock it needs.
func (m Mode) LockFor() LockMode {
	if m == Write {
		return LockX
	}
	return LockS
}

// IntentFor maps an action's access mode to the intent its ancestors in
// the hierarchy need.
func (m Mode) IntentFor() LockMode {
	if m == Write {
		return LockIX
	}
	return LockIS
}

// Env is the execution environment handed to action bodies: the shared
// transaction context plus the worker-tagged storage session of whichever
// thread runs the action.
type Env struct {
	Txn *tx.Txn
	Ses *sm.Session
	// Async, when non-nil, is the engine's continuation host: the action
	// may suspend itself on a foreign (cross-partition) operation instead
	// of blocking its worker thread. Engines that execute blocking ships
	// (the conventional engine; DORA with Config.BlockingShips) leave it
	// nil and bodies fall back to the synchronous session operations.
	Async AsyncHost
}

// AsyncHost is what a continuation-passing engine offers an action body
// (DORA partition workers implement it; see internal/dora).
type AsyncHost interface {
	// Home returns the continuation executor of the thread running the
	// action: asynchronous session operations deliver their completions
	// through it, so a suspended action resumes on its own worker.
	Home() sm.ContExec
	// Suspend detaches the action from its thread: the engine ignores
	// the body's return value (return nil after calling Suspend) and the
	// worker resumes draining its inbox; the returned resume function
	// must be called exactly once — typically from an async operation's
	// completion — with the action's final error. Call Suspend at most
	// once per action execution.
	Suspend() (resume func(error))
}

// Resolver maps an action's key to the row's value of another field,
// typically via a secondary-index probe (for example TATP sub_nbr →
// s_id). Engines invoke it when the declared key field is not the field
// they lock or route on — a non-partitioning-aligned access in the
// paper's terms (the subject of experiment E7).
type Resolver func(env *Env, field string) (int64, error)

// AsyncResolver is Resolve in continuation-passing form: k fires exactly
// once with the resolved value or an error, possibly on another worker's
// thread. Engines that dispatch phases asynchronously prefer it over
// Resolve so an unaligned action's index probe suspends the dispatch the
// way action bodies suspend on foreign operations, instead of blocking
// the dispatching thread on a cross-partition ship.
type AsyncResolver func(env *Env, field string, k func(int64, error))

// Action is one unit of transaction work, bound to a single value of a
// single field of a single table — the granularity DORA routes on.
type Action struct {
	// Table names the table this action touches.
	Table string
	// KeyField is the field Key is a value of (e.g. "s_id" or "sub_nbr").
	KeyField string
	// Key is the routing/locking value in KeyField's space. Every row the
	// body touches must carry this value in KeyField.
	Key int64
	// Mode is Read or Write.
	Mode Mode
	// Ranged declares that the action logically touches every routing
	// value in [RangeLo, RangeHi] (a range scan) rather than just Key.
	// A hierarchical local lock table covers the interval with one
	// coarse S/X lock per granule instead of per-key locks; the flat
	// baseline expands it to a lock per value. Key must lie inside the
	// interval (it remains the routing target), and the lock covers the
	// intersection of the interval with the owning partition's ranges —
	// partition-local logical locking, exactly as for point actions.
	Ranged  bool
	RangeLo int64
	RangeHi int64
	// Resolve translates Key into other fields' value spaces when the
	// engine locks or routes on a different field. May be nil when
	// KeyField always matches the lock and partition fields.
	Resolve Resolver
	// ResolveAsync is the non-blocking form of Resolve. When set, an
	// asynchronously dispatching engine routes the unaligned action
	// without parking its dispatcher; engines running blocking ships
	// ignore it and use Resolve.
	ResolveAsync AsyncResolver
	// Run is the body. A non-nil error aborts the transaction.
	Run func(env *Env) error
	// Label is an optional human-readable name (designer, monitor).
	Label string
	// LateKey marks actions whose Key is computed by an earlier phase
	// (the builder leaves it zero and a prior action fills it in). The
	// DORA engine then cannot claim this action's lock up front, so such
	// actions fall outside the deadlock-freedom guarantee and rely on the
	// local wait timeout.
	LateKey bool
}

// Phase is a set of actions with no data dependencies among them; they
// may execute in parallel. Consecutive phases are separated by an RVP.
type Phase struct {
	Actions []*Action
}

// Flow is a transaction flow graph: phases executed in order, with an
// implicit rendezvous point between consecutive phases and a final RVP
// deciding commit or abort.
type Flow struct {
	// Name identifies the transaction type (statistics, designer).
	Name   string
	Phases []Phase
}

// NewFlow starts a flow-graph builder.
func NewFlow(name string) *Flow { return &Flow{Name: name} }

// AddPhase appends a phase with the given actions and returns the flow.
func (f *Flow) AddPhase(actions ...*Action) *Flow {
	f.Phases = append(f.Phases, Phase{Actions: actions})
	return f
}

// NumActions returns the total number of actions in the flow.
func (f *Flow) NumActions() int {
	n := 0
	for _, p := range f.Phases {
		n += len(p.Actions)
	}
	return n
}

// Record is re-exported for workload convenience.
type Record = tuple.Record
