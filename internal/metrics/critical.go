package metrics

// CriticalSectionStats counts entries into contended critical sections,
// classified by subsystem. This is the instrument behind experiment E4:
// the companion DORA paper's central claim is that the conventional
// thread-to-transaction design forces every transaction through a large
// number of lock-manager critical sections, while DORA's thread-to-data
// design eliminates nearly all of them.
type CriticalSectionStats struct {
	// LockMgr counts entries into the centralized lock manager's internal
	// critical sections (lock-table bucket latches, wait-queue mutation,
	// deadlock-detector registration).
	LockMgr Counter
	// Latch counts page/node latch acquisitions. The original DORA paper
	// removes *lock-manager* serialization and leaves latching in place;
	// since the partitioned access path (PLP-style per-partition B+tree
	// subtrees, experiment E12) that caveat is partially retired: owner-
	// thread index descents are latch-free, and only page/frame latches
	// plus shared-tree residue remain here.
	Latch Counter
	// IndexLatch counts the subset of Latch that came from B+tree node
	// crabbing — the serialization the partitioned access path removes.
	// It is a view into Latch, not an additional class: Total() does not
	// add it again.
	IndexLatch Counter
	// FrameLatch counts the subset of Latch that came from buffer-frame
	// latches taken by heap record accesses — the serialization heap-page
	// ownership stamping removes: for owner-thread aligned reads via
	// background maintenance (experiment E13), and for owner-thread
	// mutations via the copy-on-write page-cleaning protocol (experiment
	// E15). Like IndexLatch it is a view into Latch, not an additional
	// class.
	FrameLatch Counter
	// FrameLatchWrite counts the subset of FrameLatch taken exclusively
	// for a heap record MUTATION (insert/update/delete). It is the
	// residual the latch-free owner write path drives to ~0 on stamped
	// pages; a view into FrameLatch (and so into Latch), never added
	// again by Total().
	FrameLatchWrite Counter
	// Log counts log-manager serialization points (buffer reservation).
	// Under the consolidation-array log this is one entry per reserved
	// group, not per record: appends that piggyback on another thread's
	// reservation never enter the critical section, which is exactly the
	// effect the consolidation array exists to produce.
	Log Counter
	// TxnMgr counts transaction-manager critical sections (begin/commit
	// bookkeeping in shared structures).
	TxnMgr Counter
	// Contended counts critical-section entries that had to wait (the
	// acquisition was not immediately granted).
	Contended Counter
}

// SnapshotCS is a point-in-time copy of CriticalSectionStats.
type SnapshotCS struct {
	LockMgr         int64 `json:"lock_mgr"`
	Latch           int64 `json:"latch"`
	IndexLatch      int64 `json:"index_latch"`
	FrameLatch      int64 `json:"frame_latch"`
	FrameLatchWrite int64 `json:"frame_latch_write"`
	Log             int64 `json:"log"`
	TxnMgr          int64 `json:"txn_mgr"`
	Contended       int64 `json:"contended"`
}

// Snapshot returns current values.
func (c *CriticalSectionStats) Snapshot() SnapshotCS {
	return SnapshotCS{
		LockMgr:         c.LockMgr.Load(),
		Latch:           c.Latch.Load(),
		IndexLatch:      c.IndexLatch.Load(),
		FrameLatch:      c.FrameLatch.Load(),
		FrameLatchWrite: c.FrameLatchWrite.Load(),
		Log:             c.Log.Load(),
		TxnMgr:          c.TxnMgr.Load(),
		Contended:       c.Contended.Load(),
	}
}

// Reset zeroes all counters.
func (c *CriticalSectionStats) Reset() {
	c.LockMgr.Reset()
	c.Latch.Reset()
	c.IndexLatch.Reset()
	c.FrameLatch.Reset()
	c.FrameLatchWrite.Reset()
	c.Log.Reset()
	c.TxnMgr.Reset()
	c.Contended.Reset()
}

// Total returns the sum of all critical-section entries.
func (s SnapshotCS) Total() int64 {
	return s.LockMgr + s.Latch + s.Log + s.TxnMgr
}
