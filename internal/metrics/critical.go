package metrics

// CriticalSectionStats counts entries into contended critical sections,
// classified by subsystem. This is the instrument behind experiment E4:
// the companion DORA paper's central claim is that the conventional
// thread-to-transaction design forces every transaction through a large
// number of lock-manager critical sections, while DORA's thread-to-data
// design eliminates nearly all of them.
type CriticalSectionStats struct {
	// LockMgr counts entries into the centralized lock manager's internal
	// critical sections (lock-table bucket latches, wait-queue mutation,
	// deadlock-detector registration).
	LockMgr Counter
	// Latch counts page/node latch acquisitions (these remain in DORA;
	// the paper removes *lock-manager* serialization, not latching).
	Latch Counter
	// Log counts log-manager serialization points (buffer reservation).
	// Under the consolidation-array log this is one entry per reserved
	// group, not per record: appends that piggyback on another thread's
	// reservation never enter the critical section, which is exactly the
	// effect the consolidation array exists to produce.
	Log Counter
	// TxnMgr counts transaction-manager critical sections (begin/commit
	// bookkeeping in shared structures).
	TxnMgr Counter
	// Contended counts critical-section entries that had to wait (the
	// acquisition was not immediately granted).
	Contended Counter
}

// SnapshotCS is a point-in-time copy of CriticalSectionStats.
type SnapshotCS struct {
	LockMgr   int64 `json:"lock_mgr"`
	Latch     int64 `json:"latch"`
	Log       int64 `json:"log"`
	TxnMgr    int64 `json:"txn_mgr"`
	Contended int64 `json:"contended"`
}

// Snapshot returns current values.
func (c *CriticalSectionStats) Snapshot() SnapshotCS {
	return SnapshotCS{
		LockMgr:   c.LockMgr.Load(),
		Latch:     c.Latch.Load(),
		Log:       c.Log.Load(),
		TxnMgr:    c.TxnMgr.Load(),
		Contended: c.Contended.Load(),
	}
}

// Reset zeroes all counters.
func (c *CriticalSectionStats) Reset() {
	c.LockMgr.Reset()
	c.Latch.Reset()
	c.Log.Reset()
	c.TxnMgr.Reset()
	c.Contended.Reset()
}

// Total returns the sum of all critical-section entries.
func (s SnapshotCS) Total() int64 {
	return s.LockMgr + s.Latch + s.Log + s.TxnMgr
}
