package metrics

import (
	"sync"
)

// Access records one record touch: which worker thread accessed which
// logical key of which table. Traces of these drive experiment E1, the
// demo's "Access Patterns" panel: conventional workers scatter across the
// whole key space while each DORA worker stays inside its partition.
type Access struct {
	Worker int   // worker/thread id
	Table  int   // table id
	Key    int64 // primary routing key touched
	Write  bool  // true for update/insert/delete
}

// AccessTracer collects a bounded trace of record accesses. When the
// bound is reached further accesses are dropped (the experiment only
// needs a representative window). The zero value is a disabled tracer.
type AccessTracer struct {
	mu    sync.Mutex
	buf   []Access
	limit int
	on    bool
}

// NewAccessTracer returns a tracer that keeps at most limit accesses.
func NewAccessTracer(limit int) *AccessTracer {
	return &AccessTracer{buf: make([]Access, 0, limit), limit: limit, on: true}
}

// Enabled reports whether the tracer is collecting.
func (t *AccessTracer) Enabled() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.on && len(t.buf) < t.limit
}

// Record appends one access if the tracer is enabled and under its limit.
func (t *AccessTracer) Record(a Access) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.on && len(t.buf) < t.limit {
		t.buf = append(t.buf, a)
	}
	t.mu.Unlock()
}

// Trace returns a copy of the collected accesses.
func (t *AccessTracer) Trace() []Access {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Access, len(t.buf))
	copy(out, t.buf)
	return out
}

// Reset clears the trace and re-enables collection.
func (t *AccessTracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.on = true
	t.mu.Unlock()
}

// PredictabilityStats summarizes how "data-oriented" a trace is.
type PredictabilityStats struct {
	Accesses int
	// Workers is the number of distinct workers observed.
	Workers int
	// MeanRunLength is the mean length of maximal runs of consecutive
	// accesses by the same worker to the same table. Long runs mean the
	// worker batches related work (DORA); runs near 1 mean chaos.
	MeanRunLength float64
	// KeySpread is the mean, over workers, of (distinct key-space span the
	// worker touched) / (global span). A conventional worker wanders the
	// whole space (→1); a DORA worker stays in its partition (→1/N).
	KeySpread float64
}

// Predictability computes PredictabilityStats for the accesses of one table.
func Predictability(trace []Access, table int) PredictabilityStats {
	var st PredictabilityStats
	type span struct{ lo, hi int64 }
	spans := map[int]*span{}
	var gLo, gHi int64
	first := true
	var prevWorker = -1
	runLen, runs, runSum := 0, 0, 0
	for _, a := range trace {
		if a.Table != table {
			continue
		}
		st.Accesses++
		if first {
			gLo, gHi = a.Key, a.Key
			first = false
		} else {
			if a.Key < gLo {
				gLo = a.Key
			}
			if a.Key > gHi {
				gHi = a.Key
			}
		}
		s, ok := spans[a.Worker]
		if !ok {
			spans[a.Worker] = &span{a.Key, a.Key}
		} else {
			if a.Key < s.lo {
				s.lo = a.Key
			}
			if a.Key > s.hi {
				s.hi = a.Key
			}
		}
		if a.Worker == prevWorker {
			runLen++
		} else {
			if runLen > 0 {
				runs++
				runSum += runLen
			}
			runLen = 1
			prevWorker = a.Worker
		}
	}
	if runLen > 0 {
		runs++
		runSum += runLen
	}
	st.Workers = len(spans)
	if runs > 0 {
		st.MeanRunLength = float64(runSum) / float64(runs)
	}
	gSpan := float64(gHi-gLo) + 1
	if gSpan > 0 && len(spans) > 0 {
		var acc float64
		for _, s := range spans {
			acc += (float64(s.hi-s.lo) + 1) / gSpan
		}
		st.KeySpread = acc / float64(len(spans))
	}
	return st
}
