package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d", c.Load())
	}
	if c.Reset() != 8000 || c.Load() != 0 {
		t.Fatal("Reset broken")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if g.Load() != 40 {
		t.Fatalf("gauge = %d", g.Load())
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.MeanMicros() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(10 * time.Millisecond)
	if h.Count() != 101 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.MeanMicros(); m < 100 || m > 1000 {
		t.Fatalf("mean = %f", m)
	}
	if h.Quantile(0.5) > 256 {
		t.Fatalf("p50 = %d", h.Quantile(0.5))
	}
	if h.Quantile(1.0) < 1000 {
		t.Fatalf("p100 = %d", h.Quantile(1.0))
	}
	if h.MaxMicros() != 10000 {
		t.Fatalf("max = %d", h.MaxMicros())
	}
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("Reset broken")
	}
}

func TestHistogramExactPowerOfTwo(t *testing.T) {
	// An observation of exactly 2^i µs must be reported as bounded by
	// 2^i, not 2^(i+1) (the bucket edges are inclusive upper bounds).
	for _, us := range []int64{1, 2, 4, 256, 1024} {
		var h Histogram
		h.Observe(time.Duration(us) * time.Microsecond)
		if got := h.Quantile(1.0); got != us {
			t.Fatalf("Quantile(1.0) after Observe(%dµs) = %d, want %d", us, got, us)
		}
	}
	// Just past the edge spills into the next bucket.
	var h Histogram
	h.Observe(257 * time.Microsecond)
	if got := h.Quantile(1.0); got != 512 {
		t.Fatalf("Quantile(1.0) after Observe(257µs) = %d, want 512", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(time.Duration(1+i) * time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != writers*per {
		t.Fatalf("count = %d, want %d", h.Count(), writers*per)
	}
	wantSum := int64(0)
	for i := 0; i < writers; i++ {
		wantSum += int64(1+i) * per
	}
	if h.SumMicros() != wantSum {
		t.Fatalf("sum = %d, want %d", h.SumMicros(), wantSum)
	}
	if h.MaxMicros() != writers {
		t.Fatalf("max = %d, want %d", h.MaxMicros(), writers)
	}
	var total int64
	for _, b := range h.Buckets() {
		total += b
	}
	if total != writers*per {
		t.Fatalf("bucket total = %d, want %d", total, writers*per)
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Mark(10)
	if m.Total() != 10 {
		t.Fatalf("total = %d", m.Total())
	}
	if m.Rate() <= 0 {
		t.Fatal("rate should be positive")
	}
	m.Window()
	m.Mark(5)
	time.Sleep(10 * time.Millisecond)
	w := m.Window()
	if w <= 0 {
		t.Fatalf("window rate = %f", w)
	}
	m.Restart()
	if m.Total() != 0 {
		t.Fatal("Restart broken")
	}
}

func TestCriticalSectionSnapshot(t *testing.T) {
	cs := &CriticalSectionStats{}
	cs.LockMgr.Add(3)
	cs.Latch.Add(2)
	cs.Log.Inc()
	cs.Contended.Inc()
	snap := cs.Snapshot()
	if snap.LockMgr != 3 || snap.Latch != 2 || snap.Log != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Total() != 6 {
		t.Fatalf("total = %d", snap.Total())
	}
	cs.Reset()
	if cs.Snapshot().Total() != 0 {
		t.Fatal("Reset broken")
	}
}

func TestAccessTracerBounds(t *testing.T) {
	tr := NewAccessTracer(3)
	for i := 0; i < 10; i++ {
		tr.Record(Access{Worker: i, Table: 1, Key: int64(i)})
	}
	if got := len(tr.Trace()); got != 3 {
		t.Fatalf("trace len = %d, want capped 3", got)
	}
	tr.Reset()
	if len(tr.Trace()) != 0 {
		t.Fatal("Reset broken")
	}
	var nilTr *AccessTracer
	nilTr.Record(Access{}) // must not panic
	if nilTr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
}

func TestPredictability(t *testing.T) {
	// Worker 0 sweeps keys 1..10 (long run, narrow-ish), worker 1 jumps
	// around the whole space.
	var trace []Access
	for k := int64(1); k <= 10; k++ {
		trace = append(trace, Access{Worker: 0, Table: 1, Key: k})
	}
	for _, k := range []int64{1, 100, 3, 77, 50} {
		trace = append(trace, Access{Worker: 1, Table: 1, Key: k})
	}
	st := Predictability(trace, 1)
	if st.Workers != 2 || st.Accesses != 15 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanRunLength < 5 {
		t.Fatalf("mean run length = %f", st.MeanRunLength)
	}
	// Other tables are excluded.
	st2 := Predictability(trace, 2)
	if st2.Accesses != 0 {
		t.Fatal("table filter broken")
	}
}
