// Package metrics provides low-overhead counters, histograms and throughput
// meters used to instrument both the conventional and the DORA execution
// engines. The demo paper's live monitor (its Figure 1) is a view over
// exactly these statistics; internal/monitor serializes them over a socket.
//
// All types in this package are safe for concurrent use unless noted
// otherwise. Hot-path counters are padded to avoid false sharing between
// worker threads, because the whole point of the reproduced system is to
// measure (and remove) cross-thread interference.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// cacheLinePad separates hot atomics that belong to different writers.
const cacheLine = 64

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset sets the counter to zero and returns the previous value.
func (c *Counter) Reset() int64 { return c.v.Swap(0) }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency histogram with power-of-two bucket
// boundaries starting at 1µs. It records durations and can report count,
// mean, and approximate percentiles.
type Histogram struct {
	mu      sync.Mutex
	buckets [40]int64 // bucket i covers [2^i, 2^(i+1)) microseconds
	count   int64
	sumUS   int64
	maxUS   int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	idx := 0
	for v := us; v > 1 && idx < len(h.buckets)-1; v >>= 1 {
		idx++
	}
	h.mu.Lock()
	h.buckets[idx]++
	h.count++
	h.sumUS += us
	if us > h.maxUS {
		h.maxUS = us
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// MeanMicros returns the mean observation in microseconds (0 if empty).
func (h *Histogram) MeanMicros() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sumUS) / float64(h.count)
}

// MaxMicros returns the largest observation in microseconds.
func (h *Histogram) MaxMicros() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.maxUS
}

// Quantile returns an upper bound (bucket boundary) for quantile q in
// microseconds; q must be in (0,1].
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, b := range h.buckets {
		seen += b
		if seen >= target {
			return int64(1) << uint(i+1)
		}
	}
	return h.maxUS
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets = [40]int64{}
	h.count, h.sumUS, h.maxUS = 0, 0, 0
}

// Meter measures throughput: events per second over the lifetime of the
// meter and over sampling windows.
type Meter struct {
	events  atomic.Int64
	started atomic.Int64 // unix nanos

	mu       sync.Mutex
	lastSnap int64 // events at last Window call
	lastTime time.Time
}

// NewMeter returns a started meter.
func NewMeter() *Meter {
	m := &Meter{}
	m.started.Store(time.Now().UnixNano())
	m.lastTime = time.Now()
	return m
}

// Mark records n events.
func (m *Meter) Mark(n int64) { m.events.Add(n) }

// Total returns the number of events recorded so far.
func (m *Meter) Total() int64 { return m.events.Load() }

// Rate returns lifetime events/second.
func (m *Meter) Rate() float64 {
	elapsed := time.Since(time.Unix(0, m.started.Load())).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.events.Load()) / elapsed
}

// Window returns events/second since the previous Window call.
func (m *Meter) Window() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	cur := m.events.Load()
	dt := now.Sub(m.lastTime).Seconds()
	de := cur - m.lastSnap
	m.lastSnap = cur
	m.lastTime = now
	if dt <= 0 {
		return 0
	}
	return float64(de) / dt
}

// Restart zeroes the meter and restarts its clock.
func (m *Meter) Restart() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events.Store(0)
	m.started.Store(time.Now().UnixNano())
	m.lastSnap = 0
	m.lastTime = time.Now()
}
