// Package metrics provides low-overhead counters, histograms and throughput
// meters used to instrument both the conventional and the DORA execution
// engines. The demo paper's live monitor (its Figure 1) is a view over
// exactly these statistics; internal/monitor serializes them over a socket.
//
// All types in this package are safe for concurrent use unless noted
// otherwise. Hot-path counters are padded to avoid false sharing between
// worker threads, because the whole point of the reproduced system is to
// measure (and remove) cross-thread interference.
package metrics

import (
	"math/bits"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// cacheLinePad separates hot atomics that belong to different writers.
const cacheLine = 64

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset sets the counter to zero and returns the previous value.
func (c *Counter) Reset() int64 { return c.v.Swap(0) }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistogramBuckets is the number of power-of-two latency buckets.
const HistogramBuckets = 40

// histStripes spreads concurrent Observe calls over independent cache
// lines; must be a power of two.
const histStripes = 8

// histStripe is one writer shard of a Histogram. Each field group is a
// plain atomic; the trailing pad keeps neighbouring stripes off each
// other's cache lines.
type histStripe struct {
	buckets [HistogramBuckets]atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64
	maxUS   atomic.Int64
	_       [cacheLine]byte
}

// Histogram is a fixed-bucket latency histogram with power-of-two bucket
// boundaries starting at 1µs: bucket 0 counts observations in [0,1]µs and
// bucket i counts (2^(i-1), 2^i]µs, so the bucket index IS the log2 of the
// inclusive upper bound. Observe is lock-free — each call picks one of
// several cache-padded stripes of atomic buckets, so traced hot paths
// never serialize on a histogram mutex. Readers sum the stripes without
// synchronization; a snapshot taken while writers race may be off by the
// in-flight observations, which is fine for monitoring.
type Histogram struct {
	stripes [histStripes]histStripe
}

// bucketIndex maps a non-negative µs value to its bucket: 0 for us ≤ 1,
// else the smallest i with us ≤ 2^i, capped at the last bucket.
func bucketIndex(us int64) int {
	if us <= 1 {
		return 0
	}
	idx := bits.Len64(uint64(us - 1)) // smallest i with 2^i >= us
	if idx > HistogramBuckets-1 {
		idx = HistogramBuckets - 1
	}
	return idx
}

// BucketUpperMicros returns bucket i's inclusive upper bound in µs (2^i).
func BucketUpperMicros(i int) int64 { return int64(1) << uint(i) }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	s := &h.stripes[rand.Uint32()&(histStripes-1)]
	s.buckets[bucketIndex(us)].Add(1)
	s.count.Add(1)
	s.sumUS.Add(us)
	for {
		cur := s.maxUS.Load()
		if us <= cur || s.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.stripes {
		n += h.stripes[i].count.Load()
	}
	return n
}

// SumMicros returns the sum of all observations in microseconds.
func (h *Histogram) SumMicros() int64 {
	var s int64
	for i := range h.stripes {
		s += h.stripes[i].sumUS.Load()
	}
	return s
}

// MeanMicros returns the mean observation in microseconds (0 if empty).
func (h *Histogram) MeanMicros() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.SumMicros()) / float64(n)
}

// MaxMicros returns the largest observation in microseconds.
func (h *Histogram) MaxMicros() int64 {
	var m int64
	for i := range h.stripes {
		if v := h.stripes[i].maxUS.Load(); v > m {
			m = v
		}
	}
	return m
}

// Buckets returns the per-bucket counts summed over all stripes. Bucket i
// holds observations ≤ BucketUpperMicros(i) µs (and > the previous bound).
func (h *Histogram) Buckets() [HistogramBuckets]int64 {
	var out [HistogramBuckets]int64
	for i := range h.stripes {
		for b := 0; b < HistogramBuckets; b++ {
			out[b] += h.stripes[i].buckets[b].Load()
		}
	}
	return out
}

// Quantile returns an upper bound (the bucket's inclusive upper edge) for
// quantile q in microseconds; q must be in (0,1]. An observation of
// exactly 2^i µs lands in bucket i and is reported as bounded by 2^i, not
// 2^(i+1).
func (h *Histogram) Quantile(q float64) int64 {
	buckets := h.Buckets()
	var count int64
	for _, b := range buckets {
		count += b
	}
	if count == 0 {
		return 0
	}
	target := int64(q * float64(count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, b := range buckets {
		seen += b
		if seen >= target {
			return BucketUpperMicros(i)
		}
	}
	return h.MaxMicros()
}

// Reset clears the histogram. Not atomic with respect to concurrent
// Observe calls — racing observations may straddle the reset.
func (h *Histogram) Reset() {
	for i := range h.stripes {
		s := &h.stripes[i]
		for b := range s.buckets {
			s.buckets[b].Store(0)
		}
		s.count.Store(0)
		s.sumUS.Store(0)
		s.maxUS.Store(0)
	}
}

// Meter measures throughput: events per second over the lifetime of the
// meter and over sampling windows.
type Meter struct {
	events  atomic.Int64
	started atomic.Int64 // unix nanos

	mu       sync.Mutex
	lastSnap int64 // events at last Window call
	lastTime time.Time
}

// NewMeter returns a started meter.
func NewMeter() *Meter {
	m := &Meter{}
	m.started.Store(time.Now().UnixNano())
	m.lastTime = time.Now()
	return m
}

// Mark records n events.
func (m *Meter) Mark(n int64) { m.events.Add(n) }

// Total returns the number of events recorded so far.
func (m *Meter) Total() int64 { return m.events.Load() }

// Rate returns lifetime events/second.
func (m *Meter) Rate() float64 {
	elapsed := time.Since(time.Unix(0, m.started.Load())).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.events.Load()) / elapsed
}

// Window returns events/second since the previous Window call.
func (m *Meter) Window() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	cur := m.events.Load()
	dt := now.Sub(m.lastTime).Seconds()
	de := cur - m.lastSnap
	m.lastSnap = cur
	m.lastTime = now
	if dt <= 0 {
		return 0
	}
	return float64(de) / dt
}

// Restart zeroes the meter and restarts its clock.
func (m *Meter) Restart() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events.Store(0)
	m.started.Store(time.Now().UnixNano())
	m.lastSnap = 0
	m.lastTime = time.Now()
}
