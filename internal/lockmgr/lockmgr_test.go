package lockmgr

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dora/internal/metrics"
)

func TestCompatibilityMatrix(t *testing.T) {
	cases := []struct {
		a, b Mode
		ok   bool
	}{
		{IS, IS, true}, {IS, IX, true}, {IS, S, true}, {IS, X, false},
		{IX, IX, true}, {IX, S, false}, {IX, X, false},
		{S, S, true}, {S, X, false},
		{X, X, false},
	}
	for _, c := range cases {
		if Compatible(c.a, c.b) != c.ok || Compatible(c.b, c.a) != c.ok {
			t.Fatalf("Compatible(%v,%v) != %v", c.a, c.b, c.ok)
		}
	}
}

func TestCovers(t *testing.T) {
	if !Covers(X, S) || !Covers(X, IX) || !Covers(S, IS) || !Covers(S, S) {
		t.Fatal("stronger modes must cover weaker")
	}
	if Covers(IS, S) || Covers(S, IX) || Covers(IX, S) {
		t.Fatal("weaker/incomparable modes must not cover")
	}
}

func TestGrantAndRelease(t *testing.T) {
	m := New(nil)
	n := RowName(1, 42)
	if err := m.Lock(1, n, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, n, S); err != nil {
		t.Fatal(err) // S-S compatible
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(3, n, X) }()
	select {
	case <-done:
		t.Fatal("X granted while S held")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := New(nil)
	n := RowName(1, 7)
	if err := m.Lock(1, n, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, n, S); err != nil {
		t.Fatal(err) // re-request
	}
	if err := m.Lock(1, n, X); err != nil {
		t.Fatal(err) // sole holder upgrade
	}
	held := m.HeldModes(1)
	if held[n] != X {
		t.Fatalf("mode after upgrade = %v", held[n])
	}
	// A second txn must now block.
	blocked := make(chan error, 1)
	go func() { blocked <- m.Lock(2, n, S) }()
	select {
	case <-blocked:
		t.Fatal("S granted under X")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
}

func TestFIFONoStarvation(t *testing.T) {
	m := New(nil)
	n := RowName(1, 1)
	if err := m.Lock(1, n, S); err != nil {
		t.Fatal(err)
	}
	// Writer queues behind the S holder.
	var order []int
	var mu sync.Mutex
	note := func(id int) {
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.Lock(2, n, X); err != nil {
			t.Error(err)
			return
		}
		note(2)
		m.ReleaseAll(2)
	}()
	time.Sleep(20 * time.Millisecond)
	// A later reader must not overtake the queued writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.Lock(3, n, S); err != nil {
			t.Error(err)
			return
		}
		note(3)
		m.ReleaseAll(3)
	}()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(1)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Fatalf("grant order %v, want [2 3]", order)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := New(nil)
	m.Timeout = 5 * time.Second // rely on graph detection, not timeout
	a, b := RowName(1, 1), RowName(1, 2)
	if err := m.Lock(1, a, X); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, b, X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- m.Lock(1, b, X) }() // 1 waits on 2
	time.Sleep(30 * time.Millisecond)
	go func() { errs <- m.Lock(2, a, X) }() // 2 waits on 1 -> cycle
	var deadlocked, granted int
	for i := 0; i < 1; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrDeadlock) || errors.Is(err, ErrTimeout) {
				deadlocked++
			} else if err == nil {
				granted++
			} else {
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("deadlock not detected in time")
		}
	}
	if deadlocked == 0 {
		t.Fatal("no transaction was chosen as deadlock victim")
	}
	// Unwind: victim releases, survivor proceeds.
	m.ReleaseAll(2)
	m.ReleaseAll(1)
}

func TestTimeoutFallback(t *testing.T) {
	m := New(nil)
	m.Timeout = 50 * time.Millisecond
	n := RowName(1, 5)
	if err := m.Lock(1, n, X); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := m.Lock(2, n, X)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("timed out too early")
	}
	m.ReleaseAll(1)
	// Lock must be acquirable now (the timed-out request was withdrawn).
	if err := m.Lock(3, n, X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

func TestHierarchicalIntention(t *testing.T) {
	m := New(nil)
	// Txn 1: IX on table, X on row (a writer).
	if err := m.Lock(1, TableName(1), IX); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, RowName(1, 10), X); err != nil {
		t.Fatal(err)
	}
	// Txn 2: IS on the table is compatible; S on another row fine.
	if err := m.Lock(2, TableName(1), IS); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, RowName(1, 11), S); err != nil {
		t.Fatal(err)
	}
	// Txn 3: table S blocks on IX.
	done := make(chan error, 1)
	go func() { done <- m.Lock(3, TableName(1), S) }()
	select {
	case <-done:
		t.Fatal("table S granted while IX held")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

func TestCriticalSectionAccounting(t *testing.T) {
	cs := &metrics.CriticalSectionStats{}
	m := New(cs)
	for i := 0; i < 10; i++ {
		if err := m.Lock(1, RowName(1, int64(i)), X); err != nil {
			t.Fatal(err)
		}
	}
	m.ReleaseAll(1)
	if cs.LockMgr.Load() == 0 {
		t.Fatal("lock-manager critical sections not counted")
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	m := New(nil)
	var wg sync.WaitGroup
	var errs atomic.Int64
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				txn := uint64(w*1000 + i + 1)
				k := RowName(1, int64(w*1000+i))
				if err := m.Lock(txn, k, X); err != nil {
					errs.Add(1)
					continue
				}
				m.ReleaseAll(txn)
			}
		}(w)
	}
	wg.Wait()
	if errs.Load() != 0 {
		t.Fatalf("%d errors on disjoint keys", errs.Load())
	}
}

func TestConcurrentSameKeyMutex(t *testing.T) {
	m := New(nil)
	n := RowName(1, 99)
	var inCS atomic.Int64
	var maxSeen atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				txn := uint64(w*1000 + i + 1)
				if err := m.Lock(txn, n, X); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				v := inCS.Add(1)
				if v > maxSeen.Load() {
					maxSeen.Store(v)
				}
				inCS.Add(-1)
				m.ReleaseAll(txn)
			}
		}(w)
	}
	wg.Wait()
	if maxSeen.Load() > 1 {
		t.Fatalf("X lock admitted %d concurrent holders", maxSeen.Load())
	}
}
