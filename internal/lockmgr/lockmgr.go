// Package lockmgr implements the centralized hierarchical lock manager
// used by the conventional (thread-to-transaction) engine: intention and
// absolute modes (IS/IX/S/X), a bucketed lock table with FIFO wait
// queues, lock upgrades, deadlock detection on a global waits-for graph
// with a timeout fallback, and release-all at transaction end.
//
// Every operation enters at least one critical section (a lock-table
// bucket mutex), and hierarchical acquisition multiplies that per record
// access — this is precisely the serialization the DORA design removes,
// and the per-call instrumentation feeds experiment E4.
package lockmgr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dora/internal/metrics"
)

// Mode is a lock mode.
type Mode uint8

const (
	// None is the absence of a lock.
	None Mode = iota
	// IS is intention-shared.
	IS
	// IX is intention-exclusive.
	IX
	// S is shared.
	S
	// X is exclusive.
	X
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case None:
		return "N"
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case X:
		return "X"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// compatible is the classic multi-granularity compatibility matrix.
var compatible = [5][5]bool{
	None: {None: true, IS: true, IX: true, S: true, X: true},
	IS:   {None: true, IS: true, IX: true, S: true, X: false},
	IX:   {None: true, IS: true, IX: true, S: false, X: false},
	S:    {None: true, IS: true, IX: false, S: true, X: false},
	X:    {None: true, IS: false, IX: false, S: false, X: false},
}

// Compatible reports whether a and b can be held simultaneously by
// different transactions.
func Compatible(a, b Mode) bool { return compatible[a][b] }

// supremum[a][b] is the weakest mode covering both a and b (for upgrades).
var supremum = [5][5]Mode{
	None: {None: None, IS: IS, IX: IX, S: S, X: X},
	IS:   {None: IS, IS: IS, IX: IX, S: S, X: X},
	IX:   {None: IX, IS: IX, IX: IX, S: X, X: X},
	S:    {None: S, IS: S, IX: X, S: S, X: X},
	X:    {None: X, IS: X, IX: X, S: X, X: X},
}

// Covers reports whether holding a satisfies a request for b.
func Covers(a, b Mode) bool { return supremum[a][b] == a }

// Level is the granularity of a lock name.
type Level uint8

const (
	// LevelDB is the whole-database lock.
	LevelDB Level = iota
	// LevelTable is a table lock.
	LevelTable
	// LevelRow is a row (key) lock.
	LevelRow
)

// Name identifies a lockable object.
type Name struct {
	Level Level
	Table uint32
	Key   int64
}

// DBName returns the database lock name.
func DBName() Name { return Name{Level: LevelDB} }

// TableName returns the lock name for a table.
func TableName(t uint32) Name { return Name{Level: LevelTable, Table: t} }

// RowName returns the lock name for a row key in a table.
func RowName(t uint32, k int64) Name { return Name{Level: LevelRow, Table: t, Key: k} }

// ErrDeadlock reports that the request was chosen as a deadlock victim.
var ErrDeadlock = errors.New("lockmgr: deadlock victim")

// ErrTimeout reports that a lock wait exceeded the manager's timeout.
var ErrTimeout = errors.New("lockmgr: lock wait timeout")

const numBuckets = 256

type request struct {
	txn     uint64
	mode    Mode
	granted bool
	// convert is non-None when this is an upgrade of an already-granted
	// request; the waiter stays at the head of the queue.
	convert Mode
	ready   chan struct{}
	err     error
}

type lockHead struct {
	queue []*request // granted requests first, then FIFO waiters
}

type bucket struct {
	mu    sync.Mutex
	locks map[Name]*lockHead
}

// Manager is the centralized lock manager.
type Manager struct {
	buckets [numBuckets]bucket

	// held tracks, per transaction, every name it holds (for ReleaseAll).
	heldMu sync.Mutex
	held   map[uint64]map[Name]Mode

	// waits-for graph for deadlock detection.
	wfMu sync.Mutex
	wf   map[uint64]map[uint64]struct{}

	cs *metrics.CriticalSectionStats

	// Timeout bounds lock waits (fallback when the waits-for check at
	// block time missed a cycle formed later).
	Timeout time.Duration

	// Requests, Waits and Deadlocks count lock operations.
	Requests  metrics.Counter
	Waits     metrics.Counter
	Deadlocks metrics.Counter
	Upgrades  metrics.Counter
}

// New returns a lock manager. cs may be nil.
func New(cs *metrics.CriticalSectionStats) *Manager {
	m := &Manager{
		held:    make(map[uint64]map[Name]Mode),
		wf:      make(map[uint64]map[uint64]struct{}),
		cs:      cs,
		Timeout: 2 * time.Second,
	}
	for i := range m.buckets {
		m.buckets[i].locks = make(map[Name]*lockHead)
	}
	return m
}

func (m *Manager) bucketFor(n Name) *bucket {
	h := uint64(n.Table)*0x9E3779B97F4A7C15 ^ uint64(n.Key)*0xBF58476D1CE4E5B9 ^ uint64(n.Level)<<56
	h ^= h >> 29
	return &m.buckets[h%numBuckets]
}

func (m *Manager) enterCS(contended bool) {
	if m.cs == nil {
		return
	}
	m.cs.LockMgr.Inc()
	if contended {
		m.cs.Contended.Inc()
	}
}

// Lock acquires name in mode on behalf of txn, blocking while conflicting
// holders exist. Re-requests covered by a held mode return immediately;
// stronger re-requests upgrade. Returns ErrDeadlock or ErrTimeout when
// the wait cannot be satisfied.
func (m *Manager) Lock(txn uint64, name Name, mode Mode) error {
	m.Requests.Inc()

	// Per-txn held map: one more shared structure on the critical path.
	m.heldMu.Lock()
	m.enterCS(false)
	hm := m.held[txn]
	if hm == nil {
		hm = make(map[Name]Mode, 8)
		m.held[txn] = hm
	}
	cur := hm[name]
	m.heldMu.Unlock()
	if Covers(cur, mode) && cur != None {
		return nil
	}
	want := supremum[cur][mode]

	b := m.bucketFor(name)
	contended := !b.mu.TryLock()
	if contended {
		b.mu.Lock()
	}
	m.enterCS(contended)
	lh := b.locks[name]
	if lh == nil {
		lh = &lockHead{}
		b.locks[name] = lh
	}

	var req *request
	if cur != None {
		// Upgrade: find our granted request and convert it.
		m.Upgrades.Inc()
		for _, r := range lh.queue {
			if r.txn == txn && r.granted {
				req = r
				break
			}
		}
		if req == nil {
			// Held map said we hold it but the queue disagrees; treat as
			// fresh request (can happen only through misuse).
			req = &request{txn: txn, mode: want, ready: make(chan struct{})}
			lh.queue = append(lh.queue, req)
		} else if m.upgradeGrantable(lh, req, want) {
			req.mode = want
			b.mu.Unlock()
			m.noteHeld(txn, name, want)
			return nil
		} else {
			req.convert = want
			req.ready = make(chan struct{})
		}
	} else {
		req = &request{txn: txn, mode: want, ready: make(chan struct{})}
		if m.grantable(lh, req) {
			req.granted = true
			lh.queue = append(lh.queue, req)
			b.mu.Unlock()
			m.noteHeld(txn, name, want)
			return nil
		}
		lh.queue = append(lh.queue, req)
	}

	// We must wait. Record waits-for edges and check for a cycle now.
	m.Waits.Inc()
	blockers := m.blockersOf(lh, req)
	b.mu.Unlock()

	if m.addEdgesAndCheck(txn, blockers) {
		// Deadlock: withdraw the request.
		m.Deadlocks.Inc()
		m.withdraw(b, lh, name, req)
		m.clearEdges(txn)
		return ErrDeadlock
	}

	timer := time.NewTimer(m.Timeout)
	defer timer.Stop()
	select {
	case <-req.ready:
		m.clearEdges(txn)
		if req.err != nil {
			return req.err
		}
		m.noteHeld(txn, name, req.mode)
		return nil
	case <-timer.C:
		m.clearEdges(txn)
		// Re-check under the bucket: the grant may have raced the timer.
		b.mu.Lock()
		m.enterCS(false)
		select {
		case <-req.ready:
			b.mu.Unlock()
			if req.err != nil {
				return req.err
			}
			m.noteHeld(txn, name, req.mode)
			return nil
		default:
		}
		m.withdrawLocked(lh, name, req, b)
		b.mu.Unlock()
		m.Deadlocks.Inc()
		return ErrTimeout
	}
}

// noteHeld records that txn now holds name in mode.
func (m *Manager) noteHeld(txn uint64, name Name, mode Mode) {
	m.heldMu.Lock()
	m.enterCS(false)
	hm := m.held[txn]
	if hm == nil {
		hm = make(map[Name]Mode, 8)
		m.held[txn] = hm
	}
	hm[name] = mode
	m.heldMu.Unlock()
}

// grantable reports whether req conflicts with any queue entry *ahead of
// it* (granted or waiting; FIFO fairness forbids overtaking a conflicting
// waiter). Entries behind req never block it: a granted entry behind req
// proved compatibility with the whole queue — req included — when it was
// granted, and compatibility is symmetric. If req is not in the queue yet
// (initial probe) the whole queue is "ahead".
func (m *Manager) grantable(lh *lockHead, req *request) bool {
	for _, r := range lh.queue {
		if r == req {
			return true
		}
		if r.txn == req.txn {
			continue
		}
		mode := r.mode
		if r.granted && r.convert != None {
			mode = r.convert // pending conversions block as their target
		}
		if !Compatible(mode, req.mode) {
			return false
		}
	}
	return true
}

// upgradeGrantable reports whether req (already granted) can convert to
// want immediately: no *other* granted request conflicts with want.
func (m *Manager) upgradeGrantable(lh *lockHead, req *request, want Mode) bool {
	for _, r := range lh.queue {
		if r == req || !r.granted {
			continue
		}
		if !Compatible(r.mode, want) {
			return false
		}
	}
	return true
}

// blockersOf lists transactions req waits on. Bucket mutex must be held.
func (m *Manager) blockersOf(lh *lockHead, req *request) []uint64 {
	want := req.mode
	if req.convert != None {
		want = req.convert
	}
	var out []uint64
	for _, r := range lh.queue {
		if r == req || r.txn == req.txn {
			continue
		}
		if r.granted && !Compatible(r.mode, want) {
			out = append(out, r.txn)
		}
	}
	return out
}

// addEdgesAndCheck installs waiter→blockers edges and reports whether a
// cycle through txn exists.
func (m *Manager) addEdgesAndCheck(txn uint64, blockers []uint64) bool {
	m.wfMu.Lock()
	defer m.wfMu.Unlock()
	m.enterCS(false)
	set := m.wf[txn]
	if set == nil {
		set = make(map[uint64]struct{}, len(blockers))
		m.wf[txn] = set
	}
	for _, b := range blockers {
		set[b] = struct{}{}
	}
	// DFS from txn looking for a path back to txn.
	seen := map[uint64]bool{}
	var dfs func(u uint64) bool
	dfs = func(u uint64) bool {
		for v := range m.wf[u] {
			if v == txn {
				return true
			}
			if !seen[v] {
				seen[v] = true
				if dfs(v) {
					return true
				}
			}
		}
		return false
	}
	return dfs(txn)
}

func (m *Manager) clearEdges(txn uint64) {
	m.wfMu.Lock()
	m.enterCS(false)
	delete(m.wf, txn)
	m.wfMu.Unlock()
}

// withdraw removes a waiting request after deadlock/timeout.
func (m *Manager) withdraw(b *bucket, lh *lockHead, name Name, req *request) {
	contended := !b.mu.TryLock()
	if contended {
		b.mu.Lock()
	}
	m.enterCS(contended)
	m.withdrawLocked(lh, name, req, b)
	b.mu.Unlock()
}

func (m *Manager) withdrawLocked(lh *lockHead, name Name, req *request, b *bucket) {
	if req.convert != None {
		// Failed upgrade: keep the original grant, drop the conversion.
		req.convert = None
		req.err = nil
	} else {
		for i, r := range lh.queue {
			if r == req {
				lh.queue = append(lh.queue[:i], lh.queue[i+1:]...)
				break
			}
		}
	}
	m.grantWaitersLocked(lh, name, b)
}

// Release drops txn's hold on name and wakes newly grantable waiters.
func (m *Manager) Release(txn uint64, name Name) {
	b := m.bucketFor(name)
	contended := !b.mu.TryLock()
	if contended {
		b.mu.Lock()
	}
	m.enterCS(contended)
	lh := b.locks[name]
	if lh != nil {
		for i, r := range lh.queue {
			if r.txn == txn && r.granted {
				lh.queue = append(lh.queue[:i], lh.queue[i+1:]...)
				break
			}
		}
		m.grantWaitersLocked(lh, name, b)
		if len(lh.queue) == 0 {
			delete(b.locks, name)
		}
	}
	b.mu.Unlock()

	m.heldMu.Lock()
	m.enterCS(false)
	if hm := m.held[txn]; hm != nil {
		delete(hm, name)
	}
	m.heldMu.Unlock()
}

// grantWaitersLocked scans the queue front-to-back waking every request
// that is now grantable. Bucket mutex must be held.
func (m *Manager) grantWaitersLocked(lh *lockHead, name Name, b *bucket) {
	if lh == nil {
		return
	}
	// First serve pending conversions (they have priority: they already
	// hold the lock and block everyone behind them).
	for _, r := range lh.queue {
		if r.granted && r.convert != None && m.upgradeGrantable(lh, r, r.convert) {
			r.mode = r.convert
			r.convert = None
			close(r.ready)
		}
	}
	for _, r := range lh.queue {
		if r.granted {
			continue
		}
		if m.grantable(lh, r) {
			r.granted = true
			close(r.ready)
		} else {
			break // FIFO: stop at the first ungrantable waiter
		}
	}
}

// ReleaseAll drops every lock txn holds (transaction end under strict
// two-phase locking).
func (m *Manager) ReleaseAll(txn uint64) {
	m.heldMu.Lock()
	m.enterCS(false)
	hm := m.held[txn]
	delete(m.held, txn)
	m.heldMu.Unlock()
	if hm == nil {
		return
	}
	// Release rows before tables before the DB lock, mirroring the
	// hierarchical acquisition order in reverse.
	for lvl := LevelRow; ; lvl-- {
		for name := range hm {
			if name.Level != lvl {
				continue
			}
			b := m.bucketFor(name)
			contended := !b.mu.TryLock()
			if contended {
				b.mu.Lock()
			}
			m.enterCS(contended)
			lh := b.locks[name]
			if lh != nil {
				for i, r := range lh.queue {
					if r.txn == txn && r.granted {
						lh.queue = append(lh.queue[:i], lh.queue[i+1:]...)
						break
					}
				}
				m.grantWaitersLocked(lh, name, b)
				if len(lh.queue) == 0 {
					delete(b.locks, name)
				}
			}
			b.mu.Unlock()
		}
		if lvl == LevelDB {
			break
		}
	}
	m.clearEdges(txn)
}

// HeldModes returns a copy of the modes txn currently holds (testing).
func (m *Manager) HeldModes(txn uint64) map[Name]Mode {
	m.heldMu.Lock()
	defer m.heldMu.Unlock()
	out := make(map[Name]Mode, len(m.held[txn]))
	for k, v := range m.held[txn] {
		out[k] = v
	}
	return out
}
