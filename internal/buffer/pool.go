package buffer

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dora/internal/latch"
	"dora/internal/metrics"
	"dora/internal/page"
)

// LogForcer is the slice of the log manager the buffer pool needs to
// enforce write-ahead logging: before a dirty page is written back, the
// log must be durable up to the page's LSN.
type LogForcer interface {
	// Force blocks until all log records with LSN <= lsn are durable.
	Force(lsn uint64) error
}

// ErrNoFrames reports that every candidate frame is pinned and none can
// be evicted.
var ErrNoFrames = errors.New("buffer: all frames pinned")

// Frame is a buffer-pool slot holding one page. Callers access Page only
// between Fetch/NewPage and Unpin, under the frame Latch (shared for
// reads, exclusive for updates).
type Frame struct {
	// Latch protects Page content.
	Latch latch.Latch
	// Page is the cached page image.
	Page page.Page

	id    page.ID
	idx   int // index within the owning shard
	pins  atomic.Int32
	dirty atomic.Bool
	// pool points back at the owning pool for dirty-transition
	// accounting (the Swap in setDirty/clearDirty makes each
	// clean<->dirty transition count exactly once).
	pool  *Pool
	ref   atomic.Bool
	valid bool
	// loading is set while a Fetch miss reads the page image from disk.
	// Latched readers wait on the frame latch the miss holds; LATCH-FREE
	// accessors (owner-thread reads AND writes of stamped heap pages)
	// must check this flag and fall back to the latched path while it is
	// set, or they could observe (or scribble over) a half-read image.
	loading atomic.Bool
	// seq is the frame's write sequence: every heap record mutation bumps
	// it immediately BEFORE touching page bytes (storage bumps it on the
	// latched paths too, so the counter is protocol-independent). The
	// copy-on-write cleaning protocol uses it for conflict detection in
	// place of the frame latch: a snapshot copy taken on the owner's
	// thread records the sequence, and after the copy hardens the dirty
	// bit is cleared only if the sequence is unchanged (finishClean's
	// double-check makes the clear safe against a concurrent bump).
	seq atomic.Uint64
	// hardenMu serializes write-backs of this frame's page, and hardened
	// (guarded by it) records the write seq of the newest image on disk:
	// with several cleaners racing (the engine's own daemon, checkpoint
	// FlushAll, extra embedder cleaners), a STALE snapshot must never
	// overwrite a newer hardened image — seq is monotone per frame, so
	// the comparison is decisive.
	hardenMu sync.Mutex
	hardened uint64
}

// ID returns the id of the page currently cached in the frame.
func (f *Frame) ID() page.ID { return f.id }

// MarkDirty records that the caller modified the page. Call while holding
// the frame latch exclusively.
func (f *Frame) MarkDirty() { f.setDirty() }

func (f *Frame) setDirty() {
	p := f.pool
	if f.dirty.Swap(true) || p == nil {
		return
	}
	p.dirtyEst.Add(1)
	// Tell the cleaner where the dirty page is. Callers hold the frame
	// in use (latch or owner thread), so f.id is stable here; the
	// consumer re-validates through the shard table anyway. A full
	// queue drops the hint and flags one fallback scan instead.
	select {
	case p.dirtyq <- f.id:
	default:
		p.dirtyScan.Store(true)
	}
}

func (f *Frame) clearDirty() {
	if f.dirty.Swap(false) && f.pool != nil {
		f.pool.dirtyEst.Add(-1)
	}
}

// Loading reports whether the frame's page image is still being read
// from disk. The atomic store that clears it is ordered after the disk
// read completes, so a reader observing false sees the full image.
func (f *Frame) Loading() bool { return f.loading.Load() }

// BumpWriteSeq advances the frame's write sequence. Heap mutators call it
// immediately before modifying page bytes (on every path, latched or
// latch-free); the bump-BEFORE-mutate order is what makes finishClean's
// conditional dirty-clear sound — see that function.
func (f *Frame) BumpWriteSeq() { f.seq.Add(1) }

// WriteSeq returns the current write sequence (read at snapshot-copy
// time, on the owning worker's thread, so no bump can be mid-flight).
func (f *Frame) WriteSeq() uint64 { return f.seq.Load() }

// shard is one latch-striped slice of the pool: its own mapping table,
// clock hand and frame set. A page id always maps to the same shard, so
// two workers touching different shards never contend on a pool mutex.
type shard struct {
	mu     sync.Mutex
	table  map[page.ID]int // page id -> index into frames
	frames []*Frame
	hand   int
}

// PageSnapshot is a consistent copy of a stamped page, produced ON the
// owning worker's thread (the only mutator of the live frame). Frame is
// pinned by the producer; hardenSnapshot unpins it after the copy is on
// disk. Seq is the frame write sequence at copy time.
type PageSnapshot struct {
	Frame *Frame
	Img   *page.Page
	Seq   uint64
}

// Snapshotter ships a "snapshot page" request for a stamped dirty page to
// the worker owning its stamp and returns the copy the owner took at a
// quiescent point of its own thread. ok=false means the page is no longer
// stamped (or the owner retired mid-ship); the caller re-resolves.
type Snapshotter func(id page.ID) (PageSnapshot, bool)

// SnapshotterAsync is the pipelined form: it ships the snapshot request
// and returns immediately; done fires exactly once — possibly on the
// owning worker's thread — with the copy (or ok=false when the page is no
// longer stamped or the owner retired mid-ship, in which case the caller
// re-resolves). Checkpoints use it to keep MANY ships in flight at once
// instead of serializing on one owner round-trip per stamped page; the
// receiver must never block in done (hardening happens on the caller's
// side, off the owner's thread).
type SnapshotterAsync func(id page.ID, done func(PageSnapshot, bool))

// Pool is the buffer pool. The frame table and clock state are sharded by
// page id; hot counters are shared (they are padded atomics).
type Pool struct {
	disk Disk
	// log is swappable at runtime (atomic): a promoted replica adopts an
	// appendable log manager in place of its read-only delivered-stream
	// one, while eviction write-backs keep forcing concurrently.
	log atomic.Pointer[LogForcer]
	// frames is the flat registry of every frame — used only for
	// capacity (NumFrames) and pre-traffic wiring (SetStats). All
	// steady-state access goes through the shards, which hold the same
	// pointers under their own mutexes; never iterate frames for page
	// state without the owning shard's lock.
	frames []*Frame
	shards []*shard
	cs     *metrics.CriticalSectionStats

	// stamped is the pool's mirror of which pages currently carry an
	// owner stamp (the storage layer marks/unmarks it in lock-step with
	// its own stamp registry): one lock-free load per eviction candidate,
	// no catalog walk under the shard mutex. snapshotter ships copy
	// requests to owning workers (wired by the DORA engine; atomic so
	// daemons racing engine construction read consistently). With stamps
	// but no snapshotter (direct owned sessions in tests), write-back
	// falls back to the latched path — safe only because such rigs
	// quiesce owner mutators before flushing.
	stamped          sync.Map // page.ID -> struct{}
	snapshotter      atomic.Pointer[Snapshotter]
	snapshotterAsync atomic.Pointer[SnapshotterAsync]
	// cleanq carries page ids the eviction path found dirty-and-stamped:
	// it cannot clean them itself (that needs the owner's thread), so it
	// nudges the cleaner daemon and moves on. Best effort: a full queue
	// drops the hint (the cleaner's sweep finds the page anyway).
	cleanq chan page.ID
	// cleanCursor rotates CleanSome's shard start so a batch cap cannot
	// starve high-index shards behind persistently dirty low ones.
	cleanCursor atomic.Uint32
	// dirtyEst estimates the pool's dirty-frame count (exact transition
	// accounting; momentarily low while a clear races a re-dirty). It
	// bounds CleanSome's scan pass — without it the paced daemon
	// would lock and scan EVERY shard each tick whenever the pool holds
	// fewer dirty frames than its batch, i.e. precisely when it is
	// keeping up.
	dirtyEst atomic.Int64
	// dirtyq carries page ids on their clean->dirty transition, so the
	// paced cleaner drains KNOWN dirty locations instead of scanning
	// all shards to find a few scattered dirty frames. Entries are
	// hints, re-validated through the shard table before cleaning; an
	// overflow drops the hint and sets dirtyScan, making the next
	// CleanSome fall back to one bounded scan.
	dirtyq    chan page.ID
	dirtyScan atomic.Bool

	// Hits and Misses count page lookups served from memory vs disk.
	Hits   metrics.Counter
	Misses metrics.Counter
	// Evictions counts evicted frames; DirtyWrites counts write-backs.
	Evictions   metrics.Counter
	DirtyWrites metrics.Counter
	// SnapshotShips counts copy-on-write snapshot requests that ran on an
	// owning worker's thread; SnapshotCleans is the subset whose hardened
	// copy also retired the frame's dirty bit (no mutation raced the
	// write-back). StampedEvictions counts stamped frames evicted because
	// no unstamped candidate was left (forced: stamped pages are a
	// worker's hot set and are skipped while alternatives exist).
	SnapshotShips    metrics.Counter
	SnapshotCleans   metrics.Counter
	StampedEvictions metrics.Counter
}

// shardCountFor sizes the shard fan-out: power-of-two up to 16, keeping
// at least 16 frames per shard so a skewed workload cannot starve one
// shard while others sit empty. Tiny pools (tests) collapse to a single
// shard and behave exactly like the unsharded original.
func shardCountFor(frames int) int {
	c := 1
	for c < 16 && frames/(c*2) >= 16 {
		c *= 2
	}
	return c
}

// NewPool creates a pool with n frames over disk. log may be nil when no
// WAL is attached (tests, read-only tools).
func NewPool(n int, disk Disk, log LogForcer) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{
		disk:   disk,
		frames: make([]*Frame, n),
		cleanq: make(chan page.ID, 256),
		dirtyq: make(chan page.ID, n),
	}
	p.SetLogForcer(log)
	nsh := shardCountFor(n)
	p.shards = make([]*shard, nsh)
	for i := range p.shards {
		p.shards[i] = &shard{table: make(map[page.ID]int, n/nsh+1)}
	}
	for i := range p.frames {
		sh := p.shards[i%nsh]
		f := &Frame{idx: len(sh.frames), pool: p}
		p.frames[i] = f
		sh.frames = append(sh.frames, f)
	}
	return p
}

// SetLogForcer swaps the write-ahead rule's log handle. nil detaches it
// (no WAL). Safe against concurrent write-backs: each write-back reads
// the handle once.
func (p *Pool) SetLogForcer(log LogForcer) {
	if log == nil {
		p.log.Store(nil)
		return
	}
	p.log.Store(&log)
}

// logForcer returns the current log handle, or nil when none is attached.
func (p *Pool) logForcer() LogForcer {
	if lp := p.log.Load(); lp != nil {
		return *lp
	}
	return nil
}

// SetStats wires contention accounting into every frame latch.
func (p *Pool) SetStats(cs *metrics.CriticalSectionStats) {
	p.cs = cs
	for _, f := range p.frames {
		f.Latch.Stats = cs
	}
}

// Stats returns the critical-section accounting wired by SetStats (nil
// when none): subsystems above the pool use it for sub-classified
// counters such as heap-read frame latches.
func (p *Pool) Stats() *metrics.CriticalSectionStats { return p.cs }

// MarkStamped records that a page carries an owner stamp. The storage
// layer calls it in lock-step with its own stamp registry (publish the
// stamp, then mark, both before the stamp's content verify takes the
// frame latch — writeBackLatched's decisive re-check depends on that
// order). Stamped pages are the ones whose live frame only the owning
// worker's thread may touch: the eviction policy avoids them and
// write-back routes through the copy-on-write snapshot protocol instead
// of the frame latch.
func (p *Pool) MarkStamped(id page.ID) { p.stamped.Store(id, struct{}{}) }

// UnmarkStamped records that a page's owner stamp was dropped.
func (p *Pool) UnmarkStamped(id page.ID) { p.stamped.Delete(id) }

// SetSnapshotter wires the owner-coordinated snapshot ship (the DORA
// engine: it resolves the stamp to a partition worker and delivers the
// copy request through that worker's inbox).
func (p *Pool) SetSnapshotter(fn Snapshotter) { p.snapshotter.Store(&fn) }

// SetSnapshotterAsync wires the pipelined form of the snapshot ship;
// FlushAll uses it to overlap every stamped page's owner round-trip.
func (p *Pool) SetSnapshotterAsync(fn SnapshotterAsync) { p.snapshotterAsync.Store(&fn) }

func (p *Pool) isStamped(id page.ID) bool {
	_, ok := p.stamped.Load(id)
	return ok
}

// CleanRequests exposes the eviction path's dirty-stamped hints; the
// cleaner daemon drains it between sweeps.
func (p *Pool) CleanRequests() <-chan page.ID { return p.cleanq }

// NumFrames returns the pool capacity in pages.
func (p *Pool) NumFrames() int { return len(p.frames) }

// NumShards returns the latch-stripe fan-out (statistics).
func (p *Pool) NumShards() int { return len(p.shards) }

func (p *Pool) shardOf(id page.ID) *shard {
	return p.shards[int(uint64(id))%len(p.shards)]
}

// Fetch pins the frame holding page id, reading it from disk on a miss.
// The caller must Unpin it, and must latch Frame.Latch around access.
func (p *Pool) Fetch(id page.ID) (*Frame, error) {
	sh := p.shardOf(id)
	sh.mu.Lock()
	if idx, ok := sh.table[id]; ok {
		f := sh.frames[idx]
		f.pins.Add(1)
		f.ref.Store(true)
		sh.mu.Unlock()
		p.Hits.Inc()
		return f, nil
	}
	f, err := p.victimLocked(sh)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	// Install mapping before releasing the shard mutex so a concurrent
	// Fetch of the same id waits on the frame latch rather than
	// double-reading.
	f.id = id
	f.valid = true
	f.pins.Store(1)
	f.ref.Store(true)
	sh.table[id] = f.idx
	f.Latch.Lock()
	f.loading.Store(true)
	sh.mu.Unlock()
	p.Misses.Inc()
	err = p.disk.ReadPage(id, &f.Page)
	f.loading.Store(false)
	f.Latch.Unlock()
	if err != nil {
		sh.mu.Lock()
		delete(sh.table, id)
		f.valid = false
		f.pins.Add(-1)
		sh.mu.Unlock()
		return nil, err
	}
	return f, nil
}

// NewPage allocates a fresh page on disk and returns it pinned and
// initialized.
func (p *Pool) NewPage() (*Frame, error) {
	id, err := p.disk.Allocate()
	if err != nil {
		return nil, err
	}
	sh := p.shardOf(id)
	sh.mu.Lock()
	f, err := p.victimLocked(sh)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	f.id = id
	f.valid = true
	f.pins.Store(1)
	f.ref.Store(true)
	sh.table[id] = f.idx
	f.Latch.Lock()
	sh.mu.Unlock()
	f.Page.Init(id)
	f.setDirty()
	f.Latch.Unlock()
	return f, nil
}

// Unpin releases one pin. If dirty, the page is marked for write-back.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	if dirty {
		f.setDirty()
	}
	if n := f.pins.Add(-1); n < 0 {
		panic(fmt.Sprintf("buffer: negative pin count on page %d", f.id))
	}
}

// victimLocked finds an unpinned frame in the shard (clock policy),
// flushing it if dirty. Called with sh.mu held; may briefly release it
// for I/O.
//
// Owner-stamped pages are a partition worker's hot set and only that
// worker's thread may touch their bytes, so the policy treats them
// specially: pass 0 skips them entirely; pass 1 (no unstamped candidate
// left) may evict a CLEAN stamped frame without byte access (counted in
// StampedEvictions — the disk already holds the image, the owner's next
// access re-reads it), while a DIRTY stamped frame is never evicted here
// — cleaning it needs the owner's thread, so the eviction path posts a
// hint for the cleaner daemon and keeps looking.
func (p *Pool) victimLocked(sh *shard) (*Frame, error) {
	for pass := 0; pass < 2; pass++ {
		for sweep := 0; sweep < 2*len(sh.frames); sweep++ {
			f := sh.frames[sh.hand]
			sh.hand = (sh.hand + 1) % len(sh.frames)
			if f.pins.Load() != 0 {
				continue
			}
			stamped := f.valid && p.isStamped(f.id)
			if stamped && pass == 0 {
				continue
			}
			if f.ref.Swap(false) && f.valid {
				continue
			}
			if !f.valid {
				return f, nil
			}
			if stamped {
				if f.dirty.Load() {
					select {
					case p.cleanq <- f.id:
					default:
					}
					continue
				}
				p.StampedEvictions.Inc()
				p.Evictions.Inc()
				delete(sh.table, f.id)
				f.valid = false
				return f, nil
			}
			// Evict. Pin it — but KEEP the mapping installed while the
			// dirty image flushes, so a concurrent Fetch HITS this frame
			// (pinning it, which cancels the eviction below) instead of
			// re-reading a possibly-stale image from disk under our
			// write-back.
			f.pins.Store(1)
			if f.dirty.Load() {
				sh.mu.Unlock()
				// Latched write-back only: eviction may run on a partition
				// worker's own thread (a Fetch miss mid-action), so it must
				// never park on a snapshot ship to another worker. If the
				// page was owner-stamped while we raced here, leave it for
				// the cleaner daemon and keep sweeping.
				err := p.writeBackLatched(f)
				sh.mu.Lock()
				if err != nil {
					if f.pins.Add(-1) != 0 {
						// A concurrent Fetch adopted the frame: it is live
						// again regardless of our flush outcome.
						continue
					}
					if err == errBecameStamped {
						select {
						case p.cleanq <- f.id:
						default:
						}
						continue
					}
					return nil, err
				}
				p.DirtyWrites.Inc()
				if f.pins.Add(-1) != 0 {
					continue // adopted by a concurrent Fetch: not a victim
				}
				// An adopter may have come AND gone during the flush
				// (fetch, mutate under the latch, unpin) — pins are back
				// to zero but its update lives only in this frame. Fetch
				// sets the ref bit and mutation re-dirties; either means
				// the frame is live again, not a victim.
				if f.dirty.Load() || f.ref.Load() {
					continue
				}
			} else {
				f.pins.Store(0)
			}
			p.Evictions.Inc()
			delete(sh.table, f.id)
			f.valid = false
			return f, nil
		}
	}
	return nil, ErrNoFrames
}

// errBecameStamped is an internal sentinel: the latched write-back found
// the page stamped under its latch and backed off to the snapshot path.
var errBecameStamped = errors.New("buffer: page became stamped during write-back")

// writeBack makes the frame's current mutations durable. Unstamped pages
// use the classic latched copy. Stamped pages must NOT be latched — their
// owner's mutations bypass the frame latch — so their image is obtained
// through the owner-coordinated copy-on-write protocol: a snapshot
// request ships to the owning worker, the owner copies the page at a
// quiescent point of its own thread, and the copy hardens here while the
// owner keeps mutating the live frame. The loop re-resolves when a stamp
// appears, moves, or disappears mid-flight (TryStamp racing an eviction,
// split/evacuate reassigning ownership, engine shutdown releasing
// stamps).
func (p *Pool) writeBack(f *Frame) error {
	for {
		if p.isStamped(f.id) {
			if snap := p.snapshotter.Load(); snap != nil {
				ps, ok := (*snap)(f.id)
				if ok {
					p.SnapshotShips.Inc()
					return p.hardenSnapshot(ps)
				}
				// Stamp moved or the owner is mid-retirement: re-resolve.
				// During engine shutdown the stamp disappears right after
				// the workers drain, bounding this loop.
				runtime.Gosched()
				continue
			}
			// Stamps without a ship hook: direct owned sessions (tests,
			// recovery rigs). Their owner mutators are quiesced before
			// anything flushes, so the latched path below is safe.
		}
		err := p.writeBackLatched(f)
		if err == errBecameStamped {
			runtime.Gosched()
			continue
		}
		return err
	}
}

// writeBackLatched forces the WAL to the page LSN and writes the page
// image under the shared frame latch — sound for pages whose mutators
// all hold the exclusive latch (every unstamped page).
func (p *Pool) writeBackLatched(f *Frame) error {
	f.Latch.RLock()
	defer f.Latch.RUnlock()
	if p.isStamped(f.id) && p.snapshotter.Load() != nil {
		// The page was owner-stamped between the caller's check and our
		// latch acquisition: its mutations no longer serialize on this
		// latch, so a latched copy could tear. Back off to the snapshot
		// path. Seeing "unstamped" here is decisive the other way:
		// TryStamp's content verify takes the latch exclusively, so a
		// stamp published before our RLock cannot have latch-free
		// mutations in flight while we hold it.
		return errBecameStamped
	}
	f.hardenMu.Lock()
	defer f.hardenMu.Unlock()
	// Under the shared latch no mutator is active, so the live image is
	// at least as new as any snapshot copy — never stale, no skip check.
	seqAt := f.seq.Load()
	if log := p.logForcer(); log != nil {
		if err := log.Force(f.Page.LSN()); err != nil {
			return err
		}
	}
	if err := p.disk.WritePage(f.id, &f.Page); err != nil {
		return err
	}
	if seqAt > f.hardened {
		f.hardened = seqAt
	}
	f.clearDirty()
	return nil
}

// hardenSnapshot makes an owner's copy durable — WAL first: the copy's
// image must not reach disk before the log records it reflects (up to
// its page LSN, which covers every commit LSN chained below it) are
// durable — then retires the frame's dirty bit if no mutation raced the
// write-back. The snapshot producer pinned the frame; the pin is
// released here, after the conditional clear, so the frame cannot be
// recycled (and its write seq reused for an unrelated page) in between.
//
// Hardens of one frame serialize on hardenMu, and a snapshot older than
// the newest hardened image is DROPPED: with concurrent cleaners (the
// engine's daemon, checkpoint FlushAll, embedder cleaners) a stale copy
// that lost the race must not overwrite a newer on-disk image — its
// finishClean would see a moved seq and leave dirty untouched, so the
// stale bytes could otherwise sit under a clean bit.
func (p *Pool) hardenSnapshot(s PageSnapshot) error {
	defer p.Unpin(s.Frame, false)
	s.Frame.hardenMu.Lock()
	defer s.Frame.hardenMu.Unlock()
	if s.Seq < s.Frame.hardened {
		return nil // a newer image already hardened; this copy is moot
	}
	if log := p.logForcer(); log != nil {
		if err := log.Force(s.Img.LSN()); err != nil {
			return err
		}
	}
	if err := p.disk.WritePage(s.Frame.id, s.Img); err != nil {
		return err
	}
	s.Frame.hardened = s.Seq
	p.finishClean(s.Frame, s.Seq)
	return nil
}

// finishClean conditionally clears dirty after a snapshot copy hardened.
// Owner mutations bump the write seq BEFORE touching bytes and mark
// dirty after; we clear dirty first and then re-check the seq. A
// mutation concurrent with the clear either bumped before our re-read
// (caught: the clear is undone) or after it — in which case its own
// MarkDirty is also ordered after our clear and the bit survives. Either
// way no mutation is left clean-but-unflushed.
func (p *Pool) finishClean(f *Frame, seqAt uint64) {
	if f.seq.Load() != seqAt {
		return
	}
	f.clearDirty()
	if f.seq.Load() != seqAt {
		f.setDirty()
		return
	}
	p.SnapshotCleans.Inc()
}

// FlushAll writes back every dirty frame (checkpoint support). Stamped
// dirty frames are hardened through the copy-on-write snapshot protocol,
// so a fuzzy checkpoint never latches a frame whose owner mutates
// latch-free. With an async snapshotter wired, the ships PIPELINE: every
// stamped frame's copy request fans out up front, the latched write-backs
// of unstamped frames overlap the owner round-trips, and the copies
// harden from a completion queue as owners reply — a checkpoint pays one
// ship latency overall, not one per stamped page.
func (p *Pool) FlushAll() error {
	var frames []*Frame
	for _, sh := range p.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.valid && f.dirty.Load() {
				f.pins.Add(1)
				frames = append(frames, f)
			}
		}
		sh.mu.Unlock()
	}
	var first error
	record := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	type shipReply struct {
		f  *Frame
		ps PageSnapshot
		ok bool
	}
	var pending int
	var replies chan shipReply
	rest := frames
	if asnap := p.snapshotterAsync.Load(); asnap != nil {
		// Buffered to the fan-out size: an owner's done callback can never
		// block on this checkpoint, however slowly it drains.
		replies = make(chan shipReply, len(frames))
		rest = frames[:0]
		for _, f := range frames {
			if p.isStamped(f.id) {
				f := f
				(*asnap)(f.id, func(ps PageSnapshot, ok bool) {
					replies <- shipReply{f, ps, ok}
				})
				pending++
			} else {
				rest = append(rest, f)
			}
		}
	}
	for _, f := range rest {
		record(p.writeBack(f))
		f.pins.Add(-1)
	}
	for i := 0; i < pending; i++ {
		r := <-replies
		if r.ok {
			p.SnapshotShips.Inc()
			record(p.hardenSnapshot(r.ps))
		} else {
			// Stamp moved or vanished mid-ship: the synchronous path
			// re-resolves (new owner, latched fallback, or no-op).
			record(p.writeBack(r.f))
		}
		r.f.pins.Add(-1)
	}
	return first
}

// CleanSome writes back up to max dirty frames (all of them when max <=
// 0), returning how many it hardened — the cleaner daemon's unit of
// paced work. Unlike FlushAll it tolerates individual failures, moving
// on so one wedged page cannot starve the rest of a sweep; a rotating
// shard cursor keeps capped sweeps fair across shards.
func (p *Pool) CleanSome(max int) (int, error) {
	want := int(p.dirtyEst.Load())
	if want <= 0 && !p.dirtyScan.Load() {
		return 0, nil
	}
	var frames []*Frame
	if max > 0 && !p.dirtyScan.Swap(false) {
		// Fast path: the dirty-transition queue says WHERE the dirty
		// frames are — drain it instead of scanning the shards for a
		// few scattered frames. Each id is a hint: re-resolve and pin
		// through the shard table (the frame may have been recycled or
		// cleaned since).
	drain:
		for len(frames) < max {
			select {
			case pid := <-p.dirtyq:
				sh := p.shardOf(pid)
				sh.mu.Lock()
				if idx, ok := sh.table[pid]; ok {
					if f := sh.frames[idx]; f.valid && f.dirty.Load() {
						f.pins.Add(1)
						frames = append(frames, f)
					}
				}
				sh.mu.Unlock()
			default:
				break drain
			}
		}
	} else {
		// Scan path: a queue overflow dropped hints (or the caller
		// asked for everything) — sweep and collect EVERY known-dirty
		// frame, ignoring the batch cap: a frame whose hint was
		// dropped is otherwise invisible until eviction, so the rare
		// recovery pass must cover them all (the post-write re-enqueue
		// below restores the queue invariant for frames that stay
		// dirty). The dirty estimate still stops a mostly-clean sweep
		// early.
		max = want
		start := int(p.cleanCursor.Add(1)) % len(p.shards)
		for i := 0; i < len(p.shards) && len(frames) < max; i++ {
			sh := p.shards[(start+i)%len(p.shards)]
			sh.mu.Lock()
			for _, f := range sh.frames {
				if f.valid && f.dirty.Load() && len(frames) < max {
					f.pins.Add(1)
					frames = append(frames, f)
				}
			}
			sh.mu.Unlock()
		}
	}
	cleaned := 0
	var first error
	for _, f := range frames {
		if err := p.writeBack(f); err != nil {
			if first == nil {
				first = err
			}
		} else {
			cleaned++
		}
		if f.dirty.Load() {
			// Still dirty — a mutation raced the harden, or the write
			// failed. Keep the page visible to the next tick.
			select {
			case p.dirtyq <- f.id:
			default:
				p.dirtyScan.Store(true)
			}
		}
		f.pins.Add(-1)
	}
	return cleaned, first
}

// DirtyEstimate returns the pool's running dirty-frame estimate (the
// bound CleanSome sweeps under; monitoring).
func (p *Pool) DirtyEstimate() int64 { return p.dirtyEst.Load() }

// HitRate returns hits / (hits+misses), or 1 when no lookups happened.
func (p *Pool) HitRate() float64 {
	h, m := float64(p.Hits.Load()), float64(p.Misses.Load())
	if h+m == 0 {
		return 1
	}
	return h / (h + m)
}
