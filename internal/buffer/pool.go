package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dora/internal/latch"
	"dora/internal/metrics"
	"dora/internal/page"
)

// LogForcer is the slice of the log manager the buffer pool needs to
// enforce write-ahead logging: before a dirty page is written back, the
// log must be durable up to the page's LSN.
type LogForcer interface {
	// Force blocks until all log records with LSN <= lsn are durable.
	Force(lsn uint64) error
}

// ErrNoFrames reports that every frame is pinned and none can be evicted.
var ErrNoFrames = errors.New("buffer: all frames pinned")

// Frame is a buffer-pool slot holding one page. Callers access Page only
// between Fetch/NewPage and Unpin, under the frame Latch (shared for
// reads, exclusive for updates).
type Frame struct {
	// Latch protects Page content.
	Latch latch.Latch
	// Page is the cached page image.
	Page page.Page

	id    page.ID
	idx   int
	pins  atomic.Int32
	dirty atomic.Bool
	ref   atomic.Bool
	valid bool
}

// ID returns the id of the page currently cached in the frame.
func (f *Frame) ID() page.ID { return f.id }

// MarkDirty records that the caller modified the page. Call while holding
// the frame latch exclusively.
func (f *Frame) MarkDirty() { f.dirty.Store(true) }

// Pool is the buffer pool.
type Pool struct {
	mu     sync.Mutex
	disk   Disk
	log    LogForcer
	frames []*Frame
	table  map[page.ID]int
	hand   int

	// Hits and Misses count page lookups served from memory vs disk.
	Hits   metrics.Counter
	Misses metrics.Counter
	// Evictions counts evicted frames; DirtyWrites counts write-backs.
	Evictions   metrics.Counter
	DirtyWrites metrics.Counter
}

// NewPool creates a pool with n frames over disk. log may be nil when no
// WAL is attached (tests, read-only tools).
func NewPool(n int, disk Disk, log LogForcer) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{
		disk:   disk,
		log:    log,
		frames: make([]*Frame, n),
		table:  make(map[page.ID]int, n),
	}
	for i := range p.frames {
		p.frames[i] = &Frame{idx: i}
	}
	return p
}

// SetStats wires contention accounting into every frame latch.
func (p *Pool) SetStats(cs *metrics.CriticalSectionStats) {
	for _, f := range p.frames {
		f.Latch.Stats = cs
	}
}

// NumFrames returns the pool capacity in pages.
func (p *Pool) NumFrames() int { return len(p.frames) }

// Fetch pins the frame holding page id, reading it from disk on a miss.
// The caller must Unpin it, and must latch Frame.Latch around access.
func (p *Pool) Fetch(id page.ID) (*Frame, error) {
	p.mu.Lock()
	if idx, ok := p.table[id]; ok {
		f := p.frames[idx]
		f.pins.Add(1)
		f.ref.Store(true)
		p.mu.Unlock()
		p.Hits.Inc()
		return f, nil
	}
	f, err := p.victimLocked()
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	// Install mapping before releasing mu so a concurrent Fetch of the
	// same id waits on the frame latch rather than double-reading.
	f.id = id
	f.valid = true
	f.pins.Store(1)
	f.ref.Store(true)
	p.table[id] = p.frameIndex(f)
	f.Latch.Lock()
	p.mu.Unlock()
	p.Misses.Inc()
	err = p.disk.ReadPage(id, &f.Page)
	f.Latch.Unlock()
	if err != nil {
		p.mu.Lock()
		delete(p.table, id)
		f.valid = false
		f.pins.Add(-1)
		p.mu.Unlock()
		return nil, err
	}
	return f, nil
}

// NewPage allocates a fresh page on disk and returns it pinned and
// initialized.
func (p *Pool) NewPage() (*Frame, error) {
	id, err := p.disk.Allocate()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	f, err := p.victimLocked()
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	f.id = id
	f.valid = true
	f.pins.Store(1)
	f.ref.Store(true)
	p.table[id] = p.frameIndex(f)
	f.Latch.Lock()
	p.mu.Unlock()
	f.Page.Init(id)
	f.dirty.Store(true)
	f.Latch.Unlock()
	return f, nil
}

// Unpin releases one pin. If dirty, the page is marked for write-back.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	if dirty {
		f.dirty.Store(true)
	}
	if n := f.pins.Add(-1); n < 0 {
		panic(fmt.Sprintf("buffer: negative pin count on page %d", f.id))
	}
}

func (p *Pool) frameIndex(f *Frame) int { return f.idx }

// victimLocked finds an unpinned frame (clock policy), flushing it if
// dirty. Called with p.mu held; may briefly release it for I/O.
func (p *Pool) victimLocked() (*Frame, error) {
	for sweep := 0; sweep < 2*len(p.frames); sweep++ {
		f := p.frames[p.hand]
		p.hand = (p.hand + 1) % len(p.frames)
		if f.pins.Load() != 0 {
			continue
		}
		if f.ref.Swap(false) && f.valid {
			continue
		}
		if !f.valid {
			return f, nil
		}
		// Evict. Pin it so no one else grabs it while we do I/O.
		f.pins.Store(1)
		delete(p.table, f.id)
		if f.dirty.Load() {
			p.mu.Unlock()
			err := p.writeBack(f)
			p.mu.Lock()
			if err != nil {
				// Restore mapping and give up.
				p.table[f.id] = p.frameIndex(f)
				f.pins.Store(0)
				return nil, err
			}
			p.DirtyWrites.Inc()
		}
		p.Evictions.Inc()
		f.valid = false
		f.pins.Store(0)
		return f, nil
	}
	return nil, ErrNoFrames
}

// writeBack forces the WAL to the page LSN and writes the page image.
func (p *Pool) writeBack(f *Frame) error {
	f.Latch.RLock()
	defer f.Latch.RUnlock()
	if p.log != nil {
		if err := p.log.Force(f.Page.LSN()); err != nil {
			return err
		}
	}
	if err := p.disk.WritePage(f.id, &f.Page); err != nil {
		return err
	}
	f.dirty.Store(false)
	return nil
}

// FlushAll writes back every dirty frame (checkpoint support).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	frames := make([]*Frame, 0, len(p.frames))
	for _, f := range p.frames {
		if f.valid && f.dirty.Load() {
			f.pins.Add(1)
			frames = append(frames, f)
		}
	}
	p.mu.Unlock()
	var first error
	for _, f := range frames {
		if err := p.writeBack(f); err != nil && first == nil {
			first = err
		}
		f.pins.Add(-1)
	}
	return first
}

// HitRate returns hits / (hits+misses), or 1 when no lookups happened.
func (p *Pool) HitRate() float64 {
	h, m := float64(p.Hits.Load()), float64(p.Misses.Load())
	if h+m == 0 {
		return 1
	}
	return h / (h + m)
}
