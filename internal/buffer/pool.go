package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dora/internal/latch"
	"dora/internal/metrics"
	"dora/internal/page"
)

// LogForcer is the slice of the log manager the buffer pool needs to
// enforce write-ahead logging: before a dirty page is written back, the
// log must be durable up to the page's LSN.
type LogForcer interface {
	// Force blocks until all log records with LSN <= lsn are durable.
	Force(lsn uint64) error
}

// ErrNoFrames reports that every candidate frame is pinned and none can
// be evicted.
var ErrNoFrames = errors.New("buffer: all frames pinned")

// Frame is a buffer-pool slot holding one page. Callers access Page only
// between Fetch/NewPage and Unpin, under the frame Latch (shared for
// reads, exclusive for updates).
type Frame struct {
	// Latch protects Page content.
	Latch latch.Latch
	// Page is the cached page image.
	Page page.Page

	id    page.ID
	idx   int // index within the owning shard
	pins  atomic.Int32
	dirty atomic.Bool
	ref   atomic.Bool
	valid bool
	// loading is set while a Fetch miss reads the page image from disk.
	// Latched readers wait on the frame latch the miss holds; LATCH-FREE
	// readers (owner-thread reads of stamped heap pages) must check this
	// flag and fall back to the latched path while it is set, or they
	// could observe a half-read image.
	loading atomic.Bool
}

// ID returns the id of the page currently cached in the frame.
func (f *Frame) ID() page.ID { return f.id }

// MarkDirty records that the caller modified the page. Call while holding
// the frame latch exclusively.
func (f *Frame) MarkDirty() { f.dirty.Store(true) }

// Loading reports whether the frame's page image is still being read
// from disk. The atomic store that clears it is ordered after the disk
// read completes, so a reader observing false sees the full image.
func (f *Frame) Loading() bool { return f.loading.Load() }

// shard is one latch-striped slice of the pool: its own mapping table,
// clock hand and frame set. A page id always maps to the same shard, so
// two workers touching different shards never contend on a pool mutex.
type shard struct {
	mu     sync.Mutex
	table  map[page.ID]int // page id -> index into frames
	frames []*Frame
	hand   int
}

// Pool is the buffer pool. The frame table and clock state are sharded by
// page id; hot counters are shared (they are padded atomics).
type Pool struct {
	disk Disk
	log  LogForcer
	// frames is the flat registry of every frame — used only for
	// capacity (NumFrames) and pre-traffic wiring (SetStats). All
	// steady-state access goes through the shards, which hold the same
	// pointers under their own mutexes; never iterate frames for page
	// state without the owning shard's lock.
	frames []*Frame
	shards []*shard
	cs     *metrics.CriticalSectionStats

	// Hits and Misses count page lookups served from memory vs disk.
	Hits   metrics.Counter
	Misses metrics.Counter
	// Evictions counts evicted frames; DirtyWrites counts write-backs.
	Evictions   metrics.Counter
	DirtyWrites metrics.Counter
}

// shardCountFor sizes the shard fan-out: power-of-two up to 16, keeping
// at least 16 frames per shard so a skewed workload cannot starve one
// shard while others sit empty. Tiny pools (tests) collapse to a single
// shard and behave exactly like the unsharded original.
func shardCountFor(frames int) int {
	c := 1
	for c < 16 && frames/(c*2) >= 16 {
		c *= 2
	}
	return c
}

// NewPool creates a pool with n frames over disk. log may be nil when no
// WAL is attached (tests, read-only tools).
func NewPool(n int, disk Disk, log LogForcer) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{
		disk:   disk,
		log:    log,
		frames: make([]*Frame, n),
	}
	nsh := shardCountFor(n)
	p.shards = make([]*shard, nsh)
	for i := range p.shards {
		p.shards[i] = &shard{table: make(map[page.ID]int, n/nsh+1)}
	}
	for i := range p.frames {
		sh := p.shards[i%nsh]
		f := &Frame{idx: len(sh.frames)}
		p.frames[i] = f
		sh.frames = append(sh.frames, f)
	}
	return p
}

// SetStats wires contention accounting into every frame latch.
func (p *Pool) SetStats(cs *metrics.CriticalSectionStats) {
	p.cs = cs
	for _, f := range p.frames {
		f.Latch.Stats = cs
	}
}

// Stats returns the critical-section accounting wired by SetStats (nil
// when none): subsystems above the pool use it for sub-classified
// counters such as heap-read frame latches.
func (p *Pool) Stats() *metrics.CriticalSectionStats { return p.cs }

// NumFrames returns the pool capacity in pages.
func (p *Pool) NumFrames() int { return len(p.frames) }

// NumShards returns the latch-stripe fan-out (statistics).
func (p *Pool) NumShards() int { return len(p.shards) }

func (p *Pool) shardOf(id page.ID) *shard {
	return p.shards[int(uint64(id))%len(p.shards)]
}

// Fetch pins the frame holding page id, reading it from disk on a miss.
// The caller must Unpin it, and must latch Frame.Latch around access.
func (p *Pool) Fetch(id page.ID) (*Frame, error) {
	sh := p.shardOf(id)
	sh.mu.Lock()
	if idx, ok := sh.table[id]; ok {
		f := sh.frames[idx]
		f.pins.Add(1)
		f.ref.Store(true)
		sh.mu.Unlock()
		p.Hits.Inc()
		return f, nil
	}
	f, err := p.victimLocked(sh)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	// Install mapping before releasing the shard mutex so a concurrent
	// Fetch of the same id waits on the frame latch rather than
	// double-reading.
	f.id = id
	f.valid = true
	f.pins.Store(1)
	f.ref.Store(true)
	sh.table[id] = f.idx
	f.Latch.Lock()
	f.loading.Store(true)
	sh.mu.Unlock()
	p.Misses.Inc()
	err = p.disk.ReadPage(id, &f.Page)
	f.loading.Store(false)
	f.Latch.Unlock()
	if err != nil {
		sh.mu.Lock()
		delete(sh.table, id)
		f.valid = false
		f.pins.Add(-1)
		sh.mu.Unlock()
		return nil, err
	}
	return f, nil
}

// NewPage allocates a fresh page on disk and returns it pinned and
// initialized.
func (p *Pool) NewPage() (*Frame, error) {
	id, err := p.disk.Allocate()
	if err != nil {
		return nil, err
	}
	sh := p.shardOf(id)
	sh.mu.Lock()
	f, err := p.victimLocked(sh)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	f.id = id
	f.valid = true
	f.pins.Store(1)
	f.ref.Store(true)
	sh.table[id] = f.idx
	f.Latch.Lock()
	sh.mu.Unlock()
	f.Page.Init(id)
	f.dirty.Store(true)
	f.Latch.Unlock()
	return f, nil
}

// Unpin releases one pin. If dirty, the page is marked for write-back.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	if dirty {
		f.dirty.Store(true)
	}
	if n := f.pins.Add(-1); n < 0 {
		panic(fmt.Sprintf("buffer: negative pin count on page %d", f.id))
	}
}

// victimLocked finds an unpinned frame in the shard (clock policy),
// flushing it if dirty. Called with sh.mu held; may briefly release it
// for I/O.
func (p *Pool) victimLocked(sh *shard) (*Frame, error) {
	for sweep := 0; sweep < 2*len(sh.frames); sweep++ {
		f := sh.frames[sh.hand]
		sh.hand = (sh.hand + 1) % len(sh.frames)
		if f.pins.Load() != 0 {
			continue
		}
		if f.ref.Swap(false) && f.valid {
			continue
		}
		if !f.valid {
			return f, nil
		}
		// Evict. Pin it so no one else grabs it while we do I/O.
		f.pins.Store(1)
		delete(sh.table, f.id)
		if f.dirty.Load() {
			sh.mu.Unlock()
			err := p.writeBack(f)
			sh.mu.Lock()
			if err != nil {
				// Restore the mapping and give up — unless a concurrent
				// Fetch re-read the page into another frame while we had
				// the mutex released: clobbering its mapping would leave
				// two live frames for one page. Our failed-to-flush copy
				// is dropped in that case (the store failure is already
				// surfaced to the caller, and sticky log failures abort
				// everything behind it anyway).
				if _, taken := sh.table[f.id]; !taken {
					sh.table[f.id] = f.idx
				} else {
					f.valid = false
				}
				f.pins.Store(0)
				return nil, err
			}
			p.DirtyWrites.Inc()
		}
		p.Evictions.Inc()
		f.valid = false
		f.pins.Store(0)
		return f, nil
	}
	return nil, ErrNoFrames
}

// writeBack forces the WAL to the page LSN and writes the page image.
func (p *Pool) writeBack(f *Frame) error {
	f.Latch.RLock()
	defer f.Latch.RUnlock()
	if p.log != nil {
		if err := p.log.Force(f.Page.LSN()); err != nil {
			return err
		}
	}
	if err := p.disk.WritePage(f.id, &f.Page); err != nil {
		return err
	}
	f.dirty.Store(false)
	return nil
}

// FlushAll writes back every dirty frame (checkpoint support).
func (p *Pool) FlushAll() error {
	var frames []*Frame
	for _, sh := range p.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.valid && f.dirty.Load() {
				f.pins.Add(1)
				frames = append(frames, f)
			}
		}
		sh.mu.Unlock()
	}
	var first error
	for _, f := range frames {
		if err := p.writeBack(f); err != nil && first == nil {
			first = err
		}
		f.pins.Add(-1)
	}
	return first
}

// HitRate returns hits / (hits+misses), or 1 when no lookups happened.
func (p *Pool) HitRate() float64 {
	h, m := float64(p.Hits.Load()), float64(p.Misses.Load())
	if h+m == 0 {
		return 1
	}
	return h / (h + m)
}
