package buffer

import (
	"errors"
	"testing"
	"time"

	"dora/internal/page"
)

// newStampedPage allocates a page, writes one record, marks it stamped
// in the pool's registry, and unpins it dirty.
func newStampedPage(t *testing.T, p *Pool, payload byte) page.ID {
	t.Helper()
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	f.Latch.Lock()
	f.BumpWriteSeq()
	if _, err := f.Page.Insert([]byte{payload}); err != nil {
		t.Fatal(err)
	}
	f.Latch.Unlock()
	p.MarkStamped(f.ID())
	id := f.ID()
	p.Unpin(f, true)
	return id
}

// ownerSnapshotter mimics the owner thread: it copies the live frame
// directly (the test is single-threaded, so "the owner's thread" is the
// test's own goroutine).
func ownerSnapshotter(p *Pool) Snapshotter {
	return func(id page.ID) (PageSnapshot, bool) {
		f, err := p.Fetch(id)
		if err != nil {
			return PageSnapshot{}, false
		}
		img := new(page.Page)
		*img = f.Page
		return PageSnapshot{Frame: f, Img: img, Seq: f.WriteSeq()}, true
	}
}

// TestEvictionSkipsStampedFrames: while unstamped candidates exist, a
// stamped frame — clean or dirty — is never the victim.
func TestEvictionSkipsStampedFrames(t *testing.T) {
	disk := NewMemDisk()
	p := NewPool(4, disk, nil)

	stampedID := newStampedPage(t, p, 1)
	var unstamped []page.ID
	for i := 0; i < 3; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		unstamped = append(unstamped, f.ID())
		p.Unpin(f, true)
	}
	// Fill pressure: allocating more pages must evict unstamped frames
	// only (the stamped one is a worker's hot set).
	for i := 0; i < 3; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(f, false)
	}
	if p.StampedEvictions.Load() != 0 {
		t.Fatalf("stamped evictions = %d with unstamped candidates available", p.StampedEvictions.Load())
	}
	// The stamped page must still be resident: fetching it is a hit.
	h0 := p.Hits.Load()
	f, err := p.Fetch(stampedID)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, false)
	if p.Hits.Load() != h0+1 {
		t.Fatal("stamped page was evicted while unstamped candidates existed")
	}
	_ = unstamped
}

// TestForcedStampedEviction: when every unpinned frame is stamped, a
// CLEAN stamped frame is evicted (counted), while DIRTY stamped frames
// are left for the cleaner and the eviction posts a clean request.
func TestForcedStampedEviction(t *testing.T) {
	disk := NewMemDisk()
	p := NewPool(2, disk, nil)
	p.SetSnapshotter(ownerSnapshotter(p))

	a := newStampedPage(t, p, 1)
	b := newStampedPage(t, p, 2)
	// Clean both through the snapshot path (the cleaner's job).
	if n, err := p.CleanSome(0); err != nil || n != 2 {
		t.Fatalf("CleanSome = %d, %v; want 2, nil", n, err)
	}
	if p.SnapshotShips.Load() != 2 || p.SnapshotCleans.Load() != 2 {
		t.Fatalf("ships=%d cleans=%d, want 2/2", p.SnapshotShips.Load(), p.SnapshotCleans.Load())
	}
	// Now the pool is all stamped-and-clean: allocation forces a stamped
	// eviction.
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, false)
	if p.StampedEvictions.Load() == 0 {
		t.Fatal("expected a forced stamped eviction")
	}
	// Evicted images must be intact on disk.
	for i, id := range []page.ID{a, b} {
		var img page.Page
		if err := disk.ReadPage(id, &img); err != nil {
			t.Fatal(err)
		}
		rec, err := img.Get(0)
		if err != nil || rec[0] != byte(i+1) {
			t.Fatalf("page %d on disk: %v %v", id, rec, err)
		}
	}
}

// TestDirtyStampedNotEvictable: a pool whose unpinned frames are all
// stamped AND dirty cannot evict — ErrNoFrames — and the clean-request
// channel carries the hint.
func TestDirtyStampedNotEvictable(t *testing.T) {
	p := NewPool(2, NewMemDisk(), nil)
	// No snapshotter: eviction must not latch these frames either way.
	_ = newStampedPage(t, p, 1)
	newStampedPage(t, p, 2)

	_, err := p.NewPage()
	if !errors.Is(err, ErrNoFrames) {
		t.Fatalf("NewPage err = %v, want ErrNoFrames", err)
	}
	select {
	case <-p.CleanRequests():
	default:
		t.Fatal("no clean request posted for a skipped dirty stamped frame")
	}
}

// TestFinishCleanConflict: a mutation between the snapshot copy and the
// hardened write-back must keep the frame dirty (the seq double-check).
func TestFinishCleanConflict(t *testing.T) {
	disk := NewMemDisk()
	p := NewPool(2, disk, nil)
	id := newStampedPage(t, p, 7)

	// Owner-side copy.
	f, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	img := new(page.Page)
	*img = f.Page
	seqAt := f.WriteSeq()

	// Owner mutates AFTER the copy (seq bump before bytes, like the heap).
	f.BumpWriteSeq()
	if _, err := f.Page.Insert([]byte{8}); err != nil {
		t.Fatal(err)
	}
	f.MarkDirty()

	// Harden the stale copy: dirty must survive.
	if err := p.hardenSnapshot(PageSnapshot{Frame: f, Img: img, Seq: seqAt}); err != nil {
		t.Fatal(err)
	}
	if !f.dirty.Load() {
		t.Fatal("dirty bit cleared although a mutation raced the snapshot")
	}
	if p.SnapshotCleans.Load() != 0 {
		t.Fatalf("snapshot cleans = %d, want 0", p.SnapshotCleans.Load())
	}
	// A second, up-to-date snapshot retires the dirty bit.
	g, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	img2 := new(page.Page)
	*img2 = g.Page
	if err := p.hardenSnapshot(PageSnapshot{Frame: g, Img: img2, Seq: g.WriteSeq()}); err != nil {
		t.Fatal(err)
	}
	if g.dirty.Load() {
		t.Fatal("dirty bit survived an up-to-date snapshot")
	}
}

// TestCleanerSweepsStampedPages: the paced daemon hardens stamped dirty
// frames through the snapshot ship without ever latching them.
func TestCleanerSweepsStampedPages(t *testing.T) {
	disk := NewMemDisk()
	p := NewPool(8, disk, nil)
	p.SetSnapshotter(ownerSnapshotter(p))

	var ids []page.ID
	for i := 0; i < 4; i++ {
		ids = append(ids, newStampedPage(t, p, byte(i+1)))
	}
	cl := NewCleaner(p, CleanerConfig{Interval: time.Millisecond, Batch: 2})
	cl.Start()
	defer cl.Close()
	deadline := time.Now().Add(2 * time.Second)
	for cl.CleanedPages.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := cl.CleanedPages.Load(); got < 4 {
		t.Fatalf("cleaner hardened %d pages, want >= 4", got)
	}
	for i, id := range ids {
		var img page.Page
		if err := disk.ReadPage(id, &img); err != nil {
			t.Fatal(err)
		}
		rec, err := img.Get(0)
		if err != nil || rec[0] != byte(i+1) {
			t.Fatalf("page %d image on disk: %v %v", id, rec, err)
		}
	}
}
