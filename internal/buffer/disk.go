// Package buffer implements the buffer pool: a fixed set of in-memory
// frames caching disk pages, with pin/unpin reference counting, a clock
// eviction policy, dirty tracking, and the WAL-before-data rule (a dirty
// page is never written back before its page LSN is durable).
package buffer

import (
	"fmt"
	"os"
	"sync"

	"dora/internal/page"
)

// Disk is the backing store the buffer pool reads and writes pages from.
// Implementations must be safe for concurrent use.
type Disk interface {
	// ReadPage fills dst with the content of page id.
	ReadPage(id page.ID, dst *page.Page) error
	// WritePage persists src as page id.
	WritePage(id page.ID, src *page.Page) error
	// Allocate reserves a new page id at the end of the store.
	Allocate() (page.ID, error)
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Close releases resources.
	Close() error
}

// MemDisk is an in-memory Disk, used by tests and by benchmark runs that
// want to exclude I/O from measurements.
type MemDisk struct {
	mu    sync.RWMutex
	pages []*page.Page
}

// NewMemDisk returns an empty in-memory disk.
func NewMemDisk() *MemDisk { return &MemDisk{} }

// ReadPage implements Disk.
func (d *MemDisk) ReadPage(id page.ID, dst *page.Page) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("memdisk: read of unallocated page %d", id)
	}
	dst.Data = d.pages[id].Data
	return nil
}

// WritePage implements Disk.
func (d *MemDisk) WritePage(id page.ID, src *page.Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("memdisk: write of unallocated page %d", id)
	}
	d.pages[id].Data = src.Data
	return nil
}

// Allocate implements Disk.
func (d *MemDisk) Allocate() (page.ID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := page.ID(len(d.pages))
	p := &page.Page{}
	p.Init(id)
	d.pages = append(d.pages, p)
	return id, nil
}

// NumPages implements Disk.
func (d *MemDisk) NumPages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

// Close implements Disk.
func (d *MemDisk) Close() error { return nil }

// FileDisk is a Disk backed by a single file of page.Size-aligned pages.
type FileDisk struct {
	mu sync.Mutex
	f  *os.File
	n  int
}

// OpenFileDisk opens (creating if needed) a file-backed disk at path.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("filedisk: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("filedisk: %w", err)
	}
	return &FileDisk{f: f, n: int(st.Size() / page.Size)}, nil
}

// ReadPage implements Disk.
func (d *FileDisk) ReadPage(id page.ID, dst *page.Page) error {
	d.mu.Lock()
	n := d.n
	d.mu.Unlock()
	if int(id) >= n {
		return fmt.Errorf("filedisk: read of unallocated page %d", id)
	}
	_, err := d.f.ReadAt(dst.Data[:], int64(id)*page.Size)
	return err
}

// WritePage implements Disk.
func (d *FileDisk) WritePage(id page.ID, src *page.Page) error {
	_, err := d.f.WriteAt(src.Data[:], int64(id)*page.Size)
	return err
}

// Allocate implements Disk.
func (d *FileDisk) Allocate() (page.ID, error) {
	d.mu.Lock()
	id := page.ID(d.n)
	d.n++
	d.mu.Unlock()
	var p page.Page
	p.Init(id)
	if err := d.WritePage(id, &p); err != nil {
		return page.InvalidID, err
	}
	return id, nil
}

// NumPages implements Disk.
func (d *FileDisk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Close implements Disk.
func (d *FileDisk) Close() error { return d.f.Close() }
