package buffer

import (
	"sync"
	"time"

	"dora/internal/metrics"
	"dora/internal/page"
)

// Cleaner is the buffer pool's flush daemon: a paced background sweep
// that writes dirty frames back before the eviction path has to, keeping
// page misses cheap and — since the copy-on-write protocol — keeping
// owner-stamped hot pages evictable at all (the eviction path refuses to
// clean a stamped dirty frame itself; it can only drop stamped frames
// that are already clean).
//
// Stamped dirty frames are hardened through the pool's snapshot ship: the
// cleaner never latches them, it asks the owning worker for a copy and
// writes that, so foreground owner mutations proceed latch-free while
// cleaning runs. Eviction posts hints for the stamped dirty frames it had
// to skip (Pool.CleanRequests); the cleaner prioritizes those each tick.
type Cleaner struct {
	pool *Pool
	cfg  CleanerConfig

	mu      sync.Mutex
	started bool
	stop    chan struct{}
	wg      sync.WaitGroup

	// Sweeps counts pacing ticks that found dirty work; CleanedPages
	// counts frames hardened by this daemon (snapshot or latched).
	Sweeps       metrics.Counter
	CleanedPages metrics.Counter
}

// CleanerConfig tunes the daemon.
type CleanerConfig struct {
	// Interval is the pacing tick (default 2ms).
	Interval time.Duration
	// Batch bounds frames cleaned per tick (default 64).
	Batch int
}

func (c *CleanerConfig) fill() {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
}

// NewCleaner wires a cleaner to pool; Start launches its pacing loop.
func NewCleaner(pool *Pool, cfg CleanerConfig) *Cleaner {
	cfg.fill()
	return &Cleaner{pool: pool, cfg: cfg}
}

// Start launches the pacing loop (idempotent while running; a closed
// cleaner can be started again).
func (c *Cleaner) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.stop = make(chan struct{})
	stop := c.stop
	c.mu.Unlock()
	c.wg.Add(1)
	go c.loop(stop)
}

// Close stops the pacing loop. Call before closing the engine whose
// workers serve the snapshot ships, or a final in-flight ship could wait
// on a retired owner (it fails over safely, but shutdown is cleaner in
// this order).
func (c *Cleaner) Close() error {
	c.mu.Lock()
	started := c.started
	c.started = false
	stop := c.stop
	c.mu.Unlock()
	if started {
		close(stop)
		c.wg.Wait()
	}
	return nil
}

func (c *Cleaner) loop(stop chan struct{}) {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			c.tick()
		}
	}
}

// tick runs one unit: eviction's hints first, then a bounded sweep.
func (c *Cleaner) tick() {
	budget := c.cfg.Batch
	for budget > 0 {
		var pid page.ID
		select {
		case pid = <-c.pool.CleanRequests():
		default:
			pid = page.InvalidID
		}
		if pid == page.InvalidID {
			break
		}
		if c.cleanOne(pid) {
			budget--
		}
	}
	if budget <= 0 {
		c.Sweeps.Inc()
		return
	}
	n, _ := c.pool.CleanSome(budget)
	if n > 0 {
		c.Sweeps.Inc()
		c.CleanedPages.Add(int64(n))
	}
}

// cleanOne hardens the named page if it is still resident and dirty.
func (c *Cleaner) cleanOne(pid page.ID) bool {
	p := c.pool
	sh := p.shardOf(pid)
	sh.mu.Lock()
	idx, ok := sh.table[pid]
	if !ok {
		sh.mu.Unlock()
		return false
	}
	f := sh.frames[idx]
	if !f.valid || !f.dirty.Load() {
		sh.mu.Unlock()
		return false
	}
	f.pins.Add(1)
	sh.mu.Unlock()
	err := p.writeBack(f)
	p.Unpin(f, false)
	if err == nil {
		c.CleanedPages.Inc()
	}
	return err == nil
}

// Sweep synchronously cleans every dirty frame once (tests, experiments:
// a deterministic "the cleaner ran" point).
func (c *Cleaner) Sweep() int {
	n, _ := c.pool.CleanSome(0)
	c.CleanedPages.Add(int64(n))
	return n
}
