package buffer

import (
	"path/filepath"
	"sync"
	"testing"

	"dora/internal/page"
)

func TestNewPageAndFetch(t *testing.T) {
	p := NewPool(4, NewMemDisk(), nil)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	f.Latch.Lock()
	if _, err := f.Page.Insert([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	f.MarkDirty()
	f.Latch.Unlock()
	p.Unpin(f, true)

	g, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if g != f {
		t.Fatal("second fetch should hit the same frame")
	}
	g.Latch.RLock()
	b, err := g.Page.Get(0)
	if err != nil || string(b) != "hello" {
		t.Fatalf("Get: %q, %v", b, err)
	}
	g.Latch.RUnlock()
	p.Unpin(g, false)
	if p.Hits.Load() != 1 {
		t.Fatalf("hits = %d, want 1", p.Hits.Load())
	}
}

func TestEvictionWritesBack(t *testing.T) {
	disk := NewMemDisk()
	p := NewPool(2, disk, nil)
	var ids []page.ID
	for i := 0; i < 5; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Latch.Lock()
		if _, err := f.Page.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		f.Latch.Unlock()
		ids = append(ids, f.ID())
		p.Unpin(f, true)
	}
	// All five pages must be readable despite only 2 frames.
	for i, id := range ids {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatalf("Fetch(%d): %v", id, err)
		}
		f.Latch.RLock()
		b, err := f.Page.Get(0)
		if err != nil || b[0] != byte(i) {
			t.Fatalf("page %d content: %v %v", id, b, err)
		}
		f.Latch.RUnlock()
		p.Unpin(f, false)
	}
	if p.Evictions.Load() == 0 {
		t.Fatal("expected evictions with 2 frames and 5 pages")
	}
}

func TestAllPinnedFails(t *testing.T) {
	p := NewPool(2, NewMemDisk(), nil)
	a, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.NewPage(); err != ErrNoFrames {
		t.Fatalf("want ErrNoFrames, got %v", err)
	}
	p.Unpin(a, false)
	p.Unpin(b, false)
	c, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(c, false)
}

// walProbe records the highest LSN forced.
type walProbe struct {
	mu    sync.Mutex
	maxed uint64
}

func (w *walProbe) Force(lsn uint64) error {
	w.mu.Lock()
	if lsn > w.maxed {
		w.maxed = lsn
	}
	w.mu.Unlock()
	return nil
}

func TestWALForcedBeforeWriteBack(t *testing.T) {
	probe := &walProbe{}
	p := NewPool(1, NewMemDisk(), probe)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	f.Latch.Lock()
	f.Page.SetLSN(777)
	f.Latch.Unlock()
	p.Unpin(f, true)
	// Allocating another page evicts the dirty one.
	g, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(g, false)
	probe.mu.Lock()
	defer probe.mu.Unlock()
	if probe.maxed < 777 {
		t.Fatalf("WAL forced only to %d before write-back of page with LSN 777", probe.maxed)
	}
}

func TestFlushAllPersists(t *testing.T) {
	disk := NewMemDisk()
	p := NewPool(4, disk, nil)
	f, _ := p.NewPage()
	f.Latch.Lock()
	_, _ = f.Page.Insert([]byte("persist me"))
	f.Latch.Unlock()
	id := f.ID()
	p.Unpin(f, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Read through a *different* pool: must come from disk.
	p2 := NewPool(4, disk, nil)
	g, err := p2.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	g.Latch.RLock()
	b, err := g.Page.Get(0)
	g.Latch.RUnlock()
	p2.Unpin(g, false)
	if err != nil || string(b) != "persist me" {
		t.Fatalf("after flush: %q, %v", b, err)
	}
}

func TestFileDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.db")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(2, d, nil)
	f, _ := p.NewPage()
	f.Latch.Lock()
	_, _ = f.Page.Insert([]byte("on disk"))
	f.Latch.Unlock()
	id := f.ID()
	p.Unpin(f, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumPages() != 1 {
		t.Fatalf("NumPages = %d", d2.NumPages())
	}
	var pg page.Page
	if err := d2.ReadPage(id, &pg); err != nil {
		t.Fatal(err)
	}
	b, err := pg.Get(0)
	if err != nil || string(b) != "on disk" {
		t.Fatalf("file round trip: %q %v", b, err)
	}
}

func TestConcurrentFetch(t *testing.T) {
	disk := NewMemDisk()
	p := NewPool(8, disk, nil)
	var ids []page.ID
	for i := 0; i < 32; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Latch.Lock()
		_, _ = f.Page.Insert([]byte{byte(i)})
		f.Latch.Unlock()
		ids = append(ids, f.ID())
		p.Unpin(f, true)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := ids[(w*7+i)%len(ids)]
				f, err := p.Fetch(id)
				if err != nil {
					t.Errorf("Fetch(%d): %v", id, err)
					return
				}
				f.Latch.RLock()
				b, err := f.Page.Get(0)
				if err != nil || b[0] != byte(id) {
					t.Errorf("page %d: %v %v", id, b, err)
					f.Latch.RUnlock()
					p.Unpin(f, false)
					return
				}
				f.Latch.RUnlock()
				p.Unpin(f, false)
			}
		}(w)
	}
	wg.Wait()
}

func TestHitRate(t *testing.T) {
	p := NewPool(4, NewMemDisk(), nil)
	if p.HitRate() != 1 {
		t.Fatal("empty pool hit rate should be 1")
	}
	f, _ := p.NewPage()
	id := f.ID()
	p.Unpin(f, false)
	for i := 0; i < 9; i++ {
		g, _ := p.Fetch(id)
		p.Unpin(g, false)
	}
	if hr := p.HitRate(); hr != 1 {
		t.Fatalf("hit rate = %f, want 1 (page never evicted)", hr)
	}
}
