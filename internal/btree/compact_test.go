package btree

import (
	"math"
	"testing"
)

// claimTwoWorkers partitions [0,+inf) between two fake workers at cut.
func claimTwoWorkers(pt *PartitionedTree, a, b *fakeWorker, cut int64) {
	pt.Claim([]ClaimRange{
		{Lo: math.MinInt64, Hi: cut - 1, Owner: a.tok, Exec: a.exec()},
		{Lo: cut, Hi: math.MaxInt64, Owner: b.tok, Exec: b.exec()},
	})
}

func TestCompactMergesAdjacentSameOwnerRuns(t *testing.T) {
	pt := NewPartitioned(nil)
	a, b := newFakeWorker(), newFakeWorker()
	defer a.stop()
	defer b.stop()
	claimTwoWorkers(pt, a, b, 1000)
	for k := int64(0); k < 2000; k++ {
		k := k
		if k < 1000 {
			a.do(func(tok *Owner) { _ = pt.InsertAs(tok, k, uint64(k)) })
		} else {
			b.do(func(tok *Owner) { _ = pt.InsertAs(tok, k, uint64(k)) })
		}
	}
	// Fragment a's key space: repeated MoveRanges a->b->a leave behind
	// many adjacent subtrees per owner (the split/merge residue).
	for i := 0; i < 20; i++ {
		lo := int64(i * 50)
		hi := lo + 24
		a.do(func(tok *Owner) { pt.MoveRange(tok, lo, hi, b.tok, b.exec(), nil) })
		b.do(func(tok *Owner) { pt.MoveRange(tok, lo, hi, a.tok, a.exec(), nil) })
	}
	before := pt.NumSubtrees()
	if before < 10 {
		t.Fatalf("fragmentation did not happen: %d subtrees", before)
	}
	var csA, csB CompactStats
	a.do(func(tok *Owner) { csA = pt.CompactOwned(tok, 0.5) })
	b.do(func(tok *Owner) { csB = pt.CompactOwned(tok, 0.5) })
	after := pt.NumSubtrees()
	if after != 2 {
		t.Fatalf("fan-out after both owners compacted = %d, want 2 (one run per owner)", after)
	}
	if csA.Merged+csB.Merged != before-2 {
		t.Fatalf("merged %d+%d, want %d", csA.Merged, csB.Merged, before-2)
	}
	// Contents intact, still served through the right owners.
	if pt.Len() != 2000 {
		t.Fatalf("len = %d, want 2000", pt.Len())
	}
	for k := int64(0); k < 2000; k += 37 {
		k := k
		var v uint64
		var err error
		a.do(func(tok *Owner) { v, err = pt.GetAs(tok, k) })
		if err != nil || v != uint64(k) {
			t.Fatalf("key %d after compaction: %d %v", k, v, err)
		}
	}
}

func TestCompactPurgesGhosts(t *testing.T) {
	pt := NewPartitioned(nil)
	a := newFakeWorker()
	defer a.stop()
	pt.Claim([]ClaimRange{{Lo: math.MinInt64, Hi: math.MaxInt64, Owner: a.tok, Exec: a.exec()}})
	for k := int64(0); k < 5000; k++ {
		k := k
		a.do(func(tok *Owner) { _ = pt.InsertAs(tok, k, uint64(k)) })
	}
	// Lazy deletion: delete 90%, leaving underfull/empty leaves behind.
	for k := int64(0); k < 5000; k++ {
		if k%10 == 0 {
			continue
		}
		k := k
		a.do(func(tok *Owner) { _, _ = pt.DeleteAs(tok, k) })
	}
	st := pt.ShapeStats()
	if st.Keys != 500 {
		t.Fatalf("keys = %d, want 500", st.Keys)
	}
	leavesBefore := st.Leaves
	var cs CompactStats
	a.do(func(tok *Owner) { cs = pt.CompactOwned(tok, 0.5) })
	st = pt.ShapeStats()
	if st.Leaves >= leavesBefore {
		t.Fatalf("leaves %d -> %d, wanted a rebuild to shrink them", leavesBefore, st.Leaves)
	}
	if cs.Rebuilt == 0 || cs.Ghosts == 0 {
		t.Fatalf("stats report no rebuild/ghosts: %+v", cs)
	}
	// Survivors intact.
	for k := int64(0); k < 5000; k += 10 {
		k := k
		var v uint64
		var err error
		a.do(func(tok *Owner) { v, err = pt.GetAs(tok, k) })
		if err != nil || v != uint64(k) {
			t.Fatalf("survivor %d: %d %v", k, v, err)
		}
	}
	// A healthy tree is left alone.
	a.do(func(tok *Owner) { cs = pt.CompactOwned(tok, 0.5) })
	if cs.Merged != 0 || cs.Rebuilt != 0 {
		t.Fatalf("second compaction not a no-op: %+v", cs)
	}
}

func TestCompactLeavesMinimalTreesAlone(t *testing.T) {
	// A small tree below the occupancy target but already at its minimal
	// leaf count must not count as work: the maintenance daemon's
	// converge-until-no-work loop relies on compaction reaching a fixed
	// point (a shape-identical rebuild forever would never converge).
	pt := NewPartitioned(nil)
	a := newFakeWorker()
	defer a.stop()
	pt.Claim([]ClaimRange{{Lo: math.MinInt64, Hi: math.MaxInt64, Owner: a.tok, Exec: a.exec()}})
	for k := int64(0); k < 10; k++ {
		k := k
		a.do(func(tok *Owner) { _ = pt.InsertAs(tok, k, uint64(k)) })
	}
	var cs CompactStats
	a.do(func(tok *Owner) { cs = pt.CompactOwned(tok, 0.5) })
	if cs.Merged != 0 || cs.Rebuilt != 0 || cs.Ghosts != 0 {
		t.Fatalf("compaction of a minimal 10-key tree reported work: %+v", cs)
	}
}

func TestExecAtRunsOnOwnerWithToken(t *testing.T) {
	pt := NewPartitioned(nil)
	a, b := newFakeWorker(), newFakeWorker()
	defer a.stop()
	defer b.stop()
	claimTwoWorkers(pt, a, b, 100)

	// Foreign caller: ships to the owner, which gets its own token.
	var got *Owner
	pt.ExecAt(nil, 50, func(tok *Owner) { got = tok })
	if got != a.tok {
		t.Fatalf("ExecAt(50) token = %v, want a's", got)
	}
	pt.ExecAt(nil, 100, func(tok *Owner) { got = tok })
	if got != b.tok {
		t.Fatalf("ExecAt(100) token = %v, want b's", got)
	}
	// Owner caller: runs inline with its own token.
	a.do(func(tok *Owner) {
		pt.ExecAt(tok, 50, func(inTok *Owner) { got = inTok })
	})
	if got != a.tok {
		t.Fatalf("inline ExecAt token = %v, want a's", got)
	}
	// Unowned tree: runs inline with nil (the shared path).
	pt.Release()
	ran := false
	pt.ExecAt(a.tok, 50, func(tok *Owner) { ran = true; got = tok })
	if !ran || got != nil {
		t.Fatalf("released ExecAt: ran=%v tok=%v, want inline nil", ran, got)
	}
	// Plain trees always run inline with nil.
	tr := New(nil)
	tr.ExecAt(a.tok, 1, func(tok *Owner) { got = tok; ran = true })
	if got != nil {
		t.Fatalf("plain-tree ExecAt token = %v, want nil", got)
	}
}

func TestExecAtStaleHopFailsBack(t *testing.T) {
	// A ship that lands after the range moved on must NOT run there; the
	// caller re-resolves and the op lands on the new owner.
	pt := NewPartitioned(nil)
	a, b := newFakeWorker(), newFakeWorker()
	defer a.stop()
	defer b.stop()
	pt.Claim([]ClaimRange{{Lo: math.MinInt64, Hi: math.MaxInt64, Owner: a.tok, Exec: a.exec()}})
	// a's exec hands the range to b BEFORE serving the shipped closure,
	// simulating the split racing the hand-off.
	moved := false
	staleExec := func(fn func(tok *Owner)) bool {
		a.do(func(tok *Owner) {
			if !moved {
				moved = true
				pt.MoveRange(tok, math.MinInt64, math.MaxInt64, b.tok, b.exec(), nil)
			}
			fn(tok)
		})
		return true
	}
	pt.mu.Lock()
	pt.subs[0].exec = staleExec
	pt.mu.Unlock()

	var got *Owner
	pt.ExecAt(nil, 7, func(tok *Owner) { got = tok })
	if got != b.tok {
		t.Fatalf("stale hop ran with %v, want re-resolution to b", got)
	}
}
