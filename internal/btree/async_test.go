package btree

import (
	"sync/atomic"
	"testing"
	"time"
)

// execAsync is the continuation-passing hook for a fakeWorker: the
// shipped closure runs on the worker loop and the completion is
// delivered through home (or inline on the loop without one) — the same
// contract DORA's partition workers implement with contMsg/kontMsg.
func (w *fakeWorker) execAsync() OwnerExecAsync {
	return func(home ContExec, fn func(tok *Owner), done func(ok bool)) bool {
		w.ch <- func(tok *Owner) {
			fn(tok)
			if home != nil {
				home(func() { done(true) })
			} else {
				done(true)
			}
		}
		return true
	}
}

// home returns the worker's continuation executor: delivered closures
// run on its loop, like kontMsgs on a partition inbox.
func (w *fakeWorker) home() ContExec {
	return func(k func()) { w.ch <- func(*Owner) { k() } }
}

// TestExecAtAsyncLocalInline: on an unowned or self-owned subtree, fn
// and done run inline before ExecAtAsync returns — no message, no
// suspension.
func TestExecAtAsyncLocalInline(t *testing.T) {
	pt := NewPartitioned(nil)
	for i := int64(0); i < 100; i++ {
		if err := pt.InsertAs(nil, i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ran, completed := false, false
	pt.ExecAtAsync(nil, 50, nil, func(tok *Owner) {
		if tok != nil {
			t.Error("unowned subtree handed a token")
		}
		ran = true
	}, func() { completed = true })
	if !ran || !completed {
		t.Fatalf("inline path: ran=%v completed=%v", ran, completed)
	}

	a := newFakeWorker()
	defer a.stop()
	pt.Claim([]ClaimRange{{Lo: 0, Hi: 99, Owner: a.tok, Exec: a.exec(), ExecAsync: a.execAsync()}})
	a.do(func(tok *Owner) {
		ran, completed = false, false
		pt.ExecAtAsync(tok, 50, a.home(), func(got *Owner) {
			if got != tok {
				t.Error("owner path handed a foreign token")
			}
			ran = true
		}, func() { completed = true })
		if !ran || !completed {
			t.Errorf("owner inline path: ran=%v completed=%v", ran, completed)
		}
	})
}

// TestExecAtAsyncForeignShips: an operation on another worker's subtree
// ships without blocking the caller and the continuation is delivered
// through home.
func TestExecAtAsyncForeignShips(t *testing.T) {
	pt := NewPartitioned(nil)
	for i := int64(0); i < 1000; i++ {
		if err := pt.InsertAs(nil, i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	a, b := newFakeWorker(), newFakeWorker()
	defer a.stop()
	defer b.stop()
	pt.Claim([]ClaimRange{
		{Lo: 0, Hi: 499, Owner: a.tok, Exec: a.exec(), ExecAsync: a.execAsync()},
		{Lo: 500, Hi: 999, Owner: b.tok, Exec: b.exec(), ExecAsync: b.execAsync()},
	})
	completed := make(chan struct{})
	a.do(func(tok *Owner) {
		// From a's loop, operate on b's range: must return before the op
		// ran (b's loop is busy until we return) and complete later.
		pt.ExecAtAsync(tok, 700, a.home(), func(got *Owner) {
			if got != b.tok {
				t.Errorf("foreign op ran with wrong token")
			}
			if err := pt.upsertAsNL(got, 700, 7777); err != nil {
				t.Errorf("owner write: %v", err)
			}
		}, func() { close(completed) })
	})
	select {
	case <-completed:
	case <-time.After(10 * time.Second):
		t.Fatal("foreign continuation never delivered")
	}
	if v, err := pt.GetAs(nil, 700); err != nil || v != 7777 {
		t.Fatalf("after async write: %d %v", v, err)
	}
}

// upsertAsNL writes through the owner path for the test above (PutAs
// from the owner's thread).
func (pt *PartitionedTree) upsertAsNL(tok *Owner, key int64, val uint64) error {
	return pt.PutAs(tok, key, val)
}

// TestAscendRangeAsyncMixedOwnership: a scan spanning a local and a
// foreign segment visits every key in order and completes through the
// continuation.
func TestAscendRangeAsyncMixedOwnership(t *testing.T) {
	pt := NewPartitioned(nil)
	for i := int64(0); i < 1000; i++ {
		if err := pt.InsertAs(nil, i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	a, b := newFakeWorker(), newFakeWorker()
	defer a.stop()
	defer b.stop()
	pt.Claim([]ClaimRange{
		{Lo: 0, Hi: 499, Owner: a.tok, Exec: a.exec(), ExecAsync: a.execAsync()},
		{Lo: 500, Hi: 999, Owner: b.tok, Exec: b.exec(), ExecAsync: b.execAsync()},
	})
	var keys []int64
	var count atomic.Int64
	done := make(chan struct{})
	a.do(func(tok *Owner) {
		pt.AscendRangeAsync(tok, 450, 550, a.home(), func(k int64, v uint64) bool {
			keys = append(keys, k)
			count.Add(1)
			return true
		}, func() { close(done) })
	})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("async scan never completed")
	}
	if count.Load() != 101 {
		t.Fatalf("scan visited %d keys, want 101", count.Load())
	}
	for i, k := range keys {
		if k != int64(450+i) {
			t.Fatalf("scan out of order at %d: %d", i, k)
		}
	}

	// Early stop from inside a foreign segment.
	stopped := make(chan struct{})
	var n int
	a.do(func(tok *Owner) {
		pt.AscendRangeAsync(tok, 450, 999, a.home(), func(k int64, v uint64) bool {
			n++
			return k < 520
		}, func() { close(stopped) })
	})
	select {
	case <-stopped:
	case <-time.After(10 * time.Second):
		t.Fatal("stopped scan never completed")
	}
	if n != 71 { // 450..520 inclusive; fn stops at 520
		t.Fatalf("stopped scan visited %d keys, want 71", n)
	}
}

// TestExecAtAsyncNoHookFallsBack: a claim without an async hook keeps
// the blocking path working under ExecAtAsync (the BlockingShips
// configuration).
func TestExecAtAsyncNoHookFallsBack(t *testing.T) {
	pt := NewPartitioned(nil)
	for i := int64(0); i < 100; i++ {
		if err := pt.InsertAs(nil, i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	a := newFakeWorker()
	defer a.stop()
	pt.Claim([]ClaimRange{{Lo: 0, Hi: 99, Owner: a.tok, Exec: a.exec()}})
	ran, completed := false, false
	pt.ExecAtAsync(nil, 42, nil, func(tok *Owner) {
		if tok != a.tok {
			t.Error("fallback ran without the owner token")
		}
		ran = true
	}, func() { completed = true })
	if !ran || !completed {
		t.Fatalf("fallback path: ran=%v completed=%v", ran, completed)
	}
}
