package btree

import (
	"math"
)

// Continuation-passing access to owned subtrees.
//
// The blocking protocol (runAt, ExecAt) parks the calling goroutine for
// the full round trip of every foreign operation: enqueue on the owner's
// inbox, wait behind whatever the owner is doing, run, wake up. When the
// caller is itself a partition worker, that round trip idles a whole
// micro-engine — and a cycle of such ships deadlocks.
//
// The async protocol below never parks. A foreign operation is shipped
// through the subtree's OwnerExecAsync hook together with a continuation;
// the owner runs the operation on its thread and hands the continuation
// back through the sender's home executor (its inbox). Between ship and
// continuation the sender's thread is free to drain its own queue, and a
// cyclic ship graph merely round-trips messages — nobody is parked, so
// nothing can wedge.
//
// The stale-hop discipline is identical to the blocking path: a shipped
// operation landing on a worker whose ownership moved on (split/merge
// raced the hand-off) does not run; the failure travels back through the
// continuation and the ORIGINAL caller re-resolves. Ships stay a single
// sender→owner hop.

// ExecAtAsync implements AccessMethod (see the interface comment). When
// key's subtree is unowned or owned by the caller, fn and done run inline
// and ExecAtAsync returns only after both — the aligned path is exactly
// ExecAt plus one function call. A foreign subtree without an async hook
// (blocking-ships configuration) falls back to the parked-sender path.
func (pt *PartitionedTree) ExecAtAsync(caller *Owner, key int64, home ContExec, fn func(tok *Owner), done func()) {
	for attempt := 0; ; attempt++ {
		pt.mu.RLock()
		st := pt.locate(key)
		owner, execAsync := st.owner, st.execAsync
		pt.mu.RUnlock()
		if owner == nil || owner == caller {
			fn(owner)
			done()
			return
		}
		if execAsync == nil {
			pt.ExecAt(caller, key, fn)
			done()
			return
		}
		ran := false
		if execAsync(home, func(tok *Owner) {
			pt.mu.RLock()
			st := pt.locate(key)
			cur := st.owner
			pt.mu.RUnlock()
			if cur != nil && cur != tok {
				return // stale hop: fail back, caller re-resolves
			}
			fn(cur)
			ran = true
		}, func(ok bool) {
			if ok && ran {
				done()
				return
			}
			// Owner retired or the range moved before fn ran; re-resolve
			// from the continuation (a fresh stack each round — the retry
			// loop cannot grow recursion unboundedly).
			pt.ExecAtAsync(caller, key, home, fn, done)
		}) {
			return
		}
		// Could not even enqueue (owner retired between the topology read
		// and the push); re-resolve inline.
		pt.shipRetry(attempt)
	}
}

// AscendRangeAsync implements AccessMethod: the CPS mirror of ascendAs.
// Local segments scan inline in a loop; a foreign segment ships to its
// owner and the walk resumes from the delivered continuation. fn runs on
// whichever thread scans each segment (sequentially, never concurrently);
// like the blocking scan, the whole walk is fuzzy — point consistency
// comes from the lock protocol above.
func (pt *PartitionedTree) AscendRangeAsync(caller *Owner, lo, hi int64, home ContExec, fn func(key int64, val uint64) bool, done func()) {
	cur := lo
	attempt := 0
	for cur <= hi {
		var segHi int64
		cont := true
		pt.mu.RLock()
		st := pt.locate(cur)
		segHi = st.hi
		if hi < segHi {
			segHi = hi
		}
		if st.owner == nil || st.owner == caller {
			if st.owner == nil {
				st.tree.AscendRange(cur, segHi, func(k int64, v uint64) bool {
					cont = fn(k, v)
					return cont
				})
			} else {
				cont = st.tree.ascendRangeNL(cur, segHi, fn)
			}
			pt.mu.RUnlock()
			if !cont || segHi == math.MaxInt64 || segHi >= hi {
				done()
				return
			}
			cur = segHi + 1
			continue
		}
		execAsync := st.execAsync
		pt.mu.RUnlock()
		if execAsync == nil {
			// Blocking-ships configuration: finish the rest of the walk on
			// the parked-sender path.
			pt.ascendAs(caller, cur, hi, fn)
			done()
			return
		}
		from := cur // resolved start of the foreign segment
		ran := false
		segEnd := int64(0)
		if execAsync(home, func(tok *Owner) {
			pt.mu.RLock()
			st := pt.locate(from)
			if st.owner != nil && st.owner != tok {
				pt.mu.RUnlock()
				return // stale hop: fail back, walk re-resolves
			}
			sh := st.hi
			if hi < sh {
				sh = hi
			}
			if st.owner == nil {
				st.tree.AscendRange(from, sh, func(k int64, v uint64) bool {
					cont = fn(k, v)
					return cont
				})
			} else {
				cont = st.tree.ascendRangeNL(from, sh, fn)
			}
			pt.mu.RUnlock()
			segEnd = sh
			ran = true
		}, func(ok bool) {
			if !ok || !ran {
				pt.AscendRangeAsync(caller, from, hi, home, fn, done)
				return
			}
			if !cont || segEnd == math.MaxInt64 || segEnd >= hi {
				done()
				return
			}
			pt.AscendRangeAsync(caller, segEnd+1, hi, home, fn, done)
		}) {
			return
		}
		pt.shipRetry(attempt)
		attempt++
	}
	done()
}
