// Package btree implements the storage manager's ordered access method:
// an in-memory B+tree from int64 keys to 64-bit values (record ids),
// latched per node with lock crabbing so readers and writers from many
// worker threads can descend concurrently.
//
// It also provides the physiologically partitioned variant
// (PartitionedTree, plp.go): a thin ordered root fanning out to
// per-key-range subtrees that DORA partition workers claim exclusively,
// making owner-thread descents latch-free while everyone else either
// stays on the crabbing path (unowned subtrees) or ships the operation
// to the owner's queue.
//
// Composite workload keys (for example TATP's (s_id, sf_type, start_time))
// are bit-packed into the int64 by the workload schemas, so keys are
// unique and range scans over a prefix become interval scans.
//
// Deletion is "lazy" in the PostgreSQL style: keys are removed from
// leaves, and underfull leaves are left in place rather than merged; the
// tree never returns deleted keys and keeps its search invariants, which
// is what the transaction engines above require.
package btree

import (
	"errors"
	"sync"

	"dora/internal/metrics"
)

// Order is the maximum number of keys in a node.
const Order = 64

const minKeys = Order / 2

// ErrExists reports an insert of a key that is already present.
var ErrExists = errors.New("btree: key exists")

// ErrNotFound reports a lookup or delete of an absent key.
var ErrNotFound = errors.New("btree: key not found")

type node struct {
	mu   sync.RWMutex
	leaf bool
	keys []int64
	// vals is used by leaves, children by internal nodes.
	vals     []uint64
	children []*node
	next     *node // leaf chain
}

func (n *node) full() bool { return len(n.keys) >= Order }

// Tree is a latched B+tree. The zero value is not usable; call New.
type Tree struct {
	// rootMu guards the root pointer; descents take it briefly, in the
	// same mode as the root node latch they are about to take.
	rootMu sync.RWMutex
	root   *node

	cs *metrics.CriticalSectionStats

	// Size is maintained atomically for statistics.
	size metrics.Counter
}

// New returns an empty tree. cs may be nil; when set, node latch
// acquisitions are counted as latch critical sections.
func New(cs *metrics.CriticalSectionStats) *Tree {
	return &Tree{root: &node{leaf: true}, cs: cs}
}

func (t *Tree) latchShared(n *node) {
	if t.cs != nil {
		t.cs.Latch.Inc()
		t.cs.IndexLatch.Inc()
		if !n.mu.TryRLock() {
			t.cs.Contended.Inc()
			n.mu.RLock()
		}
		return
	}
	n.mu.RLock()
}

func (t *Tree) latchExcl(n *node) {
	if t.cs != nil {
		t.cs.Latch.Inc()
		t.cs.IndexLatch.Inc()
		if !n.mu.TryLock() {
			t.cs.Contended.Inc()
			n.mu.Lock()
		}
		return
	}
	n.mu.Lock()
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return int(t.size.Load()) }

// search finds the child index for key in an internal node: the first
// separator greater than key.
func childIndex(keys []int64, key int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if key < keys[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// leafIndex finds the position of key in a leaf (or where it would go).
func leafIndex(keys []int64, key int64) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && keys[lo] == key
}

// Get returns the value stored under key.
func (t *Tree) Get(key int64) (uint64, error) {
	t.rootMu.RLock()
	n := t.root
	t.latchShared(n)
	t.rootMu.RUnlock()
	for !n.leaf {
		c := n.children[childIndex(n.keys, key)]
		t.latchShared(c)
		n.mu.RUnlock()
		n = c
	}
	i, ok := leafIndex(n.keys, key)
	if !ok {
		n.mu.RUnlock()
		return 0, ErrNotFound
	}
	v := n.vals[i]
	n.mu.RUnlock()
	return v, nil
}

// Insert stores val under key, failing with ErrExists for duplicates.
func (t *Tree) Insert(key int64, val uint64) error {
	return t.upsert(key, val, false)
}

// Put stores val under key, overwriting any existing value.
func (t *Tree) Put(key int64, val uint64) error {
	return t.upsert(key, val, true)
}

// upsert descends with exclusive crabbing: parents stay latched until the
// child is safe (not full), so splits can propagate without re-descending.
func (t *Tree) upsert(key int64, val uint64, overwrite bool) error {
	t.rootMu.Lock()
	n := t.root
	t.latchExcl(n)
	if n.full() {
		// Split the root while holding rootMu.
		left := t.root
		mid, right := t.split(left)
		newRoot := &node{
			leaf:     false,
			keys:     []int64{mid},
			children: []*node{left, right},
		}
		t.root = newRoot
		// Continue the descent from the new root: re-latch.
		t.latchExcl(newRoot)
		n.mu.Unlock()
		n = newRoot
	}
	t.rootMu.Unlock()

	// Invariant: n is latched exclusively and not full.
	for !n.leaf {
		i := childIndex(n.keys, key)
		c := n.children[i]
		t.latchExcl(c)
		if c.full() {
			mid, right := t.split(c)
			// Install separator in (non-full) parent n.
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = mid
			n.children = append(n.children, nil)
			copy(n.children[i+2:], n.children[i+1:])
			n.children[i+1] = right
			if key >= mid {
				c.mu.Unlock()
				c = right
				t.latchExcl(c)
			}
		}
		n.mu.Unlock()
		n = c
	}
	i, ok := leafIndex(n.keys, key)
	if ok {
		if !overwrite {
			n.mu.Unlock()
			return ErrExists
		}
		n.vals[i] = val
		n.mu.Unlock()
		return nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	n.vals = append(n.vals, 0)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = val
	n.mu.Unlock()
	t.size.Inc()
	return nil
}

// split divides a full node (latched exclusively by the caller) into two,
// returning the separator key and the new right sibling. The caller holds
// the parent latch, so installing the separator is race-free.
func (t *Tree) split(n *node) (int64, *node) {
	half := len(n.keys) / 2
	right := &node{leaf: n.leaf}
	if n.leaf {
		right.keys = append(right.keys, n.keys[half:]...)
		right.vals = append(right.vals, n.vals[half:]...)
		n.keys = n.keys[:half]
		n.vals = n.vals[:half]
		right.next = n.next
		n.next = right
		return right.keys[0], right
	}
	// Internal: middle key moves up.
	mid := n.keys[half]
	right.keys = append(right.keys, n.keys[half+1:]...)
	right.children = append(right.children, n.children[half+1:]...)
	n.keys = n.keys[:half]
	n.children = n.children[:half+1]
	return mid, right
}

// Delete removes key, returning its value. Leaves may become underfull
// (lazy deletion); empty leaves are kept until the tree is rebuilt.
func (t *Tree) Delete(key int64) (uint64, error) {
	t.rootMu.RLock()
	n := t.root
	t.latchExcl(n)
	t.rootMu.RUnlock()
	for !n.leaf {
		c := n.children[childIndex(n.keys, key)]
		t.latchExcl(c)
		n.mu.Unlock()
		n = c
	}
	i, ok := leafIndex(n.keys, key)
	if !ok {
		n.mu.Unlock()
		return 0, ErrNotFound
	}
	v := n.vals[i]
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.mu.Unlock()
	t.size.Add(-1)
	return v, nil
}

// AscendRange calls fn for every (key, value) with lo <= key <= hi, in
// ascending order, until fn returns false. It crabs shared latches along
// the leaf chain, so concurrent inserts into already-visited leaves are
// not observed (the scan is a fuzzy read; transaction-level consistency
// comes from the lock protocol above).
func (t *Tree) AscendRange(lo, hi int64, fn func(key int64, val uint64) bool) {
	t.rootMu.RLock()
	n := t.root
	t.latchShared(n)
	t.rootMu.RUnlock()
	for !n.leaf {
		c := n.children[childIndex(n.keys, lo)]
		t.latchShared(c)
		n.mu.RUnlock()
		n = c
	}
	i, _ := leafIndex(n.keys, lo)
	for {
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				n.mu.RUnlock()
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				n.mu.RUnlock()
				return
			}
		}
		nx := n.next
		if nx == nil {
			n.mu.RUnlock()
			return
		}
		t.latchShared(nx)
		n.mu.RUnlock()
		n = nx
		i = 0
	}
}

// Min returns the smallest key (testing/statistics helper).
func (t *Tree) Min() (int64, uint64, bool) {
	var k int64
	var v uint64
	found := false
	t.AscendRange(-1<<63, 1<<63-1, func(key int64, val uint64) bool {
		k, v, found = key, val, true
		return false
	})
	return k, v, found
}

// Depth returns the height of the tree (1 for a lone leaf).
func (t *Tree) Depth() int {
	t.rootMu.RLock()
	n := t.root
	t.rootMu.RUnlock()
	d := 1
	for !n.leaf {
		n = n.children[0]
		d++
	}
	return d
}
