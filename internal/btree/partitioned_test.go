package btree

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeWorker simulates a DORA partition worker for access-path tests: a
// goroutine serving shipped closures from a channel, the way a partition
// serves applyMsgs. All operations an owner performs run on this loop,
// honouring the one-thread-per-subtree contract.
type fakeWorker struct {
	tok  *Owner
	ch   chan func(*Owner)
	wg   sync.WaitGroup
	runs int // closures served (loop-goroutine private)
}

func newFakeWorker() *fakeWorker {
	w := &fakeWorker{tok: NewOwner(), ch: make(chan func(*Owner), 64)}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for fn := range w.ch {
			fn(w.tok)
			w.runs++
		}
	}()
	return w
}

// do runs fn on the worker loop and waits.
func (w *fakeWorker) do(fn func(tok *Owner)) {
	done := make(chan struct{})
	w.ch <- func(tok *Owner) { fn(tok); close(done) }
	<-done
}

// exec is the OwnerExec hook shipped operations arrive through.
func (w *fakeWorker) exec() OwnerExec {
	return func(fn func(tok *Owner)) bool {
		done := make(chan struct{})
		w.ch <- func(tok *Owner) { fn(tok); close(done) }
		<-done
		return true
	}
}

func (w *fakeWorker) stop() {
	close(w.ch)
	w.wg.Wait()
}

// TestOwnerTokensDistinct guards against the zero-size-struct trap: Go
// hands every zero-size allocation the same address, which would make
// all ownership tokens compare equal and let any worker take the
// latch-free path into any subtree.
func TestOwnerTokensDistinct(t *testing.T) {
	seen := map[*Owner]bool{}
	for i := 0; i < 64; i++ {
		tok := NewOwner()
		if seen[tok] {
			t.Fatal("NewOwner returned a duplicate token pointer")
		}
		seen[tok] = true
	}
}

func TestPartitionedSharedPathBasics(t *testing.T) {
	pt := NewPartitioned(nil)
	for i := int64(0); i < 500; i++ {
		if err := pt.InsertAs(nil, i, uint64(i)*3); err != nil {
			t.Fatal(err)
		}
	}
	if pt.Len() != 500 {
		t.Fatalf("Len = %d", pt.Len())
	}
	v, err := pt.GetAs(nil, 123)
	if err != nil || v != 369 {
		t.Fatalf("Get: %d %v", v, err)
	}
	if err := pt.InsertAs(nil, 123, 1); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if _, err := pt.DeleteAs(nil, 123); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.GetAs(nil, 123); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	var got []int64
	pt.AscendRangeAs(nil, 100, 110, func(k int64, v uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 11 {
		t.Fatalf("scan hit %d keys", len(got))
	}
}

func TestPartitionedClaimOwnerAndForeign(t *testing.T) {
	pt := NewPartitioned(nil)
	for i := int64(0); i < 1000; i++ {
		if err := pt.InsertAs(nil, i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	a, b := newFakeWorker(), newFakeWorker()
	defer a.stop()
	defer b.stop()
	pt.Claim([]ClaimRange{
		{Lo: 0, Hi: 499, Owner: a.tok, Exec: a.exec()},
		{Lo: 500, Hi: 999, Owner: b.tok, Exec: b.exec()},
	})
	if n := pt.NumSubtrees(); n != 2 {
		t.Fatalf("subtrees = %d", n)
	}
	if n := pt.OwnedSubtrees(); n != 2 {
		t.Fatalf("owned = %d", n)
	}
	if pt.Len() != 1000 {
		t.Fatalf("Len after claim = %d", pt.Len())
	}
	// Owner-thread latch-free ops.
	a.do(func(tok *Owner) {
		if v, err := pt.GetAs(tok, 42); err != nil || v != 42 {
			t.Errorf("owner get: %d %v", v, err)
		}
		if err := pt.PutAs(tok, 42, 4242); err != nil {
			t.Errorf("owner put: %v", err)
		}
	})
	// Foreign (nil-token) ops ship to the owner and still work.
	if v, err := pt.GetAs(nil, 42); err != nil || v != 4242 {
		t.Fatalf("foreign get: %d %v", v, err)
	}
	// Cross-owner op: a touching b's range ships to b.
	a.do(func(tok *Owner) {
		if v, err := pt.GetAs(tok, 700); err != nil || v != 700 {
			t.Errorf("cross get: %d %v", v, err)
		}
	})
	// A full scan crosses both subtrees (and ships per segment).
	count := 0
	pt.AscendRangeAs(nil, 0, 999, func(k int64, v uint64) bool {
		count++
		return true
	})
	if count != 1000 {
		t.Fatalf("scan visited %d", count)
	}
	// Release: everything reverts to the shared latched path.
	pt.Release()
	if n := pt.OwnedSubtrees(); n != 0 {
		t.Fatalf("owned after release = %d", n)
	}
	if v, err := pt.GetAs(nil, 700); err != nil || v != 700 {
		t.Fatalf("shared get after release: %d %v", v, err)
	}
}

// TestPartitionedOwnershipViolationPanics: with an owner installed but no
// executor, a non-owner descent has no legal path — it must panic, not
// silently race into the latch-free subtree.
func TestPartitionedOwnershipViolationPanics(t *testing.T) {
	pt := NewPartitioned(nil)
	_ = pt.InsertAs(nil, 1, 1)
	pt.Claim([]ClaimRange{{Lo: 0, Hi: 100, Owner: NewOwner(), Exec: nil}})
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s by non-owner did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("Get", func() { _, _ = pt.GetAs(nil, 1) })
	assertPanics("Insert", func() { _ = pt.InsertAs(nil, 2, 2) })
	assertPanics("Scan", func() { pt.AscendRangeAs(nil, 0, 10, func(int64, uint64) bool { return true }) })
	assertPanics("Get with wrong token", func() { _, _ = pt.GetAs(NewOwner(), 1) })
}

// TestPartitionedMoveRange hands a suffix of an owned range to a new
// owner (the access-path half of a partition split) and checks both
// sides keep serving.
func TestPartitionedMoveRange(t *testing.T) {
	pt := NewPartitioned(nil)
	for i := int64(0); i < 400; i++ {
		_ = pt.InsertAs(nil, i, uint64(i))
	}
	a, b := newFakeWorker(), newFakeWorker()
	defer a.stop()
	defer b.stop()
	pt.Claim([]ClaimRange{{Lo: 0, Hi: 399, Owner: a.tok, Exec: a.exec()}})
	// Split: a hands [200, 399] to b, on a's own loop.
	a.do(func(tok *Owner) {
		pt.MoveRange(tok, 200, 399, b.tok, b.exec(), nil)
	})
	// Claim padded a's range to cover all of int64, so the interior move
	// cuts three pieces: [-inf,199] a, [200,399] b, [400,+inf] a.
	if n := pt.NumSubtrees(); n != 3 {
		t.Fatalf("subtrees after move = %d", n)
	}
	b.do(func(tok *Owner) {
		if v, err := pt.GetAs(tok, 300); err != nil || v != 300 {
			t.Errorf("new owner get: %d %v", v, err)
		}
		if err := pt.InsertAs(tok, 1300, 1300); err != nil {
			t.Errorf("new owner insert: %v", err)
		}
	})
	a.do(func(tok *Owner) {
		if v, err := pt.GetAs(tok, 100); err != nil || v != 100 {
			t.Errorf("old owner get: %d %v", v, err)
		}
	})
	if pt.Len() != 401 {
		t.Fatalf("Len after split = %d", pt.Len())
	}
	// Merge: b evacuates everything back to a by reassignment.
	b.do(func(tok *Owner) {
		pt.ReassignOwner(tok, a.tok, a.exec(), nil)
	})
	a.do(func(tok *Owner) {
		if v, err := pt.GetAs(tok, 1300); err != nil || v != 1300 {
			t.Errorf("post-merge get: %d %v", v, err)
		}
	})
}

// TestPartitionedConcurrentStress hammers a claimed tree from owner
// threads, cross-partition writers and foreign readers while a split and
// a merge run mid-traffic. Meant for -race: any non-owner descent into a
// latch-free subtree shows up as a data race.
func TestPartitionedConcurrentStress(t *testing.T) {
	const perOwner = 2000
	pt := NewPartitioned(nil)
	workers := make([]*fakeWorker, 4)
	claims := make([]ClaimRange, 4)
	for i := range workers {
		workers[i] = newFakeWorker()
		lo := int64(i) * 10000
		claims[i] = ClaimRange{Lo: lo, Hi: lo + 9999, Owner: workers[i].tok, Exec: workers[i].exec()}
	}
	pt.Claim(claims)

	var wg sync.WaitGroup
	// Each owner inserts/reads/deletes inside its own range, plus a few
	// cross-partition reads that must ship.
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *fakeWorker) {
			defer wg.Done()
			base := int64(i) * 10000
			for n := 0; n < perOwner; n++ {
				k := base + int64(n)%9000
				w.do(func(tok *Owner) {
					_ = pt.PutAs(tok, k, uint64(k))
					if v, err := pt.GetAs(tok, k); err != nil || v != uint64(k) {
						t.Errorf("owner %d get %d: %d %v", i, k, v, err)
					}
					// Cross-partition reads ship to a HIGHER-indexed owner
					// only: shipping blocks the sender until the target's
					// loop serves it, so the ship graph must stay acyclic
					// (the same constraint DORA's workloads obey — e.g.
					// TPC-C ships orders→order_line, never back).
					if n%97 == 0 && i < 3 {
						cross := (int64(i)+1)*10000 + int64(n)%4000
						_, _ = pt.GetAs(tok, cross)
					}
					if n%13 == 0 {
						_, _ = pt.DeleteAs(tok, k)
					}
				})
			}
		}(i, w)
	}
	// Foreign readers: nil-token gets and range scans across all ranges.
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				k := int64((n * 37) % 40000)
				_, _ = pt.GetAs(nil, k)
				if n%50 == 0 {
					pt.AscendRangeAs(nil, 5000, 15000, func(int64, uint64) bool { return true })
				}
			}
		}(r)
	}
	// Mid-traffic topology churn: worker 0 hands its upper half to a new
	// worker, which later merges back — the rebalance hand-off shape.
	extra := newFakeWorker()
	workers[0].do(func(tok *Owner) {
		pt.MoveRange(tok, 5000, 9999, extra.tok, extra.exec(), nil)
	})
	extra.do(func(tok *Owner) {
		_ = pt.PutAs(tok, 7777, 7777)
	})
	extra.do(func(tok *Owner) {
		pt.ReassignOwner(tok, workers[0].tok, workers[0].exec(), nil)
	})

	// Wait for the owner load, then stop the readers.
	wg.Wait()
	close(stop)
	readerWG.Wait()

	// Verify every surviving key reads back correctly over the shared
	// path after release.
	pt.Release()
	bad := 0
	pt.AscendRangeAs(nil, 0, 50000, func(k int64, v uint64) bool {
		if k != 7777 && uint64(k) != v {
			bad++
		}
		return true
	})
	if bad != 0 {
		t.Fatalf("%d keys with wrong values after stress", bad)
	}
	for _, w := range workers {
		w.stop()
	}
	extra.stop()
}

// TestBulkLoadShape checks the bulk loader produces a searchable,
// scannable tree at several sizes (including node-boundary edges).
func TestBulkLoadShape(t *testing.T) {
	for _, n := range []int{0, 1, bulkFill, bulkFill + 1, bulkFill * bulkFill, 5000} {
		pairs := make([]kv, n)
		for i := range pairs {
			pairs[i] = kv{int64(i * 2), uint64(i)}
		}
		tr := newTreeFromSorted(nil, pairs)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		for i := 0; i < n; i += 1 + n/17 {
			if v, err := tr.Get(int64(i * 2)); err != nil || v != uint64(i) {
				t.Fatalf("n=%d: Get(%d)=%d,%v", n, i*2, v, err)
			}
		}
		count := 0
		last := int64(-1)
		tr.AscendRange(-1, int64(2*n+5), func(k int64, v uint64) bool {
			if k <= last {
				t.Fatalf("n=%d: out-of-order scan", n)
			}
			last = k
			count++
			return true
		})
		if count != n {
			t.Fatalf("n=%d: scanned %d", n, count)
		}
		// The bulk-loaded tree must keep accepting inserts (splits work).
		if n > 0 {
			for i := 0; i < 200; i++ {
				if err := tr.Insert(int64(i*2+1), 9); err != nil {
					t.Fatalf("n=%d: post-load insert: %v", n, err)
				}
			}
		}
	}
}

// TestStopEarlyAcrossSubtrees ensures fn returning false stops a scan
// that spans owned subtrees.
func TestStopEarlyAcrossSubtrees(t *testing.T) {
	pt := NewPartitioned(nil)
	for i := int64(0); i < 100; i++ {
		_ = pt.InsertAs(nil, i, uint64(i))
	}
	a, b := newFakeWorker(), newFakeWorker()
	defer a.stop()
	defer b.stop()
	pt.Claim([]ClaimRange{
		{Lo: 0, Hi: 49, Owner: a.tok, Exec: a.exec()},
		{Lo: 50, Hi: 99, Owner: b.tok, Exec: b.exec()},
	})
	seen := 0
	pt.AscendRangeAs(nil, 0, 99, func(k int64, v uint64) bool {
		seen++
		return k < 60 // stop inside b's subtree
	})
	if seen != 61 {
		t.Fatalf("scan visited %d keys, want 61 (0..60 inclusive)", seen)
	}
}

// TestShipRetryPacing: the fail-back pacing discipline — the first
// rounds only yield (counted as retries, not waits), later rounds sleep
// with exponential growth capped at 1ms, and the stats expose the split.
func TestShipRetryPacing(t *testing.T) {
	pt := NewPartitioned(nil)
	for a := 0; a < shipRetryYields; a++ {
		pt.shipRetry(a)
	}
	if r, w := pt.ShipRetryStats(); r != int64(shipRetryYields) || w != 0 {
		t.Fatalf("yield-only rounds: retries=%d waits=%d", r, w)
	}
	// A deep attempt must sleep, but no longer than the cap (plus
	// scheduler slop).
	start := time.Now()
	pt.shipRetry(shipRetryYields + 20)
	el := time.Since(start)
	if el > 50*shipRetryMaxWait {
		t.Fatalf("capped backoff slept %v (cap %v)", el, shipRetryMaxWait)
	}
	if r, w := pt.ShipRetryStats(); r != int64(shipRetryYields)+1 || w != 1 {
		t.Fatalf("after deep attempt: retries=%d waits=%d", r, w)
	}
}
