package btree

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"dora/internal/metrics"
)

// This file implements the physiologically-partitioned access path
// (PLP-style MRBTree): a thin ordered root that fans out to per-key-range
// subtrees, each of which can be exclusively OWNED by one worker thread.
//
// Access protocol, per subtree:
//
//   - unowned (owner == nil): the conventional crabbed/latched Tree path,
//     exactly as before this structure existed. The conventional engine,
//     load phases, and recovery all run here.
//   - owned, caller == owner: the latch-free node path (nolatch.go). The
//     DORA partition worker that owns the logical key range descends its
//     own subtree with zero latch acquisitions.
//   - owned, caller != owner: the operation is SHIPPED to the owner and
//     re-executed on its thread via the OwnerExec hook installed at claim
//     time (in DORA: an inbox message). A non-owner can therefore never
//     descend an owned subtree — the ownership violation is impossible by
//     construction; if no executor was installed, it panics instead of
//     racing.
//
// Topology (the range→subtree map) is guarded by an RWMutex: every
// operation holds it shared for its duration, topology changes (Claim,
// Release, MoveRange, ReassignOwner) take it exclusively. The shared hold
// is a single uncontended atomic in the steady state and is deliberately
// NOT counted as a latch critical section — the per-node crabbing it
// replaces is what experiment E12 measures.

// Owner is an opaque ownership token. Subtree ownership is compared by
// token identity, never by integer worker ids, so an arbitrary session
// created with a colliding worker number cannot impersonate a partition
// worker. The struct is deliberately non-zero-sized: Go gives all
// zero-size allocations the same address, which would make every token
// compare equal.
type Owner struct{ _ byte }

// NewOwner mints a fresh ownership token.
func NewOwner() *Owner { return new(Owner) }

// OwnerExec runs fn on the goroutine that owns a subtree, passing that
// goroutine's own token, and blocks until fn completed. It returns false
// (without running fn) when the owner is gone — the caller re-resolves
// the topology and retries.
type OwnerExec func(fn func(tok *Owner)) bool

// ContExec runs a continuation k on the thread an asynchronous operation
// originated from — in DORA, the sender partition's inbox. A nil ContExec
// means "no home thread": the continuation runs inline on whichever
// thread completed the operation.
type ContExec func(k func())

// OwnerExecAsync ships fn to a subtree's owner WITHOUT blocking the
// caller — the continuation-passing counterpart of OwnerExec. It returns
// false when the ship could not even be enqueued (owner retired; done is
// NOT called and the caller re-resolves inline). When it returns true,
// done(ok) is invoked exactly once, delivered through home: ok=true
// after fn ran on the owner's thread, ok=false when the owner retired
// before running it (the caller re-resolves from the continuation).
type OwnerExecAsync func(home ContExec, fn func(tok *Owner), done func(ok bool)) bool

// AccessMethod is the index-structure contract the storage manager
// programs against: a shared latched Tree or a PartitionedTree. The
// caller token identifies which (if any) partition worker is asking;
// shared trees ignore it.
type AccessMethod interface {
	GetAs(caller *Owner, key int64) (uint64, error)
	InsertAs(caller *Owner, key int64, val uint64) error
	PutAs(caller *Owner, key int64, val uint64) error
	DeleteAs(caller *Owner, key int64) (uint64, error)
	AscendRangeAs(caller *Owner, lo, hi int64, fn func(key int64, val uint64) bool)
	// ExecAt runs fn on the thread that may exclusively access key's
	// subtree, passing that thread's ownership token — the subtree
	// owner's token when the subtree is claimed (shipping to its worker
	// if the caller is someone else), nil when the tree (or subtree) is
	// shared/latched (fn then runs inline on the caller's thread). The
	// storage manager wraps whole logical operations in it so every
	// access to owner-claimed data — index AND heap — executes on the
	// owning thread (thread-to-data down to the physical layer).
	ExecAt(caller *Owner, key int64, fn func(tok *Owner))
	// ExecAtAsync is ExecAt in continuation-passing style: instead of
	// parking the caller while a foreign operation ships, it returns as
	// soon as the ship is enqueued; done() fires exactly once after fn
	// ran, delivered through home (see ContExec). When key's subtree is
	// local (unowned, or owned by the caller) fn and done run inline
	// before ExecAtAsync returns — the aligned fast path costs no
	// message.
	ExecAtAsync(caller *Owner, key int64, home ContExec, fn func(tok *Owner), done func())
	// AscendRangeAsync is AscendRangeAs in continuation-passing style:
	// local segments scan inline, foreign segments ship to their owners
	// one at a time with the walk resuming from each continuation; done()
	// fires exactly once after the scan finished or fn stopped it.
	AscendRangeAsync(caller *Owner, lo, hi int64, home ContExec, fn func(key int64, val uint64) bool, done func())
	Len() int
}

// Tree implements AccessMethod by ignoring the caller: a plain tree is
// always shared and always latched.

// GetAs implements AccessMethod.
func (t *Tree) GetAs(_ *Owner, key int64) (uint64, error) { return t.Get(key) }

// InsertAs implements AccessMethod.
func (t *Tree) InsertAs(_ *Owner, key int64, val uint64) error { return t.Insert(key, val) }

// PutAs implements AccessMethod.
func (t *Tree) PutAs(_ *Owner, key int64, val uint64) error { return t.Put(key, val) }

// DeleteAs implements AccessMethod.
func (t *Tree) DeleteAs(_ *Owner, key int64) (uint64, error) { return t.Delete(key) }

// AscendRangeAs implements AccessMethod.
func (t *Tree) AscendRangeAs(_ *Owner, lo, hi int64, fn func(key int64, val uint64) bool) {
	t.AscendRange(lo, hi, fn)
}

// ExecAt implements AccessMethod: a plain tree is always shared, so fn
// runs inline with no ownership token.
func (t *Tree) ExecAt(_ *Owner, _ int64, fn func(tok *Owner)) { fn(nil) }

// ExecAtAsync implements AccessMethod: a shared tree never ships, so fn
// and the continuation run inline.
func (t *Tree) ExecAtAsync(_ *Owner, _ int64, _ ContExec, fn func(tok *Owner), done func()) {
	fn(nil)
	done()
}

// AscendRangeAsync implements AccessMethod: inline on a shared tree.
func (t *Tree) AscendRangeAsync(_ *Owner, lo, hi int64, _ ContExec, fn func(key int64, val uint64) bool, done func()) {
	t.AscendRange(lo, hi, fn)
	done()
}

// subtree is one contiguous key range [lo, hi] and its tree.
type subtree struct {
	lo, hi    int64
	owner     *Owner
	exec      OwnerExec
	execAsync OwnerExecAsync
	tree      *Tree
}

// PartitionedTree is the partitioned access method. The zero value is not
// usable; call NewPartitioned.
type PartitionedTree struct {
	cs *metrics.CriticalSectionStats

	// Ship-retry accounting: every fail-back re-resolution of a shipped
	// operation (stale hop, retired owner) counts a retry; the subset
	// that slept (past the yield-only rounds) counts a wait.
	retries    metrics.Counter
	retryWaits metrics.Counter

	mu   sync.RWMutex
	subs []*subtree // sorted by lo, contiguous, covering all of int64
}

// Ship-retry pacing. A fail-back retry loop re-resolves immediately
// for the first few rounds (the common transient: ownership moved one
// hop while the ship was in flight), then backs off with
// exponentially growing sleeps capped at shipRetryMaxWait — a long
// rebalance storm must not spin a core hot re-shipping into a
// topology that keeps moving.
const (
	shipRetryYields  = 4
	shipRetryMaxWait = time.Millisecond
)

// shipRetry paces one fail-back retry round.
func (pt *PartitionedTree) shipRetry(attempt int) {
	pt.retries.Inc()
	if attempt < shipRetryYields {
		runtime.Gosched()
		return
	}
	pt.retryWaits.Inc()
	shift := attempt - shipRetryYields
	if shift > 10 {
		shift = 10
	}
	d := time.Duration(int64(1)<<uint(shift)) * time.Microsecond
	if d > shipRetryMaxWait {
		d = shipRetryMaxWait
	}
	time.Sleep(d)
}

// ShipRetryStats returns the cumulative fail-back retry count and the
// subset that slept (see shipRetry); dora's ShipSnapshot aggregates
// these across a catalog.
func (pt *PartitionedTree) ShipRetryStats() (retries, waits int64) {
	return pt.retries.Load(), pt.retryWaits.Load()
}

// NewPartitioned returns a partitioned tree with a single unowned subtree
// spanning the whole key space — behaviourally identical to a shared
// latched Tree until someone claims ranges.
func NewPartitioned(cs *metrics.CriticalSectionStats) *PartitionedTree {
	return &PartitionedTree{
		cs:   cs,
		subs: []*subtree{{lo: math.MinInt64, hi: math.MaxInt64, tree: New(cs)}},
	}
}

// locate returns the subtree holding key. Callers hold pt.mu.
func (pt *PartitionedTree) locate(key int64) *subtree {
	subs := pt.subs
	i := sort.Search(len(subs), func(i int) bool { return subs[i].hi >= key })
	return subs[i]
}

// runAt executes op against the subtree holding key under the access
// protocol. op receives the tree and whether the latch-free path applies.
//
// A shipped operation that lands on a worker whose ownership has since
// moved on (split/merge raced the hand-off) does NOT chain another ship
// from that worker's thread: the worker's queue may be what the new
// owner is waiting on (a split target buffers everything until the
// source's adopt message, and the source's own queue could hold the
// blocking ship), so chaining deadlocks. Instead the stale hop fails
// back and the ORIGINAL caller re-resolves — ships are always a single
// sender→owner hop.
func (pt *PartitionedTree) runAt(caller *Owner, key int64, op func(t *Tree, latchFree bool)) {
	for attempt := 0; ; attempt++ {
		pt.mu.RLock()
		st := pt.locate(key)
		if st.owner == nil || st.owner == caller {
			op(st.tree, st.owner != nil)
			pt.mu.RUnlock()
			return
		}
		exec := st.exec
		pt.mu.RUnlock()
		if exec == nil {
			panic("btree: non-owner descent into an owned subtree (ownership violation: no owner executor installed)")
		}
		ran := false
		ok := exec(func(tok *Owner) {
			pt.mu.RLock()
			st := pt.locate(key)
			if st.owner != nil && st.owner != tok {
				pt.mu.RUnlock()
				return // stale hop: fail back, caller re-resolves
			}
			op(st.tree, st.owner != nil)
			pt.mu.RUnlock()
			ran = true
		})
		if ok && ran {
			return
		}
		// The owner retired or the range moved on between the topology
		// read and the hand-off; re-resolve.
		pt.shipRetry(attempt)
	}
}

// GetAs implements AccessMethod.
func (pt *PartitionedTree) GetAs(caller *Owner, key int64) (v uint64, err error) {
	pt.runAt(caller, key, func(t *Tree, lf bool) {
		if lf {
			v, err = t.getNL(key)
		} else {
			v, err = t.Get(key)
		}
	})
	return v, err
}

// InsertAs implements AccessMethod.
func (pt *PartitionedTree) InsertAs(caller *Owner, key int64, val uint64) (err error) {
	pt.runAt(caller, key, func(t *Tree, lf bool) {
		if lf {
			err = t.upsertNL(key, val, false)
		} else {
			err = t.Insert(key, val)
		}
	})
	return err
}

// PutAs implements AccessMethod.
func (pt *PartitionedTree) PutAs(caller *Owner, key int64, val uint64) (err error) {
	pt.runAt(caller, key, func(t *Tree, lf bool) {
		if lf {
			err = t.upsertNL(key, val, true)
		} else {
			err = t.Put(key, val)
		}
	})
	return err
}

// DeleteAs implements AccessMethod.
func (pt *PartitionedTree) DeleteAs(caller *Owner, key int64) (v uint64, err error) {
	pt.runAt(caller, key, func(t *Tree, lf bool) {
		if lf {
			v, err = t.deleteNL(key)
		} else {
			v, err = t.Delete(key)
		}
	})
	return v, err
}

// AscendRangeAs implements AccessMethod: the scan walks subtrees in key
// order, taking the owner-appropriate path per subtree. Cross-partition
// segments are shipped to their owners one segment at a time; like the
// shared tree's leaf-chain crabbing, the whole scan is fuzzy — point
// consistency comes from the lock protocol above, not from here.
func (pt *PartitionedTree) AscendRangeAs(caller *Owner, lo, hi int64, fn func(key int64, val uint64) bool) {
	pt.ascendAs(caller, lo, hi, fn)
}

// ascendAs reports whether the scan ran to completion.
func (pt *PartitionedTree) ascendAs(caller *Owner, lo, hi int64, fn func(key int64, val uint64) bool) bool {
	cur := lo
	for cur <= hi {
		var segHi int64
		done := true
		for attempt := 0; ; attempt++ {
			pt.mu.RLock()
			st := pt.locate(cur)
			segHi = st.hi
			if hi < segHi {
				segHi = hi
			}
			if st.owner == nil || st.owner == caller {
				if st.owner == nil {
					st.tree.AscendRange(cur, segHi, func(k int64, v uint64) bool {
						done = fn(k, v)
						return done
					})
				} else {
					done = st.tree.ascendRangeNL(cur, segHi, fn)
				}
				pt.mu.RUnlock()
				break
			}
			exec := st.exec
			pt.mu.RUnlock()
			if exec == nil {
				panic("btree: non-owner scan into an owned subtree (ownership violation: no owner executor installed)")
			}
			// Single-hop ship with stale-hop fail-back (see runAt).
			ran := false
			ok := exec(func(tok *Owner) {
				pt.mu.RLock()
				st := pt.locate(cur)
				if st.owner != nil && st.owner != tok {
					pt.mu.RUnlock()
					return
				}
				segHi = st.hi
				if hi < segHi {
					segHi = hi
				}
				if st.owner == nil {
					st.tree.AscendRange(cur, segHi, func(k int64, v uint64) bool {
						done = fn(k, v)
						return done
					})
				} else {
					done = st.tree.ascendRangeNL(cur, segHi, fn)
				}
				pt.mu.RUnlock()
				ran = true
			})
			if ok && ran {
				break
			}
			pt.shipRetry(attempt)
		}
		if !done {
			return false
		}
		if segHi == math.MaxInt64 {
			return true
		}
		cur = segHi + 1
	}
	return true
}

// ExecAt implements AccessMethod: fn runs on the thread owning key's
// subtree with that thread's token (shipping through the owner executor
// when the caller is someone else), or inline with a nil token when the
// subtree is unowned. Unlike runAt it does NOT hold the topology lock
// while fn runs: fn is an arbitrary logical operation (it may touch the
// heap, the log, or other subtrees of this or other trees), so it
// re-enters the access methods normally. The thread guarantee is what
// matters: while fn runs on the owner, no latch-free access of that
// owner can race it.
func (pt *PartitionedTree) ExecAt(caller *Owner, key int64, fn func(tok *Owner)) {
	for attempt := 0; ; attempt++ {
		pt.mu.RLock()
		st := pt.locate(key)
		owner, exec := st.owner, st.exec
		pt.mu.RUnlock()
		if owner == nil || owner == caller {
			fn(owner)
			return
		}
		if exec == nil {
			panic("btree: ExecAt into an owned subtree with no owner executor installed")
		}
		// Single-hop ship with stale-hop fail-back (see runAt): the
		// landing worker re-checks ownership and runs fn only if the
		// subtree is still (or now shared-)accessible from its thread.
		ran := false
		ok := exec(func(tok *Owner) {
			pt.mu.RLock()
			st := pt.locate(key)
			cur := st.owner
			pt.mu.RUnlock()
			if cur != nil && cur != tok {
				return // stale hop: fail back, caller re-resolves
			}
			fn(cur)
			ran = true
		})
		if ok && ran {
			return
		}
		// Owner retired or the range moved on between the topology read
		// and the hand-off (split/merge/shutdown race); re-resolve.
		pt.shipRetry(attempt)
	}
}

// Len sums the subtree sizes.
func (pt *PartitionedTree) Len() int {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	n := 0
	for _, st := range pt.subs {
		n += st.tree.Len()
	}
	return n
}

// NumSubtrees reports the current fan-out of the root (statistics).
func (pt *PartitionedTree) NumSubtrees() int {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	return len(pt.subs)
}

// OwnedSubtrees reports how many subtrees currently have an owner.
func (pt *PartitionedTree) OwnedSubtrees() int {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	n := 0
	for _, st := range pt.subs {
		if st.owner != nil {
			n++
		}
	}
	return n
}

// ClaimRange assigns [Lo, Hi] (in index-key space) to Owner, whose
// foreign-access executor is Exec. ExecAsync, when non-nil, additionally
// enables continuation-passing ships into the range: async operations
// (ExecAtAsync, AscendRangeAsync) use it instead of parking on Exec.
type ClaimRange struct {
	Lo, Hi    int64
	Owner     *Owner
	Exec      OwnerExec
	ExecAsync OwnerExecAsync
}

// Claim physically re-partitions the tree into one subtree per claim
// range and installs the owners. Ranges are sorted and padded to cover
// the whole key space (the first extends to -inf, the last to +inf, and
// interior gaps attach to the range below them), mirroring the routing
// table's clamping. Claim requires a quiesced tree: no concurrent
// operations may be in flight — in DORA it runs at engine construction,
// before any worker accepts actions.
func (pt *PartitionedTree) Claim(ranges []ClaimRange) {
	if len(ranges) == 0 {
		return
	}
	rs := append([]ClaimRange(nil), ranges...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	rs[0].Lo = math.MinInt64
	for i := 0; i+1 < len(rs); i++ {
		rs[i].Hi = rs[i+1].Lo - 1
	}
	rs[len(rs)-1].Hi = math.MaxInt64

	pt.mu.Lock()
	defer pt.mu.Unlock()
	var pairs []kv
	for _, st := range pt.subs {
		st.tree.ascendRangeNL(math.MinInt64, math.MaxInt64, func(k int64, v uint64) bool {
			pairs = append(pairs, kv{k, v})
			return true
		})
	}
	subs := make([]*subtree, 0, len(rs))
	idx := 0
	for _, r := range rs {
		end := idx
		for end < len(pairs) && pairs[end].k <= r.Hi {
			end++
		}
		subs = append(subs, &subtree{
			lo: r.Lo, hi: r.Hi, owner: r.Owner, exec: r.Exec, execAsync: r.ExecAsync,
			tree: newTreeFromSorted(pt.cs, pairs[idx:end]),
		})
		idx = end
	}
	pt.subs = subs
}

// Release drops all ownership: every subtree becomes shared/latched. The
// topology is kept (no data movement). Safe to call at any time; new
// operations see the shared path immediately, and callers parked in the
// ship-retry loop fall through to it.
func (pt *PartitionedTree) Release() {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	for _, st := range pt.subs {
		st.owner, st.exec, st.execAsync = nil, nil, nil
	}
}

// MoveRange hands the key interval [lo, hi] from its current owner (the
// calling token) to newOwner — the access-path half of a partition split.
// Subtrees fully inside the interval change owner in place (no data
// movement, which is also how merges adopt whole subtrees); partial
// overlaps are physically extracted into fresh subtrees. Unowned subtrees
// in the interval stay shared (nothing to hand over). Must be called on
// the owning worker's goroutine, so no latch-free access can be in
// flight. newAsync may be nil (blocking-ships configuration).
func (pt *PartitionedTree) MoveRange(caller *Owner, lo, hi int64, newOwner *Owner, newExec OwnerExec, newAsync OwnerExecAsync) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	var out []*subtree
	for _, st := range pt.subs {
		if st.hi < lo || st.lo > hi || st.owner == nil {
			out = append(out, st)
			continue
		}
		if st.owner != caller {
			panic("btree: MoveRange by a non-owner of an affected subtree")
		}
		if lo <= st.lo && st.hi <= hi {
			st.owner, st.exec, st.execAsync = newOwner, newExec, newAsync
			out = append(out, st)
			continue
		}
		cutLo, cutHi := st.lo, st.hi
		if lo > cutLo {
			cutLo = lo
		}
		if hi < cutHi {
			cutHi = hi
		}
		moved := st.tree.extractRangeNL(cutLo, cutHi)
		if st.lo < cutLo {
			out = append(out, &subtree{lo: st.lo, hi: cutLo - 1, owner: st.owner, exec: st.exec, execAsync: st.execAsync, tree: st.tree})
			out = append(out, &subtree{lo: cutLo, hi: cutHi, owner: newOwner, exec: newExec, execAsync: newAsync, tree: newTreeFromSorted(pt.cs, moved)})
			if cutHi < st.hi {
				rest := st.tree.extractRangeNL(cutHi+1, st.hi)
				out = append(out, &subtree{lo: cutHi + 1, hi: st.hi, owner: st.owner, exec: st.exec, execAsync: st.execAsync, tree: newTreeFromSorted(pt.cs, rest)})
			}
		} else {
			out = append(out, &subtree{lo: cutLo, hi: cutHi, owner: newOwner, exec: newExec, execAsync: newAsync, tree: newTreeFromSorted(pt.cs, moved)})
			if cutHi < st.hi {
				out = append(out, &subtree{lo: cutHi + 1, hi: st.hi, owner: st.owner, exec: st.exec, execAsync: st.execAsync, tree: st.tree})
			}
		}
	}
	pt.subs = out
}

// ReassignOwner points every subtree owned by from at to (merge
// evacuation: the adopting worker takes the retiring worker's subtrees
// wholesale, no data movement). Must be called on the retiring owner's
// goroutine. execAsync may be nil (blocking-ships configuration).
func (pt *PartitionedTree) ReassignOwner(from, to *Owner, exec OwnerExec, execAsync OwnerExecAsync) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	for _, st := range pt.subs {
		if st.owner == from {
			st.owner, st.exec, st.execAsync = to, exec, execAsync
		}
	}
}

// CompactStats reports what one CompactOwned pass did.
type CompactStats struct {
	// Merged counts subtrees folded into an adjacent same-owner
	// neighbour (each merge of k subtrees counts k-1).
	Merged int
	// Rebuilt counts sparse subtrees bulk-rebuilt in place.
	Rebuilt int
	// Ghosts counts the empty/underfull leaf nodes the merges and
	// rebuilds released — the lazy-deletion residue.
	Ghosts int
}

// CompactOwned is the access-path half of background physical
// maintenance: it merges runs of ADJACENT subtrees owned by the caller
// into single subtrees (repeated split/merge cycles leave the retiring
// side's subtrees behind, growing root fan-out without bound) and
// bulk-rebuilds subtrees whose leaf occupancy fell below minUtil of the
// bulk-load fill (lazy deletion keeps empty and underfull leaves — the
// "ghosts" — forever otherwise). Both transformations preserve contents
// exactly; indexes are volatile, so nothing is logged.
//
// Must be called on the owning worker's goroutine: taking the topology
// lock exclusively there guarantees no latch-free descent of the caller
// is in flight, and every other accessor is either parked on the lock
// or shipping through the owner executor (serialized behind this call).
func (pt *PartitionedTree) CompactOwned(caller *Owner, minUtil float64) CompactStats {
	var cs CompactStats
	if caller == nil {
		return cs
	}
	if minUtil <= 0 || minUtil > 1 {
		minUtil = 0.5
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	var out []*subtree
	i := 0
	for i < len(pt.subs) {
		st := pt.subs[i]
		if st.owner != caller {
			out = append(out, st)
			i++
			continue
		}
		// Extent of the adjacent same-owner run starting at i.
		j := i + 1
		for j < len(pt.subs) && pt.subs[j].owner == caller {
			j++
		}
		run := pt.subs[i:j]
		leaves, keys := 0, 0
		for _, s := range run {
			l, k := s.tree.leafStatsNL()
			leaves, keys = leaves+l, keys+k
		}
		// A rebuild can only help when the tree has more leaves than a
		// bulk load of its keys needs: a small or already-minimal tree
		// below the occupancy target must NOT count as work, or the
		// daemon's converge-until-no-work loop never reaches its fixed
		// point (it would rebuild the same minimal shape forever).
		minLeaves := (keys + bulkFill - 1) / bulkFill
		if minLeaves < 1 {
			minLeaves = 1
		}
		sparse := leaves > minLeaves && float64(keys) < float64(leaves*bulkFill)*minUtil
		merged := st
		if len(run) > 1 || sparse {
			var pairs []kv
			for _, s := range run {
				s.tree.ascendRangeNL(math.MinInt64, math.MaxInt64, func(k int64, v uint64) bool {
					pairs = append(pairs, kv{k, v})
					return true
				})
			}
			merged = &subtree{
				lo: run[0].lo, hi: run[len(run)-1].hi,
				owner: caller, exec: st.exec, execAsync: st.execAsync,
				tree: newTreeFromSorted(pt.cs, pairs),
			}
			newLeaves, _ := merged.tree.leafStatsNL()
			cs.Merged += len(run) - 1
			if len(run) == 1 {
				cs.Rebuilt++
			}
			if freed := leaves - newLeaves; freed > 0 {
				cs.Ghosts += freed
			}
		}
		out = append(out, merged)
		i = j
	}
	pt.subs = out
	return cs
}

// SubtreeStat aggregates the tree's physical-shape statistics for the
// maintenance daemon's decay detection and the monitor.
type SubtreeStat struct {
	Subtrees int // root fan-out
	Owned    int // subtrees with an owner
	Keys     int
	Leaves   int
}

// ShapeStats walks every subtree and reports fan-out, ownership and
// leaf occupancy. Leaf counts are read under the topology lock via the
// latch-free walkers; concurrent owned-subtree mutations are excluded
// because their owners' operations hold the lock shared for their
// duration — the counts are exact at a quiesce and advisory otherwise.
func (pt *PartitionedTree) ShapeStats() SubtreeStat {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	var s SubtreeStat
	s.Subtrees = len(pt.subs)
	for _, st := range pt.subs {
		if st.owner != nil {
			s.Owned++
		}
		l, k := st.tree.leafStatsNL()
		s.Leaves += l
		s.Keys += k
	}
	return s
}
