package btree

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"dora/internal/metrics"
)

// This file implements the physiologically-partitioned access path
// (PLP-style MRBTree): a thin ordered root that fans out to per-key-range
// subtrees, each of which can be exclusively OWNED by one worker thread.
//
// Access protocol, per subtree:
//
//   - unowned (owner == nil): the conventional crabbed/latched Tree path,
//     exactly as before this structure existed. The conventional engine,
//     load phases, and recovery all run here.
//   - owned, caller == owner: the latch-free node path (nolatch.go). The
//     DORA partition worker that owns the logical key range descends its
//     own subtree with zero latch acquisitions.
//   - owned, caller != owner: the operation is SHIPPED to the owner and
//     re-executed on its thread via the OwnerExec hook installed at claim
//     time (in DORA: an inbox message). A non-owner can therefore never
//     descend an owned subtree — the ownership violation is impossible by
//     construction; if no executor was installed, it panics instead of
//     racing.
//
// Topology (the range→subtree map) is guarded by an RWMutex: every
// operation holds it shared for its duration, topology changes (Claim,
// Release, MoveRange, ReassignOwner) take it exclusively. The shared hold
// is a single uncontended atomic in the steady state and is deliberately
// NOT counted as a latch critical section — the per-node crabbing it
// replaces is what experiment E12 measures.

// Owner is an opaque ownership token. Subtree ownership is compared by
// token identity, never by integer worker ids, so an arbitrary session
// created with a colliding worker number cannot impersonate a partition
// worker. The struct is deliberately non-zero-sized: Go gives all
// zero-size allocations the same address, which would make every token
// compare equal.
type Owner struct{ _ byte }

// NewOwner mints a fresh ownership token.
func NewOwner() *Owner { return new(Owner) }

// OwnerExec runs fn on the goroutine that owns a subtree, passing that
// goroutine's own token, and blocks until fn completed. It returns false
// (without running fn) when the owner is gone — the caller re-resolves
// the topology and retries.
type OwnerExec func(fn func(tok *Owner)) bool

// AccessMethod is the index-structure contract the storage manager
// programs against: a shared latched Tree or a PartitionedTree. The
// caller token identifies which (if any) partition worker is asking;
// shared trees ignore it.
type AccessMethod interface {
	GetAs(caller *Owner, key int64) (uint64, error)
	InsertAs(caller *Owner, key int64, val uint64) error
	PutAs(caller *Owner, key int64, val uint64) error
	DeleteAs(caller *Owner, key int64) (uint64, error)
	AscendRangeAs(caller *Owner, lo, hi int64, fn func(key int64, val uint64) bool)
	Len() int
}

// Tree implements AccessMethod by ignoring the caller: a plain tree is
// always shared and always latched.

// GetAs implements AccessMethod.
func (t *Tree) GetAs(_ *Owner, key int64) (uint64, error) { return t.Get(key) }

// InsertAs implements AccessMethod.
func (t *Tree) InsertAs(_ *Owner, key int64, val uint64) error { return t.Insert(key, val) }

// PutAs implements AccessMethod.
func (t *Tree) PutAs(_ *Owner, key int64, val uint64) error { return t.Put(key, val) }

// DeleteAs implements AccessMethod.
func (t *Tree) DeleteAs(_ *Owner, key int64) (uint64, error) { return t.Delete(key) }

// AscendRangeAs implements AccessMethod.
func (t *Tree) AscendRangeAs(_ *Owner, lo, hi int64, fn func(key int64, val uint64) bool) {
	t.AscendRange(lo, hi, fn)
}

// subtree is one contiguous key range [lo, hi] and its tree.
type subtree struct {
	lo, hi int64
	owner  *Owner
	exec   OwnerExec
	tree   *Tree
}

// PartitionedTree is the partitioned access method. The zero value is not
// usable; call NewPartitioned.
type PartitionedTree struct {
	cs *metrics.CriticalSectionStats

	mu   sync.RWMutex
	subs []*subtree // sorted by lo, contiguous, covering all of int64
}

// NewPartitioned returns a partitioned tree with a single unowned subtree
// spanning the whole key space — behaviourally identical to a shared
// latched Tree until someone claims ranges.
func NewPartitioned(cs *metrics.CriticalSectionStats) *PartitionedTree {
	return &PartitionedTree{
		cs:   cs,
		subs: []*subtree{{lo: math.MinInt64, hi: math.MaxInt64, tree: New(cs)}},
	}
}

// locate returns the subtree holding key. Callers hold pt.mu.
func (pt *PartitionedTree) locate(key int64) *subtree {
	subs := pt.subs
	i := sort.Search(len(subs), func(i int) bool { return subs[i].hi >= key })
	return subs[i]
}

// runAt executes op against the subtree holding key under the access
// protocol. op receives the tree and whether the latch-free path applies.
func (pt *PartitionedTree) runAt(caller *Owner, key int64, op func(t *Tree, latchFree bool)) {
	for {
		pt.mu.RLock()
		st := pt.locate(key)
		if st.owner == nil || st.owner == caller {
			op(st.tree, st.owner != nil)
			pt.mu.RUnlock()
			return
		}
		exec := st.exec
		pt.mu.RUnlock()
		if exec == nil {
			panic("btree: non-owner descent into an owned subtree (ownership violation: no owner executor installed)")
		}
		if exec(func(tok *Owner) { pt.runAt(tok, key, op) }) {
			return
		}
		// The owner retired between the topology read and the hand-off
		// (split/merge/shutdown race); re-resolve.
		runtime.Gosched()
	}
}

// GetAs implements AccessMethod.
func (pt *PartitionedTree) GetAs(caller *Owner, key int64) (v uint64, err error) {
	pt.runAt(caller, key, func(t *Tree, lf bool) {
		if lf {
			v, err = t.getNL(key)
		} else {
			v, err = t.Get(key)
		}
	})
	return v, err
}

// InsertAs implements AccessMethod.
func (pt *PartitionedTree) InsertAs(caller *Owner, key int64, val uint64) (err error) {
	pt.runAt(caller, key, func(t *Tree, lf bool) {
		if lf {
			err = t.upsertNL(key, val, false)
		} else {
			err = t.Insert(key, val)
		}
	})
	return err
}

// PutAs implements AccessMethod.
func (pt *PartitionedTree) PutAs(caller *Owner, key int64, val uint64) (err error) {
	pt.runAt(caller, key, func(t *Tree, lf bool) {
		if lf {
			err = t.upsertNL(key, val, true)
		} else {
			err = t.Put(key, val)
		}
	})
	return err
}

// DeleteAs implements AccessMethod.
func (pt *PartitionedTree) DeleteAs(caller *Owner, key int64) (v uint64, err error) {
	pt.runAt(caller, key, func(t *Tree, lf bool) {
		if lf {
			v, err = t.deleteNL(key)
		} else {
			v, err = t.Delete(key)
		}
	})
	return v, err
}

// AscendRangeAs implements AccessMethod: the scan walks subtrees in key
// order, taking the owner-appropriate path per subtree. Cross-partition
// segments are shipped to their owners one segment at a time; like the
// shared tree's leaf-chain crabbing, the whole scan is fuzzy — point
// consistency comes from the lock protocol above, not from here.
func (pt *PartitionedTree) AscendRangeAs(caller *Owner, lo, hi int64, fn func(key int64, val uint64) bool) {
	pt.ascendAs(caller, lo, hi, fn)
}

// ascendAs reports whether the scan ran to completion.
func (pt *PartitionedTree) ascendAs(caller *Owner, lo, hi int64, fn func(key int64, val uint64) bool) bool {
	cur := lo
	for cur <= hi {
		var segHi int64
		done := true
		for {
			pt.mu.RLock()
			st := pt.locate(cur)
			segHi = st.hi
			if hi < segHi {
				segHi = hi
			}
			if st.owner == nil || st.owner == caller {
				if st.owner == nil {
					st.tree.AscendRange(cur, segHi, func(k int64, v uint64) bool {
						done = fn(k, v)
						return done
					})
				} else {
					done = st.tree.ascendRangeNL(cur, segHi, fn)
				}
				pt.mu.RUnlock()
				break
			}
			exec := st.exec
			pt.mu.RUnlock()
			if exec == nil {
				panic("btree: non-owner scan into an owned subtree (ownership violation: no owner executor installed)")
			}
			if exec(func(tok *Owner) { done = pt.ascendAs(tok, cur, segHi, fn) }) {
				break
			}
			runtime.Gosched()
		}
		if !done {
			return false
		}
		if segHi == math.MaxInt64 {
			return true
		}
		cur = segHi + 1
	}
	return true
}

// Len sums the subtree sizes.
func (pt *PartitionedTree) Len() int {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	n := 0
	for _, st := range pt.subs {
		n += st.tree.Len()
	}
	return n
}

// NumSubtrees reports the current fan-out of the root (statistics).
func (pt *PartitionedTree) NumSubtrees() int {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	return len(pt.subs)
}

// OwnedSubtrees reports how many subtrees currently have an owner.
func (pt *PartitionedTree) OwnedSubtrees() int {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	n := 0
	for _, st := range pt.subs {
		if st.owner != nil {
			n++
		}
	}
	return n
}

// ClaimRange assigns [Lo, Hi] (in index-key space) to Owner, whose
// foreign-access executor is Exec.
type ClaimRange struct {
	Lo, Hi int64
	Owner  *Owner
	Exec   OwnerExec
}

// Claim physically re-partitions the tree into one subtree per claim
// range and installs the owners. Ranges are sorted and padded to cover
// the whole key space (the first extends to -inf, the last to +inf, and
// interior gaps attach to the range below them), mirroring the routing
// table's clamping. Claim requires a quiesced tree: no concurrent
// operations may be in flight — in DORA it runs at engine construction,
// before any worker accepts actions.
func (pt *PartitionedTree) Claim(ranges []ClaimRange) {
	if len(ranges) == 0 {
		return
	}
	rs := append([]ClaimRange(nil), ranges...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	rs[0].Lo = math.MinInt64
	for i := 0; i+1 < len(rs); i++ {
		rs[i].Hi = rs[i+1].Lo - 1
	}
	rs[len(rs)-1].Hi = math.MaxInt64

	pt.mu.Lock()
	defer pt.mu.Unlock()
	var pairs []kv
	for _, st := range pt.subs {
		st.tree.ascendRangeNL(math.MinInt64, math.MaxInt64, func(k int64, v uint64) bool {
			pairs = append(pairs, kv{k, v})
			return true
		})
	}
	subs := make([]*subtree, 0, len(rs))
	idx := 0
	for _, r := range rs {
		end := idx
		for end < len(pairs) && pairs[end].k <= r.Hi {
			end++
		}
		subs = append(subs, &subtree{
			lo: r.Lo, hi: r.Hi, owner: r.Owner, exec: r.Exec,
			tree: newTreeFromSorted(pt.cs, pairs[idx:end]),
		})
		idx = end
	}
	pt.subs = subs
}

// Release drops all ownership: every subtree becomes shared/latched. The
// topology is kept (no data movement). Safe to call at any time; new
// operations see the shared path immediately, and callers parked in the
// ship-retry loop fall through to it.
func (pt *PartitionedTree) Release() {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	for _, st := range pt.subs {
		st.owner, st.exec = nil, nil
	}
}

// MoveRange hands the key interval [lo, hi] from its current owner (the
// calling token) to newOwner — the access-path half of a partition split.
// Subtrees fully inside the interval change owner in place (no data
// movement, which is also how merges adopt whole subtrees); partial
// overlaps are physically extracted into fresh subtrees. Unowned subtrees
// in the interval stay shared (nothing to hand over). Must be called on
// the owning worker's goroutine, so no latch-free access can be in
// flight.
func (pt *PartitionedTree) MoveRange(caller *Owner, lo, hi int64, newOwner *Owner, newExec OwnerExec) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	var out []*subtree
	for _, st := range pt.subs {
		if st.hi < lo || st.lo > hi || st.owner == nil {
			out = append(out, st)
			continue
		}
		if st.owner != caller {
			panic("btree: MoveRange by a non-owner of an affected subtree")
		}
		if lo <= st.lo && st.hi <= hi {
			st.owner, st.exec = newOwner, newExec
			out = append(out, st)
			continue
		}
		cutLo, cutHi := st.lo, st.hi
		if lo > cutLo {
			cutLo = lo
		}
		if hi < cutHi {
			cutHi = hi
		}
		moved := st.tree.extractRangeNL(cutLo, cutHi)
		if st.lo < cutLo {
			out = append(out, &subtree{lo: st.lo, hi: cutLo - 1, owner: st.owner, exec: st.exec, tree: st.tree})
			out = append(out, &subtree{lo: cutLo, hi: cutHi, owner: newOwner, exec: newExec, tree: newTreeFromSorted(pt.cs, moved)})
			if cutHi < st.hi {
				rest := st.tree.extractRangeNL(cutHi+1, st.hi)
				out = append(out, &subtree{lo: cutHi + 1, hi: st.hi, owner: st.owner, exec: st.exec, tree: newTreeFromSorted(pt.cs, rest)})
			}
		} else {
			out = append(out, &subtree{lo: cutLo, hi: cutHi, owner: newOwner, exec: newExec, tree: newTreeFromSorted(pt.cs, moved)})
			if cutHi < st.hi {
				out = append(out, &subtree{lo: cutHi + 1, hi: st.hi, owner: st.owner, exec: st.exec, tree: st.tree})
			}
		}
	}
	pt.subs = out
}

// ReassignOwner points every subtree owned by from at to (merge
// evacuation: the adopting worker takes the retiring worker's subtrees
// wholesale, no data movement). Must be called on the retiring owner's
// goroutine.
func (pt *PartitionedTree) ReassignOwner(from, to *Owner, exec OwnerExec) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	for _, st := range pt.subs {
		if st.owner == from {
			st.owner, st.exec = to, exec
		}
	}
}
