package btree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 {
		t.Fatal("empty tree should have Len 0")
	}
	if _, err := tr.Get(1); err != ErrNotFound {
		t.Fatalf("Get on empty: %v", err)
	}
	if _, err := tr.Delete(1); err != ErrNotFound {
		t.Fatalf("Delete on empty: %v", err)
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty should report false")
	}
}

func TestInsertGetSequential(t *testing.T) {
	tr := New(nil)
	const n = 10000
	for i := int64(0); i < n; i++ {
		if err := tr.Insert(i, uint64(i*2)); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if tr.Depth() < 2 {
		t.Fatal("tree should have split")
	}
	for i := int64(0); i < n; i++ {
		v, err := tr.Get(i)
		if err != nil || v != uint64(i*2) {
			t.Fatalf("Get(%d) = %d, %v", i, v, err)
		}
	}
}

func TestInsertReverseAndRandom(t *testing.T) {
	for name, keys := range map[string][]int64{
		"reverse": genKeys(5000, func(i int) int64 { return int64(5000 - i) }),
		"random":  shuffled(5000),
	} {
		tr := New(nil)
		for _, k := range keys {
			if err := tr.Insert(k, uint64(k)); err != nil {
				t.Fatalf("%s Insert(%d): %v", name, k, err)
			}
		}
		for _, k := range keys {
			if v, err := tr.Get(k); err != nil || v != uint64(k) {
				t.Fatalf("%s Get(%d) = %d, %v", name, k, v, err)
			}
		}
	}
}

func genKeys(n int, f func(int) int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func shuffled(n int) []int64 {
	rng := rand.New(rand.NewSource(42))
	out := genKeys(n, func(i int) int64 { return int64(i) })
	rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func TestDuplicateInsert(t *testing.T) {
	tr := New(nil)
	if err := tr.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, 20); err != ErrExists {
		t.Fatalf("duplicate Insert: %v", err)
	}
	if v, _ := tr.Get(1); v != 10 {
		t.Fatal("duplicate insert must not overwrite")
	}
	if err := tr.Put(1, 20); err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Get(1); v != 20 {
		t.Fatal("Put must overwrite")
	}
}

func TestDelete(t *testing.T) {
	tr := New(nil)
	keys := shuffled(3000)
	for _, k := range keys {
		_ = tr.Insert(k, uint64(k))
	}
	for i, k := range keys {
		v, err := tr.Delete(k)
		if err != nil || v != uint64(k) {
			t.Fatalf("Delete(%d) = %d, %v", k, v, err)
		}
		if _, err := tr.Get(k); err != ErrNotFound {
			t.Fatalf("Get after delete: %v", err)
		}
		// Every undeleted key must still be present.
		if i%500 == 0 {
			for _, k2 := range keys[i+1:] {
				if _, err := tr.Get(k2); err != nil {
					t.Fatalf("lost key %d after deleting %d", k2, k)
				}
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after deleting all = %d", tr.Len())
	}
}

func TestAscendRange(t *testing.T) {
	tr := New(nil)
	for i := int64(0); i < 1000; i += 2 {
		_ = tr.Insert(i, uint64(i))
	}
	var got []int64
	tr.AscendRange(100, 200, func(k int64, v uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 51 {
		t.Fatalf("range [100,200] returned %d keys, want 51", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("range scan not sorted")
	}
	if got[0] != 100 || got[len(got)-1] != 200 {
		t.Fatalf("range endpoints: %d..%d", got[0], got[len(got)-1])
	}
	// Early termination.
	count := 0
	tr.AscendRange(0, 1000, func(k int64, v uint64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestNegativeKeys(t *testing.T) {
	tr := New(nil)
	for _, k := range []int64{-100, -1, 0, 1, 100} {
		_ = tr.Insert(k, uint64(k+1000))
	}
	var got []int64
	tr.AscendRange(-200, 200, func(k int64, v uint64) bool {
		got = append(got, k)
		return true
	})
	want := []int64{-100, -1, 0, 1, 100}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestQuickModel compares the tree against a map+sort model.
func TestQuickModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(nil)
		model := map[int64]uint64{}
		for op := 0; op < 2000; op++ {
			k := int64(rng.Intn(500))
			switch rng.Intn(4) {
			case 0, 1:
				v := rng.Uint64()
				err := tr.Insert(k, v)
				if _, exists := model[k]; exists {
					if err != ErrExists {
						return false
					}
				} else if err != nil {
					return false
				} else {
					model[k] = v
				}
			case 2:
				v, err := tr.Get(k)
				want, exists := model[k]
				if exists != (err == nil) {
					return false
				}
				if exists && v != want {
					return false
				}
			case 3:
				v, err := tr.Delete(k)
				want, exists := model[k]
				if exists != (err == nil) {
					return false
				}
				if exists {
					if v != want {
						return false
					}
					delete(model, k)
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		// Full scan must equal sorted model.
		var keys []int64
		for k := range model {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		var scanned []int64
		tr.AscendRange(-1<<62, 1<<62, func(k int64, v uint64) bool {
			scanned = append(scanned, k)
			return v == model[k]
		})
		if len(scanned) != len(keys) {
			return false
		}
		for i := range keys {
			if scanned[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReadersWriters hammers the tree from many goroutines and
// verifies no key is lost (run with -race for the real assertion).
func TestConcurrentReadersWriters(t *testing.T) {
	tr := New(nil)
	const (
		writers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := int64(w*perW + i)
				if err := tr.Insert(k, uint64(k)); err != nil {
					t.Errorf("Insert(%d): %v", k, err)
					return
				}
				if i%7 == 0 {
					// Interleave reads of our own keys.
					if v, err := tr.Get(k); err != nil || v != uint64(k) {
						t.Errorf("Get(%d) = %d, %v", k, v, err)
						return
					}
				}
			}
		}(w)
	}
	// Concurrent scanners.
	stop := make(chan struct{})
	var scanWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		scanWG.Add(1)
		go func() {
			defer scanWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				prev := int64(-1)
				tr.AscendRange(0, writers*perW, func(k int64, v uint64) bool {
					if k <= prev {
						t.Errorf("scan out of order: %d after %d", k, prev)
						return false
					}
					prev = k
					return true
				})
			}
		}()
	}
	wg.Wait()
	close(stop)
	scanWG.Wait()
	if tr.Len() != writers*perW {
		t.Fatalf("Len = %d, want %d", tr.Len(), writers*perW)
	}
	for k := int64(0); k < writers*perW; k++ {
		if v, err := tr.Get(k); err != nil || v != uint64(k) {
			t.Fatalf("lost key %d: %d, %v", k, v, err)
		}
	}
}

func TestConcurrentMixed(t *testing.T) {
	tr := New(nil)
	for k := int64(0); k < 10000; k++ {
		_ = tr.Insert(k, uint64(k))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			// Each worker owns keys k where k%8==w: deletes and reinserts.
			for i := 0; i < 3000; i++ {
				k := int64(rng.Intn(1250))*8 + int64(w)
				switch rng.Intn(3) {
				case 0:
					_, _ = tr.Delete(k)
				case 1:
					_ = tr.Put(k, uint64(k))
				case 2:
					if v, err := tr.Get(k); err == nil && v != uint64(k) {
						t.Errorf("Get(%d) = %d", k, v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
