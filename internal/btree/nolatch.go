package btree

import "dora/internal/metrics"

// Latch-free node path. Every function in this file descends or mutates
// the tree WITHOUT taking a single node latch. The safety contract is
// ownership, not luck: the caller must be the one thread that currently
// owns the whole (sub)tree — in this repo, the DORA partition worker a
// PartitionedTree subtree was claimed for, or a quiesced topology
// operation (Claim/MoveRange) that excludes all other access. This is the
// PLP/MRBTree idea: once the thread that owns the logical key range also
// owns the physical subtree, its descents need no physical protection at
// all, and the per-node crabbing of the shared path disappears from the
// critical-section profile.

// getNL is Get without latches.
func (t *Tree) getNL(key int64) (uint64, error) {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i, ok := leafIndex(n.keys, key)
	if !ok {
		return 0, ErrNotFound
	}
	return n.vals[i], nil
}

// upsertNL is upsert without latches (same split-while-descending shape).
func (t *Tree) upsertNL(key int64, val uint64, overwrite bool) error {
	n := t.root
	if n.full() {
		left := t.root
		mid, right := t.split(left)
		t.root = &node{
			leaf:     false,
			keys:     []int64{mid},
			children: []*node{left, right},
		}
		n = t.root
	}
	for !n.leaf {
		i := childIndex(n.keys, key)
		c := n.children[i]
		if c.full() {
			mid, right := t.split(c)
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = mid
			n.children = append(n.children, nil)
			copy(n.children[i+2:], n.children[i+1:])
			n.children[i+1] = right
			if key >= mid {
				c = right
			}
		}
		n = c
	}
	i, ok := leafIndex(n.keys, key)
	if ok {
		if !overwrite {
			return ErrExists
		}
		n.vals[i] = val
		return nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	n.vals = append(n.vals, 0)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = val
	t.size.Inc()
	return nil
}

// deleteNL is Delete without latches.
func (t *Tree) deleteNL(key int64) (uint64, error) {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i, ok := leafIndex(n.keys, key)
	if !ok {
		return 0, ErrNotFound
	}
	v := n.vals[i]
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.size.Add(-1)
	return v, nil
}

// ascendRangeNL is AscendRange without latches; it reports whether the
// scan ran to completion (false: fn stopped it).
func (t *Tree) ascendRangeNL(lo, hi int64, fn func(key int64, val uint64) bool) bool {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, lo)]
	}
	i, _ := leafIndex(n.keys, lo)
	for {
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return true
			}
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		if n.next == nil {
			return true
		}
		n = n.next
		i = 0
	}
}

// leafStatsNL counts leaf nodes and live keys by walking the leaf chain
// without latches (ownership or a quiesced/exclusively-held topology is
// the caller's contract, as for every walker in this file).
func (t *Tree) leafStatsNL() (leaves, keys int) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		leaves++
		keys += len(n.keys)
		n = n.next
	}
	return leaves, keys
}

// kv is a key/value pair for bulk moves between subtrees.
type kv struct {
	k int64
	v uint64
}

// extractRangeNL removes every pair with lo <= key <= hi and returns them
// in ascending order (subtree hand-over during partition splits). Source
// leaves keep their lazy-deletion shape.
func (t *Tree) extractRangeNL(lo, hi int64) []kv {
	var out []kv
	t.ascendRangeNL(lo, hi, func(k int64, v uint64) bool {
		out = append(out, kv{k, v})
		return true
	})
	for _, p := range out {
		if _, err := t.deleteNL(p.k); err != nil {
			panic("btree: extractRangeNL lost a key mid-extraction")
		}
	}
	return out
}

// bulkFill is the per-node occupancy bulk loads aim for: full enough to
// keep trees shallow, loose enough that the first few inserts after a
// re-partition do not split every leaf they touch.
const bulkFill = Order * 3 / 4

// newTreeFromSorted bulk-loads a tree from ascending pairs.
func newTreeFromSorted(cs *metrics.CriticalSectionStats, pairs []kv) *Tree {
	if len(pairs) == 0 {
		return New(cs)
	}
	var level []*node
	var firsts []int64
	for i := 0; i < len(pairs); i += bulkFill {
		j := i + bulkFill
		if j > len(pairs) {
			j = len(pairs)
		}
		n := &node{leaf: true}
		for _, p := range pairs[i:j] {
			n.keys = append(n.keys, p.k)
			n.vals = append(n.vals, p.v)
		}
		if len(level) > 0 {
			level[len(level)-1].next = n
		}
		level = append(level, n)
		firsts = append(firsts, pairs[i].k)
	}
	for len(level) > 1 {
		var up []*node
		var ufirsts []int64
		for i := 0; i < len(level); i += bulkFill {
			j := i + bulkFill
			if j > len(level) {
				j = len(level)
			}
			n := &node{children: append([]*node(nil), level[i:j]...)}
			n.keys = append(n.keys, firsts[i+1:j]...)
			up = append(up, n)
			ufirsts = append(ufirsts, firsts[i])
		}
		level, firsts = up, ufirsts
	}
	t := &Tree{root: level[0], cs: cs}
	t.size.Add(int64(len(pairs)))
	return t
}
