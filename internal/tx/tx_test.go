package tx

import (
	"sync"
	"testing"
)

func TestIDGenUnique(t *testing.T) {
	var g IDGen
	seen := sync.Map{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				id := g.NewTxn().ID
				if _, dup := seen.LoadOrStore(id, true); dup {
					t.Errorf("duplicate txn id %d", id)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestEnsureAtLeast(t *testing.T) {
	var g IDGen
	g.EnsureAtLeast(100)
	if id := g.NewTxn().ID; id <= 100 {
		t.Fatalf("id = %d, want > 100", id)
	}
	g.EnsureAtLeast(50) // lowering must be a no-op
	if id := g.NewTxn().ID; id <= 100 {
		t.Fatalf("id = %d after no-op lower", id)
	}
}

func TestChainOrdering(t *testing.T) {
	txn := &Txn{ID: 1}
	var order []uint64
	for i := uint64(1); i <= 5; i++ {
		txn.Chain(func(prev uint64) uint64 {
			order = append(order, prev)
			return i * 10
		})
	}
	want := []uint64{0, 10, 20, 30, 40}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("chain order %v", order)
		}
	}
	if txn.LastLSN() != 50 {
		t.Fatalf("last = %d", txn.LastLSN())
	}
}

func TestConcurrentChain(t *testing.T) {
	// DORA runs actions of one txn on several workers; the chain must
	// stay consistent: each append sees the previous LSN.
	txn := &Txn{ID: 1}
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	next := make(chan uint64, 1000)
	for i := 0; i < 1000; i++ {
		next <- uint64(i+1) * 7
	}
	close(next)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lsn := range next {
				txn.Chain(func(prev uint64) uint64 {
					mu.Lock()
					if seen[prev] {
						t.Errorf("prev %d seen twice", prev)
					}
					seen[prev] = true
					mu.Unlock()
					return lsn
				})
			}
		}()
	}
	wg.Wait()
}

func TestUndoReverseOrder(t *testing.T) {
	txn := &Txn{ID: 1}
	for i := int64(0); i < 5; i++ {
		txn.AddUndo(Undo{Key: i})
	}
	if txn.UndoCount() != 5 {
		t.Fatalf("count = %d", txn.UndoCount())
	}
	undos := txn.TakeUndos()
	for i, u := range undos {
		if u.Key != int64(4-i) {
			t.Fatalf("undo order: %v", undos)
		}
	}
	if txn.UndoCount() != 0 {
		t.Fatal("TakeUndos must clear")
	}
}

func TestStatusTransitions(t *testing.T) {
	txn := &Txn{ID: 1}
	if txn.Status() != Active {
		t.Fatal("new txn not active")
	}
	txn.SetStatus(Committed)
	if txn.Status() != Committed {
		t.Fatal("status not set")
	}
	if Active.String() != "active" || Committed.String() != "committed" || Aborted.String() != "aborted" {
		t.Fatal("status strings")
	}
}
