// Package tx defines the transaction context shared by both engines:
// identity, status, the per-transaction log-record chain, and the
// in-memory logical undo list used for rollback.
//
// A Txn must tolerate concurrent use: under DORA, actions of the same
// transaction execute in parallel on different partition workers, all
// logging against the same context.
package tx

import (
	"sync"
	"sync/atomic"

	"dora/internal/storage"
	"dora/internal/trace"
)

// Status is the transaction state.
type Status uint8

const (
	// Active transactions may read and write.
	Active Status = iota
	// Committed transactions are durable.
	Committed
	// Aborted transactions have been rolled back.
	Aborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	}
	return "unknown"
}

// UndoKind tells how to compensate an operation.
type UndoKind uint8

const (
	// UInsert is undone by deleting the inserted record.
	UInsert UndoKind = iota + 1
	// UUpdate is undone by restoring the before image.
	UUpdate
	// UDelete is undone by re-inserting the before image.
	UDelete
)

// Undo is one logical undo entry.
type Undo struct {
	Kind   UndoKind
	Table  uint32
	Key    int64
	RID    storage.RID
	Before []byte // encoded before image (update, delete)
	// LSN is the log record this entry compensates; PrevLSN its chain
	// predecessor (becomes the CLR's UndoNext).
	LSN     uint64
	PrevLSN uint64
}

// Txn is a transaction context.
type Txn struct {
	// ID is the globally unique transaction id.
	ID uint64

	// Trace is non-nil when this transaction was sampled by the latency
	// tracer; every TxnTrace method tolerates nil, so instrumentation
	// sites use it unguarded. Set once at admission, read from workers
	// and the commit pipeline.
	Trace *trace.TxnTrace

	mu       sync.Mutex
	status   Status
	lastLSN  uint64
	firstLSN uint64
	undos    []Undo
}

// IDGen allocates transaction ids.
type IDGen struct{ next atomic.Uint64 }

// NewTxn returns a fresh active transaction.
func (g *IDGen) NewTxn() *Txn { return &Txn{ID: g.next.Add(1)} }

// EnsureAtLeast raises the generator so future ids exceed v (recovery
// must not reuse ids that appear in the log).
func (g *IDGen) EnsureAtLeast(v uint64) {
	for {
		cur := g.next.Load()
		if cur >= v {
			return
		}
		if g.next.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Status returns the current state.
func (t *Txn) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// SetStatus transitions the state.
func (t *Txn) SetStatus(s Status) {
	t.mu.Lock()
	t.status = s
	t.mu.Unlock()
}

// LastLSN returns the most recent log record of this transaction.
func (t *Txn) LastLSN() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastLSN
}

// FirstLSN returns the transaction's earliest log record, or 0 if it has
// not logged anything. Log truncation must keep every record from the
// oldest active transaction's first LSN onward, so its rollback can read
// the chain.
func (t *Txn) FirstLSN() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.firstLSN
}

// Chain atomically runs fn with the current chain head and installs the
// LSN fn returns as the new head. The storage manager calls this with a
// closure that appends the log record, keeping the per-transaction
// PrevLSN chain consistent even when DORA runs actions in parallel.
func (t *Txn) Chain(fn func(prev uint64) uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	lsn := fn(t.lastLSN)
	t.lastLSN = lsn
	if t.firstLSN == 0 {
		t.firstLSN = lsn
	}
	return lsn
}

// AddUndo appends a logical undo entry.
func (t *Txn) AddUndo(u Undo) {
	t.mu.Lock()
	t.undos = append(t.undos, u)
	t.mu.Unlock()
}

// TakeUndos returns the undo entries in apply (reverse) order and clears
// the list. Called exactly once, by rollback.
func (t *Txn) TakeUndos() []Undo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Undo, len(t.undos))
	for i, u := range t.undos {
		out[len(t.undos)-1-i] = u
	}
	t.undos = nil
	return out
}

// UndoCount returns the number of pending undo entries.
func (t *Txn) UndoCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.undos)
}
