package exp

import (
	"fmt"
	"math/rand"

	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/engine/conventional"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/workload"
	"dora/internal/workload/tatp"
	"dora/internal/workload/tpcb"
	"dora/internal/workload/tpcc"
	"dora/internal/xct"
)

// E1AccessPatterns reproduces the demo's "Access Patterns" panel
// (Figure 1): per-worker record-access traces on TATP for both engines,
// summarized by the predictability statistics — conventional workers
// wander the whole subscriber key space while each DORA worker stays
// inside its partition.
func E1AccessPatterns(c Config) (*Table, error) {
	c = c.fill()
	tb := &Table{
		Title:  "E1  access patterns (demo Fig. 1): subscriber-table traces, TATP",
		Header: []string{"engine", "workers", "accesses", "mean run len", "key spread"},
		Caption: "key spread = mean fraction of the key space one worker touches\n" +
			"(1/partitions for DORA, →1 for conventional); run len = consecutive\n" +
			"accesses by the same worker.",
	}
	for _, which := range []string{"conventional", "dora"} {
		tracer := metrics.NewAccessTracer(200000)
		cs := &metrics.CriticalSectionStats{}
		s, err := sm.Open(sm.Options{Frames: 1 << 14, CS: cs, Tracer: tracer})
		if err != nil {
			return nil, err
		}
		defer s.Close()
		db, err := tatp.Load(s, c.Subscribers)
		if err != nil {
			return nil, err
		}
		var e engine.Engine
		if which == "dora" {
			e = dora.New(s, dora.Config{PartitionsPerTable: c.Partitions, Domains: db.Domains()})
		} else {
			e = conventional.New(s)
		}
		tracer.Reset() // discard the load phase
		clients := c.Clients
		if clients < 8 {
			clients = 8
		}
		dr := workload.Driver{
			Engine: e, Mix: db.NewMix(tatp.MixOptions{}),
			Clients: clients, Duration: c.Duration, Seed: 11,
		}
		dr.Run()
		// Keep only worker-thread accesses: DORA's coordinator session
		// (worker -1) performs resolver probes that are not part of the
		// per-micro-engine access pattern the demo panel shows.
		trace := tracer.Trace()
		kept := trace[:0]
		for _, a := range trace {
			if a.Worker >= 0 {
				kept = append(kept, a)
			}
		}
		st := metrics.Predictability(kept, int(db.Subscriber.ID))
		tb.Rows = append(tb.Rows, []string{
			which, d2(int64(st.Workers)), d2(int64(st.Accesses)),
			f2(st.MeanRunLength), f2(st.KeySpread),
		})
		_ = e.Close()
	}
	return tb, nil
}

// E2VaryingLoad reproduces "Performance Under Varying Load": TATP
// throughput as the client population sweeps from idle through saturated
// to oversubscribed, for both engines.
func E2VaryingLoad(c Config, clientSteps []int) (*Table, error) {
	c = c.fill()
	if len(clientSteps) == 0 {
		// Idle (1) through saturated to heavily oversubscribed: the demo
		// shows DORA's queues acting as admission control out here.
		clientSteps = []int{1, 4, 16, 64, 256}
	}
	tb := &Table{
		Title:  "E2  throughput vs clients (demo: idle -> saturated -> oversubscribed), TATP",
		Header: []string{"clients", "conventional tps", "dora tps", "dora/conv"},
	}
	for _, n := range clientSteps {
		if n < 1 {
			n = 1
		}
		tps := map[string]float64{}
		for _, which := range []string{"conventional", "dora"} {
			db, e, _, closeRig, err := tatpRig(c, which)
			if err != nil {
				return nil, err
			}
			dr := workload.Driver{
				Engine: e, Mix: db.NewMix(tatp.MixOptions{}),
				Clients: n, Duration: c.Duration, Seed: 22,
			}
			res := dr.Run()
			tps[which] = res.Throughput
			closeRig()
		}
		ratio := 0.0
		if tps["conventional"] > 0 {
			ratio = tps["dora"] / tps["conventional"]
		}
		tb.Rows = append(tb.Rows, []string{
			d2(int64(n)), f1(tps["conventional"]), f1(tps["dora"]), f2(ratio),
		})
	}
	return tb, nil
}

// E3IntraParallel reproduces the idle-load claim: with a single client,
// DORA exploits intra-transaction parallelism (parallel actions of one
// phase run on different micro-engines) to cut response time. Per-action
// weight simulates non-trivial actions.
func E3IntraParallel(c Config) (*Table, error) {
	c = c.fill()
	work := c.ActionWork
	if work == 0 {
		work = 30000 // ~tens of µs per action
	}
	tb := &Table{
		Title:  "E3  single-client response time (intra-transaction parallelism), TPC-B-style",
		Header: []string{"engine", "mean latency us", "p95 us"},
		Caption: fmt.Sprintf("transaction = 3 parallel single-site writes + history insert; "+
			"action weight = %d spin iterations", work),
	}
	for _, which := range []string{"conventional", "dora"} {
		cs := &metrics.CriticalSectionStats{}
		s, err := sm.Open(sm.Options{Frames: 1 << 13, CS: cs})
		if err != nil {
			return nil, err
		}
		defer s.Close()
		db, err := tpcb.Load(s, c.Branches, 100)
		if err != nil {
			return nil, err
		}
		var e engine.Engine
		if which == "dora" {
			e = dora.New(s, dora.Config{PartitionsPerTable: c.Partitions, Domains: db.Domains()})
		} else {
			e = conventional.New(s)
		}
		mix := tpcbWorkMix(db, work)
		dr := workload.Driver{Engine: e, Mix: mix, Clients: 1, Duration: c.Duration, Seed: 33}
		res := dr.Run()
		tb.Rows = append(tb.Rows, []string{which, f1(res.LatencyMeanUS), d2(res.P95US)})
		_ = e.Close()
	}
	return tb, nil
}

// tpcbWorkMix is the TPC-B mix with simulated per-action compute, so the
// intra-transaction parallelism of DORA's parallel actions is visible.
func tpcbWorkMix(db *tpcb.DB, work int) workload.Mix {
	base := db.NewMix(nil)
	inner := base[0].Build
	base[0].Build = func(rng *rand.Rand) *xct.Flow {
		flow := inner(rng)
		for pi := range flow.Phases {
			for _, a := range flow.Phases[pi].Actions {
				run := a.Run
				a.Run = func(env *xct.Env) error {
					spin(work)
					return run(env)
				}
			}
		}
		return flow
	}
	return base
}

// E4CriticalSections reproduces the paper's core claim (§1): the number
// of lock-manager critical sections entered per committed transaction.
// DORA bypasses the centralized lock manager entirely, so its lock-
// manager row is zero; latching and log serialization remain in both.
func E4CriticalSections(c Config) (*Table, error) {
	c = c.fill()
	tb := &Table{
		Title: "E4  critical sections per committed transaction, TATP mix",
		Header: []string{"engine", "lockmgr/txn", "latch/txn", "log/txn",
			"contended/txn", "total/txn"},
	}
	for _, which := range []string{"conventional", "dora"} {
		db, e, cs, closeRig, err := tatpRig(c, which)
		if err != nil {
			return nil, err
		}
		cs.Reset() // exclude the load phase
		dr := workload.Driver{
			Engine: e, Mix: db.NewMix(tatp.MixOptions{}),
			Clients: c.Clients, Duration: c.Duration, Seed: 44,
		}
		res := dr.Run()
		snap := cs.Snapshot()
		n := float64(res.Committed)
		if n == 0 {
			n = 1
		}
		tb.Rows = append(tb.Rows, []string{
			which,
			f2(float64(snap.LockMgr) / n),
			f2(float64(snap.Latch) / n),
			f2(float64(snap.Log) / n),
			f2(float64(snap.Contended) / n),
			f2(float64(snap.Total()) / n),
		})
		closeRig()
	}
	return tb, nil
}

// E5PeakThroughput reproduces the headline comparison: peak throughput
// of both engines on TATP, TPC-C and TPC-B at saturation.
func E5PeakThroughput(c Config) (*Table, error) {
	c = c.fill()
	tb := &Table{
		Title:  "E5  peak throughput at saturation (tps)",
		Header: []string{"workload", "conventional", "dora", "dora/conv"},
	}
	type bench struct {
		name string
		run  func(which string) (float64, error)
	}
	benches := []bench{
		{"TATP", func(which string) (float64, error) {
			db, e, _, closeRig, err := tatpRig(c, which)
			if err != nil {
				return 0, err
			}
			defer closeRig()
			res := (&workload.Driver{
				Engine: e, Mix: db.NewMix(tatp.MixOptions{}),
				Clients: c.Clients, Duration: c.Duration, Seed: 55,
			}).Run()
			return res.Throughput, nil
		}},
		{"TATP read-only", func(which string) (float64, error) {
			db, e, _, closeRig, err := tatpRig(c, which)
			if err != nil {
				return 0, err
			}
			defer closeRig()
			res := (&workload.Driver{
				Engine: e, Mix: db.ReadOnlyMix(tatp.MixOptions{}),
				Clients: c.Clients, Duration: c.Duration, Seed: 56,
			}).Run()
			return res.Throughput, nil
		}},
		{"TPC-C", func(which string) (float64, error) {
			cs := &metrics.CriticalSectionStats{}
			s, err := sm.Open(sm.Options{Frames: 1 << 14, CS: cs})
			if err != nil {
				return 0, err
			}
			defer s.Close()
			db, err := tpcc.Load(s, tpcc.DefaultScale(c.Warehouses))
			if err != nil {
				return 0, err
			}
			var e engine.Engine
			if which == "dora" {
				e = dora.New(s, dora.Config{PartitionsPerTable: c.Partitions, Domains: db.Domains()})
			} else {
				e = conventional.New(s)
			}
			defer e.Close()
			res := (&workload.Driver{
				Engine: e, Mix: db.NewMix(tpcc.MixOptions{}),
				Clients: c.Clients, Duration: c.Duration, Seed: 57,
			}).Run()
			return res.Throughput, nil
		}},
		{"TPC-B", func(which string) (float64, error) {
			cs := &metrics.CriticalSectionStats{}
			s, err := sm.Open(sm.Options{Frames: 1 << 13, CS: cs})
			if err != nil {
				return 0, err
			}
			defer s.Close()
			db, err := tpcb.Load(s, c.Branches, 1000)
			if err != nil {
				return 0, err
			}
			var e engine.Engine
			if which == "dora" {
				e = dora.New(s, dora.Config{PartitionsPerTable: c.Partitions, Domains: db.Domains()})
			} else {
				e = conventional.New(s)
			}
			defer e.Close()
			res := (&workload.Driver{
				Engine: e, Mix: db.NewMix(nil),
				Clients: c.Clients, Duration: c.Duration, Seed: 58,
			}).Run()
			return res.Throughput, nil
		}},
	}
	for _, b := range benches {
		conv, err := b.run("conventional")
		if err != nil {
			return nil, fmt.Errorf("%s conventional: %w", b.name, err)
		}
		dra, err := b.run("dora")
		if err != nil {
			return nil, fmt.Errorf("%s dora: %w", b.name, err)
		}
		ratio := 0.0
		if conv > 0 {
			ratio = dra / conv
		}
		tb.Rows = append(tb.Rows, []string{b.name, f1(conv), f1(dra), f2(ratio)})
	}
	return tb, nil
}
