//go:build race

package exp

// raceEnabled reports whether the race detector is instrumenting this
// build; performance-assertion tests skip themselves under it.
const raceEnabled = true
