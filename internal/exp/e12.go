package exp

import (
	"fmt"

	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/engine/conventional"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/workload"
	"dora/internal/workload/tatp"
)

// E12AccessPathLatching measures what the partitioned access path
// (PLP-style per-partition B+tree subtrees) removes: B+tree node latch
// crabbing. It runs E4's TATP rig three ways — the conventional engine,
// DORA over the shared latched trees (the pre-PLP baseline,
// Config.SharedAccessPath), and DORA over claimed per-partition subtrees
// — and reports critical sections per committed transaction plus
// throughput at saturation.
//
// The "index latch/txn" column counts only B+tree node latches (the
// access-path serialization); "latch/txn" is the full class including
// buffer-frame/page latches, which remain physical in every mode because
// heap pages are shared structures. The conventional engine never claims
// subtrees, so its numbers are unchanged by this PR — the partitioned
// path is gated on ownership, and ownership only exists under DORA.
func E12AccessPathLatching(c Config) (*Table, error) {
	c = c.fill()
	tb := &Table{
		Title: "E12  access-path latching: B+tree node latches per committed transaction, TATP mix",
		Header: []string{"engine", "index latch/txn", "latch/txn", "contended/txn",
			"lockmgr/txn", "tps"},
		Caption: "index latch/txn = B+tree node crabbing only (what per-partition\n" +
			"subtree ownership removes); latch/txn also counts buffer-frame/page\n" +
			"latches, which remain in all modes. dora/shared = partitioned access\n" +
			"path disabled (pre-PLP baseline).",
	}
	type mode struct {
		name   string
		which  string
		shared bool
	}
	modes := []mode{
		{"conventional", "conventional", false},
		{"dora/shared", "dora", true},
		{"dora/plp", "dora", false},
	}
	for _, m := range modes {
		db, e, cs, closeRig, err := tatpRigAccessPath(c, m.which, m.shared)
		if err != nil {
			return nil, fmt.Errorf("e12 %s: %w", m.name, err)
		}
		cs.Reset() // exclude the load phase and claim-time rebuilds
		dr := workload.Driver{
			Engine: e, Mix: db.NewMix(tatp.MixOptions{}),
			Clients: c.Clients, Duration: c.Duration, Seed: 1212,
		}
		res := dr.Run()
		snap := cs.Snapshot()
		n := float64(res.Committed)
		if n == 0 {
			n = 1
		}
		tb.Rows = append(tb.Rows, []string{
			m.name,
			f2(float64(snap.IndexLatch) / n),
			f2(float64(snap.Latch) / n),
			f2(float64(snap.Contended) / n),
			f2(float64(snap.LockMgr) / n),
			f1(res.Throughput),
		})
		closeRig()
	}
	return tb, nil
}

// tatpRigAccessPath is tatpRig with an access-path toggle for DORA.
func tatpRigAccessPath(c Config, which string, sharedAP bool) (db *tatp.DB, e engine.Engine, cs *metrics.CriticalSectionStats, close func(), err error) {
	cs = &metrics.CriticalSectionStats{}
	s, err := sm.Open(sm.Options{Frames: 1 << 14, CS: cs})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	db, err = tatp.Load(s, c.Subscribers)
	if err != nil {
		_ = s.Close()
		return nil, nil, nil, nil, err
	}
	switch which {
	case "conventional":
		e = conventional.New(s)
	case "dora":
		e = dora.New(s, dora.Config{
			PartitionsPerTable: c.Partitions,
			Domains:            db.Domains(),
			SharedAccessPath:   sharedAP,
		})
	default:
		_ = s.Close()
		return nil, nil, nil, nil, fmt.Errorf("exp: unknown engine %q", which)
	}
	return db, e, cs, func() { _ = e.Close(); _ = s.Close() }, nil
}
