package exp

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"dora/internal/catalog"
	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/maint"
	"dora/internal/workload"
	"dora/internal/workload/tatp"
)

// E13PhysicalMaintenance measures background physical maintenance (the
// internal/maint daemon): how the partitioned physical layout decays
// under repartitioning and how paced heap-page migration/re-stamping and
// subtree compaction converge it back.
//
// The metric is the fraction of owner-thread (partition-aligned) heap
// record reads that still had to take a buffer-frame latch — 1.0 right
// after load (the loader is a shared session, so no page is stamped),
// ~0 once maintenance has migrated or re-stamped every page under the
// current routing topology. A split/merge storm (110 cycles) with
// traffic running then decays the layout mid-run — moved ranges lose
// their stamps and root fan-out grows with every split — and a final
// maintenance drain re-converges both: the latched-read fraction
// returns to ~0 and compaction folds the fan-out back under 2x the
// partition count. The conventional engine has no ownership and no
// maintenance; its row is the unchanged baseline.
func E13PhysicalMaintenance(c Config) (*Table, error) {
	c = c.fill()
	tb := &Table{
		Title: "E13  physical maintenance: frame latches on aligned reads, fan-out under repartitioning, TATP",
		Header: []string{"engine", "phase", "latched/owned read", "fan-out",
			"pages stamped", "migrated", "tps"},
		Caption: "latched/owned read = owner-thread heap reads that took a frame latch\n" +
			"(the class heap-page ownership stamping removes; n/a without ownership);\n" +
			"fan-out = widest subscriber index root. storm = 110 split/merge cycles\n" +
			"with traffic running. conventional is the unchanged baseline.",
	}

	// Conventional baseline: no ownership, no maintenance, no stamps.
	{
		db, e, _, closeRig, err := tatpRig(c, "conventional")
		if err != nil {
			return nil, fmt.Errorf("e13 conventional: %w", err)
		}
		_, tps := measureAligned(c, db, e)
		if total := ownedReadTotal(db); total != 0 {
			closeRig()
			return nil, fmt.Errorf("e13: conventional engine performed %d owned reads, want 0", total)
		}
		tb.Rows = append(tb.Rows, []string{"conventional", "steady", "n/a", "-", "-", "-", f1(tps)})
		closeRig()
	}

	// DORA + maintenance daemon (driven synchronously for deterministic
	// phase boundaries; the paced loop reaches the same fixed points).
	db, e, _, closeRig, err := tatpRig(c, "dora")
	if err != nil {
		return nil, fmt.Errorf("e13 dora: %w", err)
	}
	defer closeRig()
	eng := e.(*dora.Dora)
	d := maint.New(db.SM, eng, maint.Config{})
	defer d.Close()

	row := func(phase string) {
		r, tps := measureAligned(c, db, e)
		st := d.Snapshot()
		tb.Rows = append(tb.Rows, []string{
			"dora+maint", phase, f3(r), d2(int64(maxFanout(db))),
			d2(st.PagesStamped), d2(st.RecordsMigrated), f1(tps),
		})
	}

	row("fresh load") // everything unstamped: ratio ~1
	d.Drain()
	row("converged") // migration drained: ratio ~0
	storm(eng, db, 110)
	row("decayed") // moved ranges lost stamps, fan-out grew
	d.Drain()
	row("re-converged") // drained again: ratio ~0, fan-out compacted
	return tb, nil
}

// storm runs split/merge cycles against the subscriber table while a
// light foreground mix keeps the engine busy (the mid-run repartition).
func storm(eng *dora.Dora, db *tatp.DB, cycles int) {
	var stop atomic.Bool
	var wg sync.WaitGroup
	for cl := 0; cl < 2; cl++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			mix := db.NewMix(tatp.MixOptions{})
			for !stop.Load() {
				f := mix[rng.Intn(len(mix))]
				_ = eng.Exec(int(seed), f.Build(rng))
			}
		}(int64(cl + 1))
	}
	for i := 0; i < cycles; i++ {
		rt := eng.Router("subscriber")
		ranges := rt.Ranges()
		r := ranges[i%len(ranges)]
		if r.Hi-r.Lo < 2 {
			continue
		}
		nw, err := eng.SplitPartition("subscriber", r.Part, r.Lo+(r.Hi-r.Lo)/2)
		if err != nil {
			continue
		}
		if err := eng.MergePartition("subscriber", nw, r.Part); err != nil {
			panic(fmt.Sprintf("e13 storm merge: %v", err))
		}
	}
	stop.Store(true)
	wg.Wait()
}

// measureAligned resets the owned-read counters, runs the aligned
// (read-only) TATP mix, and reports latched/total plus throughput.
func measureAligned(c Config, db *tatp.DB, e engine.Engine) (float64, float64) {
	for _, tbl := range tatpTables(db) {
		tbl.Heap.OwnedReads.Reset()
		tbl.Heap.OwnedReadsLatched.Reset()
	}
	dr := workload.Driver{
		Engine: e, Mix: db.ReadOnlyMix(tatp.MixOptions{}),
		Clients: c.Clients, Duration: c.Duration, Seed: 1414,
	}
	res := dr.Run()
	var total, latched int64
	for _, tbl := range tatpTables(db) {
		total += tbl.Heap.OwnedReads.Load()
		latched += tbl.Heap.OwnedReadsLatched.Load()
	}
	if total == 0 {
		return 0, res.Throughput
	}
	return float64(latched) / float64(total), res.Throughput
}

func ownedReadTotal(db *tatp.DB) int64 {
	var total int64
	for _, tbl := range tatpTables(db) {
		total += tbl.Heap.OwnedReads.Load()
	}
	return total
}

// maxFanout returns the widest partitioned-index root across the
// subscriber table (where the storm hits).
func maxFanout(db *tatp.DB) int {
	widest := 0
	for _, ix := range db.Subscriber.Indexes() {
		if pt := ix.Partitioned(); pt != nil && pt.NumSubtrees() > widest {
			widest = pt.NumSubtrees()
		}
	}
	return widest
}

func tatpTables(db *tatp.DB) []*catalog.Table {
	return []*catalog.Table{db.Subscriber, db.AccessInfo, db.SpecialFac, db.CallForward}
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
