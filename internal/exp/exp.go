// Package exp implements the reproduction experiments E1–E19 (indexed in
// README.md) — the demo paper's exhibited scenarios (access patterns,
// performance under varying load, load balancing, alignment advisor,
// designer tools), the companion DORA paper's quantitative claims
// (critical sections per transaction, peak throughput, scalability), and
// this repo's own measurements: log-manager scalability (E11),
// access-path latching under the partitioned B+tree (E12), and the
// follow-on subsystems' experiments (E13 maintenance, E14 continuation
// ships, E15 page cleaning, E16 replication, E17 parallel redo).
// cmd/dorabench and the root bench_test.go both drive this package, so
// the printed tables and the testing.B benchmarks are the same code.
package exp

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/engine/conventional"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/workload/tatp"
)

// Config scales the experiments.
type Config struct {
	// Subscribers is the TATP scale (default 20000; Quick: 2000).
	Subscribers int64
	// Warehouses is the TPC-C scale (default 4; Quick: 2).
	Warehouses int64
	// Branches is the TPC-B scale (default 8; Quick: 4).
	Branches int64
	// Duration is the measured time per point (default 2s; Quick 300ms).
	Duration time.Duration
	// Clients is the default client count (default 2×GOMAXPROCS).
	Clients int
	// Partitions per table for DORA (default GOMAXPROCS, min 2).
	Partitions int
	// ActionWork is simulated per-action compute (spin iterations);
	// only experiment E3 uses a non-zero default.
	ActionWork int
	// ArrivalRate, when > 0, fixes the open-loop row's offered load in
	// txn/s (experiment E15; default 2x the measured closed-loop
	// throughput).
	ArrivalRate float64
	// MaxInFlight caps the open-loop row's concurrent transactions
	// (default 256).
	MaxInFlight int
	// RedoWorkers is the parallel-redo applier count the replica rows of
	// E17 use (default 4; recovery rows sweep 1/2/4/8 regardless).
	RedoWorkers int
	// Quick shrinks everything for unit tests and smoke benches.
	Quick bool
}

// fill resolves defaults.
func (c Config) fill() Config {
	if c.Quick {
		if c.Subscribers == 0 {
			c.Subscribers = 2000
		}
		if c.Warehouses == 0 {
			c.Warehouses = 2
		}
		if c.Branches == 0 {
			c.Branches = 4
		}
		if c.Duration == 0 {
			c.Duration = 300 * time.Millisecond
		}
	}
	if c.Subscribers == 0 {
		c.Subscribers = 20000
	}
	if c.Warehouses == 0 {
		c.Warehouses = 4
	}
	if c.Branches == 0 {
		c.Branches = 8
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.Clients == 0 {
		c.Clients = 2 * runtime.GOMAXPROCS(0)
	}
	if c.RedoWorkers == 0 {
		c.RedoWorkers = 4
	}
	if c.Partitions == 0 {
		c.Partitions = runtime.GOMAXPROCS(0)
		if c.Partitions < 2 {
			c.Partitions = 2
		}
		if c.Partitions > 8 {
			c.Partitions = 8
		}
	}
	return c
}

// tatpRig loads a fresh TATP database and returns the requested engine
// over it (fresh state per engine keeps comparisons fair). Callers must
// invoke close when done: it stops the engine's workers and the storage
// manager's log flush daemon.
func tatpRig(c Config, which string) (db *tatp.DB, e engine.Engine, cs *metrics.CriticalSectionStats, close func(), err error) {
	cs = &metrics.CriticalSectionStats{}
	s, err := sm.Open(sm.Options{Frames: 1 << 14, CS: cs})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	db, err = tatp.Load(s, c.Subscribers)
	if err != nil {
		_ = s.Close()
		return nil, nil, nil, nil, err
	}
	switch which {
	case "conventional":
		e = conventional.New(s)
	case "dora":
		e = dora.New(s, dora.Config{PartitionsPerTable: c.Partitions, Domains: db.Domains()})
	default:
		_ = s.Close()
		return nil, nil, nil, nil, fmt.Errorf("exp: unknown engine %q", which)
	}
	return db, e, cs, func() { _ = e.Close(); _ = s.Close() }, nil
}

// spin burns roughly n loop iterations (simulated action weight).
func spin(n int) {
	x := uint64(88172645463325252)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	if x == 0 {
		panic("unreachable")
	}
}

// Table is a printable result table.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// Render aligns the table as text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for i, w := range widths {
		t.Header[i] = strings.Repeat("-", w)
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// JSON renders the table as one indented JSON object. CI redirects this
// into BENCH_<id>.json artifacts so the perf trajectory (apply
// throughput, recovery time, ...) is recorded per commit and can be
// diffed across the history.
func (t *Table) JSON() (string, error) {
	b, err := json.MarshalIndent(struct {
		Title   string     `json:"title"`
		Header  []string   `json:"header"`
		Rows    [][]string `json:"rows"`
		Caption string     `json:"caption,omitempty"`
	}{t.Title, t.Header, t.Rows, t.Caption}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func d2(v int64) string   { return fmt.Sprintf("%d", v) }
