package exp

import (
	"fmt"
	"runtime"
	"time"

	"dora/internal/designer"
	"dora/internal/designer/sqlmini"
	"dora/internal/dora"
	"dora/internal/dora/balance"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/workload"
	"dora/internal/workload/tatp"
)

// E6Rebalance reproduces the demo's load-balancing scenario: a hot spot
// slides across the subscriber key space mid-run; with the balancer on,
// DORA splits the hot partitions and merges idle ones in real time,
// holding throughput; with it off, the hot micro-engine bottlenecks.
func E6Rebalance(c Config) (*Table, error) {
	c = c.fill()
	run := func(balanced bool) (tpsBefore, tpsAfter float64, splits, merges int64, err error) {
		cs := &metrics.CriticalSectionStats{}
		s, err := sm.Open(sm.Options{Frames: 1 << 14, CS: cs})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		defer s.Close()
		db, err := tatp.Load(s, c.Subscribers)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		e := dora.New(s, dora.Config{PartitionsPerTable: 2, Domains: db.Domains()})
		defer e.Close()
		var b *balance.Balancer
		if balanced {
			b = balance.NewBalancer(e, balance.Policy{
				Every: 20 * time.Millisecond, MinQueue: 4,
				MaxParts: 2 * c.Partitions, MinParts: 2,
			}, "subscriber", "access_info", "special_facility", "call_forwarding")
			b.Start()
			defer b.Stop()
		}
		hot := workload.NewHotspot(1, c.Subscribers, 0.9, c.Subscribers/20)
		hot.SetCenter(c.Subscribers / 4)
		// Move the hot spot mid-run (the demo's slider).
		moveAt := c.Duration / 2
		go func() {
			time.Sleep(moveAt)
			hot.SetCenter(3 * c.Subscribers / 4)
		}()
		var first, second float64
		var samples int
		dr := workload.Driver{
			Engine: e, Mix: db.NewMix(tatp.MixOptions{SIDGen: hot}),
			Clients: 2 * c.Clients, Duration: c.Duration, Seed: 66,
			SampleEvery: c.Duration / 10,
			OnSample: func(i int, tps float64) {
				if time.Duration(i+1)*(c.Duration/10) <= moveAt {
					first += tps
				} else {
					second += tps
				}
				samples++
			},
		}
		dr.Run()
		half := float64(samples) / 2
		if half == 0 {
			half = 1
		}
		var sc, mc int64
		if b != nil {
			sc, mc = b.Splits.Load(), b.Merges.Load()
		}
		return first / half, second / half, sc, mc, nil
	}
	tb := &Table{
		Title:  "E6  dynamic load balancing under a moving hot spot, TATP (DORA)",
		Header: []string{"balancer", "tps before move", "tps after move", "splits", "merges"},
		Caption: "hot spot: 90% of accesses in a 5%-wide window; the window jumps at\n" +
			"mid-run. The balancer splits hot ranges and merges idle ones.",
	}
	for _, balanced := range []bool{false, true} {
		b1, b2, sc, mc, err := run(balanced)
		if err != nil {
			return nil, err
		}
		name := "off"
		if balanced {
			name = "on"
		}
		tb.Rows = append(tb.Rows, []string{name, f1(b1), f1(b2), d2(sc), d2(mc)})
	}
	return tb, nil
}

// E7Alignment reproduces the second balancing component: a workload that
// probes subscriber by sub_nbr while the table is partitioned by s_id is
// 100% non-partition-aligned (every dispatch pays a resolver probe). The
// advisor detects it and suggests re-partitioning on sub_nbr; applying
// the suggestion restores aligned routing.
func E7Alignment(c Config) (*Table, error) {
	c = c.fill()
	cs := &metrics.CriticalSectionStats{}
	s, err := sm.Open(sm.Options{Frames: 1 << 14, CS: cs})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	db, err := tatp.Load(s, c.Subscribers)
	if err != nil {
		return nil, err
	}
	e := dora.New(s, dora.Config{PartitionsPerTable: c.Partitions, Domains: db.Domains()})
	defer e.Close()
	adv := balance.NewAlignmentAdvisor(e)
	adv.MinSamples = 50

	// Pure UpdateLocation (keyed by sub_nbr).
	ulMix := updateLocationMix(db)

	before := (&workload.Driver{
		Engine: e, Mix: ulMix, Clients: c.Clients, Duration: c.Duration, Seed: 77,
	}).Run()

	sugg := adv.CheckEngine(func(id uint32) string {
		if tbl := s.Cat.TableByID(id); tbl != nil {
			return tbl.Name
		}
		return ""
	})
	suggTxt := "none"
	applied := false
	for _, sg := range sugg {
		if sg.Table == "subscriber" {
			suggTxt = fmt.Sprintf("repartition %s on %s (%.0f%% unaligned)",
				sg.Table, sg.Field, 100*sg.UnalignedShare)
			if err := e.Repartition(sg.Table, sg.Field, 1, db.N); err != nil {
				return nil, err
			}
			applied = true
		}
	}
	if !applied {
		return nil, fmt.Errorf("exp: advisor produced no subscriber suggestion: %+v", sugg)
	}
	after := (&workload.Driver{
		Engine: e, Mix: ulMix, Clients: c.Clients, Duration: c.Duration, Seed: 78,
	}).Run()

	_, unalignedAfter := e.AlignmentStats(false)
	var subUnaligned int64
	for _, v := range unalignedAfter[db.Subscriber.ID] {
		subUnaligned += v
	}
	tb := &Table{
		Title:  "E7  non-partition-aligned accesses and the alignment advisor (DORA)",
		Header: []string{"phase", "tps", "unaligned dispatches"},
		Caption: "workload: 100% UpdateLocation (keyed by sub_nbr); advisor: " + suggTxt + "\n" +
			"after re-partitioning by sub_nbr the dispatches route directly.",
	}
	tb.Rows = append(tb.Rows, []string{"before (partitioned by s_id)", f1(before.Throughput), d2(before.Committed)})
	tb.Rows = append(tb.Rows, []string{"after  (partitioned by sub_nbr)", f1(after.Throughput), d2(subUnaligned)})
	return tb, nil
}

// updateLocationMix is a 100% UpdateLocation mix.
func updateLocationMix(db *tatp.DB) workload.Mix {
	full := db.NewMix(tatp.MixOptions{})
	for i := range full {
		if full[i].Name == "UpdateLocation" {
			return workload.Mix{{Name: "UpdateLocation", Weight: 100, Build: full[i].Build}}
		}
	}
	panic("exp: UpdateLocation missing from TATP mix")
}

// E8FlowGraphs reproduces the designer's flow-graph generation (Fig. 2):
// the TATP transactions in SQL-ish text, parsed and decomposed into
// actions and RVPs.
func E8FlowGraphs() (*Table, []string, error) {
	specs := []string{
		`TXN GetSubscriberData(:s) {
		  SELECT * FROM subscriber WHERE s_id = :s;
		}`,
		`TXN GetNewDestination(:s, :sf, :st, :end) {
		  SELECT is_active FROM special_facility WHERE s_id = :s AND sf_type = :sf;
		  SELECT numberx FROM call_forwarding WHERE s_id = :s AND start_time BETWEEN 0 AND 16;
		}`,
		`TXN UpdateSubscriberData(:s, :bit, :data) {
		  UPDATE subscriber SET bit_1 = :bit WHERE s_id = :s;
		  UPDATE special_facility SET data_a = :data WHERE s_id = :s;
		}`,
		`TXN UpdateLocation(:nbr, :vlr) {
		  SELECT s_id FROM subscriber WHERE sub_nbr = :nbr;
		  UPDATE subscriber SET vlr_location = :vlr WHERE s_id = s_id;
		}`,
		`TXN InsertCallForwarding(:nbr, :sf, :st, :end, :nx) {
		  SELECT s_id FROM subscriber WHERE sub_nbr = :nbr;
		  SELECT sf_type FROM special_facility WHERE s_id = s_id;
		  INSERT INTO call_forwarding VALUES (s_id, :sf, :st, :end, :nx);
		}`,
	}
	parts := map[string]string{
		"subscriber": "s_id", "access_info": "s_id",
		"special_facility": "s_id", "call_forwarding": "s_id",
	}
	tb := &Table{
		Title:  "E8  designer: generated transaction flow graphs (demo Fig. 2)",
		Header: []string{"transaction", "actions", "phases", "unaligned actions"},
	}
	var rendered []string
	for _, src := range specs {
		txn, err := sqlmini.ParseTxn(src)
		if err != nil {
			return nil, nil, err
		}
		fp := designer.Generate(txn, parts)
		unaligned := 0
		for _, a := range fp.Actions {
			if !a.Aligned {
				unaligned++
			}
		}
		tb.Rows = append(tb.Rows, []string{
			txn.Name, d2(int64(len(fp.Actions))), d2(int64(fp.NumPhases())), d2(int64(unaligned)),
		})
		rendered = append(rendered, fp.Render())
	}
	return tb, rendered, nil
}

// E9PhysicalDesign reproduces the designer's physical-design suggestion:
// the standard TATP mix with its frequencies in, partitioning fields,
// partition counts and index proposals out.
func E9PhysicalDesign(workers int) (*Table, string, error) {
	mk := func(src string) *sqlmini.Txn {
		txn, err := sqlmini.ParseTxn(src)
		if err != nil {
			panic(err)
		}
		return txn
	}
	workload := []designer.WeightedTxn{
		{Txn: mk(`TXN GetSubscriberData(:s) { SELECT * FROM subscriber WHERE s_id = :s; }`), Freq: 35},
		{Txn: mk(`TXN GetNewDestination(:s,:sf) {
			SELECT is_active FROM special_facility WHERE s_id = :s AND sf_type = :sf;
			SELECT numberx FROM call_forwarding WHERE s_id = :s; }`), Freq: 10},
		{Txn: mk(`TXN GetAccessData(:s,:ai) { SELECT data1 FROM access_info WHERE s_id = :s AND ai_type = :ai; }`), Freq: 35},
		{Txn: mk(`TXN UpdateSubscriberData(:s,:b,:d) {
			UPDATE subscriber SET bit_1 = :b WHERE s_id = :s;
			UPDATE special_facility SET data_a = :d WHERE s_id = :s; }`), Freq: 2},
		{Txn: mk(`TXN UpdateLocation(:nbr,:v) {
			SELECT s_id FROM subscriber WHERE sub_nbr = :nbr;
			UPDATE subscriber SET vlr_location = :v WHERE s_id = s_id; }`), Freq: 14},
		{Txn: mk(`TXN InsertCallForwarding(:nbr,:sf,:st,:e,:nx) {
			SELECT s_id FROM subscriber WHERE sub_nbr = :nbr;
			INSERT INTO call_forwarding VALUES (s_id, :sf, :st, :e, :nx); }`), Freq: 2},
		{Txn: mk(`TXN DeleteCallForwarding(:nbr,:sf,:st) {
			SELECT s_id FROM subscriber WHERE sub_nbr = :nbr;
			DELETE FROM call_forwarding WHERE s_id = s_id AND sf_type = :sf; }`), Freq: 2},
	}
	tables := map[string]designer.TableInfo{
		"subscriber":       {KeyFields: []string{"s_id"}, Rows: 100000, Indexes: [][]string{{"sub_nbr"}}},
		"access_info":      {KeyFields: []string{"s_id", "ai_type"}, Rows: 250000},
		"special_facility": {KeyFields: []string{"s_id", "sf_type"}, Rows: 250000},
		"call_forwarding":  {KeyFields: []string{"s_id", "sf_type", "start_time"}, Rows: 190000},
	}
	d := designer.Advise(workload, tables, workers)
	tb := &Table{
		Title:  "E9  designer: physical design for the standard TATP mix",
		Header: []string{"table", "partition field", "partitions", "aligned %", "load %"},
	}
	for _, tp := range d.Tables {
		tb.Rows = append(tb.Rows, []string{
			tp.Table, tp.PartitionField, d2(int64(tp.Partitions)),
			f1(100 * tp.AlignedShare), f1(100 * tp.AccessShare),
		})
	}
	return tb, d.Render(), nil
}

// E10CoreScaling reproduces the hardware-contexts experiment: saturated
// TATP throughput as GOMAXPROCS grows, both engines.
func E10CoreScaling(c Config, procs []int) (*Table, error) {
	c = c.fill()
	if len(procs) == 0 {
		max := runtime.GOMAXPROCS(0)
		for p := 1; p <= max; p *= 2 {
			procs = append(procs, p)
		}
		if procs[len(procs)-1] != max {
			procs = append(procs, max)
		}
	}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	tb := &Table{
		Title:  "E10  throughput vs hardware contexts (GOMAXPROCS), TATP at saturation",
		Header: []string{"procs", "conventional tps", "dora tps", "dora/conv"},
	}
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		tps := map[string]float64{}
		for _, which := range []string{"conventional", "dora"} {
			db, e, _, closeRig, err := tatpRig(c, which)
			if err != nil {
				return nil, err
			}
			res := (&workload.Driver{
				Engine: e, Mix: db.NewMix(tatp.MixOptions{}),
				Clients: 4 * p, Duration: c.Duration, Seed: 99,
			}).Run()
			tps[which] = res.Throughput
			closeRig()
		}
		ratio := 0.0
		if tps["conventional"] > 0 {
			ratio = tps["dora"] / tps["conventional"]
		}
		tb.Rows = append(tb.Rows, []string{
			d2(int64(p)), f1(tps["conventional"]), f1(tps["dora"]), f2(ratio),
		})
	}
	return tb, nil
}
