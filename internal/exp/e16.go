package exp

import (
	"fmt"
	"sync"
	"time"

	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/engine/conventional"
	"dora/internal/repl"
	"dora/internal/sm"
	"dora/internal/wal"
	"dora/internal/workload"
	"dora/internal/workload/tatp"
)

// E16Replication measures the replication subsystem end to end: a DORA
// primary ships hardened group-commit extents to an in-process read
// replica that replays them into a live engine and serves the read-only
// TATP slice at its hardened commit horizon.
//
// Three load rows share the shape "writes on the primary, reads
// somewhere": reads on the primary itself (the no-replica baseline),
// reads offloaded to an async replica (bounded staleness, measured as
// the max gap in log bytes between the primary's last commit and the
// replica's replayed horizon during the run), and reads offloaded under
// the semi-sync K=1 commit rule (each commit waits for the replica's
// replay ack, so staleness collapses to ~0 and the write row pays the
// shipping round-trip as a latency tax). The log trimmer runs
// throughout, truncating the primary's WAL under min(checkpoint redo,
// slowest replica ack) — trims > 0 shows retention stayed bounded while
// replicas streamed.
//
// The final row is the failover drill: with K=1 every commit that
// returned un-degraded was acked by the replica, so after stopping the
// load and killing the primary, the promoted replica's commit horizon
// must have caught the primary's last commit exactly — no acked
// transaction lost, no in-flight one surviving (losers are rolled back
// with CLRs during promotion). The promoted engine then serves the full
// read-write mix as the new primary; its throughput is the row.
func E16Replication(c Config) (*Table, error) {
	c = c.fill()
	tb := &Table{
		Title:  "E16  replication: read offload, bounded staleness, semi-sync tax, failover, TATP",
		Header: []string{"config", "write tps", "read tps", "max staleness", "degraded", "trims", "notes"},
		Caption: "write tps = write-heavy TATP mix on the primary (full mix on the promoted\n" +
			"row); read tps = read-only TATP slice, on the primary (baseline) or the\n" +
			"replica (offload rows). max staleness = peak (primary last-commit LSN -\n" +
			"replica replayed horizon) observed, in log bytes; semi-sync K=1 commits\n" +
			"wait for the replica's replay ack, so staleness ~0 and writes pay the\n" +
			"round-trip. trims = WAL truncations under min(checkpoint, replica ack).\n" +
			"promoted = replica promoted after primary death; horizon-caught means no\n" +
			"acked commit was lost and in-flight losers were rolled back. Everything\n" +
			"runs in one process: closed-loop read clients never idle, so the offload\n" +
			"rows shift CPU from the primary's writers to the replica's readers — the\n" +
			"offload win is the read column (and the freed primary lock/latch path),\n" +
			"not the single-machine write column.",
	}

	// Row 1: no replica — read-only clients compete on the primary.
	{
		r, err := e16Rig(c, 0)
		if err != nil {
			return nil, fmt.Errorf("e16 primary-only: %w", err)
		}
		w, rd, _, deg := e16Measure(c, r, r.eng, r.db.ReadOnlyMix(tatp.MixOptions{}))
		tb.Rows = append(tb.Rows, []string{"reads-on-primary (async)", f1(w), f1(rd), "n/a", d2(deg),
			d2(r.trim.Trims.Load()), "replica replays but serves no reads"})
		r.close()
	}

	// Row 2: async replica — reads offloaded at bounded staleness.
	{
		r, err := e16Rig(c, 0)
		if err != nil {
			return nil, fmt.Errorf("e16 async offload: %w", err)
		}
		w, rd, stale, deg := e16Measure(c, r, repl.ReadEngine{R: r.rep}, r.repDB.ReadOnlyMix(tatp.MixOptions{}))
		tb.Rows = append(tb.Rows, []string{"reads-on-replica (async)", f1(w), f1(rd),
			fmt.Sprintf("%dB", stale), d2(deg), d2(r.trim.Trims.Load()), "reads at replica horizon"})
		r.close()
	}

	// Rows 3+4: semi-sync offload, then failover on the same rig (K=1
	// means every un-degraded commit was acked before returning — the
	// precondition the exactly-once check rests on).
	r, err := e16Rig(c, 1)
	if err != nil {
		return nil, fmt.Errorf("e16 semi-sync: %w", err)
	}
	w, rd, stale, deg := e16Measure(c, r, repl.ReadEngine{R: r.rep}, r.repDB.ReadOnlyMix(tatp.MixOptions{}))
	tb.Rows = append(tb.Rows, []string{"reads-on-replica (semi-sync K=1)", f1(w), f1(rd),
		fmt.Sprintf("%dB", stale), d2(deg), d2(r.trim.Trims.Load()), "commits wait for replay ack"})

	// Failover: quiesce, let the replica catch the primary's durable log
	// end, kill the primary, promote, and serve the full mix.
	if err := e16CatchUp(r); err != nil {
		r.close()
		return nil, fmt.Errorf("e16 failover: %w", err)
	}
	lastCommit := r.s.LastCommitLSN()
	r.trim.Stop()
	_ = r.sh.Close()
	_ = r.eng.Close()
	_ = r.s.Close() // primary is dead
	ns, st, err := r.rep.Promote()
	if err != nil {
		_ = r.rep.Close()
		return nil, fmt.Errorf("e16 promote: %w", err)
	}
	caught := "horizon-caught"
	if r.rep.CommitHorizon() < lastCommit {
		caught = fmt.Sprintf("LOST %dB of acked commits", lastCommit-r.rep.CommitHorizon())
	}
	ce := conventional.New(ns)
	res := (&workload.Driver{
		Engine: ce, Mix: r.repDB.NewMix(tatp.MixOptions{}),
		Clients: c.Clients, Duration: c.Duration, Seed: 1616,
	}).Run()
	_ = ce.Close()
	_ = r.rep.Close()
	tb.Rows = append(tb.Rows, []string{"promoted (post-failover)", f1(res.Throughput), "-", "-", "-", "-",
		fmt.Sprintf("%s, winners=%d losers=%d", caught, st.Winners, st.Losers)})
	return tb, nil
}

// e16RigT bundles one primary+replica pair.
type e16RigT struct {
	s     *sm.SM
	db    *tatp.DB
	eng   *dora.Dora
	sh    *repl.Shipper
	rep   *repl.Replica
	repDB *tatp.DB
	trim  *sm.Trimmer
	close func()
}

// e16Rig opens a logged TATP primary under the DORA engine, attaches a
// shipper with commit rule K, joins one in-process replica, waits for
// its catch-up replay of the initial load, and starts the trimmer.
func e16Rig(c Config, k int) (*e16RigT, error) {
	store := wal.NewMemStore()
	s, err := sm.Open(sm.Options{Frames: 1 << 14, LogStore: store})
	if err != nil {
		return nil, err
	}
	db, err := tatp.Load(s, c.Subscribers)
	if err != nil {
		_ = s.Close()
		return nil, err
	}
	eng := dora.New(s, dora.Config{PartitionsPerTable: c.Partitions, Domains: db.Domains()})
	sh, err := repl.AttachPrimary(s, store, repl.Rule{K: k})
	if err != nil {
		_ = eng.Close()
		_ = s.Close()
		return nil, err
	}
	var repDB *tatp.DB
	rep, err := repl.NewReplica(repl.Options{Frames: 1 << 14, DDL: func(rs *sm.SM) error {
		var derr error
		repDB, derr = tatp.Schema(rs, c.Subscribers)
		return derr
	}})
	if err == nil {
		err = sh.AddReplica("replica-1", repl.LocalLink{R: rep})
	}
	if err != nil {
		_ = sh.Close()
		_ = eng.Close()
		_ = s.Close()
		return nil, err
	}
	trim := &sm.Trimmer{SM: s, Interval: 10 * time.Millisecond, Threshold: 512 << 10,
		AckHorizon: sh.AckHorizon}
	trim.Start()
	r := &e16RigT{s: s, db: db, eng: eng, sh: sh, rep: rep, repDB: repDB, trim: trim}
	r.close = func() {
		trim.Stop()
		_ = sh.Close()
		_ = rep.Close()
		_ = eng.Close()
		_ = s.Close()
	}
	// The replica replays the whole initial load before measurement
	// starts (otherwise semi-sync commits would stall behind catch-up and
	// the staleness sample would just measure the load's backlog).
	if err := e16CatchUp(r); err != nil {
		r.close()
		return nil, err
	}
	return r, nil
}

// e16CatchUp waits until the replica's replayed commit horizon reaches
// the primary's last commit.
func e16CatchUp(r *e16RigT) error {
	deadline := time.Now().Add(60 * time.Second)
	for r.rep.CommitHorizon() < r.s.LastCommitLSN() {
		if time.Now().After(deadline) {
			return fmt.Errorf("replica stuck at horizon %d, primary last commit %d",
				r.rep.CommitHorizon(), r.s.LastCommitLSN())
		}
		// A quiesced abort's CLRs/end can sit in the log buffer with no
		// forcer; flush so every transaction's resolution ships — the
		// replica applies only the transaction-consistent prefix, and one
		// unresolved straggler holds its commit horizon back.
		_ = r.s.Log.FlushAll()
		time.Sleep(time.Millisecond)
	}
	return nil
}

// e16Measure drives the write-heavy mix on the primary and the given
// read-only mix on readEng concurrently for c.Duration, sampling the
// replica's staleness (log bytes behind the primary's last commit)
// throughout. Returns write tps, read tps, max staleness, and the
// degraded-commit delta for the window.
func e16Measure(c Config, r *e16RigT, readEng engine.Engine, readMix workload.Mix) (wtps, rtps float64, maxStale uint64, degraded int64) {
	deg0 := r.sh.Degraded.Load()
	stop := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if p, h := r.s.LastCommitLSN(), r.rep.CommitHorizon(); p > h && p-h > maxStale {
				maxStale = p - h
			}
		}
	}()
	var wres, rres workload.Result
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		wres = (&workload.Driver{
			Engine: r.eng, Mix: r.db.WriteMix(tatp.MixOptions{}),
			Clients: c.Clients, Duration: c.Duration, Seed: 1616,
		}).Run()
	}()
	go func() {
		defer wg.Done()
		rres = (&workload.Driver{
			Engine: readEng, Mix: readMix,
			Clients: c.Clients, Duration: c.Duration, Seed: 6161,
		}).Run()
	}()
	wg.Wait()
	close(stop)
	sampleWG.Wait()
	return wres.Throughput, rres.Throughput, maxStale, r.sh.Degraded.Load() - deg0
}
