package exp

import (
	"fmt"
	"sort"

	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/trace"
	"dora/internal/workload"
	"dora/internal/workload/tatp"
)

// E18LatencyAttribution decomposes end-to-end transaction latency into
// the tracer's pipeline stages under rising open-loop load. Two
// questions: (1) what does always-on 1/64 sampling cost — measured as
// closed-loop throughput with the tracer off vs on, same rig, same mix
// (the budget is <2%); (2) where does the time go as offered load
// crosses the knee — open-loop rows at ~0.5x/1x/1.5x of the measured
// closed-loop capacity, each with the traced end-to-end quantiles, span
// coverage, and a per-stage breakdown (per-transaction attribution:
// stage time summed over traced transactions divided by the sample
// count). Below the knee the breakdown is dominated by exec and the
// commit pipeline; past it, queue_wait and commit_queue grow while exec
// stays flat — queueing, not work, is where overload latency lives.
//
// The built-in consistency check: over the txn-scoped stages (the
// engine-scoped SampleHop stages — ship, kont, log reserve/fill,
// replica delivery/apply — are sampled per work item, not per
// transaction, so they are excluded) the attribution sum should land
// within ~10% of the traced end-to-end p50 when the stages are
// sequential, which the aligned TATP mix's single-action transactions
// are. The stage-sum/p50 column reports it per row; span coverage is
// the interval-union version of the same question (overlap-safe), so
// the two together tell apart "missing instrumentation" (low coverage)
// from "overlapping stages" (high sum, good coverage). At quick scale
// the sample is small and the check is reported, not enforced.
func E18LatencyAttribution(c Config) (*Table, error) {
	c = c.fill()
	tb := &Table{
		Title: "E18  latency attribution: per-stage decomposition under open-loop load, TATP",
		Header: []string{"phase", "offered tx/s", "tps", "p50 ms", "p99 ms",
			"sampled", "coverage %", "stage-sum/p50 %"},
		Caption: "Stage rows attribute microseconds per traced transaction (stage time /\n" +
			"sampled count); their sum over txn-scoped stages, divided by the traced\n" +
			"end-to-end p50, is the stage-sum/p50 column of the parent row (~100% =\n" +
			"the decomposition explains the median transaction). coverage % is the\n" +
			"interval-union share of traced end-to-end time the spans explain.\n" +
			"tracer off/on rows: closed-loop throughput with tracing disabled vs 1/64\n" +
			"sampling — the overhead budget is <2%.",
	}

	// Overhead: two otherwise-identical rigs, tracer off vs 1/64, measured
	// in ALTERNATING closed-loop windows with the median taken per rig.
	// Sequential measurement would fold machine drift (frequency scaling,
	// co-tenant noise — easily 10x the effect under study) into the
	// comparison; alternation puts both rigs through the same drift.
	tr := trace.New(trace.Config{SampleEvery: 64})
	defer tr.Close()
	offDB, offEng, closeOff, err := tatpRigE18(c, nil)
	if err != nil {
		return nil, fmt.Errorf("e18 tracer-off: %w", err)
	}
	defer closeOff()
	db, eng, closeRig, err := tatpRigE18(c, tr)
	if err != nil {
		return nil, fmt.Errorf("e18 tracer-on: %w", err)
	}
	defer closeRig()
	mix := db.NewMix(tatp.MixOptions{})
	offDr := workload.Driver{Engine: offEng, Mix: offDB.NewMix(tatp.MixOptions{}),
		Clients: c.Clients, Duration: c.Duration, Seed: 1818}
	onDr := workload.Driver{Engine: eng, Mix: mix, Clients: c.Clients, Duration: c.Duration, Seed: 1818}
	offDr.Run() // warm-up, discarded: a fresh rig's first window is
	onDr.Run()  // buffer-pool fill and worker spin-up, not steady state
	var offTPSs, onTPSs []float64
	for i := 0; i < 3; i++ {
		offTPSs = append(offTPSs, offDr.Run().Throughput)
		onTPSs = append(onTPSs, onDr.Run().Throughput)
	}
	offTPS, onTPS := median(offTPSs), median(onTPSs)
	overhead := 0.0
	if offTPS > 0 {
		overhead = 100 * (1 - onTPS/offTPS)
	}
	tb.Rows = append(tb.Rows, []string{"closed, tracer off", "-", f1(offTPS), "-", "-", "-", "-", "-"})
	tb.Rows = append(tb.Rows, []string{"closed, tracer 1/64", "-", f1(onTPS), "-", "-", "-", "-",
		fmt.Sprintf("overhead %+.1f%%", overhead)})

	// Open-loop rows at rising offered load. Reset between rows so each
	// decomposition reflects one operating point only.
	capacity := onTPS
	if capacity < 200 {
		capacity = 200
	}
	for _, frac := range []float64{0.5, 1.0, 1.5} {
		rate := frac * capacity
		if c.ArrivalRate > 0 {
			rate = frac * c.ArrivalRate
		}
		inflight := c.MaxInFlight
		if inflight <= 0 {
			inflight = 256
		}
		tr.Reset()
		ol := workload.OpenLoop{
			Engine: eng.(*dora.Dora), Mix: mix,
			Rate: rate, MaxInFlight: inflight, Duration: c.Duration, Seed: 1818,
		}
		ores := ol.Run()
		sl := tr.Snapshot()
		phase := fmt.Sprintf("open %.1fx", frac)
		sumPct := "-"
		if pct, ok := e18StageSumPct(sl); ok {
			sumPct = f1(pct)
		}
		tb.Rows = append(tb.Rows, []string{phase, f1(rate), f1(ores.Throughput),
			fmt.Sprintf("%.2f", float64(ores.P50US)/1000),
			fmt.Sprintf("%.2f", float64(ores.P99US)/1000),
			d2(sl.Sampled), f1(sl.CoveragePct), sumPct})
		for _, sv := range sl.Stages {
			attrib := sv.MeanUS * float64(sv.Count) / float64(max(sl.Sampled, 1))
			tb.Rows = append(tb.Rows, []string{"  " + sv.Stage, "-", "-", "-", "-",
				d2(sv.Count), fmt.Sprintf("%.0f us/txn", attrib),
				fmt.Sprintf("p50 %d p99 %d us", sv.P50US, sv.P99US)})
		}
	}
	return tb, nil
}

// e18TxnScoped marks the stages recorded against a sampled transaction
// (as opposed to per-work-item SampleHop stages): only these sum to an
// end-to-end decomposition.
var e18TxnScoped = map[string]bool{
	trace.StageAdmission.String():   true,
	trace.StageQueueWait.String():   true,
	trace.StageExec.String():        true,
	trace.StageSuspend.String():     true,
	trace.StageCommitQueue.String(): true,
	trace.StageLogAppend.String():   true,
	trace.StageFlushWait.String():   true,
	trace.StageLockRelease.String(): true,
	trace.StageAckWait.String():     true,
}

// e18StageSumPct sums per-transaction stage attribution over the
// txn-scoped stages and reports it as a percentage of the traced
// end-to-end p50.
func e18StageSumPct(sl *trace.StageLatency) (float64, bool) {
	if sl == nil || sl.Sampled == 0 || sl.TotalP50US == 0 {
		return 0, false
	}
	var sumUS float64
	for _, sv := range sl.Stages {
		if e18TxnScoped[sv.Stage] {
			sumUS += sv.MeanUS * float64(sv.Count) / float64(sl.Sampled)
		}
	}
	return 100 * sumUS / float64(sl.TotalP50US), true
}

// median of a small sample (sorted in place).
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sort.Float64s(v)
	return v[len(v)/2]
}

// tatpRigE18 is tatpRig with the tracer threaded through both layers:
// sm.Options.Spans gives the commit pipeline's stages to the same tracer
// the DORA engine records admission/queue/exec/ship spans into.
func tatpRigE18(c Config, tr *trace.Tracer) (*tatp.DB, engine.Engine, func(), error) {
	cs := &metrics.CriticalSectionStats{}
	s, err := sm.Open(sm.Options{Frames: 1 << 14, CS: cs, Spans: tr})
	if err != nil {
		return nil, nil, nil, err
	}
	db, err := tatp.Load(s, c.Subscribers)
	if err != nil {
		_ = s.Close()
		return nil, nil, nil, err
	}
	e := dora.New(s, dora.Config{
		PartitionsPerTable: c.Partitions,
		Domains:            db.Domains(),
		Tracer:             tr,
	})
	return db, e, func() { _ = e.Close(); _ = s.Close() }, nil
}
