package exp

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Header:  []string{"a", "bbbb"},
		Rows:    [][]string{{"x", "1"}, {"yyyy", "22"}},
		Caption: "cap",
	}
	out := tb.Render()
	for _, want := range []string{"demo", "bbbb", "yyyy", "cap", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestE8FlowGraphs(t *testing.T) {
	tb, graphs, err := E8FlowGraphs()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if len(graphs) != 5 {
		t.Fatalf("graphs = %d", len(graphs))
	}
	// InsertCallForwarding decomposes into 3 actions over >= 2 phases.
	for _, r := range tb.Rows {
		if r[0] == "InsertCallForwarding" {
			if r[1] != "3" {
				t.Fatalf("InsertCallForwarding actions = %s", r[1])
			}
			if r[2] == "1" {
				t.Fatal("InsertCallForwarding must have > 1 phase")
			}
		}
	}
}

func TestE9PhysicalDesign(t *testing.T) {
	tb, rendered, err := E9PhysicalDesign(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r[1] != "s_id" {
			t.Fatalf("table %s partitioned by %s, want s_id", r[0], r[1])
		}
	}
	if !strings.Contains(rendered, "prepend partitioning column s_id") {
		t.Fatalf("prepend rule missing:\n%s", rendered)
	}
}

func TestE11Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("throughput comparison is not meaningful under the race detector")
	}
	// The acceptance claim: at >= 8 concurrent appenders the
	// consolidation-array log out-appends the single-mutex log. Shared
	// or single-core CI boxes are noisy, so take the best of three runs.
	var last float64
	for attempt := 0; attempt < 3; attempt++ {
		tb, err := E11LogScalability(Config{Quick: true, Duration: 250 * time.Millisecond}, []int{8})
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Rows) != 1 {
			t.Fatalf("rows = %d", len(tb.Rows))
		}
		ratio, err := strconv.ParseFloat(tb.Rows[0][3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio > 1 {
			return
		}
		last = ratio
		t.Logf("attempt %d: clog/mutex ratio = %.2f", attempt+1, ratio)
	}
	t.Fatalf("clog/mutex ratio at 8 appenders = %.2f after 3 attempts, want > 1", last)
}

func TestE12Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E12AccessPathLatching(Config{Quick: true, Duration: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	row := func(name string) []string {
		for _, r := range tb.Rows {
			if r[0] == name {
				return r
			}
		}
		t.Fatalf("missing row %q", name)
		return nil
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	shared, plp, conv := row("dora/shared"), row("dora/plp"), row("conventional")
	// The acceptance claim: per-partition subtree ownership collapses
	// DORA's index latching by at least 5x vs the shared latched tree.
	sharedIdx, plpIdx := parse(shared[1]), parse(plp[1])
	if sharedIdx < 1 {
		t.Fatalf("dora/shared index latch/txn = %.2f, expected a latched baseline", sharedIdx)
	}
	if plpIdx*5 > sharedIdx {
		t.Fatalf("index latch/txn: shared=%.2f plp=%.2f, want >= 5x reduction", sharedIdx, plpIdx)
	}
	// Total latching (including frame/page latches) must drop too.
	if parse(plp[2]) >= parse(shared[2]) {
		t.Fatalf("latch/txn did not drop: shared=%s plp=%s", shared[2], plp[2])
	}
	// The conventional engine stays on the shared path: its index
	// latching matches DORA-over-shared-trees within noise.
	convIdx := parse(conv[1])
	if convIdx < 1 {
		t.Fatalf("conventional index latch/txn = %.2f, expected latched crabbing", convIdx)
	}
}

func TestE13Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E13PhysicalMaintenance(Config{Quick: true, Duration: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	row := func(phase string) []string {
		for _, r := range tb.Rows {
			if r[1] == phase {
				return r
			}
		}
		t.Fatalf("missing phase %q", phase)
		return nil
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	// The conventional engine is unchanged: no owned reads at all (the
	// experiment errors out otherwise) and its row reports n/a.
	if conv := tb.Rows[0]; conv[0] != "conventional" || conv[2] != "n/a" {
		t.Fatalf("conventional row changed shape: %v", conv)
	}
	fresh, conv1 := row("fresh load"), row("converged")
	decayed, conv2 := row("decayed"), row("re-converged")
	// A fresh load has no stamped pages: aligned reads latch.
	if parse(fresh[2]) < 0.5 {
		t.Fatalf("fresh latched/owned = %s, expected near 1", fresh[2])
	}
	// The acceptance claim: after the mid-run repartition storm decays
	// the layout, frame latches on aligned reads converge to ~0 once
	// migration drains.
	if parse(conv1[2]) > 0.02 {
		t.Fatalf("converged latched/owned = %s, want ~0", conv1[2])
	}
	if parse(decayed[2]) <= parse(conv2[2]) {
		t.Fatalf("storm did not decay the layout: decayed=%s re-converged=%s", decayed[2], conv2[2])
	}
	if parse(conv2[2]) > 0.02 {
		t.Fatalf("re-converged latched/owned = %s, want ~0", conv2[2])
	}
	// Root fan-out: the storm grows it without bound; compaction folds
	// it back under 2x the partition count.
	parts := float64(Config{Quick: true}.fill().Partitions)
	if parse(decayed[3]) <= 2*parts {
		t.Logf("note: decayed fan-out %s already small (storm absorbed)", decayed[3])
	}
	if parse(conv2[3]) > 2*parts {
		t.Fatalf("re-converged fan-out = %s > 2x partitions (%v) with compaction on", conv2[3], parts)
	}
	// Migration/stamping actually happened.
	if parse(conv2[4]) == 0 && parse(conv2[5]) == 0 {
		t.Fatal("maintenance reported no pages stamped and no records migrated")
	}
}

func TestE15Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E15PageCleaning(Config{Quick: true, Duration: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	row := func(engine, phase string) []string {
		for _, r := range tb.Rows {
			if r[0] == engine && r[1] == phase {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", engine, phase)
		return nil
	}
	// The conventional engine is unchanged: no owned writes at all (the
	// experiment errors out otherwise) and its row reports n/a.
	if conv := tb.Rows[0]; conv[0] != "conventional" || conv[2] != "n/a" {
		t.Fatalf("conventional row changed shape: %v", conv)
	}
	// The latched baseline (config flag) takes the exclusive frame latch
	// on EVERY owner write, converged stamps or not: >= 1 latch per
	// aligned write means a ratio of exactly 1.
	latched := row("dora/latched", "converged")
	if parse(latched[2]) < 0.99 {
		t.Fatalf("latched baseline ratio = %s, want 1", latched[2])
	}
	// A fresh load has no stamped pages: owner writes latch.
	fresh := row("dora/cow", "fresh load")
	if parse(fresh[2]) < 0.5 {
		t.Fatalf("fresh latched/owned write = %s, expected near 1", fresh[2])
	}
	// The acceptance claim: once stamps converge, frame-latch
	// acquisitions per aligned write fall to ~0 — with the flush daemon
	// hardening snapshot copies the whole time (snap ships > 0 proves
	// cleaning ran through the owner-coordinated protocol, not around it).
	conv := row("dora/cow", "converged")
	if parse(conv[2]) > 0.02 {
		t.Fatalf("converged latched/owned write = %s, want ~0", conv[2])
	}
	if parse(conv[4]) == 0 {
		t.Fatal("no snapshot ships while converged: the cleaner did not run the CoW protocol")
	}
	// The open-loop overload row keeps the latch-free property and
	// reports latency/drop accounting.
	ol := row("dora/cow", "open-loop")
	if parse(ol[2]) > 0.02 {
		t.Fatalf("open-loop latched/owned write = %s, want ~0", ol[2])
	}
	if parse(ol[6]) == 0 {
		t.Fatal("open-loop row committed nothing")
	}
	parse(ol[7]) // p99 ms must be numeric
	parse(ol[8]) // dropped must be numeric
}

func TestE14Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	row := func(tb *Table, name string) []string {
		for _, r := range tb.Rows {
			if r[0] == name {
				return r
			}
		}
		t.Fatalf("missing row %q", name)
		return nil
	}
	// Structural claims first (stable under any scheduler): in
	// continuation mode the workload's foreign ops all ride contMsgs and
	// senders provably drained while suspended; in blocking mode every
	// foreign op parked its sender and overlap is impossible. The
	// experiment itself verifies exactly-once side effects and that the
	// conventional engine performed no ships (its row has none).
	check := func(tb *Table) float64 {
		blocking, cont := row(tb, "dora/blocking"), row(tb, "dora/continuation")
		if parse(blocking[2]) == 0 || parse(blocking[3]) != 0 {
			t.Fatalf("blocking row ships: blocking=%s cont=%s", blocking[2], blocking[3])
		}
		if parse(blocking[4]) != 0 {
			t.Fatalf("blocking mode reported overlap %s, structurally impossible", blocking[4])
		}
		if parse(cont[3]) == 0 || parse(cont[2]) != 0 {
			t.Fatalf("continuation row ships: blocking=%s cont=%s", cont[2], cont[3])
		}
		if parse(cont[4]) == 0 {
			t.Fatal("continuation mode reported zero overlap: senders never drained while suspended")
		}
		if conv := row(tb, "conventional"); conv[2] != "-" || conv[5] != "ok" {
			t.Fatalf("conventional row changed shape: %v", conv)
		}
		return parse(cont[1]) / parse(blocking[1])
	}
	tb, err := E14ContinuationShips(Config{Quick: true, Duration: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ratio := check(tb)
	if raceEnabled {
		t.Logf("race detector on: structural checks only (cont/blocking tps ratio %.2f)", ratio)
		return
	}
	// The acceptance claim: continuation ships beat blocking ships on
	// multi-partition transaction throughput at saturation. Shared CI
	// boxes are noisy, so take the best of three runs.
	for attempt := 0; ; attempt++ {
		if ratio > 1 {
			return
		}
		if attempt >= 2 {
			t.Fatalf("continuation/blocking tps ratio = %.2f after 3 attempts, want > 1", ratio)
		}
		t.Logf("attempt %d: continuation/blocking tps ratio = %.2f", attempt+1, ratio)
		tb, err = E14ContinuationShips(Config{Quick: true, Duration: 250 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		ratio = check(tb)
	}
}

func TestE4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E4CriticalSections(Config{Quick: true, Duration: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// DORA's lock-manager column must be exactly zero.
	if tb.Rows[1][1] != "0.00" {
		t.Fatalf("dora lockmgr/txn = %s, want 0.00", tb.Rows[1][1])
	}
	// Conventional must pay double-digit lock-manager critical sections.
	if tb.Rows[0][1] < "10" {
		t.Fatalf("conventional lockmgr/txn = %s, expected >= 10", tb.Rows[0][1])
	}
}

func TestE16Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		// The rigs' replay + closed-loop read clients are CPU-bound enough
		// under the race detector to starve concurrently running package
		// tests; race coverage for replication lives in internal/repl's
		// storm tests (and CI's dedicated race step).
		t.Skip("throughput experiment is not meaningful under the race detector")
	}
	tb, err := E16Replication(Config{Quick: true, Duration: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	// The offload rows serve the read-only mix from the replica at a
	// measured (finite, byte-denominated) staleness.
	var trims float64
	for _, i := range []int{1, 2} {
		r := tb.Rows[i]
		if parse(r[2]) == 0 {
			t.Fatalf("%s: replica served no reads", r[0])
		}
		if !strings.HasSuffix(r[3], "B") {
			t.Fatalf("%s: staleness %q not byte-denominated", r[0], r[3])
		}
		parse(strings.TrimSuffix(r[3], "B"))
		trims += parse(r[5])
	}
	trims += parse(tb.Rows[0][5])
	// The trimmer ran against the replica-ack horizon: retention stayed
	// bounded while the replicas streamed.
	if trims == 0 {
		t.Fatal("no WAL trims across the replicated runs")
	}
	// Semi-sync with one healthy replica never degrades.
	if semi := tb.Rows[2]; parse(semi[4]) != 0 {
		t.Fatalf("semi-sync degraded %s commits with a healthy replica", semi[4])
	}
	// Failover: the promoted replica lost no acked commit (exactly-once)
	// and serves the full read-write mix as the new primary.
	prom := tb.Rows[3]
	if !strings.Contains(prom[6], "horizon-caught") {
		t.Fatalf("promotion lost acked commits: %v", prom)
	}
	if parse(prom[1]) == 0 {
		t.Fatal("promoted replica committed nothing")
	}
}

func TestE19Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E19LockHierarchy(Config{Quick: true, Duration: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// flat and hier contribute 4 rows each, hier-noesc just the storm.
	if len(tb.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(tb.Rows))
	}
	cell := func(locks, scenario string, col int) float64 {
		for _, r := range tb.Rows {
			if r[0] == locks && r[1] == scenario {
				v, perr := strconv.ParseFloat(r[col], 64)
				if perr != nil {
					t.Fatalf("%s/%s col %d = %q: %v", locks, scenario, col, r[col], perr)
				}
				return v
			}
		}
		t.Fatalf("no row %s/%s", locks, scenario)
		return 0
	}
	// Range scans: the flat table expands the interval per key, the
	// hierarchical one grants a root intent plus a couple of granule
	// locks — O(keys) vs O(1) in the scan width.
	flatAcq, hierAcq := cell("flat", "range-scan", 2), cell("hier", "range-scan", 2)
	if flatAcq < float64(e19ScanWidth) {
		t.Fatalf("flat scan acq/op = %.1f, want >= width %d", flatAcq, e19ScanWidth)
	}
	if hierAcq > 8 {
		t.Fatalf("hier scan acq/op = %.1f, want O(1) (<= 8)", hierAcq)
	}
	if cell("hier", "range-scan", 3) == 0 {
		t.Fatal("hier scans took no coarse range locks")
	}
	// Maintenance: per-record key probes on flat, one range probe per
	// assigned range on hier.
	if cell("flat", "maintenance", 4) == 0 {
		t.Fatal("flat maintenance did no per-key busy probes")
	}
	if cell("flat", "maintenance", 5) != 0 {
		t.Fatal("flat maintenance should not range-probe")
	}
	if cell("hier", "maintenance", 4) != 0 {
		t.Fatal("hier maintenance still key-probing")
	}
	if cell("hier", "maintenance", 5) == 0 {
		t.Fatal("hier maintenance did no range probes")
	}
	// Storm: escalation fires with the default threshold, never with it
	// disabled, and de-escalation matches releases of escalated holds.
	if cell("hier", "hot-key storm", 6) == 0 {
		t.Fatal("no escalations under the audit storm")
	}
	if cell("hier-noesc", "hot-key storm", 6) != 0 {
		t.Fatal("escalation fired while disabled")
	}
	if cell("hier", "hot-key storm", 7) == 0 {
		t.Fatal("no de-escalations under the audit storm")
	}
}

func TestE17Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		// Race coverage for the parallel-redo pipeline lives in
		// internal/sm and internal/repl's dedicated storm tests; the
		// timing rows are meaningless under the detector.
		t.Skip("throughput experiment is not meaningful under the race detector")
	}
	// E17RedoScalability errors out internally if any parallel run's end
	// state diverges from the serial one — running it IS the equivalence
	// assertion; the checks below are structural.
	tb, err := E17RedoScalability(Config{Quick: true, Duration: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (4 recovery + 2 replica)", len(tb.Rows))
	}
	for _, r := range tb.Rows[:4] {
		if !strings.Contains(r[6], "state-equal") {
			t.Fatalf("%s: missing equivalence note: %v", r[0], r)
		}
	}
	for _, r := range tb.Rows[4:] {
		if !strings.HasSuffix(r[2], "B") || !strings.HasSuffix(r[3], "B") {
			t.Fatalf("%s: lag columns not byte-denominated: %v", r[0], r)
		}
		// Bounded lag: after the quiesced drain the replica caught the
		// primary's commit horizon exactly.
		if r[3] != "0B" {
			t.Fatalf("%s: residual lag %s after catch-up", r[0], r[3])
		}
	}
}

// TestE20Quick runs the overload-autopilot experiment in quick mode and
// checks the table's structure plus the properties that hold even on a
// noisy single-core box: the post-storm layout re-converges, the gates
// actually paced/deferred background work during the storms, the
// autopilot shed traffic, and in at least half the scenarios the off
// arm degrades (p99 blowout or goodput collapse) while the on arm's
// p99 is no worse.
func TestE20Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E20OverloadAutopilot(Config{Quick: true, Duration: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// capacity + baseline + 4 scenarios x (off, on, class sub-row) + drain.
	if len(tb.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(tb.Rows))
	}
	num := func(row []string, col int) float64 {
		v, perr := strconv.ParseFloat(row[col], 64)
		if perr != nil {
			t.Fatalf("row %q col %d = %q: %v", row[0], col, row[col], perr)
		}
		return v
	}
	ms := func(row []string, col int) float64 {
		s := strings.TrimSuffix(row[col], " ms")
		v, perr := strconv.ParseFloat(s, 64)
		if perr != nil {
			t.Fatalf("row %q col %d = %q: %v", row[0], col, row[col], perr)
		}
		return v
	}
	var offRows, onRows [][]string
	for _, r := range tb.Rows {
		switch r[1] {
		case "off":
			offRows = append(offRows, r)
		case "on":
			if r[0] != "  class latency" {
				onRows = append(onRows, r)
			}
		}
	}
	if len(offRows) != 4 || len(onRows) != 4 {
		t.Fatalf("arms: %d off, %d on, want 4/4", len(offRows), len(onRows))
	}
	var totalShed, pacedDeferred float64
	degradedAndHeld := 0
	for i := range offRows {
		off, on := offRows[i], onRows[i]
		if off[0] != on[0] {
			t.Fatalf("arm mismatch: %q vs %q", off[0], on[0])
		}
		slo := num(on, 6)
		totalShed += num(on, 4)
		var paced, deferred int64
		if _, err := fmt.Sscanf(on[9], "%d/%d", &paced, &deferred); err != nil {
			t.Fatalf("paced/deferred cell %q: %v", on[9], err)
		}
		pacedDeferred += float64(paced + deferred)
		// Off-arm degradation: latency blowout past 2x SLO, or goodput
		// collapsing under 70% of offered.
		offDegraded := ms(off, 5) > 2*slo || num(off, 3) < 0.7*num(off, 2)
		if offDegraded && ms(on, 5) <= ms(off, 5) {
			degradedAndHeld++
		}
		if att := num(on, 7); att < 0 || att > 100 {
			t.Fatalf("%s attain %% = %.1f", on[0], att)
		}
		if num(on, 8) <= 0 {
			t.Fatalf("%s adaptive cap = %s", on[0], on[8])
		}
	}
	if totalShed == 0 {
		t.Fatal("autopilot never shed under 2-4x overload")
	}
	if raceEnabled {
		// The off-vs-on latency comparison and the gate activity are
		// timing claims the detector's slowdown distorts; race coverage
		// of the shed path lives in admission's TestShedStormRace.
		t.Logf("race detector on: structural checks only (%d/4 degraded-and-held, paced+deferred %.0f)",
			degradedAndHeld, pacedDeferred)
		return
	}
	if pacedDeferred == 0 {
		t.Fatal("gates never paced maintenance nor deferred repartitions")
	}
	if degradedAndHeld < 2 {
		t.Fatalf("only %d/4 scenarios show off-arm degradation with on-arm holding", degradedAndHeld)
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "post-storm drain" || !strings.Contains(last[9], "reconverged=true") {
		t.Fatalf("post-storm row: %v", last)
	}
}
