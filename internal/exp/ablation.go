package exp

import (
	"time"

	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/wal"
	"dora/internal/workload"
	"dora/internal/workload/tatp"
	"dora/internal/workload/tpcc"
)

// A1PartitionCount ablates the number of micro-engines per table: too
// few serialize unrelated keys behind one worker; too many (beyond the
// hardware contexts) only add queue hops. The balancer's job (E6) is to
// find this knee at runtime.
func A1PartitionCount(c Config, counts []int) (*Table, error) {
	c = c.fill()
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8, 16}
	}
	tb := &Table{
		Title:  "A1  ablation: DORA partitions per table vs TATP throughput",
		Header: []string{"partitions/table", "dora tps"},
	}
	for _, n := range counts {
		cs := &metrics.CriticalSectionStats{}
		s, err := sm.Open(sm.Options{Frames: 1 << 14, CS: cs})
		if err != nil {
			return nil, err
		}
		db, err := tatp.Load(s, c.Subscribers)
		if err != nil {
			return nil, err
		}
		e := dora.New(s, dora.Config{PartitionsPerTable: n, Domains: db.Domains()})
		res := (&workload.Driver{
			Engine: e, Mix: db.NewMix(tatp.MixOptions{}),
			Clients: c.Clients, Duration: c.Duration, Seed: 101,
		}).Run()
		_ = e.Close()
		_ = s.Close()
		tb.Rows = append(tb.Rows, []string{d2(int64(n)), f1(res.Throughput)})
	}
	return tb, nil
}

// slowStore wraps the in-memory log store with a simulated device sync
// latency, so group commit has a real batching window to exploit (an
// instant "fsync" never lets two commits overlap).
type slowStore struct {
	*wal.MemStore
	delay time.Duration
}

func (s *slowStore) Sync() error {
	time.Sleep(s.delay)
	return s.MemStore.Sync()
}

// A2GroupCommit ablates the group-commit path: with a 200µs simulated
// log-device sync, the fraction of commit forces absorbed by another
// transaction's flush grows with the client count, and throughput holds
// far above the 1/sync-latency ceiling a one-commit-per-sync log would
// impose.
func A2GroupCommit(c Config, clients []int) (*Table, error) {
	c = c.fill()
	if len(clients) == 0 {
		clients = []int{1, 4, 16, 64}
	}
	const syncDelay = 200 * time.Microsecond
	tb := &Table{
		Title:  "A2  ablation: group commit under a 200us log-sync latency (DORA, TATP)",
		Header: []string{"clients", "tps", "log syncs", "grouped %"},
		Caption: "grouped % = forces absorbed into another force's device sync;\n" +
			"without batching, tps could not exceed 1/sync-latency = 5000/s\n" +
			"for the update transactions.",
	}
	for _, n := range clients {
		cs := &metrics.CriticalSectionStats{}
		s, err := sm.Open(sm.Options{
			Frames:   1 << 14,
			CS:       cs,
			LogStore: &slowStore{MemStore: wal.NewMemStore(), delay: syncDelay},
		})
		if err != nil {
			return nil, err
		}
		db, err := tatp.Load(s, c.Subscribers)
		if err != nil {
			return nil, err
		}
		e := dora.New(s, dora.Config{PartitionsPerTable: c.Partitions, Domains: db.Domains()})
		s0 := s.Log.Stats()
		res := (&workload.Driver{
			Engine: e, Mix: db.NewMix(tatp.MixOptions{}),
			Clients: n, Duration: c.Duration, Seed: 102,
		}).Run()
		s1 := s.Log.Stats()
		forces := s1.Forces - s0.Forces
		syncs := s1.Syncs - s0.Syncs
		_ = e.Close()
		_ = s.Close()
		// The flush daemon may also sync on pending-byte thresholds with
		// no force outstanding, so clamp at zero for the degenerate case.
		pct := 0.0
		if forces > 0 && syncs < forces {
			pct = 100 * float64(forces-syncs) / float64(forces)
		}
		tb.Rows = append(tb.Rows, []string{
			d2(int64(n)), f1(res.Throughput), d2(syncs), f1(pct),
		})
	}
	return tb, nil
}

// A3Claims ablates DORA's deadlock-avoidance protocol (the atomic
// canonical enqueue of up-front lock claims for later-phase actions) on
// TPC-C, whose multi-phase NewOrder/Delivery conflicts deadlock across
// partitions without it and then burn the local-wait timeout.
func A3Claims(c Config) (*Table, error) {
	c = c.fill()
	tb := &Table{
		Title:  "A3  ablation: up-front lock claims (deadlock avoidance), TPC-C (DORA)",
		Header: []string{"claims", "tps", "local timeouts", "aborted"},
		Caption: "without claims, cross-phase lock cycles between NewOrder and\n" +
			"Delivery resolve only via the local wait timeout.",
	}
	for _, disabled := range []bool{false, true} {
		cs := &metrics.CriticalSectionStats{}
		s, err := sm.Open(sm.Options{Frames: 1 << 14, CS: cs})
		if err != nil {
			return nil, err
		}
		db, err := tpcc.Load(s, tpcc.DefaultScale(c.Warehouses))
		if err != nil {
			return nil, err
		}
		var e engine.Engine = dora.New(s, dora.Config{
			PartitionsPerTable: c.Partitions,
			Domains:            db.Domains(),
			DisableClaims:      disabled,
			LocalTimeout:       500 * time.Millisecond,
		})
		de := e.(*dora.Dora)
		res := (&workload.Driver{
			Engine: e, Mix: db.NewMix(tpcc.MixOptions{}),
			Clients: c.Clients, Duration: c.Duration, Seed: 103, MaxRetries: 3,
		}).Run()
		name := "on"
		if disabled {
			name = "off"
		}
		tb.Rows = append(tb.Rows, []string{
			name, f1(res.Throughput), d2(de.Timeouts.Load()), d2(res.Aborted),
		})
		_ = e.Close()
		_ = s.Close()
	}
	return tb, nil
}
