package exp

import (
	"sync"
	"sync/atomic"
	"time"

	"dora/internal/wal"
	"dora/internal/wal/clog"
)

// nullStore discards log bytes (after the header handshake), isolating
// E11's measurement to the append path itself: no device time, no memory
// growth, syncs are free — exactly the regime where the log-buffer
// critical section is the bottleneck.
type nullStore struct {
	mu     sync.Mutex
	header []byte
}

func (s *nullStore) Write(b []byte) error {
	s.mu.Lock()
	if len(s.header) < wal.HeaderSize {
		keep := wal.HeaderSize - len(s.header)
		if keep > len(b) {
			keep = len(b)
		}
		s.header = append(s.header, b[:keep]...)
	}
	s.mu.Unlock()
	return nil
}

func (s *nullStore) Sync() error { return nil }

func (s *nullStore) Contents() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.header...), nil
}

func (s *nullStore) Close() error { return nil }

// E11LogScalability measures the tentpole claim of the consolidation-array
// log manager: append throughput as concurrent appenders grow, single-
// mutex log vs clog. The legacy log serializes checksum + memcpy of every
// record behind one mutex, so it flattens (then degrades) as appenders
// convoy; clog serializes only per-group pointer bumps — its consolidated
// share grows with contention and throughput keeps scaling.
func E11LogScalability(c Config, appenders []int) (*Table, error) {
	c = c.fill()
	if len(appenders) == 0 {
		appenders = []int{1, 2, 4, 8, 16}
	}
	payload := make([]byte, 48)
	undo := make([]byte, 16)

	run := func(mk func() (wal.Manager, error), n int) (persec float64, stats wal.Stats, err error) {
		l, err := mk()
		if err != nil {
			return 0, wal.Stats{}, err
		}
		var total atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rec := wal.Record{Kind: wal.KUpdate, TxnID: uint64(w + 1), Redo: payload, Undo: undo}
				count := int64(0)
				for {
					select {
					case <-stop:
						total.Add(count)
						return
					default:
					}
					for i := 0; i < 64; i++ {
						rec.LSN = 0
						l.Append(&rec)
					}
					count += 64
				}
			}(w)
		}
		start := time.Now()
		time.Sleep(c.Duration)
		close(stop)
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		stats = l.Stats()
		if cerr := l.Close(); cerr != nil {
			return 0, stats, cerr
		}
		return float64(total.Load()) / elapsed, stats, nil
	}

	tb := &Table{
		Title: "E11  log-manager scalability: appends/s vs concurrent appenders",
		Header: []string{"appenders", "mutex log/s", "clog/s", "clog/mutex",
			"consolidated %"},
		Caption: "mutex log = single-mutex append path (checksum+memcpy inside the\n" +
			"critical section); clog = consolidation-array reservation with\n" +
			"parallel buffer fill. consolidated % = appends that piggybacked on\n" +
			"another thread's reservation and never touched the shared tail.",
	}
	for _, n := range appenders {
		if n < 1 {
			n = 1
		}
		legacyTPS, _, err := run(func() (wal.Manager, error) {
			l, err := wal.New(&nullStore{}, nil)
			if err != nil {
				return nil, err
			}
			// The legacy log buffers appends until forced; drain it in the
			// background so memory stays flat while we measure appends.
			stopDrain := make(chan struct{})
			go func() {
				t := time.NewTicker(time.Millisecond)
				defer t.Stop()
				for {
					select {
					case <-stopDrain:
						return
					case <-t.C:
						_ = l.FlushAll()
					}
				}
			}()
			return &drainedLog{Log: l, stop: stopDrain}, nil
		}, n)
		if err != nil {
			return nil, err
		}
		clogTPS, cst, err := run(func() (wal.Manager, error) {
			return clog.New(&nullStore{}, nil)
		}, n)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if legacyTPS > 0 {
			ratio = clogTPS / legacyTPS
		}
		consolidated := 0.0
		if cst.Appends > 0 {
			consolidated = 100 * float64(cst.Consolidated) / float64(cst.Appends)
		}
		tb.Rows = append(tb.Rows, []string{
			d2(int64(n)), f1(legacyTPS), f1(clogTPS), f2(ratio), f1(consolidated),
		})
	}
	return tb, nil
}

// drainedLog pairs the legacy log with its background drainer so Close
// stops both.
type drainedLog struct {
	*wal.Log
	stop chan struct{}
}

func (d *drainedLog) Close() error {
	close(d.stop)
	return d.Log.Close()
}
