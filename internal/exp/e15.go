package exp

import (
	"fmt"

	"dora/internal/buffer"
	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/maint"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/workload"
	"dora/internal/workload/tatp"
)

// E15PageCleaning measures the latch-free owner write path: with owner
// mutations of stamped heap pages skipping the exclusive frame latch and
// page cleaning moved to the owner-coordinated copy-on-write protocol
// (the buffer pool's flush daemon ships snapshot requests to owning
// workers instead of latching their frames), the frame-latch
// acquisitions per aligned WRITE fall to ~0 once the maintenance daemon
// has converged the stamps — with the flush daemon running and hardening
// pages the whole time.
//
// The metric is the fraction of owner-thread heap mutations that still
// took the exclusive frame latch: ~1 right after load (nothing is
// stamped), 1.0 under the latched baseline protocol
// (dora.Config.LatchedOwnerWrites) no matter how converged the stamps
// are, ~0 once stamps converge under the copy-on-write protocol. "snap
// ships" counts the cleaner's snapshot requests executed on owner
// threads — the proof that cleaning kept running while writes went
// latch-free. The final row drives the same write-heavy mix through the
// open-loop (arrival-rate) driver at ~2x the measured closed-loop
// capacity: past the knee, latency reflects queueing and the drop
// accounting measures the excess — the overload view a closed loop
// structurally cannot show. The conventional engine has no ownership;
// its row is the unchanged baseline.
func E15PageCleaning(c Config) (*Table, error) {
	c = c.fill()
	tb := &Table{
		Title: "E15  page cleaning: frame latches on aligned writes under a write-heavy mix, TATP",
		Header: []string{"engine", "phase", "latched/owned write", "owned writes",
			"snap ships", "cleaned", "tps", "p99 ms", "dropped"},
		Caption: "latched/owned write = owner-thread heap mutations that took the exclusive\n" +
			"frame latch (the class copy-on-write page cleaning retires; n/a without\n" +
			"ownership). snap ships = cleaner snapshot requests run on owner threads.\n" +
			"latched = the pre-CoW protocol forced via config (stamps converged, still\n" +
			"latching every write). open-loop = Poisson arrivals at ~2x capacity with a\n" +
			"bounded in-flight cap: drops + p99 show overload instead of saturation.",
	}

	// Conventional baseline: no ownership, no stamps, no owned writes.
	{
		db, e, _, closeRig, err := tatpRig(c, "conventional")
		if err != nil {
			return nil, fmt.Errorf("e15 conventional: %w", err)
		}
		_, tps := measureWrites(c, db, e)
		if total := ownedWriteTotal(db); total != 0 {
			closeRig()
			return nil, fmt.Errorf("e15: conventional engine performed %d owned writes, want 0", total)
		}
		tb.Rows = append(tb.Rows, []string{"conventional", "steady", "n/a", "-", "-", "-", f1(tps), "-", "-"})
		closeRig()
	}

	// Latched baseline: stamps converged, cleaner running, but owner
	// mutations forced onto the exclusive frame latch (the old protocol).
	{
		db, e, _, closeRig, err := tatpRigE15(c, true)
		if err != nil {
			return nil, fmt.Errorf("e15 latched: %w", err)
		}
		eng := e.(*dora.Dora)
		d := maint.New(db.SM, eng, maint.Config{})
		cl := buffer.NewCleaner(db.SM.Pool, buffer.CleanerConfig{})
		cl.Start()
		d.Drain()
		ratio, tps := measureWrites(c, db, e)
		ships := db.SM.Pool.SnapshotShips.Load()
		cleaned := cl.CleanedPages.Load()
		tb.Rows = append(tb.Rows, []string{"dora/latched", "converged", f3(ratio),
			d2(ownedWriteTotal(db)), d2(ships), d2(cleaned), f1(tps), "-", "-"})
		_ = cl.Close()
		_ = d.Close()
		closeRig()
	}

	// Copy-on-write protocol: fresh (unstamped) -> converged -> open-loop
	// overload, cleaner running throughout.
	db, e, _, closeRig, err := tatpRigE15(c, false)
	if err != nil {
		return nil, fmt.Errorf("e15 dora: %w", err)
	}
	defer closeRig()
	eng := e.(*dora.Dora)
	d := maint.New(db.SM, eng, maint.Config{})
	defer d.Close()
	cl := buffer.NewCleaner(db.SM.Pool, buffer.CleanerConfig{})
	cl.Start()
	defer cl.Close()

	pool := db.SM.Pool
	var prevShips, prevCleaned int64
	row := func(phase string, ratio, tps float64, extra ...string) {
		ships, cleaned := pool.SnapshotShips.Load(), cl.CleanedPages.Load()
		cells := []string{"dora/cow", phase, f3(ratio), d2(ownedWriteTotal(db)),
			d2(ships - prevShips), d2(cleaned - prevCleaned), f1(tps)}
		prevShips, prevCleaned = ships, cleaned
		if len(extra) == 0 {
			extra = []string{"-", "-"}
		}
		tb.Rows = append(tb.Rows, append(cells, extra...))
	}

	ratio, tps := measureWrites(c, db, e)
	row("fresh load", ratio, tps) // nothing stamped: every owner write latches
	d.Drain()
	ratio, tps = measureWrites(c, db, e)
	row("converged", ratio, tps) // stamps converged: latch-free writes

	// Open-loop overload: Poisson arrivals at ~2x the closed-loop
	// capacity just measured, bounded in-flight.
	rate := c.ArrivalRate
	if rate <= 0 {
		rate = 2 * tps
		if rate < 100 {
			rate = 100
		}
	}
	inflight := c.MaxInFlight
	if inflight <= 0 {
		inflight = 256
	}
	resetOwnedWrites(db)
	ol := workload.OpenLoop{
		Engine: eng, Mix: db.WriteMix(tatp.MixOptions{}),
		Rate: rate, MaxInFlight: inflight, Duration: c.Duration, Seed: 1515,
	}
	ores := ol.Run()
	row("open-loop", ownedWriteRatio(db), ores.Throughput,
		fmt.Sprintf("%.1f", float64(ores.P99US)/1000), d2(ores.Dropped))
	return tb, nil
}

// tatpRigE15 is tatpRig with the DORA engine's latched-owner-write
// baseline toggle.
func tatpRigE15(c Config, latched bool) (*tatp.DB, engine.Engine, *metrics.CriticalSectionStats, func(), error) {
	cs := &metrics.CriticalSectionStats{}
	s, err := sm.Open(sm.Options{Frames: 1 << 14, CS: cs})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	db, err := tatp.Load(s, c.Subscribers)
	if err != nil {
		_ = s.Close()
		return nil, nil, nil, nil, err
	}
	e := dora.New(s, dora.Config{
		PartitionsPerTable: c.Partitions,
		Domains:            db.Domains(),
		LatchedOwnerWrites: latched,
	})
	return db, e, cs, func() { _ = e.Close(); _ = s.Close() }, nil
}

// measureWrites resets the owned-write counters, runs the write-heavy
// TATP mix closed-loop, and reports latched/total plus throughput.
func measureWrites(c Config, db *tatp.DB, e engine.Engine) (float64, float64) {
	resetOwnedWrites(db)
	dr := workload.Driver{
		Engine: e, Mix: db.WriteMix(tatp.MixOptions{}),
		Clients: c.Clients, Duration: c.Duration, Seed: 1515,
	}
	res := dr.Run()
	return ownedWriteRatio(db), res.Throughput
}

func resetOwnedWrites(db *tatp.DB) {
	for _, tbl := range tatpTables(db) {
		tbl.Heap.OwnedWrites.Reset()
		tbl.Heap.OwnedWritesLatched.Reset()
	}
}

func ownedWriteRatio(db *tatp.DB) float64 {
	var total, latched int64
	for _, tbl := range tatpTables(db) {
		total += tbl.Heap.OwnedWrites.Load()
		latched += tbl.Heap.OwnedWritesLatched.Load()
	}
	if total == 0 {
		return 0
	}
	return float64(latched) / float64(total)
}

func ownedWriteTotal(db *tatp.DB) int64 {
	var total int64
	for _, tbl := range tatpTables(db) {
		total += tbl.Heap.OwnedWrites.Load()
	}
	return total
}
