package exp

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"dora/internal/buffer"
	"dora/internal/dora"
	"dora/internal/engine/conventional"
	"dora/internal/repl"
	"dora/internal/sm"
	"dora/internal/wal"
	"dora/internal/workload"
	"dora/internal/workload/tatp"
)

// E17RedoScalability measures the partition-parallel redo pipeline on
// both of its backward paths.
//
// Recovery rows: a logged TATP primary runs the write-heavy mix and
// crashes (its log survives, its pages do not); the same crash image is
// then recovered at 1, 2, 4 and 8 appliers, each run over a fresh disk
// and its own copy of the log. The dispatcher scans the log in LSN order
// and fans physical records out to appliers sharded by page id, so
// distinct pages redo concurrently while per-page order — the page-LSN
// idempotence invariant — is preserved. Every run's end state is
// digested (all heap pages, byte for byte, plus the undo tail the
// recovery appended) and compared against the serial run: the speedup
// column is only meaningful because the column next to it proves the
// parallel result identical.
//
// Replica rows: one DORA primary ships the same full-rate write mix to
// two replicas at once — one replaying serially, one through the applier
// pool — and the staleness of each is sampled throughout. After the load
// quiesces, each replica's remaining catch-up is timed. The parallel
// replica's lag must stay bounded (trend ~0 once caught up) and its
// heap must match the serial replica's byte for byte.
func E17RedoScalability(c Config) (*Table, error) {
	c = c.fill()
	tb := &Table{
		Title:  "E17  parallel redo: recovery scaling and replica catch-up, TATP write mix",
		Header: []string{"config", "redo ops/s", "peak lag", "end lag", "time", "speedup", "notes"},
		Caption: "recover rows: same crash image restarted at 1/2/4/8 appliers over fresh\n" +
			"disks; time = redo+undo+index rebuild, speedup vs the serial run, and every\n" +
			"run's heap pages and appended undo tail are digest-compared against serial\n" +
			"(state-equal = byte-identical). replica rows: one primary ships the same\n" +
			"write mix to a serial and a parallel replica concurrently; peak lag = max\n" +
			"(primary last-commit LSN - replica commit horizon) during the run, end lag\n" +
			"after catch-up, time = drain time after the load quiesced. The pipeline\n" +
			"keeps per-page LSN order on page-sharded appliers; commit horizons and\n" +
			"index maintenance stay on the dispatcher in LSN order, and readers only\n" +
			"see extent-consistent states.",
	}

	// --- Part A: crash-recovery redo scaling. ---
	store := wal.NewMemStore()
	s, err := sm.Open(sm.Options{Frames: 1 << 14, LogStore: store})
	if err != nil {
		return nil, err
	}
	db, err := tatp.Load(s, c.Subscribers)
	if err != nil {
		_ = s.Close()
		return nil, err
	}
	ce := conventional.New(s)
	(&workload.Driver{
		Engine: ce, Mix: db.WriteMix(tatp.MixOptions{}),
		Clients: c.Clients, Duration: c.Duration, Seed: 1717,
	}).Run()
	_ = ce.Close()
	if err := s.Log.FlushAll(); err != nil {
		return nil, err
	}
	// "Crash": only the synced log survives; recovery runs on fresh disks.
	_ = s.Close()

	var serialT time.Duration
	var serialDigest string
	for _, workers := range []int{1, 2, 4, 8} {
		crashed := store.CrashCopy()
		s2, err := sm.Open(sm.Options{Frames: 1 << 14, Disk: buffer.NewMemDisk(),
			LogStore: crashed, RedoWorkers: workers})
		if err != nil {
			return nil, err
		}
		if _, err := tatp.Schema(s2, c.Subscribers); err != nil {
			return nil, err
		}
		t0 := time.Now()
		st, err := s2.Recover()
		if err != nil {
			return nil, fmt.Errorf("e17 recover workers=%d: %w", workers, err)
		}
		el := time.Since(t0)
		dg, err := e17Digest(s2, crashed)
		if err != nil {
			return nil, err
		}
		speedup := "1.00x"
		note := "state-equal baseline"
		if workers == 1 {
			serialT, serialDigest = el, dg
		} else {
			speedup = fmt.Sprintf("%.2fx", serialT.Seconds()/el.Seconds())
			note = "state-equal"
			if p := runtime.GOMAXPROCS(0); p < workers {
				// Appliers are CPU-bound over a memory disk; below
				// workers-many cores the pool can only add scheduling
				// overhead, so the speedup column measures the machine,
				// not the pipeline.
				note = fmt.Sprintf("state-equal; gomaxprocs=%d caps scaling", p)
			}
			if dg != serialDigest {
				return nil, fmt.Errorf("e17: recovery at %d appliers diverges from serial end state", workers)
			}
		}
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("recover %d applier(s)", workers),
			f1(float64(st.Redone) / el.Seconds()), "-", "-",
			fmt.Sprintf("%.1fms", float64(el.Microseconds())/1000), speedup, note})
		_ = s2.Close()
	}

	// --- Part B: replica apply, serial vs parallel, same stream. ---
	rows, err := e17Replicas(c)
	if err != nil {
		return nil, err
	}
	tb.Rows = append(tb.Rows, rows...)
	return tb, nil
}

// e17Digest hashes the storage manager's full heap state (every table in
// catalog order, pages ascending, raw bytes) and the log store contents
// (the undo tail recovery appended) — the equivalence check's subject.
func e17Digest(s *sm.SM, store *wal.MemStore) (string, error) {
	h := sha256.New()
	for _, tbl := range s.Cat.Tables() {
		pids := tbl.Heap.Pages()
		sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
		for _, pid := range pids {
			f, err := s.Pool.Fetch(pid)
			if err != nil {
				return "", err
			}
			f.Latch.RLock()
			h.Write(f.Page.Data[:])
			f.Latch.RUnlock()
			s.Pool.Unpin(f, false)
		}
	}
	if store != nil {
		raw, err := store.Contents()
		if err != nil {
			return "", err
		}
		h.Write(raw)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// e17Replicas runs the replica half: a DORA primary drives the write mix
// while a serial and a parallel replica ingest the same shipped stream,
// each with its own sender goroutine.
func e17Replicas(c Config) ([][]string, error) {
	store := wal.NewMemStore()
	s, err := sm.Open(sm.Options{Frames: 1 << 14, LogStore: store})
	if err != nil {
		return nil, err
	}
	db, err := tatp.Load(s, c.Subscribers)
	if err != nil {
		_ = s.Close()
		return nil, err
	}
	eng := dora.New(s, dora.Config{PartitionsPerTable: c.Partitions, Domains: db.Domains()})
	sh, err := repl.AttachPrimary(s, store, repl.Rule{})
	if err != nil {
		_ = eng.Close()
		_ = s.Close()
		return nil, err
	}
	defer func() {
		_ = sh.Close()
		_ = eng.Close()
		_ = s.Close()
	}()
	mkRep := func(name string, workers int) (*repl.Replica, error) {
		r, err := repl.NewReplica(repl.Options{Frames: 1 << 14, RedoWorkers: workers,
			DDL: func(rs *sm.SM) error {
				_, derr := tatp.Schema(rs, c.Subscribers)
				return derr
			}})
		if err != nil {
			return nil, err
		}
		return r, sh.AddReplica(name, repl.LocalLink{R: r})
	}
	serial, err := mkRep("serial", 0)
	if err != nil {
		return nil, err
	}
	defer serial.Close()
	par, err := mkRep("parallel", c.RedoWorkers)
	if err != nil {
		return nil, err
	}
	defer par.Close()
	reps := []*repl.Replica{serial, par}
	for _, r := range reps {
		if err := e17CatchUp(s, r); err != nil {
			return nil, fmt.Errorf("e17 initial catch-up: %w", err)
		}
	}

	// Drive the write mix while sampling each replica's staleness.
	redone0 := [2]int64{serial.Redone(), par.Redone()}
	var peak [2]uint64
	stop := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			p := s.LastCommitLSN()
			for i, r := range reps {
				if h := r.CommitHorizon(); p > h && p-h > peak[i] {
					peak[i] = p - h
				}
			}
		}
	}()
	t0 := time.Now()
	(&workload.Driver{
		Engine: eng, Mix: db.WriteMix(tatp.MixOptions{}),
		Clients: c.Clients, Duration: c.Duration, Seed: 7171,
	}).Run()
	loadT := time.Since(t0)
	close(stop)
	sampleWG.Wait()

	// Timed drain: each replica catches the quiesced primary's horizon.
	var catchT [2]time.Duration
	var catchErr [2]error
	var wg sync.WaitGroup
	for i, r := range reps {
		wg.Add(1)
		go func(i int, r *repl.Replica) {
			defer wg.Done()
			t := time.Now()
			catchErr[i] = e17CatchUp(s, r)
			catchT[i] = time.Since(t)
		}(i, r)
	}
	wg.Wait()
	for _, err := range catchErr {
		if err != nil {
			return nil, fmt.Errorf("e17 drain: %w", err)
		}
	}

	// Built-in equivalence check: same stream, byte-identical heaps.
	ds, err := e17Digest(serial.SM(), nil)
	if err != nil {
		return nil, err
	}
	dp, err := e17Digest(par.SM(), nil)
	if err != nil {
		return nil, err
	}
	if ds != dp {
		return nil, fmt.Errorf("e17: parallel replica heap diverges from serial replica")
	}

	var rows [][]string
	for i, r := range reps {
		name := "replica serial"
		note := "state-equal vs parallel"
		speedup := "-"
		if i == 1 {
			name = fmt.Sprintf("replica %d appliers", c.RedoWorkers)
			note = "state-equal vs serial"
			// Catch-up speedup is only meaningful when the serial replica
			// actually had a backlog to drain; with both caught up at
			// quiesce the division compares two zeros.
			if catchT[0] > 2*time.Millisecond && catchT[1] > 0 {
				speedup = fmt.Sprintf("%.2fx", catchT[0].Seconds()/catchT[1].Seconds())
			}
			if p := runtime.GOMAXPROCS(0); p < c.RedoWorkers {
				note += fmt.Sprintf("; gomaxprocs=%d caps scaling", p)
			}
		}
		total := loadT + catchT[i]
		endLag := uint64(0)
		if p, h := s.LastCommitLSN(), r.CommitHorizon(); p > h {
			endLag = p - h
		}
		rows = append(rows, []string{name,
			f1(float64(r.Redone()-redone0[i]) / total.Seconds()),
			fmt.Sprintf("%dB", peak[i]), fmt.Sprintf("%dB", endLag),
			fmt.Sprintf("%.1fms", float64(catchT[i].Microseconds())/1000),
			speedup, note})
	}
	return rows, nil
}

// e17CatchUp waits until the replica's replayed commit horizon reaches
// the primary's last commit (flushing so every resolution ships).
func e17CatchUp(s *sm.SM, r *repl.Replica) error {
	deadline := time.Now().Add(60 * time.Second)
	for r.CommitHorizon() < s.LastCommitLSN() {
		if time.Now().After(deadline) {
			return fmt.Errorf("replica stuck at horizon %d, primary last commit %d",
				r.CommitHorizon(), s.LastCommitLSN())
		}
		_ = s.Log.FlushAll()
		time.Sleep(time.Millisecond)
	}
	return nil
}
