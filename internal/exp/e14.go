package exp

import (
	"fmt"
	"math/rand"

	"dora/internal/catalog"
	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/engine/conventional"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/tx"
	"dora/internal/workload"
	"dora/internal/xct"
)

// E14ContinuationShips measures the asynchronous continuation-passing
// ship path against the blocking (parked-sender) baseline on a workload
// built to be all cross-partition traffic: every transaction's single
// action runs on an "acct" partition worker and performs one foreign
// operation on the "audit" table, whose subtrees are owned by different
// workers. Under blocking ships the acct worker parks for the full
// round trip of every transaction; under continuation ships it suspends
// the action, keeps draining its inbox, and resumes when the audit
// worker enqueues the continuation back.
//
// The table reports, per engine/mode: saturation throughput, the ship
// counts by protocol, and "overlap" — actions a worker executed while
// one of its earlier actions was suspended on an in-flight foreign
// operation. Overlap is the direct proof that sender threads drain
// their inboxes while foreign ops are in flight; it is structurally
// zero under blocking ships. The conventional engine has no partitions
// and no ships; its row is the unchanged baseline, identical whichever
// ship protocol DORA uses.
func E14ContinuationShips(c Config) (*Table, error) {
	c = c.fill()
	tb := &Table{
		Title:  "E14  continuation vs blocking ships: cross-partition txn throughput at saturation",
		Header: []string{"engine", "tps", "blocking ships", "cont ships", "overlap execs", "side effects"},
		Caption: "every txn: local acct update + one foreign audit op (always another worker's\n" +
			"subtree). overlap execs = actions a worker ran while an earlier action of its\n" +
			"was suspended on an in-flight foreign op (sender kept draining; impossible\n" +
			"when ships park the sender). side effects = audit total == acct total ==\n" +
			"committed (exactly-once). conventional has no ships: unchanged baseline.",
	}

	type mode struct {
		name     string
		engine   string // "conventional" or "dora"
		blocking bool
	}
	for _, m := range []mode{
		{"conventional", "conventional", false},
		{"dora/blocking", "dora", true},
		{"dora/continuation", "dora", false},
	} {
		row, err := e14Run(c, m.engine, m.blocking, m.name)
		if err != nil {
			return nil, fmt.Errorf("e14 %s: %w", m.name, err)
		}
		tb.Rows = append(tb.Rows, row)
	}
	return tb, nil
}

// e14Work is the simulated per-record compute of each transaction half
// (see xferFlow).
const e14Work = 2000

// e14DB is the two-table micro-schema: acct and audit, both partitioned
// by id over the same domain, served by DISJOINT worker sets (every
// table gets its own partitions), so an audit access from an acct
// worker is always a ship.
type e14DB struct {
	acct, audit *catalog.Table
	rows        int64
}

func e14Load(s *sm.SM, rows int64) (*e14DB, error) {
	spec := func(name string) sm.TableSpec {
		return sm.TableSpec{
			Name: name,
			Fields: []catalog.Field{
				{Name: "id", Type: tuple.TInt},
				{Name: "n", Type: tuple.TInt},
			},
			KeyFields: []string{"id"},
			Key:       func(r tuple.Record) int64 { return r[0].Int },
		}
	}
	acct, err := s.CreateTable(spec("acct"))
	if err != nil {
		return nil, err
	}
	audit, err := s.CreateTable(spec("audit"))
	if err != nil {
		return nil, err
	}
	ses := s.Session(0)
	txn := s.Begin()
	for i := int64(1); i <= rows; i++ {
		if err := ses.Insert(txn, acct, tuple.Record{tuple.I(i), tuple.I(0)}); err != nil {
			return nil, err
		}
		if err := ses.Insert(txn, audit, tuple.Record{tuple.I(i), tuple.I(0)}); err != nil {
			return nil, err
		}
		if i%2000 == 0 {
			if err := s.Commit(txn); err != nil {
				return nil, err
			}
			txn = s.Begin()
		}
	}
	if err := s.Commit(txn); err != nil {
		return nil, err
	}
	return &e14DB{acct: acct, audit: audit, rows: rows}, nil
}

// xferFlow is the E14 transaction: one action, routed to acct[k]'s
// partition, that updates acct[k] locally and audit[k] remotely. With a
// continuation engine the foreign op suspends the action; otherwise it
// runs synchronously (shipping blocking under DORA, inline under the
// conventional engine).
//
// Both halves carry e14Work spin iterations of simulated per-record
// compute: a parked sender then serializes local work + round trip +
// owner work per transaction, while a suspended sender overlaps its
// next actions with the owner's work — the structural difference the
// experiment measures (not just message latency).
func (db *e14DB) xferFlow(k int64) *xct.Flow {
	bump := func(r tuple.Record) tuple.Record {
		spin(e14Work)
		r[1] = tuple.I(r[1].Int + 1)
		return r
	}
	return xct.NewFlow("xfer").AddPhase(&xct.Action{
		Table: "acct", KeyField: "id", Key: k, Mode: xct.Write, Label: "xfer",
		Run: func(env *xct.Env) error {
			if err := env.Ses.Mutate(env.Txn, db.acct, k, bump); err != nil {
				return err
			}
			if env.Async != nil {
				resume := env.Async.Suspend()
				env.Ses.MutateAsync(env.Txn, db.audit, k, bump, env.Async.Home(), resume)
				return nil
			}
			// Blocking baseline: the foreign read-modify-write decomposes
			// into its historical two parked round trips (read ship, then
			// update ship, with fn running on the sender in between) — the
			// legacy protocol this experiment is calibrated against.
			// Session.Mutate itself now runs as ONE owner-thread pass, so
			// using it here would measure that unrelated optimization
			// instead of the ship protocol.
			rec, err := env.Ses.Read(env.Txn, db.audit, k)
			if err != nil {
				return err
			}
			return env.Ses.Update(env.Txn, db.audit, k, bump(rec.Clone()))
		},
	})
}

func e14Run(c Config, which string, blocking bool, label string) ([]string, error) {
	s, err := sm.Open(sm.Options{Frames: 1 << 14})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	rows := c.Subscribers / 4
	if rows < 256 {
		rows = 256
	}
	db, err := e14Load(s, rows)
	if err != nil {
		return nil, err
	}
	var e engine.Engine
	switch which {
	case "conventional":
		e = conventional.New(s)
	case "dora":
		e = dora.New(s, dora.Config{
			PartitionsPerTable: c.Partitions,
			Domains:            map[string][2]int64{"acct": {1, rows}, "audit": {1, rows}},
			BlockingShips:      blocking,
		})
	default:
		return nil, fmt.Errorf("unknown engine %q", which)
	}
	defer e.Close()

	mix := workload.Mix{{
		Name: "xfer", Weight: 1,
		Build: func(rng *rand.Rand) *xct.Flow {
			return db.xferFlow(1 + rng.Int63n(rows))
		},
	}}
	dr := workload.Driver{
		Engine: e, Mix: mix,
		Clients: c.Clients, Duration: c.Duration, Seed: 1717,
	}
	res := dr.Run()

	// Snapshot the ship accounting before the verification scans below —
	// those ship (blocking, from a plain session) and would smear the
	// workload's numbers.
	blockShips, contShips, overlap := "-", "-", "-"
	if d, isDora := e.(*dora.Dora); isDora {
		ss := d.ShipSnapshot()
		blockShips = d2(ss.BlockingShips)
		contShips = d2(ss.ContShips)
		overlap = d2(ss.OverlapExec)
	}

	// Exactly-once side effects: every commit bumped acct[k] and
	// audit[k] once; every abort compensated both. The totals must agree
	// with each other and with the commit count.
	acctTotal, err := e14Total(s, db.acct)
	if err != nil {
		return nil, err
	}
	auditTotal, err := e14Total(s, db.audit)
	if err != nil {
		return nil, err
	}
	if acctTotal != auditTotal || acctTotal != res.Committed {
		return nil, fmt.Errorf("side effects diverged: acct=%d audit=%d committed=%d",
			acctTotal, auditTotal, res.Committed)
	}
	return []string{label, f1(res.Throughput), blockShips, contShips, overlap, "ok"}, nil
}

// e14Total sums column n over all rows of tbl (read through a plain
// session; ships to the owning workers under DORA).
func e14Total(s *sm.SM, tbl *catalog.Table) (int64, error) {
	ses := s.Session(99)
	var total int64
	var txn *tx.Txn = s.Begin()
	err := ses.ScanRange(txn, tbl, 1, int64(1)<<40, func(k int64, r tuple.Record) bool {
		total += r[1].Int
		return true
	})
	return total, err
}
