package exp

import (
	"fmt"
	"sync/atomic"
	"time"

	"dora/internal/admission"
	"dora/internal/dora"
	"dora/internal/dora/balance"
	"dora/internal/engine"
	"dora/internal/maint"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/trace"
	"dora/internal/workload"
	"dora/internal/workload/tatp"
)

// E20OverloadAutopilot stresses the overload autopilot — the SLO-driven
// admission controller (internal/admission) composed with the
// maintenance pace gate and the balancer load gate — against four
// adversarial load shapes, each offered at 2-3x the closed-loop
// capacity probed with the scenario's own mix (always at least 1.5x
// past the knee):
//
//	hot-key storm   zipfian key skew concentrating writes on few owners
//	flash crowd     a time-varying Poisson spike to 3x capacity
//	skew shift      a hotspot whose center jumps mid-run while a forced
//	                live repartition dirties the layout under load
//	ycsb 50/50      a 50% write mix (TATP reads are ~80%; this doubles
//	                write pressure on the commit pipeline)
//
// Each scenario runs twice: autopilot OFF (requests queue to the
// open-loop driver's deep in-flight cap, latency is unbounded queueing)
// and autopilot ON (the AIMD cap sheds the excess with typed
// ErrOverload + RetryAfter, read-only work shed last). The claim under
// test: with the autopilot on, the committed-transaction p99 stays
// within the SLO band and goodput degrades gracefully; with it off, the
// same offered load blows p99 through the target by an order of
// magnitude at the knee. The SLO itself is derived from the rig: 4x the
// p99 measured at an uncontended 0.5x operating point (so the
// experiment is scale-independent), clamped to [2ms, 250ms].
//
// The maintenance daemon and queue balancer run throughout. During the
// ON runs their gates hang off Controller.Shedding, so the
// paced/deferred column counts maintenance ticks yielded and
// repartitions withheld during the shed window — overload never
// competes with migrations for the same workers. The final row drains
// the daemon after the storms and reports that the layout re-converged
// (the deferrals delayed maintenance, they did not lose it).
func E20OverloadAutopilot(c Config) (*Table, error) {
	c = c.fill()
	tb := &Table{
		Title: "E20  overload autopilot: SLO admission control vs adversarial storms, TATP",
		Header: []string{"scenario", "autopilot", "offered tx/s", "goodput tx/s",
			"shed tx/s", "p99 ms", "SLO ms", "attain %", "cap", "paced/deferred"},
		Caption: "Offered load is 2-3x the scenario mix's own closed-loop probe (>= 1.5x\n" +
			"past the knee). Autopilot-off degrades by unbounded queueing (p99 blows\n" +
			"through the SLO) or by mass aborts (goodput collapses below offered).\n" +
			"attain % is the share of control ticks whose windowed p99 met the SLO;\n" +
			"cap is the AIMD in-flight cap at the end of the run. paced/deferred\n" +
			"counts maintenance ticks yielded and balancer decisions withheld while\n" +
			"the controller was shedding. The post-storm row drains the maintenance\n" +
			"daemon and reports whether the physical layout re-converged.",
	}

	tr := trace.New(trace.Config{SampleEvery: 16})
	defer tr.Close()
	db, de, closeRig, err := tatpRigE20(c, tr)
	if err != nil {
		return nil, err
	}
	defer closeRig()

	// Maintenance daemon + balancer run for the whole experiment; the
	// autopilot's Shedding probe is installed per ON run through the
	// swappable gate so OFF runs see an ungated system.
	md := maint.New(db.SM, de, maint.Config{})
	md.Start()
	defer func() { _ = md.Close() }()
	var gateCtrl atomic.Pointer[admission.Controller]
	gate := func() bool {
		ctrl := gateCtrl.Load()
		return ctrl != nil && ctrl.Shedding()
	}
	md.SetPaceGate(gate)
	balEvery := c.Duration / 12
	if balEvery < 10*time.Millisecond {
		balEvery = 10 * time.Millisecond
	}
	bal := balance.NewBalancer(de, balance.Policy{Every: balEvery, MinParts: 2}, "subscriber")
	bal.SetMaintGate(md.Converging)
	bal.SetLoadGate(gate)
	bal.Start()
	defer bal.Stop()

	// Closed-loop capacity: warm-up window discarded, median of three.
	mix := db.NewMix(tatp.MixOptions{})
	dr := workload.Driver{Engine: engine.Engine(de), Mix: mix,
		Clients: c.Clients, Duration: c.Duration, Seed: 2020}
	dr.Run()
	var tpss []float64
	for i := 0; i < 3; i++ {
		tpss = append(tpss, dr.Run().Throughput)
	}
	capacity := median(tpss)
	if capacity < 200 {
		capacity = 200
	}
	tb.Rows = append(tb.Rows, []string{"closed-loop capacity", "-", "-", f1(capacity),
		"-", "-", "-", "-", "-", "-"})

	// Derive the SLO from an uncontended 0.3x operating point: 8x the
	// baseline p95 (p95 is steadier than p99 under the power-of-two
	// histogram buckets), floored at 20ms so the target sits a couple of
	// buckets above the uncontended latency floor. The closed-loop probe
	// is client-bounded, so 0.3x of it is safely below the open-loop
	// knee.
	tr.Reset()
	base := workload.OpenLoop{Engine: de, Mix: mix, Rate: 0.3 * capacity,
		MaxInFlight: 256, Duration: c.Duration, Seed: 2020}
	bres := base.Run()
	slo := time.Duration(8*bres.P95US) * time.Microsecond
	if slo < 20*time.Millisecond {
		slo = 20 * time.Millisecond
	}
	if slo > 250*time.Millisecond {
		slo = 250 * time.Millisecond
	}
	tb.Rows = append(tb.Rows, []string{"baseline 0.3x", "-", f1(0.3 * capacity),
		f1(bres.Throughput), "0.0", msCell(bres.P99US), f2(float64(slo) / 1e6), "-", "-", "-"})

	// The control interval scales with the run so quick mode still gets
	// ~30 AIMD ticks per scenario.
	interval := c.Duration / 30
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}

	secs := c.Duration.Seconds()
	for i, scn := range e20Scenarios(db, de, c.Duration) {
		seed := int64(2021 + i)

		// Each mix has its own knee (a hotspot mix saturates one owner
		// long before the uniform capacity; the 50/50 write mix commits
		// cheaper transactions), so the >=1.5x offered load is anchored
		// to a closed-loop probe of the scenario's own mix.
		probe := workload.Driver{Engine: engine.Engine(de), Mix: scn.Mix(),
			Clients: c.Clients, Duration: c.Duration, Seed: seed}
		scnCap := probe.Run().Throughput
		if scnCap < 200 {
			scnCap = 200
		}

		// OFF: raw engine behind a deep open-loop cap — the adversary
		// sees unbounded queueing.
		offSc := scn.Make(scnCap)
		tr.Reset()
		off := offSc.Run(de, 4096, c.Duration, seed)
		tb.Rows = append(tb.Rows, []string{offSc.Name, "off",
			f1(float64(off.Offered) / secs), f1(off.Throughput),
			f1(float64(off.Shed) / secs), msCell(off.P99US),
			f2(float64(slo) / 1e6), "-", "-", "-"})

		// ON: same storm through the admission controller, gates armed.
		onSc := scn.Make(scnCap)
		tr.Reset()
		ctrl := admission.New(de, admission.Config{
			SLO:      slo,
			MaxCap:   4096,
			Interval: interval,
			Signal:   (&admission.TraceSignal{T: tr}).Window,
		})
		gateCtrl.Store(ctrl)
		paced0, def0 := md.UnitsPaced.Load(), bal.Deferred.Load()
		on := onSc.Run(ctrl, 4096, c.Duration, seed)
		st := ctrl.Snapshot()
		gateCtrl.Store(nil)
		ctrl.Stop()
		paced, deferred := md.UnitsPaced.Load()-paced0, bal.Deferred.Load()-def0
		tb.Rows = append(tb.Rows, []string{onSc.Name, "on",
			f1(float64(on.Offered) / secs), f1(on.Throughput),
			f1(float64(on.Shed) / secs), msCell(on.P99US),
			f2(float64(slo) / 1e6), f1(st.SLOAttainedPct()),
			fmt.Sprintf("%d", st.Cap), fmt.Sprintf("%d/%d", paced, deferred)})
		tb.Rows = append(tb.Rows, []string{"  class latency", "on", "-", "-",
			fmt.Sprintf("retry %.1fms", on.RetryAfterMeanMS),
			fmt.Sprintf("r %s w %s", msCell(on.ReadLat.P99US), msCell(on.WriteLat.P99US)),
			"-", "-", "-",
			fmt.Sprintf("shed r/w/m %d/%d/%d", st.ShedRead, st.ShedWrite, st.ShedMaint)})
	}

	// Post-storm: the gates are open again (no controller installed), so
	// deferred maintenance and repartitions can land. Drain and verify
	// the layout re-converged — pacing delayed the work, it did not
	// drop it.
	time.Sleep(2 * balEvery)
	md.Drain("subscriber")
	reconverged := !md.Converging("subscriber")
	ms := md.Snapshot()
	tb.Rows = append(tb.Rows, []string{"post-storm drain", "-", "-", "-", "-", "-", "-", "-", "-",
		fmt.Sprintf("reconverged=%v paced=%d migrated=%d", reconverged, ms.UnitsPaced, ms.RecordsMigrated)})
	return tb, nil
}

// e20Scn is one adversarial shape: Mix builds a fresh mix for the
// closed-loop capacity probe; Make builds the scenario (fresh generator
// state per run, so OFF and ON arms see the same storm from the same
// initial conditions) offered at >= 1.5x the probed capacity.
type e20Scn struct {
	Name string
	Mix  func() workload.Mix
	Make func(capacity float64) *workload.Scenario
}

// e20Scenarios returns the four adversarial shapes.
func e20Scenarios(db *tatp.DB, de *dora.Dora, dur time.Duration) []e20Scn {
	// Hot-key storm: zipfian skew over a 90/10 single-action mix.
	// Single-action flows keep the damage where admission control can
	// see and bound it — owner-inbox queueing — rather than in
	// cross-partition flows that were already admitted when the storm
	// hit.
	zipfMix := func() workload.Mix {
		return db.YCSBMix(0.9, tatp.MixOptions{SIDGen: workload.NewZipf(1, db.N, 1.2)})
	}
	// A narrow, intense hotspot: 90% of draws land in a ~0.4% key
	// window, so one owner carries nearly all the load wherever the
	// window sits.
	newHot := func() *workload.Hotspot {
		return workload.NewHotspot(1, db.N, 0.9, db.N/256+1)
	}
	ycsbMix := func() workload.Mix { return db.YCSBMix(0.5, tatp.MixOptions{}) }
	return []e20Scn{
		{
			Name: "hot-key storm",
			Mix:  zipfMix,
			Make: func(capacity float64) *workload.Scenario {
				return &workload.Scenario{Name: "hot-key storm", Mix: zipfMix(),
					Rate: 2 * capacity}
			},
		},
		{
			Name: "flash crowd",
			Mix:  func() workload.Mix { return db.NewMix(tatp.MixOptions{}) },
			Make: func(capacity float64) *workload.Scenario {
				return &workload.Scenario{Name: "flash crowd", Mix: db.NewMix(tatp.MixOptions{}),
					// Mean offered ~1.9x: 0.75x outside the spike, 3x
					// inside it for the middle half of the run.
					RateOf: workload.FlashCrowd(0.75*capacity, 3*capacity, dur/4, dur/2)}
			},
		},
		{
			Name: "skew shift",
			Mix:  func() workload.Mix { return db.NewMix(tatp.MixOptions{SIDGen: newHot()}) },
			Make: func(capacity float64) *workload.Scenario {
				hot := newHot()
				return &workload.Scenario{
					Name: "skew shift",
					Mix:  db.NewMix(tatp.MixOptions{SIDGen: hot}),
					Rate: 2 * capacity,
					Disturb: []workload.Disturbance{
						// Force a live repartition under load: split the
						// widest subscriber range. The rebalance hook dirties
						// the table, so the maintenance daemon has work to
						// pace while the controller sheds.
						{At: 0.4, Do: func() { e20ForceSplit(de, "subscriber") }},
						// Then yank the hot window to the front of the domain.
						{At: 0.5, Do: func() { hot.SetCenter(db.N / 10) }},
					},
				}
			},
		},
		{
			// Uniform keys: the adversary here is the write share (TATP
			// is ~80% reads; YCSB-A's 50% doubles commit-pipeline
			// pressure). Skew is hot-key storm's job.
			Name: "ycsb 50/50",
			Mix:  ycsbMix,
			Make: func(capacity float64) *workload.Scenario {
				// The 50/50 closed-loop probe is client-bounded well
				// below the open-loop knee (writes hold clients in the
				// commit pipeline), so 4x is what puts arrivals deep
				// enough past it for sustained queueing to dominate
				// scheduler burst noise.
				return &workload.Scenario{Name: "ycsb 50/50", Mix: ycsbMix(),
					Rate: 4 * capacity}
			},
		},
	}
}

// e20ForceSplit splits the widest range of table at its midpoint
// (best-effort; the storm proceeds regardless).
func e20ForceSplit(de *dora.Dora, table string) {
	rt := de.Router(table)
	if rt == nil {
		return
	}
	var lo, hi int64
	part, found := -1, false
	for _, r := range rt.Ranges() {
		if !found || r.Hi-r.Lo > hi-lo {
			lo, hi, part, found = r.Lo, r.Hi, r.Part, true
		}
	}
	if !found || hi <= lo {
		return
	}
	_, _ = de.SplitPartition(table, part, lo+(hi-lo+1)/2)
}

// msCell renders a microsecond latency as a millisecond table cell.
func msCell(us int64) string { return fmt.Sprintf("%.2f", float64(us)/1000) }

// tatpRigE20 is tatpRigE18 returning the concrete engine: the
// experiment wires the maintenance daemon, balancer, and admission
// controller around it, so the interface type is not enough.
func tatpRigE20(c Config, tr *trace.Tracer) (*tatp.DB, *dora.Dora, func(), error) {
	cs := &metrics.CriticalSectionStats{}
	s, err := sm.Open(sm.Options{Frames: 1 << 14, CS: cs, Spans: tr})
	if err != nil {
		return nil, nil, nil, err
	}
	db, err := tatp.Load(s, c.Subscribers)
	if err != nil {
		_ = s.Close()
		return nil, nil, nil, err
	}
	e := dora.New(s, dora.Config{
		PartitionsPerTable: c.Partitions,
		Domains:            db.Domains(),
		Tracer:             tr,
	})
	return db, e, func() { _ = e.Close(); _ = s.Close() }, nil
}
