package exp

import (
	"fmt"
	"math/rand"

	"dora/internal/dora"
	"dora/internal/maint"
	"dora/internal/sm"
	"dora/internal/workload"
	"dora/internal/workload/tatp"
	"dora/internal/xct"
)

// E19LockHierarchy is the flat-vs-hierarchical local-lock-table ablation
// (Config.FlatLocks keeps the per-key baseline):
//
//   - range scans: a BatchScanSubscribers flow locks a subscriber-id
//     interval with ONE ranged S request; the hierarchical table grants
//     it as a root intent plus a couple of granule locks (O(1) in the
//     scan width) while the flat baseline expands it key by key
//     (O(keys)). Measured as lock acquisitions per scan.
//   - maintenance gating: heap-migration units clear a whole assigned
//     range with one RangeBusy probe on the hierarchical table instead
//     of a KeyBusy probe per record (the flat baseline keeps per-key
//     probes — its range probe would sweep every entry). Measured as
//     busy-gate probes per maintenance unit.
//   - hot-key storm: zipfian single-key writers compete with multi-key
//     audit transactions whose point-lock runs trip per-transaction
//     escalation to a granule lock; rows compare flat, hierarchical
//     with escalation, and hierarchical with escalation disabled.
//   - aligned mix: the standard TATP mix, where almost every
//     transaction touches 1-4 keys — the hierarchy's intent overhead
//     must stay in the noise.
func E19LockHierarchy(c Config) (*Table, error) {
	c = c.fill()
	tb := &Table{
		Title: "E19  hierarchical intention locking vs flat per-key lock tables, TATP",
		Header: []string{"locks", "scenario", "acq/op", "rangelocks/op",
			"keyprobes/unit", "rangeprobes/unit", "esc", "deesc", "tps"},
		Caption: "acq/op = lock-table grant operations per range scan (width " +
			fmt.Sprint(e19ScanWidth) + " ids);\n" +
			"probes/unit = maintenance busy-gate probes per heap-migration unit;\n" +
			"esc/deesc = lock escalations and de-escalations during the storm;\n" +
			"storm = zipfian hot-key writers + " + fmt.Sprint(e19AuditSpan) +
			"-key audit readers. hier-noesc disables escalation.",
	}

	type variant struct {
		name string
		mut  func(*dora.Config)
		full bool // run scan/maint/mix scenarios, not just the storm
	}
	variants := []variant{
		{"flat", func(dc *dora.Config) { dc.FlatLocks = true }, true},
		{"hier", func(dc *dora.Config) {}, true},
		{"hier-noesc", func(dc *dora.Config) { dc.EscalateAt = -1 }, false},
	}
	for _, v := range variants {
		if err := e19Variant(c, tb, v.name, v.mut, v.full); err != nil {
			return nil, fmt.Errorf("e19 %s: %w", v.name, err)
		}
	}
	return tb, nil
}

const (
	// e19ScanWidth is the subscriber-id interval a batch scan locks.
	e19ScanWidth = 64
	// e19AuditSpan is the consecutive-key count of the storm's audit
	// transactions — above the default escalation threshold, so a full
	// run under one granule escalates.
	e19AuditSpan = 20
)

func e19Variant(c Config, tb *Table, name string, mut func(*dora.Config), full bool) error {
	db, eng, closeRig, err := tatpRigE19(c, mut)
	if err != nil {
		return err
	}
	defer closeRig()

	dash := []string{"-", "-", "-", "-", "-", "-", "-"}
	row := func(scenario string, cells map[int]string) {
		r := append([]string{name, scenario}, dash...)
		for i, s := range cells {
			r[2+i] = s
		}
		tb.Rows = append(tb.Rows, r)
	}

	if full {
		// Range scans: serial, fixed op count — the signal is lock
		// acquisitions per op, not throughput.
		ops := 400
		if c.Quick {
			ops = 60
		}
		rng := rand.New(rand.NewSource(1919))
		before := eng.LockSnapshot()
		for i := 0; i < ops; i++ {
			lo := 1 + rng.Int63n(db.N-e19ScanWidth)
			if err := eng.Exec(0, db.BatchScanSubscribers(lo, lo+e19ScanWidth-1)); err != nil {
				return fmt.Errorf("batch scan: %w", err)
			}
		}
		after := eng.LockSnapshot()
		row("range-scan", map[int]string{
			0: f1(float64(after.Acquisitions-before.Acquisitions) / float64(ops)),
			1: f1(float64(after.RangeLocks-before.RangeLocks) / float64(ops)),
		})

		// Maintenance gating: drain heap migration over the fresh
		// (unstamped) load and count busy-gate probes per unit.
		d := maint.New(db.SM, eng, maint.Config{})
		before = eng.LockSnapshot()
		d.Drain("subscriber")
		after = eng.LockSnapshot()
		st := d.Snapshot()
		units := st.UnitsRun
		if units == 0 {
			units = 1
		}
		row("maintenance", map[int]string{
			2: f1(float64(after.KeyProbes-before.KeyProbes) / float64(units)),
			3: f1(float64(after.RangeProbes-before.RangeProbes) / float64(units)),
		})
		_ = d.Close()
	}

	// Hot-key storm: zipfian single-key writers + multi-key audits.
	zipf := workload.NewZipf(1, db.N, 1.2)
	mix := workload.Mix{
		{Name: "hot-write", Weight: 3, Build: func(rng *rand.Rand) *xct.Flow {
			sid := zipf.Next(rng)
			return db.UpdateSubscriberData(sid, 1+rng.Int63n(4), rng.Int63n(2), rng.Int63n(256))
		}},
		{Name: "batch-audit", Weight: 1, Build: func(rng *rand.Rand) *xct.Flow {
			base := 1 + rng.Int63n(db.N-e19AuditSpan)
			return e19AuditFlow(db, base)
		}},
	}
	// Warm up first (faults pages in, lets the adaptive escalation
	// backoff converge), then report the best of two measured runs —
	// short runs on a shared box are noisy downward, not upward.
	before := eng.LockSnapshot()
	tps := e19Measure(eng, mix, c, 1901)
	after := eng.LockSnapshot()
	row("hot-key storm", map[int]string{
		4: d2(after.Escalations - before.Escalations),
		5: d2(after.Deescalations - before.Deescalations),
		6: f1(tps),
	})

	if full {
		tps := e19Measure(eng, db.NewMix(tatp.MixOptions{}), c, 1902)
		row("aligned mix", map[int]string{6: f1(tps)})
	}
	return nil
}

// e19Measure runs mix for one unmeasured warmup leg and two measured
// legs, returning the best measured throughput.
func e19Measure(eng *dora.Dora, mix workload.Mix, c Config, seed int64) float64 {
	warm := c.Duration / 2
	(&workload.Driver{Engine: eng, Mix: mix, Clients: c.Clients, Duration: warm, Seed: seed - 1}).Run()
	best := 0.0
	for leg := int64(0); leg < 2; leg++ {
		res := (&workload.Driver{
			Engine: eng, Mix: mix,
			Clients: c.Clients, Duration: c.Duration, Seed: seed + leg,
		}).Run()
		if res.Throughput > best {
			best = res.Throughput
		}
	}
	return best
}

// e19AuditFlow reads e19AuditSpan consecutive subscribers as one
// single-phase transaction: each point lock lands under (usually) one
// granule, so on the hierarchical table the run trips escalation at the
// default threshold and the remaining reads ride the granule lock.
func e19AuditFlow(db *tatp.DB, base int64) *xct.Flow {
	acts := make([]*xct.Action, 0, e19AuditSpan)
	for i := int64(0); i < e19AuditSpan; i++ {
		sid := base + i
		acts = append(acts, &xct.Action{
			Table: "subscriber", KeyField: "s_id", Key: sid, Mode: xct.Read,
			Label: "audit",
			Run: func(env *xct.Env) error {
				_, err := env.Ses.Read(env.Txn, db.Subscriber, sid)
				return err
			},
		})
	}
	return xct.NewFlow("BatchAudit").AddPhase(acts...)
}

// tatpRigE19 is tatpRig with a DORA config hook (FlatLocks/EscalateAt).
func tatpRigE19(c Config, mut func(*dora.Config)) (*tatp.DB, *dora.Dora, func(), error) {
	s, err := sm.Open(sm.Options{Frames: 1 << 14})
	if err != nil {
		return nil, nil, nil, err
	}
	db, err := tatp.Load(s, c.Subscribers)
	if err != nil {
		_ = s.Close()
		return nil, nil, nil, err
	}
	dc := dora.Config{PartitionsPerTable: c.Partitions, Domains: db.Domains()}
	mut(&dc)
	eng := dora.New(s, dc)
	return db, eng, func() { _ = eng.Close(); _ = s.Close() }, nil
}
