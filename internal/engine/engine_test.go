// Conformance test: both execution engines must implement engine.Engine
// with the same observable semantics — committed effects visible,
// aborted flows rolled back completely, concurrent increments isolated —
// over the same storage manager substrate and flow graphs.
package engine_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"dora/internal/catalog"
	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/engine/conventional"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/wal"
	"dora/internal/xct"
)

const nAccounts = 64

type rig struct {
	s   *sm.SM
	tbl *catalog.Table
	e   engine.Engine
}

// newRig loads a fresh accounts table and the requested engine over it.
func newRig(t *testing.T, which string) *rig {
	t.Helper()
	s, err := sm.Open(sm.Options{Frames: 256})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.CreateTable(sm.TableSpec{
		Name: "accounts",
		Fields: []catalog.Field{
			{Name: "id", Type: tuple.TInt},
			{Name: "balance", Type: tuple.TInt},
		},
		KeyFields: []string{"id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
	})
	if err != nil {
		t.Fatal(err)
	}
	ses := s.Session(0)
	setup := s.Begin()
	for i := int64(0); i < nAccounts; i++ {
		if err := ses.Insert(setup, tbl, tuple.Record{tuple.I(i), tuple.I(100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(setup); err != nil {
		t.Fatal(err)
	}
	var e engine.Engine
	switch which {
	case "conventional":
		e = conventional.New(s)
	case "dora":
		e = dora.New(s, dora.Config{
			PartitionsPerTable: 4,
			Domains:            map[string][2]int64{"accounts": {0, nAccounts}},
		})
	default:
		t.Fatalf("unknown engine %q", which)
	}
	t.Cleanup(func() {
		if err := e.Close(); err != nil {
			t.Errorf("close %s: %v", which, err)
		}
	})
	return &rig{s: s, tbl: tbl, e: e}
}

func engines() []string { return []string{"conventional", "dora"} }

// addFlow builds a two-action single-phase flow moving delta onto two
// accounts; failAfterFirst injects an error into the second action.
func (r *rig) addFlow(a, b, delta int64, failSecond bool) *xct.Flow {
	mk := func(key int64, fail bool) *xct.Action {
		return &xct.Action{
			Table: "accounts", KeyField: "id", Key: key, Mode: xct.Write,
			Label: fmt.Sprintf("add-%d", key),
			Run: func(env *xct.Env) error {
				if fail {
					return errors.New("injected failure")
				}
				return env.Ses.Mutate(env.Txn, r.tbl, key, func(rec tuple.Record) tuple.Record {
					rec[1] = tuple.I(rec[1].Int + delta)
					return rec
				})
			},
		}
	}
	return xct.NewFlow("add").AddPhase(mk(a, false), mk(b, failSecond))
}

func (r *rig) balance(t *testing.T, key int64) int64 {
	t.Helper()
	rec, err := r.s.Session(0).Read(r.s.Begin(), r.tbl, key)
	if err != nil {
		t.Fatalf("read %d: %v", key, err)
	}
	return rec[1].Int
}

func TestEngineName(t *testing.T) {
	for _, which := range engines() {
		r := newRig(t, which)
		if r.e.Name() != which {
			t.Fatalf("Name() = %q, want %q", r.e.Name(), which)
		}
	}
}

func TestEngineCommitVisible(t *testing.T) {
	for _, which := range engines() {
		t.Run(which, func(t *testing.T) {
			r := newRig(t, which)
			if err := r.e.Exec(0, r.addFlow(1, 2, 25, false)); err != nil {
				t.Fatal(err)
			}
			if got := r.balance(t, 1); got != 125 {
				t.Fatalf("account 1 = %d, want 125", got)
			}
			if got := r.balance(t, 2); got != 125 {
				t.Fatalf("account 2 = %d, want 125", got)
			}
			// The commit record must be durable once Exec returns (early
			// lock release must not weaken the durability guarantee).
			committed := false
			if err := r.s.Log.Scan(func(rec *wal.Record) error {
				if rec.Kind == wal.KCommit {
					committed = true
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if !committed {
				t.Fatal("no commit record in the log after Exec returned")
			}
		})
	}
}

func TestEngineAbortRollsBackBothActions(t *testing.T) {
	for _, which := range engines() {
		t.Run(which, func(t *testing.T) {
			r := newRig(t, which)
			err := r.e.Exec(0, r.addFlow(3, 4, 50, true))
			if err == nil {
				t.Fatal("flow with injected failure must report an error")
			}
			// The first action's update must be rolled back too.
			if got := r.balance(t, 3); got != 100 {
				t.Fatalf("account 3 = %d after abort, want 100", got)
			}
			if got := r.balance(t, 4); got != 100 {
				t.Fatalf("account 4 = %d after abort, want 100", got)
			}
		})
	}
}

func TestEngineConcurrentIncrementsSerialize(t *testing.T) {
	const workers, perWorker = 8, 20
	for _, which := range engines() {
		t.Run(which, func(t *testing.T) {
			r := newRig(t, which)
			var wg sync.WaitGroup
			errs := make(chan error, workers*perWorker)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						// All workers hammer the same two accounts; locks
						// (global or partition-local) must serialize them.
						if err := r.e.Exec(w, r.addFlow(5, 6, 1, false)); err != nil {
							errs <- err
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			failed := 0
			for err := range errs {
				t.Logf("retryable abort: %v", err)
				failed++
			}
			want := int64(100 + workers*perWorker - failed)
			if got := r.balance(t, 5); got != want {
				t.Fatalf("account 5 = %d, want %d", got, want)
			}
			if got := r.balance(t, 6); got != want {
				t.Fatalf("account 6 = %d, want %d", got, want)
			}
		})
	}
}

// TestEngineCommitDurableAtReturn checks the flush-pipelining contract:
// when Exec returns success the commit record is already hardened, even
// though locks were released before the sync.
func TestEngineCommitDurableAtReturn(t *testing.T) {
	for _, which := range engines() {
		t.Run(which, func(t *testing.T) {
			r := newRig(t, which)
			if err := r.e.Exec(0, r.addFlow(7, 8, 5, false)); err != nil {
				t.Fatal(err)
			}
			if d, n := r.s.Log.Durable(), r.s.Log.Next(); d == 0 || d > n {
				t.Fatalf("durable horizon %d inconsistent with next %d", d, n)
			}
			if r.s.Commits.Load() == 0 {
				t.Fatal("no commit counted")
			}
		})
	}
}
