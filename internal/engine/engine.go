// Package engine defines the execution-engine interface shared by the
// conventional (thread-to-transaction) implementation and DORA
// (thread-to-data), plus common statistics plumbing. Workload drivers
// program against this interface so every experiment can run the same
// workload on both engines.
package engine

import (
	"dora/internal/xct"
)

// Engine executes transaction flow graphs.
type Engine interface {
	// Name identifies the engine ("conventional" or "dora").
	Name() string
	// Exec runs the flow to completion on behalf of client worker,
	// blocking until commit or abort. A non-nil error means the
	// transaction aborted (deadlock victim, timeout, or action error);
	// the caller may rebuild the flow and retry.
	Exec(worker int, flow *xct.Flow) error
	// Close releases engine resources (worker threads).
	Close() error
}
