// Package conventional implements the baseline thread-to-transaction
// execution engine the paper contrasts DORA against: each client's
// transaction runs start-to-finish on one worker thread, acquiring
// hierarchical locks (database / table / row) through the centralized
// lock manager for every action, under strict two-phase locking.
//
// Because an incoming transaction dictates what data its thread touches,
// accesses are unpredictable and every transaction crosses the lock
// manager's critical sections many times — the scalability problem the
// demo's first panel visualizes and experiment E4 quantifies.
package conventional

import (
	"errors"
	"fmt"
	"sync"

	"dora/internal/lockmgr"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/xct"
)

// Engine is the conventional executor.
type Engine struct {
	SM *sm.SM
	LM *lockmgr.Manager

	mu       sync.Mutex
	sessions map[int]*sm.Session

	// Committed and Aborted count transaction outcomes.
	Committed metrics.Counter
	Aborted   metrics.Counter
}

// New returns a conventional engine over the storage manager. The lock
// manager shares the storage manager's critical-section stats.
func New(s *sm.SM) *Engine {
	return &Engine{
		SM:       s,
		LM:       lockmgr.New(s.CS),
		sessions: make(map[int]*sm.Session),
	}
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "conventional" }

// Close implements engine.Engine.
func (e *Engine) Close() error { return nil }

func (e *Engine) session(worker int) *sm.Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	ses := e.sessions[worker]
	if ses == nil {
		ses = e.SM.Session(worker)
		e.sessions[worker] = ses
	}
	return ses
}

// Exec implements engine.Engine: the calling goroutine is the worker
// thread, and it performs every action of the flow itself.
func (e *Engine) Exec(worker int, flow *xct.Flow) error {
	ses := e.session(worker)
	txn := e.SM.Begin()
	env := &xct.Env{Txn: txn, Ses: ses}

	for pi := range flow.Phases {
		for _, a := range flow.Phases[pi].Actions {
			if err := e.execAction(env, a); err != nil {
				e.abort(env)
				return fmt.Errorf("conventional: %s/%s: %w", flow.Name, a.Label, err)
			}
		}
	}
	done := make(chan error, 1)
	e.SM.CommitAsync(txn, func(err error) { done <- err })
	// Early lock release: the commit LSN is assigned, so conflicting
	// transactions may run now — log-LSN flush order guarantees none of
	// them becomes durable before this one. Durability itself completes on
	// the log's flush pipeline while we wait.
	e.LM.ReleaseAll(txn.ID)
	if err := <-done; err != nil {
		// Only a log-device failure lands here. The locks are already
		// gone, so a physical rollback could stomp rows a successor
		// transaction now owns — the log is dead anyway, so just report
		// the abort (mirrors the DORA committer).
		e.Aborted.Inc()
		return err
	}
	e.Committed.Inc()
	return nil
}

func (e *Engine) execAction(env *xct.Env, a *xct.Action) error {
	tbl := e.SM.Cat.Table(a.Table)
	if tbl == nil {
		return fmt.Errorf("unknown table %q", a.Table)
	}
	// Rows are locked in the table's canonical key space (the leading
	// primary-key field); translate if the action's key is in another
	// field's space (a secondary-key access).
	lockField := canonicalField(tbl.Primary.Fields)
	lockVal := a.Key
	if a.KeyField != lockField {
		if a.Resolve == nil {
			return fmt.Errorf("action on %s keyed by %s needs a resolver", a.Table, a.KeyField)
		}
		v, err := a.Resolve(env, lockField)
		if err != nil {
			return err
		}
		lockVal = v
	}
	intent, row := lockmgr.IS, lockmgr.S
	if a.Mode == xct.Write {
		intent, row = lockmgr.IX, lockmgr.X
	}
	txnID := env.Txn.ID
	if err := e.LM.Lock(txnID, lockmgr.DBName(), intent); err != nil {
		return err
	}
	if err := e.LM.Lock(txnID, lockmgr.TableName(tbl.ID), intent); err != nil {
		return err
	}
	if err := e.LM.Lock(txnID, lockmgr.RowName(tbl.ID, lockVal), row); err != nil {
		return err
	}
	return a.Run(env)
}

func (e *Engine) abort(env *xct.Env) {
	// Roll back while still holding locks (strict 2PL), then release.
	if err := e.SM.Rollback(env.Txn); err != nil {
		// Rollback failures leave the database inconsistent; surface loudly.
		panic(fmt.Sprintf("conventional: rollback of txn %d failed: %v", env.Txn.ID, err))
	}
	e.LM.ReleaseAll(env.Txn.ID)
	e.Aborted.Inc()
}

// canonicalField returns the leading primary-key field name.
func canonicalField(fields []string) string {
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

// IsAbort reports whether err is a retryable abort (deadlock victim or
// lock timeout) rather than a logic error.
func IsAbort(err error) bool {
	return errors.Is(err, lockmgr.ErrDeadlock) || errors.Is(err, lockmgr.ErrTimeout)
}
