package conventional

import (
	"errors"
	"sync"
	"testing"

	"dora/internal/catalog"
	"dora/internal/metrics"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/xct"
)

func rig(t *testing.T, n int64) (*sm.SM, *catalog.Table, *Engine) {
	t.Helper()
	cs := &metrics.CriticalSectionStats{}
	s, err := sm.Open(sm.Options{Frames: 256, CS: cs})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.CreateTable(sm.TableSpec{
		Name: "accounts",
		Fields: []catalog.Field{
			{Name: "id", Type: tuple.TInt},
			{Name: "balance", Type: tuple.TInt},
		},
		KeyFields: []string{"id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
	})
	if err != nil {
		t.Fatal(err)
	}
	ses := s.Session(0)
	load := s.Begin()
	for i := int64(1); i <= n; i++ {
		if err := ses.Insert(load, tbl, tuple.Record{tuple.I(i), tuple.I(100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(load); err != nil {
		t.Fatal(err)
	}
	return s, tbl, New(s)
}

func incFlow(tbl *catalog.Table, id, delta int64) *xct.Flow {
	return xct.NewFlow("inc").AddPhase(&xct.Action{
		Table: "accounts", KeyField: "id", Key: id, Mode: xct.Write,
		Run: func(env *xct.Env) error {
			return env.Ses.Mutate(env.Txn, tbl, id, func(r tuple.Record) tuple.Record {
				r[1] = tuple.I(r[1].Int + delta)
				return r
			})
		},
	})
}

func TestExecCommit(t *testing.T) {
	s, tbl, e := rig(t, 10)
	if err := e.Exec(0, incFlow(tbl, 1, 50)); err != nil {
		t.Fatal(err)
	}
	rec, _ := s.Session(0).Read(s.Begin(), tbl, 1)
	if rec[1].Int != 150 {
		t.Fatalf("balance = %d", rec[1].Int)
	}
	if e.Committed.Load() != 1 {
		t.Fatal("commit not counted")
	}
	// All locks released.
	if held := e.LM.HeldModes(1); len(held) != 0 {
		t.Fatalf("locks leaked after load txn? %v", held)
	}
}

func TestExecAbortRollsBack(t *testing.T) {
	s, tbl, e := rig(t, 10)
	boom := errors.New("boom")
	flow := xct.NewFlow("failing").AddPhase(
		&xct.Action{
			Table: "accounts", KeyField: "id", Key: 1, Mode: xct.Write,
			Run: func(env *xct.Env) error {
				return env.Ses.Update(env.Txn, tbl, 1, tuple.Record{tuple.I(1), tuple.I(999)})
			},
		},
		&xct.Action{
			Table: "accounts", KeyField: "id", Key: 2, Mode: xct.Write,
			Run: func(env *xct.Env) error { return boom },
		},
	)
	if err := e.Exec(0, flow); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	rec, _ := s.Session(0).Read(s.Begin(), tbl, 1)
	if rec[1].Int != 100 {
		t.Fatalf("aborted write persisted: %d", rec[1].Int)
	}
	if e.Aborted.Load() != 1 {
		t.Fatal("abort not counted")
	}
}

func TestConcurrentIncrementsSerialize(t *testing.T) {
	s, tbl, e := rig(t, 4)
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					err := e.Exec(w, incFlow(tbl, 1, 1))
					if err == nil {
						break
					}
					if !IsAbort(err) {
						t.Errorf("unexpected: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	rec, _ := s.Session(0).Read(s.Begin(), tbl, 1)
	if rec[1].Int != 100+workers*per {
		t.Fatalf("balance = %d, want %d", rec[1].Int, 100+workers*per)
	}
}

func TestDeadlockVictimRetries(t *testing.T) {
	_, tbl, e := rig(t, 4)
	// Opposite-order two-key writers force deadlocks; with retries both
	// eventually commit.
	mk := func(a, b int64) *xct.Flow {
		w := func(id int64) *xct.Action {
			return &xct.Action{
				Table: "accounts", KeyField: "id", Key: id, Mode: xct.Write,
				Run: func(env *xct.Env) error {
					return env.Ses.Mutate(env.Txn, tbl, id, func(r tuple.Record) tuple.Record {
						r[1] = tuple.I(r[1].Int + 1)
						return r
					})
				},
			}
		}
		// Two *phases* so locks are acquired incrementally.
		return xct.NewFlow("ab").AddPhase(w(a)).AddPhase(w(b))
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 2*40)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, b := int64(1), int64(2)
			if i == 1 {
				a, b = b, a
			}
			for n := 0; n < 40; n++ {
				for {
					err := e.Exec(i, mk(a, b))
					if err == nil {
						break
					}
					if !IsAbort(err) {
						errCh <- err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestCriticalSectionsCounted(t *testing.T) {
	s, tbl, e := rig(t, 10)
	before := s.CS.LockMgr.Load()
	if err := e.Exec(0, incFlow(tbl, 3, 1)); err != nil {
		t.Fatal(err)
	}
	delta := s.CS.LockMgr.Load() - before
	// One action: DB lock + table lock + row lock + held-map entries +
	// release — at least 6 lock-manager critical sections.
	if delta < 6 {
		t.Fatalf("lock-manager critical sections per simple txn = %d, want >= 6", delta)
	}
}

func TestResolverRequiredForForeignKeyField(t *testing.T) {
	_, _, e := rig(t, 5)
	flow := xct.NewFlow("bad").AddPhase(&xct.Action{
		Table: "accounts", KeyField: "not_the_pk", Key: 1, Mode: xct.Read,
		Run: func(env *xct.Env) error { return nil },
	})
	if err := e.Exec(0, flow); err == nil {
		t.Fatal("foreign key field without resolver must fail")
	}
}
