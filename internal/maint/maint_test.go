package maint

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dora/internal/btree"
	"dora/internal/buffer"
	"dora/internal/catalog"
	"dora/internal/dora"
	"dora/internal/sm"
	"dora/internal/storage"
	"dora/internal/tuple"
	"dora/internal/wal"
	"dora/internal/workload"
	"dora/internal/workload/tatp"
	"dora/internal/xct"
)

// ownedRatio sums the owner-thread heap read counters over the tables
// and returns latched/total (1.0 = every aligned read still latches).
func ownedRatio(tables ...*catalog.Table) (float64, int64) {
	var total, latched int64
	for _, tbl := range tables {
		total += tbl.Heap.OwnedReads.Load()
		latched += tbl.Heap.OwnedReadsLatched.Load()
	}
	if total == 0 {
		return 0, 0
	}
	return float64(latched) / float64(total), total
}

func resetOwned(tables ...*catalog.Table) {
	for _, tbl := range tables {
		tbl.Heap.OwnedReads.Reset()
		tbl.Heap.OwnedReadsLatched.Reset()
	}
}

// TestConvergingReportsPendingWork: the balancer's maintenance gate —
// a rebalance event marks the table converging until the daemon's
// convergence pass drains its units.
func TestConvergingReportsPendingWork(t *testing.T) {
	s, err := sm.Open(sm.Options{Frames: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	db, err := tatp.Load(s, 300)
	if err != nil {
		t.Fatal(err)
	}
	e := dora.New(s, dora.Config{PartitionsPerTable: 2, Domains: db.Domains()})
	defer e.Close()
	d := New(s, e, Config{})
	if d.Converging("subscriber") {
		t.Fatal("fresh daemon reports subscriber converging")
	}
	// A split fires the rebalance hook: the table is dirty until drained.
	rt := e.Router("subscriber")
	r := rt.Ranges()[0]
	if _, err := e.SplitPartition("subscriber", r.Part, r.Lo+(r.Hi-r.Lo)/2); err != nil {
		t.Fatal(err)
	}
	if !d.Converging("subscriber") {
		t.Fatal("split did not mark subscriber converging")
	}
	d.Drain("subscriber")
	if d.Converging("subscriber") {
		t.Fatal("subscriber still converging after Drain")
	}
}

// TestConvergenceAfterLoad: a freshly loaded database has every page
// unstamped (the loader is a shared session), so aligned reads latch;
// one Drain converges the layout and the latched-read ratio drops to 0.
func TestConvergenceAfterLoad(t *testing.T) {
	s, err := sm.Open(sm.Options{Frames: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	db, err := tatp.Load(s, 500)
	if err != nil {
		t.Fatal(err)
	}
	e := dora.New(s, dora.Config{PartitionsPerTable: 4, Domains: db.Domains()})
	defer e.Close()
	d := New(s, e, Config{})

	tables := []*catalog.Table{db.Subscriber, db.AccessInfo, db.SpecialFac, db.CallForward}
	run := func() {
		dr := workload.Driver{
			Engine: e, Mix: db.ReadOnlyMix(tatp.MixOptions{}),
			Clients: 2, Duration: 150 * time.Millisecond, Seed: 7,
		}
		dr.Run()
	}

	resetOwned(tables...)
	run()
	before, n := ownedRatio(tables...)
	if n == 0 {
		t.Fatal("no owner-thread reads observed")
	}
	if before < 0.5 {
		t.Fatalf("fresh load latched-read ratio = %.3f, expected near 1", before)
	}

	d.Drain()
	st := d.Snapshot()
	if st.PagesStamped == 0 && st.RecordsMigrated == 0 {
		t.Fatalf("drain did no work: %+v", st)
	}

	resetOwned(tables...)
	run()
	after, n := ownedRatio(tables...)
	if n == 0 {
		t.Fatal("no owner-thread reads after drain")
	}
	if after > 0.01 {
		t.Fatalf("converged latched-read ratio = %.4f (n=%d), want ~0", after, n)
	}
	// A second drain is a no-op: the layout is a fixed point.
	prev := d.Snapshot()
	d.Drain()
	if got := d.Snapshot(); got.PagesStamped != prev.PagesStamped || got.RecordsMigrated != prev.RecordsMigrated {
		t.Fatalf("drain not idempotent: %+v -> %+v", prev, got)
	}
}

// TestStormRaceAndFanout runs the maintenance daemon concurrently with
// foreground TATP traffic and a split/merge storm (the -race exercise in
// the CI matrix), then drains and checks (a) the layout re-converges,
// (b) root fan-out stays bounded by 2x the partition count after >= 100
// split/merge cycles with compaction on, and (c) no record was lost or
// duplicated.
func TestStormRaceAndFanout(t *testing.T) {
	const subs = 400
	s, err := sm.Open(sm.Options{Frames: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	db, err := tatp.Load(s, subs)
	if err != nil {
		t.Fatal(err)
	}
	e := dora.New(s, dora.Config{PartitionsPerTable: 2, Domains: db.Domains()})
	defer e.Close()
	d := New(s, e, Config{Interval: 200 * time.Microsecond})
	d.Start()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			mix := db.NewMix(tatp.MixOptions{})
			for !stop.Load() {
				f := mix[rng.Intn(len(mix))]
				_ = e.Exec(int(seed), f.Build(rng))
			}
		}(int64(c + 1))
	}

	// >= 100 split/merge cycles against the subscriber table.
	for cycle := 0; cycle < 110; cycle++ {
		rt := e.Router("subscriber")
		ranges := rt.Ranges()
		r := ranges[cycle%len(ranges)]
		if r.Hi-r.Lo < 2 {
			continue
		}
		mid := r.Lo + (r.Hi-r.Lo)/2
		nw, err := e.SplitPartition("subscriber", r.Part, mid)
		if err != nil {
			continue
		}
		if err := e.MergePartition("subscriber", nw, r.Part); err != nil {
			t.Fatalf("merge cycle %d: %v", cycle, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	_ = d.Close()
	d.Drain()

	// (b) fan-out bound.
	parts := e.NumPartitions("subscriber")
	for _, ix := range db.Subscriber.Indexes() {
		pt := ix.Partitioned()
		if pt == nil {
			continue
		}
		if got := pt.NumSubtrees(); got > 2*parts {
			t.Fatalf("index %s fan-out %d > 2x partitions (%d) after storm+compaction", ix.Name, got, parts)
		}
	}
	// (a) converged ratio.
	tables := []*catalog.Table{db.Subscriber, db.AccessInfo, db.SpecialFac, db.CallForward}
	resetOwned(tables...)
	dr := workload.Driver{
		Engine: e, Mix: db.ReadOnlyMix(tatp.MixOptions{}),
		Clients: 2, Duration: 150 * time.Millisecond, Seed: 11,
	}
	dr.Run()
	ratio, n := ownedRatio(tables...)
	if n == 0 {
		t.Fatal("no owner-thread reads after storm drain")
	}
	if ratio > 0.01 {
		t.Fatalf("post-storm converged ratio = %.4f, want ~0", ratio)
	}
	// (c) integrity: every subscriber present exactly once, index and
	// heap agree.
	verifyLiveImages(t, db.Subscriber, subs, 0)
}

// verifyLiveImages asserts each key in [1, n] has exactly one live heap
// image and is readable through primary and secondary paths. keyField is
// the record position of the primary key.
func verifyLiveImages(t *testing.T, tbl *catalog.Table, n int64, keyField int) {
	t.Helper()
	if got := tbl.Primary.Tree.Len(); got != int(n) {
		t.Fatalf("%s primary index len = %d, want %d", tbl.Name, got, n)
	}
	counts := map[int64]int{}
	err := tbl.Heap.Scan(func(_ storage.RID, img []byte) bool {
		rec, derr := tuple.Decode(img)
		if derr == nil {
			counts[rec[keyField].Int]++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= n; id++ {
		if counts[id] != 1 {
			t.Fatalf("%s key %d has %d live heap images, want exactly 1", tbl.Name, id, counts[id])
		}
	}
}

// --- crash/recovery with maintenance in flight ---

// migTable creates the crash-test schema: a routable primary keyed by id
// plus a routable order-reversing secondary (so secondary repointing is
// exercised by migration).
func migTable(t *testing.T, s *sm.SM, n int64) *catalog.Table {
	t.Helper()
	tbl, err := s.CreateTable(sm.TableSpec{
		Name: "accounts",
		Fields: []catalog.Field{
			{Name: "id", Type: tuple.TInt},
			{Name: "alt", Type: tuple.TInt},
			{Name: "bal", Type: tuple.TInt},
		},
		KeyFields: []string{"id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
		Secondaries: []sm.IndexSpec{{
			Name:   "by_alt",
			Fields: []string{"alt"},
			Key:    func(r tuple.Record) int64 { return r[1].Int },
			RouteRange: func(lo, hi int64) (int64, int64) {
				return n + 1 - hi, n + 1 - lo
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func acct(n, id, bal int64) tuple.Record {
	return tuple.Record{tuple.I(id), tuple.I(n + 1 - id), tuple.I(bal)}
}

func loadAccounts(t *testing.T, s *sm.SM, tbl *catalog.Table, n int64) {
	t.Helper()
	ses := s.Session(0)
	setup := s.Begin()
	for id := int64(1); id <= n; id++ {
		if err := ses.Insert(setup, tbl, acct(n, id, id*10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(setup); err != nil {
		t.Fatal(err)
	}
}

func verifyAccounts(t *testing.T, s *sm.SM, tbl *catalog.Table, n int64, bal func(id int64) int64) {
	t.Helper()
	verifyLiveImages(t, tbl, n, 0)
	ses := s.Session(0)
	for id := int64(1); id <= n; id++ {
		rec, err := ses.Read(s.Begin(), tbl, id)
		if err != nil {
			t.Fatalf("id %d after recovery: %v", id, err)
		}
		if bal != nil && rec[2].Int != bal(id) {
			t.Fatalf("id %d balance = %d, want %d", id, rec[2].Int, bal(id))
		}
		via, err := ses.ReadByIndex(s.Begin(), tbl, "by_alt", n+1-id)
		if err != nil || via[0].Int != id {
			t.Fatalf("id %d via secondary: %v %v", id, via, err)
		}
	}
}

// TestCrashMidMigrationLoser kills the system after a migration logged
// its delete+insert but before the commit record hardened: recovery must
// roll it back and leave exactly one image under each key.
func TestCrashMidMigrationLoser(t *testing.T) {
	const n = 20
	disk := buffer.NewMemDisk()
	store := wal.NewMemStore()
	s, err := sm.Open(sm.Options{Frames: 64, Disk: disk, LogStore: store})
	if err != nil {
		t.Fatal(err)
	}
	tbl := migTable(t, s, n)
	loadAccounts(t, s, tbl, n)

	// Mid-flight migration: an owned session moves half the records; the
	// transaction never commits (the "kill" hits first), but its records
	// are durable — the worst case for recovery.
	mses := s.OwnedSession(0, btree.NewOwner())
	mtxn := s.Begin()
	for id := int64(1); id <= n/2; id++ {
		if _, err := mses.MigrateRecord(mtxn, tbl, id); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Log.FlushAll(); err != nil {
		t.Fatal(err)
	}

	s2, err := sm.Open(sm.Options{Frames: 64, Disk: disk, LogStore: store.CrashCopy()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tbl2 := migTable(t, s2, n)
	st, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Losers != 1 {
		t.Fatalf("losers = %d, want 1 (the maintenance txn)", st.Losers)
	}
	verifyAccounts(t, s2, tbl2, n, func(id int64) int64 { return id * 10 })
}

// TestCrashMidMigrationWinner kills the system right after the migration
// transaction committed: recovery must land every record exactly once at
// its new location.
func TestCrashMidMigrationWinner(t *testing.T) {
	const n = 20
	disk := buffer.NewMemDisk()
	store := wal.NewMemStore()
	s, err := sm.Open(sm.Options{Frames: 64, Disk: disk, LogStore: store})
	if err != nil {
		t.Fatal(err)
	}
	tbl := migTable(t, s, n)
	loadAccounts(t, s, tbl, n)

	mses := s.OwnedSession(0, btree.NewOwner())
	mtxn := s.Begin()
	moved := 0
	for id := int64(1); id <= n; id++ {
		ok, err := mses.MigrateRecord(mtxn, tbl, id)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("nothing migrated")
	}
	if err := s.Commit(mtxn); err != nil {
		t.Fatal(err)
	}

	s2, err := sm.Open(sm.Options{Frames: 64, Disk: disk, LogStore: store.CrashCopy()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tbl2 := migTable(t, s2, n)
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	verifyAccounts(t, s2, tbl2, n, func(id int64) int64 { return id * 10 })
}

// TestCrashDuringMaintenanceStorm runs the full engine + daemon + a
// split/merge storm (compactions and migrations in flight), quiesces the
// workers without flushing, crashes to the synced log prefix, and checks
// recovery rebuilds a consistent index shape: every record exactly once,
// secondaries consistent.
func TestCrashDuringMaintenanceStorm(t *testing.T) {
	const n = 200
	disk := buffer.NewMemDisk()
	store := wal.NewMemStore()
	s, err := sm.Open(sm.Options{Frames: 256, Disk: disk, LogStore: store})
	if err != nil {
		t.Fatal(err)
	}
	tbl := migTable(t, s, n)
	loadAccounts(t, s, tbl, n)

	e := dora.New(s, dora.Config{PartitionsPerTable: 2, Domains: map[string][2]int64{"accounts": {1, n}}})
	d := New(s, e, Config{Interval: 100 * time.Microsecond, RecordBudget: 16})
	d.Start()

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		for i := 0; !stop.Load(); i++ {
			id := 1 + rng.Int63n(n)
			_ = e.Exec(0, updateFlow("accounts", id, int64(i+1)))
		}
	}()
	for cycle := 0; cycle < 12; cycle++ {
		rt := e.Router("accounts")
		r := rt.Ranges()[cycle%len(rt.Ranges())]
		if r.Hi-r.Lo < 2 {
			continue
		}
		nw, err := e.SplitPartition("accounts", r.Part, r.Lo+(r.Hi-r.Lo)/2)
		if err != nil {
			continue
		}
		if err := e.MergePartition("accounts", nw, r.Part); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	_ = d.Close()
	_ = e.Close() // quiesce workers; NO log/pool flush — the crash is next

	s2, err := sm.Open(sm.Options{Frames: 256, Disk: disk, LogStore: store.CrashCopy()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tbl2 := migTable(t, s2, n)
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	verifyAccounts(t, s2, tbl2, n, nil)
}

// updateFlow builds a one-action flow updating id's balance.
func updateFlow(table string, id, bal int64) *xct.Flow {
	return xct.NewFlow(fmt.Sprintf("set-%d", id)).AddPhase(&xct.Action{
		Table: table, Key: id, KeyField: "id", Mode: xct.Write,
		Run: func(env *xct.Env) error {
			return env.Ses.Mutate(env.Txn, env.Ses.SM().Cat.Table(table), id, func(r tuple.Record) tuple.Record {
				r[2] = tuple.I(bal)
				return r
			})
		},
	})
}

// TestPaceGateYieldsTicks: with the overload gate closed and pending
// work queued, the paced loop yields its ticks (counted in UnitsPaced)
// instead of running units; opening the gate lets the backlog drain and
// an explicit Drain always converges regardless of the gate.
func TestPaceGateYieldsTicks(t *testing.T) {
	s, err := sm.Open(sm.Options{Frames: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	db, err := tatp.Load(s, 300)
	if err != nil {
		t.Fatal(err)
	}
	e := dora.New(s, dora.Config{PartitionsPerTable: 2, Domains: db.Domains()})
	defer e.Close()
	d := New(s, e, Config{Interval: 200 * time.Microsecond})
	var shedding atomic.Bool
	shedding.Store(true)
	d.SetPaceGate(shedding.Load)
	d.Start()
	defer d.Close()

	// A split marks the table dirty: the daemon now has work it is not
	// allowed to run.
	rt := e.Router("subscriber")
	r := rt.Ranges()[0]
	if _, err := e.SplitPartition("subscriber", r.Part, r.Lo+(r.Hi-r.Lo)/2); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(3 * time.Second)
	for d.UnitsPaced.Load() == 0 {
		select {
		case <-deadline:
			t.Fatalf("gated daemon with dirty work never counted a paced tick: %+v", d.Snapshot())
		case <-time.After(time.Millisecond):
		}
	}
	if got := d.UnitsRun.Load(); got != 0 {
		t.Fatalf("daemon ran %d units through a closed gate", got)
	}
	if !d.Converging("subscriber") {
		t.Fatal("paced table no longer reports converging")
	}
	// Drain ignores the gate: deferred work is never lost.
	d.Drain("subscriber")
	if d.Converging("subscriber") {
		t.Fatal("subscriber still converging after Drain with gate closed")
	}
	// Open the gate: ticks run units again (sweeps count too).
	shedding.Store(false)
	r2 := e.Router("subscriber").Ranges()[0]
	if _, err := e.SplitPartition("subscriber", r2.Part, r2.Lo+(r2.Hi-r2.Lo)/2); err != nil {
		t.Fatal(err)
	}
	deadline = time.After(3 * time.Second)
	for d.UnitsRun.Load() == 0 {
		select {
		case <-deadline:
			t.Fatalf("daemon never resumed after gate opened: %+v", d.Snapshot())
		case <-time.After(time.Millisecond):
		}
	}
}
