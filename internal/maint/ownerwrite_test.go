package maint

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dora/internal/buffer"
	"dora/internal/catalog"
	"dora/internal/dora"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/wal"
	"dora/internal/xct"
)

// The owner-write storm: concurrent latch-free owner mutations vs the
// buffer pool's flush daemon (copy-on-write snapshot ships), eviction
// pressure (a pool smaller than the working set), fuzzy FlushAll
// checkpoints, and split/evacuate restamping — on two tables at once.
// Asserts no torn page images, exactly-once effects, and zero latched
// owner writes once the layout has converged.

// stormPad fattens records so the two tables overflow the test pools and
// eviction runs continuously.
var stormPad = strings.Repeat("p", 400)

// stormTable creates one storm schema table: routable primary on id,
// balance counter, fat pad.
func stormTable(t *testing.T, s *sm.SM, name string, n int64) *catalog.Table {
	t.Helper()
	tbl, err := s.CreateTable(sm.TableSpec{
		Name: name,
		Fields: []catalog.Field{
			{Name: "id", Type: tuple.TInt},
			{Name: "bal", Type: tuple.TInt},
			{Name: "pad", Type: tuple.TString},
		},
		KeyFields: []string{"id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func loadStorm(t *testing.T, s *sm.SM, tbl *catalog.Table, n int64) {
	t.Helper()
	ses := s.Session(0)
	setup := s.Begin()
	for id := int64(1); id <= n; id++ {
		if err := ses.Insert(setup, tbl, tuple.Record{tuple.I(id), tuple.I(0), tuple.S(stormPad)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(setup); err != nil {
		t.Fatal(err)
	}
}

// incFlow bumps table[id].bal by one (the exactly-once unit).
func incFlow(table string, id int64) *xct.Flow {
	return xct.NewFlow("inc").AddPhase(&xct.Action{
		Table: table, Key: id, KeyField: "id", Mode: xct.Write,
		Run: func(env *xct.Env) error {
			return env.Ses.Mutate(env.Txn, env.Ses.SM().Cat.Table(table), id, func(r tuple.Record) tuple.Record {
				r[1] = tuple.I(r[1].Int + 1)
				return r
			})
		},
	})
}

// verifyBalances checks every key's balance equals its commit count —
// through session reads (shipping to owners when claimed) so it works on
// a live engine too.
func verifyBalances(t *testing.T, s *sm.SM, tbl *catalog.Table, commits []atomic.Int64, n int64) {
	t.Helper()
	ses := s.Session(0)
	for id := int64(1); id <= n; id++ {
		rec, err := ses.Read(s.Begin(), tbl, id)
		if err != nil {
			t.Fatalf("%s[%d]: %v", tbl.Name, id, err)
		}
		if want := commits[id].Load(); rec[1].Int != want {
			t.Fatalf("%s[%d] bal = %d, want %d (exactly-once violated)", tbl.Name, id, rec[1].Int, want)
		}
	}
}

func TestOwnerWriteStormRace(t *testing.T) {
	const n = 160
	disk := buffer.NewMemDisk()
	store := wal.NewMemStore()
	// A pool much smaller than the two tables' footprint: eviction and
	// the cleaner run continuously under the storm.
	s, err := sm.Open(sm.Options{Frames: 24, Disk: disk, LogStore: store})
	if err != nil {
		t.Fatal(err)
	}
	tables := []string{"accounts", "ledger"}
	tbls := map[string]*catalog.Table{}
	for _, name := range tables {
		tbls[name] = stormTable(t, s, name, n)
		loadStorm(t, s, tbls[name], n)
	}
	e := dora.New(s, dora.Config{
		PartitionsPerTable: 2,
		Domains:            map[string][2]int64{"accounts": {1, n}, "ledger": {1, n}},
	})
	d := New(s, e, Config{Interval: 200 * time.Microsecond, RecordBudget: 32})
	d.Start()
	cl := buffer.NewCleaner(s.Pool, buffer.CleanerConfig{Interval: 500 * time.Microsecond, Batch: 8})
	cl.Start()

	// Fuzzy checkpoints (FlushAll over stamped dirty frames) while the
	// storm runs.
	var stop atomic.Bool
	var ckptErr atomic.Value
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := s.Checkpoint(); err != nil {
				ckptErr.Store(err)
				return
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()

	// Write traffic: per-key commit counting on both tables.
	commits := map[string][]atomic.Int64{}
	for _, name := range tables {
		commits[name] = make([]atomic.Int64, n+1)
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				name := tables[rng.Intn(len(tables))]
				id := 1 + rng.Int63n(n)
				if err := e.Exec(int(seed), incFlow(name, id)); err == nil {
					commits[name][id].Add(1)
				}
			}
		}(int64(c + 1))
	}

	// Split/merge storm on both tables: moved ranges are unstamped on the
	// old owner's thread while snapshot ships may be in flight, evacuates
	// reassign stamps wholesale.
	for cycle := 0; cycle < 16; cycle++ {
		name := tables[cycle%len(tables)]
		rt := e.Router(name)
		r := rt.Ranges()[cycle%len(rt.Ranges())]
		if r.Hi-r.Lo < 2 {
			continue
		}
		nw, err := e.SplitPartition(name, r.Part, r.Lo+(r.Hi-r.Lo)/2)
		if err != nil {
			continue
		}
		if err := e.MergePartition(name, nw, r.Part); err != nil {
			t.Fatalf("merge cycle %d: %v", cycle, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if err := ckptErr.Load(); err != nil {
		t.Fatalf("checkpoint under storm: %v", err)
	}

	// Converge, then measure: once every record sits on a page stamped to
	// its owner, owner writes must take ZERO frame latches — with the
	// cleaner still hardening snapshots underneath.
	_ = d.Close()
	d.Drain()
	for _, name := range tables {
		tbls[name].Heap.OwnedWrites.Reset()
		tbls[name].Heap.OwnedWritesLatched.Reset()
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 400; i++ {
		name := tables[i%len(tables)]
		id := 1 + rng.Int63n(n)
		if err := e.Exec(0, incFlow(name, id)); err == nil {
			commits[name][id].Add(1)
		}
	}
	var owned, latched int64
	for _, name := range tables {
		owned += tbls[name].Heap.OwnedWrites.Load()
		latched += tbls[name].Heap.OwnedWritesLatched.Load()
	}
	if owned == 0 {
		t.Fatal("no owner writes observed in the converged phase")
	}
	if latched != 0 {
		t.Fatalf("converged owner writes still latched: %d of %d", latched, owned)
	}

	// Exactly-once, no torn images: balances match commit counts and
	// every key has exactly one live image.
	for _, name := range tables {
		verifyBalances(t, s, tbls[name], commits[name], n)
	}
	_ = cl.Close()
	_ = e.Close()
	for _, name := range tables {
		verifyLiveImages(t, tbls[name], n, 0)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMidCleaningExactlyOnce kills the system between snapshot
// hardenings: some pages are on disk at snapshot LSNs (write-back
// happened), some mutations exist only in the log (the snapshot was
// taken but never hardened — equivalently, the crash hit mid-snapshot),
// and recovery must land every committed increment exactly once either
// way.
func TestCrashMidCleaningExactlyOnce(t *testing.T) {
	const n = 40
	disk := buffer.NewMemDisk()
	store := wal.NewMemStore()
	s, err := sm.Open(sm.Options{Frames: 64, Disk: disk, LogStore: store})
	if err != nil {
		t.Fatal(err)
	}
	tbl := stormTable(t, s, "accounts", n)
	loadStorm(t, s, tbl, n)
	e := dora.New(s, dora.Config{
		PartitionsPerTable: 2,
		Domains:            map[string][2]int64{"accounts": {1, n}},
	})
	d := New(s, e, Config{})
	d.Drain() // stamps converged: the writes below are latch-free

	commits := make([]atomic.Int64, n+1)
	rng := rand.New(rand.NewSource(7))
	apply := func(rounds int) {
		for i := 0; i < rounds; i++ {
			id := 1 + rng.Int63n(n)
			if err := e.Exec(0, incFlow("accounts", id)); err == nil {
				commits[id].Add(1)
			}
		}
	}
	cl := buffer.NewCleaner(s.Pool, buffer.CleanerConfig{})

	// Phase A mutations, then a full snapshot sweep: every stamped dirty
	// page is hardened through the CoW ship (disk = consistent images at
	// known LSNs). The engine's own flush daemon may have hardened some
	// already; what matters is that ships happened and the sweep leaves
	// no stamped page dirty.
	apply(120)
	cl.Sweep()
	if s.Pool.SnapshotShips.Load() == 0 {
		t.Fatal("no stamped page was hardened through the snapshot ship")
	}
	// Phase B mutations land only in the log (and live frames): a final
	// snapshot copy that never hardens is indistinguishable from these.
	apply(120)

	// Crash: quiesce workers, no flush of pool or log tail.
	_ = d.Close()
	_ = e.Close()

	s2, err := sm.Open(sm.Options{Frames: 64, Disk: disk, LogStore: store.CrashCopy()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tbl2 := stormTable(t, s2, "accounts", n)
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	verifyLiveImages(t, tbl2, n, 0)
	ses := s2.Session(0)
	for id := int64(1); id <= n; id++ {
		rec, err := ses.Read(s2.Begin(), tbl2, id)
		if err != nil {
			t.Fatalf("id %d after recovery: %v", id, err)
		}
		if want := commits[id].Load(); rec[1].Int != want {
			t.Fatalf("id %d bal = %d after recovery, want %d (exactly-once violated)", id, rec[1].Int, want)
		}
	}
}

// TestCheckpointThenCrashRedoSkip: a checkpoint whose FlushAll hardened
// stamped pages through snapshot ships must still recover exactly-once
// from the checkpoint's redo point (the snapshot image's LSN bounds what
// redo may skip).
func TestCheckpointThenCrashRedoSkip(t *testing.T) {
	const n = 30
	disk := buffer.NewMemDisk()
	store := wal.NewMemStore()
	s, err := sm.Open(sm.Options{Frames: 64, Disk: disk, LogStore: store})
	if err != nil {
		t.Fatal(err)
	}
	tbl := stormTable(t, s, "accounts", n)
	loadStorm(t, s, tbl, n)
	e := dora.New(s, dora.Config{
		PartitionsPerTable: 2,
		Domains:            map[string][2]int64{"accounts": {1, n}},
	})
	d := New(s, e, Config{})
	d.Drain()

	commits := make([]atomic.Int64, n+1)
	rng := rand.New(rand.NewSource(11))
	apply := func(rounds int) {
		for i := 0; i < rounds; i++ {
			id := 1 + rng.Int63n(n)
			if err := e.Exec(0, incFlow("accounts", id)); err == nil {
				commits[id].Add(1)
			}
		}
	}
	apply(80)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.Pool.SnapshotShips.Load() == 0 {
		t.Fatal("checkpoint FlushAll bypassed the snapshot ship for stamped pages")
	}
	apply(80)
	_ = d.Close()
	_ = e.Close()

	s2, err := sm.Open(sm.Options{Frames: 64, Disk: disk, LogStore: store.CrashCopy()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tbl2 := stormTable(t, s2, "accounts", n)
	st, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	ses := s2.Session(0)
	for id := int64(1); id <= n; id++ {
		rec, err := ses.Read(s2.Begin(), tbl2, id)
		if err != nil {
			t.Fatalf("id %d after recovery: %v", id, err)
		}
		if want := commits[id].Load(); rec[1].Int != want {
			t.Fatalf("id %d bal = %d after recovery, want %d", id, rec[1].Int, want)
		}
	}
}
