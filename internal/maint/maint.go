// Package maint implements background physical maintenance: the daemon
// that keeps DORA's partitioned physical layout converged with the
// current routing topology, running under the load balancer the way the
// paper's system keeps its data-oriented layout healthy continuously.
//
// The layout decays in two ways. Records inserted before a split or
// merge stay on heap pages that no longer belong (exclusively) to their
// owner's stripe, so aligned reads over old data keep taking
// buffer-frame latches; and repeated split/merge cycles accumulate
// adjacent same-owner B+tree subtrees plus lazy-deletion ghosts, growing
// root fan-out and space without bound. The daemon discovers decay from
// rebalance events (hooks on split/merge/repartition) and from shape
// statistics, and repairs it with two paced operations, both executed ON
// the owning worker's thread through the engine's inbox path so they
// compose with ownership tokens and never race foreground actions:
//
//   - heap-page migration / re-stamping (storage.Heap.TryStamp,
//     sm.Session.MigrateRecord): pages whose live records all route to
//     one worker are re-stamped to it in place; records sharing a page
//     with foreign ones are moved into the owner's pages under a logged
//     maintenance transaction. Either way the owner's aligned reads stop
//     taking frame latches.
//   - subtree compaction (btree.PartitionedTree.CompactOwned): adjacent
//     same-owner subtrees merge and sparse ones are rebuilt, bounding
//     root fan-out by the number of same-owner runs (≈ the partition
//     count) and purging ghosts.
//
// Pacing: one unit of bounded work per tick, skipped (and retried later)
// when the target worker's inbox is deeper than the backpressure
// threshold — foreground latency always wins.
package maint

import (
	"sync"
	"sync/atomic"
	"time"

	"dora/internal/btree"
	"dora/internal/catalog"
	"dora/internal/dora"
	"dora/internal/metrics"
	"dora/internal/page"
	"dora/internal/sm"
	"dora/internal/storage"
	"dora/internal/tuple"
)

// Config tunes the daemon.
type Config struct {
	// Interval is the pacing tick between maintenance units (default
	// 5ms).
	Interval time.Duration
	// RecordBudget bounds records migrated per unit (default 128).
	RecordBudget int
	// MaxQueueDepth defers a unit when the owning worker's inbox is
	// deeper than this (default 32).
	MaxQueueDepth int
	// FanoutFactor triggers compaction for an index whose root fan-out
	// exceeds FanoutFactor × live partitions (default 2).
	FanoutFactor float64
	// MinUtil rebuilds a subtree whose leaf occupancy is below this
	// fraction of the bulk-load fill (default 0.5).
	MinUtil float64
	// SweepEvery interleaves one full-table background sweep unit every
	// N ticks even without rebalance events (default 8), catching decay
	// the hooks cannot see (load-phase pages are unstamped from birth).
	SweepEvery int
}

func (c *Config) fill() {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Millisecond
	}
	if c.RecordBudget <= 0 {
		c.RecordBudget = 128
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 32
	}
	if c.FanoutFactor <= 0 {
		c.FanoutFactor = 2
	}
	if c.MinUtil <= 0 || c.MinUtil > 1 {
		c.MinUtil = 0.5
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 8
	}
}

// unit is one schedulable piece of maintenance: converge the routing
// range starting at lo of one table (heap migration + stamping), or
// compact a table's indexes.
type unit struct {
	table string
	lo    int64
	kind  unitKind
}

type unitKind uint8

const (
	unitHeap unitKind = iota
	unitCompact
)

// Daemon is the maintenance daemon. Create with New, start with Start,
// stop with Close (before closing the engine).
type Daemon struct {
	sm  *sm.SM
	eng *dora.Dora
	cfg Config

	mu    sync.Mutex
	queue []unit // units of the table currently being converged
	// dirty marks tables with pending maintenance (rebalance hooks and
	// background sweeps). A set, not a queue: a storm of rebalance
	// events on one table costs one convergence pass, not one per event.
	dirty  map[string]bool
	dirtyQ []string // dirty tables in first-marked order
	// active counts units currently executing per table, so Converging
	// covers the window between dequeue and completion.
	active  map[string]int
	started bool
	stop    chan struct{}
	wg      sync.WaitGroup

	// paceGate, when set and returning true, makes the paced loop skip
	// its tick while it has pending work (counting UnitsPaced): the
	// overload autopilot installs its Shedding probe here so migration
	// batches yield to foreground SLO. Explicit Drain calls ignore the
	// gate — the work is only deferred, never lost.
	paceMu   sync.Mutex
	paceGate func() bool

	// Progress counters (monitor, experiments).
	PagesStamped    metrics.Counter
	RecordsMigrated metrics.Counter
	RecordsSkipped  metrics.Counter // busy keys deferred to a later pass
	RangesCleared   metrics.Counter // units whose ranges were lock-free in one probe each
	SubtreesMerged  metrics.Counter
	SubtreesRebuilt metrics.Counter
	GhostsPurged    metrics.Counter
	UnitsDeferred   metrics.Counter // backpressure skips
	UnitsPaced      metrics.Counter // ticks yielded to the overload pace gate
	UnitsRun        metrics.Counter
}

// SetPaceGate installs (or clears, with nil) the overload pacing gate
// consulted once per loop tick. Safe to call while running.
func (d *Daemon) SetPaceGate(gate func() bool) {
	d.paceMu.Lock()
	d.paceGate = gate
	d.paceMu.Unlock()
}

// paced reports whether the pacing gate is currently closed.
func (d *Daemon) paced() bool {
	d.paceMu.Lock()
	gate := d.paceGate
	d.paceMu.Unlock()
	return gate != nil && gate()
}

// hasWork reports whether any table is dirty or units are queued.
func (d *Daemon) hasWork() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.queue) > 0 || len(d.dirtyQ) > 0
}

// New wires a daemon to the engine (installing the rebalance hook) but
// does not start its pacing loop; tests and experiments may instead
// drive it synchronously with Drain.
func New(s *sm.SM, e *dora.Dora, cfg Config) *Daemon {
	cfg.fill()
	d := &Daemon{
		sm: s, eng: e, cfg: cfg,
		dirty:  make(map[string]bool),
		active: make(map[string]int),
		stop:   make(chan struct{}),
	}
	e.SetRebalanceHook(func(ev dora.RebalanceEvent) {
		d.markDirty(ev.Table)
	})
	return d
}

// markDirty flags a table for a convergence pass (rebalance hook,
// background sweep). Idempotent while the table is already pending.
func (d *Daemon) markDirty(table string) {
	d.mu.Lock()
	if !d.dirty[table] {
		d.dirty[table] = true
		d.dirtyQ = append(d.dirtyQ, table)
	}
	d.mu.Unlock()
}

// Converging reports whether the table currently has maintenance work
// pending or in progress — it is marked dirty, convergence units for it
// are still queued, or a unit is executing right now. The load balancer
// consults this before splitting or merging the table's partitions:
// re-partitioning mid-migration would strand freshly moved pages on the
// wrong owner and force the daemon to re-migrate them. (A paced unit
// that did work re-marks its table, so the gate stays closed until a
// full pass finds the fixed point.)
func (d *Daemon) Converging(table string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dirty[table] || d.active[table] > 0 {
		return true
	}
	for _, u := range d.queue {
		if u.table == table {
			return true
		}
	}
	return false
}

// expandLocked turns the oldest dirty table into one unit per current
// routing range plus a compaction unit. Called with d.mu held when the
// unit queue is empty.
func (d *Daemon) expandLocked() {
	for len(d.dirtyQ) > 0 {
		table := d.dirtyQ[0]
		d.dirtyQ = d.dirtyQ[1:]
		delete(d.dirty, table)
		rt := d.eng.Router(table)
		if rt == nil {
			continue
		}
		ranges := rt.Ranges()
		if len(ranges) == 0 {
			continue
		}
		for _, r := range ranges {
			d.queue = append(d.queue, unit{table: table, lo: r.Lo, kind: unitHeap})
		}
		d.queue = append(d.queue, unit{table: table, lo: ranges[0].Lo, kind: unitCompact})
		return
	}
}

// Start launches the pacing loop.
func (d *Daemon) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	d.wg.Add(1)
	go d.loop()
}

// Close stops the pacing loop. Call before closing the engine.
func (d *Daemon) Close() error {
	d.mu.Lock()
	started := d.started
	d.started = false
	d.mu.Unlock()
	if started {
		close(d.stop)
		d.wg.Wait()
	}
	return nil
}

func (d *Daemon) loop() {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.Interval)
	defer t.Stop()
	sweepTick := 0
	sweepTable := 0
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if d.paced() {
				// Overload autopilot is shedding: background convergence
				// yields this tick. Counted only when work actually waits,
				// so an idle daemon doesn't inflate the signal.
				if d.hasWork() {
					d.UnitsPaced.Inc()
				}
				continue
			}
			u, ok := d.next()
			if !ok {
				sweepTick++
				if sweepTick >= d.cfg.SweepEvery {
					sweepTick = 0
					tables := d.sm.Cat.Tables()
					if len(tables) > 0 {
						d.markDirty(tables[sweepTable%len(tables)].Name)
						sweepTable++
					}
				}
				continue
			}
			d.runUnit(u)
		}
	}
}

func (d *Daemon) next() (unit, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.queue) == 0 {
		d.expandLocked()
	}
	if len(d.queue) == 0 {
		return unit{}, false
	}
	u := d.queue[0]
	d.queue = d.queue[1:]
	return u, true
}

// runUnit executes one unit with backpressure: if the owning worker's
// inbox is deep, the unit is re-queued for a later tick. It reports
// whether the unit did any work (Drain's convergence signal). While it
// executes, the table counts as converging; a unit that did work
// re-marks its table so the paced loop keeps going until a pass finds
// no work — between those points the balancer's gate never sees a
// false "converged".
func (d *Daemon) runUnit(u unit) bool {
	if !d.eng.AccessPathClaimed(u.table) {
		return false // shared path: no owner threads to maintain for
	}
	if depth := d.eng.OwnerQueueLen(u.table, u.lo); depth > d.cfg.MaxQueueDepth {
		d.UnitsDeferred.Inc()
		d.mu.Lock()
		d.queue = append(d.queue, u)
		d.mu.Unlock()
		return false
	}
	d.mu.Lock()
	d.active[u.table]++
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		if d.active[u.table]--; d.active[u.table] <= 0 {
			delete(d.active, u.table)
		}
		d.mu.Unlock()
	}()
	d.UnitsRun.Inc()
	worked := false
	switch u.kind {
	case unitHeap:
		d.eng.ExecOnOwner(u.table, u.lo, func(ctx *dora.OwnerCtx) {
			worked = d.heapUnit(ctx)
		})
	case unitCompact:
		worked = d.compactTable(u.table)
	}
	if worked {
		d.markDirty(u.table)
	}
	return worked
}

// heapUnit runs on the owning worker's thread: it scans the worker's
// claimed primary-key intervals for records living on pages not stamped
// to it, re-stamps pages that turn out to be wholly the worker's, and
// migrates (budgeted) records off mixed pages.
func (d *Daemon) heapUnit(ctx *dora.OwnerCtx) bool {
	tbl := ctx.Table()
	ses := ctx.Ses()
	tok := ses.Owner()
	pk := tbl.Primary
	rr := tbl.RouteFor(pk, tbl.PartitionField())
	if tok == nil || pk.Partitioned() == nil || rr == nil {
		return false
	}
	ranges := ctx.Ranges()
	if len(ranges) == 0 {
		return false
	}
	pfIdx := tbl.FieldIndex(tbl.PartitionField())
	if pfIdx < 0 {
		return false
	}
	// mineVal: does a routing value belong to this worker right now?
	mineVal := func(v int64) bool {
		for _, r := range ranges {
			if r.Lo <= v && v <= r.Hi {
				return true
			}
		}
		return false
	}
	// Collect candidate keys on foreign/unstamped pages, grouped by page.
	byPage := make(map[page.ID][]int64)
	var order []page.ID
	total := 0
	for _, r := range ranges {
		if total >= d.cfg.RecordBudget {
			break
		}
		keyLo, keyHi := rr(r.Lo, r.Hi)
		pk.Tree.AscendRangeAs(tok, keyLo, keyHi, func(key int64, val uint64) bool {
			pid := storage.UnpackRID(val).Page
			if tbl.Heap.StampOwner(pid) == tok {
				return true
			}
			if _, seen := byPage[pid]; !seen {
				order = append(order, pid)
			}
			byPage[pid] = append(byPage[pid], key)
			total++
			return total < d.cfg.RecordBudget
		})
	}
	if total == 0 {
		return false
	}
	// One-intent gate: the whole unit runs on the owner's thread, so
	// lock state cannot appear underneath it. One RangeBusy probe per
	// assigned range (O(granules-with-state) on the hierarchical table)
	// clears every per-record KeyBusy probe below; when some range
	// reports busy — or the lock table has no cheap coarse probes (flat
	// baseline) — migration falls back to key-by-key gating.
	quiet := ctx.CoarseProbes()
	for _, r := range ranges {
		if !quiet {
			break
		}
		if ctx.RangeBusy(r.Lo, r.Hi) {
			quiet = false
		}
	}
	if quiet {
		d.RangesCleared.Inc()
	}
	worked := false
	txn := d.sm.Begin()
	for _, pid := range order {
		// Fast path: the whole page already belongs to this worker —
		// stamp it in place, no data movement.
		ok, err := tbl.Heap.TryStamp(pid, tok, func(img []byte) bool {
			rec, derr := tuple.Decode(img)
			return derr == nil && mineVal(rec[pfIdx].Int)
		})
		if err == nil && ok {
			d.PagesStamped.Inc()
			worked = true
			continue
		}
		// Mixed page: migrate our records off it (skipping busy keys —
		// in-flight transactions hold undo entries naming current RIDs).
		for _, key := range byPage[pid] {
			rec, rerr := readForMigration(tbl, tok, key)
			if rerr != nil || rec == nil {
				continue
			}
			if !quiet && ctx.KeyBusy(rec[pfIdx].Int) {
				d.RecordsSkipped.Inc()
				continue
			}
			moved, merr := ses.MigrateRecord(txn, tbl, key)
			if merr != nil {
				// Roll the maintenance transaction back (restoring any
				// half-moved record) and stop this unit. RollbackAs with
				// our token: the compensation runs inline on this (the
				// owning) thread — plain Rollback would ship to our own
				// inbox and wait on ourselves.
				_ = d.sm.RollbackAs(tok, txn)
				return worked
			}
			if moved {
				d.RecordsMigrated.Inc()
				worked = true
			}
		}
	}
	d.sm.CommitAsync(txn, func(error) {})
	return worked
}

// readForMigration fetches the record under key on the owner's thread
// (nil error + nil record when it vanished — deleted by a foreground
// transaction between the scan and this point).
func readForMigration(tbl *catalog.Table, tok *btree.Owner, key int64) (tuple.Record, error) {
	v, err := tbl.Primary.Tree.GetAs(tok, key)
	if err != nil {
		return nil, nil
	}
	img, err := tbl.Heap.GetOwned(tok, storage.UnpackRID(v))
	if err != nil {
		return nil, err
	}
	return tuple.Decode(img)
}

// compactTable ships a CompactOwned pass to every worker of the table's
// partitioned indexes when the fan-out or occupancy warrants it.
func (d *Daemon) compactTable(table string) bool {
	tbl := d.sm.Cat.Table(table)
	rt := d.eng.Router(table)
	if tbl == nil || rt == nil {
		return false
	}
	parts := d.eng.NumPartitions(table)
	if parts == 0 {
		return false
	}
	need := false
	const bulkFill = btree.Order * 3 / 4
	for _, ix := range tbl.Indexes() {
		pt := ix.Partitioned()
		if pt == nil {
			continue
		}
		st := pt.ShapeStats()
		// Sparse only when a rebuild could actually shrink the tree —
		// an already-minimal small index never triggers compaction
		// (mirrors CompactOwned's own guard).
		minLeaves := (st.Keys + bulkFill - 1) / bulkFill
		if minLeaves < 1 {
			minLeaves = 1
		}
		sparse := st.Leaves > minLeaves &&
			float64(st.Keys) < float64(st.Leaves*bulkFill)*d.cfg.MinUtil
		if float64(st.Subtrees) > d.cfg.FanoutFactor*float64(parts) || sparse {
			need = true
			break
		}
	}
	if !need {
		return false
	}
	// Fan the compaction pass out to every owning worker concurrently
	// through the continuation ship path: each worker compacts its own
	// subtrees on its own thread while the daemon waits only for the
	// slowest, instead of parking on every round trip in turn.
	var workedAtomic atomic.Bool
	var wg sync.WaitGroup
	seen := map[int]bool{}
	for _, r := range rt.Ranges() {
		if seen[r.Part] {
			continue
		}
		seen[r.Part] = true
		wg.Add(1)
		d.eng.ExecOnOwnerAsync(table, r.Lo, func(ctx *dora.OwnerCtx) {
			tok := ctx.Ses().Owner()
			if tok == nil {
				return
			}
			// One partition-level probe instead of any key gating:
			// defer compaction while the partition has lock state (an
			// in-flight transaction may be mid-descent in a subtree a
			// rebuild would reshape). The periodic sweep re-marks the
			// table, so a deferred pass retries once traffic drains.
			if ctx.PartitionBusy() {
				d.UnitsDeferred.Inc()
				return
			}
			for _, ix := range ctx.Table().Indexes() {
				pt := ix.Partitioned()
				if pt == nil {
					continue
				}
				cs := pt.CompactOwned(tok, d.cfg.MinUtil)
				d.SubtreesMerged.Add(int64(cs.Merged))
				d.SubtreesRebuilt.Add(int64(cs.Rebuilt))
				d.GhostsPurged.Add(int64(cs.Ghosts))
				if cs.Merged+cs.Rebuilt > 0 {
					workedAtomic.Store(true)
				}
			}
		}, func(bool) { wg.Done() })
	}
	wg.Wait()
	return workedAtomic.Load()
}

// Drain synchronously runs maintenance over the named tables (all when
// none given) until a full pass does no work — the convergence point
// where every record sits on a page stamped to its owner and every
// index's fan-out is compacted. Tests and experiments use it to reach a
// deterministic converged state; the pacing loop reaches the same fixed
// point incrementally.
func (d *Daemon) Drain(tables ...string) {
	if len(tables) == 0 {
		for _, tbl := range d.sm.Cat.Tables() {
			tables = append(tables, tbl.Name)
		}
	}
	for pass := 0; pass < 1024; pass++ {
		worked := false
		for _, table := range tables {
			rt := d.eng.Router(table)
			if rt == nil || !d.eng.AccessPathClaimed(table) {
				continue
			}
			for _, r := range rt.Ranges() {
				if d.runUnit(unit{table: table, lo: r.Lo, kind: unitHeap}) {
					worked = true
				}
			}
			if d.runUnit(unit{table: table, lo: 0, kind: unitCompact}) {
				worked = true
			}
		}
		if !worked {
			// Converged: whatever the paced loop still has queued for
			// these tables is moot — retire it so Converging (the
			// balancer's maintenance gate) reads false. A later
			// rebalance re-marks them.
			d.clearPending(tables)
			return
		}
	}
}

// clearPending drops dirty marks and queued units for the given tables
// (Drain reached their fixed point).
func (d *Daemon) clearPending(tables []string) {
	set := make(map[string]bool, len(tables))
	for _, t := range tables {
		set[t] = true
	}
	d.mu.Lock()
	keptU := d.queue[:0]
	for _, u := range d.queue {
		if !set[u.table] {
			keptU = append(keptU, u)
		}
	}
	d.queue = keptU
	keptT := d.dirtyQ[:0]
	for _, tb := range d.dirtyQ {
		if set[tb] {
			delete(d.dirty, tb)
		} else {
			keptT = append(keptT, tb)
		}
	}
	d.dirtyQ = keptT
	d.mu.Unlock()
}

// Stats is a point-in-time snapshot of the daemon's progress counters.
type Stats struct {
	PagesStamped    int64 `json:"pages_stamped"`
	RecordsMigrated int64 `json:"records_migrated"`
	RecordsSkipped  int64 `json:"records_skipped"`
	RangesCleared   int64 `json:"ranges_cleared"`
	SubtreesMerged  int64 `json:"subtrees_merged"`
	SubtreesRebuilt int64 `json:"subtrees_rebuilt"`
	GhostsPurged    int64 `json:"ghosts_purged"`
	UnitsDeferred   int64 `json:"units_deferred"`
	UnitsPaced      int64 `json:"units_paced"`
	UnitsRun        int64 `json:"units_run"`
	QueueLen        int   `json:"queue_len"`
}

// Snapshot returns current progress counters.
func (d *Daemon) Snapshot() Stats {
	d.mu.Lock()
	qlen := len(d.queue) + len(d.dirtyQ)
	d.mu.Unlock()
	return Stats{
		PagesStamped:    d.PagesStamped.Load(),
		RecordsMigrated: d.RecordsMigrated.Load(),
		RecordsSkipped:  d.RecordsSkipped.Load(),
		RangesCleared:   d.RangesCleared.Load(),
		SubtreesMerged:  d.SubtreesMerged.Load(),
		SubtreesRebuilt: d.SubtreesRebuilt.Load(),
		GhostsPurged:    d.GhostsPurged.Load(),
		UnitsDeferred:   d.UnitsDeferred.Load(),
		UnitsPaced:      d.UnitsPaced.Load(),
		UnitsRun:        d.UnitsRun.Load(),
		QueueLen:        qlen,
	}
}
