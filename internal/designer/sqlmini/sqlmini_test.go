package sqlmini

import "testing"

const updateLocation = `
TXN UpdateLocation(:sub_nbr, :vlr) {
  SELECT s_id FROM subscriber WHERE sub_nbr = :sub_nbr;
  UPDATE subscriber SET vlr_location = :vlr WHERE s_id = s_id;
}`

func TestParseTxn(t *testing.T) {
	txn, err := ParseTxn(updateLocation)
	if err != nil {
		t.Fatal(err)
	}
	if txn.Name != "UpdateLocation" {
		t.Fatalf("name = %q", txn.Name)
	}
	if len(txn.Params) != 2 || txn.Params[0] != "sub_nbr" {
		t.Fatalf("params = %v", txn.Params)
	}
	if len(txn.Statements) != 2 {
		t.Fatalf("statements = %d", len(txn.Statements))
	}
	sel := txn.Statements[0]
	if sel.Kind != Select || sel.Table != "subscriber" || len(sel.Cols) != 1 || sel.Cols[0] != "s_id" {
		t.Fatalf("select = %+v", sel)
	}
	if len(sel.Preds) != 1 || sel.Preds[0].Col != "sub_nbr" || sel.Preds[0].Eq.Param != "sub_nbr" {
		t.Fatalf("select preds = %+v", sel.Preds)
	}
	upd := txn.Statements[1]
	if upd.Kind != Update || upd.Cols[0] != "vlr_location" || upd.SetExprs[0].First.Param != "vlr" {
		t.Fatalf("update = %+v", upd)
	}
}

func TestParseInsertDelete(t *testing.T) {
	txn, err := ParseTxn(`TXN InsDel(:a) {
	  INSERT INTO call_forwarding VALUES (s_id, :a, 8, 17, 42);
	  DELETE FROM call_forwarding WHERE s_id = :a AND sf_type = 2;
	}`)
	if err != nil {
		t.Fatal(err)
	}
	ins := txn.Statements[0]
	if ins.Kind != Insert || len(ins.Values) != 5 {
		t.Fatalf("insert = %+v", ins)
	}
	if ins.Values[0].Ident != "s_id" || ins.Values[1].Param != "a" || !ins.Values[2].IsLit {
		t.Fatalf("insert values = %+v", ins.Values)
	}
	del := txn.Statements[1]
	if del.Kind != Delete || len(del.Preds) != 2 {
		t.Fatalf("delete = %+v", del)
	}
}

func TestParseBetween(t *testing.T) {
	st, err := ParseStatement(`SELECT * FROM call_forwarding WHERE s_id = :s AND start_time BETWEEN 0 AND 16`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Preds) != 2 || !st.Preds[1].IsRange {
		t.Fatalf("preds = %+v", st.Preds)
	}
	if st.Preds[1].Lo.Lit != 0 || st.Preds[1].Hi.Lit != 16 {
		t.Fatalf("range = %+v", st.Preds[1])
	}
	if got := st.EqCols(); len(got) != 1 || got[0] != "s_id" {
		t.Fatalf("EqCols = %v", got)
	}
}

func TestParseArithmeticSet(t *testing.T) {
	st, err := ParseStatement(`UPDATE district SET ytd = ytd + :amount, next_o_id = next_o_id + 1 WHERE w_id = :w AND d_id = :d`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cols) != 2 || st.Cols[0] != "ytd" || st.Cols[1] != "next_o_id" {
		t.Fatalf("cols = %v", st.Cols)
	}
	if len(st.Preds) != 2 {
		t.Fatalf("preds = %+v", st.Preds)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"TXN {",
		"TXN x() { FROB y; }",
		"TXN x() { SELECT a FROM t WHERE b >< 2; }",
		"TXN x() { SELECT a FROM t",
	}
	for _, src := range bad {
		if _, err := ParseTxn(src); err == nil {
			t.Fatalf("ParseTxn(%q) should fail", src)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	if _, err := ParseTxn("txn T() { select a from t where k = 1; }"); err != nil {
		t.Fatal(err)
	}
}
