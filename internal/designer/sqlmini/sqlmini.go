// Package sqlmini parses the small SQL-ish transaction-spec language the
// designer tools consume (paper §2.3: "the user can input arbitrary
// transactions (in SQL text), see the generated execution plans, modify
// and run them").
//
// Grammar (case-insensitive keywords; one statement per line or
// semicolon-separated):
//
//	TXN <name>(<param>, ...) { <stmt>; ... }
//	stmt := SELECT <cols> FROM <table> WHERE <pred> [AND <pred>]...
//	      | UPDATE <table> SET <col> = <expr> [, ...] WHERE <pred>...
//	      | INSERT INTO <table> VALUES (<expr>, ...)
//	      | DELETE FROM <table> WHERE <pred>...
//	pred := <col> = <expr> | <col> BETWEEN <expr> AND <expr>
//	expr := :param | <integer literal> | <identifier>
//
// The parser produces Statement values carrying the accessed table, the
// equality/range predicates on named columns, read/write columns, and
// parameter references — everything the flow-graph generator and the
// physical-design advisor need.
package sqlmini

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Kind is the statement type.
type Kind uint8

const (
	// Select reads rows.
	Select Kind = iota + 1
	// Update modifies rows.
	Update
	// Insert adds a row.
	Insert
	// Delete removes rows.
	Delete
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Select:
		return "SELECT"
	case Update:
		return "UPDATE"
	case Insert:
		return "INSERT"
	case Delete:
		return "DELETE"
	}
	return "?"
}

// Expr is a literal integer, a :parameter reference, or a bare
// identifier (column reference).
type Expr struct {
	Param string // ":x" → "x"
	Ident string
	Lit   int64
	IsLit bool
}

// String implements fmt.Stringer.
func (e Expr) String() string {
	switch {
	case e.Param != "":
		return ":" + e.Param
	case e.Ident != "":
		return e.Ident
	default:
		return strconv.FormatInt(e.Lit, 10)
	}
}

// Pred is an equality or BETWEEN predicate on a column.
type Pred struct {
	Col     string
	Eq      *Expr
	Lo, Hi  *Expr // BETWEEN
	IsRange bool
}

// SetExpr is an UPDATE right-hand side: a value, optionally combined
// with a second operand by +, - or * (e.g. "ytd + :amount").
type SetExpr struct {
	First  Expr
	Op     byte // 0, '+', '-' or '*'
	Second Expr
}

// Statement is one parsed statement.
type Statement struct {
	Kind     Kind
	Table    string
	Cols     []string  // selected or SET columns; INSERT: empty
	SetExprs []SetExpr // UPDATE: right-hand sides, aligned with Cols
	Values   []Expr    // INSERT
	Preds    []Pred
	// Raw is the original text (for display).
	Raw string
}

// EqCols returns the columns constrained by equality predicates.
func (s *Statement) EqCols() []string {
	var out []string
	for _, p := range s.Preds {
		if !p.IsRange {
			out = append(out, p.Col)
		}
	}
	return out
}

// IsWrite reports whether the statement modifies data.
func (s *Statement) IsWrite() bool { return s.Kind != Select }

// Txn is a parsed transaction spec.
type Txn struct {
	Name       string
	Params     []string
	Statements []Statement
}

// tokenizer

type tokenizer struct {
	src []rune
	pos int
}

func (t *tokenizer) skipSpace() {
	for t.pos < len(t.src) && unicode.IsSpace(t.src[t.pos]) {
		t.pos++
	}
}

func (t *tokenizer) peek() rune {
	t.skipSpace()
	if t.pos >= len(t.src) {
		return 0
	}
	return t.src[t.pos]
}

func (t *tokenizer) next() string {
	t.skipSpace()
	if t.pos >= len(t.src) {
		return ""
	}
	c := t.src[t.pos]
	switch {
	case unicode.IsLetter(c) || c == '_':
		start := t.pos
		for t.pos < len(t.src) && (unicode.IsLetter(t.src[t.pos]) || unicode.IsDigit(t.src[t.pos]) || t.src[t.pos] == '_') {
			t.pos++
		}
		return string(t.src[start:t.pos])
	case unicode.IsDigit(c) || (c == '-' && t.pos+1 < len(t.src) && unicode.IsDigit(t.src[t.pos+1])):
		start := t.pos
		t.pos++
		for t.pos < len(t.src) && unicode.IsDigit(t.src[t.pos]) {
			t.pos++
		}
		return string(t.src[start:t.pos])
	case c == ':':
		t.pos++
		return ":" + t.next()
	default:
		t.pos++
		return string(c)
	}
}

func (t *tokenizer) expect(want string) error {
	got := t.next()
	if !strings.EqualFold(got, want) {
		return fmt.Errorf("sqlmini: expected %q, got %q", want, got)
	}
	return nil
}

// ParseTxn parses a full TXN block.
func ParseTxn(src string) (*Txn, error) {
	t := &tokenizer{src: []rune(src)}
	if err := t.expect("TXN"); err != nil {
		return nil, err
	}
	name := t.next()
	if name == "" {
		return nil, fmt.Errorf("sqlmini: missing transaction name")
	}
	txn := &Txn{Name: name}
	if err := t.expect("("); err != nil {
		return nil, err
	}
	for t.peek() != ')' {
		p := t.next()
		if p == "," {
			continue
		}
		if p == "" {
			return nil, fmt.Errorf("sqlmini: unterminated parameter list")
		}
		txn.Params = append(txn.Params, strings.TrimPrefix(p, ":"))
	}
	t.next() // ')'
	if err := t.expect("{"); err != nil {
		return nil, err
	}
	for {
		c := t.peek()
		if c == 0 {
			return nil, fmt.Errorf("sqlmini: unterminated transaction body")
		}
		if c == '}' {
			t.next()
			break
		}
		if c == ';' {
			t.next()
			continue
		}
		start := t.pos
		st, err := parseStatement(t)
		if err != nil {
			return nil, err
		}
		st.Raw = strings.TrimSpace(string(t.src[start:t.pos]))
		txn.Statements = append(txn.Statements, *st)
	}
	return txn, nil
}

// ParseStatement parses a single statement (tool REPL convenience).
func ParseStatement(src string) (*Statement, error) {
	t := &tokenizer{src: []rune(src)}
	st, err := parseStatement(t)
	if err != nil {
		return nil, err
	}
	st.Raw = strings.TrimSpace(src)
	return st, nil
}

func parseStatement(t *tokenizer) (*Statement, error) {
	kw := t.next()
	switch strings.ToUpper(kw) {
	case "SELECT":
		return parseSelect(t)
	case "UPDATE":
		return parseUpdate(t)
	case "INSERT":
		return parseInsert(t)
	case "DELETE":
		return parseDelete(t)
	default:
		return nil, fmt.Errorf("sqlmini: unknown statement %q", kw)
	}
}

func parseExpr(t *tokenizer) (Expr, error) {
	tok := t.next()
	if tok == "" {
		return Expr{}, fmt.Errorf("sqlmini: missing expression")
	}
	if strings.HasPrefix(tok, ":") {
		return Expr{Param: tok[1:]}, nil
	}
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return Expr{Lit: n, IsLit: true}, nil
	}
	return Expr{Ident: tok}, nil
}

func parsePreds(t *tokenizer) ([]Pred, error) {
	var preds []Pred
	for {
		col := t.next()
		if col == "" {
			return nil, fmt.Errorf("sqlmini: missing predicate column")
		}
		nxt := t.next()
		switch {
		case nxt == "=":
			e, err := parseExpr(t)
			if err != nil {
				return nil, err
			}
			preds = append(preds, Pred{Col: col, Eq: &e})
		case strings.EqualFold(nxt, "BETWEEN"):
			lo, err := parseExpr(t)
			if err != nil {
				return nil, err
			}
			if err := t.expect("AND"); err != nil {
				return nil, err
			}
			hi, err := parseExpr(t)
			if err != nil {
				return nil, err
			}
			preds = append(preds, Pred{Col: col, Lo: &lo, Hi: &hi, IsRange: true})
		default:
			return nil, fmt.Errorf("sqlmini: bad predicate operator %q", nxt)
		}
		if !strings.EqualFold(peekWord(t), "AND") {
			return preds, nil
		}
		t.next() // AND
	}
}

// peekWord looks ahead one token without consuming it.
func peekWord(t *tokenizer) string {
	save := t.pos
	w := t.next()
	t.pos = save
	return w
}

func parseSelect(t *tokenizer) (*Statement, error) {
	st := &Statement{Kind: Select}
	for {
		col := t.next()
		if col == "*" {
			// all columns: leave Cols empty
		} else {
			st.Cols = append(st.Cols, col)
		}
		if t.peek() == ',' {
			t.next()
			continue
		}
		break
	}
	if err := t.expect("FROM"); err != nil {
		return nil, err
	}
	st.Table = t.next()
	if strings.EqualFold(peekWord(t), "WHERE") {
		t.next()
		preds, err := parsePreds(t)
		if err != nil {
			return nil, err
		}
		st.Preds = preds
	}
	return st, nil
}

func parseUpdate(t *tokenizer) (*Statement, error) {
	st := &Statement{Kind: Update}
	st.Table = t.next()
	if err := t.expect("SET"); err != nil {
		return nil, err
	}
	for {
		col := t.next()
		if err := t.expect("="); err != nil {
			return nil, err
		}
		// RHS: <expr> or <expr> (+|-|*) <expr>.
		first, err := parseExpr(t)
		if err != nil {
			return nil, err
		}
		se := SetExpr{First: first}
		if w := peekWord(t); w == "+" || w == "-" || w == "*" {
			t.next()
			se.Op = w[0]
			second, err := parseExpr(t)
			if err != nil {
				return nil, err
			}
			se.Second = second
		}
		st.Cols = append(st.Cols, col)
		st.SetExprs = append(st.SetExprs, se)
		if t.peek() == ',' {
			t.next()
			continue
		}
		break
	}
	if strings.EqualFold(peekWord(t), "WHERE") {
		t.next()
		preds, err := parsePreds(t)
		if err != nil {
			return nil, err
		}
		st.Preds = preds
	}
	return st, nil
}

func parseInsert(t *tokenizer) (*Statement, error) {
	st := &Statement{Kind: Insert}
	if err := t.expect("INTO"); err != nil {
		return nil, err
	}
	st.Table = t.next()
	if err := t.expect("VALUES"); err != nil {
		return nil, err
	}
	if err := t.expect("("); err != nil {
		return nil, err
	}
	for t.peek() != ')' {
		if t.peek() == ',' {
			t.next()
			continue
		}
		e, err := parseExpr(t)
		if err != nil {
			return nil, err
		}
		st.Values = append(st.Values, e)
	}
	t.next() // ')'
	return st, nil
}

func parseDelete(t *tokenizer) (*Statement, error) {
	st := &Statement{Kind: Delete}
	if err := t.expect("FROM"); err != nil {
		return nil, err
	}
	st.Table = t.next()
	if strings.EqualFold(peekWord(t), "WHERE") {
		t.next()
		preds, err := parsePreds(t)
		if err != nil {
			return nil, err
		}
		st.Preds = preds
	}
	return st, nil
}
