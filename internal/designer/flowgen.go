// Package designer implements the paper's two developer-support tools
// (§2.3):
//
//   - the semi-automated transaction plan generator: SQL-ish transaction
//     text in, transaction flow graph (actions + rendezvous points) out,
//     with user edits (serialize / parallelize) validated against the
//     statements' data dependencies;
//
//   - the semi-automated physical designer: a weighted workload in,
//     per-table partitioning fields, partition counts/sizes and index
//     proposals out — including the paper's "prepend the partitioning
//     column to an index" rule that removes non-partition-aligned
//     accesses.
package designer

import (
	"fmt"
	"strings"

	"dora/internal/designer/sqlmini"
)

// ActionPlan is one node of a generated flow graph: one statement bound
// to the table partition(s) its routing key selects.
type ActionPlan struct {
	// Index is the statement's position in the transaction.
	Index int
	// Stmt is the parsed statement.
	Stmt sqlmini.Statement
	// KeyCol is the column the action routes on: the equality-predicate
	// column matching the table's partitioning field, if any.
	KeyCol string
	// Aligned reports whether KeyCol equals the partitioning field.
	Aligned bool
	// Write mirrors Stmt.IsWrite.
	Write bool
}

// Label renders a short node label.
func (a ActionPlan) Label() string {
	mode := "R"
	if a.Write {
		mode = "W"
	}
	al := ""
	if !a.Aligned {
		al = " !aligned"
	}
	return fmt.Sprintf("%d:%s %s(%s)%s", a.Index, mode, a.Stmt.Kind, a.Stmt.Table, al)
}

// FlowPlan is a generated transaction flow graph: actions in phases with
// an RVP between consecutive phases, plus the dependency edges that
// constrain user edits.
type FlowPlan struct {
	Txn     *sqlmini.Txn
	Actions []ActionPlan
	// Deps[i] lists indices of actions that must precede action i.
	Deps map[int][]int
	// PhaseOf[i] is the phase assigned to action i.
	PhaseOf []int
}

// Generate builds a flow plan. partitionFields maps table name to its
// DORA partitioning field ("" or missing means the first equality column
// is assumed to be the partitioning field).
func Generate(txn *sqlmini.Txn, partitionFields map[string]string) *FlowPlan {
	fp := &FlowPlan{
		Txn:     txn,
		Deps:    make(map[int][]int),
		PhaseOf: make([]int, len(txn.Statements)),
	}
	// Outputs: which identifiers each SELECT makes available downstream.
	produced := make([]map[string]bool, len(txn.Statements))
	for i, st := range txn.Statements {
		produced[i] = map[string]bool{}
		if st.Kind == sqlmini.Select {
			for _, c := range st.Cols {
				produced[i][c] = true
			}
		}
		pf := partitionFields[st.Table]
		keyCol := ""
		aligned := false
		eqs := st.EqCols()
		for _, c := range eqs {
			if pf != "" && c == pf {
				keyCol, aligned = c, true
				break
			}
		}
		if keyCol == "" && len(eqs) > 0 {
			keyCol = eqs[0]
			aligned = pf == "" || keyCol == pf
		}
		// INSERT carries its routing value inside VALUES: if one of the
		// inserted expressions is (a reference to) the partitioning
		// column, the insert routes on it.
		if keyCol == "" && st.Kind == sqlmini.Insert && pf != "" {
			for _, v := range st.Values {
				if v.Ident == pf || v.Param == pf {
					keyCol, aligned = pf, true
					break
				}
			}
		}
		fp.Actions = append(fp.Actions, ActionPlan{
			Index: i, Stmt: st, KeyCol: keyCol, Aligned: aligned, Write: st.IsWrite(),
		})
	}
	// Dependencies:
	//  1. value flow: statement j references an identifier produced by an
	//     earlier SELECT i (e.g. INSERT ... VALUES (s_id, ...) after
	//     SELECT s_id FROM subscriber);
	//  2. table conflict: i and j touch the same table and at least one
	//     writes (write-write or read-write order must be preserved).
	refs := func(st sqlmini.Statement) map[string]bool {
		out := map[string]bool{}
		for _, e := range st.Values {
			if e.Ident != "" {
				out[e.Ident] = true
			}
		}
		for _, se := range st.SetExprs {
			for _, e := range []sqlmini.Expr{se.First, se.Second} {
				if e.Ident != "" {
					out[e.Ident] = true
				}
			}
		}
		for _, p := range st.Preds {
			for _, e := range []*sqlmini.Expr{p.Eq, p.Lo, p.Hi} {
				if e != nil && e.Ident != "" {
					out[e.Ident] = true
				}
			}
		}
		return out
	}
	for j := range txn.Statements {
		need := refs(txn.Statements[j])
		for i := 0; i < j; i++ {
			dep := false
			for id := range need {
				if produced[i][id] {
					dep = true
					break
				}
			}
			if !dep && txn.Statements[i].Table == txn.Statements[j].Table &&
				(txn.Statements[i].IsWrite() || txn.Statements[j].IsWrite()) {
				dep = true
			}
			if dep {
				fp.Deps[j] = append(fp.Deps[j], i)
			}
		}
	}
	fp.recomputePhases()
	return fp
}

// recomputePhases assigns each action the earliest phase its
// dependencies allow (longest-path layering).
func (fp *FlowPlan) recomputePhases() {
	for i := range fp.Actions {
		ph := 0
		for _, d := range fp.Deps[i] {
			if fp.PhaseOf[d]+1 > ph {
				ph = fp.PhaseOf[d] + 1
			}
		}
		fp.PhaseOf[i] = ph
	}
}

// NumPhases returns the number of phases (RVPs = NumPhases, counting the
// final commit RVP).
func (fp *FlowPlan) NumPhases() int {
	max := 0
	for _, p := range fp.PhaseOf {
		if p > max {
			max = p
		}
	}
	return max + 1
}

// Phases groups action indices by phase.
func (fp *FlowPlan) Phases() [][]int {
	out := make([][]int, fp.NumPhases())
	for i, p := range fp.PhaseOf {
		out[p] = append(out[p], i)
	}
	return out
}

// dependsTransitively reports whether b depends (transitively) on a.
func (fp *FlowPlan) dependsTransitively(a, b int) bool {
	seen := map[int]bool{}
	var walk func(int) bool
	walk = func(n int) bool {
		for _, d := range fp.Deps[n] {
			if d == a || (!seen[d] && walk(d)) {
				return true
			}
			seen[d] = true
		}
		return false
	}
	return walk(b)
}

// Serialize forces action b into a later phase than action a (the demo's
// "selecting to run actions serially"; e.g. to delay actions with high
// abort frequency). Always legal; it adds an explicit dependency.
func (fp *FlowPlan) Serialize(a, b int) error {
	if a < 0 || b < 0 || a >= len(fp.Actions) || b >= len(fp.Actions) || a == b {
		return fmt.Errorf("designer: bad action indices %d, %d", a, b)
	}
	if fp.dependsTransitively(b, a) {
		return fmt.Errorf("designer: %d already precedes %d; cannot serialize the other way", b, a)
	}
	fp.Deps[b] = append(fp.Deps[b], a)
	fp.recomputePhases()
	return nil
}

// Parallelize removes the user-addable ordering between a and b, merging
// them into one phase — refused when a data dependency links them (the
// demo: "as long as the data dependencies allow").
func (fp *FlowPlan) Parallelize(a, b int) error {
	if a < 0 || b < 0 || a >= len(fp.Actions) || b >= len(fp.Actions) || a == b {
		return fmt.Errorf("designer: bad action indices %d, %d", a, b)
	}
	if fp.dependsTransitively(a, b) || fp.dependsTransitively(b, a) {
		return fmt.Errorf("designer: actions %d and %d have a data dependency; cannot run in parallel", a, b)
	}
	// No dependency: layering already allows same phase; align them.
	lo := fp.PhaseOf[a]
	if fp.PhaseOf[b] < lo {
		lo = fp.PhaseOf[b]
	}
	fp.PhaseOf[a], fp.PhaseOf[b] = lo, lo
	return nil
}

// Render prints the flow graph as indented text.
func (fp *FlowPlan) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flow %s(%s): %d actions, %d phases\n",
		fp.Txn.Name, strings.Join(fp.Txn.Params, ", "), len(fp.Actions), fp.NumPhases())
	for pi, idxs := range fp.Phases() {
		fmt.Fprintf(&b, "  phase %d:\n", pi+1)
		for _, i := range idxs {
			a := fp.Actions[i]
			fmt.Fprintf(&b, "    [%s] key=%s  %s\n", a.Label(), orDash(a.KeyCol), a.Stmt.Raw)
		}
		if pi < fp.NumPhases()-1 {
			fmt.Fprintf(&b, "  -- RVP%d --\n", pi+1)
		}
	}
	fmt.Fprintf(&b, "  -- final RVP: commit/abort --\n")
	return b.String()
}

// DOT renders the flow graph in Graphviz format (the demo GUI's view).
func (fp *FlowPlan) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", fp.Txn.Name)
	for pi, idxs := range fp.Phases() {
		for _, i := range idxs {
			a := fp.Actions[i]
			shape := "box"
			if !a.Aligned {
				shape = "diamond"
			}
			fmt.Fprintf(&b, "  a%d [label=%q shape=%s];\n", i, a.Label(), shape)
		}
		if pi < fp.NumPhases()-1 {
			fmt.Fprintf(&b, "  rvp%d [label=\"RVP%d\" shape=circle];\n", pi+1, pi+1)
		}
	}
	fmt.Fprintf(&b, "  commit [label=\"final RVP\" shape=doublecircle];\n")
	phases := fp.Phases()
	for pi, idxs := range phases {
		for _, i := range idxs {
			if pi < len(phases)-1 {
				fmt.Fprintf(&b, "  a%d -> rvp%d;\n", i, pi+1)
			} else {
				fmt.Fprintf(&b, "  a%d -> commit;\n", i)
			}
			if pi > 0 {
				fmt.Fprintf(&b, "  rvp%d -> a%d;\n", pi, i)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
