package designer

import (
	"strings"
	"testing"

	"dora/internal/designer/sqlmini"
)

func parse(t *testing.T, src string) *sqlmini.Txn {
	t.Helper()
	txn, err := sqlmini.ParseTxn(src)
	if err != nil {
		t.Fatal(err)
	}
	return txn
}

const insCF = `
TXN InsertCallForwarding(:sub_nbr, :sf, :start, :end, :nbrx) {
  SELECT s_id FROM subscriber WHERE sub_nbr = :sub_nbr;
  SELECT sf_type FROM special_facility WHERE s_id = s_id;
  INSERT INTO call_forwarding VALUES (s_id, :sf, :start, :end, :nbrx);
}`

var tatpParts = map[string]string{
	"subscriber":       "s_id",
	"special_facility": "s_id",
	"call_forwarding":  "s_id",
	"access_info":      "s_id",
}

func TestGeneratePhases(t *testing.T) {
	fp := Generate(parse(t, insCF), tatpParts)
	if len(fp.Actions) != 3 {
		t.Fatalf("actions = %d", len(fp.Actions))
	}
	// Statement 1 (SF probe) and 2 (insert) both consume s_id produced by
	// statement 0, so they land in a later phase; the insert also refers
	// to s_id, so it depends on statement 0 too.
	if fp.PhaseOf[0] != 0 {
		t.Fatalf("phase of select = %d", fp.PhaseOf[0])
	}
	if fp.PhaseOf[1] == 0 || fp.PhaseOf[2] == 0 {
		t.Fatalf("dependent statements in phase 0: %v", fp.PhaseOf)
	}
	if fp.NumPhases() < 2 {
		t.Fatalf("phases = %d", fp.NumPhases())
	}
	// The sub_nbr probe is not aligned with s_id partitioning.
	if fp.Actions[0].Aligned {
		t.Fatal("sub_nbr probe wrongly marked aligned")
	}
	if !fp.Actions[1].Aligned {
		t.Fatal("s_id probe should be aligned")
	}
}

func TestParallelIndependentActions(t *testing.T) {
	// Two updates on different tables with no value flow: same phase.
	src := `TXN UpdateSubscriberData(:s, :bit, :data) {
	  UPDATE subscriber SET bit_1 = :bit WHERE s_id = :s;
	  UPDATE special_facility SET data_a = :data WHERE s_id = :s;
	}`
	fp := Generate(parse(t, src), tatpParts)
	if fp.PhaseOf[0] != fp.PhaseOf[1] {
		t.Fatalf("independent actions split into phases %v", fp.PhaseOf)
	}
	if fp.NumPhases() != 1 {
		t.Fatalf("phases = %d", fp.NumPhases())
	}
}

func TestSerializeAndParallelizeEdits(t *testing.T) {
	src := `TXN T(:s) {
	  UPDATE subscriber SET bit_1 = 1 WHERE s_id = :s;
	  UPDATE special_facility SET data_a = 2 WHERE s_id = :s;
	}`
	fp := Generate(parse(t, src), tatpParts)
	// User forces serial execution (e.g. high-abort action last).
	if err := fp.Serialize(0, 1); err != nil {
		t.Fatal(err)
	}
	if fp.PhaseOf[1] <= fp.PhaseOf[0] {
		t.Fatalf("serialize had no effect: %v", fp.PhaseOf)
	}
	// Cannot serialize the opposite direction now.
	if err := fp.Serialize(1, 0); err == nil {
		t.Fatal("conflicting serialize must fail")
	}

	// Parallelize is refused when a data dependency exists.
	fp2 := Generate(parse(t, insCF), tatpParts)
	if err := fp2.Parallelize(0, 2); err == nil {
		t.Fatal("parallelize across value flow must fail")
	}
	// And allowed when not.
	fp3 := Generate(parse(t, src), tatpParts)
	if err := fp3.Serialize(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := fp3.Parallelize(0, 1); err == nil {
		t.Fatal("parallelize should fail after explicit serialize (dependency recorded)")
	}
}

func TestRenderAndDOT(t *testing.T) {
	fp := Generate(parse(t, insCF), tatpParts)
	txt := fp.Render()
	for _, want := range []string{"InsertCallForwarding", "phase 1", "RVP", "commit"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("Render missing %q:\n%s", want, txt)
		}
	}
	dot := fp.DOT()
	for _, want := range []string{"digraph", "rvp1", "commit", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestAdvise(t *testing.T) {
	getSub := parse(t, `TXN GetSubscriberData(:s) {
	  SELECT * FROM subscriber WHERE s_id = :s;
	}`)
	updLoc := parse(t, `TXN UpdateLocation(:nbr, :vlr) {
	  SELECT s_id FROM subscriber WHERE sub_nbr = :nbr;
	  UPDATE subscriber SET vlr_location = :vlr WHERE s_id = s_id;
	}`)
	workload := []WeightedTxn{
		{Txn: getSub, Freq: 35},
		{Txn: updLoc, Freq: 14},
	}
	tables := map[string]TableInfo{
		"subscriber": {
			KeyFields: []string{"s_id"},
			Rows:      100000,
			Indexes:   [][]string{{"sub_nbr"}},
		},
	}
	d := Advise(workload, tables, 8)
	if len(d.Tables) != 1 {
		t.Fatalf("tables = %d", len(d.Tables))
	}
	tp := d.Tables[0]
	// s_id is probed by 35+14 weighted accesses; sub_nbr by 14.
	if tp.PartitionField != "s_id" {
		t.Fatalf("partition field = %q", tp.PartitionField)
	}
	if tp.Partitions < 1 {
		t.Fatalf("partitions = %d", tp.Partitions)
	}
	if tp.PartitionRows <= 0 {
		t.Fatalf("partition rows = %d", tp.PartitionRows)
	}
	// The prepend rule fires for the (sub_nbr) index.
	found := false
	for _, ix := range d.Indexes {
		if len(ix.Columns) >= 2 && ix.Columns[0] == "s_id" && ix.Columns[1] == "sub_nbr" {
			found = true
		}
	}
	if !found {
		t.Fatalf("prepend-partition-column proposal missing: %+v", d.Indexes)
	}
	if !strings.Contains(d.Render(), "partition by s_id") {
		t.Fatalf("render:\n%s", d.Render())
	}
}

func TestAdviseSkewedToHotTable(t *testing.T) {
	hot := parse(t, `TXN Hot(:k) { UPDATE a SET v = 1 WHERE k = :k; }`)
	cold := parse(t, `TXN Cold(:k) { SELECT * FROM b WHERE k = :k; }`)
	d := Advise([]WeightedTxn{{hot, 90}, {cold, 10}}, nil, 10)
	var pa, pb int
	for _, tp := range d.Tables {
		switch tp.Table {
		case "a":
			pa = tp.Partitions
		case "b":
			pb = tp.Partitions
		}
	}
	if pa <= pb {
		t.Fatalf("hot table got %d partitions, cold %d", pa, pb)
	}
}
