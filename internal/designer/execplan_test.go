package designer

import (
	"errors"
	"testing"

	"dora/internal/dora"
	"dora/internal/engine"
	"dora/internal/engine/conventional"
	"dora/internal/sm"
	"dora/internal/workload/tatp"
)

// bindRig loads TATP and returns both engines over it.
func bindRig(t *testing.T) (*tatp.DB, []engine.Engine) {
	t.Helper()
	s, err := sm.Open(sm.Options{Frames: 2048})
	if err != nil {
		t.Fatal(err)
	}
	db, err := tatp.Load(s, 200)
	if err != nil {
		t.Fatal(err)
	}
	de := dora.New(s, dora.Config{PartitionsPerTable: 2, Domains: db.Domains()})
	t.Cleanup(func() { _ = de.Close() })
	return db, []engine.Engine{conventional.New(s), de}
}

func TestBindSelectByPrimaryKey(t *testing.T) {
	db, engines := bindRig(t)
	fp := Generate(parse(t, `TXN G(:s) { SELECT vlr_location FROM subscriber WHERE s_id = :s; }`),
		map[string]string{"subscriber": "s_id"})
	for _, e := range engines {
		flow, err := Bind(fp, db.SM.Cat, map[string]int64{"s": 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Exec(0, flow); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
	}
}

func TestBindUpdateArithmetic(t *testing.T) {
	db, engines := bindRig(t)
	src := `TXN Bump(:s, :d) {
	  UPDATE subscriber SET vlr_location = vlr_location + :d WHERE s_id = :s;
	}`
	ses := db.SM.Session(0)
	before, _ := ses.Read(db.SM.Begin(), db.Subscriber, 9)
	base := before[4].Int
	for i, e := range engines {
		fp := Generate(parse(t, src), map[string]string{"subscriber": "s_id"})
		flow, err := Bind(fp, db.SM.Cat, map[string]int64{"s": 9, "d": 100})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Exec(0, flow); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		rec, _ := ses.Read(db.SM.Begin(), db.Subscriber, 9)
		want := base + int64(i+1)*100
		if rec[4].Int != want {
			t.Fatalf("%s: vlr = %d, want %d", e.Name(), rec[4].Int, want)
		}
	}
}

func TestBindValueFlowAcrossRVP(t *testing.T) {
	// UpdateLocation: the first SELECT resolves sub_nbr -> s_id (via the
	// secondary index), the second statement consumes s_id in a later
	// phase. Runs on both engines, including DORA's late-bound key.
	db, engines := bindRig(t)
	src := `TXN UpdateLocation(:nbr, :vlr) {
	  SELECT s_id FROM subscriber WHERE sub_nbr = :nbr;
	  UPDATE subscriber SET vlr_location = :vlr WHERE s_id = s_id;
	}`
	for i, e := range engines {
		sid := int64(11 + i)
		fp := Generate(parse(t, src), map[string]string{"subscriber": "s_id"})
		if fp.NumPhases() != 2 {
			t.Fatalf("phases = %d", fp.NumPhases())
		}
		flow, err := Bind(fp, db.SM.Cat, map[string]int64{
			"nbr": db.SubNbr(sid), "vlr": 4242,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Exec(0, flow); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		rec, _ := db.SM.Session(0).Read(db.SM.Begin(), db.Subscriber, sid)
		if rec[4].Int != 4242 {
			t.Fatalf("%s: vlr = %d", e.Name(), rec[4].Int)
		}
	}
}

func TestBindInsertDeleteRoundTrip(t *testing.T) {
	db, engines := bindRig(t)
	e := engines[1] // DORA
	ins := `TXN Ins(:s, :sf, :st, :end, :nx) {
	  INSERT INTO call_forwarding VALUES (:s, :sf, :st, :end, :nx);
	}`
	del := `TXN Del(:s, :sf, :st) {
	  DELETE FROM call_forwarding WHERE s_id = :s AND sf_type = :sf AND start_time = :st;
	}`
	parts := map[string]string{"call_forwarding": "s_id"}
	params := map[string]int64{"s": 33, "sf": 2, "st": 8, "end": 20, "nx": 777}

	// Clear any loaded row first (ignore failure).
	fpDel := Generate(parse(t, del), parts)
	if flow, err := Bind(fpDel, db.SM.Cat, params); err == nil {
		_ = e.Exec(0, flow)
	}
	fpIns := Generate(parse(t, ins), parts)
	flow, err := Bind(fpIns, db.SM.Cat, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(0, flow); err != nil {
		t.Fatalf("insert: %v", err)
	}
	rec, err := db.SM.Session(0).Read(db.SM.Begin(), db.CallForward, tatp.CFKey(33, 2, 8))
	if err != nil || rec[4].Int != 777 {
		t.Fatalf("inserted row: %v %v", rec, err)
	}
	// Duplicate insert aborts.
	flow2, _ := Bind(Generate(parse(t, ins), parts), db.SM.Cat, params)
	if err := e.Exec(0, flow2); err == nil {
		t.Fatal("duplicate insert must abort")
	}
	// Delete through a bound plan.
	flow3, err := Bind(Generate(parse(t, del), parts), db.SM.Cat, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(0, flow3); err != nil {
		t.Fatalf("delete: %v", err)
	}
}

func TestBindErrors(t *testing.T) {
	db, _ := bindRig(t)
	// Unknown table.
	fp := Generate(parse(t, `TXN T(:k) { SELECT * FROM nope WHERE k = :k; }`), nil)
	if _, err := Bind(fp, db.SM.Cat, map[string]int64{"k": 1}); err == nil {
		t.Fatal("unknown table accepted")
	}
	// Missing parameter surfaces at execution.
	fp2 := Generate(parse(t, `TXN T(:s) { SELECT * FROM subscriber WHERE s_id = :s; }`),
		map[string]string{"subscriber": "s_id"})
	flow, err := Bind(fp2, db.SM.Cat, map[string]int64{})
	if err == nil {
		// Key binding may defer; executing must fail.
		conv := conventional.New(db.SM)
		if execErr := conv.Exec(0, flow); execErr == nil {
			t.Fatal("missing parameter never surfaced")
		}
	}
	// Missing row aborts.
	flow3, err := Bind(fp2, db.SM.Cat, map[string]int64{"s": 99999})
	if err != nil {
		t.Fatal(err)
	}
	conv := conventional.New(db.SM)
	if execErr := conv.Exec(0, flow3); !errors.Is(execErr, sm.ErrNotFound) {
		t.Fatalf("missing row: %v", execErr)
	}
}
