package designer

import (
	"errors"
	"fmt"
	"sync"

	"dora/internal/catalog"
	"dora/internal/designer/sqlmini"
	"dora/internal/tuple"
	"dora/internal/xct"
)

// Bind completes the demo's plan-generator loop (§2.3: the user can
// "see the generated execution plans, modify and run them"): it turns a
// FlowPlan into an executable transaction flow graph by interpreting
// each statement against the catalog. The returned flow runs on either
// engine.
//
// Interpretation rules:
//
//   - equality predicates covering a table's primary-key columns locate
//     the row: a probe record is built from the predicate values and the
//     table's key function packs it, so the interpreter never needs to
//     know the bit-packing;
//   - a SELECT publishes its projected integer columns into the
//     transaction's variable environment under their column names; later
//     statements may reference them as bare identifiers (value flow
//     across RVPs);
//   - UPDATE applies its SET expressions (including col ± expr);
//   - INSERT builds the record positionally from VALUES;
//   - DELETE removes the row its predicates locate;
//   - parameters (:name) are taken from params.
//
// A missing row makes the statement (and transaction) fail with the
// storage manager's not-found error, which aborts — matching the
// engines' semantics.
func Bind(fp *FlowPlan, cat *catalog.Catalog, params map[string]int64) (*xct.Flow, error) {
	env := &bindEnv{params: params, vars: map[string]int64{}}
	flow := xct.NewFlow(fp.Txn.Name)
	var late []rebinding
	var all []*xct.Action
	for _, idxs := range fp.Phases() {
		var actions []*xct.Action
		for _, i := range idxs {
			a := fp.Actions[i]
			tbl := cat.Table(a.Stmt.Table)
			if tbl == nil {
				return nil, fmt.Errorf("designer: unknown table %q", a.Stmt.Table)
			}
			act, err := bindAction(a, tbl, env, &late)
			if err != nil {
				return nil, err
			}
			actions = append(actions, act)
			all = append(all, act)
		}
		flow.AddPhase(actions...)
	}
	// Late-bound routing keys (the key value is an identifier published
	// by an earlier phase): after every action body, retry the pending
	// bindings. Publishes happen before the next phase dispatches (RVP
	// ordering), so the key is in place when the engine reads it.
	if len(late) > 0 {
		lateRefs := make([]*rebinding, len(late))
		for i := range late {
			lateRefs[i] = &late[i]
		}
		for _, act := range all {
			run := act.Run
			act.Run = func(x *xct.Env) error {
				err := run(x)
				if err == nil {
					for _, rb := range lateRefs {
						rb.try() // succeeds once its inputs are published
					}
				}
				return err
			}
		}
	}
	return flow, nil
}

// bindEnv carries parameters and the inter-statement variable
// environment. Vars are written by SELECTs and read by later phases;
// actions of one phase may publish concurrently, hence the mutex.
type bindEnv struct {
	params map[string]int64
	mu     sync.Mutex
	vars   map[string]int64
}

func (e *bindEnv) set(name string, v int64) {
	e.mu.Lock()
	e.vars[name] = v
	e.mu.Unlock()
}

func (e *bindEnv) eval(x sqlmini.Expr) (int64, error) {
	switch {
	case x.IsLit:
		return x.Lit, nil
	case x.Param != "":
		v, ok := e.params[x.Param]
		if !ok {
			return 0, fmt.Errorf("designer: missing parameter :%s", x.Param)
		}
		return v, nil
	case x.Ident != "":
		e.mu.Lock()
		v, ok := e.vars[x.Ident]
		e.mu.Unlock()
		if !ok {
			return 0, fmt.Errorf("designer: unbound identifier %q", x.Ident)
		}
		return v, nil
	}
	return 0, errors.New("designer: empty expression")
}

// bindAction builds the runnable xct.Action for one plan node.
func bindAction(a ActionPlan, tbl *catalog.Table, env *bindEnv, late *[]rebinding) (*xct.Action, error) {
	st := a.Stmt
	act := &xct.Action{
		Table:    tbl.Name,
		KeyField: a.KeyCol,
		Mode:     xct.Read,
		Label:    st.Kind.String(),
	}
	if st.IsWrite() {
		act.Mode = xct.Write
	}
	// The plan generator works schema-free, so positional INSERT values
	// can hide the routing column from it; with the catalog in hand, the
	// partitioning field's position identifies the key.
	if a.KeyCol == "" && st.Kind == sqlmini.Insert {
		if pf := tbl.PartitionField(); pf != "" && tbl.FieldIndex(pf) < len(st.Values) {
			a.KeyCol = pf
			act.KeyField = pf
		}
	}
	// Routing key: the key column's value, when computable at bind time;
	// late-bound (identifier) keys are evaluated once the producing phase
	// publishes their inputs (see Bind). The engines read act.Key at
	// dispatch, after earlier phases ran, so lazy evaluation suffices.
	if a.KeyCol != "" {
		bindKey := func() error {
			for _, p := range st.Preds {
				if p.Col == a.KeyCol && !p.IsRange {
					v, err := env.eval(*p.Eq)
					if err != nil {
						return err
					}
					act.Key = v
					return nil
				}
			}
			if st.Kind == sqlmini.Insert {
				if i := tbl.FieldIndex(a.KeyCol); i >= 0 && i < len(st.Values) {
					v, err := env.eval(st.Values[i])
					if err != nil {
						return err
					}
					act.Key = v
					return nil
				}
			}
			return fmt.Errorf("designer: no key value for %s.%s", tbl.Name, a.KeyCol)
		}
		if err := bindKey(); err != nil {
			// The key references an identifier an earlier phase
			// publishes: mark the action LateKey and retry the binding
			// after each earlier action completes (see Bind).
			act.LateKey = true
			*late = append(*late, rebinding{bind: bindKey})
		}
	}
	// Resolver: when an engine locks or routes on a different field than
	// the action's key field (a non-partition-aligned access), it asks
	// for the row's value of that field; the interpreter locates the row
	// through whatever index the predicates allow.
	act.Resolve = func(x *xct.Env, field string) (int64, error) {
		if st.Kind == sqlmini.Insert {
			fi := tbl.FieldIndex(field)
			if fi < 0 || fi >= len(st.Values) {
				return 0, fmt.Errorf("designer: INSERT into %s carries no %q", tbl.Name, field)
			}
			return env.eval(st.Values[fi])
		}
		rec, err := locate(st, tbl, env, x)
		if err != nil {
			return 0, err
		}
		fi := tbl.FieldIndex(field)
		if fi < 0 {
			return 0, fmt.Errorf("designer: %s has no field %q", tbl.Name, field)
		}
		return rec[fi].Int, nil
	}
	run, err := bindBody(st, tbl, env)
	if err != nil {
		return nil, err
	}
	act.Run = run
	return act, nil
}

// rebinding defers routing-key evaluation for late-bound keys until the
// producing phase has published the inputs. try is safe to call from
// several publishing actions concurrently and binds at most once.
type rebinding struct {
	mu   sync.Mutex
	done bool
	bind func() error
}

func (rb *rebinding) try() {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.done {
		return
	}
	if rb.bind() == nil {
		rb.done = true
	}
}

// bindBody builds the statement interpreter.
func bindBody(st sqlmini.Statement, tbl *catalog.Table, env *bindEnv) (func(*xct.Env) error, error) {
	switch st.Kind {
	case sqlmini.Select:
		return func(x *xct.Env) error {
			rec, err := locate(st, tbl, env, x)
			if err != nil {
				return err
			}
			publish(st, tbl, rec, env)
			return nil
		}, nil
	case sqlmini.Update:
		return func(x *xct.Env) error {
			key, err := probeKey(st, tbl, env)
			if err != nil {
				return err
			}
			var evalErr error
			err = x.Ses.Mutate(x.Txn, tbl, key, func(r tuple.Record) tuple.Record {
				for i, col := range st.Cols {
					fi := tbl.FieldIndex(col)
					if fi < 0 {
						evalErr = fmt.Errorf("designer: %s has no column %q", tbl.Name, col)
						return r
					}
					v, err := evalSet(st.SetExprs[i], r, tbl, env)
					if err != nil {
						evalErr = err
						return r
					}
					r[fi] = tuple.I(v)
				}
				return r
			})
			if evalErr != nil {
				return evalErr
			}
			return err
		}, nil
	case sqlmini.Insert:
		return func(x *xct.Env) error {
			if len(st.Values) != len(tbl.Fields) {
				return fmt.Errorf("designer: INSERT into %s has %d values, table has %d columns",
					tbl.Name, len(st.Values), len(tbl.Fields))
			}
			rec := make(tuple.Record, len(st.Values))
			for i, ve := range st.Values {
				v, err := env.eval(ve)
				if err != nil {
					return err
				}
				rec[i] = tuple.I(v)
			}
			return x.Ses.Insert(x.Txn, tbl, rec)
		}, nil
	case sqlmini.Delete:
		return func(x *xct.Env) error {
			key, err := probeKey(st, tbl, env)
			if err != nil {
				return err
			}
			return x.Ses.Delete(x.Txn, tbl, key)
		}, nil
	}
	return nil, fmt.Errorf("designer: cannot bind %v statement", st.Kind)
}

// locate reads the row a statement's predicates identify: by packed
// primary key when the equality predicates cover the key columns, or
// through a single-column secondary index otherwise (the resolver path
// of a non-partition-aligned access).
func locate(st sqlmini.Statement, tbl *catalog.Table, env *bindEnv, x *xct.Env) (tuple.Record, error) {
	key, err := probeKey(st, tbl, env)
	if err == nil {
		return x.Ses.Read(x.Txn, tbl, key)
	}
	for _, ix := range tbl.Secondaries {
		if len(ix.Fields) != 1 {
			continue
		}
		for _, p := range st.Preds {
			if p.IsRange || p.Col != ix.Fields[0] {
				continue
			}
			v, verr := env.eval(*p.Eq)
			if verr != nil {
				return nil, verr
			}
			return x.Ses.ReadByIndex(x.Txn, tbl, ix.Name, v)
		}
	}
	return nil, err
}

// probeKey builds a probe record from the equality predicates over the
// primary-key columns and packs it with the table's key function.
func probeKey(st sqlmini.Statement, tbl *catalog.Table, env *bindEnv) (int64, error) {
	probe := make(tuple.Record, len(tbl.Fields))
	for i := range probe {
		probe[i] = tuple.I(0)
	}
	covered := map[string]bool{}
	for _, p := range st.Preds {
		if p.IsRange {
			continue
		}
		fi := tbl.FieldIndex(p.Col)
		if fi < 0 {
			return 0, fmt.Errorf("designer: %s has no column %q", tbl.Name, p.Col)
		}
		v, err := env.eval(*p.Eq)
		if err != nil {
			return 0, err
		}
		probe[fi] = tuple.I(v)
		covered[p.Col] = true
	}
	for _, kf := range tbl.Primary.Fields {
		if !covered[kf] {
			return 0, fmt.Errorf("designer: predicates on %s do not cover key column %q (secondary access needs an index hint)", tbl.Name, kf)
		}
	}
	return tbl.Primary.Key(probe), nil
}

// publish stores the selected integer columns in the environment.
func publish(st sqlmini.Statement, tbl *catalog.Table, rec tuple.Record, env *bindEnv) {
	cols := st.Cols
	if len(cols) == 0 { // SELECT *
		for _, f := range tbl.Fields {
			cols = append(cols, f.Name)
		}
	}
	for _, c := range cols {
		if fi := tbl.FieldIndex(c); fi >= 0 && rec[fi].Type == tuple.TInt {
			env.set(c, rec[fi].Int)
		}
	}
}

// evalSet computes an UPDATE right-hand side; bare identifiers resolve
// first against the current row, then the environment.
func evalSet(se sqlmini.SetExpr, row tuple.Record, tbl *catalog.Table, env *bindEnv) (int64, error) {
	evalOne := func(x sqlmini.Expr) (int64, error) {
		if x.Ident != "" {
			if fi := tbl.FieldIndex(x.Ident); fi >= 0 {
				return row[fi].Int, nil
			}
		}
		return env.eval(x)
	}
	a, err := evalOne(se.First)
	if err != nil {
		return 0, err
	}
	if se.Op == 0 {
		return a, nil
	}
	b, err := evalOne(se.Second)
	if err != nil {
		return 0, err
	}
	switch se.Op {
	case '+':
		return a + b, nil
	case '-':
		return a - b, nil
	case '*':
		return a * b, nil
	}
	return 0, fmt.Errorf("designer: unknown operator %q", se.Op)
}
