package designer

import (
	"fmt"
	"sort"
	"strings"

	"dora/internal/designer/sqlmini"
)

// WeightedTxn is one workload entry: a transaction spec and its expected
// execution frequency (per second, or any consistent unit).
type WeightedTxn struct {
	Txn  *sqlmini.Txn
	Freq float64
}

// TableInfo supplies optional schema knowledge to the advisor.
type TableInfo struct {
	// KeyFields is the primary key, in order.
	KeyFields []string
	// Rows is the approximate cardinality (0 = unknown).
	Rows int64
	// Indexes lists existing index column lists (the advisor may propose
	// prepending the partition column to one of them).
	Indexes [][]string
}

// IndexProposal is one suggested index.
type IndexProposal struct {
	Table   string
	Columns []string
	// Reason explains the proposal (e.g. the prepend rule).
	Reason string
}

// TablePlan is the advisor's output for one table.
type TablePlan struct {
	Table string
	// PartitionField is the suggested routing column.
	PartitionField string
	// Partitions is the suggested number of partitions; PartitionRows is
	// the approximate size of each (0 when table cardinality is unknown).
	Partitions    int
	PartitionRows int64
	// AccessShare is the table's fraction of all weighted accesses.
	AccessShare float64
	// AlignedShare is the fraction of this table's accesses that would be
	// partition-aligned under PartitionField.
	AlignedShare float64
	// FieldWeights lists each equality-probed column's weighted share
	// (diagnostics for the demo GUI).
	FieldWeights map[string]float64
}

// Design is the full physical-design suggestion.
type Design struct {
	Tables  []TablePlan
	Indexes []IndexProposal
}

// Advise computes a physical design for the workload: per table, the
// partitioning field that maximizes partition-aligned accesses, a
// partition count proportional to the table's share of the load (scaled
// to workerBudget micro-engines in total), each partition's size, and
// index proposals — including prepending the partitioning column to an
// index that lacks it, the paper's motivating example.
func Advise(workload []WeightedTxn, tables map[string]TableInfo, workerBudget int) *Design {
	if workerBudget <= 0 {
		workerBudget = 8
	}
	// Weighted equality-probe counts per table/column, plus total
	// accesses per table.
	fieldW := map[string]map[string]float64{}
	tableW := map[string]float64{}
	var totalW float64
	for _, wt := range workload {
		for _, st := range wt.Txn.Statements {
			tableW[st.Table] += wt.Freq
			totalW += wt.Freq
			fw := fieldW[st.Table]
			if fw == nil {
				fw = map[string]float64{}
				fieldW[st.Table] = fw
			}
			for _, c := range st.EqCols() {
				fw[c] += wt.Freq
			}
			// Range predicates also benefit from partitioning on their
			// column, at half weight (a range may span partitions).
			for _, p := range st.Preds {
				if p.IsRange {
					fw[p.Col] += wt.Freq / 2
				}
			}
		}
	}

	var names []string
	for t := range tableW {
		names = append(names, t)
	}
	sort.Strings(names)

	d := &Design{}
	for _, t := range names {
		fw := fieldW[t]
		info := tables[t]
		lead := ""
		if len(info.KeyFields) > 0 {
			lead = info.KeyFields[0]
		}
		best, bestW := "", 0.0
		for c, w := range fw {
			better := w > bestW
			if w == bestW {
				// Ties prefer the leading primary-key column, then
				// lexical order for determinism.
				if c == lead && best != lead {
					better = true
				} else if best != lead && c < best {
					better = true
				}
			}
			if better {
				best, bestW = c, w
			}
		}
		if best == "" && len(info.KeyFields) > 0 {
			best = info.KeyFields[0]
		}
		share := 0.0
		if totalW > 0 {
			share = tableW[t] / totalW
		}
		parts := int(share*float64(workerBudget) + 0.5)
		if parts < 1 {
			parts = 1
		}
		aligned := 0.0
		if tableW[t] > 0 {
			aligned = bestW / tableW[t]
			if aligned > 1 {
				aligned = 1
			}
		}
		tp := TablePlan{
			Table:          t,
			PartitionField: best,
			Partitions:     parts,
			AccessShare:    share,
			AlignedShare:   aligned,
			FieldWeights:   map[string]float64{},
		}
		for c, w := range fw {
			if tableW[t] > 0 {
				tp.FieldWeights[c] = w / tableW[t]
			}
		}
		if info.Rows > 0 {
			tp.PartitionRows = info.Rows / int64(parts)
		}
		d.Tables = append(d.Tables, tp)

		// Index proposals.
		d.Indexes = append(d.Indexes, adviseIndexes(t, best, fw, info)...)
	}
	return d
}

// adviseIndexes proposes indexes for one table.
func adviseIndexes(table, partField string, fw map[string]float64, info TableInfo) []IndexProposal {
	var out []IndexProposal
	hasIndexOn := func(cols []string, c string) bool {
		return len(cols) > 0 && cols[0] == c
	}
	// 1. The prepend rule: an existing index that is probed together with
	//    the partitioning column but does not lead with it gets the
	//    partitioning column prepended, so those probes become
	//    partition-aligned (paper §2.3's example).
	for _, ix := range info.Indexes {
		if partField == "" || hasIndexOn(ix, partField) {
			continue
		}
		out = append(out, IndexProposal{
			Table:   table,
			Columns: append([]string{partField}, ix...),
			Reason: fmt.Sprintf("prepend partitioning column %s to index (%s) so probes become partition-aligned",
				partField, strings.Join(ix, ", ")),
		})
	}
	// 2. A primary/probe index led by the partitioning field when none
	//    exists yet.
	covered := false
	for _, ix := range info.Indexes {
		if hasIndexOn(ix, partField) {
			covered = true
		}
	}
	if partField != "" && !covered && len(info.Indexes) == 0 {
		cols := []string{partField}
		for _, k := range info.KeyFields {
			if k != partField {
				cols = append(cols, k)
			}
		}
		out = append(out, IndexProposal{
			Table: table, Columns: cols,
			Reason: "primary probe index led by the partitioning column",
		})
	}
	// 3. Secondary indexes for heavily-probed non-partition columns (they
	//    are the resolver path for non-aligned accesses).
	type cw struct {
		c string
		w float64
	}
	var rest []cw
	for c, w := range fw {
		if c != partField {
			rest = append(rest, cw{c, w})
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].w != rest[j].w {
			return rest[i].w > rest[j].w
		}
		return rest[i].c < rest[j].c
	})
	for _, e := range rest {
		if e.w <= 0 {
			continue
		}
		out = append(out, IndexProposal{
			Table: table, Columns: []string{e.c},
			Reason: fmt.Sprintf("secondary index for non-aligned probes on %s (resolver path)", e.c),
		})
		break // one suggestion per table keeps the plan reviewable
	}
	return out
}

// Render prints the design as text (the demo GUI's designer panel).
func (d *Design) Render() string {
	var b strings.Builder
	b.WriteString("physical design suggestion\n")
	b.WriteString("==========================\n")
	for _, t := range d.Tables {
		fmt.Fprintf(&b, "table %-18s partition by %-12s partitions=%d",
			t.Table, orDash(t.PartitionField), t.Partitions)
		if t.PartitionRows > 0 {
			fmt.Fprintf(&b, " (~%d rows each)", t.PartitionRows)
		}
		fmt.Fprintf(&b, "  load=%.1f%%  aligned=%.0f%%\n", 100*t.AccessShare, 100*t.AlignedShare)
	}
	if len(d.Indexes) > 0 {
		b.WriteString("index proposals:\n")
		for _, ix := range d.Indexes {
			fmt.Fprintf(&b, "  %s(%s)  -- %s\n", ix.Table, strings.Join(ix.Columns, ", "), ix.Reason)
		}
	}
	return b.String()
}
