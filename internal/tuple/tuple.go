// Package tuple defines the record model shared by the storage manager
// and both execution engines: typed values, records (ordered field
// lists), and their binary encoding into page slots.
package tuple

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Type enumerates the supported field types.
type Type uint8

const (
	// TInt is a 64-bit signed integer.
	TInt Type = iota + 1
	// TString is a variable-length byte string.
	TString
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TString:
		return "string"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Value is a tagged union of the supported types.
type Value struct {
	Type Type
	Int  int64
	Str  string
}

// I returns an integer value.
func I(v int64) Value { return Value{Type: TInt, Int: v} }

// S returns a string value.
func S(s string) Value { return Value{Type: TString, Str: s} }

// Equal reports whether two values have the same type and content.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type {
		return false
	}
	switch v.Type {
	case TInt:
		return v.Int == o.Int
	case TString:
		return v.Str == o.Str
	}
	return false
}

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.Type {
	case TInt:
		return strconv.FormatInt(v.Int, 10)
	case TString:
		return strconv.Quote(v.Str)
	default:
		return "<nil>"
	}
}

// Record is an ordered list of field values.
type Record []Value

// Clone returns a deep copy of r.
func (r Record) Clone() Record {
	out := make(Record, len(r))
	copy(out, r)
	return out
}

// Equal reports field-wise equality.
func (r Record) Equal(o Record) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// String renders the record as (v1, v2, ...).
func (r Record) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// ErrCorrupt reports an undecodable record image.
var ErrCorrupt = errors.New("tuple: corrupt record encoding")

// Encode serializes r. Layout: uint16 field count, then per field a type
// byte followed by 8 bytes (int) or uint16 length + bytes (string).
func Encode(r Record) []byte {
	n := 2
	for _, v := range r {
		switch v.Type {
		case TInt:
			n += 1 + 8
		case TString:
			n += 1 + 2 + len(v.Str)
		}
	}
	out := make([]byte, n)
	binary.LittleEndian.PutUint16(out, uint16(len(r)))
	w := 2
	for _, v := range r {
		out[w] = byte(v.Type)
		w++
		switch v.Type {
		case TInt:
			binary.LittleEndian.PutUint64(out[w:], uint64(v.Int))
			w += 8
		case TString:
			binary.LittleEndian.PutUint16(out[w:], uint16(len(v.Str)))
			w += 2
			copy(out[w:], v.Str)
			w += len(v.Str)
		}
	}
	return out
}

// Decode parses a record image produced by Encode.
func Decode(b []byte) (Record, error) {
	if len(b) < 2 {
		return nil, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint16(b))
	r := make(Record, 0, n)
	w := 2
	for i := 0; i < n; i++ {
		if w >= len(b) {
			return nil, ErrCorrupt
		}
		t := Type(b[w])
		w++
		switch t {
		case TInt:
			if w+8 > len(b) {
				return nil, ErrCorrupt
			}
			r = append(r, I(int64(binary.LittleEndian.Uint64(b[w:]))))
			w += 8
		case TString:
			if w+2 > len(b) {
				return nil, ErrCorrupt
			}
			ln := int(binary.LittleEndian.Uint16(b[w:]))
			w += 2
			if w+ln > len(b) {
				return nil, ErrCorrupt
			}
			r = append(r, S(string(b[w:w+ln])))
			w += ln
		default:
			return nil, fmt.Errorf("%w: field %d has type %d", ErrCorrupt, i, t)
		}
	}
	return r, nil
}
