package tuple

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	recs := []Record{
		{},
		{I(0)},
		{I(-1), I(1 << 62)},
		{S("")},
		{S("hello"), I(42), S("world")},
		{I(7), S("a"), I(8), S("bb"), I(9)},
	}
	for _, r := range recs {
		got, err := Decode(Encode(r))
		if err != nil {
			t.Fatalf("Decode(%v): %v", r, err)
		}
		if !got.Equal(r) {
			t.Fatalf("round trip %v -> %v", r, got)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		{2, 0, byte(TInt)},         // truncated int
		{1, 0, byte(TString), 200}, // truncated string header
		{1, 0, 99, 0, 0},           // unknown type
	}
	for i, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Fatalf("case %d: Decode should fail", i)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !I(5).Equal(I(5)) || I(5).Equal(I(6)) {
		t.Fatal("int equality broken")
	}
	if !S("x").Equal(S("x")) || S("x").Equal(S("y")) {
		t.Fatal("string equality broken")
	}
	if I(5).Equal(S("5")) {
		t.Fatal("cross-type equality must be false")
	}
}

func TestClone(t *testing.T) {
	r := Record{I(1), S("a")}
	c := r.Clone()
	c[0] = I(2)
	if r[0].Int != 1 {
		t.Fatal("Clone aliases source")
	}
}

func randomRecord(rng *rand.Rand) Record {
	n := rng.Intn(10)
	r := make(Record, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			r = append(r, I(rng.Int63()-rng.Int63()))
		} else {
			b := make([]byte, rng.Intn(50))
			for j := range b {
				b[j] = byte(rng.Intn(256))
			}
			r = append(r, S(string(b)))
		}
	}
	return r
}

// TestQuickRoundTrip: Decode(Encode(r)) == r for arbitrary records.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			r := randomRecord(rng)
			got, err := Decode(Encode(r))
			if err != nil || !got.Equal(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	r := Record{I(1), S("x")}
	if r.String() != `(1, "x")` {
		t.Fatalf("String() = %s", r.String())
	}
	if TInt.String() != "int" || TString.String() != "string" {
		t.Fatal("type names")
	}
}
