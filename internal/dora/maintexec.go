package dora

import (
	"runtime"
	"time"

	"dora/internal/catalog"
	"dora/internal/dora/router"
	"dora/internal/sm"
)

// Owner-thread execution for background physical maintenance
// (internal/maint). Maintenance operations — heap-page migration,
// re-stamping, subtree compaction — compose with foreground execution by
// the same rule as every other foreign access: they run ON the owning
// worker's thread, delivered through its inbox, so they can never race
// an aligned action, a latch-free descent, or a lock-table mutation.

// OwnerCtx is what a maintenance operation sees while executing on a
// partition worker's thread. It is valid only for the duration of the
// operation and only on that thread.
type OwnerCtx struct {
	p *partition
}

// Ses returns the worker's session (carrying its ownership token).
func (c *OwnerCtx) Ses() *sm.Session { return c.p.ses }

// Worker returns the executing worker's id.
func (c *OwnerCtx) Worker() int { return c.p.worker }

// Table returns the table this worker serves.
func (c *OwnerCtx) Table() *catalog.Table { return c.p.tbl }

// Ranges returns the routing ranges currently assigned to this worker.
// Read on the owner's thread, so a concurrent split of THIS worker
// cannot invalidate them mid-operation (its hand-over runs here too).
func (c *OwnerCtx) Ranges() []router.Range {
	p := c.p
	p.eng.topoMu.RLock()
	rt := p.eng.routers[p.tbl.ID]
	p.eng.topoMu.RUnlock()
	if rt == nil {
		return nil
	}
	var out []router.Range
	for _, r := range rt.Ranges() {
		if r.Part == p.worker {
			out = append(out, r)
		}
	}
	return out
}

// KeyBusy reports whether the routing value has any lock state (held or
// waited, at any granularity covering it). Maintenance skips records of
// busy values: an in-flight transaction may hold undo entries naming
// their current RIDs, and migration would invalidate them. Safe to read
// here because lock-table mutations happen on this same thread.
func (c *OwnerCtx) KeyBusy(v int64) bool { return c.p.locks.keyBusy(v) }

// RangeBusy reports whether any routing value of [lo, hi] has lock
// state — the one-intent maintenance gate: with a hierarchical table a
// whole page's record interval is cleared in O(granules-with-state)
// instead of a KeyBusy probe per record. Conservative: coarse coverage
// may report busy for values nothing touches.
func (c *OwnerCtx) RangeBusy(lo, hi int64) bool { return c.p.locks.rangeBusy(lo, hi) }

// CoarseProbes reports whether RangeBusy/PartitionBusy are cheap on
// this worker's lock table (hierarchical: yes; flat baseline: a range
// probe sweeps every entry, so callers should prefer per-key probes).
func (c *OwnerCtx) CoarseProbes() bool { return c.p.locks.coarseProbes() }

// PartitionBusy reports whether the partition has any lock state at all
// (held or waiting) — the gate for whole-partition maintenance such as
// subtree compaction.
func (c *OwnerCtx) PartitionBusy() bool {
	return c.p.locks.heldKeys() > 0 || c.p.locks.waitingCount() > 0
}

// QueueLen returns the worker's inbox depth (backpressure signal).
func (c *OwnerCtx) QueueLen() int { return c.p.queueLen() }

// shipRetryPause paces an ExecOnOwner fail-back retry: yield-only for
// the first few rounds, then exponentially growing sleeps capped at
// 1ms — the same discipline as the access-path retry loops, so a
// rebalance storm cannot spin the maintenance daemon (or a worker
// chasing a moved owner) hot.
func (e *Dora) shipRetryPause(tries int) {
	e.shipRetries.Inc()
	if tries < 4 {
		runtime.Gosched()
		return
	}
	e.shipRetryWaits.Inc()
	shift := tries - 4
	if shift > 10 {
		shift = 10
	}
	d := time.Duration(int64(1)<<uint(shift)) * time.Microsecond
	if d > time.Millisecond {
		d = time.Millisecond
	}
	time.Sleep(d)
}

// ExecOnOwner ships fn to the partition worker currently owning routing
// value v of table and blocks until it ran. It holds the engine's
// execution gate shared for the duration, so a quiescing Repartition
// never interleaves with a maintenance operation. Returns false when the
// engine is closed, the table unknown, or the owner could not be reached
// (retired workers are chased through re-resolution a bounded number of
// times). Maintenance operations must not re-enter ExecOnOwner from
// inside fn outside debug experiments: the nested gate acquisition can
// stall behind a waiting quiesce.
func (e *Dora) ExecOnOwner(table string, v int64, fn func(*OwnerCtx)) bool {
	e.execGate.RLock()
	defer e.execGate.RUnlock()
	if e.closed {
		return false
	}
	tbl := e.sm.Cat.Table(table)
	if tbl == nil {
		return false
	}
	for tries := 0; tries < 1024; tries++ {
		p := e.ownerOf(tbl, v)
		if p == nil {
			return false
		}
		m := &maintMsg{fn: fn, done: make(chan struct{})}
		if det := e.shipDet; det != nil {
			m.path = det.extendPath(p.worker, true)
		}
		if p.in.pushChecked(m) {
			<-m.done
			if m.cyc != nil {
				panic(m.cyc)
			}
			if m.ok {
				return true
			}
		}
		// The worker retired between the topology read and the push
		// (split/merge race); re-resolve.
		e.shipRetryPause(tries)
	}
	return false
}

// ExecOnOwnerAsync is ExecOnOwner in continuation-passing style: it
// returns as soon as the operation is enqueued (or resolution failed)
// and done(ok) fires exactly once — inline on the owner's thread right
// after fn ran, since maintenance callers pass no home executor. The
// execution gate is held shared until done fires, so a quiescing
// Repartition still never interleaves with an in-flight maintenance
// operation. The maintenance daemon uses this to fan one operation out
// to several owners concurrently (e.g. compaction across all partitions
// of a table) instead of parking on each round trip in turn. Under
// Config.BlockingShips it degrades to the parked-sender ExecOnOwner so
// the measurement baseline keeps the legacy protocol everywhere.
func (e *Dora) ExecOnOwnerAsync(table string, v int64, fn func(*OwnerCtx), done func(ok bool)) {
	if e.cfg.BlockingShips {
		done(e.ExecOnOwner(table, v, fn))
		return
	}
	e.execGate.RLock()
	finish := func(ok bool) {
		e.execGate.RUnlock()
		done(ok)
	}
	if e.closed {
		finish(false)
		return
	}
	tbl := e.sm.Cat.Table(table)
	if tbl == nil {
		finish(false)
		return
	}
	var attempt func(tries int)
	attempt = func(tries int) {
		for ; tries < 1024; tries++ {
			p := e.ownerOf(tbl, v)
			if p == nil {
				finish(false)
				return
			}
			tries := tries
			m := &maintContMsg{contReply: contReply{k: func(ok bool) {
				if ok {
					finish(true)
					return
				}
				// The worker retired before running fn (split/merge
				// race); re-resolve from the continuation.
				attempt(tries + 1)
			}}, fn: fn}
			if det := e.shipDet; det != nil {
				m.path = det.extendPath(p.worker, false)
			}
			if p.in.pushChecked(m) {
				return
			}
			e.shipRetryPause(tries)
		}
		finish(false)
	}
	attempt(0)
}

// OwnerQueueLen reports the inbox depth of the worker owning routing
// value v of table — the maintenance daemon's backpressure probe — or -1
// when unresolvable.
func (e *Dora) OwnerQueueLen(table string, v int64) int {
	tbl := e.sm.Cat.Table(table)
	if tbl == nil {
		return -1
	}
	p := e.ownerOf(tbl, v)
	if p == nil {
		return -1
	}
	return p.queueLen()
}

// AccessPathClaimed reports whether table's primary index currently has
// owner-claimed subtrees (the precondition for heap maintenance: without
// claims there is no owner thread to stamp pages for).
func (e *Dora) AccessPathClaimed(table string) bool {
	tbl := e.sm.Cat.Table(table)
	if tbl == nil {
		return false
	}
	pt := tbl.Primary.Partitioned()
	return pt != nil && pt.OwnedSubtrees() > 0
}

// RebalanceKind classifies a topology-change event.
type RebalanceKind string

// Rebalance event kinds.
const (
	RebalanceSplit       RebalanceKind = "split"
	RebalanceMerge       RebalanceKind = "merge"
	RebalanceRepartition RebalanceKind = "repartition"
)

// RebalanceEvent notifies the maintenance daemon that a table's routing
// topology changed and its physical layout may have started to decay.
type RebalanceEvent struct {
	Table string
	Kind  RebalanceKind
}

// SetRebalanceHook installs fn to be called (synchronously, so it must
// be cheap — the maintenance daemon just enqueues work) after every
// split, merge and repartition.
func (e *Dora) SetRebalanceHook(fn func(RebalanceEvent)) {
	e.hookMu.Lock()
	e.rebalanceHook = fn
	e.hookMu.Unlock()
}

func (e *Dora) fireRebalance(table string, kind RebalanceKind) {
	e.hookMu.Lock()
	fn := e.rebalanceHook
	e.hookMu.Unlock()
	if fn != nil {
		fn(RebalanceEvent{Table: table, Kind: kind})
	}
}
