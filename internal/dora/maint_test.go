package dora

import (
	"strings"
	"testing"

	"dora/internal/catalog"
	"dora/internal/sm"
	"dora/internal/tuple"
	"dora/internal/xct"
)

// TestRepartitionReclaimsIdentityRoutableIndex: repartitioning AWAY from
// a routable field releases the access path to the shared latched trees;
// repartitioning BACK onto it re-claims the per-partition subtrees under
// the same quiesce (the identity case from the ROADMAP).
func TestRepartitionReclaimsIdentityRoutableIndex(t *testing.T) {
	_, tbl, e := rig(t, 100, 4)
	pt := tbl.Primary.Partitioned()
	if pt == nil {
		t.Fatal("rig primary is not partitioned")
	}
	if pt.OwnedSubtrees() == 0 {
		t.Fatal("initial claims missing")
	}
	// Away: owner_nbr has no RouteRange on the primary — shared path.
	if err := e.Repartition("accounts", "owner_nbr", 10001, 10100); err != nil {
		t.Fatal(err)
	}
	if got := pt.OwnedSubtrees(); got != 0 {
		t.Fatalf("owned subtrees after repartition to non-routable field = %d, want 0", got)
	}
	// Back: id is the primary's RouteField — re-claimed, not released.
	if err := e.Repartition("accounts", "id", 1, 100); err != nil {
		t.Fatal(err)
	}
	if got := pt.OwnedSubtrees(); got == 0 {
		t.Fatal("identity repartition did not re-claim the partitioned access path")
	}
	if !e.AccessPathClaimed("accounts") {
		t.Fatal("AccessPathClaimed reports unclaimed after re-claim")
	}
	// The re-claimed path still executes transactions correctly.
	var bal int64
	if err := e.Exec(0, readFlow(tbl, 7, &bal)); err != nil {
		t.Fatal(err)
	}
	if bal != 100 {
		t.Fatalf("balance = %d", bal)
	}
}

// TestRepartitionReclaimsMappedRoutableIndex: repartitioning onto a
// field RELATED to an index's declared RouteField by a declared
// FieldMap bijection keeps the index claimed — the derived re-claim
// beyond the identity case. The ledger table partitions on id; its
// secondary's RouteRange is declared for id; FieldMaps carry
// nbr = id + 10000 in both directions, so repartitioning onto nbr
// composes nbr → id → keys for both indexes.
func TestRepartitionReclaimsMappedRoutableIndex(t *testing.T) {
	s, err := sm.Open(sm.Options{Frames: 256})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.CreateTable(sm.TableSpec{
		Name: "ledger",
		Fields: []catalog.Field{
			{Name: "id", Type: tuple.TInt},
			{Name: "nbr", Type: tuple.TInt},
			{Name: "balance", Type: tuple.TInt},
		},
		KeyFields: []string{"id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
		Secondaries: []sm.IndexSpec{{
			Name:   "ledger_by_nbr",
			Fields: []string{"nbr"},
			Key:    func(r tuple.Record) int64 { return r[1].Int },
			RouteRange: func(lo, hi int64) (int64, int64) {
				return lo + 10000, hi + 10000
			},
		}},
		FieldMaps: []catalog.FieldMap{
			{From: "nbr", To: "id",
				Map: func(lo, hi int64) (int64, int64) { return lo - 10000, hi - 10000 }},
			{From: "id", To: "nbr",
				Map: func(lo, hi int64) (int64, int64) { return lo + 10000, hi + 10000 }},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ses := s.Session(0)
	load := s.Begin()
	for i := int64(1); i <= 100; i++ {
		if err := ses.Insert(load, tbl, tuple.Record{tuple.I(i), tuple.I(i + 10000), tuple.I(100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(load); err != nil {
		t.Fatal(err)
	}
	e := New(s, Config{
		PartitionsPerTable: 4,
		Domains:            map[string][2]int64{"ledger": {1, 100}},
	})
	defer func() { _ = e.Close() }()
	ppt, spt := tbl.Primary.Partitioned(), tbl.Secondaries[0].Partitioned()
	if ppt == nil || spt == nil {
		t.Fatal("both indexes should be partitioned trees")
	}
	if ppt.OwnedSubtrees() == 0 || spt.OwnedSubtrees() == 0 {
		t.Fatal("initial claims missing")
	}
	// Onto nbr: neither index declares RouteField "nbr", but the field
	// map derives both routes — everything stays claimed.
	if err := e.Repartition("ledger", "nbr", 10001, 10100); err != nil {
		t.Fatal(err)
	}
	if ppt.OwnedSubtrees() == 0 {
		t.Fatal("primary released despite nbr → id field map")
	}
	if spt.OwnedSubtrees() == 0 {
		t.Fatal("secondary released despite nbr → id → keys composition")
	}
	// Aligned execution by nbr works against the re-claimed paths.
	var bal int64
	flow := xct.NewFlow("by-nbr").AddPhase(&xct.Action{
		Table: "ledger", KeyField: "nbr", Key: 10007, Mode: xct.Read,
		Run: func(env *xct.Env) error {
			rec, rerr := env.Ses.ReadByIndex(env.Txn, tbl, "ledger_by_nbr", 10007)
			if rerr != nil {
				return rerr
			}
			bal = rec[2].Int
			return nil
		},
	})
	if err := e.Exec(0, flow); err != nil {
		t.Fatal(err)
	}
	if bal != 100 {
		t.Fatalf("balance = %d", bal)
	}
	// And back onto id (identity for the primary, map for the secondary).
	if err := e.Repartition("ledger", "id", 1, 100); err != nil {
		t.Fatal(err)
	}
	if ppt.OwnedSubtrees() == 0 || spt.OwnedSubtrees() == 0 {
		t.Fatal("claims lost repartitioning back onto id")
	}
}

// TestExecOnOwnerRunsOnPartitionThread checks the maintenance executor:
// the op sees the owning partition's context and serializes with its
// queue, and OwnerQueueLen resolves the same worker.
func TestExecOnOwnerRunsOnPartitionThread(t *testing.T) {
	_, tbl, e := rig(t, 100, 4)
	want := e.ownerOf(tbl, 7)
	var gotWorker int
	var busy bool
	ok := e.ExecOnOwner("accounts", 7, func(ctx *OwnerCtx) {
		gotWorker = ctx.Worker()
		busy = ctx.KeyBusy(7)
		if ctx.Table() != tbl {
			t.Error("ctx.Table mismatch")
		}
		if ctx.Ses().Owner() == nil {
			t.Error("owner session has no token")
		}
		if len(ctx.Ranges()) == 0 {
			t.Error("owner has no ranges")
		}
	})
	if !ok {
		t.Fatal("ExecOnOwner failed")
	}
	if gotWorker != want.worker {
		t.Fatalf("ran on worker %d, want %d", gotWorker, want.worker)
	}
	if busy {
		t.Fatal("key 7 busy with no traffic")
	}
	if e.OwnerQueueLen("accounts", 7) < 0 {
		t.Fatal("OwnerQueueLen unresolvable")
	}
	if e.ExecOnOwner("no_such_table", 1, func(*OwnerCtx) {}) {
		t.Fatal("ExecOnOwner succeeded on unknown table")
	}
}

// debugRig is rig with the ship-cycle detector enabled.
func debugRig(t *testing.T, n int64, parts int) (*sm.SM, *Dora) {
	t.Helper()
	s, err := sm.Open(sm.Options{Frames: 256})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.CreateTable(sm.TableSpec{
		Name: "accounts",
		Fields: []catalog.Field{
			{Name: "id", Type: tuple.TInt},
			{Name: "owner_nbr", Type: tuple.TInt},
			{Name: "balance", Type: tuple.TInt},
		},
		KeyFields: []string{"id"},
		Key:       func(r tuple.Record) int64 { return r[0].Int },
	})
	if err != nil {
		t.Fatal(err)
	}
	ses := s.Session(0)
	load := s.Begin()
	for i := int64(1); i <= n; i++ {
		if err := ses.Insert(load, tbl, tuple.Record{tuple.I(i), tuple.I(i + 10000), tuple.I(100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(load); err != nil {
		t.Fatal(err)
	}
	e := New(s, Config{
		PartitionsPerTable: parts,
		Domains:            map[string][2]int64{"accounts": {1, n}},
		DebugShipCheck:     true,
	})
	t.Cleanup(func() { _ = e.Close() })
	return s, e
}

// TestRollbackAsOnOwnerThread: a maintenance transaction rolled back ON
// the owning worker's thread must compensate inline — RollbackAs with
// the worker's token. (Plain Rollback would ship the compensation to the
// worker's own inbox and wait on itself; this test deadlocks, and times
// out, if that regresses.)
func TestRollbackAsOnOwnerThread(t *testing.T) {
	s, tbl, e := rig(t, 100, 2)
	ok := e.ExecOnOwner("accounts", 7, func(ctx *OwnerCtx) {
		ses := ctx.Ses()
		txn := s.Begin()
		moved, err := ses.MigrateRecord(txn, tbl, 7)
		if err != nil || !moved {
			t.Errorf("migrate: moved=%v err=%v", moved, err)
			return
		}
		if err := s.RollbackAs(ses.Owner(), txn); err != nil {
			t.Errorf("RollbackAs: %v", err)
		}
	})
	if !ok {
		t.Fatal("ExecOnOwner failed")
	}
	// The record survived the aborted migration exactly once.
	var bal int64
	if err := e.Exec(0, readFlow(tbl, 7, &bal)); err != nil || bal != 100 {
		t.Fatalf("after rolled-back migration: bal=%d err=%v", bal, err)
	}
	if got := tbl.Primary.Tree.Len(); got != 100 {
		t.Fatalf("primary len = %d, want 100", got)
	}
}

// TestShipCycleDetector: with DebugShipCheck on, a cyclic owner-thread
// ship (origin -> A -> B -> A) fails fast with a diagnostic that unwinds
// to the origin instead of deadlocking the two workers — and the engine
// keeps working afterwards.
func TestShipCycleDetector(t *testing.T) {
	_, e := debugRig(t, 100, 2)
	// Two routing values owned by different workers.
	rt := e.Router("accounts")
	ranges := rt.Ranges()
	if len(ranges) < 2 {
		t.Fatal("need 2 ranges")
	}
	vA, vB := ranges[0].Lo, ranges[1].Lo

	var recovered error
	func() {
		defer func() {
			if r := recover(); r != nil {
				recovered = r.(*shipCycleError)
			}
		}()
		e.ExecOnOwner("accounts", vA, func(*OwnerCtx) { // chain hop 1: -> A
			e.ExecOnOwner("accounts", vB, func(*OwnerCtx) { // hop 2: A -> B
				e.ExecOnOwner("accounts", vA, func(*OwnerCtx) { // hop 3: B -> A — cycle!
					t.Error("cyclic ship executed")
				})
			})
		})
	}()
	if recovered == nil {
		t.Fatal("cyclic ship not detected")
	}
	if !strings.Contains(recovered.Error(), "cyclic owner-thread ship") {
		t.Fatalf("diagnostic: %v", recovered)
	}
	// Both workers survived the unwind: acyclic ships and transactions
	// still execute.
	ok := e.ExecOnOwner("accounts", vA, func(*OwnerCtx) {
		e.ExecOnOwner("accounts", vB, func(*OwnerCtx) {})
	})
	if !ok {
		t.Fatal("acyclic nested ship failed after cycle recovery")
	}
	var bal int64
	tbl := e.sm.Cat.Table("accounts")
	if err := e.Exec(0, readFlow(tbl, 7, &bal)); err != nil || bal != 100 {
		t.Fatalf("engine unusable after cycle: bal=%d err=%v", bal, err)
	}
}
