package dora

import "sync"

// inbox is a partition's work queue. It is a mutex-guarded slice rather
// than a channel because DORA's deadlock-avoidance protocol requires
// enqueueing all actions of a transaction phase into several partitions
// *atomically* and in canonical partition order (the engine locks every
// target inbox, appends everywhere, then unlocks) — channels cannot do a
// multi-queue atomic insert.
type inbox struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	items    []msg
	closed   bool
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.nonEmpty = sync.NewCond(&ib.mu)
	return ib
}

// push appends one message (single-queue convenience path).
func (ib *inbox) push(m msg) {
	ib.mu.Lock()
	ib.items = append(ib.items, m)
	ib.mu.Unlock()
	ib.nonEmpty.Signal()
}

// lockForEnqueue / appendLocked / unlockAfterEnqueue implement the
// multi-partition atomic enqueue. Callers must lock all target inboxes
// in canonical (ascending worker id) order.
func (ib *inbox) lockForEnqueue()    { ib.mu.Lock() }
func (ib *inbox) appendLocked(m msg) { ib.items = append(ib.items, m) }
func (ib *inbox) unlockAfterEnqueue() {
	ib.mu.Unlock()
	ib.nonEmpty.Signal()
}

// pop blocks until a message is available or the inbox is closed.
// It returns ok=false when closed and drained.
func (ib *inbox) pop() (msg, bool) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for len(ib.items) == 0 && !ib.closed {
		ib.nonEmpty.Wait()
	}
	if len(ib.items) == 0 {
		return nil, false
	}
	m := ib.items[0]
	// Avoid O(n) copies: reslice, re-compact occasionally.
	ib.items[0] = nil
	ib.items = ib.items[1:]
	if len(ib.items) == 0 {
		ib.items = nil
	}
	return m, true
}

// length returns the current queue length (load-balancer signal).
func (ib *inbox) length() int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return len(ib.items)
}

// close wakes the worker to exit once the queue drains.
func (ib *inbox) close() {
	ib.mu.Lock()
	ib.closed = true
	ib.mu.Unlock()
	ib.nonEmpty.Broadcast()
}
