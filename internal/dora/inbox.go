package dora

import (
	"sync"
	"sync/atomic"
)

// inbox is a partition's work queue. It is a mutex-guarded slice rather
// than a channel because DORA's deadlock-avoidance protocol requires
// enqueueing all actions of a transaction phase into several partitions
// *atomically* and in canonical partition order (the engine locks every
// target inbox, appends everywhere, then unlocks) — channels cannot do a
// multi-queue atomic insert.
//
// The consumer drains in batches: popAll hands the worker everything
// queued in one mutex+cond round, so a worker processing a burst pays one
// synchronization round per burst, not one per message. qlen mirrors the
// queue length atomically for the load balancer's cross-partition probes.
type inbox struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	items    []msg
	closed   bool
	qlen     atomic.Int64
	// qcont mirrors how much of qlen is continuation traffic (contMsg,
	// maintContMsg, kontMsg) — the monitor's signal for how much of a
	// worker's queue depth the asynchronous ship machinery contributes.
	qcont atomic.Int64
}

// isContTraffic classifies continuation-machinery messages for qcont.
func isContTraffic(m msg) bool {
	switch m.(type) {
	case *contMsg, *maintContMsg, *kontMsg:
		return true
	}
	return false
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.nonEmpty = sync.NewCond(&ib.mu)
	return ib
}

// push appends one message (single-queue convenience path).
func (ib *inbox) push(m msg) {
	ib.mu.Lock()
	ib.items = append(ib.items, m)
	ib.qlen.Add(1)
	if isContTraffic(m) {
		ib.qcont.Add(1)
	}
	ib.mu.Unlock()
	ib.nonEmpty.Signal()
}

// pushChecked appends one message unless the inbox is closed; callers
// that hand work to a specific worker (access-path shipping, forwarding)
// use it so a retired worker's queue never swallows a message whose
// sender is blocked on its completion.
func (ib *inbox) pushChecked(m msg) bool {
	ib.mu.Lock()
	if ib.closed {
		ib.mu.Unlock()
		return false
	}
	ib.items = append(ib.items, m)
	ib.qlen.Add(1)
	if isContTraffic(m) {
		ib.qcont.Add(1)
	}
	ib.mu.Unlock()
	ib.nonEmpty.Signal()
	return true
}

// lockForEnqueue / appendLocked / unlockAfterEnqueue implement the
// multi-partition atomic enqueue. Callers must lock all target inboxes
// in canonical (ascending worker id) order.
func (ib *inbox) lockForEnqueue() { ib.mu.Lock() }
func (ib *inbox) appendLocked(m msg) {
	ib.items = append(ib.items, m)
	ib.qlen.Add(1)
	if isContTraffic(m) {
		ib.qcont.Add(1)
	}
}
func (ib *inbox) unlockAfterEnqueue() {
	ib.mu.Unlock()
	ib.nonEmpty.Signal()
}

// popAll blocks until at least one message is available, then drains the
// whole queue into buf (reused across calls) — one mutex+cond round per
// batch. It returns ok=false when the inbox is closed and fully drained.
func (ib *inbox) popAll(buf []msg) (batch []msg, ok bool) {
	ib.mu.Lock()
	for len(ib.items) == 0 && !ib.closed {
		ib.nonEmpty.Wait()
	}
	if len(ib.items) == 0 {
		ib.mu.Unlock()
		return buf[:0], false
	}
	// Swap buffers: the worker processes the drained slice while new
	// pushes fill the (cleared) previous one.
	batch = ib.items
	for i := range buf {
		buf[i] = nil
	}
	ib.items = buf[:0]
	ib.qlen.Store(0)
	ib.qcont.Store(0)
	ib.mu.Unlock()
	return batch, true
}

// length returns the current queue length — a single atomic load, no
// mutex round: the load balancer polls every partition each tick.
func (ib *inbox) length() int {
	return int(ib.qlen.Load())
}

// contLength returns how much of the current queue is continuation
// traffic (monitor statistic).
func (ib *inbox) contLength() int {
	return int(ib.qcont.Load())
}

// close wakes the worker to exit once the queue drains.
func (ib *inbox) close() {
	ib.mu.Lock()
	ib.closed = true
	ib.mu.Unlock()
	ib.nonEmpty.Broadcast()
}

// closeAndDrain marks the inbox closed and returns everything still
// queued (worker retirement: the caller forwards or fails the leftovers).
func (ib *inbox) closeAndDrain() []msg {
	ib.mu.Lock()
	ib.closed = true
	rest := ib.items
	ib.items = nil
	ib.qlen.Store(0)
	ib.qcont.Store(0)
	ib.mu.Unlock()
	ib.nonEmpty.Broadcast()
	return rest
}
