package router

import (
	"testing"
	"testing/quick"
)

func TestUniformCoversDomain(t *testing.T) {
	rt := NewUniform("s_id", 1, 100, []int{10, 11, 12, 13})
	ranges := rt.Ranges()
	if len(ranges) != 4 {
		t.Fatalf("%d ranges", len(ranges))
	}
	if ranges[0].Lo != 1 || ranges[len(ranges)-1].Hi != 100 {
		t.Fatalf("domain not covered: %v", ranges)
	}
	for i := 1; i < len(ranges); i++ {
		if ranges[i].Lo != ranges[i-1].Hi+1 {
			t.Fatalf("gap between ranges: %v", ranges)
		}
	}
	var width int64
	for _, r := range ranges {
		width += r.Hi - r.Lo + 1
	}
	if width != 100 {
		t.Fatalf("total width %d", width)
	}
}

func TestRouteClamps(t *testing.T) {
	rt := NewUniform("k", 10, 20, []int{1, 2})
	if rt.Route(-5) != 1 {
		t.Fatal("below-domain must clamp to first")
	}
	if rt.Route(1000) != 2 {
		t.Fatal("above-domain must clamp to last")
	}
}

func TestRouteBoundaries(t *testing.T) {
	rt := NewUniform("k", 1, 100, []int{7, 8})
	ranges := rt.Ranges()
	cut := ranges[0].Hi
	if rt.Route(cut) != 7 || rt.Route(cut+1) != 8 {
		t.Fatalf("boundary routing wrong at %d", cut)
	}
}

func TestSplit(t *testing.T) {
	rt := NewUniform("k", 1, 100, []int{1})
	moved, err := rt.Split(1, 51, 2)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Lo != 51 || moved.Hi != 100 || moved.Part != 2 {
		t.Fatalf("moved = %+v", moved)
	}
	if rt.Route(50) != 1 || rt.Route(51) != 2 {
		t.Fatal("split routing wrong")
	}
	if rt.NumPartitions() != 2 {
		t.Fatalf("parts = %d", rt.NumPartitions())
	}
	// Splitting at a point nobody owns at an edge fails.
	if _, err := rt.Split(1, 1, 3); err == nil {
		t.Fatal("split at Lo must fail (empty left side)")
	}
	if _, err := rt.Split(99, 60, 3); err == nil {
		t.Fatal("split of unknown partition must fail")
	}
}

func TestReassignCoalesces(t *testing.T) {
	rt := NewUniform("k", 1, 90, []int{1, 2, 3})
	n := rt.Reassign(2, 1)
	if n != 1 {
		t.Fatalf("reassigned %d ranges", n)
	}
	// Ranges of 1 are adjacent now: must coalesce to a single range.
	count := 0
	for _, r := range rt.Ranges() {
		if r.Part == 1 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("part 1 has %d ranges after coalesce: %v", count, rt.Ranges())
	}
	if rt.NumPartitions() != 2 {
		t.Fatalf("parts = %d", rt.NumPartitions())
	}
}

func TestReplace(t *testing.T) {
	rt := NewUniform("s_id", 1, 100, []int{1, 2})
	rt.Replace("sub_nbr", []Range{{Lo: 1000, Hi: 1499, Part: 1}, {Lo: 1500, Hi: 1999, Part: 2}})
	if rt.Field() != "sub_nbr" {
		t.Fatalf("field = %q", rt.Field())
	}
	if rt.Route(1200) != 1 || rt.Route(1700) != 2 {
		t.Fatal("replaced routing wrong")
	}
}

func TestPartWidth(t *testing.T) {
	rt := NewUniform("k", 1, 100, []int{1, 2})
	if rt.PartWidth(1)+rt.PartWidth(2) != 100 {
		t.Fatal("widths don't sum to domain")
	}
}

// TestQuickEveryValueRoutedExactlyOnce: after arbitrary splits, every
// domain value routes to exactly one partition and ranges stay contiguous.
func TestQuickEveryValueRouted(t *testing.T) {
	f := func(seed int64) bool {
		rt := NewUniform("k", 0, 499, []int{0})
		next := 1
		s := seed
		for i := 0; i < 8; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			at := (s % 498)
			if at < 0 {
				at = -at
			}
			at++ // in [1, 498]
			// Split whichever partition owns 'at'.
			owner := rt.Route(at)
			if _, err := rt.Split(owner, at, next); err == nil {
				next++
			}
		}
		ranges := rt.Ranges()
		if ranges[0].Lo != 0 || ranges[len(ranges)-1].Hi != 499 {
			return false
		}
		for i := 1; i < len(ranges); i++ {
			if ranges[i].Lo != ranges[i-1].Hi+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
